// Full-system example: a 4x4x2 3D SoC where the bottom die's cores fetch
// image data from the memory die above over a mesh NoC. The words that
// physically cross one vertical TSV bundle are captured cycle-by-cycle
// (flits, valid line, idle hold) by the NoC simulator, and the bit-to-TSV
// assignment for that bundle is optimized from the captured trace — the
// complete design flow of the paper applied at system level.
#include <cstdio>

#include "core/assignment_io.hpp"
#include "core/link.hpp"
#include "noc/simulator.hpp"

using namespace tsvcod;

int main() {
  // --- simulate the system ------------------------------------------------
  noc::Mesh3D mesh(4, 4, 2);
  noc::TrafficConfig traffic;
  traffic.spatial = noc::SpatialPattern::Hotspot;  // fetch from the memory die
  traffic.payload = noc::PayloadModel::ImageDma;   // frame-buffer bursts
  traffic.injection_rate = 0.3;
  traffic.flit_width = 32;

  noc::NocSimulator sim(mesh, traffic);
  const noc::LinkId monitored{noc::NodeId{2, 1, 0}, noc::Direction::ZPlus};
  sim.probe_link(monitored);
  const auto stats = sim.run(30000);
  std::printf("NoC: injected %zu flits, delivered %zu, mean latency %.1f cycles\n",
              stats.injected, stats.delivered, stats.mean_latency);
  std::printf("monitored TSV bundle utilization: %.1f %%\n",
              100.0 * static_cast<double>(stats.probe_busy_cycles) / 30000.0);

  // --- optimize the monitored bundle's assignment --------------------------
  // 32 data + valid + redundant@0 + Vdd@1 + GND@0 = 36 lines on a 6x6 array.
  std::vector<std::uint64_t> words;
  words.reserve(sim.probe_trace().size());
  for (const auto w : sim.probe_trace()) words.push_back(w | (std::uint64_t{1} << 34));

  phys::TsvArrayGeometry geom;
  geom.rows = geom.cols = 6;
  geom.radius = 1e-6;
  geom.pitch = 4e-6;
  const core::Link link(geom);
  const auto st = stats::compute_stats(words, 36);

  core::OptimizeOptions opts;
  opts.allow_invert.assign(36, 1);
  opts.allow_invert[34] = 0;  // Vdd TSV keeps polarity
  opts.allow_invert[35] = 0;  // GND TSV keeps polarity
  opts.schedule.iterations = 15000;
  const auto best = core::optimize_assignment(st, link.model(), opts);
  const auto base = core::random_assignment_power(st, link.model(), 300);

  std::printf("\nbundle power, random assignment (mean): %8.1f aF\n", base.mean * 1e18);
  std::printf("bundle power, optimal assignment      : %8.1f aF  (-%.1f %%)\n",
              best.power * 1e18, core::reduction_pct(base.mean, best.power));
  std::printf("\nwiring plan ('~' = inverting driver):\n%s",
              core::format_assignment_grid(geom, best.assignment).c_str());
  return 0;
}
