// MEMS sensor-hub example (paper Sec. 5.2).
//
// Three smartphone sensors (magnetometer, accelerometer, gyroscope) share a
// 16-bit vertical link through a 4x4 TSV array. The example shows the
// decision the paper's Sec. 4 summary prescribes when no optimizer can run
// at design time: measure which statistic dominates (temporal correlation vs
// zero-mean normality) and pick Spiral or Sawtooth accordingly — then
// quantifies what the full optimizer would still add.
#include <cstdio>
#include <memory>

#include "core/link.hpp"
#include "streams/mems.hpp"

using namespace tsvcod;

namespace {

void analyze(const char* name, std::unique_ptr<streams::WordStream> stream,
             const core::Link& link) {
  const auto st = link.measure(*stream, 40000);

  // Diagnostic statistics: mean |eps| (distribution skew) and mean MSB self
  // switching (temporal correlation indicator).
  double skew = 0.0;
  for (const auto e : st.eps()) skew += std::abs(e);
  skew /= static_cast<double>(st.width);
  const double msb_activity = st.self[15];

  const auto study = core::study_assignments(link, st);
  const char* recommended = msb_activity < 0.25 && skew > 0.1 ? "Spiral" : "Sawtooth";
  std::printf(
      "%-10s skew %.2f, MSB activity %.2f -> %-8s | spiral %5.1f %%  ST %5.1f %%  opt %5.1f %%\n",
      name, skew, msb_activity, recommended, study.reduction_spiral(),
      study.reduction_sawtooth(), study.reduction_optimal());
}

}  // namespace

int main() {
  const auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(4, 4);
  const core::Link link(geom);
  using streams::MemsKind;

  std::printf("reductions vs random assignment, 4x4 r=2um d=8um, 16 b/cycle\n\n");
  analyze("accel RMS", std::make_unique<streams::MemsRmsStream>(MemsKind::Accelerometer, 7), link);
  analyze("accel XYZ", std::make_unique<streams::MemsXyzStream>(MemsKind::Accelerometer, 7), link);
  analyze("gyro XYZ", std::make_unique<streams::MemsXyzStream>(MemsKind::Gyroscope, 8), link);
  analyze("mag RMS", std::make_unique<streams::MemsRmsStream>(MemsKind::Magnetometer, 9), link);
  analyze("all mux", streams::make_all_sensor_mux(10), link);
  return 0;
}
