// 3D vision-system-on-chip example (paper Sec. 5.1 / Sec. 7).
//
// A sensing die streams multiplexed Bayer colors to a processing die over a
// 3x3 TSV array (8 data lines + 1 redundant TSV). The pipeline combines the
// correlator (hidden in the AD converters) with the optimal bit-to-TSV
// assignment, checks pixel-exact recovery on the receiving die, and compares
// circuit-level power before/after.
#include <cstdio>
#include <vector>

#include "circuit/tsv_link_sim.hpp"
#include "coding/correlator.hpp"
#include "core/link.hpp"
#include "streams/image_sensor.hpp"

using namespace tsvcod;

int main() {
  const auto geom = phys::TsvArrayGeometry::itrs2018_min(3, 3);
  const core::Link link(geom);

  // --- sensing die: capture + correlate --------------------------------
  streams::BayerMuxStream sensor;                  // R, G1, G2, B per Bayer cell
  coding::CorrelatorCodec correlator(8, 4);        // XOR against same color, 4 channels
  const std::size_t cycles = 20000;
  std::vector<std::uint64_t> raw = streams::collect(sensor, cycles);
  std::vector<std::uint64_t> coded;
  coded.reserve(cycles);
  for (const auto w : raw) coded.push_back(correlator.encode(w));
  // Line 8 is the redundant TSV, parked at logical 0 (inversion allowed).

  // --- choose the assignment from the coded stream's statistics --------
  const auto st = stats::compute_stats(coded, 9);
  core::OptimizeOptions opts;
  opts.allow_invert = {1, 1, 1, 1, 1, 1, 1, 1, 1};
  opts.schedule.iterations = 15000;
  const auto best = core::optimize_assignment(st, link.model(), opts);
  const auto identity = core::SignedPermutation::identity(9);

  // --- receiving die: undo assignment + decorrelate, verify ------------
  coding::CorrelatorCodec decoder(8, 4);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < cycles; ++i) {
    const std::uint64_t on_tsvs = best.assignment.apply_word(coded[i]);
    // Invert the mapping: collect bits back into the coded word.
    std::uint64_t recovered = 0;
    for (std::size_t bit = 0; bit < 9; ++bit) {
      const std::uint64_t v = (on_tsvs >> best.assignment.line_of_bit(bit)) & 1u;
      recovered |= (v ^ (best.assignment.inverted(bit) ? 1u : 0u)) << bit;
    }
    if (decoder.decode(recovered & 0xFF) != raw[i]) ++errors;
  }
  std::printf("pixel recovery check     : %zu errors in %zu cycles\n", errors, cycles);

  // --- circuit-level power before/after --------------------------------
  const auto power_of = [&](const core::SignedPermutation& a) {
    const auto line_stats = a.apply(st);
    const auto cap = link.model().evaluate_eps(line_stats.eps());
    std::vector<std::uint64_t> line_words;
    for (std::size_t i = 0; i < 2000; ++i) line_words.push_back(a.apply_word(coded[i]));
    return circuit::simulate_link(geom, cap, line_words).total_power();
  };
  const double p_id = power_of(identity);
  const double p_opt = power_of(best.assignment);
  std::printf("link power, natural order: %.3f mW\n", p_id * 1e3);
  std::printf("link power, optimal map  : %.3f mW  (-%.1f %%)\n", p_opt * 1e3,
              (1.0 - p_opt / p_id) * 100.0);
  return errors == 0 ? 0 : 1;
}
