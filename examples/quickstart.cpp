// Quickstart — the 60-second tour of tsvcod:
//  1. describe a TSV array,
//  2. measure the bit statistics of your data,
//  3. ask for the power-optimal bit-to-TSV assignment,
//  4. read off the savings and the wiring plan.
#include <cstdio>

#include "core/link.hpp"
#include "streams/random_streams.hpp"

using namespace tsvcod;

int main() {
  // A 4x4 TSV array with the relaxed ITRS-2018 geometry (r = 2 um, d = 8 um).
  const auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(4, 4);
  const core::Link link(geom);  // fits the capacitance model internally

  // The data crossing the 3D interface: a 16-bit correlated DSP signal.
  streams::GaussianAr1Stream data(16, /*sigma=*/1500.0, /*rho=*/0.6, /*seed=*/1);
  const auto stats = link.measure(data, 50000);

  // Evaluate every assignment variant the paper discusses.
  const auto study = core::study_assignments(link, stats);

  std::printf("normalized power (aF units):\n");
  std::printf("  random assignment (mean) : %8.1f\n", study.random_mean * 1e18);
  std::printf("  Spiral (systematic)      : %8.1f  (-%.1f %%)\n", study.spiral * 1e18,
              study.reduction_spiral());
  std::printf("  Sawtooth (systematic)    : %8.1f  (-%.1f %%)\n", study.sawtooth * 1e18,
              study.reduction_sawtooth());
  std::printf("  optimal (Eq. 10)         : %8.1f  (-%.1f %%)\n", study.optimal * 1e18,
              study.reduction_optimal());

  // The wiring plan: which bit drives which TSV, and which are inverted.
  std::printf("\noptimal bit-to-TSV assignment (rows x cols, entries = bit index,\n"
              "'~' = transmitted inverted):\n");
  for (std::size_t r = 0; r < geom.rows; ++r) {
    for (std::size_t c = 0; c < geom.cols; ++c) {
      const std::size_t bit = study.optimal_map.bit_of_line(geom.index(r, c));
      std::printf("  %s%2zu", study.optimal_map.inverted(bit) ? "~" : " ", bit);
    }
    std::printf("\n");
  }
  return 0;
}
