// 3D network-on-chip vertical link example (paper Sec. 7, last experiment).
//
// In a 3D NoC the flits are coupling-invert encoded for the long planar
// links; a dedicated 3D re-encoding per vertical hop would be too costly.
// The TSV assignment is free, though: this example routes the 2D-coded flits
// plus a rarely set control flag and a Vdd supply TSV (inversion forbidden)
// through a 3x3+1 array and shows the recovered power. It also demonstrates
// constraint handling: the supply line must keep its polarity.
#include <cstdio>
#include <random>
#include <vector>

#include "coding/bus_invert.hpp"
#include "core/link.hpp"

using namespace tsvcod;

int main() {
  // 10 lines: 7 payload -> 8 coded (invert line), 1 control flag, 1 Vdd TSV.
  phys::TsvArrayGeometry geom;
  geom.rows = 2;
  geom.cols = 5;
  geom.radius = 1e-6;
  geom.pitch = 4e-6;
  const core::Link link(geom);

  std::mt19937_64 rng(1);
  coding::CouplingInvertCodec codec(7);
  std::bernoulli_distribution flag(1e-4);
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 40000; ++i) {
    const std::uint64_t coded = codec.encode(rng() & 0x7F);
    const std::uint64_t f = static_cast<std::uint64_t>(flag(rng)) << 8;
    const std::uint64_t vdd = std::uint64_t{1} << 9;  // supply TSV, constant 1
    words.push_back(coded | f | vdd);
  }
  const auto st = stats::compute_stats(words, 10);

  core::OptimizeOptions opts;
  opts.allow_invert = {1, 1, 1, 1, 1, 1, 1, 1, 1, 0};  // Vdd keeps polarity
  opts.schedule.iterations = 15000;
  const auto best = core::optimize_assignment(st, link.model(), opts);
  const auto base = core::random_assignment_power(st, link.model(), 300);

  std::printf("2D-coded NoC flits over a 2x5 TSV array\n");
  std::printf("  random assignment (mean): %8.1f aF\n", base.mean * 1e18);
  std::printf("  optimal assignment      : %8.1f aF  (-%.1f %%)\n", best.power * 1e18,
              core::reduction_pct(base.mean, best.power));
  std::printf("  flag line inverted      : %s (flag is ~always 0 -> invert to 1)\n",
              best.assignment.inverted(8) ? "yes" : "no");
  std::printf("  Vdd line inverted       : %s (forbidden by constraint)\n",
              best.assignment.inverted(9) ? "yes" : "no");
  return best.assignment.inverted(9) ? 1 : 0;
}
