// Unit tests for the analytic TSV capacitance model, the linear
// capacitance-vs-probability fit (paper Eq. 6/7) and the routing-overhead
// study of Sec. 3.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "phys/tsv_geometry.hpp"
#include "tsv/analytic_model.hpp"
#include "tsv/linear_model.hpp"
#include "tsv/routing.hpp"

namespace {

using namespace tsvcod;
using phys::TsvArrayGeometry;

std::vector<double> half_probs(const TsvArrayGeometry& g) {
  return std::vector<double>(g.count(), 0.5);
}

double total_cap(const phys::Matrix& c, std::size_t i) {
  double t = 0.0;
  for (std::size_t j = 0; j < c.cols(); ++j) t += c(i, j);
  return t;
}

TEST(Analytic, SymmetricPositiveMatrix) {
  auto g = TsvArrayGeometry::itrs2018_min(3, 3);
  const auto c = tsv::analytic_capacitance(g, half_probs(g));
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_GE(c(i, i), 0.0);
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_DOUBLE_EQ(c(i, j), c(j, i));
      EXPECT_GE(c(i, j), 0.0);
    }
  }
}

TEST(Analytic, EdgeEffectsMatchLiterature) {
  // Paper Sec. 4 citing [Bamberg, Integration'18]:
  //  * corner TSVs have the lowest total capacitance, middle the highest;
  //  * the largest couplings sit between corner TSVs and their direct
  //    adjacent edge TSVs (reduced E-field sharing);
  //  * diagonal couplings are weaker than direct ones.
  auto g = TsvArrayGeometry::itrs2018_min(3, 3);
  const auto c = tsv::analytic_capacitance(g, half_probs(g));
  const auto corner = g.index(0, 0);
  const auto edge = g.index(0, 1);
  const auto mid = g.index(1, 1);

  EXPECT_LT(total_cap(c, corner), total_cap(c, edge));
  EXPECT_LT(total_cap(c, edge), total_cap(c, mid));

  const double corner_edge = c(corner, edge);
  const double edge_mid = c(edge, mid);
  const double corner_mid_diag = c(corner, mid);
  EXPECT_GT(corner_edge, edge_mid);
  EXPECT_GT(edge_mid, corner_mid_diag);
}

TEST(Analytic, MosEffectShrinksCapacitances) {
  auto g = TsvArrayGeometry::itrs2018_relaxed(2, 2);
  const std::vector<double> p0(4, 0.0), p1(4, 1.0);
  const auto c0 = tsv::analytic_capacitance(g, p0);
  const auto c1 = tsv::analytic_capacitance(g, p1);
  EXPECT_LT(c1(0, 1), c0(0, 1));
  EXPECT_LT(c1(0, 0), c0(0, 0));
  const double reduction = 1.0 - c1(0, 1) / c0(0, 1);
  EXPECT_GT(reduction, 0.10);
  EXPECT_LT(reduction, 0.60);
}

TEST(Analytic, SingleTsvHasOnlyGroundCap) {
  TsvArrayGeometry g = TsvArrayGeometry::itrs2018_min(1, 1);
  const std::vector<double> pr(1, 0.5);
  const auto c = tsv::analytic_capacitance(g, pr);
  EXPECT_GT(c(0, 0), 0.0);
}

TEST(Analytic, ArraySymmetryOfCouplings) {
  auto g = TsvArrayGeometry::itrs2018_min(3, 3);
  const auto c = tsv::analytic_capacitance(g, half_probs(g));
  // The four corner-to-adjacent-edge couplings must be identical by symmetry.
  const double a = c(g.index(0, 0), g.index(0, 1));
  const double b = c(g.index(0, 2), g.index(0, 1));
  const double d = c(g.index(2, 0), g.index(1, 0));
  EXPECT_NEAR(a, b, 1e-6 * a);
  EXPECT_NEAR(a, d, 1e-6 * a);
}

TEST(LinearModel, ReproducesEndpointsExactly) {
  auto g = TsvArrayGeometry::itrs2018_min(2, 3);
  const auto backend = [&](std::span<const double> pr) {
    return tsv::analytic_capacitance(g, pr);
  };
  const auto model = tsv::fit_linear_model(backend, g.count());
  const std::vector<double> p0(g.count(), 0.0), p1(g.count(), 1.0);
  const auto c0 = backend(p0);
  const auto c1 = backend(p1);
  const auto m0 = model.evaluate(p0);
  const auto m1 = model.evaluate(p1);
  for (std::size_t i = 0; i < g.count(); ++i) {
    for (std::size_t j = 0; j < g.count(); ++j) {
      EXPECT_NEAR(m0(i, j), c0(i, j), 1e-21);
      EXPECT_NEAR(m1(i, j), c1(i, j), 1e-21);
    }
  }
}

TEST(LinearModel, DeltaCIsNegativeForTsvs) {
  auto g = TsvArrayGeometry::itrs2018_min(2, 2);
  const auto model = tsv::fit_from_analytic(g);
  // Higher probability -> wider depletion -> smaller capacitance.
  EXPECT_LT(model.delta_c()(0, 1), 0.0);
  EXPECT_LT(model.delta_c()(0, 0), 0.0);
}

TEST(LinearModel, NrmseBelowPaperBound) {
  auto g = TsvArrayGeometry::itrs2018_min(2, 2);
  const auto backend = [&](std::span<const double> pr) {
    return tsv::analytic_capacitance(g, pr);
  };
  const auto model = tsv::fit_linear_model(backend, g.count());
  const double nrmse = tsv::linearity_nrmse(backend, model, g.count(), 32);
  // Paper Sec. 3 quotes < 2 % for the Q3D data; our deep-depletion model has
  // a slightly harder nonlinearity near pr = 0 (w jumps off zero), so the
  // bound is relaxed but must stay "a few percent" for Eq. 7 to be usable.
  EXPECT_LT(nrmse, 0.06);
}

TEST(LinearModel, InversionFlipsEpsSign) {
  auto g = TsvArrayGeometry::itrs2018_min(2, 2);
  const auto model = tsv::fit_from_analytic(g);
  const std::vector<double> eps{0.3, -0.3, 0.0, 0.1};
  std::vector<double> neg = eps;
  for (auto& e : neg) e = -e;
  const auto c = model.evaluate_eps(eps);
  const auto cn = model.evaluate_eps(neg);
  // eps -> -eps mirrors the capacitance around C_R.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(0.5 * (c(i, j) + cn(i, j)), model.c_ref()(i, j), 1e-21);
    }
  }
}

TEST(LinearModel, EvaluateChecksSize) {
  auto g = TsvArrayGeometry::itrs2018_min(2, 2);
  const auto model = tsv::fit_from_analytic(g);
  const std::vector<double> bad(3, 0.5);
  EXPECT_THROW(model.evaluate(bad), std::invalid_argument);
}

TEST(Routing, EntryPointsSpanTheArray) {
  auto g = TsvArrayGeometry::itrs2018_min(3, 3);
  const auto pts = tsv::entry_points(g);
  ASSERT_EQ(pts.size(), 9u);
  EXPECT_DOUBLE_EQ(pts.front().x, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().x, 2.0 * g.pitch);
  for (const auto& p : pts) EXPECT_LT(p.y, 0.0);
}

TEST(Routing, WirelengthOfAssignment) {
  auto g = TsvArrayGeometry::itrs2018_min(2, 2);
  std::vector<std::size_t> ident{0, 1, 2, 3};
  const double wl = tsv::assignment_wirelength(g, ident);
  EXPECT_GT(wl, 0.0);
  std::vector<std::size_t> swapped{3, 1, 2, 0};
  EXPECT_GT(tsv::assignment_wirelength(g, swapped), wl);
}

TEST(Routing, OverheadIsMarginal3x3) {
  // Reproduces the Sec. 3 claim: over all assignments of a 3x3 array the
  // path-parasitic increase versus a wirelength-minimal routing stays well
  // below 1 % (paper: worst 0.4 %, mean < 0.2 %, std < 0.1 %).
  auto g = TsvArrayGeometry::itrs2018_relaxed(3, 3);
  const auto c = tsv::analytic_capacitance(g, half_probs(g));
  std::vector<double> totals(9);
  for (std::size_t i = 0; i < 9; ++i) totals[i] = total_cap(c, i);
  const auto stats = tsv::routing_overhead_stats(g, totals);
  EXPECT_TRUE(stats.exhaustive);
  EXPECT_EQ(stats.assignments, 362880u);  // 9!
  EXPECT_LT(stats.worst_pct, 2.0);
  EXPECT_LT(stats.mean_pct, 1.0);
  EXPECT_LT(stats.stddev_pct, 0.5);
  EXPECT_GT(stats.worst_pct, 0.0);
}

}  // namespace
