// Unit tests for the core contribution: signed permutations, the <T,C> power
// model, systematic mappings and the assignment optimizers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <set>
#include <thread>

#include "core/assignment.hpp"
#include "core/link.hpp"
#include "core/mappings.hpp"
#include "core/optimize.hpp"
#include "core/power.hpp"
#include "streams/random_streams.hpp"

namespace {

using namespace tsvcod;
using core::SignedPermutation;
using phys::TsvArrayGeometry;

stats::SwitchingStats stats_of(std::span<const std::uint64_t> words, std::size_t width) {
  return stats::compute_stats(words, width);
}

TEST(SignedPermutation, IdentityBasics) {
  const auto p = SignedPermutation::identity(4);
  EXPECT_EQ(p.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(p.line_of_bit(i), i);
    EXPECT_EQ(p.bit_of_line(i), i);
    EXPECT_FALSE(p.inverted(i));
  }
  EXPECT_EQ(p.apply_word(0b1010), 0b1010u);
}

TEST(SignedPermutation, ExplicitConstructionValidates) {
  EXPECT_NO_THROW(SignedPermutation({2, 0, 1}, {0, 1, 0}));
  EXPECT_THROW(SignedPermutation({0, 0, 1}, {0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(SignedPermutation({0, 1, 3}, {0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(SignedPermutation({0, 1, 2}, {0, 0}), std::invalid_argument);
  EXPECT_THROW(SignedPermutation(0), std::invalid_argument);
}

TEST(SignedPermutation, SwapAndToggle) {
  auto p = SignedPermutation::identity(3);
  p.swap_bits(0, 2);
  EXPECT_EQ(p.line_of_bit(0), 2u);
  EXPECT_EQ(p.line_of_bit(2), 0u);
  EXPECT_EQ(p.bit_of_line(2), 0u);
  p.toggle_inversion(1);
  EXPECT_TRUE(p.inverted(1));
  // word 0b001 -> bit0 to line2; bit1 (0) inverted to 1 on line1.
  EXPECT_EQ(p.apply_word(0b001), 0b110u);
}

TEST(SignedPermutation, MatrixMatchesPaperExample) {
  // Paper Eq. 5: bit 3 negated to line 1, bit 1 to line 2, bit 2 to line 3.
  // (1-based in the paper; 0-based here.)
  const SignedPermutation p({1, 2, 0}, {0, 0, 1});  // bit2 -> line0 inverted
  const auto a = p.matrix();
  EXPECT_DOUBLE_EQ(a(0, 2), -1.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(2, 1), 1.0);
  // Exactly one +-1 per row and column.
  for (std::size_t r = 0; r < 3; ++r) {
    int nonzero = 0;
    for (std::size_t c = 0; c < 3; ++c) {
      if (a(r, c) != 0.0) ++nonzero;
    }
    EXPECT_EQ(nonzero, 1);
  }
}

TEST(SignedPermutation, ApplyMatchesMatrixAlgebra) {
  // T'_c = A T_c A^T (Eq. 4), checked against the direct transform.
  std::mt19937_64 rng(3);
  streams::UniformRandomStream src(5, 17);
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 4000; ++i) words.push_back(src.next());
  const auto s = stats_of(words, 5);

  auto p = SignedPermutation::random(5, rng, std::vector<std::uint8_t>(5, 1));
  const auto line_stats = p.apply(s);
  const auto a = p.matrix();
  const auto tc_lines = a * s.coupling * a.transposed();
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      if (i == j) continue;  // diagonal of `coupling` holds self terms (sign-free)
      EXPECT_NEAR(line_stats.coupling(i, j), tc_lines(i, j), 1e-12);
    }
  }
}

TEST(SignedPermutation, ApplyEqualsStatsOfMappedStream) {
  // Property: statistics transformed by apply() == statistics measured on the
  // physically mapped words. This is the core correctness property.
  std::mt19937_64 rng(11);
  for (int round = 0; round < 5; ++round) {
    streams::SequentialStream src(6, 0.2, 100 + static_cast<std::uint64_t>(round));
    std::vector<std::uint64_t> words;
    for (int i = 0; i < 3000; ++i) words.push_back(src.next());
    const auto bit_stats = stats_of(words, 6);

    const auto p = SignedPermutation::random(6, rng, std::vector<std::uint8_t>(6, 1));
    std::vector<std::uint64_t> mapped;
    mapped.reserve(words.size());
    for (const auto w : words) mapped.push_back(p.apply_word(w));
    const auto measured = stats_of(mapped, 6);
    const auto transformed = p.apply(bit_stats);

    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_NEAR(transformed.self[i], measured.self[i], 1e-12);
      EXPECT_NEAR(transformed.prob_one[i], measured.prob_one[i], 1e-12);
      for (std::size_t j = 0; j < 6; ++j) {
        EXPECT_NEAR(transformed.coupling(i, j), measured.coupling(i, j), 1e-12);
      }
    }
  }
}

TEST(SignedPermutation, RandomRespectsInvertMask) {
  std::mt19937_64 rng(5);
  const std::vector<std::uint8_t> allow{1, 0, 1, 0};
  for (int i = 0; i < 50; ++i) {
    const auto p = SignedPermutation::random(4, rng, allow);
    EXPECT_FALSE(p.inverted(1));
    EXPECT_FALSE(p.inverted(3));
  }
}

TEST(Power, MatchesFrobeniusForm) {
  streams::UniformRandomStream src(4, 2);
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 2000; ++i) words.push_back(src.next());
  const auto s = stats_of(words, 4);
  auto geom = TsvArrayGeometry::itrs2018_min(2, 2);
  const auto c = tsv::analytic_capacitance(geom, std::vector<double>(4, 0.5));
  EXPECT_NEAR(core::normalized_power(s, c), s.t_matrix().frobenius(c), 1e-20);
}

TEST(Power, HandComputedTwoLineCase) {
  // Two lines toggling in opposite directions every cycle.
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 100; ++i) words.push_back(i % 2 ? 0b10 : 0b01);
  const auto s = stats_of(words, 2);
  phys::Matrix c(2, 2);
  c(0, 0) = c(1, 1) = 1.0;  // ground caps
  c(0, 1) = c(1, 0) = 2.0;  // coupling cap
  // P = self0*C00 + self1*C11 + (self0 - k)*C01 + (self1 - k)*C10
  //   = 1 + 1 + (1 - (-1))*2 * 2 = 2 + 8 = 10.
  EXPECT_NEAR(core::normalized_power(s, c), 10.0, 1e-12);
}

TEST(Power, BitExactEnergyMatchesExpectation) {
  // Accumulating (db_i^2 C_ii + sum_{i<j} (db_i - db_j)^2 C_ij) per cycle
  // over the stream must equal <T, C> exactly (it is its empirical mean).
  streams::SequentialStream src(6, 0.3, 9);
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 5000; ++i) words.push_back(src.next());
  const auto s = stats_of(words, 6);
  auto geom = TsvArrayGeometry::itrs2018_min(2, 3);
  const auto c = tsv::analytic_capacitance(geom, std::vector<double>(6, 0.5));

  double energy = 0.0;
  for (std::size_t t = 1; t < words.size(); ++t) {
    for (std::size_t i = 0; i < 6; ++i) {
      const int dbi = static_cast<int>((words[t] >> i) & 1u) -
                      static_cast<int>((words[t - 1] >> i) & 1u);
      energy += static_cast<double>(dbi * dbi) * c(i, i);
      for (std::size_t j = i + 1; j < 6; ++j) {
        const int dbj = static_cast<int>((words[t] >> j) & 1u) -
                        static_cast<int>((words[t - 1] >> j) & 1u);
        const int d = dbi - dbj;
        energy += static_cast<double>(d * d) * c(i, j);
      }
    }
  }
  energy /= static_cast<double>(words.size() - 1);
  EXPECT_NEAR(core::normalized_power(s, c), energy, 1e-15 * energy + 1e-25);
}

TEST(Power, PhysicalScaling) {
  EXPECT_DOUBLE_EQ(core::physical_power(1e-13, 1.0, 3e9), 1e-13 * 3e9 / 2.0);
}

TEST(Mappings, RingOrderCoversArrayOnce) {
  auto geom = TsvArrayGeometry::itrs2018_min(3, 4);
  const auto order = core::ring_order(geom);
  EXPECT_EQ(order.size(), 12u);
  EXPECT_EQ(std::set<std::size_t>(order.begin(), order.end()).size(), 12u);
  EXPECT_EQ(order.front(), geom.index(0, 0));
  // Last ring element of a 3x4 is the inner 1x2 row.
  EXPECT_EQ(order.back(), geom.index(1, 2));
}

TEST(Mappings, SpiralOrderClassesAscend) {
  auto geom = TsvArrayGeometry::itrs2018_min(4, 4);
  const auto order = core::spiral_order(geom);
  // Corners first (4), then edges (8), then middle (4).
  for (int k = 0; k < 4; ++k) EXPECT_TRUE(geom.is_corner(order[static_cast<std::size_t>(k)]));
  for (int k = 4; k < 12; ++k) EXPECT_TRUE(geom.is_edge(order[static_cast<std::size_t>(k)]));
  for (int k = 12; k < 16; ++k) EXPECT_TRUE(geom.is_middle(order[static_cast<std::size_t>(k)]));
}

TEST(Mappings, SawtoothOrderMatchesFig1b) {
  auto geom = TsvArrayGeometry::itrs2018_min(4, 4);
  const auto order = core::sawtooth_order(geom);
  // First two rows, zigzag by column.
  EXPECT_EQ(order[0], geom.index(0, 0));
  EXPECT_EQ(order[1], geom.index(1, 0));
  EXPECT_EQ(order[2], geom.index(0, 1));
  EXPECT_EQ(order[3], geom.index(1, 1));
  EXPECT_EQ(order[7], geom.index(1, 3));
  // Then row-major rows 2 and 3.
  EXPECT_EQ(order[8], geom.index(2, 0));
  EXPECT_EQ(order[15], geom.index(3, 3));
}

TEST(Mappings, GreedyCouplingStartsAtStrongestPair) {
  auto geom = TsvArrayGeometry::itrs2018_min(3, 3);
  const auto c = tsv::analytic_capacitance(geom, std::vector<double>(9, 0.5));
  const auto order = core::greedy_coupling_order(c);
  EXPECT_EQ(order.size(), 9u);
  EXPECT_EQ(std::set<std::size_t>(order.begin(), order.end()).size(), 9u);
  // The strongest couplings are corner-to-adjacent-edge.
  const bool corner_first = geom.is_corner(order[0]) || geom.is_corner(order[1]);
  const bool edge_involved = geom.is_edge(order[0]) || geom.is_edge(order[1]);
  EXPECT_TRUE(corner_first);
  EXPECT_TRUE(edge_involved);
  EXPECT_NEAR(geom.distance(order[0], order[1]), geom.pitch, 1e-12);
}

TEST(Mappings, RanksAreStablePermutations) {
  streams::GaussianAr1Stream src(8, 20.0, 0.5, 21);
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 20000; ++i) words.push_back(src.next());
  const auto s = stats_of(words, 8);
  const auto by_self = core::rank_by_self_switching(s);
  const auto by_corr = core::rank_by_correlation(s);
  EXPECT_EQ(std::set<std::size_t>(by_self.begin(), by_self.end()).size(), 8u);
  EXPECT_EQ(std::set<std::size_t>(by_corr.begin(), by_corr.end()).size(), 8u);
  // Correlation rank must lead with the MSB region (sign bits correlate).
  EXPECT_GE(by_corr[0], 5u);
  // Self-switching rank must lead with a busy LSB-region bit.
  EXPECT_LE(by_self[0], 4u);
}

TEST(Optimize, MatchesExhaustiveOnSmallArray) {
  // Ground truth: SA must find the exhaustive optimum (2x2, inversions on).
  auto geom = TsvArrayGeometry::itrs2018_min(2, 2);
  const core::Link link(geom);
  streams::GaussianAr1Stream src(4, 3.0, 0.4, 5);
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 20000; ++i) words.push_back(src.next());
  const auto s = stats_of(words, 4);

  core::OptimizeOptions opts;
  opts.schedule.iterations = 4000;
  const auto sa = core::optimize_assignment(s, link.model(), opts);
  const auto ex = core::exhaustive_optimal(s, link.model(), opts);
  EXPECT_NEAR(sa.power, ex.power, 1e-9 * std::abs(ex.power));
  EXPECT_LE(ex.power, sa.power + 1e-18);
}

TEST(Optimize, ExhaustiveRejectsHugeSpaces) {
  auto geom = TsvArrayGeometry::itrs2018_min(4, 4);
  const core::Link link(geom);
  streams::UniformRandomStream src(16, 1);
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 100; ++i) words.push_back(src.next());
  const auto s = stats_of(words, 16);
  EXPECT_THROW(core::exhaustive_optimal(s, link.model()), std::invalid_argument);
}

TEST(Optimize, InversionExploitsNegativeCorrelation) {
  // Complementary toggling bit pairs: with inversions the optimizer must do
  // strictly better than without (paper Sec. 3).
  auto geom = TsvArrayGeometry::itrs2018_min(2, 2);
  const core::Link link(geom);
  std::vector<std::uint64_t> words;
  std::mt19937_64 rng(3);
  std::uint64_t w = 0b0101;
  for (int i = 0; i < 8000; ++i) {
    if (rng() & 1u) w ^= 0b0011;  // bits 0,1 toggle together...
    if (rng() & 1u) w ^= 0b1100;
    words.push_back(w ^ 0b0110);  // ...but lines 1,2 are transmitted negated
  }
  const auto s = stats_of(words, 4);

  core::OptimizeOptions with_inv;
  with_inv.schedule.iterations = 3000;
  core::OptimizeOptions no_inv = with_inv;
  no_inv.allow_inversions = false;
  const auto a = core::exhaustive_optimal(s, link.model(), with_inv);
  const auto b = core::exhaustive_optimal(s, link.model(), no_inv);
  EXPECT_LT(a.power, b.power * 0.999);
}

TEST(Optimize, InversionExploitsMosEffect) {
  // A line stable at 0 has eps = -1/2 and the largest capacitance; inverting
  // it to a stable 1 shrinks every capacitance it touches. The optimizer
  // must take that win.
  auto geom = TsvArrayGeometry::itrs2018_min(2, 2);
  const core::Link link(geom);
  streams::UniformRandomStream inner(3, 4);
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 20000; ++i) words.push_back(inner.next());  // bit 3 stays 0
  const auto s = stats_of(words, 4);

  const auto res = core::exhaustive_optimal(s, link.model());
  EXPECT_TRUE(res.assignment.inverted(3));
}

TEST(Optimize, RespectsForbiddenInversions) {
  auto geom = TsvArrayGeometry::itrs2018_min(2, 2);
  const core::Link link(geom);
  streams::UniformRandomStream inner(3, 4);
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 5000; ++i) words.push_back(inner.next());
  const auto s = stats_of(words, 4);

  core::OptimizeOptions opts;
  opts.allow_invert = {1, 1, 1, 0};  // bit 3 is a ground line: never invert
  opts.schedule.iterations = 2000;
  const auto sa = core::optimize_assignment(s, link.model(), opts);
  EXPECT_FALSE(sa.assignment.inverted(3));
  const auto ex = core::exhaustive_optimal(s, link.model(), opts);
  EXPECT_FALSE(ex.assignment.inverted(3));
}

TEST(Optimize, RandomBaselineOrdering) {
  auto geom = TsvArrayGeometry::itrs2018_min(2, 3);
  const core::Link link(geom);
  streams::SequentialStream src(6, 0.05, 6);
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 10000; ++i) words.push_back(src.next());
  const auto s = stats_of(words, 6);

  const auto base = core::random_assignment_power(s, link.model(), 100);
  EXPECT_LE(base.best, base.mean);
  EXPECT_LE(base.mean, base.worst);
  const auto opt = core::exhaustive_optimal(s, link.model());
  EXPECT_LE(opt.power, base.best + 1e-18);
}

TEST(Link, StudyIsInternallyConsistent) {
  auto geom = TsvArrayGeometry::itrs2018_relaxed(3, 3);
  const core::Link link(geom);
  streams::SequentialStream src(9, 0.02, 12);
  const auto s = link.measure(src, 20000);

  core::StudyOptions opts;
  opts.optimize.schedule.iterations = 5000;
  const auto study = core::study_assignments(link, s, opts);
  EXPECT_LE(study.optimal, study.spiral + 1e-18);
  EXPECT_LE(study.optimal, study.sawtooth + 1e-18);
  EXPECT_LE(study.optimal, study.random_mean);
  EXPECT_LE(study.random_mean, study.random_worst);
  EXPECT_GT(study.reduction_optimal(), 0.0);
  EXPECT_GE(study.reduction_optimal(), study.reduction_spiral() - 1e-9);
}

TEST(Link, MeasureChecksWidth) {
  auto geom = TsvArrayGeometry::itrs2018_min(2, 2);
  const core::Link link(geom);
  streams::UniformRandomStream narrow(3, 1);
  EXPECT_THROW(link.measure(narrow, 100), std::invalid_argument);
}

TEST(Link, ReductionPercentHelpers) {
  EXPECT_DOUBLE_EQ(core::reduction_pct(2.0, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(core::reduction_pct(0.0, 1.0), 0.0);
}

// --- CodedLink: atomic reset of stateful codec pairs -----------------------

TEST(CodedLink, RoundTripAcrossAtomicReset) {
  // Regression for the desync hazard: resetting a stateful tx/rx pair must
  // be one operation. Interleave resets with traffic and require identity
  // throughout (a one-sided reset breaks this for history-keeping codecs).
  std::mt19937_64 rng(5);
  for (const auto& name : coding::codec_names()) {
    coding::CodecSpec spec;
    spec.name = name;
    spec.period = 2;
    auto codec = coding::make_codec(spec, 8);
    const std::size_t lines = codec->width_out();
    const auto a = SignedPermutation::random(lines, rng, std::vector<std::uint8_t>(lines, 1));
    core::CodedLink link(a, std::move(codec));
    for (int round = 0; round < 4; ++round) {
      for (int k = 0; k < 50; ++k) {
        const std::uint64_t w = rng() & 0xFFu;
        EXPECT_EQ(link.roundtrip(w), w) << name << " round " << round << " word " << k;
      }
      link.reset();
    }
  }
}

TEST(CodedLink, OneSidedResetDesyncsAndAtomicResetRecovers) {
  // Demonstrate the failure mode CodedLink exists to prevent. Correlator,
  // period 1: code = word ^ prev. After tx-only reset the decoder still
  // holds its history, so the same word decodes wrongly.
  coding::CodecSpec spec;
  spec.name = "correlator";
  core::CodedLink link(SignedPermutation::identity(4), coding::make_codec(spec, 4));
  EXPECT_EQ(link.roundtrip(0x5), 0x5u);

  link.transmitter().reset();        // the forbidden one-sided reset
  EXPECT_NE(link.roundtrip(0x5), 0x5u);  // pair is now desynced

  link.reset();                      // atomic: both endpoints together
  EXPECT_EQ(link.roundtrip(0x5), 0x5u);
  EXPECT_EQ(link.roundtrip(0xA), 0xAu);
}

TEST(CodedLink, ReceiverIsCloneOfTransmitter) {
  // Constructing from a codec that has already seen traffic must still give
  // a synchronized pair: the ctor resets before cloning.
  coding::CodecSpec spec;
  spec.name = "bus-invert";
  auto codec = coding::make_codec(spec, 7);
  (void)codec->encode(0x7F);
  (void)codec->encode(0x00);
  core::CodedLink link(SignedPermutation::identity(8), std::move(codec));
  for (std::uint64_t w : {0x7Full, 0x00ull, 0x55ull, 0x2Aull}) {
    EXPECT_EQ(link.roundtrip(w), w);
  }
}

TEST(CodedLink, RejectsMismatchedAssignment) {
  coding::CodecSpec spec;
  spec.name = "bus-invert";  // 7 payload bits -> 8 lines
  EXPECT_THROW(core::CodedLink(SignedPermutation::identity(7), coding::make_codec(spec, 7)),
               std::invalid_argument);
}

TEST(CodedLink, HotSwapUnderConcurrentTrafficNeverDesyncs) {
  // The streaming service's core guarantee, at the link level: assignment
  // hot-swaps (reset(next)) landing mid-stream between atomic roundtrips
  // from several traffic threads must cause zero decode desyncs. Correlator
  // is the adversarial choice — any split of the stateful tx/rx pair, or a
  // word encoded under one assignment and unassigned under another, decodes
  // wrongly immediately.
  coding::CodecSpec spec;
  spec.name = "correlator";
  core::CodedLink link(SignedPermutation::identity(8), coding::make_codec(spec, 8));

  constexpr int kTrafficThreads = 4;
  constexpr int kWordsPerThread = 20000;
  constexpr int kSwaps = 200;
  std::atomic<std::uint64_t> desyncs{0};
  std::atomic<bool> go{false};

  std::vector<std::thread> traffic;
  traffic.reserve(kTrafficThreads);
  for (int t = 0; t < kTrafficThreads; ++t) {
    traffic.emplace_back([&, t] {
      std::mt19937_64 rng(101 + t);
      while (!go.load()) {}
      for (int k = 0; k < kWordsPerThread; ++k) {
        const std::uint64_t w = rng() & 0xFFu;
        if (link.roundtrip(w) != w) desyncs.fetch_add(1);
      }
    });
  }
  std::thread swapper([&] {
    std::mt19937_64 rng(77);
    const std::vector<std::uint8_t> invertible(8, 1);
    while (!go.load()) {}
    for (int s = 0; s < kSwaps; ++s) {
      link.reset(SignedPermutation::random(8, rng, invertible));
      std::this_thread::yield();
    }
  });

  go.store(true);
  for (auto& t : traffic) t.join();
  swapper.join();
  EXPECT_EQ(desyncs.load(), 0u);

  // The link is still a synchronized pair after the last swap.
  for (std::uint64_t w : {0x00ull, 0xFFull, 0x5Aull, 0xA5ull}) {
    EXPECT_EQ(link.roundtrip(w), w);
  }
}

TEST(Link, CodedChainMatchesArrayWidth) {
  const auto geom = TsvArrayGeometry::itrs2018_min(3, 3);
  core::Link link(geom);
  std::mt19937_64 rng(11);
  const auto a = SignedPermutation::random(9, rng, std::vector<std::uint8_t>(9, 1));

  coding::CodecSpec spec;
  spec.name = "bus-invert";  // 9 lines -> 8 payload bits
  auto coded = link.coded(spec, a);
  EXPECT_EQ(coded.payload_width(), 8u);
  EXPECT_EQ(coded.line_width(), 9u);
  for (std::uint64_t w = 0; w < 256; ++w) {
    EXPECT_EQ(coded.roundtrip(w), w);
  }
  EXPECT_THROW(link.coded(spec, SignedPermutation::identity(4)), std::invalid_argument);
}

}  // namespace
