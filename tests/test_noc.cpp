// Tests for the 3D-mesh NoC substrate: topology/routing invariants, the
// batched router core, traffic patterns, the parallel cycle kernel's
// determinism (bit-identity across thread counts, differential equality with
// the reference simulator), flit conservation, back-pressure accounting,
// deadlock freedom and the per-link adaptive-coding layer.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "noc/coded.hpp"
#include "noc/reference.hpp"
#include "noc/simulator.hpp"
#include "stats/switching_stats.hpp"

namespace {

using namespace tsvcod;
using namespace tsvcod::noc;

TEST(Topology, IndexRoundTrip) {
  Mesh3D mesh(4, 3, 2);
  EXPECT_EQ(mesh.node_count(), 24u);
  for (std::size_t i = 0; i < mesh.node_count(); ++i) {
    EXPECT_EQ(mesh.index(mesh.node(i)), i);
  }
  EXPECT_THROW(mesh.node(24), std::out_of_range);
  EXPECT_THROW(mesh.index(NodeId{4, 0, 0}), std::out_of_range);
  EXPECT_THROW(Mesh3D(0, 1, 1), std::invalid_argument);
}

TEST(Topology, NeighborsRespectBoundaries) {
  Mesh3D mesh(2, 2, 2);
  const NodeId corner{0, 0, 0};
  EXPECT_FALSE(mesh.neighbor(corner, Direction::XMinus).has_value());
  EXPECT_FALSE(mesh.neighbor(corner, Direction::YMinus).has_value());
  EXPECT_FALSE(mesh.neighbor(corner, Direction::ZMinus).has_value());
  EXPECT_EQ(mesh.neighbor(corner, Direction::XPlus)->x, 1u);
  EXPECT_EQ(mesh.neighbor(corner, Direction::ZPlus)->z, 1u);
}

TEST(Topology, IndexNeighboursMatchNodeNeighbours) {
  Mesh3D mesh(3, 4, 2);
  for (std::size_t i = 0; i < mesh.node_count(); ++i) {
    for (int d = 0; d < 6; ++d) {
      const auto dir = static_cast<Direction>(d);
      const auto by_node = mesh.neighbor(mesh.node(i), dir);
      const std::size_t by_index = mesh.neighbor_index(i, dir);
      if (by_node.has_value()) {
        EXPECT_EQ(by_index, mesh.index(*by_node));
      } else {
        EXPECT_EQ(by_index, Mesh3D::npos);
      }
    }
  }
}

TEST(Topology, XyzRoutingReachesDestination) {
  Mesh3D mesh(4, 4, 3);
  const NodeId src{0, 3, 0};
  const NodeId dst{3, 1, 2};
  NodeId at = src;
  std::size_t hops = 0;
  while (true) {
    const Direction d = mesh.route(at, dst);
    EXPECT_EQ(d, mesh.route_index(mesh.index(at), mesh.index(dst)));
    if (d == Direction::Local) break;
    at = *mesh.neighbor(at, d);
    ASSERT_LE(++hops, 20u) << "routing must terminate";
  }
  EXPECT_EQ(at, dst);
  EXPECT_EQ(hops, mesh.hop_count(src, dst));
}

TEST(Topology, XyzOrderIsDimensionOrdered) {
  Mesh3D mesh(3, 3, 3);
  // X is always corrected before Y before Z.
  EXPECT_EQ(mesh.route(NodeId{0, 2, 2}, NodeId{2, 0, 0}), Direction::XPlus);
  EXPECT_EQ(mesh.route(NodeId{2, 2, 2}, NodeId{2, 0, 0}), Direction::YMinus);
  EXPECT_EQ(mesh.route(NodeId{2, 0, 2}, NodeId{2, 0, 0}), Direction::ZMinus);
}

TEST(Topology, VerticalLinksEnumerateEveryTsvBundle) {
  Mesh3D mesh(3, 2, 3);
  const auto links = vertical_links(mesh);
  // nx*ny*(nz-1) up plus the same down.
  EXPECT_EQ(links.size(), 2u * 3u * 2u * 2u);
  std::set<std::pair<std::size_t, int>> seen;
  for (const auto& link : links) {
    EXPECT_TRUE(link_exists(mesh, link));
    EXPECT_TRUE(Mesh3D::is_vertical(link.out));
    seen.insert({mesh.index(link.from), static_cast<int>(link.out)});
  }
  EXPECT_EQ(seen.size(), links.size()) << "no duplicates";
}

TEST(Validation, ErrorsNameTheOffendingField) {
  const auto message_of = [](auto&& fn) -> std::string {
    try {
      fn();
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(message_of([] { Mesh3D(0, 2, 2); }).find("nx"), std::string::npos);
  EXPECT_NE(message_of([] { Mesh3D(2, 2, 0); }).find("nz"), std::string::npos);

  TrafficConfig bad_rate;
  bad_rate.injection_rate = 1.5;
  EXPECT_NE(message_of([&] { bad_rate.validate(); }).find("TrafficConfig.injection_rate"),
            std::string::npos);
  TrafficConfig bad_width;
  bad_width.flit_width = 0;
  EXPECT_NE(message_of([&] { bad_width.validate(); }).find("TrafficConfig.flit_width"),
            std::string::npos);
  bad_width.flit_width = 65;
  EXPECT_THROW(bad_width.validate(), std::invalid_argument);
  TrafficConfig bad_burst;
  bad_burst.burst_on = 10.0;  // burst_off left unset
  EXPECT_NE(message_of([&] { bad_burst.validate(); }).find("burst_on"), std::string::npos);

  SimOptions bad_threads;
  bad_threads.threads = -1;
  EXPECT_NE(message_of([&] { bad_threads.validate(); }).find("SimOptions.threads"),
            std::string::npos);

  // Probing a link that leaves the mesh names the call site and the link.
  Mesh3D flat(2, 2, 1);
  NocSimulator sim(flat, TrafficConfig{});
  const auto msg =
      message_of([&] { sim.probe_link({NodeId{0, 0, 0}, Direction::ZPlus}); });
  EXPECT_NE(msg.find("NocSimulator::probe_link"), std::string::npos);
  EXPECT_NE(msg.find("Z+"), std::string::npos);
}

TEST(Router, ArbitratesOneFlitPerOutput) {
  Router r;
  PackedFlit a{0x11, 2, 0};
  PackedFlit b{0x22, 2, 0};
  // Two flits from different inputs both want XPlus.
  EXPECT_TRUE(r.accept(Direction::Local, a, Direction::XPlus));
  EXPECT_TRUE(r.accept(Direction::XMinus, b, Direction::XPlus));

  PackedFlit grants[kPortCount];
  std::uint64_t stalls = 0;
  std::uint8_t granted = r.arbitrate(0, grants, stalls);
  EXPECT_EQ(granted, 1u << static_cast<int>(Direction::XPlus));
  EXPECT_EQ(r.queued(), 1u);

  granted = r.arbitrate(0, grants, stalls);
  EXPECT_EQ(granted, 1u << static_cast<int>(Direction::XPlus));
  EXPECT_EQ(r.queued(), 0u);
  EXPECT_EQ(stalls, 0u);
}

TEST(Router, BlockedOutputStallsAndKeepsTheFlit) {
  Router r;
  PackedFlit a{0x33, 1, 0};
  EXPECT_TRUE(r.accept(Direction::Local, a, Direction::XPlus));
  PackedFlit grants[kPortCount];
  std::uint64_t stalls = 0;
  const auto blocked = static_cast<std::uint8_t>(1u << static_cast<int>(Direction::XPlus));
  EXPECT_EQ(r.arbitrate(blocked, grants, stalls), 0u);
  EXPECT_EQ(stalls, 1u);
  EXPECT_EQ(r.queued(), 1u) << "a blocked flit stays queued";
  EXPECT_EQ(r.arbitrate(0, grants, stalls), blocked);
  EXPECT_EQ(grants[static_cast<int>(Direction::XPlus)].payload, 0x33u);
}

TEST(Router, BoundedRingRefusesWhenFull) {
  Router r(2);
  PackedFlit f{1, 0, 0};
  EXPECT_TRUE(r.accept(Direction::YPlus, f, Direction::Local));
  EXPECT_TRUE(r.accept(Direction::YPlus, f, Direction::Local));
  EXPECT_FALSE(r.accept(Direction::YPlus, f, Direction::Local));
  EXPECT_EQ(r.queued(Direction::YPlus), 2u);
}

TEST(Router, RoundRobinRotatesOverContendingInputs) {
  Router r;
  PackedFlit f{0, 5, 0};
  // Three inputs contending for the same output, twice each.
  for (int round = 0; round < 2; ++round) {
    r.accept(Direction::XMinus, f, Direction::XPlus);
    r.accept(Direction::YMinus, f, Direction::XPlus);
    r.accept(Direction::Local, f, Direction::XPlus);
  }
  PackedFlit grants[kPortCount];
  std::uint64_t stalls = 0;
  // Six cycles drain six flits, one per cycle, no starvation.
  for (int c = 0; c < 6; ++c) {
    EXPECT_EQ(r.arbitrate(0, grants, stalls),
              1u << static_cast<int>(Direction::XPlus));
  }
  EXPECT_EQ(r.queued(), 0u);
}

TEST(Traffic, HotspotTargetsTopLayer) {
  Mesh3D mesh(3, 3, 3);
  TrafficConfig cfg;
  cfg.spatial = SpatialPattern::Hotspot;
  cfg.injection_rate = 1.0;
  TrafficGenerator gen(mesh, cfg);
  for (std::size_t i = 0; i < mesh.node_count(); ++i) {
    const auto n = mesh.node(i);
    const auto flit = gen.generate(n, 0);
    ASSERT_TRUE(flit.has_value());
    if (n.z < 2) {
      EXPECT_EQ(flit->dst.z, 2u);
      EXPECT_EQ(flit->dst.x, n.x);
      EXPECT_EQ(flit->dst.y, n.y);
    } else {
      EXPECT_EQ(flit->dst.z, 0u);  // top-layer nodes talk downwards
    }
  }
}

TEST(Traffic, InjectionRateRoughlyHonoured) {
  Mesh3D mesh(2, 2, 2);
  TrafficConfig cfg;
  cfg.injection_rate = 0.25;
  TrafficGenerator gen(mesh, cfg);
  std::size_t injected = 0;
  const std::size_t trials = 20000;
  for (std::size_t c = 0; c < trials; ++c) {
    if (gen.generate(NodeId{0, 0, 0}, c)) ++injected;
  }
  EXPECT_NEAR(static_cast<double>(injected) / trials, 0.25, 0.02);
}

TEST(Traffic, BurstModulationGatesInjection) {
  Mesh3D mesh(2, 2, 2);
  TrafficConfig cfg;
  cfg.injection_rate = 1.0;
  cfg.burst_on = 8.0;
  cfg.burst_off = 24.0;
  cfg.payload = PayloadModel::Mems;
  TrafficGenerator gen(mesh, cfg);
  std::size_t injected = 0;
  const std::size_t trials = 40000;
  for (std::size_t c = 0; c < trials; ++c) {
    if (gen.generate(NodeId{1, 0, 0}, c)) ++injected;
  }
  // Duty cycle 8/(8+24) = 25 % at rate 1.0.
  EXPECT_NEAR(static_cast<double>(injected) / trials, 0.25, 0.04);
}

TEST(Simulator, DeliversEverythingAfterDrain) {
  Mesh3D mesh(3, 3, 2);
  TrafficConfig cfg;
  cfg.spatial = SpatialPattern::Uniform;
  cfg.injection_rate = 0.05;
  NocSimulator sim(mesh, cfg);
  auto stats = sim.run(2000);
  EXPECT_GT(stats.injected, 0u);
  // Light load: nearly everything delivered; latency at least 1 cycle/hop.
  EXPECT_GT(stats.delivered, stats.injected * 9 / 10);
  EXPECT_GE(stats.mean_latency, 1.0);
  EXPECT_LT(stats.mean_latency, 50.0);
  EXPECT_EQ(stats.stalled_cycles, 0u) << "unbounded queues never stall";
}

TEST(Simulator, FlitConservationHoldsEveryCycle) {
  Mesh3D mesh(3, 3, 2);
  TrafficConfig cfg;
  cfg.spatial = SpatialPattern::Uniform;
  cfg.injection_rate = 0.4;
  NocSimulator sim(mesh, cfg);
  for (int c = 0; c < 200; ++c) {
    const auto stats = sim.run(1);
    ASSERT_EQ(stats.injected, stats.delivered + stats.in_flight)
        << "conservation violated at cycle " << c;
    ASSERT_EQ(stats.in_flight, sim.in_flight());
  }
}

TEST(Simulator, LinkCountersIndexOnlyExistingLinks) {
  Mesh3D mesh(3, 2, 3);
  TrafficConfig cfg;
  cfg.spatial = SpatialPattern::Hotspot;
  cfg.injection_rate = 0.3;
  NocSimulator sim(mesh, cfg);
  const auto stats = sim.run(2000);
  ASSERT_EQ(stats.link_flits.size(), mesh.node_count() * static_cast<std::size_t>(kPortCount));
  ASSERT_EQ(stats.link_toggles.size(), stats.link_flits.size());
  ASSERT_EQ(stats.link_coded_toggles.size(), stats.link_flits.size());
  std::uint64_t vertical_flits = 0;
  for (std::size_t i = 0; i < mesh.node_count(); ++i) {
    for (int p = 0; p < kPortCount; ++p) {
      const auto d = static_cast<Direction>(p);
      const std::size_t slot = link_slot(i, d);
      const bool exists = d != Direction::Local && mesh.neighbor_index(i, d) != Mesh3D::npos;
      if (!exists) {
        EXPECT_EQ(stats.link_flits[slot], 0u)
            << "flits on non-existent link " << link_name({mesh.node(i), d});
        EXPECT_EQ(stats.link_toggles[slot], 0u);
      }
      if (stats.link_toggles[slot] > 0) {
        EXPECT_GT(stats.link_flits[slot], 0u);
      }
      EXPECT_EQ(stats.link_coded_toggles[slot], 0u) << "no coding attached";
      if (exists && Mesh3D::is_vertical(d)) vertical_flits += stats.link_flits[slot];
    }
  }
  EXPECT_GT(vertical_flits, 0u) << "hotspot traffic must cross the TSV bundles";
}

TEST(Simulator, XyzRoutingIsDeadlockFreeAtFullLoad) {
  // Transpose at injection rate 1.0 saturates the mesh; XYZ dimension order
  // must keep making progress anyway.
  Mesh3D mesh(4, 4, 2);
  TrafficConfig cfg;
  cfg.spatial = SpatialPattern::Transpose;
  cfg.injection_rate = 1.0;
  NocSimulator sim(mesh, cfg);
  std::size_t delivered = 0;
  for (int chunk = 0; chunk < 4; ++chunk) {
    const auto stats = sim.run(500);
    ASSERT_GT(stats.delivered, delivered) << "no progress in chunk " << chunk;
    delivered = stats.delivered;
  }
}

TEST(Simulator, BoundedQueuesBackpressureAndConserve) {
  Mesh3D mesh(2, 2, 3);
  TrafficConfig cfg;
  cfg.spatial = SpatialPattern::Hotspot;
  cfg.injection_rate = 0.9;
  SimOptions options;
  options.queue_capacity = 1;
  NocSimulator sim(mesh, cfg, options);
  const auto stats = sim.run(1500);
  EXPECT_GT(stats.stalled_cycles, 0u) << "capacity-1 queues at 0.9 load must stall";
  EXPECT_EQ(stats.injected, stats.delivered + stats.in_flight);
  EXPECT_LE(stats.max_queued, 7u) << "bounded rings cap the per-router occupancy";
  EXPECT_GT(stats.delivered, 0u);
}

TEST(Simulator, BitIdenticalAcrossThreadCounts) {
  struct Case {
    std::size_t nx, ny, nz;
    SpatialPattern pattern;
    PayloadModel payload;
  };
  const Case cases[] = {
      {2, 2, 2, SpatialPattern::Uniform, PayloadModel::Random},
      {3, 2, 4, SpatialPattern::Hotspot, PayloadModel::Dsp},
      {4, 4, 3, SpatialPattern::Transpose, PayloadModel::Mems},
  };
  for (const auto& c : cases) {
    Mesh3D mesh(c.nx, c.ny, c.nz);
    TrafficConfig cfg;
    cfg.spatial = c.pattern;
    cfg.payload = c.payload;
    cfg.injection_rate = 0.35;
    cfg.flit_width = 24;
    cfg.seed = 7 * c.nx + c.nz;
    const auto run_with = [&](int threads) {
      SimOptions options;
      options.threads = threads;
      NocSimulator sim(mesh, cfg, options);
      return sim.run(400);
    };
    const SimStats serial = run_with(1);
    const SimStats two = run_with(2);
    const SimStats eight = run_with(8);
    EXPECT_EQ(serial, two) << c.nx << "x" << c.ny << "x" << c.nz;
    EXPECT_EQ(serial, eight) << c.nx << "x" << c.ny << "x" << c.nz;
  }
}

TEST(Simulator, MatchesReferenceSimulator) {
  for (const auto pattern :
       {SpatialPattern::Uniform, SpatialPattern::Hotspot, SpatialPattern::Transpose}) {
    Mesh3D mesh(3, 3, 3);
    TrafficConfig cfg;
    cfg.spatial = pattern;
    cfg.injection_rate = 0.25;
    cfg.flit_width = 16;
    cfg.payload = PayloadModel::Dsp;
    NocSimulator fast(mesh, cfg);
    ReferenceSimulator ref(mesh, cfg);
    const SimStats a = fast.run(800);
    const SimStats b = ref.run(800);
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.latency_cycles, b.latency_cycles);
    EXPECT_EQ(a.ejection_digest, b.ejection_digest)
        << "payload/latency delivery streams diverged";
    EXPECT_EQ(a.max_queued, b.max_queued);
    EXPECT_EQ(a.in_flight, b.in_flight);
    EXPECT_EQ(a.link_flits, b.link_flits);
    EXPECT_EQ(a.link_toggles, b.link_toggles);
  }
}

TEST(Simulator, ProbeCapturesHeldWords) {
  Mesh3D mesh(2, 2, 2);
  TrafficConfig cfg;
  cfg.spatial = SpatialPattern::Hotspot;
  cfg.injection_rate = 0.3;
  cfg.flit_width = 16;
  NocSimulator sim(mesh, cfg);
  sim.probe_link({NodeId{0, 0, 0}, Direction::ZPlus});
  const auto stats = sim.run(3000);
  const auto& trace = sim.probe_trace();
  ASSERT_EQ(trace.size(), 3000u);
  EXPECT_EQ(sim.probe_width(), 17u);
  EXPECT_GT(stats.probe_busy_cycles, 0u);
  EXPECT_LT(stats.probe_busy_cycles, 3000u);

  // Valid-line semantics: the MSB marks busy cycles and data lines hold
  // their value during idle cycles.
  std::size_t busy = 0;
  std::uint64_t held = 0;
  for (const auto w : trace) {
    if (w >> 16) {
      ++busy;
      held = w & 0xFFFF;
    } else {
      EXPECT_EQ(w & 0xFFFF, held) << "idle cycles must hold the last word";
    }
  }
  EXPECT_EQ(busy, stats.probe_busy_cycles);

  // The captured trace is a valid statistics source for the optimizer.
  const auto st = stats::compute_stats(trace, sim.probe_width());
  EXPECT_EQ(st.width, 17u);
}

TEST(Simulator, VerticalLinksCarryHotspotTraffic) {
  Mesh3D mesh(3, 3, 2);
  TrafficConfig cfg;
  cfg.spatial = SpatialPattern::Hotspot;
  cfg.injection_rate = 0.2;
  NocSimulator sim(mesh, cfg);
  sim.probe_link({NodeId{1, 1, 0}, Direction::ZPlus});
  const auto stats = sim.run(4000);
  // Under the memory-fetch pattern the probed vertical link must be busy for
  // roughly the injection rate of its column.
  EXPECT_GT(static_cast<double>(stats.probe_busy_cycles) / 4000.0, 0.1);
}

TEST(Simulator, TracksPerVerticalLinkStatistics) {
  Mesh3D mesh(2, 2, 2);
  TrafficConfig cfg;
  cfg.spatial = SpatialPattern::Hotspot;
  cfg.injection_rate = 0.4;
  cfg.flit_width = 16;
  SimOptions options;
  options.track_vertical_stats = true;
  NocSimulator sim(mesh, cfg, options);
  sim.run(500);
  const auto vs = sim.vertical_link_stats();
  ASSERT_EQ(vs.size(), vertical_links(mesh).size());
  for (const auto& st : vs) EXPECT_EQ(st.width, 16u);

  NocSimulator plain(mesh, cfg);
  EXPECT_THROW(plain.vertical_link_stats(), std::logic_error);
}

TEST(CodedMesh, DeliversByteIdenticalPayloadsAndLatencies) {
  Mesh3D mesh(3, 3, 2);
  TrafficConfig cfg;
  cfg.spatial = SpatialPattern::Hotspot;
  cfg.injection_rate = 0.3;
  cfg.flit_width = 16;
  cfg.payload = PayloadModel::Dsp;

  NocSimulator plain(mesh, cfg);
  const SimStats base = plain.run(1500);

  NocSimulator coded(mesh, cfg);
  coded.attach_vertical_coding({.name = "bus-invert"});
  EXPECT_EQ(coded.vertical_line_width(), 17u);
  const SimStats cs = coded.run(1500);

  // Coding is transparent to the fabric: identical delivery streams
  // (payloads AND latencies), identical link utilization.
  EXPECT_EQ(cs.ejection_digest, base.ejection_digest);
  EXPECT_EQ(cs.delivered, base.delivered);
  EXPECT_EQ(cs.latency_cycles, base.latency_cycles);
  EXPECT_EQ(cs.link_flits, base.link_flits);

  // Bus-invert's keep-polarity option bounds the coded line toggles by the
  // uncoded payload toggles on every vertical link; planar links stay
  // uncoded (zero coded counters).
  bool saw_coded_link = false;
  for (std::size_t i = 0; i < mesh.node_count(); ++i) {
    for (int p = 0; p < kPortCount; ++p) {
      const auto d = static_cast<Direction>(p);
      const std::size_t slot = link_slot(i, d);
      if (Mesh3D::is_vertical(d) && mesh.neighbor_index(i, d) != Mesh3D::npos) {
        EXPECT_LE(cs.link_coded_toggles[slot], cs.link_toggles[slot])
            << "bus-invert exceeded uncoded toggles on " << link_name({mesh.node(i), d});
        if (cs.link_flits[slot] > 0) saw_coded_link = true;
      } else {
        EXPECT_EQ(cs.link_coded_toggles[slot], 0u);
      }
    }
  }
  EXPECT_TRUE(saw_coded_link);

  // Attaching after traffic has run is rejected.
  EXPECT_THROW(coded.attach_vertical_coding({.name = "bus-invert"}), std::logic_error);
}

TEST(CodedMesh, RejectsMisalignedAssignments) {
  Mesh3D mesh(2, 2, 2);
  NocSimulator sim(mesh, TrafficConfig{});
  std::vector<core::SignedPermutation> wrong(3, core::SignedPermutation::identity(33));
  try {
    sim.attach_vertical_coding({.name = "bus-invert"}, wrong);
    FAIL() << "misaligned assignment count must throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("assignments"), std::string::npos);
  }
}

TEST(CodedMesh, PlannedPerLinkAssignmentsStayTransparent) {
  Mesh3D mesh(2, 2, 2);
  TrafficConfig cfg;
  cfg.spatial = SpatialPattern::Hotspot;
  cfg.injection_rate = 0.5;
  cfg.flit_width = 8;
  cfg.payload = PayloadModel::Dsp;

  VerticalCodingOptions options;
  options.warmup_cycles = 512;
  options.optimize.schedule.iterations = 400;
  options.optimize.chains = 1;
  const auto plan = plan_vertical_coding(mesh, cfg, options);
  ASSERT_EQ(plan.links.size(), vertical_links(mesh).size());
  ASSERT_EQ(plan.assignments.size(), plan.links.size());
  EXPECT_EQ(plan.line_width, 9u);  // 8 payload + bus-invert flag
  for (const auto& a : plan.assignments) EXPECT_EQ(a.size(), 9u);
  EXPECT_GT(plan.total_identity_power(), 0.0);
  // The annealer prices the identity start too, so it can only improve.
  EXPECT_LE(plan.total_optimized_power(), plan.total_identity_power() * 1.0001);

  // Per-link optimized assignments still deliver byte-identical payloads.
  NocSimulator plain(mesh, cfg);
  const SimStats base = plain.run(1000);
  NocSimulator coded(mesh, cfg);
  coded.attach_vertical_coding(options.spec, plan.assignments);
  const SimStats cs = coded.run(1000);
  EXPECT_EQ(cs.ejection_digest, base.ejection_digest);
  EXPECT_EQ(cs.delivered, base.delivered);
}

TEST(CodedMesh, DefaultBundleGeometryIsMostSquare) {
  EXPECT_EQ(default_bundle_geometry(9).rows, 3u);
  EXPECT_EQ(default_bundle_geometry(9).cols, 3u);
  EXPECT_EQ(default_bundle_geometry(33).rows, 3u);
  EXPECT_EQ(default_bundle_geometry(33).cols, 11u);
  EXPECT_EQ(default_bundle_geometry(17).rows, 1u);  // prime: single row
  EXPECT_EQ(default_bundle_geometry(17).cols, 17u);
  EXPECT_THROW(default_bundle_geometry(0), std::invalid_argument);
}

}  // namespace
