// Tests for the 3D-mesh NoC substrate: topology/routing invariants, router
// arbitration, traffic patterns, delivery and the link-probe semantics.
#include <gtest/gtest.h>

#include <set>

#include "noc/simulator.hpp"
#include "stats/switching_stats.hpp"

namespace {

using namespace tsvcod;
using namespace tsvcod::noc;

TEST(Topology, IndexRoundTrip) {
  Mesh3D mesh(4, 3, 2);
  EXPECT_EQ(mesh.node_count(), 24u);
  for (std::size_t i = 0; i < mesh.node_count(); ++i) {
    EXPECT_EQ(mesh.index(mesh.node(i)), i);
  }
  EXPECT_THROW(mesh.node(24), std::out_of_range);
  EXPECT_THROW(mesh.index(NodeId{4, 0, 0}), std::out_of_range);
  EXPECT_THROW(Mesh3D(0, 1, 1), std::invalid_argument);
}

TEST(Topology, NeighborsRespectBoundaries) {
  Mesh3D mesh(2, 2, 2);
  const NodeId corner{0, 0, 0};
  EXPECT_FALSE(mesh.neighbor(corner, Direction::XMinus).has_value());
  EXPECT_FALSE(mesh.neighbor(corner, Direction::YMinus).has_value());
  EXPECT_FALSE(mesh.neighbor(corner, Direction::ZMinus).has_value());
  EXPECT_EQ(mesh.neighbor(corner, Direction::XPlus)->x, 1u);
  EXPECT_EQ(mesh.neighbor(corner, Direction::ZPlus)->z, 1u);
}

TEST(Topology, XyzRoutingReachesDestination) {
  Mesh3D mesh(4, 4, 3);
  const NodeId src{0, 3, 0};
  const NodeId dst{3, 1, 2};
  NodeId at = src;
  std::size_t hops = 0;
  while (true) {
    const Direction d = mesh.route(at, dst);
    if (d == Direction::Local) break;
    at = *mesh.neighbor(at, d);
    ASSERT_LE(++hops, 20u) << "routing must terminate";
  }
  EXPECT_EQ(at, dst);
  EXPECT_EQ(hops, mesh.hop_count(src, dst));
}

TEST(Topology, XyzOrderIsDimensionOrdered) {
  Mesh3D mesh(3, 3, 3);
  // X is always corrected before Y before Z.
  EXPECT_EQ(mesh.route(NodeId{0, 2, 2}, NodeId{2, 0, 0}), Direction::XPlus);
  EXPECT_EQ(mesh.route(NodeId{2, 2, 2}, NodeId{2, 0, 0}), Direction::YMinus);
  EXPECT_EQ(mesh.route(NodeId{2, 0, 2}, NodeId{2, 0, 0}), Direction::ZMinus);
}

TEST(Router, ArbitratesOneFlitPerOutput) {
  Mesh3D mesh(3, 1, 1);
  Router r(NodeId{1, 0, 0});
  // Two flits from different inputs both want XPlus.
  Flit a;
  a.dst = NodeId{2, 0, 0};
  Flit b = a;
  r.accept(Direction::Local, a);
  r.accept(Direction::XMinus, b);

  std::array<std::optional<Flit>, kPortCount> out;
  r.arbitrate(mesh, out);
  int granted = 0;
  for (const auto& o : out) granted += o.has_value();
  EXPECT_EQ(granted, 1);
  EXPECT_TRUE(out[static_cast<std::size_t>(Direction::XPlus)].has_value());
  EXPECT_EQ(r.queued(), 1u);

  r.arbitrate(mesh, out);
  EXPECT_TRUE(out[static_cast<std::size_t>(Direction::XPlus)].has_value());
  EXPECT_EQ(r.queued(), 0u);
}

TEST(Traffic, HotspotTargetsTopLayer) {
  Mesh3D mesh(3, 3, 3);
  TrafficConfig cfg;
  cfg.spatial = SpatialPattern::Hotspot;
  cfg.injection_rate = 1.0;
  TrafficGenerator gen(mesh, cfg);
  for (std::size_t i = 0; i < mesh.node_count(); ++i) {
    const auto n = mesh.node(i);
    const auto flit = gen.generate(n, 0);
    ASSERT_TRUE(flit.has_value());
    if (n.z < 2) {
      EXPECT_EQ(flit->dst.z, 2u);
      EXPECT_EQ(flit->dst.x, n.x);
      EXPECT_EQ(flit->dst.y, n.y);
    } else {
      EXPECT_EQ(flit->dst.z, 0u);  // top-layer nodes talk downwards
    }
  }
}

TEST(Traffic, InjectionRateRoughlyHonoured) {
  Mesh3D mesh(2, 2, 2);
  TrafficConfig cfg;
  cfg.injection_rate = 0.25;
  TrafficGenerator gen(mesh, cfg);
  std::size_t injected = 0;
  const std::size_t trials = 20000;
  for (std::size_t c = 0; c < trials; ++c) {
    if (gen.generate(NodeId{0, 0, 0}, c)) ++injected;
  }
  EXPECT_NEAR(static_cast<double>(injected) / trials, 0.25, 0.02);
}

TEST(Simulator, DeliversEverythingAfterDrain) {
  Mesh3D mesh(3, 3, 2);
  TrafficConfig cfg;
  cfg.spatial = SpatialPattern::Uniform;
  cfg.injection_rate = 0.05;
  NocSimulator sim(mesh, cfg);
  auto stats = sim.run(2000);
  EXPECT_GT(stats.injected, 0u);
  // Light load: nearly everything delivered; latency at least 1 cycle/hop.
  EXPECT_GT(stats.delivered, stats.injected * 9 / 10);
  EXPECT_GE(stats.mean_latency, 1.0);
  EXPECT_LT(stats.mean_latency, 50.0);
}

TEST(Simulator, ProbeCapturesHeldWords) {
  Mesh3D mesh(2, 2, 2);
  TrafficConfig cfg;
  cfg.spatial = SpatialPattern::Hotspot;
  cfg.injection_rate = 0.3;
  cfg.flit_width = 16;
  NocSimulator sim(mesh, cfg);
  sim.probe_link({NodeId{0, 0, 0}, Direction::ZPlus});
  const auto stats = sim.run(3000);
  const auto& trace = sim.probe_trace();
  ASSERT_EQ(trace.size(), 3000u);
  EXPECT_EQ(sim.probe_width(), 17u);
  EXPECT_GT(stats.probe_busy_cycles, 0u);
  EXPECT_LT(stats.probe_busy_cycles, 3000u);

  // Valid-line semantics: the MSB marks busy cycles and data lines hold
  // their value during idle cycles.
  std::size_t busy = 0;
  std::uint64_t held = 0;
  for (const auto w : trace) {
    if (w >> 16) {
      ++busy;
      held = w & 0xFFFF;
    } else {
      EXPECT_EQ(w & 0xFFFF, held) << "idle cycles must hold the last word";
    }
  }
  EXPECT_EQ(busy, stats.probe_busy_cycles);

  // The captured trace is a valid statistics source for the optimizer.
  const auto st = stats::compute_stats(trace, sim.probe_width());
  EXPECT_EQ(st.width, 17u);
}

TEST(Simulator, RejectsOffMeshProbe) {
  Mesh3D mesh(2, 2, 1);
  TrafficConfig cfg;
  NocSimulator sim(mesh, cfg);
  EXPECT_THROW(sim.probe_link({NodeId{0, 0, 0}, Direction::ZPlus}), std::invalid_argument);
}

TEST(Simulator, VerticalLinksCarryHotspotTraffic) {
  Mesh3D mesh(3, 3, 2);
  TrafficConfig cfg;
  cfg.spatial = SpatialPattern::Hotspot;
  cfg.injection_rate = 0.2;
  NocSimulator sim(mesh, cfg);
  sim.probe_link({NodeId{1, 1, 0}, Direction::ZPlus});
  const auto stats = sim.run(4000);
  // Under the memory-fetch pattern the probed vertical link must be busy for
  // roughly the injection rate of its column.
  EXPECT_GT(static_cast<double>(stats.probe_busy_cycles) / 4000.0, 0.1);
}

}  // namespace
