// Tests for the extension features: windowed statistics, threaded field
// extraction, and the derived mapping constructions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "core/link.hpp"
#include "field/extractor.hpp"
#include "stats/windowed.hpp"
#include "streams/random_streams.hpp"

namespace {

using namespace tsvcod;

TEST(Windowed, MatchesBatchOnStationaryStream) {
  streams::GaussianAr1Stream src(8, 20.0, 0.4, 3);
  stats::WindowedAccumulator win(8, 5000.0);
  stats::StatsAccumulator batch(8);
  for (int i = 0; i < 40000; ++i) {
    const auto w = src.next();
    win.add(w);
    batch.add(w);
  }
  const auto a = win.snapshot();
  const auto b = batch.finish();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(a.self[i], b.self[i], 0.05);
    EXPECT_NEAR(a.prob_one[i], b.prob_one[i], 0.05);
    for (std::size_t j = 0; j < 8; ++j) EXPECT_NEAR(a.coupling(i, j), b.coupling(i, j), 0.08);
  }
}

TEST(Windowed, TracksRegimeChange) {
  // Constant words, then full-toggle words: a short window must forget the
  // quiet past within a few half-lives.
  stats::WindowedAccumulator win(4, 100.0);
  for (int i = 0; i < 2000; ++i) win.add(0b0000);
  EXPECT_NEAR(win.snapshot().self[0], 0.0, 1e-9);
  for (int i = 0; i < 1000; ++i) win.add(i % 2 ? 0b1111 : 0b0000);
  EXPECT_GT(win.snapshot().self[0], 0.95);
  EXPECT_GT(win.snapshot().prob_one[0], 0.4);
}

TEST(Windowed, LongWindowForgetsSlowly) {
  stats::WindowedAccumulator slow(4, 100000.0);
  for (int i = 0; i < 5000; ++i) slow.add(0b0000);
  for (int i = 0; i < 100; ++i) slow.add(i % 2 ? 0b1111 : 0b0000);
  // Only ~2 % of the window is the new regime.
  EXPECT_LT(slow.snapshot().self[0], 0.1);
}

TEST(Windowed, Guards) {
  EXPECT_THROW(stats::WindowedAccumulator(0, 10.0), std::invalid_argument);
  EXPECT_THROW(stats::WindowedAccumulator(4, 0.0), std::invalid_argument);
  stats::WindowedAccumulator w(4, 10.0);
  w.add(1);
  EXPECT_THROW(w.snapshot(), std::logic_error);
}

TEST(Windowed, ResetIsBitIdenticalToAFreshAccumulator) {
  // reset() must return to the power-on state: the same adds afterwards give
  // bitwise-identical estimates, with no phantom transition from the last
  // pre-reset word into the first post-reset word.
  std::mt19937_64 rng(321);
  stats::WindowedAccumulator used(6, 200.0), fresh(6, 200.0);
  for (int t = 0; t < 3000; ++t) used.add(rng() & 0x3F);
  used.reset();
  EXPECT_EQ(used.samples(), 0u);
  EXPECT_THROW(used.snapshot(), std::logic_error) << "reset means < 2 samples again";

  std::mt19937_64 replay(654);
  std::vector<std::uint64_t> words(2000);
  for (auto& w : words) w = replay() & 0x3F;
  for (const auto w : words) {
    used.add(w);
    fresh.add(w);
  }
  const auto a = used.snapshot();
  const auto b = fresh.snapshot();
  EXPECT_EQ(a.self, b.self);
  EXPECT_EQ(a.prob_one, b.prob_one);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) EXPECT_EQ(a.coupling(i, j), b.coupling(i, j));
  }
}

TEST(Windowed, ResetAtARegimeBoundaryDropsTheOldRegime) {
  // Window-boundary interaction: without reset, the old regime bleeds into
  // the estimate through the exponential tail; with reset it is gone
  // entirely — the use case of re-arming the monitor after a hot-swap.
  stats::WindowedAccumulator carried(4, 500.0), rearmed(4, 500.0);
  for (int t = 0; t < 4000; ++t) {
    carried.add(t % 2 ? 0b1111 : 0b0000);
    rearmed.add(t % 2 ? 0b1111 : 0b0000);
  }
  rearmed.reset();
  for (int t = 0; t < 300; ++t) {
    carried.add(0b0000);
    rearmed.add(0b0000);
  }
  EXPECT_GT(carried.snapshot().self[0], 0.3) << "exponential tail remembers the hot regime";
  EXPECT_NEAR(rearmed.snapshot().self[0], 0.0, 1e-12) << "reset forgets it completely";
}

TEST(Windowed, MasksStrayBitsLikeTheBatchAccumulator) {
  // Regression for the toggle-mask fast path: garbage above the declared
  // width must not leak into the estimates — exactly the batch accumulator's
  // masking contract, checked bitwise (same adds, same order).
  std::mt19937_64 rng(123);
  stats::WindowedAccumulator raw(5, 300.0), masked(5, 300.0);
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t word = rng();
    raw.add(word);
    masked.add(word & 0x1F);
  }
  const auto a = raw.snapshot();
  const auto b = masked.snapshot();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.self[i], b.self[i]);
    EXPECT_EQ(a.prob_one[i], b.prob_one[i]);
    for (std::size_t j = 0; j < 5; ++j) EXPECT_EQ(a.coupling(i, j), b.coupling(i, j));
  }
}

TEST(Windowed, FastPathMatchesPerBitReference) {
  // The pre-fast-path implementation, kept as a reference: decay everything,
  // then walk every (i, j) pair with per-bit db values. The fast path must
  // reproduce it bit for bit (it performs the same +-1.0 adds).
  const std::size_t width = 9;
  const double half_life = 250.0;
  const double alpha = std::exp2(-1.0 / half_life);
  std::vector<double> ones(width, 0.0), self(width, 0.0);
  std::vector<double> cross(width * width, 0.0);
  double ww = 0.0, wt = 0.0;
  std::uint64_t prev = 0;
  bool first = true;

  stats::WindowedAccumulator win(width, half_life);
  std::mt19937_64 rng(321);
  std::uint64_t cur = 0;
  for (int t = 0; t < 3000; ++t) {
    cur ^= rng() & rng();
    const std::uint64_t word = cur & ((std::uint64_t{1} << width) - 1);
    win.add(word);

    ww = ww * alpha + 1.0;
    for (auto& v : ones) v *= alpha;
    for (std::size_t i = 0; i < width; ++i) {
      if ((word >> i) & 1u) ones[i] += 1.0;
    }
    if (!first) {
      wt = wt * alpha + 1.0;
      for (auto& v : self) v *= alpha;
      for (auto& v : cross) v *= alpha;
      for (std::size_t i = 0; i < width; ++i) {
        const int dbi = static_cast<int>((word >> i) & 1u) - static_cast<int>((prev >> i) & 1u);
        if (dbi == 0) continue;
        self[i] += 1.0;
        for (std::size_t j = i + 1; j < width; ++j) {
          const int dbj = static_cast<int>((word >> j) & 1u) - static_cast<int>((prev >> j) & 1u);
          if (dbj != 0) cross[i * width + j] += static_cast<double>(dbi * dbj);
        }
      }
    }
    prev = word;
    first = false;
  }

  const auto s = win.snapshot();
  for (std::size_t i = 0; i < width; ++i) {
    EXPECT_EQ(s.self[i], self[i] / wt) << "self[" << i << "]";
    EXPECT_EQ(s.prob_one[i], ones[i] / ww) << "prob_one[" << i << "]";
    for (std::size_t j = i + 1; j < width; ++j) {
      EXPECT_EQ(s.coupling(i, j), cross[i * width + j] / wt)
          << "coupling(" << i << "," << j << ")";
    }
  }
}

TEST(ThreadedExtraction, MatchesSerialExactly) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const std::vector<double> pr(4, 0.5);
  field::ExtractionOptions serial;
  serial.cell = 0.2e-6;
  field::ExtractionOptions threaded = serial;
  threaded.threads = 4;
  const auto a = field::extract_capacitance(geom, pr, serial);
  const auto b = field::extract_capacitance(geom, pr, threaded);
  ASSERT_TRUE(a.all_converged());
  ASSERT_TRUE(b.all_converged());
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(a.paper(i, j), b.paper(i, j));
    }
  }
}

TEST(Mappings, CapacitanceOrderSortsByTotals) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(3, 3);
  const auto c = tsv::analytic_capacitance(geom, std::vector<double>(9, 0.5));
  const auto order = core::capacitance_order(c);
  ASSERT_EQ(order.size(), 9u);
  const auto total = [&](std::size_t i) {
    double t = 0.0;
    for (std::size_t j = 0; j < 9; ++j) t += c(i, j);
    return t;
  };
  for (std::size_t k = 0; k + 1 < 9; ++k) EXPECT_LE(total(order[k]), total(order[k + 1]));
  // Corners (lowest totals) first, middle last.
  EXPECT_TRUE(geom.is_corner(order[0]));
  EXPECT_TRUE(geom.is_middle(order[8]));
}

TEST(Mappings, GreedyCouplingCompetitiveWithSawtooth) {
  // The paper derives Sawtooth as the closed form of the greedy
  // max-accumulated-coupling recursion; on Gaussian statistics both must
  // land within a few percent of each other.
  auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(4, 4);
  const core::Link link(geom);
  streams::GaussianAr1Stream src(16, 600.0, 0.0, 9);
  const auto st = link.measure(src, 50000);

  const auto sawtooth = core::sawtooth_assignment(geom, st);
  const auto greedy_order = core::greedy_coupling_order(link.model().c_ref());
  const auto greedy =
      core::assignment_from_orders(core::rank_by_correlation(st), greedy_order);
  const double ps = link.power(st, sawtooth);
  const double pg = link.power(st, greedy);
  EXPECT_NEAR(pg / ps, 1.0, 0.05);
}

TEST(AdaptiveLink, WindowedReassignmentFollowsTheSignal) {
  // Scenario: the link carries addresses, then switches to Gaussian data.
  // Reoptimizing from the windowed snapshot must beat keeping the stale
  // assignment.
  auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(4, 4);
  const core::Link link(geom);
  stats::WindowedAccumulator win(16, 2000.0);

  streams::SequentialStream phase1(16, 0.02, 4);
  for (int i = 0; i < 20000; ++i) win.add(phase1.next());
  core::OptimizeOptions opts;
  opts.schedule.iterations = 6000;
  const auto a1 = core::optimize_assignment(win.snapshot(), link.model(), opts);

  streams::GaussianAr1Stream phase2(16, 500.0, 0.0, 4);
  for (int i = 0; i < 20000; ++i) win.add(phase2.next());
  const auto snap2 = win.snapshot();
  const auto a2 = core::optimize_assignment(snap2, link.model(), opts);

  EXPECT_LT(a2.power, link.power(snap2, a1.assignment));
}


TEST(GreedyDescent, FindsExhaustiveOptimumOnSmallArrays) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const core::Link link(geom);
  streams::GaussianAr1Stream src(4, 3.0, -0.4, 21);
  stats::StatsAccumulator acc(4);
  for (int i = 0; i < 30000; ++i) acc.add(src.next());
  const auto st = acc.finish();

  const auto greedy = core::greedy_descent(st, link.model());
  const auto exact = core::exhaustive_optimal(st, link.model());
  // A 2x2 landscape is small enough that first-improvement descent lands on
  // (or within a hair of) the global optimum.
  EXPECT_NEAR(greedy.power, exact.power, 0.01 * std::abs(exact.power));
}

TEST(GreedyDescent, DeterministicAndCompetitiveWithAnnealing) {
  auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(4, 4);
  const core::Link link(geom);
  streams::SequentialStream src(16, 0.05, 8);
  const auto st = link.measure(src, 30000);

  const auto a = core::greedy_descent(st, link.model());
  const auto b = core::greedy_descent(st, link.model());
  EXPECT_EQ(a.assignment, b.assignment);  // no randomness at all

  core::OptimizeOptions opts;
  opts.schedule.iterations = 15000;
  const auto sa = core::optimize_assignment(st, link.model(), opts);
  EXPECT_LT(a.power, link.power(st, core::SignedPermutation::identity(16)));
  EXPECT_NEAR(a.power / sa.power, 1.0, 0.05);  // within a few percent of SA
}

TEST(GreedyDescent, TerminatesOnNegativePowerLandscapes) {
  // Regression for the sign-handling bug in the acceptance test: the original
  // pure-relative margin `cand < cur * (1 - 1e-12)` flips direction when the
  // current power is negative — every equal-power move then counts as an
  // improvement and the descent cycles forever. A synthetic all-negative
  // capacitance model makes every power on the landscape negative.
  const std::size_t n = 4;
  phys::Matrix cr(n, n);
  phys::Matrix dc(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cr(i, j) = -1e-15 * static_cast<double>(1 + ((i + j) % 3));
      dc(i, j) = i == j ? 0.0 : -2e-16;
    }
  }
  const tsv::LinearCapacitanceModel model(std::move(cr), std::move(dc));

  streams::GaussianAr1Stream src(n, 2.0, -0.5, 9);
  stats::StatsAccumulator acc(n);
  for (int i = 0; i < 20000; ++i) acc.add(src.next());
  const auto st = acc.finish();

  const double identity_power =
      core::assignment_power(st, core::SignedPermutation::identity(n), model);
  ASSERT_LT(identity_power, 0.0) << "landscape must be negative to exercise the bug";

  const auto res = core::greedy_descent(st, model);  // pre-fix: never returns
  EXPECT_LE(res.power, identity_power + 1e-25);
  // The reported power must be the dense recomputation of the returned
  // assignment, not a drifted incremental value.
  EXPECT_DOUBLE_EQ(res.power, core::assignment_power(st, res.assignment, model));
}

TEST(GreedyDescent, HonoursInversionConstraints) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const core::Link link(geom);
  streams::UniformRandomStream inner(3, 4);
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 5000; ++i) words.push_back(inner.next());  // bit 3 stable 0
  const auto st = stats::compute_stats(words, 4);

  core::OptimizeOptions opts;
  opts.allow_invert = {1, 1, 1, 0};
  const auto res = core::greedy_descent(st, link.model(), opts);
  EXPECT_FALSE(res.assignment.inverted(3));
}

}  // namespace
