// Unit tests for the .tsvb binary trace format: header validation, the
// zero-copy mmap reader, the streaming writer, chunked ingestion across
// seam-word boundaries, and the acceptance criterion of the format — the
// statistics of an mmap'd trace are bit-identical to the text-loaded vector
// path at every width and thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "stats/bitplane.hpp"
#include "stats/ingest.hpp"
#include "stats/switching_stats.hpp"
#include "streams/binary_trace.hpp"
#include "streams/trace_io.hpp"
#include "streams/word_source.hpp"
#include "streams/word_stream.hpp"

namespace {

using namespace tsvcod;

std::vector<std::uint64_t> make_trace(std::size_t width, std::size_t count,
                                      std::uint64_t seed = 1) {
  std::mt19937_64 rng(seed);
  const std::uint64_t mask = streams::width_mask(width);
  std::vector<std::uint64_t> words(count);
  std::uint64_t cur = rng() & mask;
  for (auto& w : words) {
    // Sticky toggles: realistic switching activity, exercises every plane.
    cur ^= rng() & rng() & mask;
    w = cur;
  }
  return words;
}

std::string serialize(const std::vector<std::uint64_t>& words, std::size_t width,
                      std::uint64_t seed = 0) {
  std::ostringstream os;
  streams::save_binary_trace(os, words, width, seed);
  return os.str();
}

/// Parse an image from an 8-aligned staging buffer (what mmap guarantees).
streams::BinaryTraceView parse_bytes(const std::string& image,
                                     std::vector<std::uint64_t>& storage) {
  storage.assign(image.size() / 8 + 1, 0);
  std::memcpy(storage.data(), image.data(), image.size());
  return streams::parse_binary_trace(
      {reinterpret_cast<const std::byte*>(storage.data()), image.size()});
}

std::string temp_path(const std::string& name) { return ::testing::TempDir() + name; }

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os) << path;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

// --- Serialization round-trips ---------------------------------------------

TEST(BinaryTrace, SaveParseRoundTrip) {
  const auto words = make_trace(17, 333);
  const std::string image = serialize(words, 17, 0xFEEDu);
  EXPECT_EQ(image.size(), streams::kBinaryTraceHeaderBytes + 8 * words.size());

  std::vector<std::uint64_t> storage;
  const auto view = parse_bytes(image, storage);
  EXPECT_EQ(view.header.version, streams::kBinaryTraceVersion);
  EXPECT_EQ(view.header.width, 17u);
  EXPECT_EQ(view.header.word_count, words.size());
  EXPECT_EQ(view.header.seed, 0xFEEDu);
  EXPECT_EQ(std::vector<std::uint64_t>(view.words.begin(), view.words.end()), words);
}

TEST(BinaryTrace, ParseSaveIsByteIdentical) {
  const auto words = make_trace(64, 100, 7);
  const std::string image = serialize(words, 64, 42);
  std::vector<std::uint64_t> storage;
  const auto view = parse_bytes(image, storage);
  std::ostringstream os;
  streams::save_binary_trace(os, view.words, view.header.width, view.header.seed);
  EXPECT_EQ(os.str(), image);
}

TEST(BinaryTrace, ZeroWordImageParses) {
  const std::string image = serialize({}, 8);
  std::vector<std::uint64_t> storage;
  const auto view = parse_bytes(image, storage);
  EXPECT_EQ(view.header.word_count, 0u);
  EXPECT_TRUE(view.words.empty());
}

TEST(BinaryTrace, SaveRejectsOverwideWords) {
  EXPECT_THROW(serialize({0x2, 0x1}, 1), std::runtime_error);
  try {
    serialize({0x1, 0x1F}, 4);
    FAIL() << "expected overwide rejection";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("word 1"), std::string::npos) << msg;
  }
}

// --- Malformed-input rejection ---------------------------------------------

TEST(BinaryTrace, RejectsBadMagic) {
  std::string image = serialize(make_trace(8, 4), 8);
  image[2] ^= 0x40;
  std::vector<std::uint64_t> storage;
  EXPECT_THROW(parse_bytes(image, storage), std::runtime_error);
}

TEST(BinaryTrace, RejectsUnsupportedVersion) {
  std::string image = serialize(make_trace(8, 4), 8);
  image[8] = 2;  // version LE u32 at offset 8
  std::vector<std::uint64_t> storage;
  try {
    parse_bytes(image, storage);
    FAIL() << "expected version rejection";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("version 2"), std::string::npos) << msg;
  }
}

TEST(BinaryTrace, RejectsWidthOutOfRange) {
  for (const unsigned char w : {0, 65, 200}) {
    std::string image = serialize(make_trace(8, 4), 8);
    image[12] = static_cast<char>(w);  // width LE u32 at offset 12
    std::vector<std::uint64_t> storage;
    EXPECT_THROW(parse_bytes(image, storage), std::runtime_error) << static_cast<int>(w);
  }
}

TEST(BinaryTrace, RejectsTruncatedHeader) {
  const std::string image = serialize(make_trace(8, 4), 8);
  for (const std::size_t keep : {0u, 7u, 31u}) {
    std::vector<std::uint64_t> storage;
    EXPECT_THROW(parse_bytes(image.substr(0, keep), storage), std::runtime_error) << keep;
  }
}

TEST(BinaryTrace, RejectsCountPayloadDisagreementNamingCounts) {
  // Truncated payload: 4 declared, 3 present.
  std::string image = serialize(make_trace(8, 4), 8);
  image.resize(image.size() - 8);
  std::vector<std::uint64_t> storage;
  try {
    parse_bytes(image, storage);
    FAIL() << "expected truncation rejection";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("32"), std::string::npos) << msg;  // expected payload bytes
    EXPECT_NE(msg.find("24"), std::string::npos) << msg;  // actual payload bytes
  }
  // Trailing bytes past the declared payload, including whole extra words.
  std::string padded = serialize(make_trace(8, 4), 8) + std::string(3, '\0');
  EXPECT_THROW(parse_bytes(padded, storage), std::runtime_error);
  std::string extra_word = serialize(make_trace(8, 4), 8) + std::string(8, '\0');
  EXPECT_THROW(parse_bytes(extra_word, storage), std::runtime_error);
}

TEST(BinaryTrace, RejectsMisalignedBuffer) {
  const std::string image = serialize(make_trace(8, 4), 8);
  std::vector<std::uint64_t> storage(image.size() / 8 + 2, 0);
  auto* base = reinterpret_cast<unsigned char*>(storage.data());
  std::memcpy(base + 1, image.data(), image.size());
  EXPECT_THROW(streams::parse_binary_trace(
                   {reinterpret_cast<const std::byte*>(base + 1), image.size()}),
               std::runtime_error);
}

TEST(BinaryTrace, RejectsBitsAboveDeclaredWidth) {
  std::string image = serialize(make_trace(8, 4), 8);
  image[streams::kBinaryTraceHeaderBytes + 8 + 2] = '\x40';  // word 1, bit 22
  std::vector<std::uint64_t> storage;
  try {
    parse_bytes(image, storage);
    FAIL() << "expected overwide-word rejection";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("word 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("width 8"), std::string::npos) << msg;
  }
}

// --- Streaming writer -------------------------------------------------------

TEST(BinaryTraceWriter, MatchesOneShotSaveByteForByte) {
  const auto words = make_trace(23, 5000, 3);
  const std::string path = temp_path("writer_vs_save.tsvb");
  streams::BinaryTraceWriter writer(path, 23, 99);
  // Mix single-word and bulk writes, straddling the internal buffer size.
  writer.write(words[0]);
  writer.write(std::span<const std::uint64_t>(words).subspan(1, 4000));
  for (std::size_t i = 4001; i < words.size(); ++i) writer.write(words[i]);
  EXPECT_EQ(writer.written(), words.size());
  writer.close();

  std::ifstream is(path, std::ios::binary);
  std::string on_disk((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  EXPECT_EQ(on_disk, serialize(words, 23, 99));
}

TEST(BinaryTraceWriter, RejectsOverwideWordAndBadWidth) {
  EXPECT_THROW(streams::BinaryTraceWriter(temp_path("w0.tsvb"), 0), std::runtime_error);
  EXPECT_THROW(streams::BinaryTraceWriter(temp_path("w65.tsvb"), 65), std::runtime_error);
  streams::BinaryTraceWriter writer(temp_path("wn.tsvb"), 4);
  EXPECT_THROW(writer.write(0x10), std::runtime_error);
}

// --- Memory-mapped reader ---------------------------------------------------

TEST(MappedTrace, OpensAndAliasesFile) {
  const auto words = make_trace(32, 1000, 11);
  const std::string path = temp_path("mapped.tsvb");
  streams::save_binary_trace(path, words, 32, 5);
  streams::MappedTrace map(path);
  EXPECT_EQ(map.header().width, 32u);
  EXPECT_EQ(map.header().seed, 5u);
  EXPECT_EQ(map.bytes(), streams::kBinaryTraceHeaderBytes + 8 * words.size());
  EXPECT_EQ(std::vector<std::uint64_t>(map.words().begin(), map.words().end()), words);
}

TEST(MappedTrace, ErrorsNameThePath) {
  const std::string missing = temp_path("does_not_exist.tsvb");
  try {
    streams::MappedTrace map(missing);
    FAIL() << "expected open failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos) << e.what();
  }
  const std::string garbage = temp_path("garbage.tsvb");
  write_file(garbage, "certainly not a binary trace\n");
  EXPECT_THROW(streams::MappedTrace{garbage}, std::runtime_error);
}

TEST(MappedTrace, ZeroWordFileOpens) {
  const std::string path = temp_path("empty.tsvb");
  streams::save_binary_trace(path, {}, 12, 0);
  streams::MappedTrace map(path);
  EXPECT_TRUE(map.words().empty());
  // Statistics of an empty source are rejected at finalize (needs >= 2 words).
  streams::MappedTraceSource source(path);
  EXPECT_THROW(stats::compute_stats(source, 12), std::logic_error);
}

// --- Chunked ingestion and seam-word priming --------------------------------

TEST(Ingest, ChunkedSourceMatchesWholeTraceBitwise) {
  // Chunks far smaller than the trace force many seam-word primes, including
  // seams that land inside 64-word blocks and mid-block tails.
  const auto words = make_trace(19, 2113, 13);
  const auto whole = stats::compute_stats(words, 19);

  const std::string path = temp_path("chunked.tsvb");
  streams::save_binary_trace(path, words, 19);
  for (const std::size_t chunk : {1u, 2u, 63u, 64u, 65u, 256u, 1000u}) {
    streams::MappedTraceSource source(path, chunk);
    const auto got = stats::compute_stats(source, 19);
    ASSERT_EQ(got.transitions, whole.transitions) << "chunk=" << chunk;
    for (std::size_t i = 0; i < 19; ++i) {
      ASSERT_EQ(got.prob_one[i], whole.prob_one[i]) << "chunk=" << chunk;
      ASSERT_EQ(got.self[i], whole.self[i]) << "chunk=" << chunk;
      for (std::size_t j = 0; j < 19; ++j) {
        ASSERT_EQ(got.coupling(i, j), whole.coupling(i, j))
            << "chunk=" << chunk << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(Ingest, PrimedCountsComposeAcrossSplits) {
  const auto words = make_trace(9, 301, 17);
  const auto whole = stats::compute_counts(words, 9);
  for (const std::size_t split : {1u, 64u, 65u, 150u, 300u}) {
    const std::span<const std::uint64_t> all(words);
    auto counts = stats::compute_counts_primed(false, 0, all.subspan(0, split), 9);
    counts.merge(stats::compute_counts_primed(true, words[split - 1], all.subspan(split), 9));
    EXPECT_EQ(counts.words, whole.words) << split;
    EXPECT_EQ(counts.transitions, whole.transitions) << split;
    EXPECT_EQ(counts.ones, whole.ones) << split;
    EXPECT_EQ(counts.self, whole.self) << split;
    EXPECT_EQ(counts.cross, whole.cross) << split;
  }
}

// --- The acceptance criterion: mmap path == text path, bit for bit ----------

TEST(Ingest, MmapMatchesTextVectorPathAtEveryWidthAndThreadCount) {
  for (std::size_t width = 1; width <= 64; ++width) {
    const auto words = make_trace(width, 2100 + width, width);

    const std::string tpath = temp_path("xw_text.txt");
    streams::save_trace(tpath, words);
    const auto text_words = streams::load_trace(tpath);
    ASSERT_EQ(text_words, words) << "width=" << width;

    const std::string bpath = temp_path("xw_bin.tsvb");
    streams::save_binary_trace(bpath, words, width);

    for (const int threads : {1, 2, 8}) {
      const auto from_text = stats::compute_stats(text_words, width, threads);
      streams::MappedTraceSource source(bpath);
      const auto from_mmap = stats::compute_stats(source, width, threads);
      ASSERT_EQ(from_mmap.transitions, from_text.transitions)
          << "width=" << width << " threads=" << threads;
      for (std::size_t i = 0; i < width; ++i) {
        ASSERT_EQ(from_mmap.prob_one[i], from_text.prob_one[i])
            << "width=" << width << " threads=" << threads << " i=" << i;
        ASSERT_EQ(from_mmap.self[i], from_text.self[i])
            << "width=" << width << " threads=" << threads << " i=" << i;
        for (std::size_t j = 0; j < width; ++j) {
          ASSERT_EQ(from_mmap.coupling(i, j), from_text.coupling(i, j))
              << "width=" << width << " threads=" << threads << " i=" << i << " j=" << j;
        }
      }
    }
  }
}

// --- Format sniffing and the WordSource front door --------------------------

TEST(WordSource, OpensEitherFormat) {
  const auto words = make_trace(10, 50, 23);
  const std::string tpath = temp_path("sniff.txt");
  const std::string bpath = temp_path("sniff.tsvb");
  streams::save_trace(tpath, words);
  streams::save_binary_trace(bpath, words, 10);

  EXPECT_FALSE(streams::file_looks_like_binary_trace(tpath));
  EXPECT_TRUE(streams::file_looks_like_binary_trace(bpath));

  auto text_source = streams::open_word_source(tpath);
  auto bin_source = streams::open_word_source(bpath);
  EXPECT_EQ(bin_source->width(), 10u);
  EXPECT_EQ(streams::collect(*text_source), words);
  EXPECT_EQ(streams::collect(*bin_source), words);
}

TEST(WordSource, WidthRules) {
  const std::vector<std::uint64_t> words{0x3, 0x1F, 0x0};  // widest = 5 bits
  const std::string tpath = temp_path("width.txt");
  const std::string bpath = temp_path("width.tsvb");
  streams::save_trace(tpath, words);
  streams::save_binary_trace(bpath, words, 5);

  EXPECT_EQ(streams::open_word_source(tpath)->width(), 5u);   // derived
  EXPECT_EQ(streams::open_word_source(tpath, 12)->width(), 12u);  // widened
  EXPECT_THROW(streams::open_word_source(tpath, 4), std::runtime_error);  // too narrow
  EXPECT_EQ(streams::open_word_source(bpath, 5)->width(), 5u);
  EXPECT_THROW(streams::open_word_source(bpath, 12), std::runtime_error);  // must match
}

TEST(WordSource, VectorSourceValidatesWidth) {
  EXPECT_THROW(streams::VectorWordSource({1, 2}, 0), std::runtime_error);
  EXPECT_THROW(streams::VectorWordSource({1, 2}, 65), std::runtime_error);
  streams::VectorWordSource source({1, 2, 3}, 2);
  EXPECT_EQ(streams::collect(source), (std::vector<std::uint64_t>{1, 2, 3}));
  // collect() resets, so a second drain sees the words again.
  EXPECT_EQ(streams::collect(source), (std::vector<std::uint64_t>{1, 2, 3}));
}

}  // namespace
