// Unit tests for the synthetic workload generators and stream combinators.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "stats/dbt_model.hpp"
#include "stats/switching_stats.hpp"
#include "streams/image_sensor.hpp"
#include "streams/mems.hpp"
#include "streams/random_streams.hpp"
#include "streams/word_stream.hpp"

namespace {

using namespace tsvcod;
using namespace tsvcod::streams;

stats::SwitchingStats measure(WordStream& s, std::size_t n) {
  stats::StatsAccumulator acc(s.width());
  for (std::size_t i = 0; i < n; ++i) acc.add(s.next());
  return acc.finish();
}

TEST(Trace, WrapsAndMasks) {
  TraceStream t({0x1FF, 0x002, 0x003}, 8);
  EXPECT_EQ(t.next(), 0xFFu);  // masked to 8 bits
  EXPECT_EQ(t.next(), 0x02u);
  EXPECT_EQ(t.next(), 0x03u);
  EXPECT_EQ(t.next(), 0xFFu);  // wrapped
  EXPECT_THROW(TraceStream({}, 8), std::invalid_argument);
  EXPECT_THROW(TraceStream({1}, 0), std::invalid_argument);
}

TEST(StableLines, AppendsConstants) {
  auto inner = std::make_unique<TraceStream>(std::vector<std::uint64_t>{0b01, 0b10}, 2);
  StableLinesStream s(std::move(inner),
                      {{.value = true, .invertible = false}, {.value = false, .invertible = true}});
  EXPECT_EQ(s.width(), 4u);
  EXPECT_EQ(s.next(), 0b0101u);  // line2 = 1, line3 = 0
  EXPECT_EQ(s.next(), 0b0110u);
  EXPECT_FALSE(s.lines()[0].invertible);
  EXPECT_TRUE(s.lines()[1].invertible);
}

TEST(Framed, EnableGatesPayload) {
  auto inner = std::make_unique<TraceStream>(std::vector<std::uint64_t>{0xA, 0xB, 0xC}, 4);
  FramedStream s(std::move(inner), 2, 1);
  EXPECT_EQ(s.width(), 5u);
  EXPECT_EQ(s.next(), 0xAu | 0x10u);  // active, enable set
  EXPECT_EQ(s.next(), 0xBu | 0x10u);
  EXPECT_EQ(s.next(), 0u);  // idle: payload gated, enable low
  EXPECT_EQ(s.next(), 0xCu | 0x10u);
}

TEST(Mux, RoundRobin) {
  std::vector<std::unique_ptr<WordStream>> ins;
  ins.push_back(std::make_unique<TraceStream>(std::vector<std::uint64_t>{1, 2}, 4));
  ins.push_back(std::make_unique<TraceStream>(std::vector<std::uint64_t>{9}, 4));
  MuxStream m(std::move(ins));
  EXPECT_EQ(m.next(), 1u);
  EXPECT_EQ(m.next(), 9u);
  EXPECT_EQ(m.next(), 2u);
  EXPECT_EQ(m.next(), 9u);
}

TEST(Mux, RejectsMixedWidths) {
  std::vector<std::unique_ptr<WordStream>> ins;
  ins.push_back(std::make_unique<TraceStream>(std::vector<std::uint64_t>{1}, 4));
  ins.push_back(std::make_unique<TraceStream>(std::vector<std::uint64_t>{1}, 5));
  EXPECT_THROW(MuxStream{std::move(ins)}, std::invalid_argument);
}

TEST(Uniform, HalfActivityUncorrelated) {
  UniformRandomStream s(12, 3);
  const auto st = measure(s, 100000);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(st.self[i], 0.5, 0.02);
    EXPECT_NEAR(st.prob_one[i], 0.5, 0.02);
  }
}

TEST(Gaussian, TwosComplementEncoding) {
  EXPECT_EQ(GaussianAr1Stream::encode_twos_complement(0, 8), 0u);
  EXPECT_EQ(GaussianAr1Stream::encode_twos_complement(-1, 8), 0xFFu);
  EXPECT_EQ(GaussianAr1Stream::encode_twos_complement(127, 8), 0x7Fu);
  EXPECT_EQ(GaussianAr1Stream::encode_twos_complement(-128, 8), 0x80u);
  // Clamping at the rails.
  EXPECT_EQ(GaussianAr1Stream::encode_twos_complement(300, 8), 0x7Fu);
  EXPECT_EQ(GaussianAr1Stream::encode_twos_complement(-300, 8), 0x80u);
}

TEST(Gaussian, SignActivityMatchesDbtTheory) {
  // The measured sign-bit switching of an AR(1) stream must match the
  // analytic acos(rho)/pi of the dual-bit-type model.
  for (const double rho : {0.0, 0.6, -0.6}) {
    GaussianAr1Stream s(16, 2000.0, rho, 11);
    const auto st = measure(s, 200000);
    EXPECT_NEAR(st.self[15], stats::sign_toggle_probability(rho), 0.02) << "rho=" << rho;
    EXPECT_NEAR(st.prob_one[15], 0.5, 0.02);
  }
}

TEST(Gaussian, MsbsSpatiallyCorrelated) {
  GaussianAr1Stream s(16, 1000.0, 0.0, 5);
  const auto st = measure(s, 100000);
  // Sign-extension region: bits 14/15 switch together.
  EXPECT_GT(st.coupling(15, 14), 0.3);
  // LSBs uncorrelated.
  EXPECT_NEAR(st.coupling(0, 1), 0.0, 0.02);
  EXPECT_NEAR(st.self[0], 0.5, 0.02);
}

TEST(Gaussian, RejectsBadParameters) {
  EXPECT_THROW(GaussianAr1Stream(16, -1.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(GaussianAr1Stream(16, 10.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(GaussianAr1Stream(0, 10.0, 0.0, 1), std::invalid_argument);
}

TEST(Sequential, PureCounterActivities) {
  SequentialStream s(8, 0.0, 7);
  const auto st = measure(s, 4096);
  // Counter: bit k toggles with probability 2^-k.
  EXPECT_NEAR(st.self[0], 1.0, 1e-12);
  EXPECT_NEAR(st.self[1], 0.5, 0.02);
  EXPECT_NEAR(st.self[2], 0.25, 0.02);
  EXPECT_NEAR(st.prob_one[3], 0.5, 0.05);
}

TEST(Sequential, FullBranchIsUniform) {
  SequentialStream s(8, 1.0, 7);
  const auto st = measure(s, 100000);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(st.self[i], 0.5, 0.02);
}

TEST(Image, DeterministicAndInRange) {
  ImageParams p;
  SyntheticImage a(p, 42);
  SyntheticImage b(p, 42);
  SyntheticImage c(p, 43);
  bool any_diff = false;
  for (std::size_t y = 0; y < p.height; ++y) {
    for (std::size_t x = 0; x < p.width; ++x) {
      EXPECT_EQ(a.luma(x, y), b.luma(x, y));
      any_diff |= a.luma(x, y) != c.luma(x, y);
    }
  }
  EXPECT_TRUE(any_diff) << "different seeds must give different images";
}

TEST(Image, BayerMosaicSelectsPlanes) {
  SyntheticImage img({}, 7);
  EXPECT_EQ(img.bayer(0, 0), img.red(0, 0));
  EXPECT_EQ(img.bayer(1, 0), img.green(1, 0));
  EXPECT_EQ(img.bayer(0, 1), img.green(0, 1));
  EXPECT_EQ(img.bayer(1, 1), img.blue(1, 1));
}

TEST(Image, NeighbouringPixelsCorrelate) {
  // Natural-image statistics: adjacent pixels are strongly correlated. The
  // grayscale stream must therefore show a calm MSB and a busy LSB.
  GrayscaleStream s({}, 1);
  const auto st = measure(s, 40000);
  EXPECT_LT(st.self[7], 0.35);
  EXPECT_GT(st.self[0], 0.4);
}

TEST(Image, QuadStreamPacksFourComponents) {
  ImageParams p;
  BayerQuadStream quad(p, 5);
  SyntheticImage img(p, 5);
  const std::uint64_t w = quad.next();
  EXPECT_EQ(w & 0xFFu, img.bayer(0, 0));
  EXPECT_EQ((w >> 8) & 0xFFu, img.bayer(1, 0));
  EXPECT_EQ((w >> 16) & 0xFFu, img.bayer(0, 1));
  EXPECT_EQ((w >> 24) & 0xFFu, img.bayer(1, 1));
}

TEST(Image, MuxStreamMatchesQuadComponents) {
  ImageParams p;
  BayerQuadStream quad(p, 9);
  BayerMuxStream mux(p, 9);
  for (int cell = 0; cell < 50; ++cell) {
    const std::uint64_t w = quad.next();
    EXPECT_EQ(mux.next(), (w >> 0) & 0xFFu);
    EXPECT_EQ(mux.next(), (w >> 8) & 0xFFu);
    EXPECT_EQ(mux.next(), (w >> 16) & 0xFFu);
    EXPECT_EQ(mux.next(), (w >> 24) & 0xFFu);
  }
}

TEST(Mems, AccelerometerSeesGravity) {
  MemsSensorModel m(MemsKind::Accelerometer, 3);
  double sum_z = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum_z += m.next().z;
  EXPECT_NEAR(sum_z / n, 16384.0, 3000.0);
}

TEST(Mems, MagnetometerStaysNearEarthField) {
  // The field magnitude wobbles (indoor disturbances) but stays in the
  // earth-field regime, and the long-run mean is close to nominal.
  MemsSensorModel m(MemsKind::Magnetometer, 4);
  double mean = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto s = m.next();
    const double mag = std::sqrt(s.x * s.x + s.y * s.y + s.z * s.z);
    EXPECT_GT(mag, 900.0);
    EXPECT_LT(mag, 6000.0);
    mean += mag / n;
  }
  EXPECT_NEAR(mean, 3300.0, 1200.0);
}

TEST(Mems, RmsStreamIsUnsignedAndBiased) {
  MemsRmsStream s(MemsKind::Accelerometer, 8);
  const auto st = measure(s, 30000);
  // RMS values are positive and dominated by gravity: MSB region biased, not
  // zero mean -> the Spiral-friendly regime of Sec. 5.2.
  EXPECT_GT(st.prob_one[13], 0.8);
  EXPECT_LT(st.self[13], 0.3);
}

TEST(Mems, XyzStreamIsSignedish) {
  MemsXyzStream s(MemsKind::Gyroscope, 8);
  const auto st = measure(s, 30000);
  // Gyro axes are zero-mean: the sign bit is balanced and busy.
  EXPECT_NEAR(st.prob_one[15], 0.5, 0.1);
  EXPECT_GT(st.self[15], 0.2);
}

TEST(Mems, AllSensorMuxWidth) {
  auto s = make_all_sensor_mux(1);
  EXPECT_EQ(s->width(), 16u);
  const auto st = measure(*s, 9000);
  EXPECT_EQ(st.width, 16u);
}

}  // namespace
