// Property-based sweeps across geometries, array sizes and random seeds:
// invariants that must hold for every parameter combination, not just the
// paper's configurations.
#include <gtest/gtest.h>

#include <random>
#include <tuple>
#include <vector>

#include "core/link.hpp"
#include "streams/random_streams.hpp"
#include "tsv/analytic_model.hpp"

namespace {

using namespace tsvcod;
using phys::TsvArrayGeometry;

// ---------------------------------------------------------------------------
// Capacitance-model invariants over the (radius, pitch, array-size) space.
// ---------------------------------------------------------------------------

using GeometryParam = std::tuple<double, double, std::size_t>;  // r [um], d [um], n

class CapacitanceSweep : public ::testing::TestWithParam<GeometryParam> {
 protected:
  TsvArrayGeometry make() const {
    const auto [r_um, d_um, n] = GetParam();
    TsvArrayGeometry g;
    g.rows = g.cols = n;
    g.radius = r_um * 1e-6;
    g.pitch = d_um * 1e-6;
    return g;
  }
};

TEST_P(CapacitanceSweep, MatrixIsSymmetricPositive) {
  const auto g = make();
  const auto c = tsv::analytic_capacitance(g, std::vector<double>(g.count(), 0.5));
  for (std::size_t i = 0; i < g.count(); ++i) {
    for (std::size_t j = 0; j < g.count(); ++j) {
      EXPECT_DOUBLE_EQ(c(i, j), c(j, i));
      EXPECT_GE(c(i, j), 0.0);
    }
  }
}

TEST_P(CapacitanceSweep, EdgeEffectOrderingHolds) {
  const auto g = make();
  if (g.rows < 3) GTEST_SKIP() << "needs a middle TSV";
  const auto c = tsv::analytic_capacitance(g, std::vector<double>(g.count(), 0.5));
  const auto total = [&](std::size_t i) {
    double t = 0.0;
    for (std::size_t j = 0; j < g.count(); ++j) t += c(i, j);
    return t;
  };
  const auto corner = g.index(0, 0);
  const auto edge = g.index(0, 1);
  const auto mid = g.index(1, 1);
  EXPECT_LT(total(corner), total(edge));
  EXPECT_LT(total(edge), total(mid));
  EXPECT_GT(c(corner, edge), c(corner, g.index(1, 1)));  // direct > diagonal
}

TEST_P(CapacitanceSweep, MosMonotoneInProbability) {
  const auto g = make();
  phys::Matrix prev;
  for (const double pr : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto c = tsv::analytic_capacitance(g, std::vector<double>(g.count(), pr));
    if (!prev.empty()) {
      for (std::size_t i = 0; i < g.count(); ++i) {
        for (std::size_t j = 0; j < g.count(); ++j) {
          EXPECT_LE(c(i, j), prev(i, j) + 1e-21)
              << "capacitance must not grow with probability (i=" << i << ", j=" << j << ")";
        }
      }
    }
    prev = c;
  }
}

TEST_P(CapacitanceSweep, RotationInvariance) {
  // A square array is invariant under 90-degree rotation; so must be the
  // capacitance model: C(i, j) == C(rot(i), rot(j)).
  const auto g = make();
  const auto c = tsv::analytic_capacitance(g, std::vector<double>(g.count(), 0.5));
  const auto rot = [&](std::size_t i) {
    const std::size_t r = g.row_of(i);
    const std::size_t col = g.col_of(i);
    return g.index(col, g.rows - 1 - r);
  };
  for (std::size_t i = 0; i < g.count(); ++i) {
    for (std::size_t j = 0; j < g.count(); ++j) {
      EXPECT_NEAR(c(i, j), c(rot(i), rot(j)), 1e-9 * (c(i, j) + 1e-18));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CapacitanceSweep,
                         ::testing::Values(GeometryParam{1.0, 4.0, 2},
                                           GeometryParam{1.0, 4.0, 3},
                                           GeometryParam{1.0, 4.0, 5},
                                           GeometryParam{2.0, 8.0, 3},
                                           GeometryParam{2.0, 8.0, 4},
                                           GeometryParam{1.0, 4.5, 5},
                                           GeometryParam{0.5, 2.0, 3},
                                           GeometryParam{3.0, 12.0, 3}));

// ---------------------------------------------------------------------------
// Power-model invariants.
// ---------------------------------------------------------------------------

class PowerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PowerSweep, RotatedAssignmentHasIdenticalPower) {
  // Rotating an assignment with the array's symmetry must not change power —
  // a joint consistency check of geometry, model and the A_pi transform.
  const auto geom = TsvArrayGeometry::itrs2018_min(3, 3);
  const core::Link link(geom);
  streams::SequentialStream src(9, 0.1, GetParam());
  const auto st = link.measure(src, 20000);

  std::mt19937_64 rng(GetParam());
  const auto a = core::SignedPermutation::random(9, rng, std::vector<std::uint8_t>(9, 1));

  std::vector<std::size_t> rotated_lines(9);
  std::vector<std::uint8_t> inv(9);
  for (std::size_t bit = 0; bit < 9; ++bit) {
    const std::size_t l = a.line_of_bit(bit);
    rotated_lines[bit] = geom.index(geom.col_of(l), geom.rows - 1 - geom.row_of(l));
    inv[bit] = a.inverted(bit) ? 1 : 0;
  }
  const core::SignedPermutation rotated(std::move(rotated_lines), std::move(inv));
  const double pa = link.power(st, a);
  const double pb = link.power(st, rotated);
  EXPECT_NEAR(pa, pb, 1e-9 * pa);
}

TEST_P(PowerSweep, GlobalInversionIsNeutralForBalancedData) {
  // For probability-balanced data with inversion-symmetric statistics,
  // inverting *all* lines flips every eps and leaves T'c unchanged
  // (signs cancel pairwise), so the power change is bounded by the eps
  // asymmetry of the stream (small for a near-balanced stream).
  const auto geom = TsvArrayGeometry::itrs2018_min(2, 3);
  const core::Link link(geom);
  streams::UniformRandomStream src(6, GetParam());
  const auto st = link.measure(src, 60000);

  auto plain = core::SignedPermutation::identity(6);
  auto flipped = core::SignedPermutation::identity(6);
  for (std::size_t b = 0; b < 6; ++b) flipped.toggle_inversion(b);
  const double pp = link.power(st, plain);
  const double pf = link.power(st, flipped);
  EXPECT_NEAR(pf / pp, 1.0, 0.01);
}

TEST_P(PowerSweep, OptimalNeverWorseThanAnyBaseline) {
  const auto geom = TsvArrayGeometry::itrs2018_min(2, 3);
  const core::Link link(geom);
  streams::GaussianAr1Stream src(6, 10.0, 0.4, GetParam());
  const auto st = link.measure(src, 30000);

  core::OptimizeOptions opts;
  opts.schedule.iterations = 4000;
  opts.seed = static_cast<unsigned>(GetParam());
  const auto best = core::optimize_assignment(st, link.model(), opts);
  EXPECT_LE(best.power,
            link.power(st, core::SignedPermutation::identity(6)) * (1.0 + 1e-12));
  EXPECT_LE(best.power, link.power(st, core::spiral_assignment(geom, st)) * (1.0 + 1e-12));
  EXPECT_LE(best.power, link.power(st, core::sawtooth_assignment(geom, st)) * (1.0 + 1e-12));
  std::mt19937_64 rng(GetParam() + 1);
  for (int k = 0; k < 20; ++k) {
    const auto r = core::SignedPermutation::random(6, rng);
    EXPECT_LE(best.power, link.power(st, r) * (1.0 + 1e-12));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowerSweep, ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
