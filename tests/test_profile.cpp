// Tests for the profiling layer (DESIGN.md §5i): the span-tree profiler's
// deterministic projection must be bit-identical at every thread count, the
// perf_event_open wrapper must degrade gracefully (flagged fallback, never an
// error), the periodic snapshot exporter must rotate files and mark its final
// write, and the benchdiff gate must catch an injected regression while
// passing an identical pair.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/link.hpp"
#include "field/extractor.hpp"
#include "obs/benchdiff.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/perf_counters.hpp"
#include "obs/profile.hpp"
#include "obs/snapshot.hpp"
#include "opt/parallel.hpp"
#include "streams/random_streams.hpp"

namespace {

using namespace tsvcod;
namespace json = obs::json;
namespace bd = obs::benchdiff;

class ProfileTest : public ::testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override { clear(); }
  static void clear() {
    obs::stop_snapshots();
    obs::enable_tracing(false);
    obs::enable_metrics(false);
    obs::enable_profiling(false);
    obs::reset_trace();
    obs::reset_metrics();
    obs::reset_profile();
  }
};

/// The instrumented hot paths at a given thread count (same workload as
/// test_obs, so the trace and profile views of one run stay comparable).
void run_instrumented_workload(int threads) {
  const auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(3, 3);
  const core::Link link(geom);
  streams::GaussianAr1Stream src(link.width(), 500.0, 0.4, 5);
  const auto st = link.measure(src, 20000);
  core::OptimizeOptions opts;
  opts.schedule.iterations = 1500;
  opts.chains = 4;
  opts.threads = threads;
  core::optimize_assignment(st, link.model(), opts);

  const auto geom2 = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const std::vector<double> pr(geom2.count(), 0.5);
  field::ExtractionOptions eo;
  eo.cell = 0.2e-6;
  eo.threads = threads;
  field::extract_capacitance(geom2, pr, eo);
}

const json::Value* child_named(const json::Value& children, const std::string& name) {
  for (const auto& node : children.array) {
    const json::Value* n = node.find("name");
    if (n != nullptr && n->is_string() && n->string == name) return &node;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Span-tree shape
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, DisabledProfilerRecordsNothing) {
  {
    obs::Span span("should.not.appear");
    EXPECT_FALSE(span.active());
    obs::profile_work("ignored", 7);
  }
  const json::Value doc = json::parse(obs::profile_to_json(obs::ProfileFields::deterministic));
  const json::Value* roots = doc.find("roots");
  ASSERT_NE(roots, nullptr);
  EXPECT_TRUE(roots->array.empty());
}

TEST_F(ProfileTest, TreeShapeFollowsSpanNesting) {
  obs::enable_profiling(true);
  for (int rep = 0; rep < 3; ++rep) {
    obs::Span outer("outer");
    obs::profile_work("units", 10);
    for (int j = 0; j < 2; ++j) {
      obs::Span inner("inner");
      obs::profile_work("units", 1);
    }
    obs::Span side("side");
  }
  obs::enable_profiling(false);

  const json::Value doc = json::parse(obs::profile_to_json(obs::ProfileFields::deterministic));
  EXPECT_EQ(doc.find("schema")->string, "tsvcod.profile.v1");
  EXPECT_EQ(doc.find("fields")->string, "deterministic");
  const json::Value* roots = doc.find("roots");
  ASSERT_NE(roots, nullptr);
  ASSERT_EQ(roots->array.size(), 1u);

  const json::Value& outer = roots->array[0];
  EXPECT_EQ(outer.find("name")->string, "outer");
  EXPECT_EQ(outer.find("count")->number, 3.0);
  EXPECT_EQ(outer.find("work")->find("units")->number, 30.0);
  // Deterministic projection must not leak timing fields.
  EXPECT_EQ(outer.find("total_ns"), nullptr);
  EXPECT_EQ(outer.find("self_ns"), nullptr);

  const json::Value* children = outer.find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->array.size(), 2u);
  // Children are name-sorted: "inner" before "side".
  EXPECT_EQ(children->array[0].find("name")->string, "inner");
  EXPECT_EQ(children->array[1].find("name")->string, "side");
  EXPECT_EQ(children->array[0].find("count")->number, 6.0);
  EXPECT_EQ(children->array[0].find("work")->find("units")->number, 6.0);
  EXPECT_EQ(children->array[1].find("count")->number, 3.0);
}

TEST_F(ProfileTest, ParallelForAggregatesUnderSubmittingSpan) {
  obs::enable_profiling(true);
  {
    obs::Span parent("logical.parent");
    opt::parallel_for(16, 4, [&](std::size_t) {
      obs::Span item("logical.item");
      obs::profile_work("items", 1);
    });
  }
  obs::enable_profiling(false);

  const json::Value doc = json::parse(obs::profile_to_json(obs::ProfileFields::deterministic));
  const json::Value* roots = doc.find("roots");
  ASSERT_EQ(roots->array.size(), 1u);
  const json::Value& parent = roots->array[0];
  EXPECT_EQ(parent.find("name")->string, "logical.parent");
  const json::Value* item = child_named(*parent.find("children"), "logical.item");
  ASSERT_NE(item, nullptr) << "worker spans must nest under the submitting span";
  EXPECT_EQ(item->find("count")->number, 16.0);
  EXPECT_EQ(item->find("work")->find("items")->number, 16.0);
}

TEST_F(ProfileTest, InstrumentedSubsystemsAppearInTree) {
  obs::enable_profiling(true);
  run_instrumented_workload(2);
  obs::enable_profiling(false);

  const json::Value doc = json::parse(obs::profile_to_json(obs::ProfileFields::deterministic));
  const json::Value* roots = doc.find("roots");
  const json::Value* optimize = child_named(*roots, "opt.optimize");
  const json::Value* extract = child_named(*roots, "field.extract");
  ASSERT_NE(optimize, nullptr);
  ASSERT_NE(extract, nullptr);

  const json::Value* chain = child_named(*optimize->find("children"), "opt.chain");
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->find("count")->number, 4.0);
  EXPECT_GT(chain->find("work")->find("evaluations")->number, 0.0);
  EXPECT_GT(optimize->find("work")->find("chains")->number, 0.0);

  const json::Value* solve = child_named(*extract->find("children"), "field.solve");
  ASSERT_NE(solve, nullptr);
  EXPECT_GE(solve->find("count")->number, 4.0);  // one per conductor of the 2x2
  EXPECT_GT(solve->find("work")->find("iterations")->number, 0.0);
}

// ---------------------------------------------------------------------------
// Determinism contract
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, DeterministicProjectionBitIdenticalAcrossThreadCounts) {
  const auto run_at = [](int threads) {
    obs::reset_profile();
    obs::enable_profiling(true);
    run_instrumented_workload(threads);
    const std::string json_text = obs::profile_to_json(obs::ProfileFields::deterministic);
    obs::enable_profiling(false);
    return json_text;
  };
  const std::string serial = run_at(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(run_at(2), serial) << "2 threads";
  EXPECT_EQ(run_at(8), serial) << "8 threads";
}

// ---------------------------------------------------------------------------
// Full projection, perf fallback, collapsed stacks
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, FullProjectionCarriesTimingAndPerfAvailability) {
  obs::enable_profiling(true);
  {
    obs::Span span("timed");
    volatile double sink = 0.0;
    for (int k = 0; k < 50000; ++k) sink = sink + k;
  }
  obs::enable_profiling(false);

  const json::Value doc = json::parse(obs::profile_to_json(obs::ProfileFields::full));
  EXPECT_EQ(doc.find("fields")->string, "full");

  // The availability block is always present: available + reason, and an
  // unavailable PMU is a flagged fallback, never an error.
  const json::Value* perf = doc.find("perf_counters");
  ASSERT_NE(perf, nullptr);
  const json::Value* available = perf->find("available");
  ASSERT_NE(available, nullptr);
  ASSERT_TRUE(available->is_boolean());
  ASSERT_NE(perf->find("reason"), nullptr);
  EXPECT_EQ(available->boolean, obs::perf_availability().available);
  if (!available->boolean) {
    EXPECT_FALSE(perf->find("reason")->string.empty())
        << "unavailable perf must say why";
  }

  const json::Value& node = doc.find("roots")->array[0];
  EXPECT_EQ(node.find("name")->string, "timed");
  ASSERT_NE(node.find("total_ns"), nullptr);
  ASSERT_NE(node.find("self_ns"), nullptr);
  EXPECT_GT(node.find("total_ns")->number, 0.0);
  EXPECT_GE(node.find("total_ns")->number, node.find("self_ns")->number);
  // The four counter fields exist either way; without a PMU they stay 0.
  for (int i = 0; i < obs::kPerfCounterCount; ++i) {
    const json::Value* c = node.find(obs::perf_counter_name(i));
    ASSERT_NE(c, nullptr) << obs::perf_counter_name(i);
    EXPECT_GE(c->number, 0.0);
  }
}

TEST_F(ProfileTest, PerfReadDegradesGracefullyWhenUnavailable) {
  if (obs::perf_availability().available) {
    GTEST_SKIP() << "PMU available on this host; fallback path not reachable";
  }
  std::uint64_t out[obs::kPerfCounterCount] = {1, 2, 3, 4};
  EXPECT_FALSE(obs::detail::perf_read_counters(out));
  // Profiling still works end to end without hardware counters.
  obs::enable_profiling(true);
  { obs::Span span("no.pmu"); }
  obs::enable_profiling(false);
  const json::Value doc = json::parse(obs::profile_to_json(obs::ProfileFields::full));
  EXPECT_EQ(doc.find("roots")->array.size(), 1u);
}

TEST_F(ProfileTest, CollapsedStacksListEveryPath) {
  obs::enable_profiling(true);
  {
    obs::Span a("alpha");
    { obs::Span b("beta"); }
    { obs::Span b("beta"); }
  }
  { obs::Span c("gamma"); }
  obs::enable_profiling(false);

  const std::string folded = obs::profile_to_collapsed();
  std::istringstream lines(folded);
  std::vector<std::string> paths;
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    paths.push_back(line.substr(0, space));
    EXPECT_GE(std::stoll(line.substr(space + 1)), 0) << line;
  }
  // Depth-first, name-sorted: alpha, alpha;beta, gamma.
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], "alpha");
  EXPECT_EQ(paths[1], "alpha;beta");
  EXPECT_EQ(paths[2], "gamma");
}

TEST_F(ProfileTest, ResetDropsTree) {
  obs::enable_profiling(true);
  { obs::Span span("ephemeral"); }
  obs::reset_profile();
  obs::enable_profiling(false);
  const json::Value doc = json::parse(obs::profile_to_json(obs::ProfileFields::deterministic));
  EXPECT_TRUE(doc.find("roots")->array.empty());
  EXPECT_TRUE(obs::profile_to_collapsed().empty());
}

// ---------------------------------------------------------------------------
// Snapshot exporter
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, SnapshotsRotateAndMarkFinal) {
  const std::string path = "/tmp/tsvcod_test_snapshot.json";
  for (const char* suffix : {"", ".1", ".2"}) std::remove((path + suffix).c_str());

  obs::SnapshotOptions opts;
  opts.interval = std::chrono::milliseconds(10);
  opts.keep = 2;
  obs::start_snapshots(path, opts);
  EXPECT_TRUE(obs::snapshots_running());
  EXPECT_EQ(obs::snapshot_path(), path);
  EXPECT_TRUE(obs::metrics_enabled()) << "snapshots imply the metrics layer";

  obs::metric_add("snapshot.test.counter", 3);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  obs::stop_snapshots();
  EXPECT_FALSE(obs::snapshots_running());
  EXPECT_EQ(obs::snapshot_path(), "");

  const auto slurp = [](const std::string& p) {
    std::ifstream is(p);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
  };
  const json::Value live = json::parse(slurp(path));
  ASSERT_NE(live.find("seq"), nullptr);
  EXPECT_TRUE(live.find("final")->boolean) << "stop_snapshots writes the final snapshot";
  const json::Value* metrics = live.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("counters")->find("snapshot.test.counter")->number, 3.0);

  // >= 10 periodic writes happened before the final one, so the rotation
  // chain exists and sequence numbers decrease down the chain.
  const json::Value prev = json::parse(slurp(path + ".1"));
  EXPECT_FALSE(prev.find("final")->boolean);
  EXPECT_LT(prev.find("seq")->number, live.find("seq")->number);
  EXPECT_FALSE(slurp(path + ".2").empty());

  for (const char* suffix : {"", ".1", ".2"}) std::remove((path + suffix).c_str());
}

TEST_F(ProfileTest, SnapshotIntervalMustBePositiveNamingTheKnob) {
  obs::SnapshotOptions opts;
  opts.interval = std::chrono::milliseconds(0);
  try {
    obs::start_snapshots("/tmp/tsvcod_test_snapshot_bad.json", opts);
    FAIL() << "non-positive interval must throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--snapshot-interval"), std::string::npos) << msg;
    EXPECT_NE(msg.find("TSVCOD_SNAPSHOT_INTERVAL"), std::string::npos) << msg;
  }
  EXPECT_FALSE(obs::snapshots_running()) << "a rejected start leaves the exporter stopped";

  opts.interval = std::chrono::milliseconds(-5);
  EXPECT_THROW(obs::start_snapshots("/tmp/tsvcod_test_snapshot_bad.json", opts),
               std::invalid_argument);
}

TEST_F(ProfileTest, InitFromEnvRejectsMalformedSnapshotInterval) {
  const std::string path = "/tmp/tsvcod_test_snapshot_env.json";
  setenv("TSVCOD_SNAPSHOT", path.c_str(), 1);
  for (const char* bad : {"0", "-2", "fast", "1.5x", ""}) {
    setenv("TSVCOD_SNAPSHOT_INTERVAL", bad, 1);
    if (*bad == '\0') {
      // Empty means unset: the default interval applies and startup succeeds.
      obs::init_from_env();
      EXPECT_TRUE(obs::snapshots_running());
      obs::stop_snapshots();
      continue;
    }
    try {
      obs::init_from_env();
      FAIL() << "TSVCOD_SNAPSHOT_INTERVAL='" << bad << "' must be rejected";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("TSVCOD_SNAPSHOT_INTERVAL"), std::string::npos) << msg;
      EXPECT_NE(msg.find(bad), std::string::npos) << "message should quote the value: " << msg;
    }
    EXPECT_FALSE(obs::snapshots_running());
  }
  unsetenv("TSVCOD_SNAPSHOT");
  unsetenv("TSVCOD_SNAPSHOT_INTERVAL");
  std::remove(path.c_str());
}

TEST_F(ProfileTest, StopRacingPeriodicWritesAlwaysLeavesFinalTrue) {
  // stop_snapshots() joins the worker before writing the closing document,
  // so even when stop lands mid-periodic-write the last document on disk is
  // the final one. Run several short rounds with a 1 ms interval and a
  // stopper thread racing the worker; under the tsan-profile preset this
  // also proves the lifecycle handshake is data-race-free.
  const std::string path = "/tmp/tsvcod_test_snapshot_race.json";
  for (int round = 0; round < 8; ++round) {
    std::remove(path.c_str());
    obs::SnapshotOptions opts;
    opts.interval = std::chrono::milliseconds(1);
    opts.keep = 0;
    obs::start_snapshots(path, opts);
    obs::metric_add("snapshot.race.counter");
    // Vary how far into the periodic cadence the stop lands.
    std::this_thread::sleep_for(std::chrono::microseconds(300 * round));
    std::thread stopper([] { obs::stop_snapshots(); });
    obs::stop_snapshots();  // concurrent stops: exactly one final write
    stopper.join();
    EXPECT_FALSE(obs::snapshots_running());

    std::ifstream is(path);
    std::ostringstream ss;
    ss << is.rdbuf();
    const json::Value doc = json::parse(ss.str());  // rename keeps it untorn
    ASSERT_NE(doc.find("final"), nullptr);
    EXPECT_TRUE(doc.find("final")->boolean)
        << "round " << round << ": final:true must be the last document";
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Benchdiff gate
// ---------------------------------------------------------------------------

constexpr const char* kBase = R"({
  "bench": "stats_throughput", "words": 262144, "reps": 5, "threads": 4,
  "results": [
    {"width": 32, "scalar_words_per_sec": 1.0e7, "solve_time_ms": 12.0,
     "bit_identical": true},
    {"width": 64, "scalar_words_per_sec": 5.0e6, "solve_time_ms": 30.0,
     "bit_identical": true}
  ]
})";

std::string with_injected_regression() {
  // 20% throughput drop on the w32 row only.
  std::string s = kBase;
  const std::string needle = "\"scalar_words_per_sec\": 1.0e7";
  s.replace(s.find(needle), needle.size(), "\"scalar_words_per_sec\": 0.8e7");
  return s;
}

TEST_F(ProfileTest, BenchdiffPassesIdenticalDocuments) {
  const bd::DiffReport report = bd::diff_bench_json(kBase, kBase, {});
  EXPECT_FALSE(report.regression);
  ASSERT_FALSE(report.metrics.empty());
  for (const auto& m : report.metrics) {
    EXPECT_FALSE(m.regression) << m.key;
    EXPECT_EQ(m.delta_pct, 0.0) << m.key;
  }
  EXPECT_TRUE(report.only_base.empty());
  EXPECT_TRUE(report.only_cand.empty());
  EXPECT_NE(bd::report_to_table(report).find("RESULT: ok"), std::string::npos);
}

TEST_F(ProfileTest, BenchdiffCatchesInjectedTwentyPercentRegression) {
  const bd::DiffReport report = bd::diff_bench_json(kBase, with_injected_regression(), {});
  EXPECT_TRUE(report.regression);
  int flagged = 0;
  for (const auto& m : report.metrics) {
    if (m.regression) {
      ++flagged;
      EXPECT_EQ(m.key, "w32.scalar_words_per_sec");
      EXPECT_NEAR(m.delta_pct, -20.0, 1e-9);
      EXPECT_EQ(m.direction, bd::Direction::higher_better);
    }
  }
  EXPECT_EQ(flagged, 1);
  EXPECT_NE(bd::report_to_table(report).find("RESULT: REGRESSION"), std::string::npos);
  // The machine report round-trips through the strict parser.
  const json::Value doc = json::parse(bd::report_to_json(report));
  EXPECT_EQ(doc.find("schema")->string, "tsvcod.benchdiff.v1");
  EXPECT_TRUE(doc.find("regression")->boolean);
}

TEST_F(ProfileTest, BenchdiffToleranceOverridesSuppressTheGate) {
  bd::DiffOptions opts;
  opts.per_metric = {{"scalar_words_per_sec", 30.0}};
  const bd::DiffReport report = bd::diff_bench_json(kBase, with_injected_regression(), opts);
  EXPECT_FALSE(report.regression);
}

TEST_F(ProfileTest, BenchdiffDirectionHeuristics) {
  using bd::Direction;
  EXPECT_EQ(bd::direction_of("w32.scalar_words_per_sec"), Direction::higher_better);
  EXPECT_EQ(bd::direction_of("w64.speedup_simd"), Direction::higher_better);
  EXPECT_EQ(bd::direction_of("row.throughput"), Direction::higher_better);
  EXPECT_EQ(bd::direction_of("w32.solve_time_ms"), Direction::lower_better);
  EXPECT_EQ(bd::direction_of("bench.llc_misses"), Direction::lower_better);
  EXPECT_EQ(bd::direction_of("w16.iterations"), Direction::lower_better);
  EXPECT_EQ(bd::direction_of("w16.acceptance_rate"), Direction::two_sided);

  // lower_better regressions fire on increases, not decreases.
  const std::string slow = [] {
    std::string s = kBase;
    const std::string needle = "\"solve_time_ms\": 12.0";
    std::string r = s;
    r.replace(r.find(needle), needle.size(), "\"solve_time_ms\": 18.0");
    return r;
  }();
  const bd::DiffReport report = bd::diff_bench_json(kBase, slow, {});
  EXPECT_TRUE(report.regression);
  for (const auto& m : report.metrics) {
    if (m.regression) {
      EXPECT_EQ(m.key, "w32.solve_time_ms");
    }
  }
}

TEST_F(ProfileTest, BenchdiffBooleanRegressionOnlyOnTrueToFalse) {
  const std::string broken = [] {
    std::string s = kBase;
    const std::string needle = "\"width\": 64, \"scalar_words_per_sec\": 5.0e6";
    // flip the w64 bit_identical to false
    const std::string tneedle = "\"solve_time_ms\": 30.0,\n     \"bit_identical\": true";
    s.replace(s.find(tneedle), tneedle.size(),
              "\"solve_time_ms\": 30.0,\n     \"bit_identical\": false");
    (void)needle;
    return s;
  }();
  const bd::DiffReport report = bd::diff_bench_json(kBase, broken, {});
  EXPECT_TRUE(report.regression);
  for (const auto& m : report.metrics) {
    if (m.regression) {
      EXPECT_EQ(m.key, "w64.bit_identical");
      EXPECT_EQ(m.direction, bd::Direction::boolean);
    }
  }
  // false -> true is an improvement, never a regression.
  const bd::DiffReport improved = bd::diff_bench_json(broken, kBase, {});
  EXPECT_FALSE(improved.regression);
}

TEST_F(ProfileTest, BenchdiffReportsOnlyKeysWithoutGating) {
  const std::string extra = [] {
    std::string s = kBase;
    const std::string needle = "\"bit_identical\": true\n    }";
    const std::size_t pos = s.rfind("\"bit_identical\": true");
    s.insert(pos + std::string("\"bit_identical\": true").size(), ", \"new_metric\": 1.5");
    (void)needle;
    return s;
  }();
  const bd::DiffReport added = bd::diff_bench_json(kBase, extra, {});
  EXPECT_FALSE(added.regression);
  ASSERT_EQ(added.only_cand.size(), 1u);
  EXPECT_EQ(added.only_cand[0], "w64.new_metric");
  const bd::DiffReport removed = bd::diff_bench_json(extra, kBase, {});
  EXPECT_FALSE(removed.regression);
  ASSERT_EQ(removed.only_base.size(), 1u);
}

}  // namespace
