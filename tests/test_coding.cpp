// Unit tests for the low-power codecs: Gray (with XNOR inversions),
// correlator/decorrelator, classic bus-invert and coupling-driven invert.
#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <random>

#include "coding/bus_invert.hpp"
#include "coding/codec.hpp"
#include "coding/correlator.hpp"
#include "coding/factory.hpp"
#include "coding/gray.hpp"
#include "coding/fibonacci.hpp"
#include "coding/t0.hpp"
#include "streams/random_streams.hpp"

namespace {

using namespace tsvcod;
using namespace tsvcod::coding;

TEST(Gray, RoundTripAllTenBitValues) {
  GrayCodec codec(10);
  for (std::uint64_t v = 0; v < 1024; ++v) {
    EXPECT_EQ(codec.decode(codec.encode(v)), v);
  }
}

TEST(Gray, AdjacentValuesDifferInOneBit) {
  GrayCodec codec(12);
  for (std::uint64_t v = 0; v + 1 < 4096; ++v) {
    const auto a = codec.encode(v);
    const auto b = codec.encode(v + 1);
    EXPECT_EQ(std::popcount(a ^ b), 1) << "v=" << v;
  }
}

TEST(Gray, InversionMaskIsXnorRealization) {
  // Swapping XOR for XNOR on masked lines = XORing the plain code with the
  // mask. Switching activity must be untouched, 1-probabilities flipped.
  const std::uint64_t mask = 0b1010;
  GrayCodec plain(4);
  GrayCodec inverted(4, mask);
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(inverted.encode(v), plain.encode(v) ^ mask);
    EXPECT_EQ(inverted.decode(inverted.encode(v)), v);
  }
}

TEST(Gray, StabilizesCorrelatedMsbs) {
  // Normally distributed data: Gray coding turns the sign-extension region
  // into nearly stable 0s (paper Sec. 6).
  streams::GaussianAr1Stream src(16, 300.0, 0.0, 3);
  GrayCodec codec(16);
  int msb_ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    msb_ones += (codec.encode(src.next()) >> 14) & 1u;
  }
  EXPECT_LT(static_cast<double>(msb_ones) / n, 0.05);
}

TEST(Correlator, RoundTripVariousPeriods) {
  for (const std::size_t period : {std::size_t{1}, std::size_t{3}, std::size_t{4}}) {
    CorrelatorCodec enc(8, period, 0b1100);
    CorrelatorCodec dec(8, period, 0b1100);
    std::mt19937_64 rng(period);
    for (int i = 0; i < 1000; ++i) {
      const std::uint64_t v = rng() & 0xFF;
      EXPECT_EQ(dec.decode(enc.encode(v)), v);
    }
  }
}

TEST(Correlator, CorrelatedChannelBecomesSparse) {
  // Slowly varying channel values -> decorrelated output nearly all zero.
  CorrelatorCodec enc(8, 1);
  std::uint64_t ones = 0;
  for (int i = 0; i < 1000; ++i) {
    // A channel that changes value only every 50 cycles.
    ones += std::popcount(enc.encode(static_cast<std::uint64_t>(128 + (i / 50) % 3)));
  }
  EXPECT_LT(ones, 100u);
}

TEST(Correlator, InversionMaskRaisesOnes) {
  CorrelatorCodec plain(8, 1);
  CorrelatorCodec inv(8, 1, 0xFF);
  std::uint64_t plain_ones = 0;
  std::uint64_t inv_ones = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<std::uint64_t>(100 + (i % 2));
    plain_ones += std::popcount(plain.encode(v));
    inv_ones += std::popcount(inv.encode(v));
  }
  EXPECT_GT(inv_ones, plain_ones);
}

TEST(Correlator, ResetClearsHistory) {
  CorrelatorCodec enc(8, 2);
  (void)enc.encode(0xAB);
  (void)enc.encode(0xCD);
  enc.reset();
  // After reset the first encode XORs against zero history again.
  EXPECT_EQ(enc.encode(0x55), 0x55u);
}

TEST(BusInvert, RoundTripAndToggleBound) {
  BusInvertCodec enc(8);
  BusInvertCodec dec(8);
  std::mt19937_64 rng(1);
  std::uint64_t prev_data = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng() & 0xFF;
    const std::uint64_t code = enc.encode(v);
    EXPECT_EQ(dec.decode(code), v);
    // Classic bus-invert guarantee: at most width/2 data lines toggle.
    const std::uint64_t data = code & 0xFF;
    EXPECT_LE(std::popcount(data ^ prev_data), 4);
    prev_data = data;
  }
}

TEST(BusInvert, WidthOutAddsFlag) {
  BusInvertCodec codec(7);
  EXPECT_EQ(codec.width_in(), 7u);
  EXPECT_EQ(codec.width_out(), 8u);
}

TEST(CouplingInvert, RoundTrip) {
  CouplingInvertCodec enc(7);
  CouplingInvertCodec dec(7);
  std::mt19937_64 rng(2);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng() & 0x7F;
    EXPECT_EQ(dec.decode(enc.encode(v)), v);
  }
}

TEST(CouplingInvert, ChoosesCheaperTransition) {
  CouplingInvertCodec probe(7);
  CouplingInvertCodec enc(7);
  std::mt19937_64 rng(3);
  std::uint64_t prev = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng() & 0x7F;
    const std::uint64_t plain = v;
    const std::uint64_t flipped = (~v & 0x7F) | 0x80;
    const double c_plain = probe.transition_cost(prev, plain);
    const double c_flip = probe.transition_cost(prev, flipped);
    const std::uint64_t chosen = enc.encode(v);
    const double c_chosen = probe.transition_cost(prev, chosen);
    EXPECT_LE(c_chosen, std::min(c_plain, c_flip) + 1e-12);
    prev = chosen;
  }
}

TEST(CouplingInvert, CostProperties) {
  CouplingInvertCodec codec(7, 2.0);
  EXPECT_DOUBLE_EQ(codec.transition_cost(0x12, 0x12), 0.0);
  // One line toggling: self cost 1 plus coupling cost to both neighbours.
  EXPECT_GT(codec.transition_cost(0b000, 0b010), 0.0);
  // Opposite toggles on adjacent lines cost more than aligned toggles.
  const double opposite = codec.transition_cost(0b01, 0b10);
  const double aligned = codec.transition_cost(0b00, 0b11);
  EXPECT_GT(opposite, aligned);
}

TEST(CouplingInvert, ReducesPlanarCostVersusUncoded) {
  std::mt19937_64 rng(4);
  CouplingInvertCodec probe(7);
  CouplingInvertCodec enc(7);
  double coded = 0.0;
  double uncoded = 0.0;
  std::uint64_t prev_coded = 0;
  std::uint64_t prev_plain = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng() & 0x7F;
    const std::uint64_t c = enc.encode(v);
    coded += probe.transition_cost(prev_coded, c);
    uncoded += probe.transition_cost(prev_plain, v);
    prev_coded = c;
    prev_plain = v;
  }
  EXPECT_LT(coded, uncoded);
}

TEST(EncodedStream, ComposesCodecAndStream) {
  auto inner = std::make_unique<streams::TraceStream>(std::vector<std::uint64_t>{1, 2, 3}, 4);
  EncodedStream s(std::move(inner), std::make_unique<GrayCodec>(4));
  EXPECT_EQ(s.width(), 4u);
  EXPECT_EQ(s.next(), GrayCodec::binary_to_gray(1));
  EXPECT_EQ(s.next(), GrayCodec::binary_to_gray(2));
}

TEST(EncodedStream, RejectsWidthMismatch) {
  auto inner = std::make_unique<streams::TraceStream>(std::vector<std::uint64_t>{1}, 4);
  EXPECT_THROW(EncodedStream(std::move(inner), std::make_unique<GrayCodec>(5)),
               std::invalid_argument);
}


TEST(T0, RoundTripMixedTraffic) {
  coding::T0Codec enc(8);
  coding::T0Codec dec(8);
  std::mt19937_64 rng(9);
  std::uint64_t addr = 0;
  for (int i = 0; i < 5000; ++i) {
    // Mostly sequential with occasional jumps, like a program counter.
    if (rng() % 10 == 0) addr = rng() & 0xFF;
    else addr = (addr + 1) & 0xFF;
    EXPECT_EQ(dec.decode(enc.encode(addr)), addr);
  }
}

TEST(T0, FreezesBusOnSequentialRuns) {
  coding::T0Codec enc(8);
  const std::uint64_t first = enc.encode(0x10);
  EXPECT_EQ(first, 0x10u);  // absolute, INC clear
  for (std::uint64_t a = 0x11; a < 0x20; ++a) {
    const std::uint64_t code = enc.encode(a);
    EXPECT_EQ(code & 0xFF, 0x10u) << "data lines must stay frozen";
    EXPECT_TRUE(code & 0x100) << "INC line must be set";
  }
}

TEST(T0, WrapsAroundAtWidth) {
  coding::T0Codec enc(4);
  coding::T0Codec dec(4);
  (void)dec.decode(enc.encode(0xF));
  const std::uint64_t code = enc.encode(0x0);  // 0xF + 1 wraps in 4 bits
  EXPECT_TRUE(code & 0x10) << "wraparound is still in-sequence";
  EXPECT_EQ(dec.decode(code), 0x0u);
}

TEST(T0, DecoderRejectsIncBeforePrime) {
  coding::T0Codec dec(8);
  EXPECT_THROW(dec.decode(0x100), std::logic_error);
}

TEST(T0, CustomStride) {
  coding::T0Codec enc(8, 4);
  coding::T0Codec dec(8, 4);
  (void)dec.decode(enc.encode(0x00));
  const std::uint64_t code = enc.encode(0x04);
  EXPECT_TRUE(code & 0x100);
  EXPECT_EQ(dec.decode(code), 0x04u);
  // Stride mismatch falls back to an absolute transfer.
  const std::uint64_t abs = enc.encode(0x07);
  EXPECT_FALSE(abs & 0x100);
  EXPECT_EQ(dec.decode(abs), 0x07u);
}

TEST(T0, ResetClearsSequenceState) {
  coding::T0Codec enc(8);
  (void)enc.encode(0x20);
  enc.reset();
  const std::uint64_t code = enc.encode(0x21);  // would be in-sequence without reset
  EXPECT_FALSE(code & 0x100);
}


TEST(Fibonacci, RoundTripAllTwelveBitValues) {
  coding::FibonacciCodec codec(12);
  for (std::uint64_t v = 0; v < 4096; ++v) {
    EXPECT_EQ(codec.decode(codec.encode(v)), v);
  }
}

TEST(Fibonacci, CodewordsAreForbiddenPatternFree) {
  coding::FibonacciCodec codec(12);
  for (std::uint64_t v = 0; v < 4096; ++v) {
    EXPECT_TRUE(coding::FibonacciCodec::is_forbidden_pattern_free(codec.encode(v)))
        << "value " << v;
  }
}

TEST(Fibonacci, WidthExpansionIsAboutFortyFourPercent) {
  // 8 bits need 12 Fibonacci lines (F(15) - 1 = 376 >= 255).
  coding::FibonacciCodec c8(8);
  EXPECT_EQ(c8.width_out(), 12u);
  coding::FibonacciCodec c16(16);
  EXPECT_GE(c16.width_out(), 22u);
  EXPECT_LE(c16.width_out(), 25u);
  EXPECT_THROW(coding::FibonacciCodec(0), std::invalid_argument);
}

TEST(Fibonacci, PatternFreeCheckerItself) {
  EXPECT_TRUE(coding::FibonacciCodec::is_forbidden_pattern_free(0b101010));
  EXPECT_FALSE(coding::FibonacciCodec::is_forbidden_pattern_free(0b1100));
  EXPECT_TRUE(coding::FibonacciCodec::is_forbidden_pattern_free(0));
}

// --- Width-limit validation through the factory ----------------------------

TEST(Factory, EveryCodecAcceptsItsFullRangeAndNamesItsLimit) {
  for (const auto& name : codec_names()) {
    const std::size_t max = codec_max_width(name);
    CodecSpec spec;
    spec.name = name;
    EXPECT_NO_THROW(make_codec(spec, 1)) << name;
    EXPECT_NO_THROW(make_codec(spec, max)) << name;
    for (const std::size_t bad : {std::size_t{0}, max + 1}) {
      try {
        make_codec(spec, bad);
        FAIL() << name << " accepted width " << bad;
      } catch (const std::invalid_argument& e) {
        // The message must name the codec and its actual ceiling, not a
        // generic "bad width".
        const std::string msg = e.what();
        EXPECT_NE(msg.find(name), std::string::npos) << msg;
        EXPECT_NE(msg.find("[1, " + std::to_string(max) + "]"), std::string::npos) << msg;
      }
    }
  }
}

TEST(Factory, EdgeWidths1And63And64) {
  // Width-preserving codecs reach 64; flag-extending codecs stop at 63 (the
  // flag occupies the 64th line); Fibonacci stops far earlier (expansion).
  CodecSpec gray{.name = "gray"};
  EXPECT_EQ(make_codec(gray, 64)->width_out(), 64u);
  CodecSpec correlator{.name = "correlator", .period = 3};
  EXPECT_EQ(make_codec(correlator, 64)->width_out(), 64u);

  for (const char* name : {"bus-invert", "coupling-invert", "t0"}) {
    CodecSpec spec;
    spec.name = name;
    EXPECT_EQ(codec_max_width(name), 63u);
    EXPECT_EQ(make_codec(spec, 1)->width_out(), 2u) << name;
    EXPECT_EQ(make_codec(spec, 63)->width_out(), 64u) << name;
    EXPECT_THROW(make_codec(spec, 64), std::invalid_argument) << name;
  }

  EXPECT_EQ(codec_max_width("fibonacci"), 40u);
  EXPECT_THROW(make_codec(CodecSpec{.name = "fibonacci"}, 41), std::invalid_argument);
  EXPECT_LE(make_codec(CodecSpec{.name = "fibonacci"}, 40)->width_out(), 64u);
}

TEST(Factory, DirectConstructorsEnforceTheSameLimits) {
  EXPECT_NO_THROW(GrayCodec(64));
  EXPECT_THROW(GrayCodec(65), std::invalid_argument);
  EXPECT_NO_THROW(BusInvertCodec(63));
  EXPECT_THROW(BusInvertCodec(64), std::invalid_argument);
  EXPECT_NO_THROW(CouplingInvertCodec(63));
  EXPECT_THROW(CouplingInvertCodec(64), std::invalid_argument);
  EXPECT_NO_THROW(T0Codec(63));
  EXPECT_THROW(T0Codec(64), std::invalid_argument);
  EXPECT_NO_THROW(FibonacciCodec(40));
  EXPECT_THROW(FibonacciCodec(41), std::invalid_argument);
  try {
    BusInvertCodec(64);
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("63"), std::string::npos) << e.what();
  }
}

TEST(Factory, UnknownNameListsTheAlternatives) {
  try {
    make_codec(CodecSpec{.name = "huffman"}, 8);
    FAIL() << "unknown codec accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("huffman"), std::string::npos) << msg;
    EXPECT_NE(msg.find("gray"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fibonacci"), std::string::npos) << msg;
  }
}

TEST(Factory, MakeCodecForLinesInvertsTheExpansion) {
  // 12 lines: gray carries 12 payload bits, flag codecs 11, Fibonacci 8.
  EXPECT_EQ(make_codec_for_lines(CodecSpec{.name = "gray"}, 12)->width_in(), 12u);
  EXPECT_EQ(make_codec_for_lines(CodecSpec{.name = "bus-invert"}, 12)->width_in(), 11u);
  EXPECT_EQ(make_codec_for_lines(CodecSpec{.name = "t0"}, 12)->width_in(), 11u);
  EXPECT_EQ(make_codec_for_lines(CodecSpec{.name = "fibonacci"}, 12)->width_in(), 8u);
  // 11 Fibonacci lines fit no payload exactly (7 bits -> 10 lines, 8 -> 12).
  EXPECT_THROW(make_codec_for_lines(CodecSpec{.name = "fibonacci"}, 11), std::invalid_argument);
  EXPECT_THROW(make_codec_for_lines(CodecSpec{.name = "bus-invert"}, 1), std::invalid_argument);
}

TEST(Factory, CloneCopiesHistory) {
  // clone() must deep-copy codec state: a clone taken mid-stream continues
  // exactly like the original (the property CodedLink's receiver relies on).
  CodecSpec spec{.name = "correlator", .period = 2};
  auto a = make_codec(spec, 8);
  (void)a->encode(0x12);
  (void)a->encode(0x34);
  auto b = a->clone();
  for (std::uint64_t w : {0x56ull, 0x78ull, 0x9Aull}) {
    EXPECT_EQ(a->encode(w), b->encode(w));
  }
}

}  // namespace
