// Property tests for the incremental power evaluator: after arbitrary move
// sequences, the running power must equal both its own O(N^2) recomputation
// and the standalone assignment_power() of the tracked assignment.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/link.hpp"
#include "streams/image_sensor.hpp"
#include "streams/random_streams.hpp"

namespace {

using namespace tsvcod;

stats::SwitchingStats make_stats(std::size_t width, std::uint64_t seed) {
  streams::SequentialStream src(width, 0.1, seed);
  stats::StatsAccumulator acc(width);
  for (int i = 0; i < 20000; ++i) acc.add(src.next());
  return acc.finish();
}

class EvaluatorSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EvaluatorSweep, IncrementalMatchesRecompute) {
  const std::size_t rows = GetParam();
  auto geom = phys::TsvArrayGeometry::itrs2018_min(rows, rows);
  const auto model = tsv::fit_from_analytic(geom);
  const auto st = make_stats(geom.count(), 11);

  core::PowerEvaluator ev(st, model, core::SignedPermutation::identity(geom.count()));
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::size_t> pick(0, geom.count() - 1);
  for (int move = 0; move < 500; ++move) {
    if (rng() % 3 == 0) {
      ev.toggle_inversion(pick(rng));
    } else {
      ev.swap_bits(pick(rng), pick(rng));
    }
    if (move % 50 == 0) {
      const double scale = std::abs(ev.recompute()) + 1e-30;
      ASSERT_NEAR(ev.power() / scale, ev.recompute() / scale, 1e-9) << "after move " << move;
      ASSERT_NEAR(core::assignment_power(st, ev.assignment(), model) / scale,
                  ev.power() / scale, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ArraySizes, EvaluatorSweep, ::testing::Values(2, 3, 4, 5));

TEST(Evaluator, MovesAreSelfInverse) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(3, 3);
  const auto model = tsv::fit_from_analytic(geom);
  const auto st = make_stats(9, 4);
  core::PowerEvaluator ev(st, model, core::SignedPermutation::identity(9));
  const double p0 = ev.power();
  const auto a0 = ev.assignment();

  ev.swap_bits(1, 7);
  ev.swap_bits(1, 7);
  EXPECT_EQ(ev.assignment(), a0);
  EXPECT_NEAR(ev.power(), p0, 1e-9 * std::abs(p0));

  ev.toggle_inversion(4);
  ev.toggle_inversion(4);
  EXPECT_EQ(ev.assignment(), a0);
  EXPECT_NEAR(ev.power(), p0, 1e-9 * std::abs(p0));
}

// Long-walk drift property: the incremental power must stay within float
// epsilon of a full recomputation over move sequences an annealing chain
// actually performs (tens of thousands of swaps/toggles, undos included),
// not just the few hundred the sweep above covers.
TEST(Evaluator, LongRandomWalkStaysWithinFloatEpsilon) {
  auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(4, 4);
  const auto model = tsv::fit_from_analytic(geom);
  const auto st = make_stats(16, 13);

  core::PowerEvaluator ev(st, model, core::SignedPermutation::identity(16));
  std::mt19937_64 rng(17);
  std::uniform_int_distribution<std::size_t> pick(0, 15);
  for (int move = 0; move < 30000; ++move) {
    switch (rng() % 4) {
      case 0:
        ev.toggle_inversion(pick(rng));
        break;
      case 1: {  // rejected move: apply then immediately undo (self-inverse)
        const std::size_t a = pick(rng), b = pick(rng);
        ev.swap_bits(a, b);
        ev.swap_bits(a, b);
        break;
      }
      default:
        ev.swap_bits(pick(rng), pick(rng));
        break;
    }
  }
  const double scale = std::abs(ev.recompute()) + 1e-30;
  EXPECT_NEAR(ev.power() / scale, ev.recompute() / scale, 1e-9);
  EXPECT_NEAR(core::assignment_power(st, ev.assignment(), model) / scale, ev.power() / scale,
              1e-9);
}

TEST(Evaluator, NoOpSwapKeepsPower) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const auto model = tsv::fit_from_analytic(geom);
  const auto st = make_stats(4, 5);
  core::PowerEvaluator ev(st, model, core::SignedPermutation::identity(4));
  const double p0 = ev.power();
  EXPECT_DOUBLE_EQ(ev.swap_bits(2, 2), p0);
}

TEST(Evaluator, ResetClearsState) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 3);
  const auto model = tsv::fit_from_analytic(geom);
  const auto st = make_stats(6, 6);
  core::PowerEvaluator ev(st, model, core::SignedPermutation::identity(6));
  ev.swap_bits(0, 5);
  ev.toggle_inversion(2);

  core::SignedPermutation fresh({2, 0, 1, 3, 5, 4}, {0, 1, 0, 0, 0, 0});
  ev.reset(fresh);
  EXPECT_EQ(ev.assignment(), fresh);
  EXPECT_NEAR(ev.power(), core::assignment_power(st, fresh, model),
              1e-12 * std::abs(ev.power()));
}

TEST(Evaluator, RejectsSizeMismatch) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const auto model = tsv::fit_from_analytic(geom);
  const auto st = make_stats(6, 7);  // 6 bits vs 4-line model
  EXPECT_THROW(core::PowerEvaluator(st, model, core::SignedPermutation::identity(6)),
               std::invalid_argument);
}

// Out-of-range bit indices must throw (naming the index and the width) and
// leave the evaluator untouched — including swap_bits(a, a) with a bad `a`,
// which used to hit the no-op early return before any validation.
TEST(Evaluator, RejectsOutOfRangeBits) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const auto model = tsv::fit_from_analytic(geom);
  const auto st = make_stats(4, 8);
  core::PowerEvaluator ev(st, model, core::SignedPermutation::identity(4));
  const double p0 = ev.power();

  const auto expect_throws = [&](auto&& fn) {
    try {
      fn();
      FAIL() << "expected std::out_of_range";
    } catch (const std::out_of_range& e) {
      EXPECT_NE(std::string(e.what()).find("4"), std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find("width"), std::string::npos) << e.what();
    }
  };
  expect_throws([&] { ev.swap_bits(0, 4); });
  expect_throws([&] { ev.swap_bits(4, 0); });
  expect_throws([&] { ev.swap_bits(4, 4); });
  expect_throws([&] { ev.toggle_inversion(4); });
  std::vector<core::PowerEvaluator::Move> bad{{false, 0, 4}};
  std::vector<double> out(1);
  expect_throws([&] { ev.score_moves(bad, out); });

  EXPECT_EQ(ev.power(), p0);
  EXPECT_NEAR(ev.power(), ev.recompute(), 1e-9 * std::abs(p0));
}

// Batched pricing must agree with actually applying each move, and must not
// mutate the evaluator.
TEST(Evaluator, ScoreMovesMatchesApply) {
  auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(3, 3);
  const auto model = tsv::fit_from_analytic(geom);
  const auto st = make_stats(9, 21);
  core::PowerEvaluator ev(st, model, core::SignedPermutation::identity(9));
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::size_t> pick(0, 8);
  // Walk away from the identity first so line state differs from bit state.
  for (int i = 0; i < 40; ++i) ev.swap_bits(pick(rng), pick(rng));
  for (int i = 0; i < 10; ++i) ev.toggle_inversion(pick(rng));

  std::vector<core::PowerEvaluator::Move> moves;
  for (int i = 0; i < 64; ++i) {
    if (rng() % 3 == 0) {
      moves.push_back({true, pick(rng), 0});
    } else {
      moves.push_back({false, pick(rng), pick(rng)});
    }
  }
  std::vector<double> scores(moves.size());
  const double p0 = ev.power();
  ev.score_moves(moves, scores);
  EXPECT_EQ(ev.power(), p0);  // scoring is const

  const double scale = std::abs(p0) + 1e-30;
  for (std::size_t k = 0; k < moves.size(); ++k) {
    const double applied =
        moves[k].is_toggle ? ev.toggle_inversion(moves[k].a) : ev.swap_bits(moves[k].a, moves[k].b);
    EXPECT_NEAR(scores[k] / scale, applied / scale, 1e-10) << "move " << k;
    // Undo (moves are self-inverse) so every score is judged from the same state.
    if (moves[k].is_toggle) {
      ev.toggle_inversion(moves[k].a);
    } else {
      ev.swap_bits(moves[k].a, moves[k].b);
    }
  }
}

// The optimizer built on the evaluator must still beat/match a dense-eval
// exhaustive search (regression guard for the incremental rewrite).
TEST(Evaluator, OptimizerStillFindsExhaustiveOptimum) {
  auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(2, 2);
  const core::Link link(geom);
  streams::GaussianAr1Stream src(4, 3.0, -0.5, 17);
  stats::StatsAccumulator acc(4);
  for (int i = 0; i < 30000; ++i) acc.add(src.next());
  const auto st = acc.finish();

  core::OptimizeOptions opts;
  opts.schedule.iterations = 5000;
  const auto sa = core::optimize_assignment(st, link.model(), opts);
  const auto ex = core::exhaustive_optimal(st, link.model(), opts);
  EXPECT_NEAR(sa.power, ex.power, 1e-9 * std::abs(ex.power));
}

}  // namespace
