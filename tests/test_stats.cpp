// Unit tests for the switching-statistics accumulator and the analytic
// dual-bit-type model.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "phys/constants.hpp"
#include "stats/dbt_model.hpp"
#include "stats/switching_stats.hpp"

namespace {

using namespace tsvcod;
using stats::compute_stats;
using stats::StatsAccumulator;

TEST(Stats, ConstantStream) {
  const std::vector<std::uint64_t> words(10, 0b101);
  const auto s = compute_stats(words, 3);
  EXPECT_EQ(s.transitions, 9u);
  EXPECT_DOUBLE_EQ(s.self[0], 0.0);
  EXPECT_DOUBLE_EQ(s.self[1], 0.0);
  EXPECT_DOUBLE_EQ(s.self[2], 0.0);
  EXPECT_DOUBLE_EQ(s.prob_one[0], 1.0);
  EXPECT_DOUBLE_EQ(s.prob_one[1], 0.0);
  EXPECT_DOUBLE_EQ(s.prob_one[2], 1.0);
}

TEST(Stats, OppositeTogglingGivesNegativeCoupling) {
  // 01 -> 10 -> 01 ... : both bits toggle every cycle in opposite directions.
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 100; ++i) words.push_back(i % 2 ? 0b10 : 0b01);
  const auto s = compute_stats(words, 2);
  EXPECT_DOUBLE_EQ(s.self[0], 1.0);
  EXPECT_DOUBLE_EQ(s.self[1], 1.0);
  EXPECT_DOUBLE_EQ(s.coupling(0, 1), -1.0);
}

TEST(Stats, AlignedTogglingGivesPositiveCoupling) {
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 100; ++i) words.push_back(i % 2 ? 0b11 : 0b00);
  const auto s = compute_stats(words, 2);
  EXPECT_DOUBLE_EQ(s.coupling(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(s.coupling(1, 0), 1.0);
}

TEST(Stats, UniformRandomIsUncorrelatedHalfActive) {
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> words(200000);
  for (auto& w : words) w = rng();
  const auto s = compute_stats(words, 16);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(s.self[i], 0.5, 0.01);
    EXPECT_NEAR(s.prob_one[i], 0.5, 0.01);
    for (std::size_t j = i + 1; j < 16; ++j) EXPECT_NEAR(s.coupling(i, j), 0.0, 0.01);
  }
}

TEST(Stats, TMatrixFollowsEq3) {
  std::vector<std::uint64_t> words;
  for (int i = 0; i < 50; ++i) words.push_back(i % 2 ? 0b11 : 0b00);
  const auto s = compute_stats(words, 2);
  const auto t = s.t_matrix();
  EXPECT_DOUBLE_EQ(t(0, 0), s.self[0]);
  EXPECT_DOUBLE_EQ(t(0, 1), s.self[0] - s.coupling(0, 1));
  // Fully aligned toggling: the coupling term cancels the self term.
  EXPECT_DOUBLE_EQ(t(0, 1), 0.0);
}

TEST(Stats, EpsIsShiftedProbability) {
  const std::vector<std::uint64_t> words(10, 0b01);
  const auto s = compute_stats(words, 2);
  const auto e = s.eps();
  EXPECT_DOUBLE_EQ(e[0], 0.5);
  EXPECT_DOUBLE_EQ(e[1], -0.5);
}

TEST(Stats, AccumulatorGuards) {
  EXPECT_THROW(StatsAccumulator(0), std::invalid_argument);
  EXPECT_THROW(StatsAccumulator(65), std::invalid_argument);
  StatsAccumulator acc(4);
  acc.add(1);
  EXPECT_THROW(acc.finish(), std::logic_error);
  acc.add(2);
  EXPECT_NO_THROW(acc.finish());
}

TEST(Stats, MasksBitsAboveWidth) {
  // Garbage above the declared width must not leak into the statistics.
  const std::vector<std::uint64_t> words{0xF0, 0xF3, 0xF0, 0xF3};
  const auto s = compute_stats(words, 2);
  EXPECT_DOUBLE_EQ(s.self[0], 1.0);
  EXPECT_DOUBLE_EQ(s.self[1], 1.0);
  EXPECT_DOUBLE_EQ(s.coupling(0, 1), 1.0);
}

TEST(Dbt, SignToggleProbability) {
  EXPECT_NEAR(stats::sign_toggle_probability(0.0), 0.5, 1e-12);
  EXPECT_NEAR(stats::sign_toggle_probability(0.9), std::acos(0.9) / phys::pi, 1e-12);
  EXPECT_GT(stats::sign_toggle_probability(-0.9), 0.5);
  EXPECT_THROW(stats::sign_toggle_probability(1.0), std::invalid_argument);
}

TEST(Dbt, UncorrelatedModelIsAllCoinFlips) {
  stats::DbtParams p;
  p.width = 16;
  p.sigma = 1024.0;
  p.rho = 0.0;
  const auto s = stats::dbt_stats(p);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(s.self[i], 0.5, 1e-12);
  // MSB pairs still correlate (shared sign), LSB pairs do not.
  EXPECT_NEAR(s.coupling(15, 14), 0.5, 1e-12);
  EXPECT_NEAR(s.coupling(0, 1), 0.0, 1e-12);
}

TEST(Dbt, PositiveCorrelationCalmsTheMsbs) {
  stats::DbtParams p;
  p.width = 16;
  p.sigma = 512.0;
  p.rho = 0.95;
  const auto s = stats::dbt_stats(p);
  EXPECT_LT(s.self[15], 0.15);   // calm sign bit
  EXPECT_NEAR(s.self[0], 0.5, 1e-12);  // busy LSB
  EXPECT_GT(s.coupling(15, 14), 0.0);
}

TEST(Dbt, BreakpointsOrderedAndSigmaMonotone) {
  stats::DbtParams lo;
  lo.sigma = 64.0;
  stats::DbtParams hi;
  hi.sigma = 8192.0;
  EXPECT_LE(stats::dbt_bp0(lo), stats::dbt_bp1(lo));
  EXPECT_LE(stats::dbt_bp0(lo), stats::dbt_bp0(hi));
  EXPECT_LE(stats::dbt_bp1(lo), stats::dbt_bp1(hi));
}

class DbtRhoSweep : public ::testing::TestWithParam<double> {};

TEST_P(DbtRhoSweep, SelfActivityWithinBounds) {
  stats::DbtParams p;
  p.rho = GetParam();
  const auto s = stats::dbt_stats(p);
  for (std::size_t i = 0; i < p.width; ++i) {
    EXPECT_GE(s.self[i], 0.0);
    EXPECT_LE(s.self[i], 1.0);
    for (std::size_t j = 0; j < p.width; ++j) {
      // |E{db_i db_j}| <= sqrt(self_i * self_j) (Cauchy-Schwarz).
      EXPECT_LE(std::abs(s.coupling(i, j)), std::sqrt(s.self[i] * s.self[j]) + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rhos, DbtRhoSweep, ::testing::Values(-0.9, -0.5, 0.0, 0.5, 0.9));

}  // namespace
