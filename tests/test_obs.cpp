// Tests for the observability layer (src/obs): the trace output must be
// schema-valid Chrome trace-event JSON with properly nested per-thread spans,
// the metrics document must be bit-identical at every thread count (the
// determinism contract of DESIGN.md §5d), and disabled tracing/metrics must
// record nothing at all.
#include <gtest/gtest.h>

#include <cctype>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/link.hpp"
#include "field/extractor.hpp"
#include "noc/simulator.hpp"
#include "obs/obs.hpp"
#include "opt/parallel.hpp"
#include "streams/random_streams.hpp"

namespace {

using namespace tsvcod;

// ---------------------------------------------------------------------------
// Minimal strict JSON parser — the "schema check" half of the obs contract.
// ---------------------------------------------------------------------------

struct JValue {
  enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JValue> array;
  std::map<std::string, JValue> object;

  const JValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Parses the full document; returns false on any syntax error or
  /// trailing garbage.
  bool parse(JValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return i_ == s_.size();
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) ++i_;
  }
  bool consume(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(i_, n, lit) != 0) return false;
    i_ += n;
    return true;
  }

  bool value(JValue& out) {
    skip_ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = JValue::String; return string(out.string);
      case 't': out.kind = JValue::Bool; out.boolean = true; return literal("true");
      case 'f': out.kind = JValue::Bool; out.boolean = false; return literal("false");
      case 'n': out.kind = JValue::Null; return literal("null");
      default: out.kind = JValue::Number; return number(out.number);
    }
  }

  bool object(JValue& out) {
    out.kind = JValue::Object;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      JValue v;
      if (!value(v)) return false;
      out.object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool array(JValue& out) {
    out.kind = JValue::Array;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JValue v;
      if (!value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (i_ < s_.size()) {
      const char c = s_[i_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (i_ >= s_.size()) return false;
        const char esc = s_[i_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (i_ + 4 > s_.size()) return false;
            for (int k = 0; k < 4; ++k) {
              if (!std::isxdigit(static_cast<unsigned char>(s_[i_ + k]))) return false;
            }
            i_ += 4;
            out += '?';  // codepoint value irrelevant for the schema check
            break;
          }
          default: return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control characters are invalid JSON
      } else {
        out += c;
      }
    }
    return false;
  }

  bool number(double& out) {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '.' || s_[i_] == 'e' ||
            s_[i_] == 'E' || s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    if (i_ == start) return false;
    try {
      out = std::stod(s_.substr(start, i_ - start));
    } catch (...) {
      return false;
    }
    return true;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

// ---------------------------------------------------------------------------
// Fixture: every test starts and ends with obs fully disabled and empty.
// ---------------------------------------------------------------------------

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override { clear(); }
  static void clear() {
    obs::enable_tracing(false);
    obs::enable_metrics(false);
    obs::reset_trace();
    obs::reset_metrics();
  }
};

stats::SwitchingStats measure(const core::Link& link, std::uint64_t seed) {
  streams::GaussianAr1Stream src(link.width(), 500.0, 0.4, seed);
  return link.measure(src, 20000);
}

/// The instrumented hot paths at a given thread count: multi-chain annealing
/// plus a field extraction (the two parallel subsystems).
void run_instrumented_workload(int threads) {
  const auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(3, 3);
  const core::Link link(geom);
  const auto st = measure(link, 5);
  core::OptimizeOptions opts;
  opts.schedule.iterations = 1500;
  opts.chains = 4;
  opts.threads = threads;
  core::optimize_assignment(st, link.model(), opts);

  const auto geom2 = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const std::vector<double> pr(geom2.count(), 0.5);
  field::ExtractionOptions eo;
  eo.cell = 0.2e-6;
  eo.threads = threads;
  field::extract_capacitance(geom2, pr, eo);
}

// ---------------------------------------------------------------------------
// Trace layer
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledRecordsNothing) {
  {
    obs::Span span("should.not.appear");
    EXPECT_FALSE(span.active());
    obs::instant("nor.this");
    obs::counter("nor.that", 1.0);
    obs::metric_add("no.counter");
    obs::metric_set("no.gauge", 1.0);
    const double bounds[] = {1.0, 2.0};
    obs::metric_observe("no.histogram", 1.5, bounds);
  }
  JValue doc;
  ASSERT_TRUE(JsonParser(obs::trace_to_json()).parse(doc));
  ASSERT_NE(doc.find("traceEvents"), nullptr);
  EXPECT_TRUE(doc.find("traceEvents")->array.empty());
  EXPECT_EQ(obs::metrics_to_json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST_F(ObsTest, TraceIsSchemaValidChromeJson) {
  obs::enable_tracing(true);
  run_instrumented_workload(4);
  obs::instant("marker", "\"note\":\"hello \\\"quoted\\\"\"");
  obs::counter("standalone.counter", 42.5);
  obs::enable_tracing(false);

  const std::string json = obs::trace_to_json();
  JValue doc;
  ASSERT_TRUE(JsonParser(json).parse(doc)) << json.substr(0, 400);
  ASSERT_EQ(doc.kind, JValue::Object);
  const JValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JValue::Array);
  ASSERT_FALSE(events->array.empty());

  std::size_t spans = 0, counters = 0, instants = 0;
  for (const auto& ev : events->array) {
    ASSERT_EQ(ev.kind, JValue::Object);
    // Schema: required fields with the right types.
    const JValue* name = ev.find("name");
    const JValue* ph = ev.find("ph");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(name->kind, JValue::String);
    ASSERT_EQ(ph->kind, JValue::String);
    ASSERT_NE(ev.find("ts"), nullptr);
    EXPECT_EQ(ev.find("ts")->kind, JValue::Number);
    ASSERT_NE(ev.find("pid"), nullptr);
    ASSERT_NE(ev.find("tid"), nullptr);
    if (ph->string == "X") {
      ++spans;
      ASSERT_NE(ev.find("dur"), nullptr);
      EXPECT_GE(ev.find("dur")->number, 0.0);
    } else if (ph->string == "C") {
      ++counters;
      ASSERT_NE(ev.find("args"), nullptr);
      ASSERT_NE(ev.find("args")->find("value"), nullptr);
    } else if (ph->string == "i") {
      ++instants;
    } else {
      FAIL() << "unexpected phase: " << ph->string;
    }
  }
  // The workload must have produced spans from all instrumented subsystems.
  EXPECT_GT(spans, 0u);
  EXPECT_GT(counters, 0u);  // per-chain best-power/temperature tracks
  EXPECT_GT(instants, 0u);

  bool saw_solve = false, saw_extract = false, saw_optimize = false, saw_chain = false;
  for (const auto& ev : events->array) {
    const std::string& n = ev.find("name")->string;
    saw_solve |= n == "field.solve";
    saw_extract |= n == "field.extract";
    saw_optimize |= n == "opt.optimize";
    saw_chain |= n == "opt.chain";
  }
  EXPECT_TRUE(saw_solve);
  EXPECT_TRUE(saw_extract);
  EXPECT_TRUE(saw_optimize);
  EXPECT_TRUE(saw_chain);
}

TEST_F(ObsTest, SpansNestProperlyPerThread) {
  obs::enable_tracing(true);
  // Nested spans on several pool threads at once.
  opt::parallel_for(8, 4, [&](std::size_t i) {
    obs::Span outer("outer");
    volatile double sink = 0.0;
    for (int k = 0; k < 2000; ++k) sink += k;
    for (int j = 0; j < 3; ++j) {
      obs::Span inner("inner");
      for (int k = 0; k < 500; ++k) sink += k;
      (void)i;
    }
  });
  obs::enable_tracing(false);

  JValue doc;
  ASSERT_TRUE(JsonParser(obs::trace_to_json()).parse(doc));
  struct Interval {
    double start, end;
  };
  std::map<double, std::vector<Interval>> by_tid;
  for (const auto& ev : doc.find("traceEvents")->array) {
    if (ev.find("ph")->string != "X") continue;
    const double ts = ev.find("ts")->number;
    by_tid[ev.find("tid")->number].push_back({ts, ts + ev.find("dur")->number});
  }
  ASSERT_FALSE(by_tid.empty());
  std::size_t total = 0;
  for (const auto& [tid, ivs] : by_tid) {
    total += ivs.size();
    // On one thread, scoped spans may nest but never partially overlap.
    for (std::size_t a = 0; a < ivs.size(); ++a) {
      for (std::size_t b = a + 1; b < ivs.size(); ++b) {
        const bool disjoint = ivs[a].end <= ivs[b].start || ivs[b].end <= ivs[a].start;
        const bool a_in_b = ivs[b].start <= ivs[a].start && ivs[a].end <= ivs[b].end;
        const bool b_in_a = ivs[a].start <= ivs[b].start && ivs[b].end <= ivs[a].end;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "partial overlap on tid " << tid << ": [" << ivs[a].start << "," << ivs[a].end
            << ") vs [" << ivs[b].start << "," << ivs[b].end << ")";
      }
    }
  }
  EXPECT_EQ(total, 8u * 4u);  // 8 outer + 24 inner spans
}

TEST_F(ObsTest, ResetDropsBufferedEvents) {
  obs::enable_tracing(true);
  { obs::Span span("ephemeral"); }
  obs::reset_trace();
  obs::enable_tracing(false);
  JValue doc;
  ASSERT_TRUE(JsonParser(obs::trace_to_json()).parse(doc));
  EXPECT_TRUE(doc.find("traceEvents")->array.empty());
}

// ---------------------------------------------------------------------------
// Metrics layer
// ---------------------------------------------------------------------------

TEST_F(ObsTest, MetricsDocumentIsBitIdenticalAcrossThreadCounts) {
  const auto run_at = [](int threads) {
    obs::reset_metrics();
    obs::enable_metrics(true);
    run_instrumented_workload(threads);
    const std::string json = obs::metrics_to_json();
    obs::enable_metrics(false);
    return json;
  };
  const std::string serial = run_at(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(run_at(2), serial) << "2 threads";
  EXPECT_EQ(run_at(8), serial) << "8 threads";
}

TEST_F(ObsTest, MetricsJsonIsValidAndCarriesSubsystems) {
  obs::enable_metrics(true);
  run_instrumented_workload(2);
  obs::enable_metrics(false);

  JValue doc;
  ASSERT_TRUE(JsonParser(obs::metrics_to_json()).parse(doc));
  const JValue* counters = doc.find("counters");
  const JValue* gauges = doc.find("gauges");
  const JValue* histograms = doc.find("histograms");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(histograms, nullptr);

  ASSERT_NE(counters->find("field.solve.count"), nullptr);
  ASSERT_NE(counters->find("field.extract.count"), nullptr);
  ASSERT_NE(counters->find("opt.optimize.count"), nullptr);
  ASSERT_NE(counters->find("opt.evaluations_total"), nullptr);
  ASSERT_NE(gauges->find("opt.chain0.acceptance_rate"), nullptr);
  ASSERT_NE(histograms->find("field.solve.iterations"), nullptr);

  // Per-conductor solves of the 2x2 extraction: 4 solves, all counted.
  EXPECT_GE(counters->find("field.solve.count")->number, 4.0);
  const double rate = gauges->find("opt.chain0.acceptance_rate")->number;
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
  const JValue* hist = histograms->find("field.solve.iterations");
  ASSERT_NE(hist->find("bounds"), nullptr);
  ASSERT_NE(hist->find("counts"), nullptr);
  EXPECT_EQ(hist->find("counts")->array.size(), hist->find("bounds")->array.size() + 1);
}

TEST_F(ObsTest, HistogramBucketsFollowBounds) {
  obs::enable_metrics(true);
  const double bounds[] = {1.0, 10.0};
  obs::metric_observe("h", 0.5, bounds);   // <= 1      -> bucket 0
  obs::metric_observe("h", 1.0, bounds);   // == bound  -> bucket 0 (inclusive upper edge)
  obs::metric_observe("h", 3.0, bounds);   // <= 10     -> bucket 1
  obs::metric_observe("h", 100.0, bounds); // overflow  -> bucket 2
  obs::enable_metrics(false);

  JValue doc;
  ASSERT_TRUE(JsonParser(obs::metrics_to_json()).parse(doc));
  const JValue* h = doc.find("histograms")->find("h");
  ASSERT_NE(h, nullptr);
  const auto& counts = h->find("counts")->array;
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0].number, 2.0);
  EXPECT_EQ(counts[1].number, 1.0);
  EXPECT_EQ(counts[2].number, 1.0);
  EXPECT_EQ(h->find("count")->number, 4.0);

  // Summary statistics ride along: exact min/max, fixed-point-exact sum.
  ASSERT_NE(h->find("min"), nullptr);
  ASSERT_NE(h->find("max"), nullptr);
  ASSERT_NE(h->find("sum"), nullptr);
  EXPECT_EQ(h->find("min")->number, 0.5);
  EXPECT_EQ(h->find("max")->number, 100.0);
  EXPECT_EQ(h->find("sum")->number, 104.5);
}

TEST_F(ObsTest, HistogramWithNoFiniteObservationsReportsNullStats) {
  obs::enable_metrics(true);
  const double bounds[] = {1.0};
  obs::metric_observe("empty", std::numeric_limits<double>::infinity(), bounds);
  obs::enable_metrics(false);

  JValue doc;
  ASSERT_TRUE(JsonParser(obs::metrics_to_json()).parse(doc));
  const JValue* h = doc.find("histograms")->find("empty");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("min")->kind, JValue::Null);
  EXPECT_EQ(h->find("max")->kind, JValue::Null);
  EXPECT_EQ(h->find("sum")->kind, JValue::Null);
}

TEST_F(ObsTest, NocSimulatorRecordsLinkActivity) {
  noc::Mesh3D mesh(2, 2, 2);
  noc::TrafficConfig cfg;
  cfg.injection_rate = 0.3;
  cfg.flit_width = 16;
  cfg.seed = 7;
  noc::NocSimulator sim(mesh, cfg);
  sim.probe_link(noc::LinkId{noc::NodeId{0, 0, 0}, noc::Direction::ZPlus});

  obs::enable_metrics(true);
  const auto stats = sim.run(400);
  obs::enable_metrics(false);

  // SimStats-side counters.
  ASSERT_EQ(stats.link_flits.size(), mesh.node_count() * noc::kPortCount);
  std::uint64_t hops = 0;
  for (const auto f : stats.link_flits) hops += f;
  EXPECT_GT(hops, 0u);
  EXPECT_GT(stats.probe_toggled_bits, 0u);
  std::uint64_t toggles = 0;
  for (const auto t : stats.link_toggles) toggles += t;
  EXPECT_GT(toggles, 0u);

  // Metrics-side mirror.
  JValue doc;
  ASSERT_TRUE(JsonParser(obs::metrics_to_json()).parse(doc));
  const JValue* counters = doc.find("counters");
  ASSERT_NE(counters->find("noc.run.count"), nullptr);
  EXPECT_EQ(counters->find("noc.run.count")->number, 1.0);
  ASSERT_NE(counters->find("noc.flit_hops_total"), nullptr);
  EXPECT_EQ(counters->find("noc.flit_hops_total")->number, static_cast<double>(hops));
  ASSERT_NE(counters->find("noc.cycles_total"), nullptr);
  EXPECT_EQ(counters->find("noc.cycles_total")->number, 400.0);
  ASSERT_NE(counters->find("noc.probe.toggled_bits_total"), nullptr);
  EXPECT_EQ(counters->find("noc.probe.toggled_bits_total")->number,
            static_cast<double>(stats.probe_toggled_bits));
}

}  // namespace
