// Tests for the shared parallel execution layer (src/opt/parallel.hpp) and
// the determinism contract built on it: optimize_assignment,
// random_assignment_power and extract_capacitance must produce bit-identical
// results at every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/link.hpp"
#include "field/extractor.hpp"
#include "opt/parallel.hpp"
#include "streams/random_streams.hpp"

namespace {

using namespace tsvcod;

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(997);
  opt::parallel_for(hits.size(), 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesDegenerateSizes) {
  int calls = 0;
  opt::parallel_for(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  opt::parallel_for(1, 8, [&](std::size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
  // More threads than items must not spawn idle trouble.
  std::vector<std::atomic<int>> hits(3);
  opt::parallel_for(hits.size(), 16, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesExceptionsToCaller) {
  EXPECT_THROW(
      opt::parallel_for(64, 4,
                        [&](std::size_t i) {
                          if (i == 7) throw std::runtime_error("item failed");
                        }),
      std::runtime_error);
}

TEST(ParallelFor, NestedSectionsDoNotDeadlock) {
  std::vector<std::atomic<int>> hits(4 * 8);
  opt::parallel_for(4, 2, [&](std::size_t outer) {
    opt::parallel_for(8, 2, [&](std::size_t inner) { hits[outer * 8 + inner].fetch_add(1); });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DeterministicSeed, DistinctAndStable) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(opt::deterministic_seed(42, i));
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across work items
  EXPECT_EQ(opt::deterministic_seed(42, 7), opt::deterministic_seed(42, 7));
  EXPECT_NE(opt::deterministic_seed(42, 7), opt::deterministic_seed(43, 7));
}

stats::SwitchingStats measure(const core::Link& link, std::uint64_t seed) {
  streams::GaussianAr1Stream src(link.width(), 500.0, 0.4, seed);
  return link.measure(src, 20000);
}

TEST(ThreadDeterminism, OptimizeResultIsThreadCountInvariant) {
  const auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(3, 3);
  const core::Link link(geom);
  const auto st = measure(link, 5);

  core::OptimizeOptions opts;
  opts.schedule.iterations = 3000;
  opts.chains = 4;
  opts.threads = 1;
  const auto serial = core::optimize_assignment(st, link.model(), opts);
  for (const int threads : {2, 3, 8}) {
    opts.threads = threads;
    const auto parallel = core::optimize_assignment(st, link.model(), opts);
    EXPECT_EQ(parallel.assignment, serial.assignment) << threads << " threads";
    EXPECT_EQ(parallel.power, serial.power) << threads << " threads";  // bitwise
    EXPECT_EQ(parallel.evaluations, serial.evaluations) << threads << " threads";
  }
}

TEST(ThreadDeterminism, BaselinePowersAreThreadCountInvariant) {
  const auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(3, 3);
  const core::Link link(geom);
  const auto st = measure(link, 6);

  const auto serial = core::random_assignment_power(st, link.model(), 250, 99, 1);
  for (const int threads : {2, 5}) {
    const auto parallel = core::random_assignment_power(st, link.model(), 250, 99, threads);
    EXPECT_EQ(parallel.mean, serial.mean) << threads << " threads";  // bitwise
    EXPECT_EQ(parallel.worst, serial.worst) << threads << " threads";
    EXPECT_EQ(parallel.best, serial.best) << threads << " threads";
  }
}

TEST(ThreadDeterminism, ExtractionIsThreadCountInvariant) {
  const auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const std::vector<double> pr(geom.count(), 0.5);
  field::ExtractionOptions opts;
  opts.cell = 0.2e-6;  // coarse but fast
  opts.threads = 1;
  const auto serial = field::extract_capacitance(geom, pr, opts);
  opts.threads = 4;
  const auto parallel = field::extract_capacitance(geom, pr, opts);
  for (std::size_t i = 0; i < geom.count(); ++i) {
    for (std::size_t j = 0; j < geom.count(); ++j) {
      EXPECT_EQ(parallel.paper(i, j), serial.paper(i, j));  // bitwise
      EXPECT_EQ(parallel.maxwell(i, j), serial.maxwell(i, j));
    }
  }
  for (std::size_t k = 0; k < geom.count(); ++k) {
    EXPECT_EQ(parallel.stats[k].iterations, serial.stats[k].iterations);
    EXPECT_EQ(parallel.stats[k].residual, serial.stats[k].residual);
  }
}

TEST(ThreadDeterminism, MultiChainAggregateContract) {
  // `chains` is a logical knob: every chain runs the same deterministic
  // schedule on its own seed stream, so the evaluation count scales exactly
  // with the chain count and the best-of can only improve on chain 0 (the
  // 1-chain result).
  const auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const core::Link link(geom);
  const auto st = measure(link, 7);

  core::OptimizeOptions multi;
  multi.schedule.iterations = 1500;
  multi.chains = 4;
  const auto best = core::optimize_assignment(st, link.model(), multi);

  core::OptimizeOptions single = multi;
  single.chains = 1;
  const auto one = core::optimize_assignment(st, link.model(), single);
  EXPECT_LE(best.power, one.power);
  EXPECT_EQ(best.evaluations, 4 * one.evaluations);
}

}  // namespace
