// Tests for the block-transposed popcount statistics kernel: the 64x64 bit
// transpose, the popcount cross-term identity, bitwise equality against the
// historical scalar accumulator, block/tail edge cases and thread-count
// invariance of the chunked parallel reduction.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "obs/obs.hpp"
#include "phys/matrix.hpp"
#include "stats/bitplane.hpp"
#include "stats/ingest.hpp"
#include "stats/subset.hpp"
#include "stats/switching_stats.hpp"

namespace {

using namespace tsvcod;

// The seed repo's scalar accumulator, kept verbatim as the reference the
// bit-plane kernel must reproduce bit for bit: per-word double-precision
// +-1.0 accumulation over every line pair, divided once at the end.
stats::SwitchingStats scalar_reference(const std::vector<std::uint64_t>& words,
                                       std::size_t width) {
  const std::uint64_t mask = width < 64 ? (std::uint64_t{1} << width) - 1 : ~std::uint64_t{0};
  std::vector<double> ones(width, 0.0), self(width, 0.0);
  phys::Matrix cross(width, width);
  std::uint64_t prev = 0;
  for (std::size_t t = 0; t < words.size(); ++t) {
    const std::uint64_t word = words[t] & mask;
    for (std::size_t i = 0; i < width; ++i) {
      if ((word >> i) & 1u) ones[i] += 1.0;
    }
    if (t > 0) {
      for (std::size_t i = 0; i < width; ++i) {
        const int dbi = static_cast<int>((word >> i) & 1u) - static_cast<int>((prev >> i) & 1u);
        if (dbi == 0) continue;
        self[i] += 1.0;
        for (std::size_t j = i + 1; j < width; ++j) {
          const int dbj = static_cast<int>((word >> j) & 1u) - static_cast<int>((prev >> j) & 1u);
          if (dbj != 0) cross(i, j) += static_cast<double>(dbi * dbj);
        }
      }
    }
    prev = word;
  }
  stats::SwitchingStats s;
  s.width = width;
  s.transitions = words.size() - 1;
  const double nt = static_cast<double>(s.transitions);
  const double nw = static_cast<double>(words.size());
  s.self.resize(width);
  s.prob_one.resize(width);
  s.coupling = phys::Matrix(width, width);
  for (std::size_t i = 0; i < width; ++i) {
    s.self[i] = self[i] / nt;
    s.prob_one[i] = ones[i] / nw;
    s.coupling(i, i) = s.self[i];
    for (std::size_t j = i + 1; j < width; ++j) {
      const double c = cross(i, j) / nt;
      s.coupling(i, j) = c;
      s.coupling(j, i) = c;
    }
  }
  return s;
}

// Exact (==, not NEAR) comparison: the whole point of integer counters.
void expect_bitwise_equal(const stats::SwitchingStats& got, const stats::SwitchingStats& want) {
  ASSERT_EQ(got.width, want.width);
  EXPECT_EQ(got.transitions, want.transitions);
  for (std::size_t i = 0; i < want.width; ++i) {
    EXPECT_EQ(got.prob_one[i], want.prob_one[i]) << "prob_one[" << i << "]";
    EXPECT_EQ(got.self[i], want.self[i]) << "self[" << i << "]";
    for (std::size_t j = 0; j < want.width; ++j) {
      EXPECT_EQ(got.coupling(i, j), want.coupling(i, j)) << "coupling(" << i << "," << j << ")";
    }
  }
}

// Structured traffic (not just white noise): uniform, sticky toggling,
// constant runs and counter ramps, like the check harness generates.
std::vector<std::uint64_t> make_trace(std::mt19937_64& rng, std::size_t width, std::size_t n,
                                      int regime) {
  const std::uint64_t mask = width < 64 ? (std::uint64_t{1} << width) - 1 : ~std::uint64_t{0};
  std::vector<std::uint64_t> words(n);
  std::uint64_t cur = rng() & mask;
  for (std::size_t t = 0; t < n; ++t) {
    switch (regime % 4) {
      case 0: cur = rng(); break;                            // uniform noise
      case 1: cur ^= rng() & rng() & rng(); break;           // sparse sticky toggles
      case 2: if (rng() % 7 == 0) cur = rng(); break;        // constant runs
      default: cur = static_cast<std::uint64_t>(t) * 3 + 1;  // counter ramp
    }
    words[t] = cur & mask;
  }
  return words;
}

TEST(Bitplane, Transpose64IsTheLsbTranspose) {
  std::mt19937_64 rng(42);
  std::uint64_t in[64], out[64];
  for (auto& w : in) w = rng();
  for (std::size_t i = 0; i < 64; ++i) out[i] = in[i];
  stats::transpose64(out);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t t = 0; t < 64; ++t) {
      ASSERT_EQ((out[i] >> t) & 1u, (in[t] >> i) & 1u) << "plane " << i << " bit " << t;
    }
  }
}

TEST(Bitplane, TransposeIsAnInvolution) {
  std::mt19937_64 rng(43);
  std::uint64_t a[64], orig[64];
  for (std::size_t i = 0; i < 64; ++i) orig[i] = a[i] = rng();
  stats::transpose64(a);
  stats::transpose64(a);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(a[i], orig[i]);
}

// The popcount cross-term identity
//   sum db_i db_j = popc(tg_i & tg_j) - 2 popc(tg_i & tg_j & (val_i ^ val_j))
// at the extreme widths where masking and plane indexing can go wrong.
class BitplaneGoldenWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitplaneGoldenWidths, MatchesScalarReferenceExactly) {
  const std::size_t width = GetParam();
  std::mt19937_64 rng(7 + width);
  for (int regime = 0; regime < 4; ++regime) {
    // 200 words: three full blocks plus a partial tail.
    const auto words = make_trace(rng, width, 200, regime);
    expect_bitwise_equal(stats::compute_stats(words, width, 1),
                         scalar_reference(words, width));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitplaneGoldenWidths, ::testing::Values(1u, 63u, 64u));

TEST(Bitplane, RandomTracesEveryWidthBitwiseEqual) {
  std::mt19937_64 rng(11);
  for (std::size_t width = 1; width <= 64; ++width) {
    const std::size_t n = 2 + rng() % 300;
    const auto words = make_trace(rng, width, n, static_cast<int>(width));
    expect_bitwise_equal(stats::compute_stats(words, width, 1), scalar_reference(words, width));
  }
}

TEST(Bitplane, BlockBoundaryEdgeCases) {
  std::mt19937_64 rng(13);
  // 64 words = 63 transitions (pure scalar tail, no block flushed);
  // 65 words = exactly one block, empty tail; then the off-by-ones around
  // the second boundary, and n % 64 != 0 partial tails.
  for (const std::size_t n : {2u, 3u, 63u, 64u, 65u, 66u, 128u, 129u, 130u, 200u}) {
    const auto words = make_trace(rng, 17, n, 1);
    expect_bitwise_equal(stats::compute_stats(words, 17, 1), scalar_reference(words, 17));
  }
}

TEST(Bitplane, BlockAndTailAccountingMatchesTheStreamLength) {
  stats::BitplaneAccumulator acc(8);
  std::mt19937_64 rng(17);
  const auto words = make_trace(rng, 8, 131, 0);  // 130 transitions = 2 blocks + 2 tail
  for (const auto w : words) acc.add(w);
  EXPECT_EQ(acc.samples(), 131u);
  EXPECT_EQ(acc.blocks_flushed(), 2u);
  EXPECT_EQ(acc.pending(), 2u);
  const auto counts = acc.counts();
  EXPECT_EQ(counts.words, 131u);
  EXPECT_EQ(counts.transitions, 130u);

  stats::BitplaneAccumulator exact(8);
  for (std::size_t i = 0; i < 65; ++i) exact.add(words[i]);
  EXPECT_EQ(exact.blocks_flushed(), 1u);
  EXPECT_EQ(exact.pending(), 0u);  // 64 transitions flush exactly one block
}

TEST(Bitplane, StreamingEqualsOneShot) {
  std::mt19937_64 rng(19);
  const auto words = make_trace(rng, 33, 500, 2);
  stats::StatsAccumulator acc(33);
  for (const auto w : words) acc.add(w);
  expect_bitwise_equal(acc.finish(), stats::compute_stats(words, 33, 1));
}

TEST(Bitplane, FinishMidStreamDoesNotPerturbTheStream) {
  // counts()/finish() are const snapshots: calling them between words must
  // not change what a later finish() returns.
  std::mt19937_64 rng(23);
  const auto words = make_trace(rng, 12, 150, 1);
  stats::StatsAccumulator probed(12), plain(12);
  for (std::size_t t = 0; t < words.size(); ++t) {
    probed.add(words[t]);
    plain.add(words[t]);
    if (t >= 2 && t % 37 == 0) (void)probed.finish();
  }
  expect_bitwise_equal(probed.finish(), plain.finish());
}

TEST(Bitplane, ThreadCountInvariance) {
  std::mt19937_64 rng(29);
  for (const std::size_t width : {5u, 32u, 64u}) {
    const auto words = make_trace(rng, width, 20000, 1);  // big enough to really chunk
    const auto t1 = stats::compute_stats(words, width, 1);
    expect_bitwise_equal(stats::compute_stats(words, width, 2), t1);
    expect_bitwise_equal(stats::compute_stats(words, width, 8), t1);
  }
}

TEST(Bitplane, ManualChunkMergeEqualsWholeTrace) {
  std::mt19937_64 rng(31);
  const auto words = make_trace(rng, 21, 1000, 3);
  auto whole = stats::compute_counts(words, 21, 1);

  // Two chunks overlapping one word at the seam: the second is primed with
  // the seam word so its bits are not double counted.
  const std::size_t cut = 437;
  stats::BitplaneAccumulator a(21), b(21);
  for (std::size_t t = 0; t <= cut; ++t) a.add(words[t]);
  b.prime(words[cut]);
  for (std::size_t t = cut + 1; t < words.size(); ++t) b.add(words[t]);
  auto merged = a.counts();
  merged.merge(b.counts());
  EXPECT_EQ(merged.words, whole.words);
  EXPECT_EQ(merged.transitions, whole.transitions);
  expect_bitwise_equal(merged.finalize(), whole.finalize());
}

TEST(Bitplane, PrimeRejectsAStartedStream) {
  stats::BitplaneAccumulator acc(4);
  acc.add(1);
  EXPECT_THROW(acc.prime(2), std::logic_error);
}

TEST(Bitplane, TooFewWordsErrorNamesWidthAndCount) {
  stats::StatsAccumulator acc(7);
  acc.add(1);
  try {
    (void)acc.finish();
    FAIL() << "finish() on one word must throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("width 7"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("have 1"), std::string::npos) << e.what();
  }
  const std::vector<std::uint64_t> one{5};
  try {
    (void)stats::compute_stats(one, 9);
    FAIL() << "compute_stats on one word must throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("width 9"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("have 1"), std::string::npos) << e.what();
  }
}

TEST(Bitplane, SubsetStatsValidatesBitIndices) {
  std::mt19937_64 rng(37);
  const auto words = make_trace(rng, 4, 50, 0);
  const auto src = stats::compute_stats(words, 4, 1);
  const std::vector<std::size_t> good{3, 0};
  EXPECT_NO_THROW(stats::subset_stats(src, good));
  const std::vector<std::size_t> bad{1, 9, 0};
  try {
    (void)stats::subset_stats(src, bad);
    FAIL() << "out-of-range bit must throw";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("bit 9"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("width 4"), std::string::npos) << e.what();
  }
}

TEST(Bitplane, RecordsBlockAndTailCountersWhenMetricsEnabled) {
  obs::reset_metrics();
  obs::enable_metrics(true);
  std::mt19937_64 rng(47);
  const auto words = make_trace(rng, 8, 200, 0);  // 199 transitions: 3 blocks + 7 tail
  (void)stats::compute_stats(words, 8, 1);
  obs::enable_metrics(false);
  const std::string json = obs::metrics_to_json();
  obs::reset_metrics();
  EXPECT_NE(json.find("\"stats.compute.count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stats.compute.words_total\":200"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stats.bitplane.blocks_total\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stats.compute.tail_words_total\":7"), std::string::npos) << json;
}

TEST(Bitplane, MasksBitsAboveWidthLikeTheScalarPath) {
  std::mt19937_64 rng(41);
  std::vector<std::uint64_t> raw(300), masked(300);
  for (std::size_t t = 0; t < raw.size(); ++t) {
    raw[t] = rng();
    masked[t] = raw[t] & 0x1F;  // width 5
  }
  expect_bitwise_equal(stats::compute_stats(raw, 5, 1), stats::compute_stats(masked, 5, 1));
}

// --- ChunkFolder: the hardened seam-chain bookkeeping -----------------------

void expect_counts_equal(const stats::SwitchingCounts& got, const stats::SwitchingCounts& want) {
  ASSERT_EQ(got.width, want.width);
  EXPECT_EQ(got.words, want.words);
  EXPECT_EQ(got.transitions, want.transitions);
  EXPECT_EQ(got.ones, want.ones);
  EXPECT_EQ(got.self, want.self);
  EXPECT_EQ(got.cross, want.cross);
}

TEST(ChunkFolder, ExhaustiveTinyChunkPartitionsMatchOneShot) {
  // The seam-edge satellite: every composition of a short trace into chunks
  // of size 1 and 2, with an empty chunk additionally injected at every
  // boundary, must be bit-identical to the one-shot fold. Chunk sizes 0 / 1
  // / 2 are exactly the shapes that used to be UB or mis-primed.
  std::mt19937_64 rng(53);
  const auto words = make_trace(rng, 11, 9, 2);
  const auto whole = stats::compute_counts(words, 11, 1);
  const std::span<const std::uint64_t> all(words);

  // Enumerate compositions of 9 into parts {1, 2} via bitmask over 9 slots.
  for (unsigned mask = 0; mask < (1u << words.size()); ++mask) {
    std::vector<std::size_t> sizes;
    std::size_t left = words.size();
    bool valid = true;
    for (unsigned bit = 0; left > 0; ++bit) {
      const std::size_t take = (mask >> bit) & 1u ? 2 : 1;
      if (take > left) {
        valid = false;
        break;
      }
      sizes.push_back(take);
      left -= take;
    }
    if (!valid) continue;

    for (std::size_t empty_at = 0; empty_at <= sizes.size(); ++empty_at) {
      stats::ChunkFolder folder(11);
      std::size_t offset = 0;
      for (std::size_t c = 0; c <= sizes.size(); ++c) {
        if (c == empty_at) folder.fold({});  // empty chunk: must be a no-op
        if (c == sizes.size()) break;
        folder.fold(all.subspan(offset, sizes[c]));
        offset += sizes[c];
      }
      expect_counts_equal(folder.counts(), whole);
    }
  }
}

TEST(ChunkFolder, EmptyChunkLeavesTheSeamUntouched) {
  stats::ChunkFolder folder(8);
  EXPECT_FALSE(folder.primed());
  EXPECT_THROW((void)folder.seam(), std::logic_error);

  folder.fold({});  // empty before any word: still unprimed
  EXPECT_FALSE(folder.primed());

  const std::vector<std::uint64_t> one{0xA5};
  folder.fold(one);
  EXPECT_TRUE(folder.primed());
  EXPECT_EQ(folder.seam(), 0xA5u);
  EXPECT_EQ(folder.words(), 1u);

  folder.fold({});  // empty mid-stream: seam must survive
  EXPECT_EQ(folder.seam(), 0xA5u);

  const std::vector<std::uint64_t> next{0x5A};
  folder.fold(next);
  EXPECT_EQ(folder.counts().transitions, 1u);  // 0xA5 -> 0x5A counted once
  EXPECT_EQ(folder.seam(), 0x5Au);
}

TEST(ChunkFolder, ResetForgetsTheSeamResetWindowCarriesIt) {
  std::mt19937_64 rng(59);
  const auto words = make_trace(rng, 8, 600, 1);
  const auto whole = stats::compute_counts(words, 8, 1);
  const std::span<const std::uint64_t> all(words);

  // Windowed: fold in three windows with reset_window between them; the
  // window counts must merge to the exact whole-stream counts.
  stats::ChunkFolder folder(8);
  stats::SwitchingCounts merged(8);
  folder.fold(all.subspan(0, 200));
  merged.merge(folder.counts());
  folder.reset_window();
  EXPECT_EQ(folder.words(), 0u);
  EXPECT_TRUE(folder.primed()) << "reset_window keeps the seam";
  folder.fold(all.subspan(200, 200));
  merged.merge(folder.counts());
  folder.reset_window();
  folder.fold(all.subspan(400));
  merged.merge(folder.counts());
  expect_counts_equal(merged, whole);

  // Full reset: the next fold starts a fresh stream (no seam transition).
  folder.reset();
  EXPECT_FALSE(folder.primed());
  folder.fold(all.subspan(0, 200));
  expect_counts_equal(folder.counts(), stats::compute_counts(all.subspan(0, 200), 8, 1));
}

TEST(ChunkFolder, RejectsOutOfRangeWidth) {
  EXPECT_THROW(stats::ChunkFolder(0), std::invalid_argument);
  EXPECT_THROW(stats::ChunkFolder(65), std::invalid_argument);
}

TEST(Bitplane, ResetWindowWindowsMergeToWholeStream) {
  std::mt19937_64 rng(61);
  const auto words = make_trace(rng, 13, 500, 2);
  const auto whole = stats::compute_counts(words, 13, 1);

  stats::BitplaneAccumulator acc(13);
  stats::SwitchingCounts merged(13);
  for (std::size_t t = 0; t < words.size(); ++t) {
    acc.add(words[t]);
    if ((t + 1) % 150 == 0) {  // window boundary (not block-aligned: 150 % 64 != 0)
      merged.merge(acc.counts());
      acc.reset_window();
    }
  }
  merged.merge(acc.counts());
  EXPECT_EQ(merged.words, whole.words);
  EXPECT_EQ(merged.transitions, whole.transitions);
  expect_counts_equal(merged, whole);
}

TEST(Bitplane, PrimeAfterResetWindowThrowsNamingTheState) {
  // The silent mis-prime surface: after reset_window() the accumulator is
  // primed with the carried seam word, and a prime() would overwrite it and
  // mis-count the next window's first transition. The error must say so.
  stats::BitplaneAccumulator acc(6);
  acc.add(1);
  acc.add(2);
  acc.reset_window();
  try {
    acc.prime(7);
    FAIL() << "prime() after reset_window() must throw";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("seam word"), std::string::npos) << what;
    EXPECT_NE(what.find("reset_window"), std::string::npos) << what;
    EXPECT_NE(what.find("width 6"), std::string::npos) << what;
  }

  // Mid-stream prime still names the consumed-word state instead.
  stats::BitplaneAccumulator busy(6);
  busy.add(1);
  try {
    busy.prime(7);
    FAIL() << "prime() mid-stream must throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("1 words consumed"), std::string::npos) << e.what();
  }

  // A full reset() returns to the power-on state where prime() is legal.
  acc.reset();
  EXPECT_NO_THROW(acc.prime(7));

  // reset_window() before any stream exists is a no-op; prime() stays legal.
  stats::BitplaneAccumulator fresh(6);
  fresh.reset_window();
  EXPECT_NO_THROW(fresh.prime(3));
}

}  // namespace
