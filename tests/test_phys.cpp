// Unit tests for the phys module: constants, cylindrical deep-depletion MOS
// model, TSV array geometry, and the dense matrix helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "phys/constants.hpp"
#include "phys/depletion.hpp"
#include "phys/matrix.hpp"
#include "phys/tsv_geometry.hpp"

namespace {

using namespace tsvcod::phys;
using namespace tsvcod::phys::literals;

TEST(Constants, AcceptorDensityMatchesConductivity) {
  const double na = acceptor_density_for_conductivity(10.0);
  // sigma = q * mu_p * N_A must invert exactly.
  EXPECT_NEAR(q_e * mu_p_si * na, 10.0, 1e-9);
  // Around 1.4e21 m^-3 (= 1.4e15 cm^-3), a standard 10 ohm*cm-ish substrate.
  EXPECT_GT(na, 1e21);
  EXPECT_LT(na, 2e21);
}

TEST(Constants, Literals) {
  EXPECT_DOUBLE_EQ(2_um, 2e-6);
  EXPECT_DOUBLE_EQ(1.5_nm, 1.5e-9);
  EXPECT_DOUBLE_EQ(3_GHz, 3e9);
  EXPECT_DOUBLE_EQ(2.5_fF, 2.5e-15);
}

TEST(Coaxial, MatchesClosedForm) {
  // 1 um inner, 1.2 um outer, SiO2: C' = 2*pi*eps0*3.9 / ln(1.2).
  const double c = coaxial_capacitance_per_length(1_um, 1.2_um, eps_r_sio2);
  const double expected = 2.0 * pi * eps0 * 3.9 / std::log(1.2);
  EXPECT_NEAR(c, expected, 1e-18);
}

TEST(Coaxial, RejectsBadRadii) {
  EXPECT_THROW(coaxial_capacitance_per_length(1_um, 0.5_um, 3.9), std::invalid_argument);
  EXPECT_THROW(coaxial_capacitance_per_length(0.0, 1_um, 3.9), std::invalid_argument);
}

TEST(Depletion, AccumulationGivesZeroWidth) {
  MosParams mos;
  EXPECT_DOUBLE_EQ(depletion_width(1_um, 0.2_um, mos.flatband_voltage, mos), 0.0);
  EXPECT_DOUBLE_EQ(depletion_width(1_um, 0.2_um, -1.0, mos), 0.0);
}

TEST(Depletion, WidthIncreasesWithBias) {
  MosParams mos;
  double prev = 0.0;
  for (double v = 0.1; v <= 1.01; v += 0.1) {
    const double w = depletion_width(1_um, 0.2_um, v, mos);
    EXPECT_GT(w, prev) << "at v=" << v;
    prev = w;
  }
  // Sub-micrometre depletion widths for a ~1.4e15 cm^-3 substrate at 1 V.
  EXPECT_GT(prev, 0.1_um);
  EXPECT_LT(prev, 2_um);
}

TEST(Depletion, ProbabilityFormUsesAverageVoltage) {
  MosParams mos;
  const double direct = depletion_width(1_um, 0.2_um, 0.7 * mos.vdd, mos);
  const double via_pr = depletion_width_for_probability(1_um, 0.2_um, 0.7, mos);
  EXPECT_DOUBLE_EQ(direct, via_pr);
  EXPECT_THROW(depletion_width_for_probability(1_um, 0.2_um, 1.5, mos), std::invalid_argument);
}

TEST(Depletion, MosCapacitanceShrinksWithProbability) {
  MosParams mos;
  const double c0 = mos_capacitance_per_length(1_um, 0.2_um, 0.0, mos);
  const double c1 = mos_capacitance_per_length(1_um, 0.2_um, 1.0, mos);
  EXPECT_LT(c1, c0);
  // Paper Sec. 3: the MOS effect shrinks TSV capacitances by up to ~40 %.
  const double reduction = 1.0 - c1 / c0;
  EXPECT_GT(reduction, 0.15);
  EXPECT_LT(reduction, 0.70);
}

TEST(Depletion, AtZeroProbabilityEqualsOxideCap) {
  MosParams mos;
  mos.flatband_voltage = -0.2;
  // pr = 0 -> average voltage 0 V > V_FB, so a tiny depletion exists; with
  // V_FB = 0 it is exactly the oxide capacitance.
  MosParams flat = mos;
  flat.flatband_voltage = 0.0;
  const double c = mos_capacitance_per_length(1_um, 0.2_um, 0.0, flat);
  EXPECT_DOUBLE_EQ(c, coaxial_capacitance_per_length(1_um, 1.2_um, eps_r_sio2));
}

class DepletionRadiusSweep : public ::testing::TestWithParam<double> {};

TEST_P(DepletionRadiusSweep, MonotoneInProbability) {
  MosParams mos;
  const double r = GetParam();
  double prev = depletion_width_for_probability(r, r / 5.0, 0.0, mos);
  for (double pr = 0.1; pr <= 1.001; pr += 0.1) {
    const double w = depletion_width_for_probability(r, r / 5.0, pr, mos);
    EXPECT_GE(w, prev);
    prev = w;
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, DepletionRadiusSweep,
                         ::testing::Values(0.5e-6, 1e-6, 2e-6, 4e-6));

TEST(Geometry, IndexingAndClassification) {
  auto g = TsvArrayGeometry::itrs2018_min(3, 4);
  EXPECT_EQ(g.count(), 12u);
  EXPECT_EQ(g.index(1, 2), 6u);
  EXPECT_EQ(g.row_of(6), 1u);
  EXPECT_EQ(g.col_of(6), 2u);
  EXPECT_TRUE(g.is_corner(g.index(0, 0)));
  EXPECT_TRUE(g.is_corner(g.index(2, 3)));
  EXPECT_TRUE(g.is_edge(g.index(0, 1)));
  EXPECT_TRUE(g.is_middle(g.index(1, 1)));
  EXPECT_EQ(g.direct_neighbor_count(g.index(0, 0)), 2);
  EXPECT_EQ(g.diagonal_neighbor_count(g.index(0, 0)), 1);
  EXPECT_EQ(g.direct_neighbor_count(g.index(1, 1)), 4);
  EXPECT_EQ(g.diagonal_neighbor_count(g.index(1, 1)), 4);
}

TEST(Geometry, DistancesAndPositions) {
  auto g = TsvArrayGeometry::itrs2018_relaxed(2, 2);
  EXPECT_DOUBLE_EQ(g.distance(g.index(0, 0), g.index(0, 1)), g.pitch);
  EXPECT_NEAR(g.distance(g.index(0, 0), g.index(1, 1)), g.pitch * std::sqrt(2.0), 1e-12);
  const auto p = g.position(g.index(1, 1));
  EXPECT_DOUBLE_EQ(p.x, g.pitch);
  EXPECT_DOUBLE_EQ(p.y, g.pitch);
}

TEST(Geometry, ValidateRejectsOverlap) {
  TsvArrayGeometry g;
  g.rows = g.cols = 2;
  g.radius = 2_um;
  g.pitch = 4_um;  // liner radius 2.4 um -> overlap at 4 um pitch
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g.pitch = 8_um;
  EXPECT_NO_THROW(g.validate());
}

TEST(Matrix, BasicAlgebra) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const Matrix i2 = Matrix::identity(2);
  EXPECT_EQ(a * i2, a);
  EXPECT_EQ(i2 * a, a);
  const Matrix at = a.transposed();
  EXPECT_DOUBLE_EQ(at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(a.frobenius(i2), 5.0);
  const Matrix h = a.hadamard(a);
  EXPECT_DOUBLE_EQ(h(1, 1), 16.0);
  const Matrix s = a + a - a;
  EXPECT_EQ(s, a);
  const Matrix d = 2.0 * a;
  EXPECT_DOUBLE_EQ(d(0, 1), 4.0);
}

TEST(Matrix, ShapeChecks) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW((void)(a + b), std::invalid_argument);
  EXPECT_THROW((void)a.frobenius(b), std::invalid_argument);
  EXPECT_THROW((void)(a * a), std::invalid_argument);
  EXPECT_THROW(a.at(2, 0), std::out_of_range);
}

}  // namespace
