// Tests for the crosstalk/Miller-delay analysis on the 3-pi link model.
#include <gtest/gtest.h>

#include <cmath>

#include <vector>

#include "circuit/crosstalk.hpp"
#include "tsv/analytic_model.hpp"

namespace {

using namespace tsvcod;

circuit::CrosstalkResult analyze(const phys::TsvArrayGeometry& geom, double pr_all,
                                 std::size_t victim) {
  const std::vector<double> pr(geom.count(), pr_all);
  const auto cap = tsv::analytic_capacitance(geom, pr);
  return circuit::analyze_crosstalk(geom, cap, victim);
}

TEST(Crosstalk, VictimBounceIsRealAndBounded) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(3, 3);
  const auto res = analyze(geom, 0.5, geom.index(1, 1));
  EXPECT_GT(res.victim_peak_noise, 0.05);  // clearly visible bounce
  EXPECT_LT(res.victim_peak_noise, 1.0);   // but no runaway
}

TEST(Crosstalk, MoreAggressorsMoreNoise) {
  auto pair = phys::TsvArrayGeometry::itrs2018_min(1, 2);
  auto array = phys::TsvArrayGeometry::itrs2018_min(3, 3);
  const auto one_aggressor = analyze(pair, 0.5, 0);
  const auto eight_aggressors = analyze(array, 0.5, array.index(1, 1));
  EXPECT_GT(eight_aggressors.victim_peak_noise, one_aggressor.victim_peak_noise);
}

TEST(Crosstalk, MillerEffectSlowsOpposedSwitching) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(3, 3);
  const auto res = analyze(geom, 0.5, geom.index(1, 1));
  ASSERT_FALSE(std::isnan(res.victim_delay_quiet));
  ASSERT_FALSE(std::isnan(res.victim_delay_opposed));
  EXPECT_GT(res.miller_slowdown(), 1.2);  // opposed switching clearly slower
  EXPECT_LT(res.miller_slowdown(), 10.0);
}

TEST(Crosstalk, MosEffectWeakensCoupling) {
  // High 1-probability -> wide depletion -> smaller couplings -> less noise.
  // This is the signal-integrity side benefit of the inversion trick.
  auto geom = phys::TsvArrayGeometry::itrs2018_min(3, 3);
  const auto low = analyze(geom, 0.0, geom.index(1, 1));
  const auto high = analyze(geom, 1.0, geom.index(1, 1));
  EXPECT_LT(high.victim_peak_noise, low.victim_peak_noise);
}

TEST(Crosstalk, ValidatesVictimIndex) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const std::vector<double> pr(4, 0.5);
  const auto cap = tsv::analytic_capacitance(geom, pr);
  EXPECT_THROW(circuit::analyze_crosstalk(geom, cap, 99), std::invalid_argument);
}

}  // namespace
