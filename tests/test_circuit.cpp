// Unit tests for the MNA transient simulator and the 3-pi TSV link model,
// validated against closed-form RC/RL results and the analytic energy model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/transient.hpp"
#include "circuit/tsv_link_sim.hpp"
#include "phys/constants.hpp"
#include "tsv/analytic_model.hpp"

namespace {

using namespace tsvcod;
using namespace tsvcod::circuit;

TEST(Netlist, Validation) {
  Netlist net;
  const int a = net.add_node();
  EXPECT_THROW(net.resistor(a, 99, 10.0), std::invalid_argument);
  EXPECT_THROW(net.resistor(a, 0, -1.0), std::invalid_argument);
  EXPECT_THROW(net.inductor(a, 0, 0.0), std::invalid_argument);
  EXPECT_NO_THROW(net.capacitor(a, 0, 0.0));  // zero caps are dropped
  EXPECT_TRUE(net.capacitors().empty());
}

TEST(Waveform, BitSequenceShape) {
  const auto w = bit_waveform({1, 0, 1}, 1e-9, 0.1e-9, 1.0);
  EXPECT_DOUBLE_EQ(w(0.0), 0.0);
  EXPECT_NEAR(w(0.05e-9), 0.5, 1e-9);   // rising into cycle 0
  EXPECT_DOUBLE_EQ(w(0.5e-9), 1.0);     // settled high
  EXPECT_NEAR(w(1.05e-9), 0.5, 1e-9);   // falling into cycle 1
  EXPECT_DOUBLE_EQ(w(1.5e-9), 0.0);
  EXPECT_DOUBLE_EQ(w(2.5e-9), 1.0);
  EXPECT_DOUBLE_EQ(w(10e-9), 1.0);      // holds last bit
  EXPECT_THROW(bit_waveform({}, 1e-9, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(bit_waveform({1}, 1e-9, 2e-9, 1.0), std::invalid_argument);
}

TEST(Transient, RcChargeMatchesClosedForm) {
  // 1 kOhm, 1 pF charged from a 1 V step: v(t) = 1 - exp(-t/RC).
  Netlist net;
  const int s = net.add_node();
  const int out = net.add_node();
  net.vsource(s, Netlist::kGround, dc(1.0));
  net.resistor(s, out, 1000.0);
  net.capacitor(out, Netlist::kGround, 1e-12);

  TransientSim sim(net, 1e-12);
  sim.run_until(3e-9);  // 3 tau
  EXPECT_NEAR(sim.node_voltage(out), 1.0 - std::exp(-3.0), 2e-3);
}

TEST(Transient, RcEnergyConservation) {
  // After full charge the source has delivered C*V^2: half stored, half
  // dissipated in the resistor.
  Netlist net;
  const int s = net.add_node();
  const int out = net.add_node();
  const int src = net.vsource(s, Netlist::kGround, dc(1.0));
  net.resistor(s, out, 500.0);
  net.capacitor(out, Netlist::kGround, 2e-12);

  TransientSim sim(net, 0.5e-12);
  sim.run_until(20e-9);  // 20 tau
  EXPECT_NEAR(sim.source_energy(src), 2e-12, 2e-14);
}

TEST(Transient, ResistorDividerDc) {
  Netlist net;
  const int s = net.add_node();
  const int mid = net.add_node();
  net.vsource(s, Netlist::kGround, dc(2.0));
  net.resistor(s, mid, 1000.0);
  net.resistor(mid, Netlist::kGround, 3000.0);
  TransientSim sim(net, 1e-12);
  sim.step();
  EXPECT_NEAR(sim.node_voltage(mid), 1.5, 1e-9);
  EXPECT_NEAR(sim.source_current(0), 2.0 / 4000.0, 1e-12);
}

TEST(Transient, RlStepApproachesOhmicCurrent) {
  // Series R-L to ground: i -> V/R with time constant L/R.
  Netlist net;
  const int s = net.add_node();
  const int mid = net.add_node();
  const int src = net.vsource(s, Netlist::kGround, dc(1.0));
  net.resistor(s, mid, 100.0);
  net.inductor(mid, Netlist::kGround, 1e-9);  // tau = 10 ps
  TransientSim sim(net, 0.2e-12);
  sim.run_until(100e-12);
  EXPECT_NEAR(sim.source_current(src), 1.0 / 100.0, 2e-4);
}

TEST(Transient, CouplingChargesNeighbour) {
  // Two RC lines with a coupling cap: a step on line A must transiently lift
  // line B (the crosstalk the coding fights).
  Netlist net;
  const int sa = net.add_node();
  const int a = net.add_node();
  const int b = net.add_node();
  net.vsource(sa, Netlist::kGround, bit_waveform({1}, 1e-9, 10e-12, 1.0));
  net.resistor(sa, a, 300.0);
  net.resistor(b, Netlist::kGround, 300.0);
  net.capacitor(a, Netlist::kGround, 10e-15);
  net.capacitor(b, Netlist::kGround, 10e-15);
  net.capacitor(a, b, 20e-15);
  TransientSim sim(net, 0.5e-12);
  double peak_b = 0.0;
  while (sim.time() < 0.2e-9) {
    sim.step();
    peak_b = std::max(peak_b, sim.node_voltage(b));
  }
  EXPECT_GT(peak_b, 0.1);  // visible coupled noise
  EXPECT_LT(peak_b, 1.0);
}

TEST(TsvParasitics, ResistanceAndInductanceScale) {
  auto g1 = phys::TsvArrayGeometry::itrs2018_min(1, 1);
  auto g2 = phys::TsvArrayGeometry::itrs2018_relaxed(1, 1);
  // R = rho*l/(pi r^2): quadrupling the radius area cuts R by 4.
  EXPECT_NEAR(tsv_resistance(g1) / tsv_resistance(g2), 4.0, 1e-9);
  EXPECT_GT(tsv_resistance(g1), 0.1);
  EXPECT_LT(tsv_resistance(g1), 1.0);   // ~0.27 Ohm for 50 um x 1 um Cu
  EXPECT_GT(tsv_inductance(g1), 1e-11); // tens of pH
  EXPECT_LT(tsv_inductance(g1), 1e-10);
}

class LinkSimEnergy : public ::testing::TestWithParam<int> {};

TEST_P(LinkSimEnergy, MatchesAnalyticCvvModel) {
  // A single isolated TSV toggling every cycle must draw ~ C_total * Vdd^2
  // per 0->1 transition (all of it dissipated across the cycle pair).
  auto geom = phys::TsvArrayGeometry::itrs2018_min(1, 1);
  const std::vector<double> pr(1, 0.5);
  const auto cap = tsv::analytic_capacitance(geom, pr);

  std::vector<std::uint64_t> words;
  const int cycles = 64;
  for (int i = 0; i < cycles; ++i) words.push_back(static_cast<std::uint64_t>(i % 2));

  DriverParams drv;
  SimOptions opts;
  opts.steps_per_cycle = GetParam();
  const auto res = simulate_link(geom, cap, words, drv, opts);

  const double c_total = cap(0, 0) + drv.receiver_cap;
  const double expected = c_total * drv.vdd * drv.vdd * (cycles / 2) / 1.0;
  EXPECT_NEAR(res.dynamic_energy / (expected / 1.0), 1.0, 0.1)
      << "steps/cycle=" << GetParam();
  EXPECT_GT(res.leakage_power, 0.0);
  EXPECT_EQ(res.cycles, static_cast<std::size_t>(cycles));
}

INSTANTIATE_TEST_SUITE_P(StepsPerCycle, LinkSimEnergy, ::testing::Values(30, 60));

TEST(LinkSim, OppositeTogglingCostsMoreThanAligned) {
  // The physical root of the coding gain: opposite switching on a coupled
  // pair must burn more supply energy than aligned switching.
  auto geom = phys::TsvArrayGeometry::itrs2018_min(1, 2);
  const std::vector<double> pr(2, 0.5);
  const auto cap = tsv::analytic_capacitance(geom, pr);

  std::vector<std::uint64_t> aligned, opposite;
  for (int i = 0; i < 64; ++i) {
    aligned.push_back(i % 2 ? 0b11 : 0b00);
    opposite.push_back(i % 2 ? 0b10 : 0b01);
  }
  const auto ea = simulate_link(geom, cap, aligned);
  const auto eo = simulate_link(geom, cap, opposite);
  EXPECT_GT(eo.dynamic_energy, ea.dynamic_energy * 1.2);
}

TEST(LinkSim, StableLinesDrawAlmostNothing) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(1, 2);
  const std::vector<double> pr(2, 0.5);
  const auto cap = tsv::analytic_capacitance(geom, pr);
  std::vector<std::uint64_t> quiet(64, 0b01);
  const auto res = simulate_link(geom, cap, quiet);
  // Only the initial charge of line 0; mean power far below a toggling link.
  std::vector<std::uint64_t> busy;
  for (int i = 0; i < 64; ++i) busy.push_back(i % 2 ? 0b10 : 0b01);
  const auto busy_res = simulate_link(geom, cap, busy);
  EXPECT_LT(res.dynamic_power, 0.1 * busy_res.dynamic_power);
}

TEST(LinkSim, InputValidation) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(1, 2);
  const auto cap = tsv::analytic_capacitance(geom, std::vector<double>(2, 0.5));
  std::vector<std::uint64_t> one(1, 0);
  EXPECT_THROW(simulate_link(geom, cap, one), std::invalid_argument);
  phys::Matrix wrong(3, 3);
  std::vector<std::uint64_t> words(4, 0);
  EXPECT_THROW(simulate_link(geom, wrong, words), std::invalid_argument);
}

}  // namespace
