// The differential correctness harness: runs the oracles (ctest label
// `check`) and unit-tests the harness machinery itself — PRNG stability,
// replay-seed reproduction, shrinker minimization, iteration scaling.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/generators.hpp"
#include "check/oracles.hpp"
#include "streams/word_stream.hpp"

namespace {

using namespace tsvcod;
using check::Report;
using check::RunOptions;

RunOptions opts_with(std::size_t iterations) {
  RunOptions o;
  o.iterations = check::effective_iterations(iterations);
  return o;
}

void expect_ok(const Report& r) {
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_GE(r.iterations_run, 1u);
}

// --- The oracles ------------------------------------------------------------

TEST(Oracles, CodecRoundtrip) { expect_ok(check::oracle_codec_roundtrip(opts_with(60))); }

TEST(Oracles, EvaluatorDrift) { expect_ok(check::oracle_evaluator_drift(opts_with(40))); }

TEST(Oracles, StatsReference) { expect_ok(check::oracle_stats_reference(opts_with(60))); }

TEST(Oracles, FieldConsistency) { expect_ok(check::oracle_field_consistency(opts_with(4))); }

TEST(Oracles, IoRoundtrip) { expect_ok(check::oracle_io_roundtrip(opts_with(60))); }

TEST(Oracles, NocCoded) { expect_ok(check::oracle_noc_coded(opts_with(12))); }

// --- Harness machinery ------------------------------------------------------

TEST(Harness, Splitmix64MatchesReferenceVectors) {
  // Published splitmix64 outputs for state 0; a replay seed printed on one
  // machine must regenerate the identical input everywhere, forever.
  std::uint64_t s = 0;
  EXPECT_EQ(check::splitmix64(s), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(check::splitmix64(s), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(check::splitmix64(s), 0x06C45D188009454FULL);
}

TEST(Harness, DeriveSeedIsDeterministicAndSpreads) {
  EXPECT_EQ(check::derive_seed(42, 0), check::derive_seed(42, 0));
  EXPECT_NE(check::derive_seed(42, 0), check::derive_seed(42, 1));
  EXPECT_NE(check::derive_seed(42, 0), check::derive_seed(43, 0));
}

TEST(Harness, RngBoundsRespected) {
  check::Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
    const auto v = rng.range(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
    const double d = rng.real01();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(rng.below(0), 0u);
}

using IntVec = std::vector<std::uint64_t>;

check::Report run_big_element_property(const RunOptions& opt) {
  // Toy property with a known minimal counterexample: "no element >= 100"
  // over ten elements drawn from [0, 200). Element deletion as the only
  // shrink move must reduce any failure to a single offending element.
  return check::check_property<IntVec>(
      "big_element", opt,
      [](check::Rng& rng) {
        IntVec v(10);
        for (auto& x : v) x = rng.below(200);
        return v;
      },
      [](const IntVec& v) -> std::optional<std::string> {
        for (const auto x : v) {
          if (x >= 100) return "element >= 100";
        }
        return std::nullopt;
      },
      [](const IntVec& v) {
        std::vector<IntVec> out;
        for (std::size_t i = 0; i < v.size(); ++i) {
          IntVec c = v;
          c.erase(c.begin() + static_cast<std::ptrdiff_t>(i));
          out.push_back(std::move(c));
        }
        return out;
      },
      [](const IntVec& v) { return "size=" + std::to_string(v.size()); });
}

TEST(Harness, ShrinkerMinimizesToOneElement) {
  if (check::replay_seed_from_env()) GTEST_SKIP() << "TSVCOD_CHECK_SEED pins another property";
  RunOptions opt;
  opt.iterations = 20;  // P(all pass) = (1/1024)^20: effectively impossible
  const Report r = run_big_element_property(opt);
  ASSERT_FALSE(r.ok);
  EXPECT_GT(r.shrink_steps, 0u);
  EXPECT_NE(r.message.find("TSVCOD_CHECK_SEED=0x"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("size=1"), std::string::npos) << r.message;
}

TEST(Harness, ReplaySeedReproducesFailureExactly) {
  if (check::replay_seed_from_env()) GTEST_SKIP() << "TSVCOD_CHECK_SEED pins another property";
  RunOptions opt;
  opt.iterations = 20;
  const Report first = run_big_element_property(opt);
  ASSERT_FALSE(first.ok);

  char seed_str[32];
  std::snprintf(seed_str, sizeof(seed_str), "0x%llx",
                static_cast<unsigned long long>(first.replay_seed));
  ASSERT_EQ(setenv("TSVCOD_CHECK_SEED", seed_str, 1), 0);
  const Report replayed = run_big_element_property(opt);
  unsetenv("TSVCOD_CHECK_SEED");

  ASSERT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.replay_seed, first.replay_seed);
  EXPECT_EQ(replayed.iterations_run, 1u);
  // Same seed -> same generated input -> same shrink path -> same report
  // (modulo the iteration number, which is 0 on a replay).
  EXPECT_EQ(replayed.shrink_steps, first.shrink_steps);
}

TEST(Harness, IterationScalingViaEnv) {
  ASSERT_EQ(setenv("TSVCOD_CHECK_ITERS", "7", 1), 0);
  EXPECT_EQ(check::effective_iterations(100), 7u);
  ASSERT_EQ(setenv("TSVCOD_CHECK_ITERS", "banana", 1), 0);
  EXPECT_THROW(check::effective_iterations(100), std::runtime_error);
  unsetenv("TSVCOD_CHECK_ITERS");
  EXPECT_EQ(check::effective_iterations(100), 100u);
}

// --- Generators -------------------------------------------------------------

TEST(Generators, TraceRespectsWidth) {
  check::Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    const std::size_t width = 1 + rng.below(64);
    const auto words = check::gen_trace(rng, width, 50);
    ASSERT_EQ(words.size(), 50u);
    for (const auto w : words) EXPECT_EQ(w & ~streams::width_mask(width), 0u);
  }
}

TEST(Generators, AssignmentIsSignedPermutation) {
  check::Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.below(32);
    const auto a = check::gen_assignment(rng, n);
    ASSERT_EQ(a.size(), n);
    std::vector<bool> seen(n, false);
    for (std::size_t bit = 0; bit < n; ++bit) {
      ASSERT_LT(a.line_of_bit(bit), n);
      EXPECT_FALSE(seen[a.line_of_bit(bit)]);
      seen[a.line_of_bit(bit)] = true;
    }
    // unapply must invert apply for arbitrary words.
    for (int k = 0; k < 10; ++k) {
      const std::uint64_t w = rng.u64() & streams::width_mask(n);
      EXPECT_EQ(a.unapply_word(a.apply_word(w)), w);
    }
  }
}

TEST(Generators, MutateTextIsDeterministicPerSeed) {
  const std::string base = "line one\nline two\nline three\n";
  check::Rng a(99), b(99), c(100);
  const std::string ma = check::mutate_text(a, base, 5);
  const std::string mb = check::mutate_text(b, base, 5);
  const std::string mc = check::mutate_text(c, base, 5);
  EXPECT_EQ(ma, mb);
  EXPECT_NE(ma, mc);  // overwhelmingly likely; both seeds fixed so no flake
}

}  // namespace
