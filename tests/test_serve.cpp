// Streaming service layer: frame protocol, per-session seam-chained
// statistics, sharded ingestion with backpressure, and the drift-triggered
// re-anneal + atomic hot-swap path. The concurrency tests here are the ones
// the asan-serve / tsan-serve presets exist for.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "phys/tsv_geometry.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "stats/ingest.hpp"
#include "tsv/linear_model.hpp"

namespace {

using namespace tsvcod;

tsv::LinearCapacitanceModel model8() {
  static const tsv::LinearCapacitanceModel model =
      tsv::fit_from_analytic(phys::TsvArrayGeometry::itrs2018_relaxed(2, 4));
  return model;
}

serve::SessionConfig config8() {
  serve::SessionConfig cfg;
  cfg.width = 8;
  cfg.model = model8();
  cfg.codec.name = "correlator";
  cfg.drift.window_words = 256;
  cfg.drift.threshold = 0.0;  // drift detection off unless a test enables it
  cfg.optimize.schedule.iterations = 2000;
  cfg.optimize.schedule.restarts = 1;
  cfg.optimize.chains = 2;
  return cfg;
}

/// Deterministic per-session traffic. `phase_shift_at` switches the busy bit
/// group mid-stream, which is exactly what the drift detector keys on.
std::vector<std::uint64_t> traffic(unsigned seed, std::size_t n, std::size_t phase_shift_at) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> words;
  words.reserve(n);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prev ^= i < phase_shift_at ? (rng() & 0x7u) : ((rng() & 0x7u) << 5);
    words.push_back(prev);
  }
  return words;
}

stats::SwitchingCounts batch_counts(std::span<const std::uint64_t> words, std::size_t width) {
  stats::ChunkFolder folder(width);
  folder.fold(words);
  return folder.counts();
}

void expect_counts_equal(const stats::SwitchingCounts& got, const stats::SwitchingCounts& want) {
  ASSERT_EQ(got.width, want.width);
  EXPECT_EQ(got.words, want.words);
  EXPECT_EQ(got.transitions, want.transitions);
  EXPECT_EQ(got.ones, want.ones);
  EXPECT_EQ(got.self, want.self);
  EXPECT_EQ(got.cross, want.cross);
}

// --- drift metric -----------------------------------------------------------

TEST(DriftMetric, ZeroForIdenticalStatsAndChecksWidth) {
  const auto words = traffic(1, 1000, 1000);
  const auto s = batch_counts(words, 8).finalize();
  EXPECT_EQ(serve::drift_metric(s, s), 0.0);

  const auto narrow = batch_counts(words, 4).finalize();
  EXPECT_THROW(serve::drift_metric(s, narrow), std::invalid_argument);
}

TEST(DriftMetric, DetectsActivityShift) {
  const auto words = traffic(2, 2048, 1024);
  const std::span<const std::uint64_t> all(words);
  const auto phase_a = batch_counts(all.subspan(0, 1024), 8).finalize();
  const auto phase_b = batch_counts(all.subspan(1024), 8).finalize();
  const auto whole = batch_counts(all, 8).finalize();
  // Different bit groups are busy in the two phases: large drift between
  // them, and each phase clearly differs from the blend too.
  EXPECT_GT(serve::drift_metric(phase_a, phase_b), 0.5);
  EXPECT_GT(serve::drift_metric(phase_b, whole), 0.2);
}

// --- session ----------------------------------------------------------------

TEST(Session, ConfigValidationNamesTheField) {
  auto cfg = config8();
  cfg.codec.name = "bus-invert";  // expands 8 -> 9 lines
  try {
    serve::Session session(1, cfg);
    FAIL() << "expanding codec accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bus-invert"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("width-preserving"), std::string::npos);
  }

  cfg = config8();
  cfg.drift.window_words = 1;
  EXPECT_THROW(serve::Session(1, cfg), std::invalid_argument);

  cfg = config8();
  cfg.width = 6;  // model is 8-wide
  EXPECT_THROW(serve::Session(1, cfg), std::invalid_argument);
}

TEST(Session, StatsBitIdenticalToBatchAtRaggedChunkSizes) {
  // The seam-edge satellite, end to end: empty, 1-word and 2-word chunks
  // interleaved with larger ones must reproduce the one-shot counts exactly.
  const auto words = traffic(3, 3000, 3000);
  const std::span<const std::uint64_t> all(words);

  for (const char* codec : {"", "correlator", "gray"}) {
    auto cfg = config8();
    cfg.codec.name = codec;
    serve::Session session(7, cfg);

    const std::size_t sizes[] = {0, 1, 2, 0, 7, 64, 1, 256, 0, 2, 33};
    std::size_t offset = 0;
    std::size_t k = 0;
    while (offset < all.size()) {
      const std::size_t take = std::min(sizes[k++ % std::size(sizes)], all.size() - offset);
      session.ingest(all.subspan(offset, take));
      offset += take;
    }

    const serve::SessionSnapshot snap = session.snapshot();
    EXPECT_EQ(snap.desyncs, 0u) << codec;
    EXPECT_EQ(snap.words, words.size());
    expect_counts_equal(snap.longrun, batch_counts(all, 8));
  }
}

TEST(Session, WindowsMergeToWholeStreamCounts) {
  // Tumbling windows (seam carried across boundaries) must sum to the exact
  // whole-stream counts even when chunk boundaries and window boundaries
  // interleave arbitrarily.
  auto cfg = config8();
  cfg.drift.window_words = 100;  // never aligned with the chunking below
  serve::Session session(9, cfg);

  const auto words = traffic(4, 2513, 2513);
  const std::span<const std::uint64_t> all(words);
  std::size_t offset = 0;
  std::size_t step = 1;
  while (offset < all.size()) {
    const std::size_t take = std::min(step++ % 97, all.size() - offset);
    session.ingest(all.subspan(offset, take));
    offset += take;
  }

  const serve::SessionSnapshot snap = session.snapshot();
  EXPECT_EQ(snap.windows, words.size() / 100);
  expect_counts_equal(snap.longrun, batch_counts(all, 8));
}

TEST(Session, DriftTripsOncePerReannealInFlight) {
  auto cfg = config8();
  cfg.drift.threshold = 0.05;
  serve::Session session(2, cfg);

  const auto words = traffic(5, 4096, 1024);
  serve::Session::IngestResult first = session.ingest(words);
  ASSERT_TRUE(first.tripped);
  EXPECT_GT(first.drift, 0.05);
  EXPECT_GE(first.window_stats.transitions, 255u);

  // While the re-anneal is in flight, later windows must not re-trip.
  const auto more = traffic(6, 1024, 0);
  EXPECT_FALSE(session.ingest(more).tripped);

  // Install clears the flag; the next drifting window may trip again.
  EXPECT_TRUE(session.install(core::SignedPermutation::identity(8)));
  EXPECT_FALSE(session.install(core::SignedPermutation::identity(8)));  // no trip pending
  const serve::SessionSnapshot snap = session.snapshot();
  EXPECT_EQ(snap.trips, 1u);
  EXPECT_EQ(snap.swaps, 1u);
  EXPECT_EQ(snap.desyncs, 0u);
}

// --- server -----------------------------------------------------------------

TEST(Server, RejectsUnknownAndDuplicateSessions) {
  serve::Server server({.shards = 2, .queue_capacity = 4});
  EXPECT_THROW(server.ingest(42, {1, 2, 3}), std::invalid_argument);
  server.open_session(42, config8());
  EXPECT_THROW(server.open_session(42, config8()), std::invalid_argument);
  server.drain();
}

TEST(Server, EightConcurrentSessionsStayBitIdentical) {
  // The acceptance bar: >= 8 concurrent sessions, per-session statistics
  // bit-identical to the batch fold of the same words, zero desyncs.
  serve::Server server({.shards = 4, .queue_capacity = 8});
  constexpr int kSessions = 8;
  constexpr std::size_t kWords = 6000;

  std::vector<std::vector<std::uint64_t>> streams;
  for (int s = 0; s < kSessions; ++s) {
    server.open_session(static_cast<std::uint64_t>(s), config8());
    streams.push_back(traffic(100 + static_cast<unsigned>(s), kWords, kWords / 2));
  }

  std::vector<std::thread> producers;
  producers.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    producers.emplace_back([&, s] {
      const auto& words = streams[static_cast<std::size_t>(s)];
      std::size_t offset = 0;
      std::size_t step = 11 + static_cast<std::size_t>(s);
      while (offset < words.size()) {
        const std::size_t take = std::min(step, words.size() - offset);
        server.ingest(static_cast<std::uint64_t>(s),
                      {words.begin() + static_cast<std::ptrdiff_t>(offset),
                       words.begin() + static_cast<std::ptrdiff_t>(offset + take)});
        offset += take;
        step = step * 31 % 97 + 1;  // ragged, deterministic batch sizes
      }
    });
  }
  for (auto& p : producers) p.join();
  server.drain();

  for (int s = 0; s < kSessions; ++s) {
    const auto snap = server.session_stats(static_cast<std::uint64_t>(s));
    EXPECT_EQ(snap.desyncs, 0u) << "session " << s;
    expect_counts_equal(snap.longrun,
                        batch_counts(streams[static_cast<std::size_t>(s)], 8));
  }
  EXPECT_EQ(server.totals().words, kSessions * kWords);
  EXPECT_EQ(server.totals().desyncs, 0u);
  EXPECT_TRUE(server.poll_errors().empty());
}

TEST(Server, DriftTriggeredReannealHotSwapsWithZeroDesyncs) {
  serve::Server server({.shards = 2, .queue_capacity = 8});
  auto cfg = config8();
  cfg.drift.threshold = 0.05;
  server.open_session(1, cfg);

  // Phase-shifted traffic in small batches so the swap lands mid-stream
  // while later batches are still flowing through the link.
  const auto words = traffic(42, 8192, 2048);
  for (std::size_t offset = 0; offset < words.size(); offset += 128) {
    server.ingest(1, {words.begin() + static_cast<std::ptrdiff_t>(offset),
                      words.begin() + static_cast<std::ptrdiff_t>(offset + 128)});
  }
  server.drain();

  const auto snap = server.session_stats(1);
  EXPECT_GE(snap.swaps, 1u);
  EXPECT_EQ(snap.desyncs, 0u);
  expect_counts_equal(snap.longrun, batch_counts(words, 8));

  const auto swaps = server.poll_swaps();
  ASSERT_GE(swaps.size(), 1u);
  for (const auto& swap : swaps) {
    EXPECT_TRUE(swap.installed);
    EXPECT_GT(swap.drift, 0.05);
    EXPECT_LE(swap.power_after, swap.power_before);  // annealer only improves
    EXPECT_GT(swap.words_at_trip, 0u);
    const std::string json = swap.to_json();
    EXPECT_NE(json.find("\"event\":\"swap\""), std::string::npos);
    EXPECT_NE(json.find("\"installed\":true"), std::string::npos);
  }
  EXPECT_TRUE(server.poll_errors().empty());
}

TEST(Server, BackpressureBoundsTheQueueAndLosesNothing) {
  serve::Server server({.shards = 1, .queue_capacity = 2});
  server.open_session(5, config8());

  const auto words = traffic(8, 4096, 4096);
  for (std::size_t offset = 0; offset < words.size(); offset += 32) {
    server.ingest(5, {words.begin() + static_cast<std::ptrdiff_t>(offset),
                      words.begin() + static_cast<std::ptrdiff_t>(offset + 32)});
  }
  server.drain();

  EXPECT_LE(server.totals().max_queue_depth, 2u);  // producer blocked, not queued
  const auto snap = server.close_session(5);
  EXPECT_EQ(snap.words, words.size());
  expect_counts_equal(snap.longrun, batch_counts(words, 8));
  EXPECT_THROW(server.session_stats(5), std::invalid_argument);  // closed
}

// --- protocol ---------------------------------------------------------------

TEST(Protocol, FramesRoundTrip) {
  std::string stream;
  serve::Frame open;
  open.type = serve::FrameType::open;
  open.session = 7;
  open.text = "codec=gray window=512";
  stream += serve::encode_frame(open);

  serve::Frame data;
  data.type = serve::FrameType::data;
  data.session = 7;
  data.words = {0x0123456789abcdefull, 0, ~0ull, 42};
  stream += serve::encode_frame(data);

  for (const serve::FrameType t :
       {serve::FrameType::stats, serve::FrameType::close, serve::FrameType::shutdown}) {
    serve::Frame f;
    f.type = t;
    f.session = t == serve::FrameType::shutdown ? 0u : 7u;
    stream += serve::encode_frame(f);
  }

  std::istringstream in(stream);
  serve::Frame got;
  ASSERT_TRUE(serve::read_frame(in, got));
  EXPECT_EQ(got.type, serve::FrameType::open);
  EXPECT_EQ(got.session, 7u);
  EXPECT_EQ(got.text, open.text);
  const auto opts = serve::parse_options(got.text);
  EXPECT_EQ(opts.at("codec"), "gray");
  EXPECT_EQ(opts.at("window"), "512");

  ASSERT_TRUE(serve::read_frame(in, got));
  EXPECT_EQ(got.type, serve::FrameType::data);
  EXPECT_EQ(got.words, data.words);

  for (const serve::FrameType want :
       {serve::FrameType::stats, serve::FrameType::close, serve::FrameType::shutdown}) {
    ASSERT_TRUE(serve::read_frame(in, got));
    EXPECT_EQ(got.type, want);
  }
  EXPECT_FALSE(serve::read_frame(in, got));  // clean EOF at a frame boundary
}

TEST(Protocol, MalformedFramesFailLoudly) {
  serve::Frame frame;

  {
    std::istringstream in(std::string("\x08\x00\x00\x00", 4));  // truncated header
    EXPECT_THROW(serve::read_frame(in, frame), std::runtime_error);
  }
  {
    std::string bad(12, '\0');
    bad[4] = 'Z';  // unknown type
    std::istringstream in(bad);
    EXPECT_THROW(serve::read_frame(in, frame), std::runtime_error);
  }
  {
    std::string bad(12, '\0');
    bad[4] = 'D';
    bad[5] = 1;  // reserved byte set
    std::istringstream in(bad);
    EXPECT_THROW(serve::read_frame(in, frame), std::runtime_error);
  }
  {
    std::string bad(12, '\0');
    bad[0] = 4;  // 4-byte payload on a data frame: not a multiple of 8
    bad[4] = 'D';
    std::istringstream in(bad + "abcd");
    EXPECT_THROW(serve::read_frame(in, frame), std::runtime_error);
  }
  {
    serve::Frame data;
    data.type = serve::FrameType::data;
    data.words = {1, 2, 3};
    std::string enc = serve::encode_frame(data);
    enc.resize(enc.size() - 5);  // truncated payload
    std::istringstream in(enc);
    EXPECT_THROW(serve::read_frame(in, frame), std::runtime_error);
  }

  EXPECT_THROW(serve::parse_options("novalue"), std::runtime_error);
  EXPECT_THROW(serve::parse_options("a=1 a=2"), std::runtime_error);
  EXPECT_TRUE(serve::parse_options("").empty());
}

}  // namespace
