// Tests for subset statistics and the multi-bundle bus partitioning.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "core/bus.hpp"
#include "streams/random_streams.hpp"

namespace {

using namespace tsvcod;

stats::SwitchingStats interleaved_two_channel_stats() {
  // Two independent, strongly sign-correlated 8 b Gaussian channels, packed
  // bit-interleaved: channel A on even bus bits, channel B on odd bus bits.
  streams::GaussianAr1Stream a(8, 12.0, 0.0, 1);
  streams::GaussianAr1Stream b(8, 12.0, 0.0, 2);
  stats::StatsAccumulator acc(16);
  for (int t = 0; t < 60000; ++t) {
    const std::uint64_t wa = a.next();
    const std::uint64_t wb = b.next();
    std::uint64_t bus = 0;
    for (std::size_t k = 0; k < 8; ++k) {
      bus |= ((wa >> k) & 1u) << (2 * k);
      bus |= ((wb >> k) & 1u) << (2 * k + 1);
    }
    acc.add(bus);
  }
  return acc.finish();
}

TEST(SubsetStats, ExtractsSelectedBits) {
  streams::SequentialStream src(8, 0.1, 3);
  stats::StatsAccumulator acc(8);
  for (int i = 0; i < 10000; ++i) acc.add(src.next());
  const auto full = acc.finish();

  const std::vector<std::size_t> pick{7, 0, 3};
  const auto sub = stats::subset_stats(full, pick);
  ASSERT_EQ(sub.width, 3u);
  EXPECT_DOUBLE_EQ(sub.self[0], full.self[7]);
  EXPECT_DOUBLE_EQ(sub.self[1], full.self[0]);
  EXPECT_DOUBLE_EQ(sub.prob_one[2], full.prob_one[3]);
  EXPECT_DOUBLE_EQ(sub.coupling(0, 2), full.coupling(7, 3));
  EXPECT_DOUBLE_EQ(sub.coupling(0, 0), full.self[7]);
}

TEST(SubsetStats, Validation) {
  streams::UniformRandomStream src(4, 1);
  stats::StatsAccumulator acc(4);
  for (int i = 0; i < 100; ++i) acc.add(src.next());
  const auto full = acc.finish();
  EXPECT_THROW(stats::subset_stats(full, std::vector<std::size_t>{}), std::invalid_argument);
  EXPECT_THROW(stats::subset_stats(full, std::vector<std::size_t>{4}), std::out_of_range);
}

TEST(BusGrouping, ContiguousSlices) {
  const auto st = interleaved_two_channel_stats();
  const auto groups = core::group_bus_bits(st, {8, 8}, core::GroupingStrategy::Contiguous);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{8, 9, 10, 11, 12, 13, 14, 15}));
}

TEST(BusGrouping, ClusteredReunitesInterleavedChannels) {
  const auto st = interleaved_two_channel_stats();
  const auto groups =
      core::group_bus_bits(st, {8, 8}, core::GroupingStrategy::CorrelationClustered);
  ASSERT_EQ(groups.size(), 2u);
  // Each group must be (almost) single-parity: one channel per bundle. The
  // uncorrelated LSBs can land anywhere, so check the seed cluster (first
  // four picks), which is driven by the strong MSB correlations.
  for (const auto& g : groups) {
    std::set<std::size_t> parities;
    for (std::size_t k = 0; k < 4; ++k) parities.insert(g[k] % 2);
    EXPECT_EQ(parities.size(), 1u) << "bundle seed mixes channels";
  }
}

TEST(BusGrouping, CoversEveryBitExactlyOnce) {
  const auto st = interleaved_two_channel_stats();
  for (const auto strategy :
       {core::GroupingStrategy::Contiguous, core::GroupingStrategy::CorrelationClustered}) {
    const auto groups = core::group_bus_bits(st, {6, 4, 6}, strategy);
    std::set<std::size_t> seen;
    for (const auto& g : groups) {
      for (const auto b : g) EXPECT_TRUE(seen.insert(b).second) << "duplicate bit";
    }
    EXPECT_EQ(seen.size(), 16u);
  }
}

TEST(BusGrouping, RejectsCapacityMismatch) {
  const auto st = interleaved_two_channel_stats();
  EXPECT_THROW(core::group_bus_bits(st, {8, 9}, core::GroupingStrategy::Contiguous),
               std::invalid_argument);
}

TEST(OptimizeBus, ClusteredBeatsContiguousOnInterleavedChannels) {
  const auto st = interleaved_two_channel_stats();
  const auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(2, 4);
  const std::vector<core::Link> bundles{core::Link(geom), core::Link(geom)};

  core::OptimizeOptions opts;
  opts.schedule.iterations = 6000;
  const auto contiguous =
      core::optimize_bus(st, bundles, core::GroupingStrategy::Contiguous, opts);
  const auto clustered =
      core::optimize_bus(st, bundles, core::GroupingStrategy::CorrelationClustered, opts);

  ASSERT_EQ(contiguous.per_bundle.size(), 2u);
  EXPECT_NEAR(contiguous.total_power,
              contiguous.per_bundle[0].power + contiguous.per_bundle[1].power,
              1e-12 * contiguous.total_power);
  // Reuniting the correlated channels must help the in-bundle assignments.
  EXPECT_LT(clustered.total_power, contiguous.total_power * 0.995);
}

TEST(OptimizeBus, ForwardsInversionConstraints) {
  const auto st = interleaved_two_channel_stats();
  const auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(2, 4);
  const std::vector<core::Link> bundles{core::Link(geom), core::Link(geom)};
  core::OptimizeOptions opts;
  opts.schedule.iterations = 2000;
  opts.allow_invert.assign(16, 1);
  opts.allow_invert[15] = 0;
  const auto res = core::optimize_bus(st, bundles, core::GroupingStrategy::Contiguous, opts);
  // Bus bit 15 is bundle 1, local index 7: must stay uninverted.
  const auto& g = res.bundle_bits[1];
  const auto local = static_cast<std::size_t>(
      std::find(g.begin(), g.end(), std::size_t{15}) - g.begin());
  EXPECT_FALSE(res.per_bundle[1].assignment.inverted(local));
}

}  // namespace
