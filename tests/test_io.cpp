// Unit tests for the persistence layers: capacitance-model files, word-trace
// files and assignment files (round-trips and malformed-input rejection).
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/assignment_io.hpp"
#include "streams/trace_io.hpp"
#include "tsv/model_io.hpp"

namespace {

using namespace tsvcod;

TEST(ModelIo, RoundTripExact) {
  const auto geom = phys::TsvArrayGeometry::itrs2018_min(3, 3);
  const auto model = tsv::fit_from_analytic(geom);
  std::stringstream ss;
  tsv::save_linear_model(ss, model);
  const auto loaded = tsv::load_linear_model(ss);
  ASSERT_EQ(loaded.size(), model.size());
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_DOUBLE_EQ(loaded.c_ref()(i, j), model.c_ref()(i, j));
      EXPECT_DOUBLE_EQ(loaded.delta_c()(i, j), model.delta_c()(i, j));
    }
  }
}

TEST(ModelIo, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(tsv::load_linear_model(empty), std::runtime_error);
  std::stringstream wrong("not-a-model v1\nn 2\n");
  EXPECT_THROW(tsv::load_linear_model(wrong), std::runtime_error);
  std::stringstream truncated("tsvcod-linear-capacitance v1\nn 2\nCR 1 2\n");
  EXPECT_THROW(tsv::load_linear_model(truncated), std::runtime_error);
  std::stringstream bad_size("tsvcod-linear-capacitance v1\nn 0\n");
  EXPECT_THROW(tsv::load_linear_model(bad_size), std::runtime_error);
}

TEST(TraceIo, ParsesHexDecimalAndComments) {
  std::stringstream ss("# header\n0x1F\n42\n\n   0xff  \n");
  const auto words = streams::parse_trace(ss);
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], 0x1Fu);
  EXPECT_EQ(words[1], 42u);
  EXPECT_EQ(words[2], 0xFFu);
}

TEST(TraceIo, RoundTrip) {
  std::mt19937_64 rng(1);
  std::vector<std::uint64_t> words(500);
  for (auto& w : words) w = rng();
  std::stringstream ss;
  streams::save_trace(ss, words);
  EXPECT_EQ(streams::parse_trace(ss), words);
}

TEST(TraceIo, RejectsBadLines) {
  std::stringstream ss("12\nnot_a_number\n");
  EXPECT_THROW(streams::parse_trace(ss), std::runtime_error);
  std::stringstream ss2("0x12zz\n");
  EXPECT_THROW(streams::parse_trace(ss2), std::runtime_error);
}

TEST(TraceIo, ErrorNamesSourceLineAndByteOffset) {
  // "12\n" is 3 bytes; the bad token starts 2 bytes into line 2.
  std::stringstream ss("12\n  not_a_number\n");
  try {
    streams::parse_trace(ss, "bus.txt");
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bus.txt"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("byte offset 5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("not_a_number"), std::string::npos) << msg;
  }
}

TEST(TraceIo, LoadErrorNamesPath) {
  try {
    streams::load_trace("/nonexistent/dir/trace.txt");
    FAIL() << "expected open failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/dir/trace.txt"), std::string::npos);
  }
}

TEST(AssignmentIo, RoundTrip) {
  std::mt19937_64 rng(7);
  const auto a =
      core::SignedPermutation::random(12, rng, std::vector<std::uint8_t>(12, 1));
  std::stringstream ss;
  core::save_assignment(ss, a);
  const auto loaded = core::load_assignment(ss);
  EXPECT_EQ(loaded, a);
}

TEST(AssignmentIo, RejectsDuplicatesAndBadLines) {
  std::stringstream dup(
      "tsvcod-assignment v1\nn 2\nmap 0 0 0\nmap 0 1 0\n");
  EXPECT_THROW(core::load_assignment(dup), std::runtime_error);
  std::stringstream range("tsvcod-assignment v1\nn 2\nmap 0 5 0\nmap 1 1 0\n");
  EXPECT_THROW(core::load_assignment(range), std::runtime_error);
  std::stringstream clash(
      "tsvcod-assignment v1\nn 2\nmap 0 1 0\nmap 1 1 0\n");
  EXPECT_THROW(core::load_assignment(clash), std::runtime_error);  // not a permutation
}

// --- Regression tests for parser hardening (found by the check harness) ----

TEST(TraceIo, RejectsSignedWords) {
  // std::stoull accepts a sign and silently wraps: "-1" used to parse as
  // 2^64-1. Words are unsigned line patterns; signed tokens are malformed.
  std::stringstream neg("-1\n");
  EXPECT_THROW(streams::parse_trace(neg), std::runtime_error);
  std::stringstream pos_sign("+5\n");
  EXPECT_THROW(streams::parse_trace(pos_sign), std::runtime_error);
  std::stringstream neg_hex("-0x10\n");
  EXPECT_THROW(streams::parse_trace(neg_hex), std::runtime_error);
}

TEST(TraceIo, RejectsOverflowingWords) {
  // One past 2^64-1; stoull throws out_of_range, reported as runtime_error.
  std::stringstream ss("18446744073709551616\n");
  EXPECT_THROW(streams::parse_trace(ss), std::runtime_error);
  std::stringstream fits("18446744073709551615\n");
  EXPECT_EQ(streams::parse_trace(fits).back(), ~std::uint64_t{0});
}

TEST(ModelIo, RejectsNonFiniteEntries) {
  // operator>> happily parses "nan"/"inf"; a non-finite capacitance poisons
  // every downstream power figure without ever failing loudly.
  std::stringstream nan_entry("tsvcod-linear-capacitance v1\nn 1\nCR nan\nDC 0\n");
  EXPECT_THROW(tsv::load_linear_model(nan_entry), std::runtime_error);
  std::stringstream inf_entry("tsvcod-linear-capacitance v1\nn 1\nCR 1e-15\nDC inf\n");
  EXPECT_THROW(tsv::load_linear_model(inf_entry), std::runtime_error);
  std::stringstream overflow("tsvcod-linear-capacitance v1\nn 1\nCR 1e999\nDC 0\n");
  EXPECT_THROW(tsv::load_linear_model(overflow), std::runtime_error);
}

TEST(ModelIo, RejectsTrailingRowData) {
  std::stringstream ss("tsvcod-linear-capacitance v1\nn 1\nCR 1e-15 7\nDC 0\n");
  EXPECT_THROW(tsv::load_linear_model(ss), std::runtime_error);
}

TEST(AssignmentIo, RejectsTruncatedMapLine) {
  // A truncated line ("map 1") used to leave the failed extractions
  // value-initialized to zero and silently parse as "bit 1 -> line 0".
  std::stringstream ss("tsvcod-assignment v1\nn 2\nmap 0 1 0\nmap 1\n");
  EXPECT_THROW(core::load_assignment(ss), std::runtime_error);
  std::stringstream bare("tsvcod-assignment v1\nn 1\nmap\n");
  EXPECT_THROW(core::load_assignment(bare), std::runtime_error);
}

TEST(AssignmentIo, RejectsTrailingMapData) {
  std::stringstream ss("tsvcod-assignment v1\nn 1\nmap 0 0 0 junk\n");
  EXPECT_THROW(core::load_assignment(ss), std::runtime_error);
  std::stringstream bad_inv("tsvcod-assignment v1\nn 1\nmap 0 0 2\n");
  EXPECT_THROW(core::load_assignment(bad_inv), std::runtime_error);
}

TEST(AssignmentIo, SaveLoadSaveIsByteIdentical) {
  std::mt19937_64 rng(21);
  const auto a = core::SignedPermutation::random(9, rng, std::vector<std::uint8_t>(9, 1));
  std::stringstream first;
  core::save_assignment(first, a);
  std::stringstream second;
  core::save_assignment(second, core::load_assignment(first));
  EXPECT_EQ(first.str(), second.str());
}

// --- Regression: line endings and the words-count directive ----------------

TEST(TraceIo, AcceptsCrlfLineEndings) {
  std::stringstream crlf("# header\r\n0x1F\r\n42\r\n");
  const auto words = streams::parse_trace(crlf);
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], 0x1Fu);
  EXPECT_EQ(words[1], 42u);
}

TEST(TraceIo, AcceptsFinalLineWithoutNewline) {
  std::stringstream ss("12\n34");
  EXPECT_EQ(streams::parse_trace(ss), (std::vector<std::uint64_t>{12, 34}));
  std::stringstream crlf("12\r\n0x22");
  EXPECT_EQ(streams::parse_trace(crlf), (std::vector<std::uint64_t>{12, 0x22}));
}

TEST(TraceIo, CrlfParsesIdenticallyToLf) {
  const std::string lf = "# comment\n1\n2\n0x3\n";
  std::string crlf;
  for (const char ch : lf) {
    if (ch == '\n') crlf += '\r';
    crlf += ch;
  }
  std::stringstream a(lf), b(crlf);
  EXPECT_EQ(streams::parse_trace(a), streams::parse_trace(b));
}

TEST(TraceIo, WordsDirectiveVerifiedAtEof) {
  std::stringstream ok("words 2\n1\n2\n");
  EXPECT_EQ(streams::parse_trace(ok).size(), 2u);
  std::stringstream truncated("words 3\n1\n2\n");
  try {
    streams::parse_trace(truncated, "t.txt");
    FAIL() << "expected count mismatch";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("t.txt"), std::string::npos) << msg;
    EXPECT_NE(msg.find('3'), std::string::npos) << msg;  // declared
    EXPECT_NE(msg.find('2'), std::string::npos) << msg;  // actual
  }
  std::stringstream padded("words 1\n1\n2\n");
  EXPECT_THROW(streams::parse_trace(padded), std::runtime_error);
}

TEST(TraceIo, WordsDirectiveRejectsDuplicatesAndGarbage) {
  std::stringstream dup("words 1\nwords 1\n7\n");
  EXPECT_THROW(streams::parse_trace(dup), std::runtime_error);
  std::stringstream bare("words\n");
  EXPECT_THROW(streams::parse_trace(bare), std::runtime_error);
  std::stringstream neg("words -1\n");
  EXPECT_THROW(streams::parse_trace(neg), std::runtime_error);
  std::stringstream junk("words 2x\n1\n2\n");
  EXPECT_THROW(streams::parse_trace(junk), std::runtime_error);
}

TEST(TraceIo, SaveEmitsWordsDirective) {
  std::stringstream ss;
  streams::save_trace(ss, std::vector<std::uint64_t>{1, 2, 3});
  EXPECT_NE(ss.str().find("words 3\n"), std::string::npos);
  EXPECT_EQ(streams::parse_trace(ss), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(AssignmentIo, GridRendering) {
  const auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  core::SignedPermutation a({3, 2, 1, 0}, {1, 0, 0, 0});
  const std::string grid = core::format_assignment_grid(geom, a);
  // Line 0 carries bit 3, line 3 carries bit 0 inverted.
  EXPECT_NE(grid.find(" 3"), std::string::npos);
  EXPECT_NE(grid.find("~ 0"), std::string::npos);
  const auto wrong = phys::TsvArrayGeometry::itrs2018_min(3, 3);
  EXPECT_THROW(core::format_assignment_grid(wrong, a), std::invalid_argument);
}

}  // namespace
