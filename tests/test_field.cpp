// Unit tests for the finite-difference field extractor: grid rasterization,
// solver convergence, closed-form validation and Maxwell-matrix structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "field/export.hpp"
#include "field/extractor.hpp"
#include "field/grid.hpp"
#include "field/solver.hpp"
#include "phys/constants.hpp"

namespace {

using namespace tsvcod;
using namespace tsvcod::phys::literals;
using field::Complex;
using field::Grid;

TEST(Grid, ConstructionAndIndexing) {
  Grid g(10_um, 5_um, 0.5_um);
  EXPECT_EQ(g.nx(), 20u);
  EXPECT_EQ(g.ny(), 10u);
  EXPECT_EQ(g.size(), 200u);
  EXPECT_DOUBLE_EQ(g.x_of(0), 0.25_um);
  EXPECT_THROW(Grid(1_um, 1_um, 0.5_um), std::invalid_argument);  // too few cells
  EXPECT_THROW(Grid(-1.0, 1.0, 0.1), std::invalid_argument);
}

TEST(Grid, PaintDiskAndAnnulus) {
  Grid g(10_um, 10_um, 0.1_um);
  g.fill(Complex{11.9, -50.0});
  g.paint_annulus(5_um, 5_um, 1_um, 1.2_um, Complex{3.9, 0.0});
  g.paint_disk(5_um, 5_um, 1_um, Complex{3.9, 0.0});
  g.paint_disk(5_um, 5_um, 1_um, Complex{3.9, 0.0}, 0);
  EXPECT_EQ(g.conductor_count(), 1);

  // Center cell is conductor 0; a cell inside the annulus is oxide; a far
  // cell is substrate.
  const auto center = g.index(50, 50);
  EXPECT_EQ(g.conductor(center), 0);
  const auto ring = g.index(50 + 11, 50);  // ~1.1 um to the east
  EXPECT_EQ(g.conductor(ring), field::kNoConductor);
  EXPECT_NEAR(g.eps(ring).real(), 3.9, 1e-12);
  const auto far = g.index(5, 5);
  EXPECT_NEAR(g.eps(far).imag(), -50.0, 1e-12);
}

// A centred conductor disk inside a grounded box behaves like a coaxial
// capacitor with an effective outer radius; the FD charge must be within a
// few percent of the closed form with the standard square-to-circle radius.
TEST(Solver, CoaxialClosedForm) {
  const double half = 8_um;
  Grid g(2 * half, 2 * half, 0.1_um);
  g.fill(Complex{1.0, 0.0});
  g.paint_disk(half, half, 1_um, Complex{1.0, 0.0}, 0);

  field::FieldProblem problem(g);
  field::SolverOptions opts;
  field::SolveStats stats;
  const auto phi = problem.solve(0, opts, &stats);
  EXPECT_TRUE(stats.converged);
  const auto q = problem.conductor_charges(phi);

  // Effective grounded-boundary radius of a square box ~ 1.08 * half-width
  // (standard conformal-mapping result for square coax).
  const double r_eff = 1.08 * half;
  const double expected = 2.0 * phys::pi * phys::eps0 / std::log(r_eff / 1_um);
  EXPECT_NEAR(q[0].real() / expected, 1.0, 0.08);
  EXPECT_NEAR(q[0].imag(), 0.0, 1e-12 * std::abs(q[0].real()));
}

// Two cylinders in a uniform lossless dielectric: coupling must approach the
// two-wire closed form C' = pi*eps/acosh(s/2a) when the box is large.
TEST(Solver, TwoCylinderClosedForm) {
  const double a = 1_um;
  const double s = 4_um;
  const double half = 14_um;
  Grid g(2 * half + s, 2 * half, 0.1_um);
  g.fill(Complex{1.0, 0.0});
  g.paint_disk(half, half, a, Complex{1.0, 0.0}, 0);
  g.paint_disk(half + s, half, a, Complex{1.0, 0.0}, 1);

  field::FieldProblem problem(g);
  field::SolverOptions opts;
  field::SolveStats stats;
  const auto phi = problem.solve(0, opts, &stats);
  ASSERT_TRUE(stats.converged);
  const auto q = problem.conductor_charges(phi);

  const double coupling = -q[1].real();  // off-diagonal Maxwell entry, negated
  const double expected = phys::pi * phys::eps0 / std::acosh(s / (2.0 * a));
  // The grounded box steals a substantial share of the field (the closed form
  // assumes an unbounded medium), so the FD coupling lands below the formula
  // but must stay in the same regime.
  EXPECT_GT(coupling / expected, 0.55);
  EXPECT_LT(coupling / expected, 1.05);
}

TEST(Extractor, MaxwellStructureSmallArray) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const std::vector<double> pr(geom.count(), 0.5);
  field::ExtractionOptions opts;
  opts.cell = 0.2_um;  // coarse but fast
  const auto res = field::extract_capacitance(geom, pr, opts);
  ASSERT_TRUE(res.all_converged());

  const auto& m = res.maxwell;
  const auto& c = res.paper;
  const std::size_t n = geom.count();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GT(m(i, i), 0.0);
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row += m(i, j);
      EXPECT_NEAR(m(i, j), m(j, i), 1e-18);
      if (i != j) {
        EXPECT_LT(m(i, j), 0.0) << "Maxwell off-diagonals are negative";
        EXPECT_GT(c(i, j), 0.0) << "paper-form couplings are positive";
      }
    }
    EXPECT_GE(row, -1e-18) << "ground capacitance cannot be negative";
    EXPECT_NEAR(c(i, i), row, 1e-18);
  }
  // 2x2 symmetry: all four TSVs are corners, couplings along the two axes equal.
  EXPECT_NEAR(c(0, 1) / c(0, 2), 1.0, 0.05);
  // Diagonal pair couples less than a direct pair.
  EXPECT_LT(c(0, 3), c(0, 1));
}

TEST(Extractor, MosEffectReducesCapacitance) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(1, 2);
  field::ExtractionOptions opts;
  opts.cell = 0.15_um;
  const std::vector<double> pr0(2, 0.0);
  const std::vector<double> pr1(2, 1.0);
  const auto c0 = field::extract_capacitance(geom, pr0, opts);
  const auto c1 = field::extract_capacitance(geom, pr1, opts);
  ASSERT_TRUE(c0.all_converged());
  ASSERT_TRUE(c1.all_converged());
  EXPECT_LT(c1.paper(0, 1), c0.paper(0, 1));
  const double reduction = 1.0 - c1.paper(0, 1) / c0.paper(0, 1);
  // Paper: the MOS effect gives up to ~40 % lower capacitance values.
  EXPECT_GT(reduction, 0.10);
  EXPECT_LT(reduction, 0.60);
}

TEST(Extractor, RejectsBadProbabilityVector) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const std::vector<double> pr(3, 0.5);
  EXPECT_THROW(field::extract_capacitance(geom, pr, {}), std::invalid_argument);
}

// Regression for the BiCGStab breakdown path: an unreachable tolerance runs
// the solver into its guards (rho, r0.v and t.t near zero) and the iteration
// cap. The potentials must come back finite — never NaN-tainted — with the
// failure visible in the stats.
TEST(Solver, BreakdownAndNonConvergenceStayFinite) {
  Grid g(8_um, 8_um, 0.25_um);
  g.fill(Complex{1.0, 0.0});
  g.paint_disk(4_um, 4_um, 1_um, Complex{1.0, 0.0}, 0);
  field::FieldProblem problem(g);

  field::SolverOptions opts;
  opts.tolerance = 0.0;  // unattainable: force breakdown or the iteration cap
  opts.max_iterations = 200;
  field::SolveStats stats;
  const auto phi = problem.solve(0, opts, &stats);
  EXPECT_FALSE(stats.converged);
  for (const auto& c : phi) {
    ASSERT_TRUE(std::isfinite(c.real()) && std::isfinite(c.imag()));
  }
  const auto q = problem.conductor_charges(phi);
  ASSERT_TRUE(std::isfinite(q[0].real()) && std::isfinite(q[0].imag()));
}

// An all-grounded (fully shielded) conductor has a zero right-hand side: the
// exact potential is zero everywhere outside it. The solver must report that
// honestly — converged, zero residual, zero iterations, trivial marker set.
TEST(Solver, ShieldedConductorSolvesTrivially) {
  Grid g(8_um, 8_um, 0.25_um);
  g.fill(Complex{1.0, 0.0});
  g.paint_disk(4_um, 4_um, 2_um, Complex{1.0, 0.0}, 0);  // grounded shield ring
  g.paint_disk(4_um, 4_um, 1_um, Complex{1.0, 0.0}, 1);  // fully enclosed core
  field::FieldProblem problem(g);
  field::SolveStats stats;
  const auto phi = problem.solve(1, {}, &stats);
  EXPECT_TRUE(stats.trivial);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.iterations, 0);
  EXPECT_DOUBLE_EQ(stats.residual, 0.0);
  for (std::size_t i = 0; i < g.size(); ++i) {
    const double expected = g.conductor(i) == 1 ? 1.0 : 0.0;
    ASSERT_DOUBLE_EQ(phi[i].real(), expected);
    ASSERT_DOUBLE_EQ(phi[i].imag(), 0.0);
  }
  // A non-trivial solve of the same problem must not set the marker.
  field::SolveStats outer;
  problem.solve(0, {}, &outer);
  EXPECT_FALSE(outer.trivial);
  EXPECT_TRUE(outer.converged);
  EXPECT_GT(outer.iterations, 0);
}

// Grids too small to coarsen must silently fall back to Jacobi and report it.
TEST(Solver, MultigridFallsBackToJacobiOnTinyGrids) {
  Grid g(2_um, 2_um, 0.25_um);  // 8x8 cells: below the coarsening threshold
  g.fill(Complex{1.0, 0.0});
  g.paint_disk(1_um, 1_um, 0.5_um, Complex{1.0, 0.0}, 0);
  field::FieldProblem problem(g);
  field::SolverOptions opts;
  opts.preconditioner = field::Preconditioner::multigrid;
  field::SolveStats stats;
  problem.solve(0, opts, &stats);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.preconditioner, field::Preconditioner::jacobi);
}

// Golden agreement on a small lossy TSV-like grid: the multigrid- and
// Jacobi-preconditioned solves and a dense LU reference must produce the
// same potentials to well within the solver tolerance headroom.
TEST(Solver, MultigridMatchesJacobiAndDense) {
  Grid g(6_um, 6_um, 0.25_um);  // 24x24
  g.fill(Complex{11.9, -59.9});
  g.paint_annulus(3_um, 3_um, 0.75_um, 1_um, Complex{3.9, 0.0});
  g.paint_disk(3_um, 3_um, 0.75_um, Complex{3.9, 0.0});
  g.paint_disk(3_um, 3_um, 0.75_um, Complex{3.9, 0.0}, 0);
  field::FieldProblem problem(g);

  field::SolverOptions jac;
  jac.preconditioner = field::Preconditioner::jacobi;
  field::SolverOptions mgo;
  mgo.preconditioner = field::Preconditioner::multigrid;
  mgo.multigrid.coarsest_unknowns = 64;  // force a real hierarchy on 24x24
  field::SolveStats sj, sm;
  const auto phi_j = problem.solve(0, jac, &sj);
  const auto phi_m = problem.solve(0, mgo, &sm);
  ASSERT_TRUE(sj.converged);
  ASSERT_TRUE(sm.converged);
  EXPECT_EQ(sm.preconditioner, field::Preconditioner::multigrid);

  // Dense reference: assemble A column by column through the public operator
  // and solve with partial-pivoting Gaussian elimination.
  const std::size_t nu = problem.unknowns();
  std::vector<std::vector<Complex>> a(nu, std::vector<Complex>(nu));
  std::vector<Complex> e(nu), col(nu);
  for (std::size_t c = 0; c < nu; ++c) {
    std::fill(e.begin(), e.end(), Complex{});
    e[c] = Complex{1.0, 0.0};
    problem.apply(e, col);
    for (std::size_t r = 0; r < nu; ++r) a[r][c] = col[r];
  }
  // Right-hand side b = A x for the converged Jacobi potential is not
  // available directly; recover it from the full solve: b = A * phi_free.
  std::vector<Complex> x_j(nu);
  {
    std::size_t u = 0;
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (g.conductor(i) == field::kNoConductor) x_j[u++] = phi_j[i];
    }
  }
  std::vector<Complex> b(nu);
  problem.apply(x_j, b);
  for (std::size_t k = 0; k < nu; ++k) {
    std::size_t piv = k;
    for (std::size_t r = k + 1; r < nu; ++r) {
      if (std::abs(a[r][k]) > std::abs(a[piv][k])) piv = r;
    }
    std::swap(a[k], a[piv]);
    std::swap(b[k], b[piv]);
    for (std::size_t r = k + 1; r < nu; ++r) {
      const Complex m = a[r][k] / a[k][k];
      for (std::size_t c = k; c < nu; ++c) a[r][c] -= m * a[k][c];
      b[r] -= m * b[k];
    }
  }
  std::vector<Complex> x_d(nu);
  for (std::size_t k = nu; k-- > 0;) {
    Complex acc = b[k];
    for (std::size_t c = k + 1; c < nu; ++c) acc -= a[k][c] * x_d[c];
    x_d[k] = acc / a[k][k];
  }
  // b was built from the Jacobi iterate, so x_d == x_j up to dense round-off;
  // the real check is multigrid against that dense/Jacobi solution.
  std::size_t u = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g.conductor(i) != field::kNoConductor) continue;
    EXPECT_NEAR(phi_m[i].real(), x_d[u].real(), 2e-7);
    EXPECT_NEAR(phi_m[i].imag(), x_d[u].imag(), 2e-7);
    EXPECT_NEAR(phi_j[i].real(), x_d[u].real(), 2e-7);
    EXPECT_NEAR(phi_j[i].imag(), x_d[u].imag(), 2e-7);
    ++u;
  }
}

// The point of multigrid: iteration counts stay roughly flat as the grid is
// refined (Jacobi-BiCGStab grows like the grid diameter instead).
TEST(Solver, MultigridIterationsMeshIndependent) {
  auto coax_iterations = [](std::size_t n) {
    const double cell = 0.1_um;
    const double side = static_cast<double>(n) * cell;
    Grid g(side, side, cell);
    g.fill(Complex{11.9, -59.9});
    g.paint_disk(side / 2, side / 2, side / 8, Complex{3.9, 0.0});
    g.paint_disk(side / 2, side / 2, side / 8, Complex{3.9, 0.0}, 0);
    field::FieldProblem problem(g);
    field::SolverOptions opts;
    opts.preconditioner = field::Preconditioner::multigrid;
    field::SolveStats stats;
    problem.solve(0, opts, &stats);
    EXPECT_TRUE(stats.converged) << n;
    EXPECT_EQ(stats.preconditioner, field::Preconditioner::multigrid) << n;
    return stats.iterations;
  };
  const int it_small = coax_iterations(64);
  const int it_large = coax_iterations(512);
  EXPECT_LE(it_large, 32);
  EXPECT_LE(it_large, 3 * it_small) << "multigrid lost mesh independence: " << it_small << " -> "
                                    << it_large << " iterations from 64^2 to 512^2";
}

TEST(Extractor, PreconditionersAgreeOnCapacitances) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const std::vector<double> pr(geom.count(), 0.5);
  field::ExtractionOptions opts;
  opts.cell = 0.25_um;
  opts.solver.preconditioner = field::Preconditioner::jacobi;
  const auto jac = field::extract_capacitance(geom, pr, opts);
  opts.solver.preconditioner = field::Preconditioner::multigrid;
  const auto mg = field::extract_capacitance(geom, pr, opts);
  ASSERT_TRUE(jac.all_converged());
  ASSERT_TRUE(mg.all_converged());
  for (const auto& s : mg.stats) {
    EXPECT_EQ(s.preconditioner, field::Preconditioner::multigrid);
  }
  const double scale = jac.paper(0, 0);
  for (std::size_t i = 0; i < geom.count(); ++i) {
    for (std::size_t j = 0; j < geom.count(); ++j) {
      EXPECT_NEAR(mg.paper(i, j), jac.paper(i, j), 1e-6 * scale);
      EXPECT_NEAR(mg.maxwell(i, j), jac.maxwell(i, j), 1e-6 * scale);
    }
  }
}

// Extraction reuse: warm-started sweep points must match cold extractions to
// within the solver tolerance (warm starts change iteration counts only).
TEST(Extractor, WarmStartSweepMatchesColdExtractions) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(1, 2);
  field::ExtractionOptions opts;
  opts.cell = 0.2_um;
  field::CapacitanceExtractor extractor(geom, opts);
  for (const double p : {0.2, 0.5, 0.8}) {
    const std::vector<double> pr(geom.count(), p);
    const auto warm = extractor.extract(pr);
    const auto cold = field::extract_capacitance(geom, pr, opts);
    ASSERT_TRUE(warm.all_converged());
    const double scale = cold.paper(0, 0);
    for (std::size_t i = 0; i < geom.count(); ++i) {
      for (std::size_t j = 0; j < geom.count(); ++j) {
        EXPECT_NEAR(warm.paper(i, j), cold.paper(i, j), 1e-6 * scale) << "p=" << p;
      }
    }
  }
  // Re-extracting the identical point reuses the rasterization and starts
  // from the converged answer: zero or near-zero extra iterations.
  const std::vector<double> pr(geom.count(), 0.8);
  const auto again = extractor.extract(pr);
  int iters = 0;
  for (const auto& s : again.stats) iters += s.iterations;
  EXPECT_LE(iters, 2);
  EXPECT_TRUE(again.all_converged());
}

TEST(Extractor, NonConvergedSolveRaisesInsteadOfGarbage) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const std::vector<double> pr(geom.count(), 0.5);
  field::ExtractionOptions opts;
  opts.cell = 0.2_um;
  opts.solver.max_iterations = 3;  // cannot converge on hundreds of unknowns
  EXPECT_THROW(field::extract_capacitance(geom, pr, opts), field::ConvergenceError);

  // Opting into partial results keeps the stats honest instead of throwing.
  opts.allow_nonconverged = true;
  const auto res = field::extract_capacitance(geom, pr, opts);
  EXPECT_FALSE(res.all_converged());
  for (std::size_t i = 0; i < geom.count(); ++i) {
    for (std::size_t j = 0; j < geom.count(); ++j) {
      EXPECT_TRUE(std::isfinite(res.paper(i, j)));
    }
  }
}


TEST(Export, PgmFormatAndScaling) {
  std::ostringstream os;
  field::write_pgm(os, 2, 2, {0.0, 1.0, 0.5, 1.0});
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("P2\n2 2\n255\n", 0), 0u);
  EXPECT_NE(out.find("0 255"), std::string::npos);
  EXPECT_NE(out.find("128 255"), std::string::npos);
  EXPECT_THROW(field::write_pgm(os, 3, 2, {1.0}), std::invalid_argument);
}

TEST(Export, PermittivityMapHighlightsConductors) {
  Grid g(5_um, 5_um, 0.25_um);
  g.fill(Complex{11.9, -59.9});
  g.paint_disk(2.5_um, 2.5_um, 1_um, Complex{3.9, 0.0});
  g.paint_disk(2.5_um, 2.5_um, 1_um, Complex{3.9, 0.0}, 0);
  const auto map = field::permittivity_map(g);
  ASSERT_EQ(map.size(), g.size());
  // The conductor cells must be the brightest pixels.
  const double center = map[g.index(g.nx() / 2, g.ny() / 2)];
  for (const double v : map) EXPECT_LE(v, center);
}

TEST(Export, PotentialMapMatchesSolution) {
  Grid g(8_um, 8_um, 0.25_um);
  g.fill(Complex{1.0, 0.0});
  g.paint_disk(4_um, 4_um, 1_um, Complex{1.0, 0.0}, 0);
  field::FieldProblem problem(g);
  const auto phi = problem.solve(0, {}, nullptr);
  const auto map = field::potential_map(g, phi);
  ASSERT_EQ(map.size(), g.size());
  // 1 V on the conductor, decaying towards the grounded boundary.
  EXPECT_DOUBLE_EQ(map[g.index(g.nx() / 2, g.ny() / 2)], 1.0);
  EXPECT_LT(map[g.index(1, 1)], 0.2);
  const std::vector<Complex> wrong(3);
  EXPECT_THROW(field::potential_map(g, wrong), std::invalid_argument);
}

}  // namespace
