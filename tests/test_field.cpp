// Unit tests for the finite-difference field extractor: grid rasterization,
// solver convergence, closed-form validation and Maxwell-matrix structure.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "field/export.hpp"
#include "field/extractor.hpp"
#include "field/grid.hpp"
#include "field/solver.hpp"
#include "phys/constants.hpp"

namespace {

using namespace tsvcod;
using namespace tsvcod::phys::literals;
using field::Complex;
using field::Grid;

TEST(Grid, ConstructionAndIndexing) {
  Grid g(10_um, 5_um, 0.5_um);
  EXPECT_EQ(g.nx(), 20u);
  EXPECT_EQ(g.ny(), 10u);
  EXPECT_EQ(g.size(), 200u);
  EXPECT_DOUBLE_EQ(g.x_of(0), 0.25_um);
  EXPECT_THROW(Grid(1_um, 1_um, 0.5_um), std::invalid_argument);  // too few cells
  EXPECT_THROW(Grid(-1.0, 1.0, 0.1), std::invalid_argument);
}

TEST(Grid, PaintDiskAndAnnulus) {
  Grid g(10_um, 10_um, 0.1_um);
  g.fill(Complex{11.9, -50.0});
  g.paint_annulus(5_um, 5_um, 1_um, 1.2_um, Complex{3.9, 0.0});
  g.paint_disk(5_um, 5_um, 1_um, Complex{3.9, 0.0});
  g.paint_disk(5_um, 5_um, 1_um, Complex{3.9, 0.0}, 0);
  EXPECT_EQ(g.conductor_count(), 1);

  // Center cell is conductor 0; a cell inside the annulus is oxide; a far
  // cell is substrate.
  const auto center = g.index(50, 50);
  EXPECT_EQ(g.conductor(center), 0);
  const auto ring = g.index(50 + 11, 50);  // ~1.1 um to the east
  EXPECT_EQ(g.conductor(ring), field::kNoConductor);
  EXPECT_NEAR(g.eps(ring).real(), 3.9, 1e-12);
  const auto far = g.index(5, 5);
  EXPECT_NEAR(g.eps(far).imag(), -50.0, 1e-12);
}

// A centred conductor disk inside a grounded box behaves like a coaxial
// capacitor with an effective outer radius; the FD charge must be within a
// few percent of the closed form with the standard square-to-circle radius.
TEST(Solver, CoaxialClosedForm) {
  const double half = 8_um;
  Grid g(2 * half, 2 * half, 0.1_um);
  g.fill(Complex{1.0, 0.0});
  g.paint_disk(half, half, 1_um, Complex{1.0, 0.0}, 0);

  field::FieldProblem problem(g);
  field::SolverOptions opts;
  field::SolveStats stats;
  const auto phi = problem.solve(0, opts, &stats);
  EXPECT_TRUE(stats.converged);
  const auto q = problem.conductor_charges(phi);

  // Effective grounded-boundary radius of a square box ~ 1.08 * half-width
  // (standard conformal-mapping result for square coax).
  const double r_eff = 1.08 * half;
  const double expected = 2.0 * phys::pi * phys::eps0 / std::log(r_eff / 1_um);
  EXPECT_NEAR(q[0].real() / expected, 1.0, 0.08);
  EXPECT_NEAR(q[0].imag(), 0.0, 1e-12 * std::abs(q[0].real()));
}

// Two cylinders in a uniform lossless dielectric: coupling must approach the
// two-wire closed form C' = pi*eps/acosh(s/2a) when the box is large.
TEST(Solver, TwoCylinderClosedForm) {
  const double a = 1_um;
  const double s = 4_um;
  const double half = 14_um;
  Grid g(2 * half + s, 2 * half, 0.1_um);
  g.fill(Complex{1.0, 0.0});
  g.paint_disk(half, half, a, Complex{1.0, 0.0}, 0);
  g.paint_disk(half + s, half, a, Complex{1.0, 0.0}, 1);

  field::FieldProblem problem(g);
  field::SolverOptions opts;
  field::SolveStats stats;
  const auto phi = problem.solve(0, opts, &stats);
  ASSERT_TRUE(stats.converged);
  const auto q = problem.conductor_charges(phi);

  const double coupling = -q[1].real();  // off-diagonal Maxwell entry, negated
  const double expected = phys::pi * phys::eps0 / std::acosh(s / (2.0 * a));
  // The grounded box steals a substantial share of the field (the closed form
  // assumes an unbounded medium), so the FD coupling lands below the formula
  // but must stay in the same regime.
  EXPECT_GT(coupling / expected, 0.55);
  EXPECT_LT(coupling / expected, 1.05);
}

TEST(Extractor, MaxwellStructureSmallArray) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const std::vector<double> pr(geom.count(), 0.5);
  field::ExtractionOptions opts;
  opts.cell = 0.2_um;  // coarse but fast
  const auto res = field::extract_capacitance(geom, pr, opts);
  ASSERT_TRUE(res.all_converged());

  const auto& m = res.maxwell;
  const auto& c = res.paper;
  const std::size_t n = geom.count();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GT(m(i, i), 0.0);
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row += m(i, j);
      EXPECT_NEAR(m(i, j), m(j, i), 1e-18);
      if (i != j) {
        EXPECT_LT(m(i, j), 0.0) << "Maxwell off-diagonals are negative";
        EXPECT_GT(c(i, j), 0.0) << "paper-form couplings are positive";
      }
    }
    EXPECT_GE(row, -1e-18) << "ground capacitance cannot be negative";
    EXPECT_NEAR(c(i, i), row, 1e-18);
  }
  // 2x2 symmetry: all four TSVs are corners, couplings along the two axes equal.
  EXPECT_NEAR(c(0, 1) / c(0, 2), 1.0, 0.05);
  // Diagonal pair couples less than a direct pair.
  EXPECT_LT(c(0, 3), c(0, 1));
}

TEST(Extractor, MosEffectReducesCapacitance) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(1, 2);
  field::ExtractionOptions opts;
  opts.cell = 0.15_um;
  const std::vector<double> pr0(2, 0.0);
  const std::vector<double> pr1(2, 1.0);
  const auto c0 = field::extract_capacitance(geom, pr0, opts);
  const auto c1 = field::extract_capacitance(geom, pr1, opts);
  ASSERT_TRUE(c0.all_converged());
  ASSERT_TRUE(c1.all_converged());
  EXPECT_LT(c1.paper(0, 1), c0.paper(0, 1));
  const double reduction = 1.0 - c1.paper(0, 1) / c0.paper(0, 1);
  // Paper: the MOS effect gives up to ~40 % lower capacitance values.
  EXPECT_GT(reduction, 0.10);
  EXPECT_LT(reduction, 0.60);
}

TEST(Extractor, RejectsBadProbabilityVector) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const std::vector<double> pr(3, 0.5);
  EXPECT_THROW(field::extract_capacitance(geom, pr, {}), std::invalid_argument);
}

// Regression for the BiCGStab breakdown path: an unreachable tolerance runs
// the solver into its guards (rho, r0.v and t.t near zero) and the iteration
// cap. The potentials must come back finite — never NaN-tainted — with the
// failure visible in the stats.
TEST(Solver, BreakdownAndNonConvergenceStayFinite) {
  Grid g(8_um, 8_um, 0.25_um);
  g.fill(Complex{1.0, 0.0});
  g.paint_disk(4_um, 4_um, 1_um, Complex{1.0, 0.0}, 0);
  field::FieldProblem problem(g);

  field::SolverOptions opts;
  opts.tolerance = 0.0;  // unattainable: force breakdown or the iteration cap
  opts.max_iterations = 200;
  field::SolveStats stats;
  const auto phi = problem.solve(0, opts, &stats);
  EXPECT_FALSE(stats.converged);
  for (const auto& c : phi) {
    ASSERT_TRUE(std::isfinite(c.real()) && std::isfinite(c.imag()));
  }
  const auto q = problem.conductor_charges(phi);
  ASSERT_TRUE(std::isfinite(q[0].real()) && std::isfinite(q[0].imag()));
}

TEST(Extractor, NonConvergedSolveRaisesInsteadOfGarbage) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 2);
  const std::vector<double> pr(geom.count(), 0.5);
  field::ExtractionOptions opts;
  opts.cell = 0.2_um;
  opts.solver.max_iterations = 3;  // cannot converge on hundreds of unknowns
  EXPECT_THROW(field::extract_capacitance(geom, pr, opts), field::ConvergenceError);

  // Opting into partial results keeps the stats honest instead of throwing.
  opts.allow_nonconverged = true;
  const auto res = field::extract_capacitance(geom, pr, opts);
  EXPECT_FALSE(res.all_converged());
  for (std::size_t i = 0; i < geom.count(); ++i) {
    for (std::size_t j = 0; j < geom.count(); ++j) {
      EXPECT_TRUE(std::isfinite(res.paper(i, j)));
    }
  }
}


TEST(Export, PgmFormatAndScaling) {
  std::ostringstream os;
  field::write_pgm(os, 2, 2, {0.0, 1.0, 0.5, 1.0});
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("P2\n2 2\n255\n", 0), 0u);
  EXPECT_NE(out.find("0 255"), std::string::npos);
  EXPECT_NE(out.find("128 255"), std::string::npos);
  EXPECT_THROW(field::write_pgm(os, 3, 2, {1.0}), std::invalid_argument);
}

TEST(Export, PermittivityMapHighlightsConductors) {
  Grid g(5_um, 5_um, 0.25_um);
  g.fill(Complex{11.9, -59.9});
  g.paint_disk(2.5_um, 2.5_um, 1_um, Complex{3.9, 0.0});
  g.paint_disk(2.5_um, 2.5_um, 1_um, Complex{3.9, 0.0}, 0);
  const auto map = field::permittivity_map(g);
  ASSERT_EQ(map.size(), g.size());
  // The conductor cells must be the brightest pixels.
  const double center = map[g.index(g.nx() / 2, g.ny() / 2)];
  for (const double v : map) EXPECT_LE(v, center);
}

TEST(Export, PotentialMapMatchesSolution) {
  Grid g(8_um, 8_um, 0.25_um);
  g.fill(Complex{1.0, 0.0});
  g.paint_disk(4_um, 4_um, 1_um, Complex{1.0, 0.0}, 0);
  field::FieldProblem problem(g);
  const auto phi = problem.solve(0, {}, nullptr);
  const auto map = field::potential_map(g, phi);
  ASSERT_EQ(map.size(), g.size());
  // 1 V on the conductor, decaying towards the grounded boundary.
  EXPECT_DOUBLE_EQ(map[g.index(g.nx() / 2, g.ny() / 2)], 1.0);
  EXPECT_LT(map[g.index(1, 1)], 0.2);
  const std::vector<Complex> wrong(3);
  EXPECT_THROW(field::potential_map(g, wrong), std::invalid_argument);
}

}  // namespace
