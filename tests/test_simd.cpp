// SIMD dispatch tests (ctest label: simd).
//
// The contract under test: every dispatch level computes the same results —
// bit-identical for the integer bit-plane statistics, and within eps-scale
// accumulation differences for the floating-point evaluator and multigrid
// smoother kernels. Levels above what the host CPU supports are skipped,
// not failed, so the suite is meaningful on any x86-64 (and trivially green
// on hosts where only `scalar` exists).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/link.hpp"
#include "field/multigrid.hpp"
#include "simd/dispatch.hpp"
#include "stats/switching_stats.hpp"
#include "streams/random_streams.hpp"

namespace {

using namespace tsvcod;
using simd::Level;

TEST(SimdDispatch, LevelNamesRoundTrip) {
  for (const Level l : {Level::scalar, Level::popcnt, Level::avx2, Level::avx512}) {
    EXPECT_EQ(simd::parse_level(simd::level_name(l)), l);
  }
  EXPECT_THROW(simd::parse_level(""), std::invalid_argument);
  try {
    simd::parse_level("avx9000");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("avx9000"), std::string::npos) << e.what();
  }
}

TEST(SimdDispatch, ScopedLevelClampsAndRestores) {
  const Level before = simd::active_level();
  {
    simd::ScopedLevel guard(Level::scalar);
    EXPECT_EQ(simd::active_level(), Level::scalar);
    {
      // Nested scopes: innermost force wins, outer force comes back.
      simd::ScopedLevel inner(Level::popcnt);
      EXPECT_EQ(simd::active_level(),
                std::min(Level::popcnt, simd::detected_level()));
    }
    EXPECT_EQ(simd::active_level(), Level::scalar);
  }
  EXPECT_EQ(simd::active_level(), before);
}

TEST(SimdDispatch, ForcingNeverRaisesAboveDetected) {
  simd::ScopedLevel guard(Level::avx512);
  EXPECT_LE(static_cast<int>(simd::active_level()), static_cast<int>(simd::detected_level()));
}

// ---------------------------------------------------------------------------
// Cross-level equality, parameterized on the forced dispatch level.
// ---------------------------------------------------------------------------

class LevelSweep : public ::testing::TestWithParam<Level> {
 protected:
  void SetUp() override {
    if (GetParam() > simd::detected_level()) {
      GTEST_SKIP() << "host CPU lacks " << simd::level_name(GetParam());
    }
  }
};

stats::SwitchingStats make_stats(std::size_t width, std::uint64_t seed) {
  streams::SequentialStream src(width, 0.1, seed);
  stats::StatsAccumulator acc(width);
  for (int i = 0; i < 20000; ++i) acc.add(src.next());
  return acc.finish();
}

// The batch scoring API must agree across every dispatch level (n = 25
// exercises the AVX-512 main loop and a 1-lane scalar tail).
TEST_P(LevelSweep, EvaluatorScoresMatchScalar) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(5, 5);
  const auto model = tsv::fit_from_analytic(geom);
  const auto st = make_stats(25, 31);

  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::size_t> pick(0, 24);
  std::vector<core::PowerEvaluator::Move> moves;
  for (int i = 0; i < 96; ++i) {
    if (rng() % 3 == 0) {
      moves.push_back({true, pick(rng), 0});
    } else {
      moves.push_back({false, pick(rng), pick(rng)});
    }
  }

  const auto run = [&](Level level) {
    simd::ScopedLevel guard(level);
    core::PowerEvaluator ev(st, model, core::SignedPermutation::identity(25));
    for (int i = 0; i < 30; ++i) ev.swap_bits(pick(rng) % 25, 24 - pick(rng) % 25);
    std::vector<double> scores(moves.size());
    ev.score_moves(moves, scores);
    scores.push_back(ev.power());
    return scores;
  };
  // Identical RNG state for both runs so both walk the same path.
  const auto rng_save = rng;
  const auto want = run(Level::scalar);
  rng = rng_save;
  const auto got = run(GetParam());
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < want.size(); ++k) {
    const double scale = std::abs(want[k]) + 1e-30;
    EXPECT_NEAR(got[k] / scale, want[k] / scale, 1e-10) << "score " << k;
  }
}

// Bit-plane switching statistics are integer counts: every level must be
// bit-identical, not merely close.
TEST_P(LevelSweep, SwitchingStatsBitIdentical) {
  streams::GaussianAr1Stream src(23, 2.0, -0.4, 77);
  std::vector<std::uint64_t> words(5000);
  for (auto& w : words) w = src.next();

  const auto run = [&](Level level) {
    simd::ScopedLevel guard(level);
    return stats::compute_stats(words, 23, 1);
  };
  const auto want = run(Level::scalar);
  const auto got = run(GetParam());
  EXPECT_EQ(got.transitions, want.transitions);
  for (std::size_t i = 0; i < 23; ++i) {
    EXPECT_EQ(got.self[i], want.self[i]) << i;
    EXPECT_EQ(got.prob_one[i], want.prob_one[i]) << i;
    for (std::size_t j = 0; j < 23; ++j) EXPECT_EQ(got.coupling(i, j), want.coupling(i, j));
  }
}

// A small multigrid hierarchy with an interior conductor disk: both
// smoothers, the residual, and the full V-cycle must agree across levels.
class SmootherSweep : public LevelSweep {
 protected:
  static constexpr std::size_t kN = 49;  // odd: exercises every vector tail

  static std::vector<std::uint8_t> make_dirichlet() {
    std::vector<std::uint8_t> d(kN * kN, 0);
    const double c = kN / 2.0, r = kN / 7.0;
    for (std::size_t iy = 0; iy < kN; ++iy) {
      for (std::size_t ix = 0; ix < kN; ++ix) {
        const double dx = ix + 0.5 - c, dy = iy + 0.5 - c;
        if (dx * dx + dy * dy < r * r) d[iy * kN + ix] = 1;
      }
    }
    return d;
  }

  static std::vector<field::Complex> make_eps(const std::vector<std::uint8_t>& dir) {
    std::vector<field::Complex> eps(kN * kN);
    std::mt19937_64 rng(11);
    std::uniform_real_distribution<double> u(1.0, 12.0);
    for (std::size_t i = 0; i < eps.size(); ++i) {
      eps[i] = dir[i] ? field::Complex{11.9, -59.9} : field::Complex{u(rng), -0.1 * u(rng)};
    }
    return eps;
  }

  static std::vector<field::Complex> make_rhs(std::uint64_t seed) {
    std::vector<field::Complex> rhs(kN * kN);
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (auto& v : rhs) v = field::Complex{u(rng), u(rng)};
    return rhs;
  }

  static double max_rel_diff(const std::vector<field::Complex>& a,
                             const std::vector<field::Complex>& b) {
    double scale = 1e-30, diff = 0.0;
    for (const auto& v : a) scale = std::max(scale, std::abs(v));
    for (std::size_t i = 0; i < a.size(); ++i) diff = std::max(diff, std::abs(a[i] - b[i]));
    return diff / scale;
  }
};

TEST_P(SmootherSweep, SmoothersAndResidualMatchScalar) {
  const auto dir = make_dirichlet();
  const auto eps = make_eps(dir);
  for (const auto smoother : {field::MultigridOptions::Smoother::red_black_gs,
                              field::MultigridOptions::Smoother::damped_jacobi}) {
    field::MultigridOptions opts;
    opts.smoother = smoother;
    const field::Multigrid mg(kN, kN, dir, eps, opts);
    const auto rhs = make_rhs(3);

    const auto run = [&](Level level) {
      simd::ScopedLevel guard(level);
      std::vector<field::Complex> x(kN * kN, field::Complex{});
      std::vector<field::Complex> scratch(kN * kN, field::Complex{});
      mg.apply_smoother(rhs, x, scratch, 3);
      std::vector<field::Complex> res(kN * kN, field::Complex{});
      mg.apply_residual(rhs, x, res);
      x.insert(x.end(), res.begin(), res.end());
      return x;
    };
    const auto want = run(Level::scalar);
    const auto got = run(GetParam());
    EXPECT_LT(max_rel_diff(got, want), 1e-12)
        << (smoother == field::MultigridOptions::Smoother::red_black_gs ? "rbgs" : "jacobi");
  }
}

TEST_P(SmootherSweep, VCycleMatchesScalar) {
  const auto dir = make_dirichlet();
  const auto eps = make_eps(dir);
  const field::Multigrid mg(kN, kN, dir, eps, field::MultigridOptions{});
  const auto rhs = make_rhs(9);

  const auto run = [&](Level level) {
    simd::ScopedLevel guard(level);
    auto ws = mg.make_workspace();
    std::vector<field::Complex> z(kN * kN, field::Complex{});
    mg.v_cycle(rhs, z, ws);
    return z;
  };
  const auto want = run(Level::scalar);
  const auto got = run(GetParam());
  EXPECT_LT(max_rel_diff(got, want), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Levels, LevelSweep,
                         ::testing::Values(Level::scalar, Level::popcnt, Level::avx2,
                                           Level::avx512),
                         [](const ::testing::TestParamInfo<Level>& info) {
                           return std::string(simd::level_name(info.param));
                         });
INSTANTIATE_TEST_SUITE_P(Levels, SmootherSweep,
                         ::testing::Values(Level::scalar, Level::popcnt, Level::avx2,
                                           Level::avx512),
                         [](const ::testing::TestParamInfo<Level>& info) {
                           return std::string(simd::level_name(info.param));
                         });

}  // namespace
