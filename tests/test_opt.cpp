// Unit tests for the generic simulated-annealing engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "opt/annealing.hpp"

namespace {

using namespace tsvcod::opt;

// Toy problem: sort a permutation by minimizing sum |pi(i) - i|.
double displacement(const std::vector<int>& p) {
  double e = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) e += std::abs(p[i] - static_cast<int>(i));
  return e;
}

std::vector<int> swap_neighbor(const std::vector<int>& p, std::mt19937_64& rng) {
  auto q = p;
  std::uniform_int_distribution<std::size_t> pick(0, p.size() - 1);
  std::swap(q[pick(rng)], q[pick(rng)]);
  return q;
}

TEST(Anneal, SolvesToyPermutationProblem) {
  std::mt19937_64 rng(1);
  std::vector<int> init(12);
  std::iota(init.begin(), init.end(), 0);
  std::shuffle(init.begin(), init.end(), rng);

  AnnealingSchedule sched;
  sched.iterations = 20000;
  sched.restarts = 2;
  AnnealingResult res;
  const auto best = anneal(init, displacement, swap_neighbor, sched, rng, &res);
  EXPECT_DOUBLE_EQ(res.energy, 0.0);
  EXPECT_DOUBLE_EQ(displacement(best), 0.0);
  EXPECT_GT(res.accepted_moves, 0u);
  EXPECT_GT(res.evaluations, 0u);
}

TEST(Anneal, DeterministicForFixedSeed) {
  AnnealingSchedule sched;
  sched.iterations = 2000;
  std::vector<int> init{5, 3, 1, 0, 2, 4};
  std::mt19937_64 rng_a(7), rng_b(7);
  const auto a = anneal(init, displacement, swap_neighbor, sched, rng_a);
  const auto b = anneal(init, displacement, swap_neighbor, sched, rng_b);
  EXPECT_EQ(a, b);
}

TEST(Anneal, FlatLandscapeIsSafe) {
  // Constant energy: auto temperature calibration must not divide by zero.
  std::mt19937_64 rng(3);
  AnnealingSchedule sched;
  sched.iterations = 100;
  const auto e = [](const std::vector<int>&) { return 1.0; };
  const auto best = anneal(std::vector<int>{1, 2, 3}, e, swap_neighbor, sched, rng);
  EXPECT_EQ(best.size(), 3u);
}

TEST(Anneal, NeverReturnsWorseThanInit) {
  std::mt19937_64 rng(5);
  std::vector<int> init(8);
  std::iota(init.begin(), init.end(), 0);  // already optimal
  AnnealingSchedule sched;
  sched.iterations = 500;
  AnnealingResult res;
  (void)anneal(init, displacement, swap_neighbor, sched, rng, &res);
  EXPECT_DOUBLE_EQ(res.energy, 0.0);
}

TEST(Anneal, RespectsExplicitStartTemperature) {
  std::mt19937_64 rng(9);
  AnnealingSchedule sched;
  sched.iterations = 5000;
  sched.t_start = 10.0;
  sched.restarts = 1;
  std::vector<int> init{3, 2, 1, 0};
  AnnealingResult res;
  (void)anneal(init, displacement, swap_neighbor, sched, rng, &res);
  EXPECT_DOUBLE_EQ(res.energy, 0.0);
}

}  // namespace
