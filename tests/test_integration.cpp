// Integration tests: cross-module consistency between the field extractor,
// the analytic model, the DBT theory, the codecs, the optimizer and the
// circuit simulator — the seams a unit test cannot cover.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "circuit/tsv_link_sim.hpp"
#include "coding/correlator.hpp"
#include "coding/gray.hpp"
#include "core/link.hpp"
#include "field/extractor.hpp"
#include "stats/dbt_model.hpp"
#include "streams/image_sensor.hpp"
#include "streams/random_streams.hpp"
#include "tsv/linear_model.hpp"

namespace {

using namespace tsvcod;

// The analytic model must agree with the field extractor on the *structure*
// the optimizer exploits: which couplings dominate, how the totals order,
// and the sign of the MOS sensitivity.
TEST(FieldVsAnalytic, StructuralAgreement2x3) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(2, 3);
  const std::vector<double> pr(6, 0.5);
  field::ExtractionOptions fo;
  fo.cell = 0.15e-6;
  const auto fd = field::extract_capacitance(geom, pr, fo);
  ASSERT_TRUE(fd.all_converged());
  const auto an = tsv::analytic_capacitance(geom, pr);

  const auto corner = geom.index(0, 0);
  const auto edge = geom.index(0, 1);
  for (const auto* c : {&fd.paper, &an}) {
    // Direct coupling beats diagonal coupling.
    EXPECT_GT((*c)(corner, edge), (*c)(corner, geom.index(1, 1)));
    // Corner-edge coupling is (essentially) the largest in the array; the FD
    // extraction puts the centre-column vertical pair within a few percent.
    double max_coupling = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = i + 1; j < 6; ++j) max_coupling = std::max(max_coupling, (*c)(i, j));
    }
    EXPECT_GT((*c)(corner, edge) / max_coupling, 0.85);
  }

  // MOS sensitivity (DeltaC) negative in both backends.
  const auto fd_model = tsv::fit_linear_model(
      [&](std::span<const double> p) { return field::extract_capacitance(geom, p, fo).paper; },
      6);
  const auto an_model = tsv::fit_from_analytic(geom);
  EXPECT_LT(fd_model.delta_c()(corner, edge), 0.0);
  EXPECT_LT(an_model.delta_c()(corner, edge), 0.0);

  // Magnitudes within a factor ~4 (different dimensionality/BCs).
  const double ratio = an(corner, edge) / fd.paper(corner, edge);
  EXPECT_GT(ratio, 0.25);
  EXPECT_LT(ratio, 4.0);
}

// The analytic DBT model and the measured statistics of an AR(1) stream must
// agree on the quantities the systematic mappings rely on.
TEST(DbtVsMeasured, Ar1StreamMatchesTheory) {
  stats::DbtParams p;
  p.width = 16;
  p.sigma = 1500.0;
  p.rho = 0.5;
  const auto theory = stats::dbt_stats(p);

  streams::GaussianAr1Stream src(16, p.sigma, p.rho, 31);
  stats::StatsAccumulator acc(16);
  for (int i = 0; i < 200000; ++i) acc.add(src.next());
  const auto measured = acc.finish();

  // Sign-bit region: activity and pairwise correlation.
  EXPECT_NEAR(measured.self[15], theory.self[15], 0.03);
  EXPECT_NEAR(measured.coupling(15, 14), theory.coupling(15, 14), 0.08);
  // LSB region: coin flips.
  EXPECT_NEAR(measured.self[1], 0.5, 0.02);
  EXPECT_NEAR(measured.coupling(1, 2), 0.0, 0.02);
  // The DBT-based ranks agree with measured ranks on who the MSBs are.
  const auto rank_theory = core::rank_by_correlation(theory);
  const auto rank_measured = core::rank_by_correlation(measured);
  EXPECT_GE(rank_theory[0], 13u);
  EXPECT_GE(rank_measured[0], 13u);
}

// Systematic assignment chosen from DBT theory (no sample stream!) must be
// nearly as good as one chosen from measured statistics.
TEST(DbtVsMeasured, TheoryDrivenSawtoothIsCompetitive) {
  auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(4, 4);
  const core::Link link(geom);

  streams::GaussianAr1Stream src(16, 800.0, 0.0, 9);
  const auto measured = [&] {
    stats::StatsAccumulator acc(16);
    for (int i = 0; i < 100000; ++i) acc.add(src.next());
    return acc.finish();
  }();

  stats::DbtParams p;
  p.width = 16;
  p.sigma = 800.0;
  p.rho = 0.0;
  const auto theory = stats::dbt_stats(p);

  const auto st_measured = core::sawtooth_assignment(geom, measured);
  const auto st_theory = core::sawtooth_assignment(geom, theory);
  const double pm = link.power(measured, st_measured);
  const double pt = link.power(measured, st_theory);
  EXPECT_NEAR(pt / pm, 1.0, 0.03);
}

// Full pipeline: encode -> assign -> transmit -> unassign -> decode is
// lossless, and the optimized chain never loses to the identity chain.
TEST(Pipeline, GrayPlusAssignmentRoundTripAndWin) {
  auto geom = phys::TsvArrayGeometry::itrs2018_relaxed(4, 4);
  const core::Link link(geom);

  streams::GaussianAr1Stream src(16, 400.0, 0.4, 13);
  coding::GrayCodec enc(16);
  std::vector<std::uint64_t> raw, coded;
  for (int i = 0; i < 30000; ++i) {
    raw.push_back(src.next());
    coded.push_back(enc.encode(raw.back()));
  }
  const auto st = stats::compute_stats(coded, 16);
  core::OptimizeOptions opts;
  opts.schedule.iterations = 10000;
  const auto best = core::optimize_assignment(st, link.model(), opts);

  // Lossless recovery through the full chain.
  coding::GrayCodec dec(16);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::uint64_t on_lines = best.assignment.apply_word(coded[i]);
    std::uint64_t back = 0;
    for (std::size_t bit = 0; bit < 16; ++bit) {
      const std::uint64_t v = (on_lines >> best.assignment.line_of_bit(bit)) & 1u;
      back |= (v ^ (best.assignment.inverted(bit) ? 1u : 0u)) << bit;
    }
    ASSERT_EQ(dec.decode(back), raw[i]) << "at word " << i;
  }

  const double p_id = link.power(st, core::SignedPermutation::identity(16));
  EXPECT_LT(best.power, p_id);
}

// Matrix model and circuit simulation must agree on the *direction* of every
// assignment comparison (this is how Fig. 6 validates Eq. 10).
TEST(ModelVsCircuit, ReductionDirectionsAgree) {
  auto geom = phys::TsvArrayGeometry::itrs2018_min(3, 3);
  const core::Link link(geom);

  streams::BayerMuxStream rgb;
  std::vector<std::uint64_t> words = streams::collect(rgb, 12000);
  const auto st = stats::compute_stats(words, 9);

  core::OptimizeOptions opts;
  opts.schedule.iterations = 8000;
  const auto best = core::optimize_assignment(st, link.model(), opts);
  const auto identity = core::SignedPermutation::identity(9);

  const auto circuit_power = [&](const core::SignedPermutation& a) {
    const auto line_stats = a.apply(st);
    const auto cap = link.model().evaluate_eps(line_stats.eps());
    std::vector<std::uint64_t> line_words;
    for (std::size_t i = 0; i < 1500; ++i) line_words.push_back(a.apply_word(words[i]));
    circuit::SimOptions so;
    so.steps_per_cycle = 24;
    return circuit::simulate_link(geom, cap, line_words, {}, so).dynamic_power;
  };

  const double model_gain = 1.0 - best.power / link.power(st, identity);
  const double circ_gain = 1.0 - circuit_power(best.assignment) / circuit_power(identity);
  EXPECT_GT(model_gain, 0.0);
  EXPECT_GT(circ_gain, 0.0);
  // Same direction and same order of magnitude.
  EXPECT_NEAR(circ_gain / model_gain, 1.0, 0.6);
}

// Correlator + inversion mask inside the codec equals correlator + inversion
// in the assignment: the paper's "hide the inverters in the coder" claim.
TEST(Pipeline, InversionInCodecEqualsInversionInAssignment) {
  const std::uint64_t mask = 0xA5;
  coding::CorrelatorCodec with_mask(8, 2, mask);
  coding::CorrelatorCodec plain(8, 2);
  std::mt19937_64 rng(5);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = rng() & 0xFF;
    EXPECT_EQ(with_mask.encode(x), plain.encode(x) ^ mask);
  }
}

// Statistics under the codec-mask realization match the assignment-inversion
// transform, so the optimizer's prediction holds for the XNOR realization.
TEST(Pipeline, CodecMaskStatsMatchAssignmentTransform) {
  streams::GaussianAr1Stream src(8, 40.0, 0.3, 3);
  coding::GrayCodec enc_plain(8);
  const std::uint64_t mask = 0xC0;
  coding::GrayCodec enc_mask(8, mask);

  stats::StatsAccumulator acc_plain(8), acc_mask(8);
  for (int i = 0; i < 30000; ++i) {
    const auto x = src.next();
    acc_plain.add(enc_plain.encode(x));
    acc_mask.add(enc_mask.encode(x));
  }
  // Assignment that only inverts the mask bits.
  auto inv = core::SignedPermutation::identity(8);
  inv.toggle_inversion(6);
  inv.toggle_inversion(7);
  const auto transformed = inv.apply(acc_plain.finish());
  const auto measured = acc_mask.finish();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(transformed.prob_one[i], measured.prob_one[i], 1e-12);
    EXPECT_NEAR(transformed.self[i], measured.self[i], 1e-12);
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(transformed.coupling(i, j), measured.coupling(i, j), 1e-12);
    }
  }
}

}  // namespace
