#pragma once
// Correlator / decorrelator codec (paper Sec. 7, third data stream).
//
// For time-multiplexed channels (e.g. R, G1, G2, B colors sharing one link)
// the temporal correlation *within* a channel is invisible on the wire. The
// correlator restores it: each new value is XORed bitwise with the previous
// value of the *same channel* (`period` cycles back) before transmission.
// Highly correlated consecutive channel values then produce MSBs nearly
// stable at 0 — switching drops, and with the inversion mask (XOR -> XNOR,
// zero cost) the 1-bit probabilities can be raised back up for the TSV MOS
// effect, exactly as the paper's combined scheme does.

#include <vector>

#include "coding/codec.hpp"

namespace tsvcod::coding {

class CorrelatorCodec final : public Codec {
 public:
  /// `period`: number of multiplexed channels (1 = plain differential-XOR).
  CorrelatorCodec(std::size_t width, std::size_t period, std::uint64_t inversion_mask = 0);

  std::size_t width_in() const override { return width_; }
  std::size_t width_out() const override { return width_; }
  std::uint64_t encode(std::uint64_t word) override;
  std::uint64_t decode(std::uint64_t code) override;
  void reset() override;
  std::unique_ptr<Codec> clone() const override {
    return std::make_unique<CorrelatorCodec>(*this);
  }

  /// Widest supported word; the code is width-preserving.
  static constexpr std::size_t kMaxWidth = 64;

 private:
  std::size_t width_;
  std::size_t period_;
  std::uint64_t mask_;
  std::vector<std::uint64_t> enc_history_;
  std::vector<std::uint64_t> dec_history_;
  std::size_t enc_pos_ = 0;
  std::size_t dec_pos_ = 0;
};

}  // namespace tsvcod::coding
