#include "coding/bus_invert.hpp"

#include <bit>
#include <stdexcept>

namespace tsvcod::coding {

BusInvertCodec::BusInvertCodec(std::size_t width) : width_(width) {
  if (width == 0 || width > kMaxWidth) {
    throw std::invalid_argument("BusInvertCodec: width " + std::to_string(width) +
                                " out of range [1, " + std::to_string(kMaxWidth) +
                                "] (the invert flag occupies one extra line)");
  }
}

std::uint64_t BusInvertCodec::encode(std::uint64_t word) {
  word &= streams::width_mask(width_);
  const int toggles = std::popcount(word ^ prev_out_);
  const bool invert = toggles > static_cast<int>(width_) / 2;
  const std::uint64_t data = invert ? (~word & streams::width_mask(width_)) : word;
  prev_out_ = data;
  return data | (static_cast<std::uint64_t>(invert) << width_);
}

std::uint64_t BusInvertCodec::decode(std::uint64_t code) {
  const bool invert = (code >> width_) & 1u;
  const std::uint64_t data = code & streams::width_mask(width_);
  return invert ? (~data & streams::width_mask(width_)) : data;
}

void BusInvertCodec::reset() { prev_out_ = 0; }

CouplingInvertCodec::CouplingInvertCodec(std::size_t width, double lambda)
    : width_(width), lambda_(lambda) {
  if (width == 0 || width > kMaxWidth) {
    throw std::invalid_argument("CouplingInvertCodec: width " + std::to_string(width) +
                                " out of range [1, " + std::to_string(kMaxWidth) +
                                "] (the invert flag occupies one extra line)");
  }
  if (lambda < 0.0) throw std::invalid_argument("CouplingInvertCodec: lambda must be >= 0");
}

double CouplingInvertCodec::transition_cost(std::uint64_t from, std::uint64_t to) const {
  const std::size_t lines = width_ + 1;  // data + flag, laid out side by side
  double cost = 0.0;
  int prev_db = 0;
  for (std::size_t i = 0; i < lines; ++i) {
    const int db = static_cast<int>((to >> i) & 1u) - static_cast<int>((from >> i) & 1u);
    cost += static_cast<double>(db * db);
    if (i > 0) {
      const int d = db - prev_db;
      cost += lambda_ * static_cast<double>(d * d);
    }
    prev_db = db;
  }
  return cost;
}

std::uint64_t CouplingInvertCodec::encode(std::uint64_t word) {
  word &= streams::width_mask(width_);
  const std::uint64_t plain = word;
  const std::uint64_t flipped =
      (~word & streams::width_mask(width_)) | (std::uint64_t{1} << width_);
  const double cost_plain = transition_cost(prev_code_, plain);
  const double cost_flipped = transition_cost(prev_code_, flipped);
  prev_code_ = cost_flipped < cost_plain ? flipped : plain;
  return prev_code_;
}

std::uint64_t CouplingInvertCodec::decode(std::uint64_t code) {
  const bool invert = (code >> width_) & 1u;
  const std::uint64_t data = code & streams::width_mask(width_);
  return invert ? (~data & streams::width_mask(width_)) : data;
}

void CouplingInvertCodec::reset() { prev_code_ = 0; }

}  // namespace tsvcod::coding
