#include "coding/gray.hpp"

#include <stdexcept>

namespace tsvcod::coding {

GrayCodec::GrayCodec(std::size_t width, std::uint64_t inversion_mask)
    : width_(width), mask_(inversion_mask & streams::width_mask(width)) {
  if (width == 0 || width > kMaxWidth) {
    throw std::invalid_argument("GrayCodec: width " + std::to_string(width) +
                                " out of range [1, " + std::to_string(kMaxWidth) + "]");
  }
}

std::uint64_t GrayCodec::binary_to_gray(std::uint64_t b) { return b ^ (b >> 1); }

std::uint64_t GrayCodec::gray_to_binary(std::uint64_t g, std::size_t width) {
  std::uint64_t b = 0;
  for (std::size_t shift = 0; shift < width; ++shift) b ^= g >> shift;
  return b & streams::width_mask(width);
}

std::uint64_t GrayCodec::encode(std::uint64_t word) {
  word &= streams::width_mask(width_);
  return (binary_to_gray(word) ^ mask_) & streams::width_mask(width_);
}

std::uint64_t GrayCodec::decode(std::uint64_t code) {
  code = (code ^ mask_) & streams::width_mask(width_);
  return gray_to_binary(code, width_);
}

}  // namespace tsvcod::coding
