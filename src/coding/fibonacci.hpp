#pragma once
// Fibonacci-numeral-system (FNS) crosstalk-avoidance code (the class of
// TSV codes in the paper's references [13-15]).
//
// Every value has a unique Zeckendorf representation: a sum of
// non-consecutive Fibonacci numbers, i.e. a codeword with **no two adjacent
// 1s**. On a linear bus this forbids the worst opposite-transition overlap
// patterns, improving signal integrity — at the cost of ~1.44x more lines.
// The paper's Sec. 1 argument against this family ("improve the signal
// integrity but also increase the TSV count, leading to an even increased
// overall TSV power consumption") is reproduced in bench/cac_comparison.

#include <vector>

#include "coding/codec.hpp"

namespace tsvcod::coding {

class FibonacciCodec final : public Codec {
 public:
  /// Codes `width_in`-bit binary values; the output width is the smallest N
  /// with F(N+2) - 1 >= 2^width_in - 1 (about 1.44x width_in).
  explicit FibonacciCodec(std::size_t width_in);

  std::size_t width_in() const override { return width_in_; }
  std::size_t width_out() const override { return fibs_.size(); }
  std::uint64_t encode(std::uint64_t word) override;
  std::uint64_t decode(std::uint64_t code) override;
  void reset() override {}
  std::unique_ptr<Codec> clone() const override {
    return std::make_unique<FibonacciCodec>(*this);
  }

  /// Widest supported payload: ~1.44x expansion must stay within 63 output
  /// lines (a 64-bit code word with headroom for the Zeckendorf ladder).
  static constexpr std::size_t kMaxWidth = 40;

  /// True iff the codeword has no two adjacent 1s (the CAC invariant).
  static bool is_forbidden_pattern_free(std::uint64_t code);

 private:
  std::size_t width_in_;
  std::vector<std::uint64_t> fibs_;  ///< F(2), F(3), ... (1, 2, 3, 5, ...)
};

}  // namespace tsvcod::coding
