#include "coding/correlator.hpp"

#include <stdexcept>

namespace tsvcod::coding {

CorrelatorCodec::CorrelatorCodec(std::size_t width, std::size_t period,
                                 std::uint64_t inversion_mask)
    : width_(width),
      period_(period),
      mask_(inversion_mask & streams::width_mask(width)),
      enc_history_(period, 0),
      dec_history_(period, 0) {
  if (width == 0 || width > kMaxWidth) {
    throw std::invalid_argument("CorrelatorCodec: width " + std::to_string(width) +
                                " out of range [1, " + std::to_string(kMaxWidth) + "]");
  }
  if (period == 0) throw std::invalid_argument("CorrelatorCodec: period must be > 0");
}

std::uint64_t CorrelatorCodec::encode(std::uint64_t word) {
  word &= streams::width_mask(width_);
  const std::uint64_t prev = enc_history_[enc_pos_];
  enc_history_[enc_pos_] = word;
  enc_pos_ = (enc_pos_ + 1) % period_;
  return (word ^ prev ^ mask_) & streams::width_mask(width_);
}

std::uint64_t CorrelatorCodec::decode(std::uint64_t code) {
  code &= streams::width_mask(width_);
  const std::uint64_t prev = dec_history_[dec_pos_];
  const std::uint64_t word = (code ^ mask_ ^ prev) & streams::width_mask(width_);
  dec_history_[dec_pos_] = word;
  dec_pos_ = (dec_pos_ + 1) % period_;
  return word;
}

void CorrelatorCodec::reset() {
  enc_history_.assign(period_, 0);
  dec_history_.assign(period_, 0);
  enc_pos_ = dec_pos_ = 0;
}

}  // namespace tsvcod::coding
