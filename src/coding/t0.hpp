#pragma once
// T0 low-power address-bus code.
//
// Classic T0 (Benini et al.): when the value to transmit equals the previous
// value plus a fixed stride (the common case on instruction-address buses),
// the data lines are frozen and a dedicated INC line signals "increment":
// in-sequence runs cause zero switching on the data lines. Combined with the
// bit-to-TSV assignment this gives the sequential-stream workloads of Fig. 2
// a second, orthogonal power lever.

#include "coding/codec.hpp"

namespace tsvcod::coding {

class T0Codec final : public Codec {
 public:
  explicit T0Codec(std::size_t width, std::uint64_t stride = 1);

  std::size_t width_in() const override { return width_; }
  std::size_t width_out() const override { return width_ + 1; }  // + INC line
  std::uint64_t encode(std::uint64_t word) override;
  std::uint64_t decode(std::uint64_t code) override;
  void reset() override;
  std::unique_ptr<Codec> clone() const override { return std::make_unique<T0Codec>(*this); }

  /// The INC flag occupies line `width`: 63 payload bits max.
  static constexpr std::size_t kMaxWidth = 63;

 private:
  std::size_t width_;
  std::uint64_t stride_;
  bool enc_primed_ = false;
  std::uint64_t enc_last_value_ = 0;
  std::uint64_t enc_frozen_lines_ = 0;
  bool dec_primed_ = false;
  std::uint64_t dec_last_value_ = 0;
};

}  // namespace tsvcod::coding
