#include "coding/factory.hpp"

#include <stdexcept>

#include "coding/bus_invert.hpp"
#include "coding/correlator.hpp"
#include "coding/fibonacci.hpp"
#include "coding/gray.hpp"
#include "coding/t0.hpp"

namespace tsvcod::coding {

namespace {

enum class Kind { gray, correlator, bus_invert, coupling_invert, t0, fibonacci };

Kind kind_of(const std::string& name) {
  if (name == "gray") return Kind::gray;
  if (name == "correlator") return Kind::correlator;
  if (name == "bus-invert") return Kind::bus_invert;
  if (name == "coupling-invert") return Kind::coupling_invert;
  if (name == "t0") return Kind::t0;
  if (name == "fibonacci") return Kind::fibonacci;
  std::string known;
  for (const auto& n : codec_names()) {
    if (!known.empty()) known += '|';
    known += n;
  }
  throw std::invalid_argument("unknown codec '" + name + "' (use " + known + ")");
}

void check_width(const std::string& name, std::size_t width_in, std::size_t max_width) {
  if (width_in == 0 || width_in > max_width) {
    throw std::invalid_argument("codec '" + name + "': width " + std::to_string(width_in) +
                                " out of range [1, " + std::to_string(max_width) + "]");
  }
}

}  // namespace

const std::vector<std::string>& codec_names() {
  static const std::vector<std::string> names{"gray",            "correlator", "bus-invert",
                                              "coupling-invert", "t0",         "fibonacci"};
  return names;
}

std::size_t codec_max_width(const std::string& name) {
  switch (kind_of(name)) {
    case Kind::gray: return GrayCodec::kMaxWidth;
    case Kind::correlator: return CorrelatorCodec::kMaxWidth;
    case Kind::bus_invert: return BusInvertCodec::kMaxWidth;
    case Kind::coupling_invert: return CouplingInvertCodec::kMaxWidth;
    case Kind::t0: return T0Codec::kMaxWidth;
    case Kind::fibonacci: return FibonacciCodec::kMaxWidth;
  }
  throw std::logic_error("codec_max_width: unreachable");
}

std::size_t codec_extra_lines(const std::string& name) {
  switch (kind_of(name)) {
    case Kind::gray:
    case Kind::correlator:
    case Kind::fibonacci: return 0;
    case Kind::bus_invert:
    case Kind::coupling_invert:
    case Kind::t0: return 1;
  }
  throw std::logic_error("codec_extra_lines: unreachable");
}

std::unique_ptr<Codec> make_codec(const CodecSpec& spec, std::size_t width_in) {
  const Kind kind = kind_of(spec.name);
  // Validate here so the caller gets the codec's *own* limit in the message
  // even before the constructor runs (the constructors double-check).
  check_width(spec.name, width_in, codec_max_width(spec.name));
  switch (kind) {
    case Kind::gray: return std::make_unique<GrayCodec>(width_in, spec.inversion_mask);
    case Kind::correlator:
      return std::make_unique<CorrelatorCodec>(width_in, spec.period, spec.inversion_mask);
    case Kind::bus_invert: return std::make_unique<BusInvertCodec>(width_in);
    case Kind::coupling_invert:
      return std::make_unique<CouplingInvertCodec>(width_in, spec.lambda);
    case Kind::t0: return std::make_unique<T0Codec>(width_in, spec.stride);
    case Kind::fibonacci: return std::make_unique<FibonacciCodec>(width_in);
  }
  throw std::logic_error("make_codec: unreachable");
}

std::unique_ptr<Codec> make_codec_for_lines(const CodecSpec& spec, std::size_t lines) {
  if (kind_of(spec.name) == Kind::fibonacci) {
    // The Zeckendorf ladder grows irregularly; search the payload width whose
    // output hits `lines` exactly.
    for (std::size_t w = 1; w <= FibonacciCodec::kMaxWidth; ++w) {
      auto c = std::make_unique<FibonacciCodec>(w);
      if (c->width_out() == lines) return c;
      if (c->width_out() > lines) break;
    }
    throw std::invalid_argument("codec 'fibonacci': no payload width codes onto exactly " +
                                std::to_string(lines) + " lines");
  }
  const std::size_t extra = codec_extra_lines(spec.name);
  if (lines <= extra) {
    throw std::invalid_argument("codec '" + spec.name + "': " + std::to_string(lines) +
                                " lines leave no payload (needs " + std::to_string(extra + 1) +
                                "+)");
  }
  return make_codec(spec, lines - extra);
}

}  // namespace tsvcod::coding
