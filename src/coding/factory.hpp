#pragma once
// Name-based codec construction with per-codec width validation.
//
// The CLI and the correctness harness build codecs from user-supplied
// strings; each codec family has its own width ceiling (flag-extending codecs
// lose one line to the flag, Fibonacci expands ~1.44x). Constructing through
// this factory guarantees the error message names the codec and its actual
// limit instead of a generic "bad width".

#include <memory>
#include <string>
#include <vector>

#include "coding/codec.hpp"

namespace tsvcod::coding {

/// Parameters beyond the payload width; unused fields are ignored by codecs
/// that do not take them.
struct CodecSpec {
  std::string name;                 ///< gray | correlator | bus-invert | coupling-invert | t0 | fibonacci
  std::size_t period = 1;           ///< correlator channel count
  std::uint64_t stride = 1;         ///< t0 address stride
  double lambda = 2.0;              ///< coupling-invert coupling weight
  std::uint64_t inversion_mask = 0; ///< gray / correlator per-line inversions
};

/// All names the factory accepts, for help texts and the harness.
const std::vector<std::string>& codec_names();

/// Widest payload the named codec accepts. Throws std::invalid_argument on an
/// unknown name.
std::size_t codec_max_width(const std::string& name);

/// Lines the code word occupies beyond the payload (1 for flag-extending
/// codecs, 0 for width-preserving ones; Fibonacci reports 0 — its expansion
/// is width-dependent and resolved by make_codec_for_lines).
std::size_t codec_extra_lines(const std::string& name);

/// Build a codec for `width_in` payload bits. Throws std::invalid_argument
/// naming the codec and its maximum width when the width is out of range.
std::unique_ptr<Codec> make_codec(const CodecSpec& spec, std::size_t width_in);

/// Build a codec whose *output* occupies exactly `lines` TSVs (the usual CLI
/// situation: the array size is fixed and the payload width follows from it).
std::unique_ptr<Codec> make_codec_for_lines(const CodecSpec& spec, std::size_t lines);

}  // namespace tsvcod::coding
