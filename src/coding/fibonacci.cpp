#include "coding/fibonacci.hpp"

#include <stdexcept>

namespace tsvcod::coding {

FibonacciCodec::FibonacciCodec(std::size_t width_in) : width_in_(width_in) {
  if (width_in == 0 || width_in > kMaxWidth) {
    throw std::invalid_argument("FibonacciCodec: width " + std::to_string(width_in) +
                                " out of range [1, " + std::to_string(kMaxWidth) + "]");
  }
  const std::uint64_t max_value = streams::width_mask(width_in);
  // Fibonacci weights F2, F3, ... = 1, 2, 3, 5, ...; with weights up to F_k
  // the *non-adjacent* (Zeckendorf) representable range is [0, F_{k+1} - 1],
  // so extend the ladder until that covers max_value.
  std::uint64_t a = 1, b = 2;
  while (true) {
    fibs_.push_back(a);
    if (b - 1 >= max_value) break;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  if (fibs_.size() > 63) throw std::invalid_argument("FibonacciCodec: output too wide");
}

std::uint64_t FibonacciCodec::encode(std::uint64_t word) {
  std::uint64_t v = word & streams::width_mask(width_in_);
  std::uint64_t code = 0;
  // Greedy Zeckendorf, largest weight first; greedy choice guarantees the
  // next-lower weight is never also taken (no adjacent 1s).
  for (std::size_t k = fibs_.size(); k-- > 0;) {
    if (fibs_[k] <= v) {
      code |= std::uint64_t{1} << k;
      v -= fibs_[k];
    }
  }
  return code;
}

std::uint64_t FibonacciCodec::decode(std::uint64_t code) {
  std::uint64_t v = 0;
  for (std::size_t k = 0; k < fibs_.size(); ++k) {
    if ((code >> k) & 1u) v += fibs_[k];
  }
  return v & streams::width_mask(width_in_);
}

bool FibonacciCodec::is_forbidden_pattern_free(std::uint64_t code) {
  return (code & (code >> 1)) == 0;
}

}  // namespace tsvcod::coding
