#include "coding/t0.hpp"

#include <stdexcept>

namespace tsvcod::coding {

T0Codec::T0Codec(std::size_t width, std::uint64_t stride) : width_(width), stride_(stride) {
  if (width == 0 || width > kMaxWidth) {
    throw std::invalid_argument("T0Codec: width " + std::to_string(width) +
                                " out of range [1, " + std::to_string(kMaxWidth) +
                                "] (the INC flag occupies one extra line)");
  }
  if (stride == 0) throw std::invalid_argument("T0Codec: stride must be nonzero");
}

std::uint64_t T0Codec::encode(std::uint64_t word) {
  word &= streams::width_mask(width_);
  const std::uint64_t inc_bit = std::uint64_t{1} << width_;
  const bool in_sequence =
      enc_primed_ && word == ((enc_last_value_ + stride_) & streams::width_mask(width_));
  enc_last_value_ = word;
  enc_primed_ = true;
  if (in_sequence) {
    return enc_frozen_lines_ | inc_bit;  // data lines frozen, INC set
  }
  enc_frozen_lines_ = word;
  return word;
}

std::uint64_t T0Codec::decode(std::uint64_t code) {
  const bool inc = (code >> width_) & 1u;
  const std::uint64_t data = code & streams::width_mask(width_);
  std::uint64_t value;
  if (inc) {
    if (!dec_primed_) throw std::logic_error("T0Codec: INC before any absolute value");
    value = (dec_last_value_ + stride_) & streams::width_mask(width_);
  } else {
    value = data;
  }
  dec_last_value_ = value;
  dec_primed_ = true;
  return value;
}

void T0Codec::reset() {
  enc_primed_ = dec_primed_ = false;
  enc_last_value_ = dec_last_value_ = 0;
  enc_frozen_lines_ = 0;
}

}  // namespace tsvcod::coding
