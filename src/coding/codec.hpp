#pragma once
// Low-power codec interface (paper Sec. 6: combination with data encoding).
//
// A Codec maps an input word to a (possibly wider) code word each cycle and
// may keep history (correlator, bus-invert). Every codec supports an
// *inversion mask*: the fixed per-line negations demanded by the optimal
// bit-to-TSV assignment are folded into the encoder/decoder (e.g. swapping
// XORs for XNORs in a Gray coder), which is exactly how the paper realizes
// inversions at zero cost.

#include <cstdint>
#include <memory>

#include "streams/word_stream.hpp"

namespace tsvcod::coding {

class Codec {
 public:
  virtual ~Codec() = default;
  virtual std::size_t width_in() const = 0;
  virtual std::size_t width_out() const = 0;
  virtual std::uint64_t encode(std::uint64_t word) = 0;
  virtual std::uint64_t decode(std::uint64_t code) = 0;
  /// Clear any history (returns the codec to its power-on state).
  virtual void reset() = 0;
  /// Deep copy, history included. A transmitter/receiver pair is built by
  /// cloning one configured codec so the two endpoints can never disagree on
  /// parameters (width, period, stride, inversion mask).
  virtual std::unique_ptr<Codec> clone() const = 0;
};

/// Word stream that pushes an inner stream through a codec.
class EncodedStream final : public streams::WordStream {
 public:
  EncodedStream(std::unique_ptr<streams::WordStream> inner, std::unique_ptr<Codec> codec)
      : inner_(std::move(inner)), codec_(std::move(codec)) {
    if (!inner_ || !codec_) throw std::invalid_argument("EncodedStream: null argument");
    if (inner_->width() != codec_->width_in()) {
      throw std::invalid_argument("EncodedStream: stream/codec width mismatch");
    }
  }
  std::size_t width() const override { return codec_->width_out(); }
  std::uint64_t next() override { return codec_->encode(inner_->next()); }

 private:
  std::unique_ptr<streams::WordStream> inner_;
  std::unique_ptr<Codec> codec_;
};

}  // namespace tsvcod::coding
