#pragma once
// Bus-invert family codecs.
//
//  * BusInvertCodec — classic Stan/Burleson bus-invert: transmit the word or
//    its complement, whichever toggles fewer lines; one flag line is added.
//  * CouplingInvertCodec — coupling-driven invert for 2-D metal buses
//    (Palesi et al., paper reference [24]): the invert decision minimizes a
//    coupling-aware cost on *adjacent wire pairs* — the (db_i - db_j)^2
//    energy of a homogeneous planar bus plus the self term. The paper's last
//    experiment transmits such 2-D-encoded data over a TSV array, where the
//    code is intrinsically mismatched and our assignment recovers power.
//
// Both append the decision flag as the MSB of the output word.

#include "coding/codec.hpp"

namespace tsvcod::coding {

class BusInvertCodec final : public Codec {
 public:
  explicit BusInvertCodec(std::size_t width);

  std::size_t width_in() const override { return width_; }
  std::size_t width_out() const override { return width_ + 1; }
  std::uint64_t encode(std::uint64_t word) override;
  std::uint64_t decode(std::uint64_t code) override;
  void reset() override;
  std::unique_ptr<Codec> clone() const override {
    return std::make_unique<BusInvertCodec>(*this);
  }

  /// Widest supported payload: the invert flag occupies line `width`, and the
  /// full code word must still fit a 64-bit word, so 63 payload bits max
  /// (one less than the width-preserving codecs).
  static constexpr std::size_t kMaxWidth = 63;

 private:
  std::size_t width_;
  std::uint64_t prev_out_ = 0;  ///< previously transmitted data lines
};

class CouplingInvertCodec final : public Codec {
 public:
  /// Cost weights of the planar-bus model: lambda weighs coupling energy
  /// (db_i - db_j)^2 on adjacent pairs against self energy db_i^2.
  explicit CouplingInvertCodec(std::size_t width, double lambda = 2.0);

  std::size_t width_in() const override { return width_; }
  std::size_t width_out() const override { return width_ + 1; }
  std::uint64_t encode(std::uint64_t word) override;
  std::uint64_t decode(std::uint64_t code) override;
  void reset() override;
  std::unique_ptr<Codec> clone() const override {
    return std::make_unique<CouplingInvertCodec>(*this);
  }

  /// Same flag-line budget as BusInvertCodec: 63 payload bits max.
  static constexpr std::size_t kMaxWidth = 63;

  /// Planar-bus transition cost between consecutive code words (flag
  /// included as the top line). Exposed for tests.
  double transition_cost(std::uint64_t from, std::uint64_t to) const;

 private:
  std::size_t width_;
  double lambda_;
  std::uint64_t prev_code_ = 0;  ///< previous full code word (flag included)
};

}  // namespace tsvcod::coding
