#pragma once
// Gray coding with optional per-line inversion (paper Sec. 6).
//
// The binary-to-Gray encoder computes Y[n] = X[n] xor X[n+1]; for normally
// distributed data the spatially correlated MSBs become nearly stable at
// logical 0, which lowers switching but *also* lowers the 1-bit
// probabilities — bad for TSVs, where low probability means high MOS
// capacitance. The optimal assignment therefore transmits some Gray lines
// negated; swapping the corresponding XOR for an XNOR in coder and decoder
// realizes this at zero hardware cost. Here that is the `inversion_mask`.

#include "coding/codec.hpp"

namespace tsvcod::coding {

class GrayCodec final : public Codec {
 public:
  explicit GrayCodec(std::size_t width, std::uint64_t inversion_mask = 0);

  std::size_t width_in() const override { return width_; }
  std::size_t width_out() const override { return width_; }
  std::uint64_t encode(std::uint64_t word) override;
  std::uint64_t decode(std::uint64_t code) override;
  void reset() override {}
  std::unique_ptr<Codec> clone() const override { return std::make_unique<GrayCodec>(*this); }

  /// Widest supported word; the code is width-preserving.
  static constexpr std::size_t kMaxWidth = 64;

  /// Plain binary-reflected Gray conversion helpers.
  static std::uint64_t binary_to_gray(std::uint64_t b);
  static std::uint64_t gray_to_binary(std::uint64_t g, std::size_t width);

 private:
  std::size_t width_;
  std::uint64_t mask_;
};

}  // namespace tsvcod::coding
