#pragma once
// Uniform chunked access to word traces: text files, binary (.tsvb) files
// and in-memory vectors all surface as a WordSource, so Link::measure, the
// CLI and the statistics ingestion path consume any of them identically.
//
// Unlike WordStream (one word per simulated clock cycle, infinite replay), a
// WordSource is a *finite recorded trace* handed out as large contiguous
// spans. Chunks never overlap; the consumer carries the seam word between
// chunks itself (stats::compute_counts_primed does exactly that), so a
// source backed by an mmap'd binary trace is consumed zero-copy.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "streams/binary_trace.hpp"

namespace tsvcod::streams {

class WordSource {
 public:
  virtual ~WordSource() = default;

  /// Declared line width in bits (1..64).
  virtual std::size_t width() const = 0;
  /// Total words in the trace.
  virtual std::uint64_t size() const = 0;
  /// Bytes of backing store (file or vector) — the ingest byte counters.
  virtual std::uint64_t bytes() const = 0;
  /// Human-readable origin for error messages (a path for file sources).
  virtual const std::string& source() const = 0;

  /// Next contiguous run of words; empty exactly once the trace is
  /// exhausted. Spans stay valid for the lifetime of the source.
  virtual std::span<const std::uint64_t> next_chunk() = 0;
  /// Rewind so next_chunk() starts over from the first word.
  virtual void reset() = 0;
};

/// An owned in-memory trace.
class VectorWordSource final : public WordSource {
 public:
  VectorWordSource(std::vector<std::uint64_t> words, std::size_t width,
                   std::string source = "<memory>");

  std::size_t width() const override { return width_; }
  std::uint64_t size() const override { return words_.size(); }
  std::uint64_t bytes() const override { return words_.size() * sizeof(std::uint64_t); }
  const std::string& source() const override { return source_; }
  std::span<const std::uint64_t> next_chunk() override;
  void reset() override { done_ = false; }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t width_;
  std::string source_;
  bool done_ = false;
};

/// A memory-mapped .tsvb file. By default the whole payload is one chunk
/// (maximally parallel, zero-copy); `chunk_words` caps the chunk size, which
/// the tests use to drive the seam-word priming path hard.
class MappedTraceSource final : public WordSource {
 public:
  explicit MappedTraceSource(const std::string& path, std::size_t chunk_words = 0);

  const BinaryTraceHeader& header() const { return map_.header(); }
  std::size_t width() const override { return map_.header().width; }
  std::uint64_t size() const override { return map_.words().size(); }
  std::uint64_t bytes() const override { return map_.bytes(); }
  const std::string& source() const override { return map_.path(); }
  std::span<const std::uint64_t> next_chunk() override;
  void reset() override { pos_ = 0; }

 private:
  MappedTrace map_;
  std::size_t chunk_words_;
  std::size_t pos_ = 0;
};

/// Open `path` as whichever trace format it is: the .tsvb magic selects the
/// zero-copy mmap reader, anything else goes through the hardened text
/// parser. `width` 0 derives the width (binary: the header; text: the
/// widest word, at least 1); nonzero must match a binary header exactly and
/// every text word must fit it. Throws std::runtime_error naming the path.
std::unique_ptr<WordSource> open_word_source(const std::string& path, std::size_t width = 0);

/// Drain a whole source into a vector (resets it first; used by consumers
/// that genuinely need random access, e.g. stateful codec encoding).
std::vector<std::uint64_t> collect(WordSource& source);

}  // namespace tsvcod::streams
