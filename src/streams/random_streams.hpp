#pragma once
// Synthetic stochastic word streams (paper Sec. 4 workloads).
//
//  * UniformRandomStream — i.i.d. uniform words (activity 1/2, uncorrelated).
//  * GaussianAr1Stream   — two's-complement AR(1) Gaussian process; sweeping
//    sigma and rho generates the Fig. 3 pattern sets.
//  * SequentialStream    — an address/program-counter model: increment with
//    probability (1 - branch), jump uniformly otherwise; equally distributed
//    but temporally correlated, the Fig. 2 workload.

#include <cstdint>
#include <random>

#include "streams/word_stream.hpp"

namespace tsvcod::streams {

class UniformRandomStream final : public WordStream {
 public:
  UniformRandomStream(std::size_t width, std::uint64_t seed);
  std::size_t width() const override { return width_; }
  std::uint64_t next() override;

 private:
  std::size_t width_;
  std::mt19937_64 rng_;
};

class GaussianAr1Stream final : public WordStream {
 public:
  /// `sigma` and `mean` are in LSB counts of the two's-complement output.
  /// `rho` in (-1, 1) is the lag-1 autocorrelation. Samples are clamped to
  /// the representable range.
  GaussianAr1Stream(std::size_t width, double sigma, double rho, std::uint64_t seed,
                    double mean = 0.0);
  std::size_t width() const override { return width_; }
  std::uint64_t next() override;

  /// Two's-complement encoding helper for `width` bits (exposed for tests).
  static std::uint64_t encode_twos_complement(long long value, std::size_t width);

 private:
  std::size_t width_;
  double sigma_;
  double rho_;
  double mean_;
  double state_ = 0.0;  ///< unit-variance AR(1) state
  std::mt19937_64 rng_;
  std::normal_distribution<double> normal_{0.0, 1.0};
};

class SequentialStream final : public WordStream {
 public:
  /// `branch_probability` in [0, 1]: 0 = pure counter, 1 = uniform random.
  SequentialStream(std::size_t width, double branch_probability, std::uint64_t seed);
  std::size_t width() const override { return width_; }
  std::uint64_t next() override;

 private:
  std::size_t width_;
  double branch_probability_;
  std::uint64_t state_ = 0;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uni_{0.0, 1.0};
};

}  // namespace tsvcod::streams
