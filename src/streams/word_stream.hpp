#pragma once
// Word-stream abstraction and composition utilities.
//
// A WordStream produces one word per clock cycle; bit 0 is the LSB and is
// transmitted on "line 0" before any bit-to-TSV assignment. All the paper's
// workloads (image sensors, MEMS sensors, sequential addresses, encoded
// streams) implement this interface, so statistics gathering, assignment
// optimization and circuit simulation are workload-agnostic.

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

namespace tsvcod::streams {

class WordStream {
 public:
  virtual ~WordStream() = default;
  virtual std::size_t width() const = 0;
  /// Produce the next word (bits above width() must be zero).
  virtual std::uint64_t next() = 0;
};

/// Replays a recorded word sequence (wraps around at the end).
class TraceStream final : public WordStream {
 public:
  TraceStream(std::vector<std::uint64_t> words, std::size_t width);
  std::size_t width() const override { return width_; }
  std::uint64_t next() override;

 private:
  std::vector<std::uint64_t> words_;
  std::size_t width_;
  std::size_t pos_ = 0;
};

/// Description of a stable line appended above a payload stream.
struct StableLine {
  bool value = false;       ///< constant logical level
  bool invertible = true;   ///< power/ground lines must not be inverted
};

/// Appends constant (stable) lines above an inner stream: redundant TSVs,
/// enable lines parked at a level, and power/ground TSVs (paper Sec. 5.1).
class StableLinesStream final : public WordStream {
 public:
  StableLinesStream(std::unique_ptr<WordStream> inner, std::vector<StableLine> lines);
  std::size_t width() const override;
  std::uint64_t next() override;
  const std::vector<StableLine>& lines() const { return lines_; }
  std::size_t inner_width() const { return inner_->width(); }

 private:
  std::unique_ptr<WordStream> inner_;
  std::vector<StableLine> lines_;
};

/// Adds an enable line as the MSB and inserts idle gaps: `active_length`
/// payload words (enable = 1) alternate with `idle_length` cycles where the
/// payload is gated to zero and enable = 0. Models the "almost stable" enable
/// signals of the paper's sensor links.
class FramedStream final : public WordStream {
 public:
  FramedStream(std::unique_ptr<WordStream> inner, std::size_t active_length,
               std::size_t idle_length);
  std::size_t width() const override;
  std::uint64_t next() override;

 private:
  std::unique_ptr<WordStream> inner_;
  std::size_t active_length_;
  std::size_t idle_length_;
  std::size_t phase_ = 0;
};

/// Round-robin time multiplexing of equal-width streams (paper Sec. 5.2:
/// "regular pattern-by-pattern multiplexing").
class MuxStream final : public WordStream {
 public:
  explicit MuxStream(std::vector<std::unique_ptr<WordStream>> inputs);
  std::size_t width() const override;
  std::uint64_t next() override;

 private:
  std::vector<std::unique_ptr<WordStream>> inputs_;
  std::size_t turn_ = 0;
};

/// Drain `count` words from a stream into a vector.
std::vector<std::uint64_t> collect(WordStream& stream, std::size_t count);

/// Mask for the low `width` bits.
constexpr std::uint64_t width_mask(std::size_t width) {
  return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

}  // namespace tsvcod::streams
