#pragma once
// Word-trace file I/O.
//
// Lets users feed *real* captured bus traces (the paper used camera images
// and smartphone sensor logs) into the optimizer without recompiling:
// one word per line, hexadecimal with 0x prefix or decimal, '#' comments
// and blank lines ignored. CRLF line endings and a final line without a
// trailing newline parse identically to plain LF. An optional `words <N>`
// directive (at most one; save_trace emits it) declares the word count, and
// a file whose actual count disagrees is rejected as truncated/padded.

#include <iosfwd>
#include <string>
#include <vector>

#include "streams/word_stream.hpp"

namespace tsvcod::streams {

/// Parse a trace; throws std::runtime_error on malformed lines. The error
/// message names `source` (a file path for load_trace) plus the line number
/// and byte offset of the offending token.
std::vector<std::uint64_t> parse_trace(std::istream& is, const std::string& source = "<stream>");
std::vector<std::uint64_t> load_trace(const std::string& path);

void save_trace(std::ostream& os, std::span<const std::uint64_t> words);
void save_trace(const std::string& path, std::span<const std::uint64_t> words);

/// Convenience: load a trace file straight into a replaying stream.
TraceStream load_trace_stream(const std::string& path, std::size_t width);

}  // namespace tsvcod::streams
