#include "streams/word_source.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>

#include "streams/trace_io.hpp"
#include "streams/word_stream.hpp"

namespace tsvcod::streams {

VectorWordSource::VectorWordSource(std::vector<std::uint64_t> words, std::size_t width,
                                   std::string source)
    : words_(std::move(words)), width_(width), source_(std::move(source)) {
  if (width_ == 0 || width_ > 64) {
    throw std::runtime_error("word_source: " + source_ + ": width " + std::to_string(width_) +
                             " out of range [1, 64]");
  }
}

std::span<const std::uint64_t> VectorWordSource::next_chunk() {
  if (done_) return {};
  done_ = true;
  return words_;
}

MappedTraceSource::MappedTraceSource(const std::string& path, std::size_t chunk_words)
    : map_(path), chunk_words_(chunk_words) {}

std::span<const std::uint64_t> MappedTraceSource::next_chunk() {
  const auto words = map_.words();
  if (pos_ >= words.size()) return {};
  const std::size_t take = chunk_words_ == 0 ? words.size() - pos_
                                             : std::min(chunk_words_, words.size() - pos_);
  const auto chunk = words.subspan(pos_, take);
  pos_ += take;
  return chunk;
}

std::unique_ptr<WordSource> open_word_source(const std::string& path, std::size_t width) {
  if (file_looks_like_binary_trace(path)) {
    auto source = std::make_unique<MappedTraceSource>(path);
    if (width != 0 && source->width() != width) {
      std::ostringstream os;
      os << "word_source: " << path << ": binary trace width " << source->width()
         << " does not match the requested width " << width;
      throw std::runtime_error(os.str());
    }
    return source;
  }
  auto words = load_trace(path);
  std::uint64_t seen = 0;
  for (const auto w : words) seen |= w;
  const std::size_t widest = std::max<std::size_t>(1, std::bit_width(seen));
  if (width == 0) {
    width = widest;
  } else if (widest > width) {
    std::ostringstream os;
    os << "word_source: " << path << ": trace words use " << widest
       << " bits, wider than the requested width " << width;
    throw std::runtime_error(os.str());
  }
  return std::make_unique<VectorWordSource>(std::move(words), width, path);
}

std::vector<std::uint64_t> collect(WordSource& source) {
  source.reset();
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(source.size()));
  for (auto chunk = source.next_chunk(); !chunk.empty(); chunk = source.next_chunk()) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

}  // namespace tsvcod::streams
