#pragma once
// Synthetic image-sensor streams (paper Sec. 5.1: 3D vision system on chip).
//
// Real camera material is substituted by synthetic images with natural-image
// statistics: a sum of random low-frequency cosines with 1/f amplitude decay
// (strong neighbouring-pixel correlation, the property the Spiral assignment
// exploits) plus sensor noise. Red/green/blue planes share a common luminance
// field, giving the inter-channel correlation of real scenes. A sequence of
// differently seeded images stands in for the paper's "pictures of cars,
// people and landscapes".
//
// Streams provided (all 0-255 per component, RGGB Bayer mosaic):
//  * BayerQuadStream — all four colors of a Bayer cell in parallel (32 bit).
//  * BayerMuxStream  — R, G1, G2, B time-multiplexed over 8 lines.
//  * GrayscaleStream — one luminance pixel per cycle over 8 lines.

#include <cstdint>
#include <vector>

#include "streams/word_stream.hpp"

namespace tsvcod::streams {

struct ImageParams {
  std::size_t width = 64;
  std::size_t height = 48;
  int components = 24;    ///< number of random cosine components
  double noise = 3.0;     ///< white sensor noise sigma [LSB]
  /// Weight of the per-channel (chroma) field and offset versus the shared
  /// luminance. Real scenes have strongly distinct R/G/B levels, which is
  /// what makes color multiplexing destroy the wire-level correlation
  /// (paper Sec. 5.1/7); lowering this yields grayscale-ish material.
  double chroma = 1.8;
};

/// One synthetic RGB image, deterministically generated from a seed.
class SyntheticImage {
 public:
  SyntheticImage(const ImageParams& params, std::uint64_t seed);

  std::size_t width() const { return params_.width; }
  std::size_t height() const { return params_.height; }

  std::uint8_t red(std::size_t x, std::size_t y) const { return plane(0, x, y); }
  std::uint8_t green(std::size_t x, std::size_t y) const { return plane(1, x, y); }
  std::uint8_t blue(std::size_t x, std::size_t y) const { return plane(2, x, y); }
  /// ITU-like luminance.
  std::uint8_t luma(std::size_t x, std::size_t y) const;
  /// Value of the RGGB Bayer color-filter-array element at (x, y).
  std::uint8_t bayer(std::size_t x, std::size_t y) const;

 private:
  std::uint8_t plane(int p, std::size_t x, std::size_t y) const;

  ImageParams params_;
  std::vector<std::uint8_t> data_;  ///< 3 planes, row-major
};

/// Lazily generates a sequence of images with consecutive seeds.
class ImageSequence {
 public:
  explicit ImageSequence(const ImageParams& params, std::uint64_t first_seed = 1);
  const SyntheticImage& current() const { return image_; }
  void advance();

 private:
  ImageParams params_;
  std::uint64_t seed_;
  SyntheticImage image_;
};

/// 32-bit parallel Bayer stream: word = R | G1<<8 | G2<<16 | B<<24 per 2x2
/// Bayer cell, cells scanned row-major, images advancing automatically.
class BayerQuadStream final : public WordStream {
 public:
  explicit BayerQuadStream(const ImageParams& params = {}, std::uint64_t first_seed = 1);
  std::size_t width() const override { return 32; }
  std::uint64_t next() override;

 private:
  ImageSequence seq_;
  std::size_t cell_ = 0;
};

/// 8-bit multiplexed Bayer stream: R, G1, G2, B of each cell in sequence.
class BayerMuxStream final : public WordStream {
 public:
  explicit BayerMuxStream(const ImageParams& params = {}, std::uint64_t first_seed = 1);
  std::size_t width() const override { return 8; }
  std::uint64_t next() override;

 private:
  ImageSequence seq_;
  std::size_t cell_ = 0;
  std::size_t component_ = 0;
};

/// 8-bit grayscale pixel stream.
class GrayscaleStream final : public WordStream {
 public:
  explicit GrayscaleStream(const ImageParams& params = {}, std::uint64_t first_seed = 1);
  std::size_t width() const override { return 8; }
  std::uint64_t next() override;

 private:
  ImageSequence seq_;
  std::size_t pixel_ = 0;
};

}  // namespace tsvcod::streams
