#include "streams/binary_trace.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "streams/word_stream.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TSVCOD_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace tsvcod::streams {

namespace {

[[noreturn]] void fail(const std::string& source, const std::string& what) {
  throw std::runtime_error("binary_trace: " + source + ": " + what);
}

void require_little_endian(const std::string& source) {
  if constexpr (std::endian::native != std::endian::little) {
    fail(source,
         "the zero-copy .tsvb path requires a little-endian host; convert via the text format");
  }
}

std::uint32_t read_le32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t read_le64(const unsigned char* p) {
  return static_cast<std::uint64_t>(read_le32(p)) |
         static_cast<std::uint64_t>(read_le32(p + 4)) << 32;
}

void write_le32(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

void write_le64(unsigned char* p, std::uint64_t v) {
  write_le32(p, static_cast<std::uint32_t>(v));
  write_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::array<unsigned char, kBinaryTraceHeaderBytes> make_header(std::size_t width,
                                                               std::uint64_t count,
                                                               std::uint64_t seed) {
  std::array<unsigned char, kBinaryTraceHeaderBytes> h{};
  std::copy(kBinaryTraceMagic.begin(), kBinaryTraceMagic.end(), h.begin());
  write_le32(h.data() + 8, kBinaryTraceVersion);
  write_le32(h.data() + 12, static_cast<std::uint32_t>(width));
  write_le64(h.data() + 16, count);
  write_le64(h.data() + 24, seed);
  return h;
}

void check_width(std::size_t width, const std::string& source) {
  if (width == 0 || width > 64) {
    fail(source, "width " + std::to_string(width) + " out of range [1, 64]");
  }
}

/// First index whose word has bits at or above `width`, or npos.
std::size_t first_overwide_word(std::span<const std::uint64_t> words, std::size_t width) {
  const std::uint64_t bad = ~width_mask(width);
  if (bad == 0) return std::string::npos;
  std::uint64_t seen = 0;
  for (const auto w : words) seen |= w;
  if ((seen & bad) == 0) return std::string::npos;
  for (std::size_t i = 0; i < words.size(); ++i) {
    if ((words[i] & bad) != 0) return i;
  }
  return std::string::npos;
}

}  // namespace

bool looks_like_binary_trace(const unsigned char* data, std::size_t size) {
  return size >= kBinaryTraceMagic.size() &&
         std::equal(kBinaryTraceMagic.begin(), kBinaryTraceMagic.end(), data);
}

bool file_looks_like_binary_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("binary_trace: cannot open: " + path);
  unsigned char head[kBinaryTraceMagic.size()] = {};
  is.read(reinterpret_cast<char*>(head), sizeof(head));
  return is.gcount() == static_cast<std::streamsize>(sizeof(head)) &&
         looks_like_binary_trace(head, sizeof(head));
}

BinaryTraceView parse_binary_trace(std::span<const std::byte> bytes, const std::string& source) {
  require_little_endian(source);
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  if (bytes.size() < kBinaryTraceHeaderBytes) {
    fail(source, "truncated header: " + std::to_string(bytes.size()) + " bytes, need " +
                     std::to_string(kBinaryTraceHeaderBytes));
  }
  if (!looks_like_binary_trace(p, bytes.size())) {
    fail(source, "bad magic (not a .tsvb binary trace)");
  }
  BinaryTraceView view;
  view.header.version = read_le32(p + 8);
  if (view.header.version != kBinaryTraceVersion) {
    fail(source, "unsupported format version " + std::to_string(view.header.version) +
                     " (this reader knows version " + std::to_string(kBinaryTraceVersion) + ")");
  }
  view.header.width = read_le32(p + 12);
  check_width(view.header.width, source);
  view.header.word_count = read_le64(p + 16);
  view.header.seed = read_le64(p + 24);

  const std::size_t payload = bytes.size() - kBinaryTraceHeaderBytes;
  const std::uint64_t whole_words = payload / 8;
  if (payload % 8 != 0 || whole_words != view.header.word_count) {
    std::ostringstream os;
    os << "declared word count " << view.header.word_count
       << " disagrees with the actual payload: expected " << view.header.word_count * 8
       << " payload bytes, have " << payload << " (" << whole_words << " whole words";
    if (payload % 8 != 0) os << " + " << payload % 8 << " trailing bytes";
    os << ")";
    fail(source, os.str());
  }
  const auto* words_begin = p + kBinaryTraceHeaderBytes;
  if (reinterpret_cast<std::uintptr_t>(words_begin) % alignof(std::uint64_t) != 0) {
    fail(source, "payload is not 8-byte aligned in this buffer (zero-copy reads need an aligned "
                 "image; the header is 32 bytes exactly so any aligned buffer works)");
  }
  view.words = std::span<const std::uint64_t>(reinterpret_cast<const std::uint64_t*>(words_begin),
                                              static_cast<std::size_t>(whole_words));
  if (const std::size_t i = first_overwide_word(view.words, view.header.width);
      i != std::string::npos) {
    std::ostringstream os;
    os << "word " << i << " (0x" << std::hex << view.words[i] << std::dec
       << ") has bits at or above the declared width " << view.header.width;
    fail(source, os.str());
  }
  return view;
}

void save_binary_trace(std::ostream& os, std::span<const std::uint64_t> words, std::size_t width,
                       std::uint64_t seed) {
  require_little_endian("<save>");
  check_width(width, "<save>");
  if (const std::size_t i = first_overwide_word(words, width); i != std::string::npos) {
    std::ostringstream msg;
    msg << "word " << i << " (0x" << std::hex << words[i] << std::dec
        << ") has bits at or above width " << width;
    fail("<save>", msg.str());
  }
  const auto header = make_header(width, words.size(), seed);
  os.write(reinterpret_cast<const char*>(header.data()), static_cast<std::streamsize>(header.size()));
  // Little-endian host (checked above): the in-memory representation is the
  // on-disk representation.
  os.write(reinterpret_cast<const char*>(words.data()),
           static_cast<std::streamsize>(words.size() * sizeof(std::uint64_t)));
}

void save_binary_trace(const std::string& path, std::span<const std::uint64_t> words,
                       std::size_t width, std::uint64_t seed) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) fail(path, "cannot open for writing");
  save_binary_trace(os, words, width, seed);
  os.flush();
  if (!os) fail(path, "write failed");
}

// ---------------------------------------------------------------------------
// Streaming writer
// ---------------------------------------------------------------------------

BinaryTraceWriter::BinaryTraceWriter(const std::string& path, std::size_t width,
                                     std::uint64_t seed)
    : path_(path), width_(width), mask_(width_mask(width)) {
  require_little_endian(path);
  check_width(width, path);
  os_.open(path, std::ios::binary | std::ios::trunc);
  if (!os_) fail(path, "cannot open for writing");
  const auto header = make_header(width, 0, seed);  // count patched by close()
  os_.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  buffer_.reserve(4096);
}

BinaryTraceWriter::~BinaryTraceWriter() {
  try {
    if (!closed_) close();
  } catch (...) {
    // Destructor close is best-effort; call close() to observe failures.
  }
}

void BinaryTraceWriter::write(std::uint64_t word) { write(std::span(&word, 1)); }

void BinaryTraceWriter::write(std::span<const std::uint64_t> words) {
  if (closed_) fail(path_, "write after close");
  for (std::size_t i = 0; i < words.size(); ++i) {
    if ((words[i] & ~mask_) != 0) {
      std::ostringstream os;
      os << "word " << count_ + i << " (0x" << std::hex << words[i] << std::dec
         << ") has bits at or above width " << width_;
      fail(path_, os.str());
    }
  }
  for (const auto w : words) {
    buffer_.push_back(w);
    if (buffer_.size() == buffer_.capacity()) flush_buffer();
  }
  count_ += words.size();
}

void BinaryTraceWriter::flush_buffer() {
  if (buffer_.empty()) return;
  os_.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size() * sizeof(std::uint64_t)));
  buffer_.clear();
}

void BinaryTraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  flush_buffer();
  // Patch the real word count into the header.
  os_.seekp(16);
  unsigned char le[8];
  write_le64(le, count_);
  os_.write(reinterpret_cast<const char*>(le), sizeof(le));
  os_.flush();
  if (!os_) fail(path_, "write failed");
  os_.close();
}

// ---------------------------------------------------------------------------
// Memory-mapped reader
// ---------------------------------------------------------------------------

MappedTrace::MappedTrace(const std::string& path) : path_(path) {
#if defined(TSVCOD_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path, std::string("cannot open: ") + std::strerror(errno));
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    fail(path, std::string("fstat failed: ") + std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      fail(path, std::string("mmap failed: ") + std::strerror(err));
    }
    map_ = map;
#if defined(POSIX_MADV_SEQUENTIAL)
    ::posix_madvise(map_, size_, POSIX_MADV_SEQUENTIAL);
#endif
  }
  ::close(fd);  // the mapping outlives the descriptor
  try {
    view_ = parse_binary_trace(
        std::span<const std::byte>(static_cast<const std::byte*>(map_), size_), path_);
  } catch (...) {
    unmap();
    throw;
  }
#else
  // No mmap on this platform: read into an 8-byte-aligned buffer instead
  // (same validation, one copy).
  std::ifstream is(path, std::ios::binary);
  if (!is) fail(path, "cannot open");
  is.seekg(0, std::ios::end);
  size_ = static_cast<std::size_t>(is.tellg());
  is.seekg(0);
  fallback_.resize((size_ + sizeof(std::uint64_t) - 1) / sizeof(std::uint64_t));
  is.read(reinterpret_cast<char*>(fallback_.data()), static_cast<std::streamsize>(size_));
  if (is.gcount() != static_cast<std::streamsize>(size_)) fail(path, "short read");
  view_ = parse_binary_trace(
      std::span<const std::byte>(reinterpret_cast<const std::byte*>(fallback_.data()), size_),
      path_);
#endif
}

MappedTrace::~MappedTrace() { unmap(); }

MappedTrace::MappedTrace(MappedTrace&& other) noexcept
    : path_(std::move(other.path_)),
      map_(other.map_),
      size_(other.size_),
      fallback_(std::move(other.fallback_)),
      view_(other.view_) {
  other.map_ = nullptr;
  other.size_ = 0;
  other.view_ = {};
}

MappedTrace& MappedTrace::operator=(MappedTrace&& other) noexcept {
  if (this != &other) {
    unmap();
    path_ = std::move(other.path_);
    map_ = other.map_;
    size_ = other.size_;
    fallback_ = std::move(other.fallback_);
    view_ = other.view_;
    other.map_ = nullptr;
    other.size_ = 0;
    other.view_ = {};
  }
  return *this;
}

void MappedTrace::unmap() noexcept {
#if defined(TSVCOD_HAVE_MMAP)
  if (map_ != nullptr) {
    ::munmap(map_, size_);
    map_ = nullptr;
  }
#endif
}

}  // namespace tsvcod::streams
