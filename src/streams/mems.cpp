#include "streams/mems.hpp"

#include <algorithm>
#include <cmath>

#include "phys/constants.hpp"
#include "streams/random_streams.hpp"

namespace tsvcod::streams {

namespace {

constexpr double kDt = 0.01;           // 100 Hz sample rate
constexpr double kGravityCounts = 16384.0;  // 1 g at +-2 g full scale
constexpr double kEarthFieldCounts = 3300.0;  // ~50 uT at +-4900 uT full scale

}  // namespace

MemsSensorModel::MemsSensorModel(MemsKind kind, std::uint64_t seed) : kind_(kind), rng_(seed) {}

double MemsSensorModel::ou_step(double state, double tau, double sigma, double dt, double noise) {
  const double alpha = std::exp(-dt / tau);
  return alpha * state + sigma * std::sqrt(1.0 - alpha * alpha) * noise;
}

MemsSensorModel::Sample MemsSensorModel::next() {
  t_ += kDt;
  // Slow activity envelope in [0, 1]: rest and motion phases of daily use.
  envelope_ = std::clamp(ou_step(envelope_ - 0.5, 8.0, 0.35, kDt, normal_(rng_)) + 0.5, 0.0, 1.0);

  Sample s;
  switch (kind_) {
    case MemsKind::Accelerometer: {
      const double cadence = 2.0 * phys::pi * 1.8 * t_;  // walking at 1.8 Hz
      ou_.x = ou_step(ou_.x, 0.3, 500.0, kDt, normal_(rng_));
      ou_.y = ou_step(ou_.y, 0.3, 500.0, kDt, normal_(rng_));
      ou_.z = ou_step(ou_.z, 0.2, 700.0, kDt, normal_(rng_));
      s.x = envelope_ * (900.0 * std::sin(cadence * 0.5) + ou_.x) + 60.0 * normal_(rng_);
      s.y = envelope_ * (700.0 * std::sin(cadence * 0.5 + 1.3) + ou_.y) + 60.0 * normal_(rng_);
      s.z = kGravityCounts + envelope_ * (2200.0 * std::sin(cadence) + ou_.z) +
            60.0 * normal_(rng_);
      break;
    }
    case MemsKind::Gyroscope: {
      ou_.x = ou_step(ou_.x, 0.5, 3000.0, kDt, normal_(rng_));
      ou_.y = ou_step(ou_.y, 0.5, 2500.0, kDt, normal_(rng_));
      ou_.z = ou_step(ou_.z, 0.7, 2000.0, kDt, normal_(rng_));
      s.x = envelope_ * ou_.x + 30.0 * normal_(rng_);
      s.y = envelope_ * ou_.y + 30.0 * normal_(rng_);
      s.z = envelope_ * ou_.z + 30.0 * normal_(rng_);
      break;
    }
    case MemsKind::Magnetometer: {
      // Direction random walk on the sphere; the magnitude wobbles slowly
      // around the earth field (indoor ferromagnetic disturbances).
      heading_ += 0.03 * std::sqrt(kDt) * normal_(rng_) + envelope_ * 0.002;
      incline_ = std::clamp(incline_ + 0.02 * std::sqrt(kDt) * normal_(rng_), 0.3, 1.3);
      ou_.x = ou_step(ou_.x, 5.0, 0.35, kDt, normal_(rng_));
      const double field = kEarthFieldCounts * (1.0 + std::clamp(ou_.x, -0.6, 0.6));
      s.x = field * std::sin(incline_) * std::cos(heading_) + 20.0 * normal_(rng_);
      s.y = field * std::sin(incline_) * std::sin(heading_) + 20.0 * normal_(rng_);
      s.z = field * std::cos(incline_) + 20.0 * normal_(rng_);
      break;
    }
  }
  return s;
}

MemsRmsStream::MemsRmsStream(MemsKind kind, std::uint64_t seed) : model_(kind, seed) {}

std::uint64_t MemsRmsStream::next() {
  const auto s = model_.next();
  const double rms = std::sqrt((s.x * s.x + s.y * s.y + s.z * s.z) / 3.0);
  const double clamped = std::clamp(rms, 0.0, 65535.0);
  return static_cast<std::uint64_t>(std::llround(clamped));
}

MemsXyzStream::MemsXyzStream(MemsKind kind, std::uint64_t seed) : model_(kind, seed) {}

std::uint64_t MemsXyzStream::next() {
  if (axis_ >= 3) {
    current_ = model_.next();
    axis_ = 0;
  }
  double v = 0.0;
  switch (axis_++) {
    case 0: v = current_.x; break;
    case 1: v = current_.y; break;
    default: v = current_.z; break;
  }
  return GaussianAr1Stream::encode_twos_complement(static_cast<long long>(std::llround(v)), 16);
}

std::unique_ptr<WordStream> make_all_sensor_mux(std::uint64_t seed) {
  std::vector<std::unique_ptr<WordStream>> inputs;
  inputs.push_back(std::make_unique<MemsXyzStream>(MemsKind::Magnetometer, seed));
  inputs.push_back(std::make_unique<MemsXyzStream>(MemsKind::Accelerometer, seed + 1));
  inputs.push_back(std::make_unique<MemsXyzStream>(MemsKind::Gyroscope, seed + 2));
  return std::make_unique<MuxStream>(std::move(inputs));
}

}  // namespace tsvcod::streams
