#include "streams/trace_io.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace tsvcod::streams {

std::vector<std::uint64_t> parse_trace(std::istream& is, const std::string& source) {
  std::vector<std::uint64_t> words;
  std::string line;
  std::size_t lineno = 0;
  std::size_t line_offset = 0;  // byte offset of the current line's start
  std::optional<std::uint64_t> declared;
  // Line endings: the token trim strips a CR, so CRLF files parse exactly
  // like LF files, and getline delivers a final line without a trailing
  // newline like any other — both covered by regression tests in test_io.
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t this_offset = line_offset;
    line_offset += line.size() + 1;  // getline consumed the '\n' too
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;
    const std::string tok = line.substr(pos, line.find_last_not_of(" \t\r") - pos + 1);
    try {
      // Optional "words <N>" count directive (save_trace emits one): lets
      // the parser reject a truncated or padded file instead of silently
      // folding a short read into statistics.
      if (tok.rfind("words", 0) == 0 && (tok.size() == 5 || tok[5] == ' ' || tok[5] == '\t')) {
        if (declared) throw std::invalid_argument("duplicate words directive");
        const auto vpos = tok.find_first_not_of(" \t", 5);
        if (vpos == std::string::npos) throw std::invalid_argument("words directive needs a count");
        const std::string count = tok.substr(vpos);
        if (count[0] == '-' || count[0] == '+') throw std::invalid_argument("signed count");
        std::size_t used = 0;
        declared = std::stoull(count, &used, 10);
        if (used != count.size()) throw std::invalid_argument("trailing characters");
        continue;
      }
      // std::stoull silently accepts a sign and wraps "-1" to 2^64-1; words
      // are unsigned line patterns, so any signed token is malformed.
      if (tok[0] == '-' || tok[0] == '+') throw std::invalid_argument("signed word");
      std::size_t used = 0;
      const int base = tok.rfind("0x", 0) == 0 || tok.rfind("0X", 0) == 0 ? 16 : 10;
      const std::uint64_t v = std::stoull(tok, &used, base);
      if (used != tok.size()) throw std::invalid_argument("trailing characters");
      words.push_back(v);
    } catch (const std::exception&) {
      throw std::runtime_error("trace_io: bad word in " + source + " at line " +
                               std::to_string(lineno) + " (byte offset " +
                               std::to_string(this_offset + pos) + "): '" + tok + "'");
    }
  }
  if (declared && *declared != words.size()) {
    throw std::runtime_error("trace_io: " + source + ": declared word count " +
                             std::to_string(*declared) + " disagrees with the actual " +
                             std::to_string(words.size()) + " words (truncated or padded file)");
  }
  return words;
}

std::vector<std::uint64_t> load_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("trace_io: cannot open: " + path);
  return parse_trace(is, path);
}

void save_trace(std::ostream& os, std::span<const std::uint64_t> words) {
  os << "# tsvcod word trace, one word per line\n";
  os << "words " << std::dec << words.size() << '\n' << std::hex;
  for (const auto w : words) os << "0x" << w << '\n';
}

void save_trace(const std::string& path, std::span<const std::uint64_t> words) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace_io: cannot open for writing: " + path);
  save_trace(os, words);
  os.flush();
  if (!os) throw std::runtime_error("trace_io: write failed: " + path);
}

TraceStream load_trace_stream(const std::string& path, std::size_t width) {
  return TraceStream(load_trace(path), width);
}

}  // namespace tsvcod::streams
