#pragma once
// Synthetic MEMS sensor streams (paper Sec. 5.2: smartphone magnetometer,
// accelerometer and gyroscope in daily-use scenarios).
//
// Each sensor produces three 16-bit axes at a fixed sample rate. The models
// combine the statistics that matter for bit-level coding:
//  * accelerometer — gravity offset on z plus quasi-periodic motion (walking
//    cadence) with a slowly varying activity envelope and wideband noise;
//  * gyroscope     — zero-mean rotation bursts (Ornstein-Uhlenbeck process
//    gated by an activity envelope);
//  * magnetometer  — near-constant earth-field magnitude whose direction
//    performs a slow random walk (strongly correlated, non-zero mean).
//
// Transmission modes follow the paper: RMS of the three axes (unsigned,
// spatially correlated, no zero mean) or XYZ interleaving (signed,
// Gaussian-like, temporal correlation destroyed by the interleave).

#include <cstdint>
#include <random>

#include "streams/word_stream.hpp"

namespace tsvcod::streams {

enum class MemsKind { Accelerometer, Gyroscope, Magnetometer };

class MemsSensorModel {
 public:
  struct Sample {
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;
  };

  MemsSensorModel(MemsKind kind, std::uint64_t seed);
  Sample next();
  MemsKind kind() const { return kind_; }

 private:
  double ou_step(double state, double tau, double sigma, double dt, double noise);

  MemsKind kind_;
  std::mt19937_64 rng_;
  std::normal_distribution<double> normal_{0.0, 1.0};
  double t_ = 0.0;
  double envelope_ = 0.5;
  Sample ou_{};        ///< per-axis OU state
  double heading_ = 0.0;
  double incline_ = 1.0;
};

/// Root-mean-square of the three axes, one unsigned 16-bit word per sample.
class MemsRmsStream final : public WordStream {
 public:
  MemsRmsStream(MemsKind kind, std::uint64_t seed);
  std::size_t width() const override { return 16; }
  std::uint64_t next() override;

 private:
  MemsSensorModel model_;
};

/// X, Y, Z axis values interleaved, one signed 16-bit word per cycle.
class MemsXyzStream final : public WordStream {
 public:
  MemsXyzStream(MemsKind kind, std::uint64_t seed);
  std::size_t width() const override { return 16; }
  std::uint64_t next() override;

 private:
  MemsSensorModel model_;
  MemsSensorModel::Sample current_{};
  int axis_ = 3;  ///< forces a fresh sample on first call
};

/// All three sensors (magnetometer, accelerometer, gyroscope), each XYZ
/// interleaved, multiplexed pattern-by-pattern (paper Fig. 5 "All Mux").
std::unique_ptr<WordStream> make_all_sensor_mux(std::uint64_t seed);

}  // namespace tsvcod::streams
