#include "streams/image_sensor.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "phys/constants.hpp"

namespace tsvcod::streams {

namespace {

/// A smooth random field: sum of cosines with 1/f amplitudes.
class CosineField {
 public:
  CosineField(int components, std::mt19937_64& rng) {
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    terms_.reserve(static_cast<std::size_t>(components));
    for (int k = 0; k < components; ++k) {
      // Log-uniform spatial frequency between very low and moderately high.
      const double f = 0.004 * std::pow(40.0, uni(rng));  // cycles/pixel
      const double dir = 2.0 * phys::pi * uni(rng);
      Term t;
      t.fx = f * std::cos(dir);
      t.fy = f * std::sin(dir);
      t.phase = 2.0 * phys::pi * uni(rng);
      t.amp = 1.0 / (1.0 + 20.0 * f);  // 1/f-like decay
      terms_.push_back(t);
    }
  }

  double at(double x, double y) const {
    double v = 0.0;
    for (const auto& t : terms_) {
      v += t.amp * std::cos(2.0 * phys::pi * (t.fx * x + t.fy * y) + t.phase);
    }
    return v;
  }

 private:
  struct Term {
    double fx, fy, phase, amp;
  };
  std::vector<Term> terms_;
};

}  // namespace

SyntheticImage::SyntheticImage(const ImageParams& params, std::uint64_t seed)
    : params_(params), data_(3 * params.width * params.height) {
  std::mt19937_64 rng(seed);
  const CosineField luma_field(params.components, rng);
  const CosineField chroma_r(params.components / 2 + 1, rng);
  const CosineField chroma_b(params.components / 2 + 1, rng);
  std::normal_distribution<double> noise(0.0, params.noise);
  // Per-channel DC offsets: scenes have distinct overall R/G/B levels.
  std::uniform_real_distribution<double> dc(-2.0, 2.0);
  const double off_r = dc(rng);
  const double off_b = dc(rng);

  // Sample the continuous fields and normalize each plane to 0..255.
  std::vector<double> raw(data_.size());
  double lo = 1e300;
  double hi = -1e300;
  for (std::size_t y = 0; y < params.height; ++y) {
    for (std::size_t x = 0; x < params.width; ++x) {
      const double l = luma_field.at(static_cast<double>(x), static_cast<double>(y));
      const double cr = chroma_r.at(static_cast<double>(x), static_cast<double>(y));
      const double cb = chroma_b.at(static_cast<double>(x), static_cast<double>(y));
      const std::size_t i = y * params.width + x;
      raw[0 * params.width * params.height + i] = l + params.chroma * (cr + off_r);
      raw[1 * params.width * params.height + i] = l;
      raw[2 * params.width * params.height + i] = l + params.chroma * (cb + off_b);
      for (int p = 0; p < 3; ++p) {
        const double v = raw[static_cast<std::size_t>(p) * params.width * params.height + i];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  const double scale = hi > lo ? 255.0 / (hi - lo) : 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double v = (raw[i] - lo) * scale + noise(rng);
    data_[i] = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
  }
}

std::uint8_t SyntheticImage::plane(int p, std::size_t x, std::size_t y) const {
  return data_[static_cast<std::size_t>(p) * params_.width * params_.height + y * params_.width +
               x];
}

std::uint8_t SyntheticImage::luma(std::size_t x, std::size_t y) const {
  const double l = 0.299 * red(x, y) + 0.587 * green(x, y) + 0.114 * blue(x, y);
  return static_cast<std::uint8_t>(std::clamp(l, 0.0, 255.0));
}

std::uint8_t SyntheticImage::bayer(std::size_t x, std::size_t y) const {
  const bool even_row = (y % 2) == 0;
  const bool even_col = (x % 2) == 0;
  if (even_row && even_col) return red(x, y);
  if (!even_row && !even_col) return blue(x, y);
  return green(x, y);
}

ImageSequence::ImageSequence(const ImageParams& params, std::uint64_t first_seed)
    : params_(params), seed_(first_seed), image_(params, first_seed) {}

void ImageSequence::advance() {
  ++seed_;
  image_ = SyntheticImage(params_, seed_);
}

BayerQuadStream::BayerQuadStream(const ImageParams& params, std::uint64_t first_seed)
    : seq_(params, first_seed) {}

std::uint64_t BayerQuadStream::next() {
  const auto& img = seq_.current();
  const std::size_t cells_x = img.width() / 2;
  const std::size_t cells_y = img.height() / 2;
  const std::size_t cx = 2 * (cell_ % cells_x);
  const std::size_t cy = 2 * (cell_ / cells_x);
  const std::uint64_t r = img.bayer(cx, cy);
  const std::uint64_t g1 = img.bayer(cx + 1, cy);
  const std::uint64_t g2 = img.bayer(cx, cy + 1);
  const std::uint64_t b = img.bayer(cx + 1, cy + 1);
  if (++cell_ >= cells_x * cells_y) {
    cell_ = 0;
    seq_.advance();
  }
  return r | (g1 << 8) | (g2 << 16) | (b << 24);
}

BayerMuxStream::BayerMuxStream(const ImageParams& params, std::uint64_t first_seed)
    : seq_(params, first_seed) {}

std::uint64_t BayerMuxStream::next() {
  const auto& img = seq_.current();
  const std::size_t cells_x = img.width() / 2;
  const std::size_t cells_y = img.height() / 2;
  const std::size_t cx = 2 * (cell_ % cells_x);
  const std::size_t cy = 2 * (cell_ / cells_x);
  std::uint64_t v = 0;
  switch (component_) {
    case 0: v = img.bayer(cx, cy); break;          // R
    case 1: v = img.bayer(cx + 1, cy); break;      // G1
    case 2: v = img.bayer(cx, cy + 1); break;      // G2
    default: v = img.bayer(cx + 1, cy + 1); break; // B
  }
  if (++component_ == 4) {
    component_ = 0;
    if (++cell_ >= cells_x * cells_y) {
      cell_ = 0;
      seq_.advance();
    }
  }
  return v;
}

GrayscaleStream::GrayscaleStream(const ImageParams& params, std::uint64_t first_seed)
    : seq_(params, first_seed) {}

std::uint64_t GrayscaleStream::next() {
  const auto& img = seq_.current();
  const std::size_t x = pixel_ % img.width();
  const std::size_t y = pixel_ / img.width();
  const std::uint64_t v = img.luma(x, y);
  if (++pixel_ >= img.width() * img.height()) {
    pixel_ = 0;
    seq_.advance();
  }
  return v;
}

}  // namespace tsvcod::streams
