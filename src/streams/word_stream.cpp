#include "streams/word_stream.hpp"

namespace tsvcod::streams {

TraceStream::TraceStream(std::vector<std::uint64_t> words, std::size_t width)
    : words_(std::move(words)), width_(width) {
  if (words_.empty()) throw std::invalid_argument("TraceStream: empty trace");
  if (width_ == 0 || width_ > 64) throw std::invalid_argument("TraceStream: bad width");
  for (auto& w : words_) w &= width_mask(width_);
}

std::uint64_t TraceStream::next() {
  const std::uint64_t w = words_[pos_];
  pos_ = (pos_ + 1) % words_.size();
  return w;
}

StableLinesStream::StableLinesStream(std::unique_ptr<WordStream> inner,
                                     std::vector<StableLine> lines)
    : inner_(std::move(inner)), lines_(std::move(lines)) {
  if (!inner_) throw std::invalid_argument("StableLinesStream: null inner stream");
  if (inner_->width() + lines_.size() > 64) {
    throw std::invalid_argument("StableLinesStream: combined width exceeds 64");
  }
}

std::size_t StableLinesStream::width() const { return inner_->width() + lines_.size(); }

std::uint64_t StableLinesStream::next() {
  std::uint64_t w = inner_->next() & width_mask(inner_->width());
  for (std::size_t k = 0; k < lines_.size(); ++k) {
    if (lines_[k].value) w |= std::uint64_t{1} << (inner_->width() + k);
  }
  return w;
}

FramedStream::FramedStream(std::unique_ptr<WordStream> inner, std::size_t active_length,
                           std::size_t idle_length)
    : inner_(std::move(inner)), active_length_(active_length), idle_length_(idle_length) {
  if (!inner_) throw std::invalid_argument("FramedStream: null inner stream");
  if (active_length_ == 0) throw std::invalid_argument("FramedStream: active_length must be > 0");
  if (inner_->width() + 1 > 64) throw std::invalid_argument("FramedStream: width exceeds 64");
}

std::size_t FramedStream::width() const { return inner_->width() + 1; }

std::uint64_t FramedStream::next() {
  const std::size_t period = active_length_ + idle_length_;
  const bool active = phase_ < active_length_;
  phase_ = (phase_ + 1) % period;
  if (!active) return 0;  // payload gated, enable low
  const std::uint64_t enable = std::uint64_t{1} << inner_->width();
  return (inner_->next() & width_mask(inner_->width())) | enable;
}

MuxStream::MuxStream(std::vector<std::unique_ptr<WordStream>> inputs)
    : inputs_(std::move(inputs)) {
  if (inputs_.empty()) throw std::invalid_argument("MuxStream: no inputs");
  for (const auto& in : inputs_) {
    if (!in) throw std::invalid_argument("MuxStream: null input");
    if (in->width() != inputs_.front()->width()) {
      throw std::invalid_argument("MuxStream: inputs must share one width");
    }
  }
}

std::size_t MuxStream::width() const { return inputs_.front()->width(); }

std::uint64_t MuxStream::next() {
  const std::uint64_t w = inputs_[turn_]->next();
  turn_ = (turn_ + 1) % inputs_.size();
  return w;
}

std::vector<std::uint64_t> collect(WordStream& stream, std::size_t count) {
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(stream.next());
  return out;
}

}  // namespace tsvcod::streams
