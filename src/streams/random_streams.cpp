#include "streams/random_streams.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsvcod::streams {

UniformRandomStream::UniformRandomStream(std::size_t width, std::uint64_t seed)
    : width_(width), rng_(seed) {
  if (width == 0 || width > 64) throw std::invalid_argument("UniformRandomStream: bad width");
}

std::uint64_t UniformRandomStream::next() { return rng_() & width_mask(width_); }

GaussianAr1Stream::GaussianAr1Stream(std::size_t width, double sigma, double rho,
                                     std::uint64_t seed, double mean)
    : width_(width), sigma_(sigma), rho_(rho), mean_(mean), rng_(seed) {
  if (width == 0 || width > 63) throw std::invalid_argument("GaussianAr1Stream: bad width");
  if (!(sigma > 0.0)) throw std::invalid_argument("GaussianAr1Stream: sigma must be positive");
  if (!(rho > -1.0) || !(rho < 1.0)) throw std::invalid_argument("GaussianAr1Stream: |rho| < 1");
  state_ = normal_(rng_);  // start in the stationary distribution
}

std::uint64_t GaussianAr1Stream::encode_twos_complement(long long value, std::size_t width) {
  const long long lo = -(1ll << (width - 1));
  const long long hi = (1ll << (width - 1)) - 1;
  value = std::clamp(value, lo, hi);
  return static_cast<std::uint64_t>(value) & width_mask(width);
}

std::uint64_t GaussianAr1Stream::next() {
  state_ = rho_ * state_ + std::sqrt(1.0 - rho_ * rho_) * normal_(rng_);
  const double sample = mean_ + sigma_ * state_;
  return encode_twos_complement(static_cast<long long>(std::llround(sample)), width_);
}

SequentialStream::SequentialStream(std::size_t width, double branch_probability,
                                   std::uint64_t seed)
    : width_(width), branch_probability_(branch_probability), rng_(seed) {
  if (width == 0 || width > 64) throw std::invalid_argument("SequentialStream: bad width");
  if (branch_probability < 0.0 || branch_probability > 1.0) {
    throw std::invalid_argument("SequentialStream: branch probability outside [0, 1]");
  }
  state_ = rng_() & width_mask(width_);
}

std::uint64_t SequentialStream::next() {
  const std::uint64_t out = state_;
  if (uni_(rng_) < branch_probability_) {
    state_ = rng_() & width_mask(width_);
  } else {
    state_ = (state_ + 1) & width_mask(width_);
  }
  return out;
}

}  // namespace tsvcod::streams
