#pragma once
// Versioned binary word-trace format (.tsvb) with a zero-copy mmap reader.
//
// The text format (trace_io) stays the human-facing interchange; this is the
// bulk format for traces long enough that parsing dominates statistics. The
// layout is a fixed 32-byte header followed by the words packed as
// little-endian uint64:
//
//   offset  size  field
//        0     8  magic  74 73 76 62 0D 0A 1A 0A  ("tsvb", CRLF/ctrl-Z guard
//                 bytes in the PNG style: newline translation or an accidental
//                 text-mode read corrupts the magic and is caught immediately)
//        8     4  format version (LE u32, currently 1)
//       12     4  line width in bits (LE u32, 1..64)
//       16     8  word count N (LE u64)
//       24     8  seed / provenance tag (LE u64, opaque to the reader)
//       32   8*N  words, LE u64 each; bits at or above `width` must be zero
//
// The 32-byte header keeps the payload 8-byte aligned in any aligned buffer
// (mmap returns page-aligned maps), so `parse_binary_trace` can hand back a
// `std::span<const std::uint64_t>` aliasing the file bytes — no copy, no
// intermediate vector — which feeds the chunked bit-plane reduction directly.
//
// Versioning policy: the version field is bumped on any layout change; a
// reader rejects versions it does not know (no silent best-effort parse).
// Byte order is little-endian on disk, full stop. The zero-copy read path
// requires a little-endian host (checked at runtime with a clear error);
// supporting big-endian hosts would mean a byteswapping copy, which defeats
// the format's purpose — such hosts should convert via the text format.
//
// Every malformed input — short header, bad magic, unknown version, width
// out of [1, 64], payload disagreeing with the declared count, misaligned
// buffer, nonzero bits above the width — raises std::runtime_error naming
// the source; nothing is ever silently truncated or misparsed.

#include <array>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace tsvcod::streams {

inline constexpr std::array<unsigned char, 8> kBinaryTraceMagic = {'t',  's',  'v',  'b',
                                                                   0x0D, 0x0A, 0x1A, 0x0A};
inline constexpr std::uint32_t kBinaryTraceVersion = 1;
inline constexpr std::size_t kBinaryTraceHeaderBytes = 32;

struct BinaryTraceHeader {
  std::uint32_t version = kBinaryTraceVersion;
  std::size_t width = 0;
  std::uint64_t word_count = 0;
  std::uint64_t seed = 0;  ///< provenance tag, opaque to the reader
};

/// Parsed view of an in-memory .tsvb image. `words` aliases the parsed
/// buffer; it is valid only as long as that buffer lives.
struct BinaryTraceView {
  BinaryTraceHeader header;
  std::span<const std::uint64_t> words;
};

/// True when `data` starts with the .tsvb magic (needs >= 8 bytes).
bool looks_like_binary_trace(const unsigned char* data, std::size_t size);

/// Sniff the first bytes of `path`; throws std::runtime_error if the file
/// cannot be opened. A short or unreadable-as-binary file returns false.
bool file_looks_like_binary_trace(const std::string& path);

/// Validate a complete in-memory image and return a zero-copy view. The
/// payload must be 8-byte aligned within `bytes` (mmap and any aligned
/// allocation satisfy this). Throws std::runtime_error naming `source` on
/// any malformation.
BinaryTraceView parse_binary_trace(std::span<const std::byte> bytes,
                                   const std::string& source = "<memory>");

/// Serialize `words` (all bits above `width` must be zero: errors name the
/// first offending word). The stream must be binary-mode.
void save_binary_trace(std::ostream& os, std::span<const std::uint64_t> words, std::size_t width,
                       std::uint64_t seed = 0);
void save_binary_trace(const std::string& path, std::span<const std::uint64_t> words,
                       std::size_t width, std::uint64_t seed = 0);

/// Streaming writer: the header goes out with a placeholder count that
/// close() patches once the real count is known, so arbitrarily long traces
/// stream through without being materialized. Words are staged in a small
/// buffer; every path validates the width invariant. close() (or the
/// destructor, best-effort) finalizes the file; only close() reports errors.
class BinaryTraceWriter {
 public:
  BinaryTraceWriter(const std::string& path, std::size_t width, std::uint64_t seed = 0);
  ~BinaryTraceWriter();
  BinaryTraceWriter(const BinaryTraceWriter&) = delete;
  BinaryTraceWriter& operator=(const BinaryTraceWriter&) = delete;

  void write(std::uint64_t word);
  void write(std::span<const std::uint64_t> words);
  /// Flush, patch the header word count and close. Throws on I/O failure.
  void close();

  std::size_t width() const { return width_; }
  std::uint64_t written() const { return count_; }

 private:
  void flush_buffer();

  std::string path_;
  std::ofstream os_;
  std::size_t width_;
  std::uint64_t mask_;
  std::uint64_t count_ = 0;
  bool closed_ = false;
  std::vector<std::uint64_t> buffer_;
};

/// Read-only memory map of a .tsvb file, parsed and validated on open. On
/// POSIX the words() span aliases the mapped pages (zero-copy, advised for
/// sequential access); elsewhere the file is read into an aligned buffer.
class MappedTrace {
 public:
  explicit MappedTrace(const std::string& path);
  ~MappedTrace();
  MappedTrace(MappedTrace&& other) noexcept;
  MappedTrace& operator=(MappedTrace&& other) noexcept;
  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;

  const BinaryTraceHeader& header() const { return view_.header; }
  std::span<const std::uint64_t> words() const { return view_.words; }
  /// Total file size in bytes (header + payload).
  std::size_t bytes() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  void unmap() noexcept;

  std::string path_;
  void* map_ = nullptr;  ///< non-null iff mmap-backed
  std::size_t size_ = 0;
  std::vector<std::uint64_t> fallback_;  ///< aligned copy when not mmap-backed
  BinaryTraceView view_;
};

}  // namespace tsvcod::streams
