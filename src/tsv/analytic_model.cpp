#include "tsv/analytic_model.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>
#include <vector>

#include "phys/constants.hpp"
#include "phys/depletion.hpp"

namespace tsvcod::tsv {

namespace {

using std::complex;
using phys::eps0;
using phys::pi;

struct TsvState {
  double x = 0.0;
  double y = 0.0;
  double c_mos = 0.0;   ///< series oxide+depletion capacitance per length [F/m]
  double r_out = 0.0;   ///< depletion outer radius [m]
};

/// Two-cylinder geometry factor 1/acosh(arg) for conductors of radii a, b at
/// centre distance s; per-unit-length capacitance is pi*eps/acosh-term for
/// the symmetric case (factor handles the general one).
double pair_geometry_factor(double a, double b, double s) {
  const double arg = (s * s - a * a - b * b) / (2.0 * a * b);
  if (arg <= 1.0) return 1e3;  // touching/overlapping: essentially shorted
  return 1.0 / std::acosh(arg);
}

/// Effective series capacitance per length of C_mos,a -- substrate path --
/// C_mos,b, where the substrate path has the complex admittance of the lossy
/// silicon. Returns Im{Y}/omega [F/m].
double series_pair_capacitance(double c_mos_a, double c_mos_b, double geo_factor,
                               double sigma, double omega) {
  const complex<double> j{0.0, 1.0};
  const complex<double> y_si =
      2.0 * pi * geo_factor * (sigma + j * omega * eps0 * phys::eps_r_si);
  const complex<double> y_a = j * omega * c_mos_a;
  const complex<double> y_b = j * omega * c_mos_b;
  const complex<double> y = 1.0 / (1.0 / y_a + 1.0 / y_si + 1.0 / y_b);
  return y.imag() / omega;
}

/// Series capacitance per length of C_mos -- coaxial substrate shell to the
/// grounded contact at distance d_gnd.
double series_ground_capacitance(double c_mos, double r_out, double d_gnd, double sigma,
                                 double omega) {
  const complex<double> j{0.0, 1.0};
  if (d_gnd <= r_out) d_gnd = 2.0 * r_out;
  const double geo = 2.0 * pi / std::log(d_gnd / r_out);
  const complex<double> y_si = geo * (sigma + j * omega * eps0 * phys::eps_r_si);
  const complex<double> y_mos = j * omega * c_mos;
  const complex<double> y = 1.0 / (1.0 / y_mos + 1.0 / y_si);
  return y.imag() / omega;
}

/// Fraction of directions owned by each destination.
/// ownership[i][j] = fraction of TSV i's rays that terminate on TSV j;
/// ownership[i][n] (extra slot) = fraction reaching the substrate ground.
/// A ray's destination is the candidate with the smallest effective distance
/// s / cos(angle)^p; the grounded substrate contact competes at distance
/// `d_gnd` in every direction.
std::vector<std::vector<double>> ray_ownership(const std::vector<TsvState>& tsv,
                                               const AnalyticModelParams& params,
                                               double cutoff, double d_gnd) {
  const std::size_t n = tsv.size();
  std::vector<std::vector<double>> own(n, std::vector<double>(n + 1, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (int ray = 0; ray < params.ray_count; ++ray) {
      const double theta = 2.0 * pi * (static_cast<double>(ray) + 0.5) /
                           static_cast<double>(params.ray_count);
      const double ux = std::cos(theta);
      const double uy = std::sin(theta);
      double best = d_gnd;
      std::size_t dest = n;  // ground by default
      for (std::size_t k = 0; k < n; ++k) {
        if (k == i) continue;
        const double dx = tsv[k].x - tsv[i].x;
        const double dy = tsv[k].y - tsv[i].y;
        const double s = std::hypot(dx, dy);
        if (s > cutoff) continue;
        const double cosang = (dx * ux + dy * uy) / s;
        if (cosang < params.cos_min) continue;
        const double effective = s / std::pow(cosang, params.obliqueness_power);
        if (effective < best) {
          best = effective;
          dest = k;
        }
      }
      own[i][dest] += 1.0 / static_cast<double>(params.ray_count);
    }
  }
  return own;
}

/// Angular fraction an isolated partner at distance `s` owns under the same
/// ray rule (competing only against ground); normalizes the partition so an
/// isolated pair reproduces the raw two-cylinder capacitance exactly.
double isolated_pair_fraction(double s, double d_gnd, const AnalyticModelParams& params) {
  // Partner wins direction theta iff cos >= cos_min and s/cos^p < d_gnd.
  const double ratio = s / d_gnd;
  double cos_floor = params.cos_min;
  if (ratio > 0.0 && ratio < 1.0) {
    cos_floor = std::max(cos_floor, std::pow(ratio, 1.0 / params.obliqueness_power));
  } else if (ratio >= 1.0) {
    return 0.0;
  }
  return std::acos(std::min(1.0, cos_floor)) / pi;
}

}  // namespace

double isolated_pair_capacitance_per_length(const phys::TsvArrayGeometry& geom, double s,
                                            double pr_a, double pr_b,
                                            const AnalyticModelParams& params) {
  const double r = geom.radius;
  const double t_ox = geom.oxide_thickness();
  const double omega = 2.0 * pi * params.frequency;
  const double c_a = phys::mos_capacitance_per_length(r, t_ox, pr_a, geom.mos);
  const double c_b = phys::mos_capacitance_per_length(r, t_ox, pr_b, geom.mos);
  const double wa = phys::depletion_width_for_probability(r, t_ox, pr_a, geom.mos);
  const double wb = phys::depletion_width_for_probability(r, t_ox, pr_b, geom.mos);
  const double geo = pair_geometry_factor(geom.liner_radius() + wa, geom.liner_radius() + wb, s);
  return series_pair_capacitance(c_a, c_b, geo, geom.mos.substrate_sigma, omega);
}

phys::Matrix analytic_capacitance(const phys::TsvArrayGeometry& geom,
                                  std::span<const double> probabilities,
                                  const AnalyticModelParams& params) {
  geom.validate();
  const std::size_t n = geom.count();
  if (probabilities.size() != n) {
    throw std::invalid_argument("analytic_capacitance: one probability per TSV required");
  }
  const double r = geom.radius;
  const double t_ox = geom.oxide_thickness();
  const double omega = 2.0 * pi * params.frequency;
  const double sigma = geom.mos.substrate_sigma;
  const double d_gnd = params.ground_distance > 0.0 ? params.ground_distance : 3.0 * geom.pitch;
  const double cutoff = params.pair_cutoff * geom.pitch;

  std::vector<TsvState> tsv(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = geom.position(i);
    tsv[i].x = p.x;
    tsv[i].y = p.y;
    tsv[i].c_mos = phys::mos_capacitance_per_length(r, t_ox, probabilities[i], geom.mos);
    tsv[i].r_out = geom.liner_radius() +
                   phys::depletion_width_for_probability(r, t_ox, probabilities[i], geom.mos);
  }

  const auto own = ray_ownership(tsv, params, cutoff, d_gnd);

  phys::Matrix c(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double s = geom.distance(i, j);
      if (s > cutoff) continue;
      const double f_ref = isolated_pair_fraction(s, d_gnd, params);
      if (f_ref <= 0.0) continue;
      const double frac = 0.5 * (own[i][j] + own[j][i]) / f_ref;
      if (frac <= 0.0) continue;
      const double geo = pair_geometry_factor(tsv[i].r_out, tsv[j].r_out, s);
      const double c_pair =
          series_pair_capacitance(tsv[i].c_mos, tsv[j].c_mos, geo, sigma, omega) * frac;
      c(i, j) = c(j, i) = c_pair * geom.length;
    }
    const double gnd_frac = own[i][n];
    c(i, i) = series_ground_capacitance(tsv[i].c_mos, tsv[i].r_out, d_gnd, sigma, omega) *
              gnd_frac * geom.length;
  }
  return c;
}

}  // namespace tsvcod::tsv
