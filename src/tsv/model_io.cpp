#include "tsv/model_io.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace tsvcod::tsv {

namespace {

constexpr const char* kMagic = "tsvcod-linear-capacitance";

/// Next non-empty, non-comment line.
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos) continue;
    if (line[pos] == '#') continue;
    return true;
  }
  return false;
}

void write_matrix(std::ostream& os, const char* tag, const phys::Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << tag;
    for (std::size_t c = 0; c < m.cols(); ++c) os << ' ' << m(r, c);
    os << '\n';
  }
}

phys::Matrix read_matrix(std::istream& is, const char* tag, std::size_t n) {
  phys::Matrix m(n, n);
  std::string line;
  for (std::size_t r = 0; r < n; ++r) {
    if (!next_line(is, line)) throw std::runtime_error("model_io: truncated matrix");
    std::istringstream ls(line);
    std::string got;
    ls >> got;
    if (got != tag) throw std::runtime_error("model_io: expected '" + std::string(tag) + "' row");
    for (std::size_t c = 0; c < n; ++c) {
      if (!(ls >> m(r, c))) throw std::runtime_error("model_io: short matrix row");
      // operator>> happily parses "nan"/"inf"; a capacitance model with a
      // non-finite entry poisons every power number downstream.
      if (!std::isfinite(m(r, c))) {
        throw std::runtime_error("model_io: non-finite " + std::string(tag) + " entry: " + line);
      }
    }
    std::string extra;
    if (ls >> extra) {
      throw std::runtime_error("model_io: trailing data on " + std::string(tag) +
                               " row: " + extra);
    }
  }
  return m;
}

}  // namespace

void save_linear_model(std::ostream& os, const LinearCapacitanceModel& model) {
  os << kMagic << " v1\n";
  os << "# C_R: capacitances at all bit probabilities 1/2 [F]\n";
  os << "# DC : sensitivity to eps_i + eps_j [F]\n";
  os << std::setprecision(17);
  os << "n " << model.size() << '\n';
  write_matrix(os, "CR", model.c_ref());
  write_matrix(os, "DC", model.delta_c());
}

void save_linear_model(const std::string& path, const LinearCapacitanceModel& model) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("model_io: cannot open for writing: " + path);
  save_linear_model(os, model);
}

LinearCapacitanceModel load_linear_model(std::istream& is) {
  std::string line;
  if (!next_line(is, line) || line.rfind(kMagic, 0) != 0) {
    throw std::runtime_error("model_io: missing magic header");
  }
  if (!next_line(is, line)) throw std::runtime_error("model_io: missing size");
  std::istringstream ls(line);
  std::string tag;
  std::size_t n = 0;
  ls >> tag >> n;
  if (tag != "n" || n == 0 || n > 64) throw std::runtime_error("model_io: bad size line");
  phys::Matrix cr = read_matrix(is, "CR", n);
  phys::Matrix dc = read_matrix(is, "DC", n);
  return LinearCapacitanceModel(std::move(cr), std::move(dc));
}

LinearCapacitanceModel load_linear_model(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("model_io: cannot open: " + path);
  return load_linear_model(is);
}

}  // namespace tsvcod::tsv
