#pragma once
// Linear capacitance-vs-bit-probability model (paper Eq. 6/7).
//
// The exact probability -> capacitance relation (through the depletion-width
// Poisson solve and the field problem) is too expensive and too opaque for
// assignment optimization. The paper instead fits
//     C_ij = C_R,ij + DeltaC_ij * (eps_i + eps_j),   eps_i = E{b_i} - 1/2
// which keeps inversions representable as a sign flip of eps_i. The fit uses
// the two extreme extractions (all probabilities 0 / all 1):
//     DeltaC = (C(1) - C(0)) / 2,  C_R = (C(1) + C(0)) / 2.
// The paper reports a normalized RMS error below 2 % for this model;
// `linearity_nrmse` measures the same figure against any backend.

#include <functional>
#include <span>

#include "field/extractor.hpp"
#include "phys/matrix.hpp"
#include "phys/tsv_geometry.hpp"
#include "tsv/analytic_model.hpp"

namespace tsvcod::tsv {

/// A capacitance extractor: probabilities (one per TSV) -> paper-form matrix.
using CapacitanceBackend = std::function<phys::Matrix(std::span<const double>)>;

class LinearCapacitanceModel {
 public:
  LinearCapacitanceModel() = default;
  LinearCapacitanceModel(phys::Matrix c_ref, phys::Matrix delta_c);

  std::size_t size() const { return c_ref_.rows(); }

  /// C_R: capacitances at all bit probabilities = 1/2.
  const phys::Matrix& c_ref() const { return c_ref_; }
  /// DeltaC: sensitivity to eps_i + eps_j (negative for TSVs: the MOS
  /// depletion widens with probability and shrinks the capacitance).
  const phys::Matrix& delta_c() const { return delta_c_; }

  /// Evaluate the matrix for per-line 1-bit probabilities.
  phys::Matrix evaluate(std::span<const double> probabilities) const;
  /// Evaluate for shifted probabilities eps_i = pr_i - 1/2 (signed: an
  /// inverted line simply negates its entry).
  phys::Matrix evaluate_eps(std::span<const double> eps) const;

 private:
  phys::Matrix c_ref_;
  phys::Matrix delta_c_;
};

/// Fit from any backend with two extractions (all-0 / all-1 probabilities).
LinearCapacitanceModel fit_linear_model(const CapacitanceBackend& backend, std::size_t n);

/// Fit using the fast analytic model.
LinearCapacitanceModel fit_from_analytic(const phys::TsvArrayGeometry& geom,
                                         const AnalyticModelParams& params = {});

/// Aggregate per-conductor solver statistics of a field-backend fit, so
/// callers can report convergence behaviour instead of discarding it.
struct FieldFitStats {
  std::size_t solves = 0;        ///< field solves across both fit points
  long long iterations = 0;      ///< total BiCGStab iterations
  std::size_t trivial = 0;       ///< zero-rhs (shielded-conductor) solves
  std::size_t nonconverged = 0;  ///< solves that missed the tolerance
  /// Preconditioner that actually ran (multigrid requests report jacobi when
  /// the grid was too small to coarsen); from the first non-trivial solve.
  field::Preconditioner preconditioner = field::Preconditioner::multigrid;
};

/// Fit using the finite-difference field extractor (slow; golden reference).
/// `stats`, if given, receives the aggregated solver statistics.
LinearCapacitanceModel fit_from_field(const phys::TsvArrayGeometry& geom,
                                      const field::ExtractionOptions& opts = {},
                                      FieldFitStats* stats = nullptr);

/// Normalized RMS error of the linear model against the backend, sampled at
/// `samples` random probability vectors (normalization: RMS of the backend
/// entries), mirroring the <2 % figure quoted in the paper.
double linearity_nrmse(const CapacitanceBackend& backend, const LinearCapacitanceModel& model,
                       std::size_t n, int samples, unsigned seed = 1);

}  // namespace tsvcod::tsv
