#pragma once
// Local escape-routing overhead model (paper Sec. 3).
//
// The assignment only permutes bits *within* one TSV array; the cost is a
// slightly longer local metal route from each bit's arrival point at the
// array boundary to its assigned TSV. The paper quantifies this for a 3x3
// array in a 40 nm process: worst-case +0.4 % path parasitics, mean < 0.2 %,
// std < 0.1 % over all assignments. This module reproduces that study with a
// Manhattan wirelength model: bit i arrives at an entry point on the south
// edge of the array and is routed to TSV pi(i); the path parasitic is the
// TSV's total capacitance plus the wire capacitance of the route.

#include <cstddef>
#include <span>
#include <vector>

#include "phys/tsv_geometry.hpp"

namespace tsvcod::tsv {

struct RoutingParams {
  double wire_cap_per_m = 0.2e-9;  ///< local wire capacitance [F/m] (0.2 fF/um)
  /// Assignment-independent parasitics on every path (a strength-6 driver output, receiver
  /// input, landing pads) [F]; they dilute the relative routing overhead just
  /// as they do in the paper's commercial-flow extraction.
  double fixed_path_cap = 40e-15;
  double entry_offset = 0.0;       ///< entry row distance below the array [m]; 0 = one pitch
};

/// Evenly spaced bit entry points along the array's south edge.
std::vector<phys::Point2> entry_points(const phys::TsvArrayGeometry& geom);

/// Total Manhattan wirelength [m] of assignment `tsv_of_bit` (bit i routed to
/// TSV tsv_of_bit[i]).
double assignment_wirelength(const phys::TsvArrayGeometry& geom,
                             std::span<const std::size_t> tsv_of_bit,
                             const RoutingParams& params = {});

/// Mean per-bit path parasitic [F] of an assignment: per-TSV total
/// capacitance (`tsv_total_cap`, paper-form row sums) plus routed wire cap.
double assignment_path_parasitics(const phys::TsvArrayGeometry& geom,
                                  std::span<const std::size_t> tsv_of_bit,
                                  std::span<const double> tsv_total_cap,
                                  const RoutingParams& params = {});

struct OverheadStats {
  double worst_pct = 0.0;   ///< worst-case parasitic increase vs. optimum [%]
  double mean_pct = 0.0;
  double stddev_pct = 0.0;
  std::size_t assignments = 0;  ///< number of assignments evaluated
  bool exhaustive = false;
};

/// Parasitic-increase statistics over assignments, relative to the
/// minimum-parasitic assignment. Arrays up to 9 TSVs are enumerated
/// exhaustively (9! assignments); larger arrays are sampled.
OverheadStats routing_overhead_stats(const phys::TsvArrayGeometry& geom,
                                     std::span<const double> tsv_total_cap,
                                     const RoutingParams& params = {},
                                     std::size_t sample_count = 100000, unsigned seed = 1);

}  // namespace tsvcod::tsv
