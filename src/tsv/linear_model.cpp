#include "tsv/linear_model.hpp"

#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

namespace tsvcod::tsv {

LinearCapacitanceModel::LinearCapacitanceModel(phys::Matrix c_ref, phys::Matrix delta_c)
    : c_ref_(std::move(c_ref)), delta_c_(std::move(delta_c)) {
  if (c_ref_.rows() != c_ref_.cols() || delta_c_.rows() != delta_c_.cols() ||
      c_ref_.rows() != delta_c_.rows()) {
    throw std::invalid_argument("LinearCapacitanceModel: square same-size matrices required");
  }
}

phys::Matrix LinearCapacitanceModel::evaluate(std::span<const double> probabilities) const {
  std::vector<double> eps(probabilities.size());
  for (std::size_t i = 0; i < probabilities.size(); ++i) eps[i] = probabilities[i] - 0.5;
  return evaluate_eps(eps);
}

phys::Matrix LinearCapacitanceModel::evaluate_eps(std::span<const double> eps) const {
  const std::size_t n = size();
  if (eps.size() != n) throw std::invalid_argument("evaluate_eps: size mismatch");
  phys::Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out(i, j) = c_ref_(i, j) + delta_c_(i, j) * (eps[i] + eps[j]);
    }
  }
  return out;
}

LinearCapacitanceModel fit_linear_model(const CapacitanceBackend& backend, std::size_t n) {
  const std::vector<double> p0(n, 0.0);
  const std::vector<double> p1(n, 1.0);
  const phys::Matrix c0 = backend(p0);
  const phys::Matrix c1 = backend(p1);
  if (c0.rows() != n || c1.rows() != n) {
    throw std::invalid_argument("fit_linear_model: backend returned wrong size");
  }
  phys::Matrix c_ref(n, n);
  phys::Matrix delta(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      c_ref(i, j) = 0.5 * (c1(i, j) + c0(i, j));
      delta(i, j) = 0.5 * (c1(i, j) - c0(i, j));
    }
  }
  return LinearCapacitanceModel(std::move(c_ref), std::move(delta));
}

LinearCapacitanceModel fit_from_analytic(const phys::TsvArrayGeometry& geom,
                                         const AnalyticModelParams& params) {
  return fit_linear_model(
      [&](std::span<const double> pr) { return analytic_capacitance(geom, pr, params); },
      geom.count());
}

LinearCapacitanceModel fit_from_field(const phys::TsvArrayGeometry& geom,
                                      const field::ExtractionOptions& opts,
                                      FieldFitStats* stats) {
  // One extractor for both fit points: the second extraction reuses the
  // rasterized grid / field-problem setup and warm-starts every conductor's
  // solve from the first point's potentials.
  field::CapacitanceExtractor extractor(geom, opts);
  if (stats) *stats = FieldFitStats{};
  return fit_linear_model(
      [&](std::span<const double> pr) {
        auto res = extractor.extract(pr);
        if (stats) {
          for (const auto& s : res.stats) {
            ++stats->solves;
            stats->iterations += s.iterations;
            if (s.trivial) ++stats->trivial;
            if (!s.converged) ++stats->nonconverged;
            if (!s.trivial) stats->preconditioner = s.preconditioner;
          }
        }
        return res.paper;
      },
      geom.count());
}

double linearity_nrmse(const CapacitanceBackend& backend, const LinearCapacitanceModel& model,
                       std::size_t n, int samples, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  double err2 = 0.0;
  double ref2 = 0.0;
  std::vector<double> pr(n);
  for (int s = 0; s < samples; ++s) {
    for (auto& p : pr) p = uni(rng);
    const phys::Matrix exact = backend(pr);
    const phys::Matrix approx = model.evaluate(pr);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const double d = exact(i, j) - approx(i, j);
        err2 += d * d;
        ref2 += exact(i, j) * exact(i, j);
      }
    }
  }
  return ref2 > 0.0 ? std::sqrt(err2 / ref2) : 0.0;
}

}  // namespace tsvcod::tsv
