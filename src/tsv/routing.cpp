#include "tsv/routing.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace tsvcod::tsv {

std::vector<phys::Point2> entry_points(const phys::TsvArrayGeometry& geom) {
  geom.validate();
  const std::size_t n = geom.count();
  const double width = static_cast<double>(geom.cols - 1) * geom.pitch;
  std::vector<phys::Point2> pts(n);
  const double y = -geom.pitch;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = n > 1 ? width * static_cast<double>(i) / static_cast<double>(n - 1) : 0.0;
    pts[i] = {x, y};
  }
  return pts;
}

namespace {

double wirelength_of(const phys::TsvArrayGeometry& geom, const std::vector<phys::Point2>& entry,
                     std::span<const std::size_t> tsv_of_bit) {
  double total = 0.0;
  for (std::size_t bit = 0; bit < tsv_of_bit.size(); ++bit) {
    const auto p = geom.position(tsv_of_bit[bit]);
    total += std::abs(p.x - entry[bit].x) + std::abs(p.y - entry[bit].y);
  }
  return total;
}

}  // namespace

double assignment_wirelength(const phys::TsvArrayGeometry& geom,
                             std::span<const std::size_t> tsv_of_bit,
                             const RoutingParams& params) {
  (void)params;
  if (tsv_of_bit.size() != geom.count()) {
    throw std::invalid_argument("assignment_wirelength: assignment size mismatch");
  }
  return wirelength_of(geom, entry_points(geom), tsv_of_bit);
}

double assignment_path_parasitics(const phys::TsvArrayGeometry& geom,
                                  std::span<const std::size_t> tsv_of_bit,
                                  std::span<const double> tsv_total_cap,
                                  const RoutingParams& params) {
  if (tsv_of_bit.size() != geom.count() || tsv_total_cap.size() != geom.count()) {
    throw std::invalid_argument("assignment_path_parasitics: size mismatch");
  }
  const auto entry = entry_points(geom);
  double total = 0.0;
  for (std::size_t bit = 0; bit < tsv_of_bit.size(); ++bit) {
    const auto p = geom.position(tsv_of_bit[bit]);
    const double len = std::abs(p.x - entry[bit].x) + std::abs(p.y - entry[bit].y);
    total += params.fixed_path_cap + tsv_total_cap[tsv_of_bit[bit]] + len * params.wire_cap_per_m;
  }
  return total / static_cast<double>(tsv_of_bit.size());
}

OverheadStats routing_overhead_stats(const phys::TsvArrayGeometry& geom,
                                     std::span<const double> tsv_total_cap,
                                     const RoutingParams& params, std::size_t sample_count,
                                     unsigned seed) {
  const std::size_t n = geom.count();
  if (tsv_total_cap.size() != n) {
    throw std::invalid_argument("routing_overhead_stats: capacitance vector size mismatch");
  }
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});

  OverheadStats stats;
  stats.exhaustive = n <= 9;

  // First pass: the minimum-parasitic assignment (the "wire length
  // minimization" routing the paper compares against).
  double best = 1e300;
  auto eval = [&](const std::vector<std::size_t>& p) {
    return assignment_path_parasitics(geom, p, tsv_total_cap, params);
  };
  std::mt19937 rng(seed);
  if (stats.exhaustive) {
    auto p = perm;
    std::sort(p.begin(), p.end());
    do {
      best = std::min(best, eval(p));
    } while (std::next_permutation(p.begin(), p.end()));
  } else {
    // Sorted-by-entry heuristic is optimal for the 1-D part; refine by
    // sampled shuffles.
    best = eval(perm);
    auto p = perm;
    for (std::size_t s = 0; s < sample_count; ++s) {
      std::shuffle(p.begin(), p.end(), rng);
      best = std::min(best, eval(p));
    }
  }

  // Second pass: statistics of the increase over all (or sampled) assignments.
  double sum = 0.0;
  double sum2 = 0.0;
  double worst = 0.0;
  std::size_t count = 0;
  auto accumulate = [&](const std::vector<std::size_t>& p) {
    const double inc = (eval(p) / best - 1.0) * 100.0;
    sum += inc;
    sum2 += inc * inc;
    worst = std::max(worst, inc);
    ++count;
  };
  if (stats.exhaustive) {
    auto p = perm;
    std::sort(p.begin(), p.end());
    do {
      accumulate(p);
    } while (std::next_permutation(p.begin(), p.end()));
  } else {
    auto p = perm;
    for (std::size_t s = 0; s < sample_count; ++s) {
      std::shuffle(p.begin(), p.end(), rng);
      accumulate(p);
    }
  }
  stats.assignments = count;
  stats.worst_pct = worst;
  stats.mean_pct = sum / static_cast<double>(count);
  stats.stddev_pct =
      std::sqrt(std::max(0.0, sum2 / static_cast<double>(count) - stats.mean_pct * stats.mean_pct));
  return stats;
}

}  // namespace tsvcod::tsv
