#pragma once
// Fast analytic capacitance model for TSV arrays.
//
// The finite-difference extractor (src/field) is the golden reference but
// costs seconds per geometry; experiment sweeps need thousands of matrix
// evaluations. This model reproduces the same three effects analytically:
//
//  * MOS effect      — per-TSV series oxide+depletion capacitance from the
//                      cylindrical deep-depletion solve (phys/depletion).
//  * pair coupling   — two-cylinder capacitance/conductance through the lossy
//                      substrate, evaluated as a complex admittance chain
//                      C_mos,i -- (G_si || C_si) -- C_mos,j at the extraction
//                      frequency; the effective capacitance is Im{Y}/omega.
//  * E-field sharing — a direction-sampling partition: rays from each TSV are
//                      assigned to the nearest conductor (projected distance)
//                      or to the substrate ground; a pair's coupling scales
//                      with the angular fraction it owns, normalized so an
//                      isolated pair reproduces the plain two-cylinder value.
//
// Corner TSVs therefore own larger angular windows per neighbour (larger
// per-pair coupling, as in [Bamberg, Integration'18]) while middle TSVs have
// the largest total capacitance.

#include <span>

#include "phys/matrix.hpp"
#include "phys/tsv_geometry.hpp"

namespace tsvcod::tsv {

struct AnalyticModelParams {
  double frequency = 3e9;      ///< admittance evaluation frequency [Hz]
  double pair_cutoff = 2.2;    ///< include pairs with s <= cutoff * pitch
  double cos_min = 0.05;       ///< ray ownership: min cos(angle) towards a TSV
  /// Ray competition metric: effective distance s / cos(angle)^p. Penalizing
  /// oblique field paths hands diagonal neighbours a realistic angular wedge
  /// instead of starving them entirely, and strengthens the corner/edge/
  /// middle heterogeneity. p = 3 calibrates the corner-to-middle total-
  /// capacitance contrast to ~1.45x, which reproduces the reduction
  /// magnitudes the paper reports; p = 2 gives a flatter array.
  double obliqueness_power = 3.0;
  double ground_distance = 0.0;///< substrate contact distance [m]; 0 = 3 pitches
  int ray_count = 720;         ///< directions sampled per TSV
};

/// Paper-form capacitance matrix (diagonal = ground, off-diagonal = coupling,
/// units F) for the given per-TSV 1-bit probabilities.
phys::Matrix analytic_capacitance(const phys::TsvArrayGeometry& geom,
                                  std::span<const double> probabilities,
                                  const AnalyticModelParams& params = {});

/// Effective capacitance [F/m] of an isolated equal-radius cylinder pair at
/// centre distance `s`, including the MOS series elements of both TSVs.
/// Exposed for validation against the field solver.
double isolated_pair_capacitance_per_length(const phys::TsvArrayGeometry& geom, double s,
                                            double pr_a, double pr_b,
                                            const AnalyticModelParams& params = {});

}  // namespace tsvcod::tsv
