#pragma once
// Persistence for fitted capacitance models.
//
// Field extraction is the expensive step of the flow (seconds to minutes per
// geometry); a fitted LinearCapacitanceModel is tiny. This module stores one
// as a self-describing text file so extraction results can be shipped with a
// design kit and reloaded by the optimizer/CLI without rerunning the solver.
//
// Format (line oriented, '#' comments allowed):
//   tsvcod-linear-capacitance v1
//   n <size>
//   CR  <n*n doubles, row major, one row per line>
//   DC  <n*n doubles, row major, one row per line>

#include <iosfwd>
#include <string>

#include "tsv/linear_model.hpp"

namespace tsvcod::tsv {

void save_linear_model(std::ostream& os, const LinearCapacitanceModel& model);
void save_linear_model(const std::string& path, const LinearCapacitanceModel& model);

/// Throws std::runtime_error on malformed input.
LinearCapacitanceModel load_linear_model(std::istream& is);
LinearCapacitanceModel load_linear_model(const std::string& path);

}  // namespace tsvcod::tsv
