#include "check/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "check/generators.hpp"
#include "coding/factory.hpp"
#include "core/assignment_io.hpp"
#include "core/coded_link.hpp"
#include "core/evaluator.hpp"
#include "core/power.hpp"
#include "field/grid.hpp"
#include "field/solver.hpp"
#include "noc/simulator.hpp"
#include "stats/switching_stats.hpp"
#include "streams/binary_trace.hpp"
#include "streams/trace_io.hpp"
#include "streams/word_stream.hpp"
#include "tsv/model_io.hpp"

namespace tsvcod::check {

namespace {

std::string hex_words(const std::vector<std::uint64_t>& words, std::size_t limit = 32) {
  std::ostringstream os;
  os << std::hex << '[';
  for (std::size_t i = 0; i < words.size() && i < limit; ++i) {
    if (i) os << ' ';
    os << "0x" << words[i];
  }
  if (words.size() > limit) os << " ...(" << std::dec << words.size() << " total)";
  os << ']';
  return os.str();
}

/// Halves first (fast size reduction), then single-element deletions; index
/// pairs let callers shrink parallel arrays in lockstep.
std::vector<std::pair<std::size_t, std::size_t>> subrange_candidates(std::size_t n,
                                                                     std::size_t min_len) {
  std::vector<std::pair<std::size_t, std::size_t>> out;  // (begin, end) kept
  if (n > min_len) {
    if (n / 2 >= min_len) {
      out.emplace_back(0, n / 2);
      out.emplace_back(n - n / 2, n);
    }
    const std::size_t deletions = std::min<std::size_t>(n, 24);
    for (std::size_t i = 0; i < deletions; ++i) out.emplace_back(i, i);  // (i, i) = drop index i
  }
  return out;
}

// ---------------------------------------------------------------------------
// Oracle 1: codec round-trip through CodedLink.
// ---------------------------------------------------------------------------

struct CodecCase {
  coding::CodecSpec spec;
  std::size_t width = 1;
  core::SignedPermutation assignment{1};
  std::vector<std::uint64_t> words;
  std::vector<std::uint8_t> reset_before;  ///< atomic link reset before word k
  bool desync = false;                     ///< also run the one-sided-reset recovery scenario
};

CodecCase gen_codec_case(Rng& rng) {
  CodecCase cc;
  const auto& names = coding::codec_names();
  cc.spec.name = names[rng.below(names.size())];
  cc.spec.period = 1 + rng.below(4);
  cc.spec.stride = 1 + rng.below(3);
  cc.spec.lambda = rng.real(0.5, 4.0);
  const std::size_t max = coding::codec_max_width(cc.spec.name);
  switch (rng.below(4)) {
    case 0: cc.width = 1; break;
    case 1: cc.width = max; break;
    default: cc.width = 1 + rng.below(max); break;
  }
  cc.spec.inversion_mask = rng.u64() & streams::width_mask(cc.width);
  const auto codec = coding::make_codec(cc.spec, cc.width);
  cc.assignment = gen_assignment(rng, codec->width_out());
  cc.words = gen_trace(rng, cc.width, 3 + rng.below(48));
  cc.reset_before.resize(cc.words.size());
  for (auto& r : cc.reset_before) r = rng.chance(0.08) ? 1 : 0;
  cc.desync = rng.chance(0.3);
  return cc;
}

std::optional<std::string> check_codec_case(const CodecCase& cc) {
  core::CodedLink link(cc.assignment, coding::make_codec(cc.spec, cc.width));
  if (link.payload_width() != cc.width) return "payload width disagrees with codec width_in";
  for (std::size_t k = 0; k < cc.words.size(); ++k) {
    if (cc.reset_before[k]) link.reset();
    const std::uint64_t got = link.roundtrip(cc.words[k]);
    if (got != cc.words[k]) {
      std::ostringstream os;
      os << std::hex << "round-trip mismatch at word " << std::dec << k << ": sent 0x" << std::hex
         << cc.words[k] << ", received 0x" << got;
      return os.str();
    }
  }
  if (cc.desync) {
    // Desync the pair on purpose (tx-only reset), then verify the atomic
    // reset() restores decodability no matter how confused the pair got.
    link.reset();
    const std::size_t third = cc.words.size() / 3;
    for (std::size_t k = 0; k < third; ++k) (void)link.roundtrip(cc.words[k]);
    link.transmitter().reset();
    for (std::size_t k = third; k < 2 * third; ++k) {
      try {
        (void)link.roundtrip(cc.words[k]);  // may mismatch or throw; both fine here
      } catch (const std::exception&) {
      }
    }
    link.reset();
    for (std::size_t k = 2 * third; k < cc.words.size(); ++k) {
      const std::uint64_t got = link.roundtrip(cc.words[k]);
      if (got != cc.words[k]) {
        std::ostringstream os;
        os << "atomic reset failed to recover from one-sided desync: word " << k << " sent 0x"
           << std::hex << cc.words[k] << ", received 0x" << got;
        return os.str();
      }
    }
  }
  return std::nullopt;
}

std::vector<CodecCase> shrink_codec_case(const CodecCase& cc) {
  std::vector<CodecCase> out;
  if (cc.desync) {
    CodecCase c = cc;
    c.desync = false;
    out.push_back(std::move(c));
  }
  bool any_reset = false;
  for (const auto r : cc.reset_before) any_reset |= r != 0;
  if (any_reset) {
    CodecCase c = cc;
    c.reset_before.assign(c.reset_before.size(), 0);
    out.push_back(std::move(c));
  }
  for (const auto& [b, e] : subrange_candidates(cc.words.size(), 1)) {
    CodecCase c = cc;
    if (b == e) {  // drop index b
      c.words.erase(c.words.begin() + static_cast<std::ptrdiff_t>(b));
      c.reset_before.erase(c.reset_before.begin() + static_cast<std::ptrdiff_t>(b));
    } else {
      c.words.assign(cc.words.begin() + static_cast<std::ptrdiff_t>(b),
                     cc.words.begin() + static_cast<std::ptrdiff_t>(e));
      c.reset_before.assign(cc.reset_before.begin() + static_cast<std::ptrdiff_t>(b),
                            cc.reset_before.begin() + static_cast<std::ptrdiff_t>(e));
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::string describe_codec_case(const CodecCase& cc) {
  std::ostringstream os;
  os << "codec=" << cc.spec.name << " width=" << cc.width << " period=" << cc.spec.period
     << " stride=" << cc.spec.stride << " mask=0x" << std::hex << cc.spec.inversion_mask
     << std::dec << " desync=" << (cc.desync ? "yes" : "no") << "\n  words=" << hex_words(cc.words)
     << "\n  resets-before=[";
  bool first = true;
  for (std::size_t k = 0; k < cc.reset_before.size(); ++k) {
    if (!cc.reset_before[k]) continue;
    if (!first) os << ' ';
    os << k;
    first = false;
  }
  os << "]\n  assignment: bit->line(inv) ";
  for (std::size_t bit = 0; bit < cc.assignment.size(); ++bit) {
    os << bit << "->" << cc.assignment.line_of_bit(bit) << (cc.assignment.inverted(bit) ? "~" : "")
       << ' ';
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Oracle 2: incremental PowerEvaluator vs dense assignment_power.
// ---------------------------------------------------------------------------

struct EvalMove {
  bool toggle = false;  ///< false = swap(a, b), true = toggle(a)
  std::size_t a = 0;
  std::size_t b = 0;
};

struct EvalCase {
  tsv::LinearCapacitanceModel model;
  stats::SwitchingStats bits;
  core::SignedPermutation initial{1};
  std::vector<EvalMove> moves;
};

EvalCase gen_eval_case(Rng& rng) {
  EvalCase ec;
  const std::size_t n = 2 + rng.below(11);
  ec.model = gen_model(rng, n, rng.chance(0.5));
  ec.bits = gen_stats(rng, n, 16 + rng.below(120));
  ec.initial = gen_assignment(rng, n);
  const std::size_t count = 1 + rng.below(64);
  ec.moves.resize(count);
  for (auto& m : ec.moves) {
    m.toggle = rng.chance(0.35);
    m.a = rng.below(n);
    m.b = (m.a + 1 + rng.below(n - 1)) % n;
  }
  return ec;
}

std::optional<std::string> check_eval_case(const EvalCase& ec) {
  // Drift bound: far above rounding of the incremental updates (which touch
  // O(N) terms of magnitude <= the absolute capacitance mass per move), far
  // below any real sign or bookkeeping bug (those are O(1) relative).
  double mass = 0.0;
  const std::size_t n = ec.model.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      mass += std::abs(ec.model.c_ref()(i, j)) + std::abs(ec.model.delta_c()(i, j));
    }
  }
  const double tol = 1e-9 * mass * static_cast<double>(ec.moves.size() + 1);

  core::PowerEvaluator ev(ec.bits, ec.model, ec.initial);
  const auto dense = [&](const core::SignedPermutation& a) {
    return core::assignment_power(ec.bits, a, ec.model);
  };
  const auto compare = [&](double got, double want, const char* where) -> std::optional<std::string> {
    if (std::abs(got - want) <= tol) return std::nullopt;
    std::ostringstream os;
    os.precision(17);
    os << where << ": incremental " << got << " vs dense " << want << " (|delta| "
       << std::abs(got - want) << " > tol " << tol << ")";
    return os.str();
  };

  if (auto err = compare(ev.power(), dense(ec.initial), "after construction")) return err;
  for (std::size_t k = 0; k < ec.moves.size(); ++k) {
    const auto& m = ec.moves[k];
    const double p = m.toggle ? ev.toggle_inversion(m.a) : ev.swap_bits(m.a, m.b);
    if (p != ev.power()) return "move return value disagrees with power()";
    std::ostringstream where;
    where << "after move " << k;
    if (m.toggle) {
      where << " toggle(" << m.a << ')';
    } else {
      where << " swap(" << m.a << ',' << m.b << ')';
    }
    const std::string where_str = where.str();
    if (auto err = compare(p, dense(ev.assignment()), where_str.c_str())) return err;
  }
  if (auto err = compare(ev.recompute(), dense(ev.assignment()), "recompute()")) return err;
  // Batched pricing leg: score every generated move in one block against the
  // current state (no mutation); each score must match the dense power of
  // that single move applied on its own.
  {
    std::vector<core::PowerEvaluator::Move> batch(ec.moves.size());
    for (std::size_t k = 0; k < ec.moves.size(); ++k) {
      batch[k] = {ec.moves[k].toggle, ec.moves[k].a, ec.moves[k].b};
    }
    std::vector<double> scores(batch.size());
    ev.score_moves(batch, scores);
    for (std::size_t k = 0; k < batch.size(); ++k) {
      core::SignedPermutation a = ev.assignment();
      if (batch[k].is_toggle) {
        a.toggle_inversion(batch[k].a);
      } else {
        a.swap_bits(batch[k].a, batch[k].b);
      }
      std::ostringstream where;
      where << "score_moves[" << k << (batch[k].is_toggle ? "] toggle(" : "] swap(") << batch[k].a;
      if (!batch[k].is_toggle) where << ',' << batch[k].b;
      where << ')';
      const std::string where_str = where.str();
      if (auto err = compare(scores[k], dense(a), where_str.c_str())) return err;
    }
  }
  ev.reset(ec.initial);
  if (auto err = compare(ev.power(), dense(ec.initial), "after reset(initial)")) return err;
  return std::nullopt;
}

std::vector<EvalCase> shrink_eval_case(const EvalCase& ec) {
  std::vector<EvalCase> out;
  for (const auto& [b, e] : subrange_candidates(ec.moves.size(), 0)) {
    EvalCase c = ec;
    if (b == e) {
      c.moves.erase(c.moves.begin() + static_cast<std::ptrdiff_t>(b));
    } else {
      c.moves.assign(ec.moves.begin() + static_cast<std::ptrdiff_t>(b),
                     ec.moves.begin() + static_cast<std::ptrdiff_t>(e));
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::string describe_eval_case(const EvalCase& ec) {
  std::ostringstream os;
  os << "n=" << ec.model.size() << " transitions=" << ec.bits.transitions << " moves=[";
  for (const auto& m : ec.moves) {
    if (m.toggle) {
      os << " toggle(" << m.a << ')';
    } else {
      os << " swap(" << m.a << ',' << m.b << ')';
    }
  }
  os << " ]";
  return os.str();
}

// ---------------------------------------------------------------------------
// Oracle 3: StatsAccumulator vs a naive O(N * w^2) reference.
// ---------------------------------------------------------------------------

struct StatsCase {
  std::size_t width = 1;
  std::vector<std::uint64_t> words;
};

StatsCase gen_stats_case(Rng& rng) {
  StatsCase sc;
  sc.width = 1 + rng.below(64);
  // Lengths straddle the bit-plane kernel's 64-transition block boundary:
  // short all-scalar-tail streams, exact multiples of 64 transitions, and
  // off-by-one partial tails all show up with real probability.
  switch (rng.below(4)) {
    case 0: sc.words = gen_trace(rng, sc.width, 2 + rng.below(64)); break;
    case 1: sc.words = gen_trace(rng, sc.width, 65 + 64 * rng.below(4)); break;  // n%64 == 1 tail-free
    case 2: sc.words = gen_trace(rng, sc.width, 64 + 64 * rng.below(4) + rng.below(3)); break;
    default: sc.words = gen_trace(rng, sc.width, 2 + rng.below(300)); break;
  }
  return sc;
}

/// Bitwise comparison of two SwitchingStats (the integer-counter contract:
/// not "close", *identical*).
std::optional<std::string> stats_bitwise_diff(const stats::SwitchingStats& a,
                                              const stats::SwitchingStats& b,
                                              const char* label) {
  const auto fail = [&](const char* what, std::size_t i, std::size_t j, double ga, double gb) {
    std::ostringstream os;
    os.precision(17);
    os << label << ": " << what << '[' << i << "][" << j << "] differs: " << ga << " vs " << gb;
    return os.str();
  };
  if (a.width != b.width) return std::string(label) + ": width differs";
  if (a.transitions != b.transitions) return std::string(label) + ": transitions differ";
  for (std::size_t i = 0; i < a.width; ++i) {
    if (a.prob_one[i] != b.prob_one[i]) return fail("prob_one", i, i, a.prob_one[i], b.prob_one[i]);
    if (a.self[i] != b.self[i]) return fail("self", i, i, a.self[i], b.self[i]);
    for (std::size_t j = 0; j < a.width; ++j) {
      if (a.coupling(i, j) != b.coupling(i, j)) {
        return fail("coupling", i, j, a.coupling(i, j), b.coupling(i, j));
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_stats_case(const StatsCase& sc) {
  const std::size_t w = sc.width;
  // Naive reference: recompute every statistic from scratch per transition,
  // O(N * w^2), with the exact divisions of StatsAccumulator::finish() — the
  // counts are small integers held in doubles, so both paths are exact and
  // the comparison is bitwise.
  std::vector<double> ones(w, 0.0), self(w, 0.0);
  phys::Matrix cross(w, w);
  const std::uint64_t mask = streams::width_mask(w);
  for (std::size_t t = 0; t < sc.words.size(); ++t) {
    const std::uint64_t cur = sc.words[t] & mask;
    for (std::size_t i = 0; i < w; ++i) ones[i] += static_cast<double>((cur >> i) & 1u);
    if (t == 0) continue;
    const std::uint64_t prev = sc.words[t - 1] & mask;
    for (std::size_t i = 0; i < w; ++i) {
      const int dbi = static_cast<int>((cur >> i) & 1u) - static_cast<int>((prev >> i) & 1u);
      if (dbi != 0) self[i] += 1.0;
      for (std::size_t j = i + 1; j < w; ++j) {
        const int dbj = static_cast<int>((cur >> j) & 1u) - static_cast<int>((prev >> j) & 1u);
        cross(i, j) += static_cast<double>(dbi * dbj);
      }
    }
  }
  const double nt = static_cast<double>(sc.words.size() - 1);
  const double nw = static_cast<double>(sc.words.size());

  stats::StatsAccumulator acc(w);
  for (const auto word : sc.words) acc.add(word);
  if (acc.samples() != sc.words.size()) return "samples() disagrees with word count";
  const stats::SwitchingStats got = acc.finish();
  if (got.width != w) return "finish() width mismatch";
  if (got.transitions != sc.words.size() - 1) return "finish() transition count mismatch";

  const auto fail = [&](const char* what, std::size_t i, std::size_t j, double g, double want) {
    std::ostringstream os;
    os.precision(17);
    os << what << '[' << i << "][" << j << "]: accumulator " << g << " vs reference " << want;
    return os.str();
  };
  for (std::size_t i = 0; i < w; ++i) {
    if (got.prob_one[i] != ones[i] / nw) {
      return fail("prob_one", i, i, got.prob_one[i], ones[i] / nw);
    }
    if (got.self[i] != self[i] / nt) return fail("self", i, i, got.self[i], self[i] / nt);
    if (got.coupling(i, i) != self[i] / nt) {
      return fail("coupling-diag", i, i, got.coupling(i, i), self[i] / nt);
    }
    for (std::size_t j = i + 1; j < w; ++j) {
      const double want = cross(i, j) / nt;
      if (got.coupling(i, j) != want) return fail("coupling", i, j, got.coupling(i, j), want);
      if (got.coupling(j, i) != want) return fail("coupling-sym", j, i, got.coupling(j, i), want);
    }
  }

  // The one-shot chunked reduction must be bitwise identical to the
  // streaming accumulator at every thread count (integer counters make the
  // chunk merge exact, so chunk boundaries cannot show through).
  for (const int threads : {1, 2, 5}) {
    const auto par = stats::compute_stats(sc.words, w, threads);
    if (auto diff = stats_bitwise_diff(par, got, "compute_stats")) {
      return "threads=" + std::to_string(threads) + " " + *diff;
    }
  }
  return std::nullopt;
}

std::vector<StatsCase> shrink_stats_case(const StatsCase& sc) {
  std::vector<StatsCase> out;
  for (const auto& [b, e] : subrange_candidates(sc.words.size(), 2)) {
    StatsCase c = sc;
    if (b == e) {
      if (sc.words.size() <= 2) continue;
      c.words.erase(c.words.begin() + static_cast<std::ptrdiff_t>(b));
    } else {
      c.words.assign(sc.words.begin() + static_cast<std::ptrdiff_t>(b),
                     sc.words.begin() + static_cast<std::ptrdiff_t>(e));
    }
    out.push_back(std::move(c));
  }
  if (sc.width > 1) {
    StatsCase c = sc;
    c.width = sc.width / 2;
    out.push_back(std::move(c));
  }
  return out;
}

std::string describe_stats_case(const StatsCase& sc) {
  return "width=" + std::to_string(sc.width) + " words=" + hex_words(sc.words);
}

// ---------------------------------------------------------------------------
// Oracle 4: Jacobi vs multigrid vs dense complex LU field solves.
// ---------------------------------------------------------------------------

struct FieldDisk {
  double cx = 0, cy = 0, r = 1;
  bool conductor = true;
  field::Complex eps{1.0, 0.0};
};

struct FieldCase {
  double w = 8, h = 8;
  field::Complex background{11.9, -2.0};
  std::vector<FieldDisk> disks;
};

FieldCase gen_field_case(Rng& rng) {
  FieldCase fc;
  fc.w = static_cast<double>(6 + rng.below(8));
  fc.h = static_cast<double>(6 + rng.below(8));
  fc.background = {rng.real(1.0, 12.0), -rng.real(0.0, 4.0)};
  const std::size_t conductors = 1 + rng.below(4);
  const std::size_t dielectrics = rng.below(3);
  for (std::size_t k = 0; k < conductors + dielectrics; ++k) {
    FieldDisk d;
    d.cx = rng.real(1.0, fc.w - 1.0);
    d.cy = rng.real(1.0, fc.h - 1.0);
    d.r = rng.real(0.8, 2.2);
    d.conductor = k < conductors;
    d.eps = {rng.real(1.0, 8.0), -rng.real(0.0, 2.0)};
    fc.disks.push_back(d);
  }
  return fc;
}

using Cx = field::Complex;

/// Dense LU with partial pivoting, factored once and solved per right-hand
/// side — the brute-force reference the iterative solver is judged against.
class DenseLu {
 public:
  explicit DenseLu(std::vector<Cx> a, std::size_t n) : n_(n), a_(std::move(a)), perm_(n) {
    for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;
    for (std::size_t col = 0; col < n_; ++col) {
      std::size_t pivot = col;
      for (std::size_t r = col + 1; r < n_; ++r) {
        if (std::abs(at(r, col)) > std::abs(at(pivot, col))) pivot = r;
      }
      if (std::abs(at(pivot, col)) < 1e-300) {
        singular_ = true;
        return;
      }
      if (pivot != col) {
        std::swap(perm_[pivot], perm_[col]);
        for (std::size_t c = 0; c < n_; ++c) std::swap(at(pivot, c), at(col, c));
      }
      for (std::size_t r = col + 1; r < n_; ++r) {
        const Cx f = at(r, col) / at(col, col);
        at(r, col) = f;
        for (std::size_t c = col + 1; c < n_; ++c) at(r, c) -= f * at(col, c);
      }
    }
  }

  bool singular() const { return singular_; }

  std::vector<Cx> solve(const std::vector<Cx>& b) const {
    std::vector<Cx> x(n_);
    for (std::size_t i = 0; i < n_; ++i) x[i] = b[perm_[i]];
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = 0; j < i; ++j) x[i] -= at(i, j) * x[j];
    }
    for (std::size_t i = n_; i-- > 0;) {
      for (std::size_t j = i + 1; j < n_; ++j) x[i] -= at(i, j) * x[j];
      x[i] /= at(i, i);
    }
    return x;
  }

 private:
  Cx& at(std::size_t r, std::size_t c) { return a_[r * n_ + c]; }
  const Cx& at(std::size_t r, std::size_t c) const { return a_[r * n_ + c]; }

  std::size_t n_;
  std::vector<Cx> a_;
  std::vector<std::size_t> perm_;
  bool singular_ = false;
};

double rel_error(const std::vector<Cx>& got, const std::vector<Cx>& want) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    num += std::norm(got[i] - want[i]);
    den += std::norm(want[i]);
  }
  if (den == 0.0) return std::sqrt(num) > 0.0 ? (num > 1e-20 ? 1.0 : 0.0) : 0.0;
  return std::sqrt(num / den);
}

std::optional<std::string> check_field_case(const FieldCase& fc) {
  field::Grid grid(fc.w, fc.h, 1.0);
  grid.fill(fc.background);
  std::int32_t next_id = 0;
  for (const auto& d : fc.disks) {
    grid.paint_disk(d.cx, d.cy, d.r, d.eps, d.conductor ? next_id++ : field::kNoConductor);
  }
  if (grid.conductor_count() == 0) return std::nullopt;

  field::FieldProblem fp(grid);
  const std::size_t n = fp.unknowns();
  if (n == 0) return std::nullopt;  // conductors swallowed the whole domain

  // Assemble the dense operator column by column through the same apply()
  // the iterative solver uses — both sides solve literally the same system.
  std::vector<Cx> a(n * n);
  std::vector<Cx> e(n), col(n);
  for (std::size_t j = 0; j < n; ++j) {
    e.assign(n, Cx{});
    e[j] = Cx{1.0, 0.0};
    fp.apply(e, col);
    for (std::size_t i = 0; i < n; ++i) a[i * n + j] = col[i];
  }
  const DenseLu lu(std::move(a), n);
  if (lu.singular()) return "field operator is numerically singular";

  constexpr double kTol = 1e-5;  // solver residual 1e-10 leaves orders of headroom
  const auto& cells = fp.free_cells();
  for (std::int32_t active = 0; active < grid.conductor_count(); ++active) {
    const std::vector<Cx> b = fp.rhs(active);
    const std::vector<Cx> x_ref = lu.solve(b);

    field::SolverOptions opts;
    opts.tolerance = 1e-10;
    const auto run = [&](field::Preconditioner p, const char* label)
        -> std::pair<std::optional<std::string>, std::vector<Cx>> {
      opts.preconditioner = p;
      field::SolveStats stats;
      const std::vector<Cx> phi = fp.solve(active, opts, &stats);
      if (!stats.converged) {
        return {std::string(label) + " solve did not converge for conductor " +
                    std::to_string(active),
                {}};
      }
      std::vector<Cx> x(n);
      for (std::size_t k = 0; k < n; ++k) x[k] = phi[cells[k]];
      const double err = rel_error(x, x_ref);
      if (err > kTol) {
        std::ostringstream os;
        os << label << " vs dense LU: relative error " << err << " > " << kTol
           << " for conductor " << active;
        return {os.str(), {}};
      }
      return {std::nullopt, phi};
    };

    auto [err_j, phi_j] = run(field::Preconditioner::jacobi, "jacobi");
    if (err_j) return err_j;
    auto [err_m, phi_m] = run(field::Preconditioner::multigrid, "multigrid");
    if (err_m) return err_m;

    const std::vector<Cx> q_j = fp.conductor_charges(phi_j);
    const std::vector<Cx> q_m = fp.conductor_charges(phi_m);
    double qmax = 0.0;
    for (const auto& q : q_j) qmax = std::max(qmax, std::abs(q));
    for (std::size_t c = 0; c < q_j.size(); ++c) {
      if (std::abs(q_j[c] - q_m[c]) > kTol * std::max(qmax, 1e-300)) {
        std::ostringstream os;
        os << "jacobi/multigrid charge mismatch on conductor " << c << " (active " << active
           << "): " << std::abs(q_j[c] - q_m[c]) << " vs scale " << qmax;
        return os.str();
      }
    }
  }
  return std::nullopt;
}

std::vector<FieldCase> shrink_field_case(const FieldCase& fc) {
  std::vector<FieldCase> out;
  for (std::size_t k = 0; k < fc.disks.size(); ++k) {
    if (fc.disks.size() == 1) break;
    FieldCase c = fc;
    c.disks.erase(c.disks.begin() + static_cast<std::ptrdiff_t>(k));
    out.push_back(std::move(c));
  }
  if (fc.w > 6.0 || fc.h > 6.0) {
    FieldCase c = fc;
    c.w = std::max(6.0, fc.w - 2.0);
    c.h = std::max(6.0, fc.h - 2.0);
    out.push_back(std::move(c));
  }
  return out;
}

std::string describe_field_case(const FieldCase& fc) {
  std::ostringstream os;
  os.precision(6);
  os << "grid " << fc.w << "x" << fc.h << " background (" << fc.background.real() << ','
     << fc.background.imag() << ") disks:";
  for (const auto& d : fc.disks) {
    os << " [" << (d.conductor ? "cond" : "diel") << " c=(" << d.cx << ',' << d.cy
       << ") r=" << d.r << ']';
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Oracle 5: text format round-trips and parser fuzzing.
// ---------------------------------------------------------------------------

struct IoCase {
  int kind = 0;  ///< 0 = trace, 1 = model, 2 = assignment
  std::string text;
  bool mutated = false;
};

const char* io_kind_name(int kind) {
  switch (kind) {
    case 0: return "trace";
    case 1: return "model";
    default: return "assignment";
  }
}

IoCase gen_io_case(Rng& rng) {
  IoCase io;
  io.kind = static_cast<int>(rng.below(3));
  std::ostringstream os;
  switch (io.kind) {
    case 0: {
      const auto words = gen_trace(rng, 1 + rng.below(64), rng.below(40));
      streams::save_trace(os, words);
      break;
    }
    case 1: {
      const auto model = gen_model(rng, 1 + rng.below(8), rng.chance(0.3));
      tsv::save_linear_model(os, model);
      break;
    }
    default: {
      const auto a = gen_assignment(rng, 1 + rng.below(16));
      core::save_assignment(os, a);
      break;
    }
  }
  io.text = os.str();
  io.mutated = rng.chance(0.6);
  if (io.mutated) io.text = mutate_text(rng, io.text, 1 + rng.below(8));
  return io;
}

/// Parse `text` and return its canonical re-saved form. Throws whatever the
/// parser throws.
std::string parse_and_resave(int kind, const std::string& text) {
  std::istringstream is(text);
  std::ostringstream os;
  switch (kind) {
    case 0: streams::save_trace(os, streams::parse_trace(is)); break;
    case 1: tsv::save_linear_model(os, tsv::load_linear_model(is)); break;
    default: core::save_assignment(os, core::load_assignment(is)); break;
  }
  return os.str();
}

std::optional<std::string> check_io_case(const IoCase& io) {
  std::string saved1;
  try {
    saved1 = parse_and_resave(io.kind, io.text);
  } catch (const std::runtime_error& e) {
    if (!io.mutated) {
      return std::string("pristine ") + io_kind_name(io.kind) + " file rejected: " + e.what();
    }
    return std::nullopt;  // rejecting mutated input with runtime_error is the contract
  } catch (const std::exception& e) {
    return std::string("parser leaked a non-runtime_error exception: ") + e.what();
  } catch (...) {
    return "parser leaked a non-standard exception";
  }
  if (!io.mutated && saved1 != io.text) {
    return "save -> load -> save is not byte-identical on a pristine file";
  }
  // Whatever the parser accepted (even from a mutated file) must itself be a
  // stable fixed point of the save/load pair.
  try {
    const std::string saved2 = parse_and_resave(io.kind, saved1);
    if (saved2 != saved1) return "accepted input is not a save/load fixed point";
  } catch (const std::exception& e) {
    return std::string("re-parse of saved output failed: ") + e.what();
  }
  return std::nullopt;
}

std::vector<IoCase> shrink_io_case(const IoCase& io) {
  std::vector<IoCase> out;
  // Drop one line at a time, then halve by truncation.
  std::vector<std::size_t> starts{0};
  for (std::size_t p = 0; p < io.text.size(); ++p) {
    if (io.text[p] == '\n' && p + 1 < io.text.size()) starts.push_back(p + 1);
  }
  if (starts.size() > 1) {
    for (std::size_t k = 0; k < starts.size() && k < 32; ++k) {
      IoCase c = io;
      std::size_t end = io.text.find('\n', starts[k]);
      end = end == std::string::npos ? io.text.size() : end + 1;
      c.text = io.text.substr(0, starts[k]) + io.text.substr(end);
      c.mutated = true;  // no longer the pristine save output
      out.push_back(std::move(c));
    }
  }
  if (io.text.size() > 1) {
    IoCase c = io;
    c.text = io.text.substr(0, io.text.size() / 2);
    c.mutated = true;
    out.push_back(std::move(c));
  }
  return out;
}

std::string describe_io_case(const IoCase& io) {
  std::string shown = io.text.substr(0, 400);
  if (shown.size() < io.text.size()) shown += "...(truncated)";
  return std::string(io_kind_name(io.kind)) + (io.mutated ? " (mutated)" : " (pristine)") +
         " <<<\n" + shown + "\n>>>";
}

// ---------------------------------------------------------------------------
// Oracle 6: .tsvb binary format round-trips and byte-mutation fuzzing.
// ---------------------------------------------------------------------------

struct BinCase {
  std::size_t width = 1;
  std::vector<std::uint64_t> words;  ///< payload of the pristine image
  std::uint64_t seed = 0;
  std::vector<unsigned char> bytes;  ///< serialized image, possibly mutated
  bool mutated = false;
};

BinCase gen_bin_case(Rng& rng) {
  BinCase bc;
  bc.width = 1 + rng.below(64);
  bc.words = gen_trace(rng, bc.width, rng.below(40));
  bc.seed = rng.u64();
  std::ostringstream os;
  streams::save_binary_trace(os, bc.words, bc.width, bc.seed);
  const std::string s = os.str();
  bc.bytes.assign(s.begin(), s.end());
  bc.mutated = rng.chance(0.6);
  if (bc.mutated) {
    // Byte-level mutations hit the header (magic, version, width, count) and
    // the payload (truncation, trailing bytes, overwide bits) alike.
    const std::size_t edits = 1 + rng.below(8);
    for (std::size_t k = 0; k < edits && !bc.bytes.empty(); ++k) {
      switch (rng.below(4)) {
        case 0:
          bc.bytes[rng.below(bc.bytes.size())] ^=
              static_cast<unsigned char>(1u << rng.below(8));
          break;
        case 1: bc.bytes.resize(rng.below(bc.bytes.size() + 1)); break;
        case 2: bc.bytes.push_back(static_cast<unsigned char>(rng.below(256))); break;
        default:
          bc.bytes[rng.below(bc.bytes.size())] = static_cast<unsigned char>(rng.below(256));
          break;
      }
    }
  }
  return bc;
}

std::optional<std::string> check_bin_case(const BinCase& bc) {
  // Stage the image in an 8-aligned buffer, exactly what mmap guarantees.
  std::vector<std::uint64_t> aligned((bc.bytes.size() + 7) / 8 + 1);
  if (!bc.bytes.empty()) std::memcpy(aligned.data(), bc.bytes.data(), bc.bytes.size());
  const std::span<const std::byte> image{reinterpret_cast<const std::byte*>(aligned.data()),
                                         bc.bytes.size()};
  streams::BinaryTraceView view;
  try {
    view = streams::parse_binary_trace(image);
  } catch (const std::runtime_error& e) {
    if (!bc.mutated) return std::string("pristine .tsvb image rejected: ") + e.what();
    return std::nullopt;  // rejecting mutated input with runtime_error is the contract
  } catch (const std::exception& e) {
    return std::string("parser leaked a non-runtime_error exception: ") + e.what();
  } catch (...) {
    return "parser leaked a non-standard exception";
  }

  // Whatever the parser accepted must re-serialize byte-identically: the
  // format is canonical (no optional padding, no ignored fields).
  std::ostringstream os;
  streams::save_binary_trace(os, view.words, view.header.width, view.header.seed);
  const std::string again = os.str();
  if (again.size() != bc.bytes.size() ||
      !std::equal(again.begin(), again.end(), bc.bytes.begin(),
                  [](char a, unsigned char b) { return static_cast<unsigned char>(a) == b; })) {
    return "accepted image does not re-serialize byte-identically";
  }

  if (!bc.mutated) {
    if (view.header.width != bc.width || view.header.seed != bc.seed ||
        view.header.word_count != bc.words.size()) {
      return "header fields did not round-trip";
    }
    // Format equivalence: the text pipeline and the binary pipeline must
    // decode the same trace to the same words.
    std::ostringstream ts;
    streams::save_trace(ts, bc.words);
    std::istringstream is(ts.str());
    const auto from_text = streams::parse_trace(is);
    if (from_text != std::vector<std::uint64_t>(view.words.begin(), view.words.end())) {
      return "text and binary pipelines decode to different words";
    }
  }
  return std::nullopt;
}

std::vector<BinCase> shrink_bin_case(const BinCase& bc) {
  std::vector<BinCase> out;
  if (!bc.mutated) {
    // Pristine failure: shrink the word list and re-serialize.
    for (const auto& [b, e] : subrange_candidates(bc.words.size(), 0)) {
      BinCase c = bc;
      if (b == e) {
        c.words.erase(c.words.begin() + static_cast<std::ptrdiff_t>(b));
      } else {
        c.words.assign(bc.words.begin() + static_cast<std::ptrdiff_t>(b),
                       bc.words.begin() + static_cast<std::ptrdiff_t>(e));
      }
      std::ostringstream os;
      streams::save_binary_trace(os, c.words, c.width, c.seed);
      const std::string s = os.str();
      c.bytes.assign(s.begin(), s.end());
      out.push_back(std::move(c));
    }
    return out;
  }
  // Mutated failure: shrink the byte image directly.
  if (bc.bytes.size() > 1) {
    BinCase c = bc;
    c.bytes.resize(bc.bytes.size() / 2);
    out.push_back(std::move(c));
  }
  for (std::size_t k = 0; k < bc.bytes.size() && k < 24; ++k) {
    BinCase c = bc;
    c.bytes.erase(c.bytes.begin() + static_cast<std::ptrdiff_t>(k));
    out.push_back(std::move(c));
  }
  return out;
}

std::string describe_bin_case(const BinCase& bc) {
  std::ostringstream os;
  os << ".tsvb width=" << bc.width << (bc.mutated ? " (mutated)" : " (pristine)") << " seed=0x"
     << std::hex << bc.seed << std::dec << " image=" << bc.bytes.size()
     << " bytes\n  words=" << hex_words(bc.words) << "\n  bytes=" << std::hex;
  for (std::size_t i = 0; i < bc.bytes.size() && i < 64; ++i) {
    os << (i ? " " : "") << static_cast<unsigned>(bc.bytes[i]);
  }
  if (bc.bytes.size() > 64) os << " ...(" << std::dec << bc.bytes.size() << " total)";
  return os.str();
}

// --- noc_coded ------------------------------------------------------------
// Coding on the vertical TSV links must be invisible to the fabric: the
// receiver decodes before the flit re-enters a ring, so the delivery stream
// (payloads and latencies, folded into the ejection digest) and the link
// utilization are byte-identical with and without coding, for every codec
// family. On top of that the coded run must stay bit-identical across thread
// counts, flits must be conserved, and bus-invert must honour its energy
// contract (coded line toggles <= uncoded payload toggles per vertical link).

struct NocCase {
  std::size_t nx = 2, ny = 2, nz = 2;
  noc::SpatialPattern pattern = noc::SpatialPattern::Uniform;
  noc::PayloadModel payload = noc::PayloadModel::Random;
  double rate = 0.3;
  std::size_t flit_width = 16;
  std::size_t cycles = 128;
  std::uint64_t traffic_seed = 1;
  std::string codec = "bus-invert";
};

NocCase gen_noc_case(Rng& rng) {
  static const char* kCodecs[] = {"gray",           "correlator", "bus-invert",
                                  "coupling-invert", "t0",         "fibonacci"};
  static const noc::SpatialPattern kPatterns[] = {
      noc::SpatialPattern::Uniform, noc::SpatialPattern::Hotspot,
      noc::SpatialPattern::Transpose};
  static const noc::PayloadModel kPayloads[] = {
      noc::PayloadModel::Random, noc::PayloadModel::Dsp, noc::PayloadModel::Mems};
  NocCase nc;
  nc.nx = rng.range(1, 3);
  nc.ny = rng.range(1, 3);
  nc.nz = rng.range(2, 4);  // at least one vertical hop available
  nc.pattern = kPatterns[rng.below(3)];
  nc.payload = kPayloads[rng.below(3)];
  nc.rate = rng.real(0.05, 1.0);
  nc.flit_width = rng.range(4, 24);
  nc.cycles = rng.range(32, 384);
  nc.traffic_seed = rng.u64();
  nc.codec = kCodecs[rng.below(std::size(kCodecs))];
  return nc;
}

std::optional<std::string> check_noc_case(const NocCase& nc) {
  noc::Mesh3D mesh(nc.nx, nc.ny, nc.nz);
  noc::TrafficConfig cfg;
  cfg.spatial = nc.pattern;
  cfg.payload = nc.payload;
  cfg.injection_rate = nc.rate;
  cfg.flit_width = nc.flit_width;
  cfg.seed = nc.traffic_seed;

  noc::NocSimulator plain(mesh, cfg);
  const noc::SimStats base = plain.run(nc.cycles);

  noc::NocSimulator coded(mesh, cfg);
  coded.attach_vertical_coding({.name = nc.codec});
  const noc::SimStats cs = coded.run(nc.cycles);

  if (base.injected != base.delivered + base.in_flight) {
    return "uncoded run violates flit conservation";
  }
  if (cs.injected != cs.delivered + cs.in_flight) return "coded run violates flit conservation";
  if (cs.ejection_digest != base.ejection_digest) {
    return "coded delivery stream differs from uncoded (digest mismatch: payloads or "
           "latencies corrupted by the codec)";
  }
  if (cs.delivered != base.delivered || cs.injected != base.injected ||
      cs.latency_cycles != base.latency_cycles) {
    return "coding changed delivery counts or latency totals";
  }
  if (cs.link_flits != base.link_flits || cs.link_toggles != base.link_toggles) {
    return "coding changed link utilization (payload-domain counters must not move)";
  }

  for (std::size_t i = 0; i < mesh.node_count(); ++i) {
    for (int p = 0; p < noc::kPortCount; ++p) {
      const auto d = static_cast<noc::Direction>(p);
      const std::size_t slot = noc::link_slot(i, d);
      const bool vertical =
          noc::Mesh3D::is_vertical(d) && mesh.neighbor_index(i, d) != noc::Mesh3D::npos;
      if (!vertical && cs.link_coded_toggles[slot] != 0) {
        return "coded toggles recorded on a non-vertical slot " +
               noc::link_name(noc::LinkId{mesh.node(i), d});
      }
      if (vertical && nc.codec == "bus-invert" &&
          cs.link_coded_toggles[slot] > cs.link_toggles[slot]) {
        return "bus-invert coded toggles exceed uncoded toggles on " +
               noc::link_name(noc::LinkId{mesh.node(i), d});
      }
    }
  }

  // Thread-count invariance of the coded fabric.
  noc::SimOptions two;
  two.threads = 2;
  noc::NocSimulator coded2(mesh, cfg, two);
  coded2.attach_vertical_coding({.name = nc.codec});
  if (!(coded2.run(nc.cycles) == cs)) {
    return "coded run is not bit-identical at 2 threads";
  }
  return std::nullopt;
}

std::vector<NocCase> shrink_noc_case(const NocCase& nc) {
  std::vector<NocCase> out;
  if (nc.cycles > 32) {
    NocCase c = nc;
    c.cycles = std::max<std::size_t>(32, nc.cycles / 2);
    out.push_back(c);
  }
  const auto dim = [&](std::size_t NocCase::* field, std::size_t floor_value) {
    if (nc.*field > floor_value) {
      NocCase c = nc;
      c.*field = floor_value;
      out.push_back(c);
    }
  };
  dim(&NocCase::nx, 1);
  dim(&NocCase::ny, 1);
  dim(&NocCase::nz, 2);
  if (nc.flit_width > 4) {
    NocCase c = nc;
    c.flit_width = 4;
    out.push_back(c);
  }
  if (nc.payload != noc::PayloadModel::Random) {
    NocCase c = nc;
    c.payload = noc::PayloadModel::Random;
    out.push_back(c);
  }
  return out;
}

std::string describe_noc_case(const NocCase& nc) {
  std::ostringstream os;
  os << nc.nx << 'x' << nc.ny << 'x' << nc.nz << " mesh, pattern="
     << static_cast<int>(nc.pattern) << " payload=" << static_cast<int>(nc.payload)
     << " rate=" << nc.rate << " flit_width=" << nc.flit_width << " cycles=" << nc.cycles
     << " codec=" << nc.codec << " seed=0x" << std::hex << nc.traffic_seed;
  return os.str();
}

}  // namespace

Report oracle_codec_roundtrip(const RunOptions& opt) {
  return check_property<CodecCase>("codec_roundtrip", opt, gen_codec_case, check_codec_case,
                                   shrink_codec_case, describe_codec_case);
}

Report oracle_evaluator_drift(const RunOptions& opt) {
  return check_property<EvalCase>("evaluator_drift", opt, gen_eval_case, check_eval_case,
                                  shrink_eval_case, describe_eval_case);
}

Report oracle_stats_reference(const RunOptions& opt) {
  return check_property<StatsCase>("stats_reference", opt, gen_stats_case, check_stats_case,
                                   shrink_stats_case, describe_stats_case);
}

Report oracle_field_consistency(const RunOptions& opt) {
  return check_property<FieldCase>("field_consistency", opt, gen_field_case, check_field_case,
                                   shrink_field_case, describe_field_case);
}

Report oracle_io_roundtrip(const RunOptions& opt) {
  return check_property<IoCase>("io_roundtrip", opt, gen_io_case, check_io_case, shrink_io_case,
                                describe_io_case);
}

Report oracle_binary_roundtrip(const RunOptions& opt) {
  return check_property<BinCase>("binary_roundtrip", opt, gen_bin_case, check_bin_case,
                                 shrink_bin_case, describe_bin_case);
}

Report oracle_noc_coded(const RunOptions& opt) {
  return check_property<NocCase>("noc_coded", opt, gen_noc_case, check_noc_case, shrink_noc_case,
                                 describe_noc_case);
}

std::vector<Report> run_all_oracles(const RunOptions& opt) {
  const auto sub = [&](std::uint64_t salt, std::size_t iterations) {
    RunOptions s = opt;
    s.seed = derive_seed(opt.seed, 0xC0DEC000 + salt);
    s.iterations = iterations;
    return s;
  };
  std::vector<Report> out;
  out.push_back(oracle_codec_roundtrip(sub(1, opt.iterations)));
  out.push_back(oracle_evaluator_drift(sub(2, opt.iterations)));
  out.push_back(oracle_stats_reference(sub(3, opt.iterations)));
  // Field solves carry a dense LU each; keep their share of the budget small.
  out.push_back(oracle_field_consistency(sub(4, std::max<std::size_t>(2, opt.iterations / 10))));
  out.push_back(oracle_io_roundtrip(sub(5, opt.iterations)));
  out.push_back(oracle_binary_roundtrip(sub(6, opt.iterations)));
  // Each NoC case runs three full simulations; a fifth of the budget keeps
  // the wall-clock share comparable to the other oracles.
  out.push_back(oracle_noc_coded(sub(7, std::max<std::size_t>(2, opt.iterations / 5))));
  return out;
}

}  // namespace tsvcod::check
