#include "check/check.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace tsvcod::check {

std::uint64_t splitmix64(std::uint64_t& state) {
  // Steele/Lea/Flood splitmix64: tiny, full-period, and identical everywhere.
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  // Mix the index through one splitmix step of a perturbed state so nearby
  // iterations share no low-bit structure.
  std::uint64_t state = base ^ (0xA0761D6478BD642FULL * (index + 1));
  return splitmix64(state);
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Debiased modulo via rejection on the top of the range.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = u64();
  while (v >= limit) v = u64();
  return v % bound;
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::range: lo > hi");
  const std::uint64_t span = hi - lo;
  if (span == ~std::uint64_t{0}) return u64();
  return lo + below(span + 1);
}

double Rng::real01() {
  // 53 uniform bits -> [0, 1).
  return static_cast<double>(u64() >> 11) * 0x1.0p-53;
}

std::size_t effective_iterations(std::size_t base_iterations) {
  const char* env = std::getenv("TSVCOD_CHECK_ITERS");
  if (!env || !*env) return base_iterations;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || v == 0) {
    throw std::runtime_error("TSVCOD_CHECK_ITERS must be a positive integer, got: " +
                             std::string(env));
  }
  return static_cast<std::size_t>(v);
}

std::optional<std::uint64_t> replay_seed_from_env() {
  const char* env = std::getenv("TSVCOD_CHECK_SEED");
  if (!env || !*env) return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 0);  // accepts 0x... too
  if (end == env || *end != '\0') {
    throw std::runtime_error("TSVCOD_CHECK_SEED must be an integer (0x-hex ok), got: " +
                             std::string(env));
  }
  return static_cast<std::uint64_t>(v);
}

std::string format_failure(const std::string& name, std::size_t iteration,
                           std::uint64_t replay_seed, const std::string& cause,
                           std::size_t shrink_steps, const std::string& counterexample) {
  std::ostringstream os;
  os << "property '" << name << "' FAILED at iteration " << iteration << '\n';
  os << "  replay: TSVCOD_CHECK_SEED=0x" << std::hex << replay_seed << std::dec
     << " (regenerates this exact counterexample)\n";
  os << "  cause: " << cause << '\n';
  os << "  shrunk counterexample (" << shrink_steps << " shrink steps): " << counterexample;
  return os.str();
}

}  // namespace tsvcod::check
