#pragma once
// Seeded, deterministic property-based testing harness with a minimizing
// shrinker.
//
// Every iteration derives its own seed from (base seed, iteration index) via
// splitmix64, generates one structured input, and runs a checker over it. On
// failure the harness greedily shrinks the input through caller-provided
// candidate reductions and reports the *iteration seed*: re-running with
// TSVCOD_CHECK_SEED=<that value> regenerates the identical input and the
// identical shrunk counterexample, because generation and shrinking are both
// pure functions of the seed. Iteration counts scale with TSVCOD_CHECK_ITERS
// so CI stays fast and nightly runs go deep.
//
// The random source is a self-contained splitmix64/xoshiro-free generator:
// std::uniform_*_distribution is implementation-defined, which would make a
// printed replay seed meaningless on another standard library.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace tsvcod::check {

/// One splitmix64 step (public: seed derivation must be reproducible by
/// external drivers that want to replay a specific iteration).
std::uint64_t splitmix64(std::uint64_t& state);

/// Seed of iteration `index` under base seed `base`.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

/// Deterministic PRNG, identical on every platform and standard library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t u64() { return splitmix64(state_); }

  /// Uniform in [0, bound); bound 0 returns 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] (inclusive).
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double real01();

  /// Uniform double in [lo, hi).
  double real(double lo, double hi) { return lo + (hi - lo) * real01(); }

  /// True with probability p.
  bool chance(double p) { return real01() < p; }

 private:
  std::uint64_t state_;
};

struct RunOptions {
  std::uint64_t seed = 0x75C0D5EEDULL;  ///< base seed (per-iteration seeds derive from it)
  std::size_t iterations = 100;         ///< resolved count (see effective_iterations)
  std::size_t max_shrink_steps = 2000;  ///< cap on candidate evaluations while shrinking
};

/// `base_iterations` scaled by the TSVCOD_CHECK_ITERS environment variable:
/// unset returns the base; a positive integer N returns N (the oracles apply
/// their own relative cost factors on top). Invalid values throw.
std::size_t effective_iterations(std::size_t base_iterations);

/// TSVCOD_CHECK_SEED, if set: run exactly that iteration seed instead of the
/// sweep (the replay knob printed in every failure report).
std::optional<std::uint64_t> replay_seed_from_env();

struct Report {
  std::string name;
  bool ok = true;
  std::size_t iterations_run = 0;
  std::size_t shrink_steps = 0;
  std::uint64_t replay_seed = 0;  ///< seed of the failing iteration (valid when !ok)
  std::string message;            ///< human-readable failure report
};

/// Render the standard failure block (replay line included).
std::string format_failure(const std::string& name, std::size_t iteration,
                           std::uint64_t replay_seed, const std::string& cause,
                           std::size_t shrink_steps, const std::string& counterexample);

/// Run a property.
///   gen(Rng&) -> Input                              generate one input
///   check(const Input&) -> std::optional<string>    nullopt = pass, text = why it failed
///   shrink(const Input&) -> std::vector<Input>      strictly-smaller candidates (deterministic!)
///   describe(const Input&) -> std::string           printable form for the report
/// Exceptions thrown by check() count as failures (message = what()).
template <typename Input, typename Gen, typename Check, typename Shrink, typename Describe>
Report check_property(const std::string& name, const RunOptions& opt, Gen&& gen, Check&& check,
                      Shrink&& shrink, Describe&& describe) {
  Report report;
  report.name = name;

  const auto guarded = [&](const Input& in) -> std::optional<std::string> {
    try {
      return check(in);
    } catch (const std::exception& e) {
      return std::string("unexpected exception: ") + e.what();
    }
  };

  const auto run_one = [&](std::uint64_t seed, std::size_t iteration) -> bool {
    Rng rng(seed);
    Input input = gen(rng);
    auto failure = guarded(input);
    if (!failure) return true;

    // Greedy minimization: repeatedly move to the first still-failing
    // candidate. shrink() is deterministic, so a replay reproduces not just
    // the failure but the exact shrunk counterexample.
    std::size_t steps = 0;
    bool progress = true;
    while (progress && steps < opt.max_shrink_steps) {
      progress = false;
      for (Input& cand : shrink(input)) {
        if (++steps > opt.max_shrink_steps) break;
        if (auto cand_failure = guarded(cand)) {
          input = std::move(cand);
          failure = std::move(cand_failure);
          progress = true;
          break;
        }
      }
    }
    report.ok = false;
    report.replay_seed = seed;
    report.shrink_steps = steps;
    report.message =
        format_failure(name, iteration, seed, *failure, steps, describe(input));
    return false;
  };

  if (const auto replay = replay_seed_from_env()) {
    report.iterations_run = 1;
    run_one(*replay, 0);
    return report;
  }
  for (std::size_t i = 0; i < opt.iterations; ++i) {
    ++report.iterations_run;
    if (!run_one(derive_seed(opt.seed, i), i)) break;
  }
  return report;
}

}  // namespace tsvcod::check
