#pragma once
// The seven differential oracles of the correctness harness.
//
// Each oracle is an independent property run through check_property(): a
// structured generator, a checker that compares two implementations of the
// same mathematics (or an algebraic invariant), and a shrinker that minimizes
// failing inputs. The pairings:
//
//   codec_roundtrip   decode(unassign(assign(encode(w)))) == w for every codec
//                     family x width x traffic regime, across atomic resets,
//                     and after recovery from a deliberate one-sided desync.
//   evaluator_drift   incremental PowerEvaluator move chains vs the dense
//                     O(N^2) assignment_power(), drift bounded at the scale of
//                     float epsilon times the absolute term mass.
//   stats_reference   bit-plane StatsAccumulator vs a naive O(N * w^2)
//                     recomputation (exact: both sums are integer-valued),
//                     plus chunked parallel compute_stats at several thread
//                     counts (bitwise identical, block tails included).
//   field_consistency Jacobi- vs multigrid-preconditioned BiCGStab vs a dense
//                     complex LU factorization of the same operator, on random
//                     conductor layouts.
//   io_roundtrip      save -> load -> save byte identity for trace/model/
//                     assignment files, plus byte-mutation fuzzing of the
//                     parsers (only std::runtime_error may escape).
//   binary_roundtrip  .tsvb save -> parse -> save byte identity, text/binary
//                     pipeline equivalence, plus byte-mutation fuzzing of the
//                     header and payload (same escape contract).
//   noc_coded         a 3D-mesh NoC with per-vertical-link coding attached vs
//                     the same mesh uncoded, across random codec families,
//                     mesh shapes and traffic regimes: delivery streams must
//                     be byte-identical (payloads AND latencies, via the
//                     ejection digest), link utilization unchanged, flits
//                     conserved, the coded run bit-identical at 1 vs 2
//                     threads, and bus-invert's coded line toggles bounded by
//                     the uncoded payload toggles on every vertical link.

#include "check/check.hpp"

namespace tsvcod::check {

Report oracle_codec_roundtrip(const RunOptions& opt);
Report oracle_evaluator_drift(const RunOptions& opt);
Report oracle_stats_reference(const RunOptions& opt);
Report oracle_field_consistency(const RunOptions& opt);
Report oracle_io_roundtrip(const RunOptions& opt);
Report oracle_binary_roundtrip(const RunOptions& opt);
Report oracle_noc_coded(const RunOptions& opt);

/// Run every oracle with per-oracle iteration budgets scaled from
/// `opt.iterations` (field solves are expensive, codec round-trips cheap).
std::vector<Report> run_all_oracles(const RunOptions& opt);

}  // namespace tsvcod::check
