#include "check/generators.hpp"

#include <algorithm>

#include "streams/word_stream.hpp"

namespace tsvcod::check {

std::vector<std::uint64_t> gen_trace(Rng& rng, std::size_t width, std::size_t length) {
  const std::uint64_t mask = streams::width_mask(width);
  std::vector<std::uint64_t> words(length);
  switch (rng.below(4)) {
    case 0:  // white noise
      for (auto& w : words) w = rng.u64() & mask;
      break;
    case 1: {  // sticky bits: each bit flips with its own small probability
      std::vector<double> flip(width);
      for (auto& p : flip) p = rng.real(0.01, 0.6);
      std::uint64_t cur = rng.u64() & mask;
      for (auto& w : words) {
        for (std::size_t b = 0; b < width; ++b) {
          if (rng.chance(flip[b])) cur ^= std::uint64_t{1} << b;
        }
        w = cur;
      }
      break;
    }
    case 2: {  // constant runs with occasional jumps
      std::uint64_t cur = rng.u64() & mask;
      for (auto& w : words) {
        if (rng.chance(0.15)) cur = rng.u64() & mask;
        w = cur;
      }
      break;
    }
    default: {  // counter ramp (T0's home turf), random stride
      std::uint64_t cur = rng.u64() & mask;
      const std::uint64_t stride = rng.range(1, 4);
      for (auto& w : words) {
        w = cur;
        cur = (cur + (rng.chance(0.9) ? stride : rng.u64())) & mask;
      }
      break;
    }
  }
  return words;
}

stats::SwitchingStats gen_stats(Rng& rng, std::size_t width, std::size_t length) {
  const auto words = gen_trace(rng, width, std::max<std::size_t>(length, 2));
  return stats::compute_stats(words, width);
}

tsv::LinearCapacitanceModel gen_model(Rng& rng, std::size_t n, bool allow_negative) {
  phys::Matrix cr(n, n);
  phys::Matrix dc(n, n);
  // Femtofarad-scale entries like the real extractors produce, so drift
  // tolerances exercise realistic magnitudes.
  const double scale = 1e-15;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double c = rng.real(0.05, 2.0) * scale;
      double d = rng.real(-0.5, 0.5) * scale;
      if (allow_negative && rng.chance(0.3)) c = -c;
      cr(i, j) = cr(j, i) = c;
      dc(i, j) = dc(j, i) = d;
    }
  }
  return tsv::LinearCapacitanceModel(std::move(cr), std::move(dc));
}

core::SignedPermutation gen_assignment(Rng& rng, std::size_t n) {
  core::SignedPermutation a(n);
  // Fisher-Yates over bits via self-inverse swap moves.
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    if (j != i - 1) a.swap_bits(i - 1, j);
  }
  for (std::size_t bit = 0; bit < n; ++bit) {
    if (rng.chance(0.5)) a.toggle_inversion(bit);
  }
  return a;
}

std::string mutate_text(Rng& rng, std::string text, std::size_t count) {
  static const char* kTokens[] = {"nan", "inf",  "-inf", "-1",  "+3",     "1e999",
                                  "0x",  "map",  "#",    "n",   "999999999999999999999",
                                  " ",   "\t",   "0x10", "1.5", "18446744073709551616"};
  for (std::size_t k = 0; k < count; ++k) {
    if (text.empty()) {
      text = kTokens[rng.below(std::size(kTokens))];
      continue;
    }
    switch (rng.below(6)) {
      case 0: {  // flip one byte to a random printable character
        text[rng.below(text.size())] = static_cast<char>(' ' + rng.below(95));
        break;
      }
      case 1: {  // delete a short range
        const std::size_t pos = rng.below(text.size());
        const std::size_t len = 1 + rng.below(std::min<std::size_t>(16, text.size() - pos));
        text.erase(pos, len);
        break;
      }
      case 2: {  // insert a hostile token
        text.insert(rng.below(text.size() + 1), kTokens[rng.below(std::size(kTokens))]);
        break;
      }
      case 3: {  // truncate (the "truncated final line" class)
        text.resize(rng.below(text.size() + 1));
        break;
      }
      case 4: {  // duplicate one line
        const std::size_t start = text.rfind('\n', rng.below(text.size()));
        const std::size_t from = start == std::string::npos ? 0 : start + 1;
        std::size_t end = text.find('\n', from);
        if (end == std::string::npos) end = text.size();
        text.insert(from, text.substr(from, end - from) + "\n");
        break;
      }
      default: {  // swap two bytes
        const std::size_t a = rng.below(text.size());
        const std::size_t b = rng.below(text.size());
        std::swap(text[a], text[b]);
        break;
      }
    }
  }
  return text;
}

}  // namespace tsvcod::check
