#pragma once
// Structured input generators for the differential oracles.
//
// Everything here is a pure function of the Rng state, so an iteration seed
// fully determines the generated input. Word traces are drawn from a mixture
// of regimes (uniform noise, sticky per-bit toggling, constant runs, counter
// ramps) because codec and statistics bugs hide in *structured* traffic, not
// in white noise.

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "core/assignment.hpp"
#include "stats/switching_stats.hpp"
#include "tsv/linear_model.hpp"

namespace tsvcod::check {

/// `length` words of `width` bits from a randomly chosen traffic regime.
std::vector<std::uint64_t> gen_trace(Rng& rng, std::size_t width, std::size_t length);

/// Switching statistics of a fresh random trace (>= 2 words).
stats::SwitchingStats gen_stats(Rng& rng, std::size_t width, std::size_t length);

/// Random symmetric capacitance model. With `allow_negative`, C_R entries may
/// go negative — unphysical, but the power algebra must stay consistent there
/// (the greedy-descent sign bug lived exactly in that regime).
tsv::LinearCapacitanceModel gen_model(Rng& rng, std::size_t n, bool allow_negative);

/// Uniformly random signed permutation (inversions on every bit allowed),
/// driven by the deterministic Rng instead of std::uniform_int_distribution.
core::SignedPermutation gen_assignment(Rng& rng, std::size_t n);

/// Byte-level mutation for parser fuzzing: flips, deletions, insertions of
/// hostile tokens ("nan", "-1", "1e999", ...), line duplication, truncation.
/// Applies `count` mutations and returns the mutated text.
std::string mutate_text(Rng& rng, std::string text, std::size_t count);

}  // namespace tsvcod::check
