#include "noc/reference.hpp"

#include <array>
#include <bit>
#include <deque>
#include <optional>

#include "noc/simulator.hpp"

namespace tsvcod::noc {

namespace {

// Must stay identical to the batched engine's combine for the differential
// digest comparison to be meaningful.
inline std::uint64_t digest_mix(std::uint64_t h, std::uint64_t a, std::uint64_t b) {
  h ^= a + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h ^= b + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

struct ReferenceSimulator::Node {
  std::array<std::deque<Flit>, kPortCount> in;
  std::array<int, kPortCount> rr{};
  // Transfer registers, receiver-side, one per incoming direction + local
  // ejection — the same two-phase timing as the batched engine.
  std::array<std::optional<Flit>, kPortCount> reg;
};

ReferenceSimulator::ReferenceSimulator(const Mesh3D& mesh, const TrafficConfig& traffic)
    : mesh_(mesh), traffic_(mesh, traffic), flit_width_(traffic.flit_width) {
  nodes_.resize(mesh.node_count());
  digest_.assign(mesh.node_count(), 0);
  delivered_per_.assign(mesh.node_count(), 0);
  const std::size_t slots = mesh.node_count() * static_cast<std::size_t>(kPortCount);
  link_flits_.assign(slots, 0);
  link_toggles_.assign(slots, 0);
  link_last_word_.assign(slots, 0);
}

ReferenceSimulator::~ReferenceSimulator() = default;
ReferenceSimulator::ReferenceSimulator(ReferenceSimulator&&) noexcept = default;

SimStats ReferenceSimulator::run(std::size_t cycles) {
  const std::size_t n = mesh_.node_count();
  for (std::size_t c = 0; c < cycles; ++c, ++cycle_) {
    // Phase A: arbitrate. Every router picks at most one flit per output
    // port, round-robin over the contending inputs, and moves it into the
    // receiver's transfer register.
    for (std::size_t r = 0; r < n; ++r) {
      Node& node = nodes_[r];
      const NodeId at = mesh_.node(r);
      // Head routes are gathered once per cycle (the batched engine's
      // discipline): an input sends at most one flit per cycle, even when
      // the flit behind the head wants a later output port.
      std::array<int, kPortCount> head_out;
      for (int p = 0; p < kPortCount; ++p) {
        const auto& q = node.in[static_cast<std::size_t>(p)];
        head_out[static_cast<std::size_t>(p)] =
            q.empty() ? -1 : static_cast<int>(mesh_.route(at, q.front().dst));
      }
      for (int out = 0; out < kPortCount; ++out) {
        const auto dir = static_cast<Direction>(out);
        int winner = -1;
        for (int k = 0; k < kPortCount; ++k) {
          int p = node.rr[out] + k;
          if (p >= kPortCount) p -= kPortCount;
          if (head_out[static_cast<std::size_t>(p)] != out) continue;
          winner = p;
          break;
        }
        if (winner < 0) continue;
        auto& q = node.in[static_cast<std::size_t>(winner)];
        Flit flit = q.front();
        q.pop_front();
        node.rr[out] = winner + 1 == kPortCount ? 0 : winner + 1;
        if (dir == Direction::Local) {
          node.reg[static_cast<std::size_t>(Direction::Local)] = flit;
          continue;
        }
        const std::size_t slot = link_slot(r, dir);
        ++link_flits_[slot];
        link_toggles_[slot] +=
            static_cast<std::uint64_t>(std::popcount(link_last_word_[slot] ^ flit.payload));
        link_last_word_[slot] = flit.payload;
        // XYZ routing never points off-mesh, so the neighbour exists.
        nodes_[mesh_.index(*mesh_.neighbor(at, dir))].reg[static_cast<std::size_t>(out)] = flit;
      }
    }
    // Phase B: transfer. Drain registers into the rings, eject, inject.
    for (std::size_t r = 0; r < n; ++r) {
      Node& node = nodes_[r];
      for (int d = 0; d < 6; ++d) {
        auto& reg = node.reg[static_cast<std::size_t>(d)];
        if (!reg) continue;
        node.in[static_cast<std::size_t>(d)].push_back(*reg);
        reg.reset();
      }
      auto& eject = node.reg[static_cast<std::size_t>(Direction::Local)];
      if (eject) {
        ++delivered_;
        ++delivered_per_[r];
        const std::uint64_t lat = cycle_ - eject->injected_at + 1;
        latency_ += lat;
        digest_[r] = digest_mix(digest_[r], eject->payload, lat);
        eject.reset();
      }
      if (auto flit = traffic_.generate(r, cycle_)) {
        node.in[static_cast<std::size_t>(Direction::Local)].push_back(*flit);
        ++injected_;
      }
      std::size_t queued = 0;
      for (const auto& q : node.in) queued += q.size();
      if (queued > max_queued_) max_queued_ = queued;
    }
  }

  SimStats s;
  s.injected = injected_;
  s.delivered = delivered_;
  s.latency_cycles = latency_;
  s.mean_latency =
      delivered_ > 0 ? static_cast<double>(latency_) / static_cast<double>(delivered_) : 0.0;
  s.max_queued = max_queued_;
  // Same per-router fold as the batched engine, so the digests compare.
  for (std::size_t r = 0; r < n; ++r) {
    s.ejection_digest = digest_mix(s.ejection_digest, digest_[r], delivered_per_[r]);
  }
  s.link_flits = link_flits_;
  s.link_toggles = link_toggles_;
  std::size_t in_flight = 0;
  for (const auto& node : nodes_) {
    for (const auto& q : node.in) in_flight += q.size();
    for (const auto& reg : node.reg) in_flight += reg.has_value() ? 1 : 0;
  }
  s.in_flight = in_flight;
  return s;
}

}  // namespace tsvcod::noc
