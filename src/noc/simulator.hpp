#pragma once
// Batched, parallel cycle kernel for the 3D-mesh NoC.
//
// Each cycle runs in two phases with a barrier between them:
//
//   arbitrate — every router grants at most one flit per output port
//               (round-robin over contending inputs) and writes winners into
//               per-link transfer registers; per-link flit/toggle counters
//               and the coded-line encode happen here, on the sender's side.
//   transfer  — every router drains the registers pointing *at* it into its
//               input rings (decoding coded vertical links), retires flits
//               that arrived (latency, ejection digest), injects new traffic
//               from its own generator state, and tracks occupancy.
//
// Every register slot has exactly one writer (the sender, in phase A) and
// one reader (the receiver, in phase B), and every router's rings, counters
// and traffic state are touched only by the rank that owns the router — so
// the mesh can be partitioned into contiguous Z-slabs (node indices are
// z-major) and simulated by a team of worker ranks with two SpinBarrier
// waits per cycle. All shared counters are exact integers reduced in router
// index order, and traffic is a pure function of (config, node, cycle), so
// SimStats is bit-identical at every thread count, including 1.
//
// A bounded `queue_capacity` turns on back-pressure: full input rings leave
// the transfer register occupied, the sender's arbitration stalls (counted
// in SimStats::stalled_cycles), and injection blocks at the source instead
// of growing queues without bound — saturation becomes measurable.
//
// Vertical (±z) links are TSV bundles: an optional core::CodedLink per
// vertical link (independently optimized assignments — see noc/coded.hpp)
// encodes every payload crossing it, with exact coded-line toggle counters
// next to the uncoded ones, and optional per-link switching-statistics
// accumulators feed the bit-to-TSV optimizer for *every* bundle instead of
// one probed link.
//
// A LinkProbe records the word physically present on a chosen link each
// cycle: the transmitted flit payload plus a valid line, with the data lines
// *holding their last value* during idle cycles (what a real latched link
// does, and exactly the statistics the bit-to-TSV optimizer needs).

#include <memory>
#include <span>
#include <vector>

#include "coding/factory.hpp"
#include "core/coded_link.hpp"
#include "noc/router.hpp"
#include "noc/traffic.hpp"
#include "stats/bitplane.hpp"

namespace tsvcod::noc {

struct SimStats {
  std::size_t injected = 0;
  std::size_t delivered = 0;
  double mean_latency = 0.0;          ///< cycles, delivered flits
  std::uint64_t latency_cycles = 0;   ///< exact integer latency sum
  std::size_t max_queued = 0;         ///< worst router occupancy seen
  /// Cycles x ports a ready flit (or injection) could not move because the
  /// downstream buffer was full. Always 0 with unbounded queues.
  std::uint64_t stalled_cycles = 0;
  /// Flits still in the fabric (rings + transfer registers + pending
  /// injections) when the run ended: injected == delivered + in_flight.
  std::size_t in_flight = 0;
  /// Order-exact digest of every ejection (payload, latency) stream, folded
  /// over routers in index order: two simulations delivered byte-identical
  /// payloads with identical latencies iff the digests match.
  std::uint64_t ejection_digest = 0;
  std::size_t probe_busy_cycles = 0;  ///< cycles the probed link carried a flit
  /// Flits transferred per inter-router link, indexed node*kPortCount+port
  /// (Local ports stay zero). Cumulative across run() calls.
  std::vector<std::uint64_t> link_flits;
  /// Payload bit toggles per link (hamming distance between consecutive
  /// transferred flits; the data lines latch, so idle cycles add nothing).
  std::vector<std::uint64_t> link_toggles;
  /// Coded-line toggles per link: transitions of the physical (encoded)
  /// line word on vertical links with an attached CodedLink; zero elsewhere.
  std::vector<std::uint64_t> link_coded_toggles;
  /// Bit toggles on the probed link's physical lines (payload + valid), i.e.
  /// the switching activity the bit-to-TSV optimizer prices.
  std::uint64_t probe_toggled_bits = 0;

  bool operator==(const SimStats&) const = default;
};

struct SimOptions {
  /// Worker ranks for the cycle kernel. 0 = the TSVCOD_THREADS convention;
  /// 1 (default) = serial. Results are bit-identical at every value.
  int threads = 1;
  /// Per-input-port queue capacity; 0 = unbounded (queues grow).
  std::size_t queue_capacity = 0;
  /// Maintain an exact switching-statistics accumulator per vertical link
  /// (latched line words, one sample per cycle) — the input the per-link
  /// assignment optimizer needs. Costs roughly as much as the simulation
  /// itself; leave off for pure throughput runs.
  bool track_vertical_stats = false;
  /// Emit obs counter tracks (per-slab vertical flits/toggles/coded toggles,
  /// cycle-indexed timestamps) every N cycles while tracing; 0 = off.
  std::size_t counter_sample_cycles = 0;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class NocSimulator {
 public:
  NocSimulator(const Mesh3D& mesh, const TrafficConfig& traffic, SimOptions options = {});

  /// Record the words on this link (flit width + 1 valid line as MSB).
  /// Throws std::invalid_argument naming the link if it is not in the mesh.
  void probe_link(LinkId link);

  /// Attach a CodedLink to every vertical link: flits crossing a TSV bundle
  /// are encoded by `spec`'s codec, carried as line words, and decoded on
  /// arrival (payloads delivered to the cores are bit-identical to the
  /// uncoded mesh — the noc_coded oracle's property). `assignments` must be
  /// aligned with vertical_links(mesh) (one optimized signed permutation
  /// per bundle) or empty for identity assignments. Must be called before
  /// the first run().
  void attach_vertical_coding(const coding::CodecSpec& spec,
                              std::span<const core::SignedPermutation> assignments = {});

  /// Run `cycles` cycles; keeps injecting throughout.
  SimStats run(std::size_t cycles);

  /// Captured link words (one per simulated cycle since probe_link()).
  const std::vector<std::uint64_t>& probe_trace() const { return trace_; }
  std::size_t probe_width() const { return flit_width_ + 1; }

  /// Flits currently inside the fabric (rings + registers + pending).
  std::size_t in_flight() const;

  /// The vertical links, in the order vertical_link_stats() and
  /// attach_vertical_coding() use (vertical_links(mesh)).
  const std::vector<LinkId>& coded_links() const { return vlinks_; }

  /// Width of the physical line word on vertical links: the codec output
  /// width when coding is attached, the flit width otherwise.
  std::size_t vertical_line_width() const { return line_width_; }

  /// Exact per-vertical-link switching statistics accumulated so far, one
  /// entry per coded_links() element. Requires track_vertical_stats and at
  /// least two simulated cycles.
  std::vector<stats::SwitchingStats> vertical_link_stats() const;

 private:
  void phase_arbitrate(std::size_t begin, std::size_t end, std::size_t cycle);
  void phase_transfer(std::size_t begin, std::size_t end, std::size_t cycle);
  void sample_counters(int rank, std::size_t begin, std::size_t end, std::size_t cycle) const;

  /// XYZ dimension-order routing on the precomputed coordinate tables —
  /// same function as Mesh3D::route_index, minus the per-call div/mod.
  Direction route_of(std::size_t at, std::uint32_t dst) const {
    if (cx_[at] != cx_[dst]) return cx_[at] < cx_[dst] ? Direction::XPlus : Direction::XMinus;
    if (cy_[at] != cy_[dst]) return cy_[at] < cy_[dst] ? Direction::YPlus : Direction::YMinus;
    if (cz_[at] != cz_[dst]) return cz_[at] < cz_[dst] ? Direction::ZPlus : Direction::ZMinus;
    return Direction::Local;
  }

  const Mesh3D& mesh_;
  TrafficConfig traffic_config_;
  SimOptions options_;
  TrafficGenerator traffic_;
  std::vector<Router> routers_;
  std::size_t flit_width_;
  std::size_t line_width_;
  std::size_t cycle_ = 0;

  // Hot-loop lookup tables, built once: neighbour index per (node, direction)
  // (npos32 where the mesh ends) and the unpacked node coordinates. The cycle
  // kernel touches these every router-cycle; recomputing them from the index
  // (div/mod) dominated the per-cycle cost before they were cached.
  static constexpr std::uint32_t npos32 = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> nbr_;  ///< node * 6 + direction
  std::vector<std::uint16_t> cx_, cy_, cz_;

  // Flat mirrors of per-router ring state, maintained by the owning rank:
  // occ_[r] mirrors Router::occupied_mask() and q_[r] the total ring
  // occupancy. Idle routers are the common case, and checking a byte in a
  // contiguous array avoids pulling the (much larger) Router object into
  // cache every cycle just to discover there is nothing to do.
  std::vector<std::uint8_t> occ_;
  std::vector<std::uint32_t> q_;

  // Transfer registers, receiver-indexed: slot node*kPortCount+d holds the
  // flit moving in direction d into that node (Local = ejection register).
  std::vector<std::uint8_t> reg_valid_;
  std::vector<std::uint64_t> reg_payload_;
  std::vector<std::uint32_t> reg_dst_;
  std::vector<std::uint32_t> reg_injected_;
  std::vector<std::uint64_t> reg_line_;  ///< encoded line word (coded links)

  // Per-link activity, sender-indexed node*kPortCount+port (see SimStats).
  std::vector<std::uint64_t> link_flits_;
  std::vector<std::uint64_t> link_toggles_;
  std::vector<std::uint64_t> link_coded_toggles_;
  std::vector<std::uint64_t> link_last_word_;  ///< latched payload lines
  std::vector<std::uint64_t> link_last_line_;  ///< latched coded lines

  // Vertical-link coding and statistics, aligned with vlinks_.
  std::vector<LinkId> vlinks_;
  std::vector<std::unique_ptr<core::CodedLink>> coded_;  ///< sender slot -> link
  std::vector<std::uint32_t> vstat_of_slot_;             ///< sender slot -> vstats_ index
  mutable std::vector<stats::BitplaneAccumulator> vstats_;
  bool coded_attached_ = false;

  // Per-router counters (disjoint writes; reduced in index order).
  std::vector<std::uint64_t> injected_;
  std::vector<std::uint64_t> delivered_;
  std::vector<std::uint64_t> latency_;
  std::vector<std::uint64_t> stalls_;
  std::vector<std::uint64_t> digest_;
  std::vector<std::uint32_t> max_queued_;
  std::vector<std::uint8_t> pending_valid_;  ///< injection waiting for queue space
  std::vector<PackedFlit> pending_;

  bool probing_ = false;
  LinkId probe_{};
  std::size_t probe_router_ = 0;
  std::size_t probe_slot_ = 0;
  std::vector<std::uint64_t> trace_;
  std::uint64_t held_word_ = 0;  ///< data lines hold their last value when idle
  std::uint64_t probe_toggles_ = 0;
  std::uint64_t probe_last_lines_ = 0;
  std::size_t probe_busy_ = 0;
};

}  // namespace tsvcod::noc
