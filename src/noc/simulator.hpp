#pragma once
// Cycle-driven 3D-NoC simulator with per-link trace capture.
//
// Each cycle: every node may inject one flit (traffic generator), every
// router grants at most one flit per output link, granted flits arrive at
// the neighbour's matching input port in the next cycle, and ejected flits
// are retired with their latency. A LinkProbe records the word physically
// present on a chosen link each cycle: the transmitted flit payload plus a
// valid line, with the data lines *holding their last value* during idle
// cycles (what a real latched link does, and exactly the statistics the
// bit-to-TSV optimizer needs).

#include <vector>

#include "noc/router.hpp"
#include "noc/traffic.hpp"

namespace tsvcod::noc {

struct SimStats {
  std::size_t injected = 0;
  std::size_t delivered = 0;
  double mean_latency = 0.0;       ///< cycles, delivered flits
  std::size_t max_queued = 0;      ///< worst router occupancy seen
  std::size_t probe_busy_cycles = 0;  ///< cycles the probed link carried a flit
  /// Flits transferred per inter-router link, indexed node*kPortCount+port
  /// (Local ports stay zero). Cumulative across run() calls.
  std::vector<std::uint64_t> link_flits;
  /// Payload bit toggles per link (hamming distance between consecutive
  /// transferred flits; the data lines latch, so idle cycles add nothing).
  std::vector<std::uint64_t> link_toggles;
  /// Bit toggles on the probed link's physical lines (payload + valid), i.e.
  /// the switching activity the bit-to-TSV optimizer prices.
  std::uint64_t probe_toggled_bits = 0;
};

class NocSimulator {
 public:
  NocSimulator(const Mesh3D& mesh, const TrafficConfig& traffic);

  /// Record the words on this link (flit width + 1 valid line as MSB).
  void probe_link(LinkId link);

  /// Run `cycles` cycles; keeps injecting throughout.
  SimStats run(std::size_t cycles);

  /// Captured link words (one per simulated cycle since probe_link()).
  const std::vector<std::uint64_t>& probe_trace() const { return trace_; }
  std::size_t probe_width() const { return flit_width_ + 1; }

 private:
  const Mesh3D& mesh_;
  TrafficConfig traffic_config_;
  TrafficGenerator traffic_;
  std::vector<Router> routers_;
  std::size_t flit_width_;
  std::size_t cycle_ = 0;

  bool probing_ = false;
  LinkId probe_{};
  std::vector<std::uint64_t> trace_;
  std::uint64_t held_word_ = 0;  ///< data lines hold their last value when idle

  std::size_t injected_ = 0;
  std::size_t delivered_ = 0;
  double latency_sum_ = 0.0;
  std::size_t max_queued_ = 0;
  std::size_t probe_busy_ = 0;

  // Per-link activity, indexed node*kPortCount+port (see SimStats).
  std::vector<std::uint64_t> link_flits_;
  std::vector<std::uint64_t> link_toggles_;
  std::vector<std::uint64_t> link_last_word_;
  std::uint64_t probe_toggles_ = 0;
  std::uint64_t probe_last_lines_ = 0;  ///< previous cycle's probe word incl. valid
};

}  // namespace tsvcod::noc
