#include "noc/topology.hpp"

namespace tsvcod::noc {

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::XPlus: return "X+";
    case Direction::XMinus: return "X-";
    case Direction::YPlus: return "Y+";
    case Direction::YMinus: return "Y-";
    case Direction::ZPlus: return "Z+";
    case Direction::ZMinus: return "Z-";
    case Direction::Local: return "Local";
  }
  return "?";
}

Mesh3D::Mesh3D(std::size_t nx, std::size_t ny, std::size_t nz) : nx_(nx), ny_(ny), nz_(nz) {
  const auto bad = [](const char* field, std::size_t v) {
    throw std::invalid_argument("Mesh3D: " + std::string(field) + " must be >= 1 (got " +
                                std::to_string(v) + ")");
  };
  if (nx == 0) bad("nx", nx);
  if (ny == 0) bad("ny", ny);
  if (nz == 0) bad("nz", nz);
}

std::size_t Mesh3D::index(NodeId n) const {
  if (n.x >= nx_ || n.y >= ny_ || n.z >= nz_) {
    throw std::out_of_range("Mesh3D::index: node (" + std::to_string(n.x) + "," +
                            std::to_string(n.y) + "," + std::to_string(n.z) +
                            ") outside the " + std::to_string(nx_) + "x" + std::to_string(ny_) +
                            "x" + std::to_string(nz_) + " mesh");
  }
  return (n.z * ny_ + n.y) * nx_ + n.x;
}

NodeId Mesh3D::node(std::size_t index) const {
  if (index >= node_count()) {
    throw std::out_of_range("Mesh3D::node: index " + std::to_string(index) + " >= node count " +
                            std::to_string(node_count()));
  }
  NodeId n;
  n.x = index % nx_;
  n.y = (index / nx_) % ny_;
  n.z = index / (nx_ * ny_);
  return n;
}

std::optional<NodeId> Mesh3D::neighbor(NodeId n, Direction d) const {
  switch (d) {
    case Direction::XPlus:
      if (n.x + 1 >= nx_) return std::nullopt;
      return NodeId{n.x + 1, n.y, n.z};
    case Direction::XMinus:
      if (n.x == 0) return std::nullopt;
      return NodeId{n.x - 1, n.y, n.z};
    case Direction::YPlus:
      if (n.y + 1 >= ny_) return std::nullopt;
      return NodeId{n.x, n.y + 1, n.z};
    case Direction::YMinus:
      if (n.y == 0) return std::nullopt;
      return NodeId{n.x, n.y - 1, n.z};
    case Direction::ZPlus:
      if (n.z + 1 >= nz_) return std::nullopt;
      return NodeId{n.x, n.y, n.z + 1};
    case Direction::ZMinus:
      if (n.z == 0) return std::nullopt;
      return NodeId{n.x, n.y, n.z - 1};
    case Direction::Local:
      return n;
  }
  return std::nullopt;
}

std::size_t Mesh3D::neighbor_index(std::size_t index, Direction d) const {
  const std::size_t x = index % nx_;
  const std::size_t y = (index / nx_) % ny_;
  const std::size_t z = index / (nx_ * ny_);
  switch (d) {
    case Direction::XPlus: return x + 1 < nx_ ? index + 1 : npos;
    case Direction::XMinus: return x > 0 ? index - 1 : npos;
    case Direction::YPlus: return y + 1 < ny_ ? index + nx_ : npos;
    case Direction::YMinus: return y > 0 ? index - nx_ : npos;
    case Direction::ZPlus: return z + 1 < nz_ ? index + nx_ * ny_ : npos;
    case Direction::ZMinus: return z > 0 ? index - nx_ * ny_ : npos;
    case Direction::Local: return index;
  }
  return npos;
}

Direction Mesh3D::route(NodeId at, NodeId dst) const {
  if (at.x < dst.x) return Direction::XPlus;
  if (at.x > dst.x) return Direction::XMinus;
  if (at.y < dst.y) return Direction::YPlus;
  if (at.y > dst.y) return Direction::YMinus;
  if (at.z < dst.z) return Direction::ZPlus;
  if (at.z > dst.z) return Direction::ZMinus;
  return Direction::Local;
}

Direction Mesh3D::route_index(std::size_t at, std::size_t dst) const {
  const std::size_t ax = at % nx_, dx = dst % nx_;
  if (ax < dx) return Direction::XPlus;
  if (ax > dx) return Direction::XMinus;
  const std::size_t ay = (at / nx_) % ny_, dy = (dst / nx_) % ny_;
  if (ay < dy) return Direction::YPlus;
  if (ay > dy) return Direction::YMinus;
  const std::size_t az = at / (nx_ * ny_), dz = dst / (nx_ * ny_);
  if (az < dz) return Direction::ZPlus;
  if (az > dz) return Direction::ZMinus;
  return Direction::Local;
}

std::size_t Mesh3D::hop_count(NodeId from, NodeId to) const {
  const auto d = [](std::size_t a, std::size_t b) { return a > b ? a - b : b - a; };
  return d(from.x, to.x) + d(from.y, to.y) + d(from.z, to.z);
}

std::string link_name(const LinkId& link) {
  return "(" + std::to_string(link.from.x) + "," + std::to_string(link.from.y) + "," +
         std::to_string(link.from.z) + ") -> " + direction_name(link.out);
}

bool link_exists(const Mesh3D& mesh, const LinkId& link) {
  if (link.out == Direction::Local) return false;
  if (link.from.x >= mesh.nx() || link.from.y >= mesh.ny() || link.from.z >= mesh.nz()) {
    return false;
  }
  return mesh.neighbor(link.from, link.out).has_value();
}

void validate_link(const Mesh3D& mesh, const LinkId& link, const char* field) {
  if (!link_exists(mesh, link)) {
    throw std::invalid_argument(std::string(field) + ": link " + link_name(link) +
                                " does not exist in the " + std::to_string(mesh.nx()) + "x" +
                                std::to_string(mesh.ny()) + "x" + std::to_string(mesh.nz()) +
                                " mesh");
  }
}

std::vector<LinkId> vertical_links(const Mesh3D& mesh) {
  std::vector<LinkId> out;
  const std::size_t layer = mesh.nx() * mesh.ny();
  out.reserve(2 * layer * (mesh.nz() > 0 ? mesh.nz() - 1 : 0));
  for (const Direction d : {Direction::ZPlus, Direction::ZMinus}) {
    for (std::size_t i = 0; i < mesh.node_count(); ++i) {
      if (mesh.neighbor_index(i, d) != Mesh3D::npos) out.push_back({mesh.node(i), d});
    }
  }
  return out;
}

}  // namespace tsvcod::noc
