#include "noc/topology.hpp"

namespace tsvcod::noc {

Mesh3D::Mesh3D(std::size_t nx, std::size_t ny, std::size_t nz) : nx_(nx), ny_(ny), nz_(nz) {
  if (nx == 0 || ny == 0 || nz == 0) throw std::invalid_argument("Mesh3D: empty dimension");
}

std::size_t Mesh3D::index(NodeId n) const {
  if (n.x >= nx_ || n.y >= ny_ || n.z >= nz_) throw std::out_of_range("Mesh3D::index");
  return (n.z * ny_ + n.y) * nx_ + n.x;
}

NodeId Mesh3D::node(std::size_t index) const {
  if (index >= node_count()) throw std::out_of_range("Mesh3D::node");
  NodeId n;
  n.x = index % nx_;
  n.y = (index / nx_) % ny_;
  n.z = index / (nx_ * ny_);
  return n;
}

std::optional<NodeId> Mesh3D::neighbor(NodeId n, Direction d) const {
  switch (d) {
    case Direction::XPlus:
      if (n.x + 1 >= nx_) return std::nullopt;
      return NodeId{n.x + 1, n.y, n.z};
    case Direction::XMinus:
      if (n.x == 0) return std::nullopt;
      return NodeId{n.x - 1, n.y, n.z};
    case Direction::YPlus:
      if (n.y + 1 >= ny_) return std::nullopt;
      return NodeId{n.x, n.y + 1, n.z};
    case Direction::YMinus:
      if (n.y == 0) return std::nullopt;
      return NodeId{n.x, n.y - 1, n.z};
    case Direction::ZPlus:
      if (n.z + 1 >= nz_) return std::nullopt;
      return NodeId{n.x, n.y, n.z + 1};
    case Direction::ZMinus:
      if (n.z == 0) return std::nullopt;
      return NodeId{n.x, n.y, n.z - 1};
    case Direction::Local:
      return n;
  }
  return std::nullopt;
}

Direction Mesh3D::route(NodeId at, NodeId dst) const {
  if (at.x < dst.x) return Direction::XPlus;
  if (at.x > dst.x) return Direction::XMinus;
  if (at.y < dst.y) return Direction::YPlus;
  if (at.y > dst.y) return Direction::YMinus;
  if (at.z < dst.z) return Direction::ZPlus;
  if (at.z > dst.z) return Direction::ZMinus;
  return Direction::Local;
}

std::size_t Mesh3D::hop_count(NodeId from, NodeId to) const {
  const auto d = [](std::size_t a, std::size_t b) { return a > b ? a - b : b - a; };
  return d(from.x, to.x) + d(from.y, to.y) + d(from.z, to.z);
}

}  // namespace tsvcod::noc
