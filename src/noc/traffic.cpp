#include "noc/traffic.hpp"

#include <stdexcept>

namespace tsvcod::noc {

namespace {

/// Packs two consecutive 16 b samples of a stream into one 32 b word.
class PackedPairStream final : public streams::WordStream {
 public:
  explicit PackedPairStream(std::unique_ptr<streams::WordStream> inner)
      : inner_(std::move(inner)) {}
  std::size_t width() const override { return 32; }
  std::uint64_t next() override { return inner_->next() | (inner_->next() << 16); }

 private:
  std::unique_ptr<streams::WordStream> inner_;
};

/// Four consecutive luminance bytes of an image per 32 b flit (DMA bursts).
class ImageDmaStream final : public streams::WordStream {
 public:
  explicit ImageDmaStream(std::uint64_t seed) : pixels_(streams::ImageParams{}, seed) {}
  std::size_t width() const override { return 32; }
  std::uint64_t next() override {
    std::uint64_t w = 0;
    for (int k = 0; k < 4; ++k) w |= pixels_.next() << (8 * k);
    return w;
  }

 private:
  streams::GrayscaleStream pixels_;
};

}  // namespace

TrafficGenerator::TrafficGenerator(const Mesh3D& mesh, const TrafficConfig& config)
    : mesh_(mesh), config_(config), rng_(config.seed) {
  if (config.injection_rate < 0.0 || config.injection_rate > 1.0) {
    throw std::invalid_argument("TrafficGenerator: injection rate outside [0, 1]");
  }
  if (config.flit_width == 0 || config.flit_width > 64) {
    throw std::invalid_argument("TrafficGenerator: bad flit width");
  }
  switch (config.payload) {
    case PayloadModel::Random:
      payload_stream_ =
          std::make_unique<streams::UniformRandomStream>(config.flit_width, config.seed + 1);
      break;
    case PayloadModel::Dsp:
      payload_stream_ = std::make_unique<PackedPairStream>(
          std::make_unique<streams::GaussianAr1Stream>(16, 1200.0, 0.7, config.seed + 1));
      break;
    case PayloadModel::ImageDma:
      payload_stream_ = std::make_unique<ImageDmaStream>(config.seed + 1);
      break;
  }
}

NodeId TrafficGenerator::pick_destination(NodeId src) {
  switch (config_.spatial) {
    case SpatialPattern::Uniform: {
      std::uniform_int_distribution<std::size_t> pick(0, mesh_.node_count() - 1);
      NodeId dst = mesh_.node(pick(rng_));
      while (dst == src) dst = mesh_.node(pick(rng_));
      return dst;
    }
    case SpatialPattern::Hotspot: {
      // Fetch from the memory die: same (x, y), top layer.
      NodeId dst{src.x, src.y, mesh_.nz() - 1};
      if (dst == src) dst.z = 0;  // nodes already on top talk to the bottom
      return dst;
    }
    case SpatialPattern::Transpose:
      return NodeId{src.y % mesh_.nx(), src.x % mesh_.ny(), mesh_.nz() - 1 - src.z};
  }
  throw std::logic_error("TrafficGenerator: unknown spatial pattern");
}

std::uint64_t TrafficGenerator::next_payload() {
  return payload_stream_->next() & streams::width_mask(config_.flit_width);
}

std::optional<Flit> TrafficGenerator::generate(NodeId node, std::size_t cycle) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  if (uni(rng_) >= config_.injection_rate) return std::nullopt;
  NodeId dst = pick_destination(node);
  if (dst == node) return std::nullopt;  // degenerate transpose fixed points
  Flit f;
  f.payload = next_payload();
  f.src = node;
  f.dst = dst;
  f.injected_at = cycle;
  return f;
}

}  // namespace tsvcod::noc
