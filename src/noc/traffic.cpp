#include "noc/traffic.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "opt/parallel.hpp"
#include "streams/image_sensor.hpp"
#include "streams/mems.hpp"
#include "streams/random_streams.hpp"

namespace tsvcod::noc {

namespace {

/// Packs two consecutive 16 b samples of a stream into one 32 b word.
class PackedPairStream final : public streams::WordStream {
 public:
  explicit PackedPairStream(std::unique_ptr<streams::WordStream> inner)
      : inner_(std::move(inner)) {}
  std::size_t width() const override { return 32; }
  std::uint64_t next() override { return inner_->next() | (inner_->next() << 16); }

 private:
  std::unique_ptr<streams::WordStream> inner_;
};

/// Four consecutive luminance bytes of an image per 32 b flit (DMA bursts).
class ImageDmaStream final : public streams::WordStream {
 public:
  explicit ImageDmaStream(std::uint64_t seed) : pixels_(streams::ImageParams{}, seed) {}
  std::size_t width() const override { return 32; }
  std::uint64_t next() override {
    std::uint64_t w = 0;
    for (int k = 0; k < 4; ++k) w |= pixels_.next() << (8 * k);
    return w;
  }

 private:
  streams::GrayscaleStream pixels_;
};

std::unique_ptr<streams::WordStream> make_payload_stream(const TrafficConfig& config,
                                                         std::uint64_t seed) {
  switch (config.payload) {
    case PayloadModel::Random:
      return std::make_unique<streams::UniformRandomStream>(config.flit_width, seed);
    case PayloadModel::Dsp:
      return std::make_unique<PackedPairStream>(
          std::make_unique<streams::GaussianAr1Stream>(16, 1200.0, 0.7, seed));
    case PayloadModel::ImageDma:
      return std::make_unique<ImageDmaStream>(seed);
    case PayloadModel::Mems:
      return std::make_unique<PackedPairStream>(
          std::make_unique<streams::MemsXyzStream>(streams::MemsKind::Accelerometer, seed));
  }
  throw std::logic_error("TrafficGenerator: unknown payload model");
}

}  // namespace

void TrafficConfig::validate() const {
  if (!(injection_rate >= 0.0 && injection_rate <= 1.0)) {
    throw std::invalid_argument("TrafficConfig.injection_rate must be in [0, 1] (got " +
                                std::to_string(injection_rate) + ")");
  }
  if (flit_width == 0 || flit_width > 64) {
    throw std::invalid_argument("TrafficConfig.flit_width must be in [1, 64] (got " +
                                std::to_string(flit_width) + ")");
  }
  const auto finite_nonneg = [](const char* field, double v) {
    if (!(v >= 0.0) || !std::isfinite(v)) {
      throw std::invalid_argument("TrafficConfig." + std::string(field) +
                                  " must be a finite value >= 0 (got " + std::to_string(v) + ")");
    }
  };
  finite_nonneg("burst_on", burst_on);
  finite_nonneg("burst_off", burst_off);
  if ((burst_on > 0.0) != (burst_off > 0.0)) {
    throw std::invalid_argument(
        "TrafficConfig.burst_on and TrafficConfig.burst_off must be set together (got on=" +
        std::to_string(burst_on) + ", off=" + std::to_string(burst_off) + ")");
  }
}

/// Per-node generator state. The RNG is a bare splitmix64 chain — portable,
/// 8 bytes, and statistically independent across nodes by construction.
struct TrafficGenerator::NodeState {
  std::uint64_t rng = 0;
  std::unique_ptr<streams::WordStream> payload;
  bool bursting = true;
  std::uint64_t burst_left = 0;  ///< cycles left in the current on/off phase

  std::uint64_t u64() {
    std::uint64_t z = (rng += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  double real01() { return static_cast<double>(u64() >> 11) * 0x1.0p-53; }
  /// Geometric phase length with the given mean (>= 1 cycle).
  std::uint64_t phase_len(double mean) {
    const double u = real01();
    const double p = 1.0 / std::max(1.0, mean);
    return 1 + static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
  }
};

TrafficGenerator::TrafficGenerator(const Mesh3D& mesh, const TrafficConfig& config)
    : mesh_(mesh), config_(config) {
  config.validate();
  inject_threshold_ =
      static_cast<std::uint64_t>(std::ceil(config.injection_rate * 9007199254740992.0));  // 2^53
  nodes_.resize(mesh.node_count());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeState& st = nodes_[i];
    st.rng = opt::deterministic_seed(config.seed, i);
    st.payload = make_payload_stream(config, opt::deterministic_seed(config.seed ^ 0xF11Dull, i));
    if (config.burst_on > 0.0) {
      // Desynchronize nodes: start in a random phase of the on/off cycle.
      st.bursting = st.real01() < config.burst_on / (config.burst_on + config.burst_off);
      st.burst_left = st.phase_len(st.bursting ? config.burst_on : config.burst_off);
    }
  }
}

TrafficGenerator::~TrafficGenerator() = default;
TrafficGenerator::TrafficGenerator(TrafficGenerator&&) noexcept = default;

NodeId TrafficGenerator::pick_destination(NodeId src, NodeState& st) {
  switch (config_.spatial) {
    case SpatialPattern::Uniform: {
      NodeId dst = mesh_.node(st.u64() % mesh_.node_count());
      while (dst == src) dst = mesh_.node(st.u64() % mesh_.node_count());
      return dst;
    }
    case SpatialPattern::Hotspot: {
      // Fetch from the memory die: same (x, y), top layer.
      NodeId dst{src.x, src.y, mesh_.nz() - 1};
      if (dst == src) dst.z = 0;  // nodes already on top talk to the bottom
      return dst;
    }
    case SpatialPattern::Transpose:
      return NodeId{src.y % mesh_.nx(), src.x % mesh_.ny(), mesh_.nz() - 1 - src.z};
  }
  throw std::logic_error("TrafficGenerator: unknown spatial pattern");
}

std::optional<Flit> TrafficGenerator::generate(NodeId node, std::size_t cycle) {
  return generate(mesh_.index(node), cycle);
}

std::optional<Flit> TrafficGenerator::generate(std::size_t node_index, std::size_t cycle) {
  NodeState& st = nodes_[node_index];
  if (config_.burst_on > 0.0) {
    if (st.burst_left == 0) {
      st.bursting = !st.bursting;
      st.burst_left = st.phase_len(st.bursting ? config_.burst_on : config_.burst_off);
    }
    --st.burst_left;
    if (!st.bursting) {
      // Keep the injection draw consumed so a node's stream position depends
      // only on the cycle count, never on the burst phase sequence.
      st.u64();
      return std::nullopt;
    }
  }
  if ((st.u64() >> 11) >= inject_threshold_) return std::nullopt;
  const NodeId node = mesh_.node(node_index);
  const NodeId dst = pick_destination(node, st);
  if (dst == node) return std::nullopt;  // degenerate transpose fixed points
  Flit f;
  f.payload = st.payload->next() & streams::width_mask(config_.flit_width);
  f.src = node;
  f.dst = dst;
  f.injected_at = cycle;
  return f;
}

}  // namespace tsvcod::noc
