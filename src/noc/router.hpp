#pragma once
// Batched router core for the 3D-mesh NoC.
//
// The store-and-forward model is unchanged from the original simulator —
// one flit per packet, at most one flit per output link per cycle,
// round-robin arbitration over the input ports contending for an output —
// but the data layout is rebuilt for throughput: each input port is a flat
// ring buffer of 24 B slots (payload u64, packed dst u32, injection cycle
// u32, plus the precomputed output port u8) so a push is one contiguous
// store instead of four scattered ones, a per-router bitmask tracks
// non-empty ports so idle routers cost one load per cycle, and arbitration
// works on plain arrays with zero steady-state allocation.
// Queues are unbounded by default (they grow geometrically); a bounded
// capacity turns on back-pressure, which the cycle kernel accounts as
// SimStats::stalled_cycles.
//
// Routing is resolved once, at enqueue time (XYZ dimension order is a pure
// function of (router, destination)), so arbitration never recomputes
// routes — it just matches head-of-queue port tags.

#include <cstdint>
#include <vector>

#include "noc/topology.hpp"

namespace tsvcod::noc {

/// One flit in transit, stripped to the fields the fabric needs.
struct PackedFlit {
  std::uint64_t payload = 0;
  std::uint32_t dst = 0;       ///< destination node index
  std::uint32_t injected = 0;  ///< cycle of injection
};

/// Flat ring buffer of flits queued at one input port. One slot per flit
/// keeps an enqueue/dequeue within a single cache line.
class FlitRing {
 public:
  /// `capacity` 0 = unbounded (storage grows geometrically).
  explicit FlitRing(std::size_t capacity = 0);

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  bool full() const { return bounded_ && count_ == bound_; }

  /// Enqueue; returns false (and drops nothing — the caller keeps the flit)
  /// when a bounded ring is full.
  bool push(const PackedFlit& flit, std::uint8_t out_port);

  /// Output port of the head flit. Only valid when !empty().
  std::uint8_t head_out() const { return slots_[head_].out; }

  /// Dequeue the head flit. Only valid when !empty().
  PackedFlit pop();

 private:
  struct Slot {
    PackedFlit flit;
    std::uint8_t out;
  };

  void grow();

  std::vector<Slot> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t bound_ = 0;  ///< hard capacity when bounded
  bool bounded_ = false;
};

/// Per-router switching state: seven input rings plus the round-robin
/// arbitration pointers. All methods touch only this router's state, which
/// is what lets the cycle kernel run routers from any worker rank.
class Router {
 public:
  explicit Router(std::size_t queue_capacity = 0);

  /// Enqueue a flit arriving on `port` whose precomputed output is
  /// `out_port`; false when the bounded ring is full (back-pressure).
  bool accept(Direction port, const PackedFlit& flit, Direction out_port);

  std::size_t queued() const;
  std::size_t queued(Direction port) const {
    return in_[static_cast<std::size_t>(port)].size();
  }

  /// Pick at most one flit per output port this cycle. `blocked_mask` bit d
  /// marks output ports whose downstream register is still occupied
  /// (back-pressure): they grant nothing, and if some head flit wanted such
  /// a port, `stalled` is incremented once per blocked port per cycle.
  /// Granted flits are removed from their rings and written to `grants`;
  /// the return value has bit d set for every granted output port.
  std::uint8_t arbitrate(std::uint8_t blocked_mask, PackedFlit grants[kPortCount],
                         std::uint64_t& stalled);

  /// Bitmask of non-empty input ports (bit = static_cast<int>(Direction)).
  std::uint8_t occupied_mask() const { return occupied_; }

 private:
  FlitRing in_[kPortCount];
  std::uint8_t rr_[kPortCount] = {};  ///< round-robin pointer per output port
  std::uint8_t occupied_ = 0;
};

}  // namespace tsvcod::noc
