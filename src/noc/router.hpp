#pragma once
// Cycle-accurate single-flit router for the 3D-mesh NoC.
//
// Model: store-and-forward, one flit per packet, one flit per output link
// per cycle, round-robin arbitration over the input ports contending for the
// same output. Queues are unbounded (the simulator reports occupancy so
// saturation is visible); with XYZ dimension-order routing the network is
// deadlock-free by construction.

#include <array>
#include <deque>

#include "noc/topology.hpp"

namespace tsvcod::noc {

struct Flit {
  std::uint64_t payload = 0;
  NodeId src{};
  NodeId dst{};
  std::size_t injected_at = 0;  ///< cycle of injection
};

class Router {
 public:
  explicit Router(NodeId id) : id_(id) {}

  NodeId id() const { return id_; }

  /// Queue a flit arriving on `port` (Local = injection).
  void accept(Direction port, Flit flit);

  /// Pick at most one flit per output direction for this cycle (round-robin
  /// over input ports, starting after the last winner). The chosen flits are
  /// removed from their input queues.
  /// `out[d]` holds the flit departing through direction d (Local = eject).
  void arbitrate(const Mesh3D& mesh, std::array<std::optional<Flit>, kPortCount>& out);

  std::size_t queued() const;

 private:
  NodeId id_;
  std::array<std::deque<Flit>, kPortCount> in_;
  std::array<int, kPortCount> rr_{};  ///< round-robin pointer per output port
};

}  // namespace tsvcod::noc
