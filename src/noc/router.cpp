#include "noc/router.hpp"

#include <bit>

namespace tsvcod::noc {

FlitRing::FlitRing(std::size_t capacity) : bound_(capacity), bounded_(capacity > 0) {}

void FlitRing::grow() {
  // Re-linearize into a fresh buffer twice the size (head back at 0).
  const std::size_t old_cap = slots_.size();
  const std::size_t new_cap = old_cap == 0 ? 8 : old_cap * 2;
  std::vector<Slot> slots(new_cap);
  for (std::size_t i = 0; i < count_; ++i) {
    const std::size_t s = head_ + i < old_cap ? head_ + i : head_ + i - old_cap;
    slots[i] = slots_[s];
  }
  slots_ = std::move(slots);
  head_ = 0;
}

bool FlitRing::push(const PackedFlit& flit, std::uint8_t out_port) {
  if (bounded_ && count_ == bound_) return false;
  if (count_ == slots_.size()) grow();
  std::size_t tail = head_ + count_;
  if (tail >= slots_.size()) tail -= slots_.size();
  slots_[tail].flit = flit;
  slots_[tail].out = out_port;
  ++count_;
  return true;
}

PackedFlit FlitRing::pop() {
  const PackedFlit f = slots_[head_].flit;
  --count_;
  if (++head_ == slots_.size()) head_ = 0;
  return f;
}

Router::Router(std::size_t queue_capacity) {
  for (auto& ring : in_) ring = FlitRing(queue_capacity);
}

bool Router::accept(Direction port, const PackedFlit& flit, Direction out_port) {
  const auto p = static_cast<std::size_t>(port);
  if (!in_[p].push(flit, static_cast<std::uint8_t>(out_port))) return false;
  occupied_ |= static_cast<std::uint8_t>(1u << p);
  return true;
}

std::size_t Router::queued() const {
  std::size_t total = 0;
  for (const auto& ring : in_) total += ring.size();
  return total;
}

std::uint8_t Router::arbitrate(std::uint8_t blocked_mask, PackedFlit grants[kPortCount],
                               std::uint64_t& stalled) {
  if (occupied_ == 0) return 0;
  std::uint8_t granted = 0;
  // Head output-port tags, gathered once per cycle; `wanted` marks the
  // outputs some head actually contends for, so the grant loop only visits
  // those instead of scanning all seven.
  std::uint8_t head_out[kPortCount];
  std::uint8_t wanted = 0;
  for (std::uint8_t occ = occupied_; occ != 0; occ &= static_cast<std::uint8_t>(occ - 1)) {
    const int p = std::countr_zero(occ);
    head_out[p] = in_[p].head_out();
    wanted |= static_cast<std::uint8_t>(1u << head_out[p]);
  }
  for (std::uint8_t w = wanted; w != 0; w &= static_cast<std::uint8_t>(w - 1)) {
    const int out = std::countr_zero(w);
    if (blocked_mask & (1u << out)) {
      // A flit is ready but the downstream register has not been drained:
      // back-pressure stall, one per blocked output per cycle.
      ++stalled;
      continue;
    }
    const int start = rr_[out];
    int winner = -1;
    for (int k = 0; k < kPortCount; ++k) {
      const int p = start + k < kPortCount ? start + k : start + k - kPortCount;
      if (!(occupied_ & (1u << p)) || head_out[p] != out) continue;
      winner = p;
      break;
    }
    if (winner < 0) continue;  // the only contender was granted to another output
    grants[out] = in_[static_cast<std::size_t>(winner)].pop();
    if (in_[static_cast<std::size_t>(winner)].empty()) {
      occupied_ &= static_cast<std::uint8_t>(~(1u << winner));
    }
    rr_[out] = static_cast<std::uint8_t>(winner + 1 == kPortCount ? 0 : winner + 1);
    granted |= static_cast<std::uint8_t>(1u << out);
  }
  return granted;
}

}  // namespace tsvcod::noc
