#include "noc/router.hpp"

namespace tsvcod::noc {

void Router::accept(Direction port, Flit flit) {
  in_[static_cast<std::size_t>(port)].push_back(std::move(flit));
}

std::size_t Router::queued() const {
  std::size_t total = 0;
  for (const auto& q : in_) total += q.size();
  return total;
}

void Router::arbitrate(const Mesh3D& mesh, std::array<std::optional<Flit>, kPortCount>& out) {
  for (auto& o : out) o.reset();
  // For each output port, scan the input ports round-robin and grant the
  // first whose head flit routes through it.
  for (int out_port = 0; out_port < kPortCount; ++out_port) {
    const int start = rr_[static_cast<std::size_t>(out_port)];
    for (int k = 0; k < kPortCount; ++k) {
      const int in_port = (start + k) % kPortCount;
      auto& q = in_[static_cast<std::size_t>(in_port)];
      if (q.empty()) continue;
      const Direction want = mesh.route(id_, q.front().dst);
      if (static_cast<int>(want) != out_port) continue;
      out[static_cast<std::size_t>(out_port)] = std::move(q.front());
      q.pop_front();
      rr_[static_cast<std::size_t>(out_port)] = (in_port + 1) % kPortCount;
      break;
    }
  }
}

}  // namespace tsvcod::noc
