#pragma once
// 3D-mesh NoC topology (paper Sec. 7, last experiment: "we assume a 3D
// network on chip, where the data is mainly transmitted over 2D links").
//
// Nodes sit on an nx x ny x nz grid; each node has up to six neighbours.
// Vertical (+z/-z) links are the TSV bundles this library optimizes; the
// planar links are metal wires (where the coupling-invert code of the last
// experiment comes from).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

namespace tsvcod::noc {

enum class Direction : std::uint8_t { XPlus, XMinus, YPlus, YMinus, ZPlus, ZMinus, Local };

inline constexpr int kPortCount = 7;  ///< six directions + local injection/ejection

struct NodeId {
  std::size_t x = 0, y = 0, z = 0;
  bool operator==(const NodeId&) const = default;
};

class Mesh3D {
 public:
  Mesh3D(std::size_t nx, std::size_t ny, std::size_t nz);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  std::size_t node_count() const { return nx_ * ny_ * nz_; }

  std::size_t index(NodeId n) const;
  NodeId node(std::size_t index) const;

  /// Neighbour in a direction, if it exists.
  std::optional<NodeId> neighbor(NodeId n, Direction d) const;

  /// Dimension-order (X, then Y, then Z) routing: the output direction a
  /// flit at `at` takes towards `dst`; Local when it has arrived. XYZ order
  /// is deadlock-free on a mesh.
  Direction route(NodeId at, NodeId dst) const;

  /// Number of hops of the XYZ route.
  std::size_t hop_count(NodeId from, NodeId to) const;

  /// True if the link (from, d) is vertical (a TSV bundle).
  static bool is_vertical(Direction d) {
    return d == Direction::ZPlus || d == Direction::ZMinus;
  }

 private:
  std::size_t nx_, ny_, nz_;
};

/// Identifies one unidirectional link: the sending node and its output port.
struct LinkId {
  NodeId from;
  Direction out = Direction::Local;
  bool operator==(const LinkId&) const = default;
};

}  // namespace tsvcod::noc
