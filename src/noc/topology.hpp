#pragma once
// 3D-mesh NoC topology (paper Sec. 7, last experiment: "we assume a 3D
// network on chip, where the data is mainly transmitted over 2D links").
//
// Nodes sit on an nx x ny x nz grid; each node has up to six neighbours.
// Vertical (+z/-z) links are the TSV bundles this library optimizes; the
// planar links are metal wires (where the coupling-invert code of the last
// experiment comes from).
//
// Node indices are z-major ((z * ny + y) * nx + x), so a contiguous index
// range is a horizontal slab of the stack — the partition unit the parallel
// cycle kernel hands to each worker rank (DESIGN.md §5k).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace tsvcod::noc {

enum class Direction : std::uint8_t { XPlus, XMinus, YPlus, YMinus, ZPlus, ZMinus, Local };

inline constexpr int kPortCount = 7;  ///< six directions + local injection/ejection

const char* direction_name(Direction d);

struct NodeId {
  std::size_t x = 0, y = 0, z = 0;
  bool operator==(const NodeId&) const = default;
};

class Mesh3D {
 public:
  Mesh3D(std::size_t nx, std::size_t ny, std::size_t nz);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }
  std::size_t node_count() const { return nx_ * ny_ * nz_; }

  std::size_t index(NodeId n) const;
  NodeId node(std::size_t index) const;

  /// Neighbour in a direction, if it exists.
  std::optional<NodeId> neighbor(NodeId n, Direction d) const;

  /// Neighbour of node `index` in direction `d` as an index, or `npos` when
  /// the link leaves the mesh. Pure index arithmetic — the form the batched
  /// cycle kernel uses (no NodeId round-trips on the hot path).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t neighbor_index(std::size_t index, Direction d) const;

  /// Dimension-order (X, then Y, then Z) routing: the output direction a
  /// flit at `at` takes towards `dst`; Local when it has arrived. XYZ order
  /// is deadlock-free on a mesh.
  Direction route(NodeId at, NodeId dst) const;

  /// Index-space routing: direction taken at node `at` towards `dst`.
  Direction route_index(std::size_t at, std::size_t dst) const;

  /// Number of hops of the XYZ route.
  std::size_t hop_count(NodeId from, NodeId to) const;

  /// True if the link (from, d) is vertical (a TSV bundle).
  static bool is_vertical(Direction d) {
    return d == Direction::ZPlus || d == Direction::ZMinus;
  }

 private:
  std::size_t nx_, ny_, nz_;
};

/// Identifies one unidirectional link: the sending node and its output port.
struct LinkId {
  NodeId from;
  Direction out = Direction::Local;
  bool operator==(const LinkId&) const = default;
};

/// "(x,y,z) -> Z+" — the form validation errors and trace tracks use.
std::string link_name(const LinkId& link);

/// Flat slot of link (node `index`, output `d`) in the per-link counter
/// vectors (SimStats::link_flits et al.): index * kPortCount + port.
inline std::size_t link_slot(std::size_t index, Direction d) {
  return index * static_cast<std::size_t>(kPortCount) + static_cast<std::size_t>(d);
}

/// True when `link` names an edge that exists in `mesh` (its source node is
/// in range and the output direction does not leave the mesh; Local never
/// names an inter-router link).
bool link_exists(const Mesh3D& mesh, const LinkId& link);

/// Throws std::invalid_argument naming `field` and the offending link when
/// the link does not exist (used by probe_link and the coding planner).
void validate_link(const Mesh3D& mesh, const LinkId& link, const char* field);

/// Every vertical (±z) link of the mesh in deterministic order: all Z+ links
/// by source index, then all Z- links by source index. These are the TSV
/// bundles the per-link coding layer prices and optimizes.
std::vector<LinkId> vertical_links(const Mesh3D& mesh);

}  // namespace tsvcod::noc
