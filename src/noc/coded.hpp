#pragma once
// Per-link adaptive coding for the vertical TSV bundles of a 3D mesh.
//
// The single-link flow (probe one bundle, measure, optimize one assignment)
// scales to the whole stack here: a warm-up simulation with per-vertical-link
// switching-statistics tracking measures every bundle's *own* traffic — the
// hotspot column under a memory controller sees very different words than a
// corner bundle — and the batch annealer (core::optimize_assignments) then
// derives an independently optimized bit-to-TSV assignment per bundle, in
// parallel over bundles through the shared pool. The resulting plan plugs
// straight into NocSimulator::attach_vertical_coding.
//
// The whole pipeline is deterministic: warm-up statistics are exact integers
// (bit-identical at every thread count), and each link's annealing chains are
// seeded from the link index.

#include <vector>

#include "core/optimize.hpp"
#include "noc/simulator.hpp"
#include "phys/tsv_geometry.hpp"

namespace tsvcod::noc {

/// The most-square rows x cols TSV array holding exactly `lines` bundles
/// (1 x lines when `lines` is prime), at the relaxed ITRS pitch. The shape
/// only matters through the coupling-capacitance pattern; squarer arrays
/// have richer neighbourhoods for the assignment to exploit.
phys::TsvArrayGeometry default_bundle_geometry(std::size_t lines);

struct VerticalCodingOptions {
  /// Codec attached to every vertical link (bus-invert by default: its
  /// keep-polarity option guarantees coded line toggles never exceed the
  /// uncoded payload toggles, at the cost of one extra TSV per bundle).
  coding::CodecSpec spec{.name = "bus-invert"};
  /// Warm-up simulation length used to measure per-link statistics.
  std::size_t warmup_cycles = 4096;
  /// Annealing knobs shared by all links (seeds are derived per link).
  core::OptimizeOptions optimize{};
  /// TSV array per bundle; rows == 0 = default_bundle_geometry(line width).
  phys::TsvArrayGeometry geometry{};
  /// Worker threads for the warm-up simulation and the batch anneal
  /// (TSVCOD_THREADS convention; results are thread-count invariant).
  int threads = 0;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

struct VerticalCodingPlan {
  std::vector<LinkId> links;  ///< vertical_links(mesh) order
  std::vector<core::SignedPermutation> assignments;
  std::vector<double> optimized_power;  ///< <T,C> per link, optimized assignment
  std::vector<double> identity_power;   ///< <T,C> per link, identity assignment
  std::size_t line_width = 0;           ///< coded lines per bundle
  std::size_t warmup_cycles = 0;

  double total_optimized_power() const;
  double total_identity_power() const;
};

/// Measure every vertical link under `traffic` (coded-line domain: the
/// warm-up runs with identity-assigned codecs attached) and return one
/// optimized assignment per link. Feed `plan.assignments` to
/// NocSimulator::attach_vertical_coding(options.spec, plan.assignments).
VerticalCodingPlan plan_vertical_coding(const Mesh3D& mesh, const TrafficConfig& traffic,
                                        const VerticalCodingOptions& options = {});

}  // namespace tsvcod::noc
