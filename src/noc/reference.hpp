#pragma once
// Reference mesh simulator: the pre-optimization design, kept on purpose.
//
// This is the deque-of-Flit, NodeId-everywhere, allocate-per-cycle simulator
// the batched engine (noc/simulator.hpp) replaced, adjusted to the engine's
// exact two-phase timing and arbitration discipline. It exists for two
// reasons:
//
//  * golden model — it computes the same SimStats (injection, delivery,
//    latency sum, ejection digest, per-link flit/toggle counters, occupancy
//    high-water mark) through completely different data structures, so a
//    differential test against the batched engine catches bookkeeping bugs
//    in either one;
//  * bench baseline — bench/noc_mesh measures the batched engine's
//    single-thread speedup against it, which is the honest "vs the pre-PR
//    simulator" number (same semantics, old layout).
//
// Unbounded queues, no coding, no probe — the common core only.

#include "noc/traffic.hpp"

namespace tsvcod::noc {

struct SimStats;

class ReferenceSimulator {
 public:
  ReferenceSimulator(const Mesh3D& mesh, const TrafficConfig& traffic);
  ~ReferenceSimulator();
  ReferenceSimulator(ReferenceSimulator&&) noexcept;

  /// Run `cycles` cycles. The populated SimStats fields are: injected,
  /// delivered, latency_cycles, mean_latency, max_queued, in_flight,
  /// ejection_digest, link_flits and link_toggles — each bit-identical to
  /// the batched engine under the same (mesh, traffic, cycles).
  SimStats run(std::size_t cycles);

 private:
  struct Node;

  const Mesh3D& mesh_;
  TrafficGenerator traffic_;
  std::vector<Node> nodes_;
  std::size_t flit_width_;
  std::size_t cycle_ = 0;
  std::size_t injected_ = 0;
  std::size_t delivered_ = 0;
  std::uint64_t latency_ = 0;
  std::size_t max_queued_ = 0;
  std::vector<std::uint64_t> digest_;
  std::vector<std::uint64_t> delivered_per_;
  std::vector<std::uint64_t> link_flits_;
  std::vector<std::uint64_t> link_toggles_;
  std::vector<std::uint64_t> link_last_word_;
};

}  // namespace tsvcod::noc
