#pragma once
// Traffic generation for the 3D-mesh NoC.
//
// Spatial patterns (who talks to whom):
//  * Uniform  — uniformly random destinations.
//  * Hotspot  — all traffic targets the top layer (logic-under-memory
//               stacking: every node fetches from the memory die above),
//               which concentrates flits on the vertical TSV links.
//  * Transpose— (x,y,z) -> (y,x,nz-1-z), a classic adversarial pattern.
//
// Payload models (what the flits carry — this is what the bit-to-TSV
// assignment exploits):
//  * Random   — incompressible data.
//  * Dsp      — 2 x 16 b Gaussian AR(1) samples packed per 32 b flit.
//  * ImageDma — consecutive bytes of a synthetic image, 4 pixels per flit.

#include <memory>
#include <random>

#include "noc/router.hpp"
#include "streams/image_sensor.hpp"
#include "streams/random_streams.hpp"

namespace tsvcod::noc {

enum class SpatialPattern { Uniform, Hotspot, Transpose };
enum class PayloadModel { Random, Dsp, ImageDma };

struct TrafficConfig {
  SpatialPattern spatial = SpatialPattern::Hotspot;
  PayloadModel payload = PayloadModel::Random;
  double injection_rate = 0.1;  ///< flits per node per cycle
  std::size_t flit_width = 32;
  std::uint64_t seed = 1;
};

class TrafficGenerator {
 public:
  TrafficGenerator(const Mesh3D& mesh, const TrafficConfig& config);

  /// Flits injected at `node` in this cycle (0 or 1 in this model).
  std::optional<Flit> generate(NodeId node, std::size_t cycle);

 private:
  NodeId pick_destination(NodeId src);
  std::uint64_t next_payload();

  const Mesh3D& mesh_;
  TrafficConfig config_;
  std::mt19937_64 rng_;
  std::unique_ptr<streams::WordStream> payload_stream_;
};

}  // namespace tsvcod::noc
