#pragma once
// Traffic generation for the 3D-mesh NoC.
//
// Spatial patterns (who talks to whom):
//  * Uniform  — uniformly random destinations.
//  * Hotspot  — all traffic targets the top layer (logic-under-memory
//               stacking: every node fetches from the memory die above),
//               which concentrates flits on the vertical TSV links.
//  * Transpose— (x,y,z) -> (y,x,nz-1-z), a classic adversarial pattern.
//
// Payload models (what the flits carry — this is what the bit-to-TSV
// assignment exploits):
//  * Random   — incompressible data.
//  * Dsp      — 2 x 16 b Gaussian AR(1) samples packed per 32 b flit.
//  * ImageDma — consecutive bytes of a synthetic image, 4 pixels per flit.
//  * Mems     — interleaved 16 b MEMS accelerometer axes, 2 per 32 b flit
//               (the paper's Sec. 5.2 sensor workload on the network).
//
// Temporal shape: steady Bernoulli injection by default; setting
// `burst_on`/`burst_off` turns each node into a two-state Markov source
// (mean `burst_on` cycles injecting at `injection_rate`, mean `burst_off`
// cycles silent) — the bursty MEMS/DMA regime of the ROADMAP.
//
// Determinism and parallelism: every node owns an independent generator
// state seeded from (seed, node index) via opt::deterministic_seed, so
// injection at node n on cycle c is a pure function of (config, n, c) —
// independent of call interleaving across nodes. The parallel cycle kernel
// relies on exactly this to inject from worker ranks and still produce
// bit-identical traffic at every thread count.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "noc/topology.hpp"
#include "streams/word_stream.hpp"

namespace tsvcod::noc {

enum class SpatialPattern { Uniform, Hotspot, Transpose };
enum class PayloadModel { Random, Dsp, ImageDma, Mems };

struct TrafficConfig {
  SpatialPattern spatial = SpatialPattern::Hotspot;
  PayloadModel payload = PayloadModel::Random;
  double injection_rate = 0.1;  ///< flits per node per cycle (while bursting)
  std::size_t flit_width = 32;
  std::uint64_t seed = 1;
  /// Mean cycles of a node's injection burst / silence gap. Both 0 = steady
  /// injection (no burst modulation); both must be set together.
  double burst_on = 0.0;
  double burst_off = 0.0;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// One flit: the transfer unit of the mesh (single-flit packets).
struct Flit {
  std::uint64_t payload = 0;
  NodeId src{};
  NodeId dst{};
  std::size_t injected_at = 0;  ///< cycle of injection
};

class TrafficGenerator {
 public:
  TrafficGenerator(const Mesh3D& mesh, const TrafficConfig& config);
  ~TrafficGenerator();
  TrafficGenerator(TrafficGenerator&&) noexcept;

  /// Flit injected at `node` in this cycle (0 or 1 in this model). Node
  /// states are independent: concurrent calls for *different* nodes are safe
  /// and deterministic; calls for one node must stay in cycle order.
  std::optional<Flit> generate(NodeId node, std::size_t cycle);

  /// Index-space variant used by the cycle kernel.
  std::optional<Flit> generate(std::size_t node_index, std::size_t cycle);

 private:
  struct NodeState;

  NodeId pick_destination(NodeId src, NodeState& st);

  const Mesh3D& mesh_;
  TrafficConfig config_;
  /// injection_rate rescaled to the raw 53-bit draw domain, so the per-cycle
  /// inject decision is one integer compare. Exactly equivalent to comparing
  /// real01() < rate: the draw m is uniform over [0, 2^53) and
  /// m * 2^-53 < rate  <=>  m < ceil(rate * 2^53) (both sides exact doubles).
  std::uint64_t inject_threshold_ = 0;
  std::vector<NodeState> nodes_;
};

}  // namespace tsvcod::noc
