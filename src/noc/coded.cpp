#include "noc/coded.hpp"

#include <numeric>
#include <stdexcept>
#include <string>

#include "core/link.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"

namespace tsvcod::noc {

phys::TsvArrayGeometry default_bundle_geometry(std::size_t lines) {
  if (lines == 0) {
    throw std::invalid_argument("default_bundle_geometry: lines must be >= 1 (got 0)");
  }
  std::size_t rows = 1;
  for (std::size_t r = 1; r * r <= lines; ++r) {
    if (lines % r == 0) rows = r;
  }
  return phys::TsvArrayGeometry::itrs2018_relaxed(rows, lines / rows);
}

void VerticalCodingOptions::validate() const {
  if (warmup_cycles < 2) {
    throw std::invalid_argument(
        "VerticalCodingOptions.warmup_cycles must be >= 2 (switching statistics need at least "
        "two samples; got " +
        std::to_string(warmup_cycles) + ")");
  }
  if (threads < 0) {
    throw std::invalid_argument("VerticalCodingOptions.threads must be >= 0 (got " +
                                std::to_string(threads) + ")");
  }
}

double VerticalCodingPlan::total_optimized_power() const {
  return std::accumulate(optimized_power.begin(), optimized_power.end(), 0.0);
}

double VerticalCodingPlan::total_identity_power() const {
  return std::accumulate(identity_power.begin(), identity_power.end(), 0.0);
}

VerticalCodingPlan plan_vertical_coding(const Mesh3D& mesh, const TrafficConfig& traffic,
                                        const VerticalCodingOptions& options) {
  options.validate();
  obs::Span span("noc.plan_vertical_coding");

  // Warm-up: simulate with identity-assigned codecs attached, so the tracked
  // per-link statistics live in the coded-line domain the assignment will
  // actually be applied to (the codec reshapes the word statistics).
  SimOptions sim_options;
  sim_options.threads = options.threads;
  sim_options.track_vertical_stats = true;
  NocSimulator warmup(mesh, traffic, sim_options);
  warmup.attach_vertical_coding(options.spec);
  warmup.run(options.warmup_cycles);
  const auto link_stats = warmup.vertical_link_stats();

  VerticalCodingPlan plan;
  plan.links = warmup.coded_links();
  plan.line_width = warmup.vertical_line_width();
  plan.warmup_cycles = options.warmup_cycles;

  phys::TsvArrayGeometry geom = options.geometry;
  if (geom.rows == 0) geom = default_bundle_geometry(plan.line_width);
  if (geom.count() != plan.line_width) {
    throw std::invalid_argument("VerticalCodingOptions.geometry: array holds " +
                                std::to_string(geom.count()) + " TSVs but the coded links are " +
                                std::to_string(plan.line_width) + " lines wide");
  }
  const core::Link bundle(geom);
  const tsv::LinearCapacitanceModel& model = bundle.model();

  auto results = core::optimize_assignments(link_stats, model, options.optimize, options.threads);
  plan.assignments.reserve(results.size());
  plan.optimized_power.reserve(results.size());
  plan.identity_power.reserve(results.size());
  const auto identity = core::SignedPermutation::identity(plan.line_width);
  for (std::size_t i = 0; i < results.size(); ++i) {
    plan.optimized_power.push_back(results[i].power);
    plan.identity_power.push_back(core::assignment_power(link_stats[i], identity, model));
    plan.assignments.push_back(std::move(results[i].assignment));
  }

  if (obs::metrics_enabled()) {
    obs::metric_add("noc.coding_plan.count");
    obs::metric_add("noc.coding_plan.links_total", plan.links.size());
    obs::metric_set("noc.coding_plan.identity_power", plan.total_identity_power());
    obs::metric_set("noc.coding_plan.optimized_power", plan.total_optimized_power());
  }
  if (span.traced()) {
    span.set_args("\"links\":" + std::to_string(plan.links.size()) +
                  ",\"line_width\":" + std::to_string(plan.line_width) +
                  ",\"warmup_cycles\":" + std::to_string(options.warmup_cycles));
  }
  obs::profile_work("links", plan.links.size());
  return plan;
}

}  // namespace tsvcod::noc
