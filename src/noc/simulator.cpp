#include "noc/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "opt/parallel.hpp"

namespace tsvcod::noc {

namespace {

constexpr std::uint32_t kNoStat = static_cast<std::uint32_t>(-1);

/// Order-sensitive 64-bit combine (boost::hash_combine shape). Folding every
/// ejection's (payload, latency) through this per router, then the routers in
/// index order, yields a digest equal iff the delivery streams are equal.
inline std::uint64_t digest_mix(std::uint64_t h, std::uint64_t a, std::uint64_t b) {
  h ^= a + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h ^= b + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t total(const std::vector<std::uint64_t>& v) {
  std::uint64_t sum = 0;
  for (std::uint64_t x : v) sum += x;
  return sum;
}

}  // namespace

void SimOptions::validate() const {
  if (threads < 0) {
    throw std::invalid_argument("SimOptions.threads must be >= 0 (0 = TSVCOD_THREADS; got " +
                                std::to_string(threads) + ")");
  }
}

NocSimulator::NocSimulator(const Mesh3D& mesh, const TrafficConfig& traffic, SimOptions options)
    : mesh_(mesh),
      traffic_config_(traffic),
      options_(options),
      traffic_(mesh, traffic),
      flit_width_(traffic.flit_width),
      line_width_(traffic.flit_width) {
  options.validate();
  const std::size_t n = mesh.node_count();
  const std::size_t slots = n * static_cast<std::size_t>(kPortCount);
  routers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) routers_.emplace_back(options.queue_capacity);
  nbr_.assign(n * 6, npos32);
  cx_.resize(n);
  cy_.resize(n);
  cz_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = mesh.node(i);
    cx_[i] = static_cast<std::uint16_t>(node.x);
    cy_[i] = static_cast<std::uint16_t>(node.y);
    cz_[i] = static_cast<std::uint16_t>(node.z);
    for (int d = 0; d < 6; ++d) {
      const std::size_t nb = mesh.neighbor_index(i, static_cast<Direction>(d));
      if (nb != Mesh3D::npos) nbr_[i * 6 + static_cast<std::size_t>(d)] =
          static_cast<std::uint32_t>(nb);
    }
  }
  reg_valid_.assign(slots, 0);
  reg_payload_.assign(slots, 0);
  reg_dst_.assign(slots, 0);
  reg_injected_.assign(slots, 0);
  reg_line_.assign(slots, 0);
  link_flits_.assign(slots, 0);
  link_toggles_.assign(slots, 0);
  link_coded_toggles_.assign(slots, 0);
  link_last_word_.assign(slots, 0);
  link_last_line_.assign(slots, 0);
  coded_.resize(slots);
  injected_.assign(n, 0);
  delivered_.assign(n, 0);
  latency_.assign(n, 0);
  stalls_.assign(n, 0);
  digest_.assign(n, 0);
  max_queued_.assign(n, 0);
  occ_.assign(n, 0);
  q_.assign(n, 0);
  pending_valid_.assign(n, 0);
  pending_.assign(n, PackedFlit{});
  vlinks_ = vertical_links(mesh);
  vstat_of_slot_.assign(slots, kNoStat);
  for (std::size_t i = 0; i < vlinks_.size(); ++i) {
    vstat_of_slot_[link_slot(mesh.index(vlinks_[i].from), vlinks_[i].out)] =
        static_cast<std::uint32_t>(i);
  }
  if (options_.track_vertical_stats) {
    vstats_.reserve(vlinks_.size());
    for (std::size_t i = 0; i < vlinks_.size(); ++i) vstats_.emplace_back(line_width_);
  }
}

void NocSimulator::probe_link(LinkId link) {
  validate_link(mesh_, link, "NocSimulator::probe_link");
  probing_ = true;
  probe_ = link;
  probe_router_ = mesh_.index(link.from);
  probe_slot_ = link_slot(probe_router_, link.out);
  trace_.clear();
  held_word_ = 0;
  probe_toggles_ = 0;
  probe_last_lines_ = 0;
  probe_busy_ = 0;
}

void NocSimulator::attach_vertical_coding(const coding::CodecSpec& spec,
                                          std::span<const core::SignedPermutation> assignments) {
  if (cycle_ != 0) {
    throw std::logic_error(
        "NocSimulator::attach_vertical_coding: must be called before the first run() (" +
        std::to_string(cycle_) + " cycles already simulated)");
  }
  if (!assignments.empty() && assignments.size() != vlinks_.size()) {
    throw std::invalid_argument(
        "NocSimulator::attach_vertical_coding: assignments must have one entry per vertical "
        "link (got " +
        std::to_string(assignments.size()) + ", mesh has " + std::to_string(vlinks_.size()) + ")");
  }
  std::size_t width_out = flit_width_;
  for (std::size_t i = 0; i < vlinks_.size(); ++i) {
    auto codec = coding::make_codec(spec, flit_width_);
    width_out = codec->width_out();
    core::SignedPermutation assignment = assignments.empty()
                                             ? core::SignedPermutation::identity(width_out)
                                             : assignments[i];
    const std::size_t slot = link_slot(mesh_.index(vlinks_[i].from), vlinks_[i].out);
    coded_[slot] = std::make_unique<core::CodedLink>(std::move(assignment), std::move(codec));
  }
  line_width_ = width_out;
  coded_attached_ = true;
  if (options_.track_vertical_stats) {
    // The tracked line word changes domain (and possibly width): rebuild.
    vstats_.clear();
    vstats_.reserve(vlinks_.size());
    for (std::size_t i = 0; i < vlinks_.size(); ++i) vstats_.emplace_back(line_width_);
  }
}

void NocSimulator::phase_arbitrate(std::size_t begin, std::size_t end, std::size_t cycle) {
  (void)cycle;
  for (std::size_t r = begin; r < end; ++r) {
    bool probe_fresh = false;
    std::uint64_t probe_word = 0;
    if (occ_[r] != 0) {
      Router& router = routers_[r];
      // Outputs whose downstream register has not been drained are blocked
      // (back-pressure); the local ejection register is always drained.
      std::uint8_t blocked = 0;
      const std::uint32_t* nb = &nbr_[r * 6];
      for (int out = 0; out < 6; ++out) {
        if (nb[out] != npos32 &&
            reg_valid_[static_cast<std::size_t>(nb[out]) * static_cast<std::size_t>(kPortCount) +
                       static_cast<std::size_t>(out)]) {
          blocked |= static_cast<std::uint8_t>(1u << out);
        }
      }
      PackedFlit grants[kPortCount];
      const std::uint8_t granted = router.arbitrate(blocked, grants, stalls_[r]);
      occ_[r] = router.occupied_mask();
      q_[r] -= static_cast<std::uint32_t>(std::popcount(granted));
      for (std::uint8_t g = granted; g != 0; g &= static_cast<std::uint8_t>(g - 1)) {
        const int out = std::countr_zero(g);
        const PackedFlit& f = grants[out];
        const bool local = out == static_cast<int>(Direction::Local);
        const std::size_t receiver = local ? r : static_cast<std::size_t>(nb[out]);
        const std::size_t reg =
            receiver * static_cast<std::size_t>(kPortCount) + static_cast<std::size_t>(out);
        if (!local) {
          const std::size_t slot = link_slot(r, static_cast<Direction>(out));
          ++link_flits_[slot];
          link_toggles_[slot] +=
              static_cast<std::uint64_t>(std::popcount(link_last_word_[slot] ^ f.payload));
          link_last_word_[slot] = f.payload;
          if (core::CodedLink* link = coded_[slot].get()) {
            const std::uint64_t line = link->transmit(f.payload);
            link_coded_toggles_[slot] +=
                static_cast<std::uint64_t>(std::popcount(link_last_line_[slot] ^ line));
            link_last_line_[slot] = line;
            reg_line_[reg] = line;
          }
          if (probing_ && slot == probe_slot_) {
            probe_fresh = true;
            probe_word = f.payload;
          }
        }
        reg_payload_[reg] = f.payload;
        reg_dst_[reg] = f.dst;
        reg_injected_[reg] = f.injected;
        reg_valid_[reg] = 1;
      }
    }
    if (options_.track_vertical_stats) {
      // One latched line-word sample per vertical link per cycle — exactly
      // what the physical TSV bundle does, and what the optimizer prices.
      for (int out = static_cast<int>(Direction::ZPlus);
           out <= static_cast<int>(Direction::ZMinus); ++out) {
        const std::size_t slot = link_slot(r, static_cast<Direction>(out));
        const std::uint32_t v = vstat_of_slot_[slot];
        if (v == kNoStat) continue;
        vstats_[v].add(coded_attached_ ? link_last_line_[slot] : link_last_word_[slot]);
      }
    }
    if (probing_ && r == probe_router_) {
      std::uint64_t word;
      if (probe_fresh) {
        held_word_ = probe_word;
        ++probe_busy_;
        word = probe_word | (std::uint64_t{1} << flit_width_);
      } else {
        word = held_word_;  // data lines hold, valid line low
      }
      trace_.push_back(word);
      probe_toggles_ += static_cast<std::uint64_t>(std::popcount(probe_last_lines_ ^ word));
      probe_last_lines_ = word;
    }
  }
}

void NocSimulator::phase_transfer(std::size_t begin, std::size_t end, std::size_t cycle) {
  for (std::size_t r = begin; r < end; ++r) {
    Router& router = routers_[r];
    const std::size_t base = r * static_cast<std::size_t>(kPortCount);
    // All seven valid flags of this router's registers in one 7-byte load:
    // bytes 0..5 are the incoming directions, byte 6 the ejection register.
    // Exactly seven — byte 7 would belong to the next router, which another
    // rank may be clearing concurrently. Idle routers fall straight through
    // to injection.
    std::uint64_t valid8 = 0;
    std::memcpy(&valid8, reg_valid_.data() + base, 7);
    // Drain the registers pointing at this node into its input rings. A flit
    // moving in direction d was sent by the neighbour in direction d^1 (the
    // direction enum pairs +/- per axis).
    std::uint64_t incoming = valid8 & 0x0000FFFFFFFFFFFFull;
    while (incoming != 0) {
      const int d = std::countr_zero(incoming) >> 3;
      incoming &= incoming - 1;
      const std::size_t reg = base + static_cast<std::size_t>(d);
      const std::size_t sender = nbr_[r * 6 + static_cast<std::size_t>(d ^ 1)];
      const std::size_t slot = link_slot(sender, static_cast<Direction>(d));
      PackedFlit f;
      f.payload = coded_[slot] ? coded_[slot]->receive(reg_line_[reg]) : reg_payload_[reg];
      f.dst = reg_dst_[reg];
      f.injected = reg_injected_[reg];
      const Direction out = route_of(r, f.dst);
      if (router.accept(static_cast<Direction>(d), f, out)) {
        reg_valid_[reg] = 0;
        occ_[r] |= static_cast<std::uint8_t>(1u << d);
        ++q_[r];
      }
      // else: the bounded ring is full — the register stays occupied, which
      // is exactly the blocked-mask back-pressure the sender sees in phase A.
    }
    // Ejection: the flit this router granted to its own Local port.
    if (valid8 & 0x00FF000000000000ull) {
      const std::size_t eject = base + static_cast<std::size_t>(Direction::Local);
      reg_valid_[eject] = 0;
      ++delivered_[r];
      const std::uint64_t lat = static_cast<std::uint64_t>(cycle) - reg_injected_[eject] + 1;
      latency_[r] += lat;
      digest_[r] = digest_mix(digest_[r], reg_payload_[eject], lat);
    }
    // Injection. A pending flit (the bounded Local ring was full) blocks the
    // source: no new traffic is drawn until it gets in.
    if (!pending_valid_[r]) {
      if (auto f = traffic_.generate(r, cycle)) {
        pending_[r].payload = f->payload;
        pending_[r].dst = static_cast<std::uint32_t>(mesh_.index(f->dst));
        pending_[r].injected = static_cast<std::uint32_t>(cycle);
        pending_valid_[r] = 1;
        ++injected_[r];
      }
    }
    if (pending_valid_[r]) {
      const Direction out = route_of(r, pending_[r].dst);
      if (router.accept(Direction::Local, pending_[r], out)) {
        pending_valid_[r] = 0;
        occ_[r] |= static_cast<std::uint8_t>(1u << static_cast<int>(Direction::Local));
        ++q_[r];
      } else {
        ++stalls_[r];
      }
    }
    const std::size_t q = q_[r] + pending_valid_[r];
    if (q > max_queued_[r]) max_queued_[r] = static_cast<std::uint32_t>(q);
  }
}

void NocSimulator::sample_counters(int rank, std::size_t begin, std::size_t end,
                                   std::size_t cycle) const {
  if (!obs::trace_enabled()) return;
  std::uint64_t flits = 0, toggles = 0, coded = 0;
  for (std::size_t r = begin; r < end; ++r) {
    for (int out = static_cast<int>(Direction::ZPlus); out <= static_cast<int>(Direction::ZMinus);
         ++out) {
      const std::size_t slot = link_slot(r, static_cast<Direction>(out));
      if (vstat_of_slot_[slot] == kNoStat) continue;
      flits += link_flits_[slot];
      toggles += link_toggles_[slot];
      coded += link_coded_toggles_[slot];
    }
  }
  // Simulated-time axis: one µs per cycle.
  const auto ts = static_cast<std::int64_t>(cycle);
  const std::string slab = "noc.slab" + std::to_string(rank);
  obs::counter_at(slab + ".vlink_flits", static_cast<double>(flits), ts);
  obs::counter_at(slab + ".vlink_toggles", static_cast<double>(toggles), ts);
  if (coded_attached_) {
    obs::counter_at(slab + ".vlink_coded_toggles", static_cast<double>(coded), ts);
  }
}

SimStats NocSimulator::run(std::size_t cycles) {
  obs::Span span("noc.run");
  const std::size_t n = mesh_.node_count();
  int k = opt::resolve_threads(options_.threads);
  k = std::clamp<int>(k, 1, static_cast<int>(n));
  const std::uint64_t hops_before = total(link_flits_);
  const std::size_t injected_before = total(injected_);
  const std::size_t delivered_before = total(delivered_);
  const std::uint64_t probe_toggles_before = probe_toggles_;
  const std::uint64_t stalls_before = total(stalls_);
  const std::size_t sample = options_.counter_sample_cycles;

  if (k == 1) {
    for (std::size_t c = 0; c < cycles; ++c) {
      const std::size_t cyc = cycle_ + c;
      phase_arbitrate(0, n, cyc);
      phase_transfer(0, n, cyc);
      if (sample != 0 && (cyc + 1) % sample == 0) sample_counters(0, 0, n, cyc);
    }
  } else {
    opt::SpinBarrier barrier(k);
    std::atomic<bool> abort{false};
    std::mutex err_mu;
    std::exception_ptr error;
    opt::parallel_team(k, [&](int rank) {
      const std::size_t begin = n * static_cast<std::size_t>(rank) / static_cast<std::size_t>(k);
      const std::size_t end =
          n * (static_cast<std::size_t>(rank) + 1) / static_cast<std::size_t>(k);
      // On an exception the rank stops simulating but keeps arriving at the
      // barriers, so the team stays aligned and drains cleanly.
      const auto guarded = [&](auto&& fn) {
        if (abort.load(std::memory_order_relaxed)) return;
        try {
          fn();
        } catch (...) {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!error) error = std::current_exception();
          abort.store(true, std::memory_order_relaxed);
        }
      };
      for (std::size_t c = 0; c < cycles; ++c) {
        const std::size_t cyc = cycle_ + c;
        guarded([&] { phase_arbitrate(begin, end, cyc); });
        barrier.wait();
        guarded([&] {
          phase_transfer(begin, end, cyc);
          if (sample != 0 && (cyc + 1) % sample == 0) sample_counters(rank, begin, end, cyc);
        });
        barrier.wait();
      }
    });
    if (error) std::rethrow_exception(error);
  }
  cycle_ += cycles;

  // Reduce the per-router counters in index order: exact integers, so the
  // result is bit-identical no matter how the routers were partitioned.
  SimStats s;
  for (std::size_t r = 0; r < n; ++r) {
    s.injected += injected_[r];
    s.delivered += delivered_[r];
    s.latency_cycles += latency_[r];
    s.stalled_cycles += stalls_[r];
    s.max_queued = std::max<std::size_t>(s.max_queued, max_queued_[r]);
    s.ejection_digest = digest_mix(s.ejection_digest, digest_[r], delivered_[r]);
  }
  s.mean_latency = s.delivered > 0
                       ? static_cast<double>(s.latency_cycles) / static_cast<double>(s.delivered)
                       : 0.0;
  s.in_flight = in_flight();
  s.probe_busy_cycles = probe_busy_;
  s.probe_toggled_bits = probe_toggles_;
  s.link_flits = link_flits_;
  s.link_toggles = link_toggles_;
  s.link_coded_toggles = link_coded_toggles_;

  const std::uint64_t hops = total(link_flits_) - hops_before;
  if (obs::metrics_enabled()) {
    obs::metric_add("noc.run.count");
    obs::metric_add("noc.cycles_total", cycles);
    obs::metric_add("noc.flits.injected_total", s.injected - injected_before);
    obs::metric_add("noc.flits.delivered_total", s.delivered - delivered_before);
    obs::metric_add("noc.flit_hops_total", hops);
    obs::metric_add("noc.stalled_cycles_total", s.stalled_cycles - stalls_before);
    if (probing_) {
      obs::metric_add("noc.probe.toggled_bits_total", probe_toggles_ - probe_toggles_before);
    }
    obs::metric_set("noc.mean_latency", s.mean_latency);
    obs::metric_set("noc.max_queued", static_cast<double>(s.max_queued));
    obs::metric_set("noc.threads", static_cast<double>(k));
  }
  if (span.traced()) {
    span.set_args("\"cycles\":" + std::to_string(cycles) + ",\"threads\":" + std::to_string(k) +
                  ",\"injected\":" + std::to_string(s.injected - injected_before) +
                  ",\"delivered\":" + std::to_string(s.delivered - delivered_before) +
                  ",\"flit_hops\":" + std::to_string(hops));
  }
  obs::profile_work("cycles", cycles);
  obs::profile_work("router_cycles", static_cast<std::uint64_t>(cycles) * n);
  obs::profile_work("flit_hops", hops);
  return s;
}

std::size_t NocSimulator::in_flight() const {
  std::size_t count = 0;
  const std::size_t slots = routers_.size() * static_cast<std::size_t>(kPortCount);
  for (const auto& router : routers_) count += router.queued();
  for (std::size_t i = 0; i < slots; ++i) count += reg_valid_[i];
  for (std::uint8_t v : pending_valid_) count += v;
  return count;
}

std::vector<stats::SwitchingStats> NocSimulator::vertical_link_stats() const {
  if (!options_.track_vertical_stats) {
    throw std::logic_error(
        "NocSimulator::vertical_link_stats: SimOptions.track_vertical_stats is off");
  }
  std::vector<stats::SwitchingStats> out;
  out.reserve(vstats_.size());
  for (const auto& acc : vstats_) out.push_back(acc.finish());
  return out;
}

}  // namespace tsvcod::noc
