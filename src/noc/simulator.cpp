#include "noc/simulator.hpp"

#include <stdexcept>

namespace tsvcod::noc {

NocSimulator::NocSimulator(const Mesh3D& mesh, const TrafficConfig& traffic)
    : mesh_(mesh),
      traffic_config_(traffic),
      traffic_(mesh, traffic),
      flit_width_(traffic.flit_width) {
  routers_.reserve(mesh.node_count());
  for (std::size_t i = 0; i < mesh.node_count(); ++i) routers_.emplace_back(mesh.node(i));
}

void NocSimulator::probe_link(LinkId link) {
  if (!mesh_.neighbor(link.from, link.out)) {
    throw std::invalid_argument("NocSimulator: probed link leaves the mesh");
  }
  probing_ = true;
  probe_ = link;
  trace_.clear();
  held_word_ = 0;
}

SimStats NocSimulator::run(std::size_t cycles) {
  std::array<std::optional<Flit>, kPortCount> granted;
  for (std::size_t c = 0; c < cycles; ++c, ++cycle_) {
    // Injection.
    for (auto& r : routers_) {
      if (auto flit = traffic_.generate(r.id(), cycle_)) {
        r.accept(Direction::Local, std::move(*flit));
        ++injected_;
      }
    }
    // Arbitration + transfer. Grants are computed per router first, then
    // applied, so a flit cannot hop through two routers in one cycle.
    std::vector<std::pair<std::size_t, std::array<std::optional<Flit>, kPortCount>>> moves;
    moves.reserve(routers_.size());
    for (std::size_t i = 0; i < routers_.size(); ++i) {
      routers_[i].arbitrate(mesh_, granted);
      moves.emplace_back(i, granted);
    }
    bool probe_saw_flit = false;
    std::uint64_t probe_word = 0;
    for (auto& [i, outs] : moves) {
      const NodeId from = mesh_.node(i);
      for (int port = 0; port < kPortCount; ++port) {
        auto& flit = outs[static_cast<std::size_t>(port)];
        if (!flit) continue;
        const auto dir = static_cast<Direction>(port);
        if (dir == Direction::Local) {
          ++delivered_;
          latency_sum_ += static_cast<double>(cycle_ - flit->injected_at + 1);
          continue;
        }
        if (probing_ && probe_.from == from && probe_.out == dir) {
          probe_saw_flit = true;
          probe_word = flit->payload & streams::width_mask(flit_width_);
        }
        const auto to = mesh_.neighbor(from, dir);
        // arbitrate() only routes toward existing neighbours (XYZ routing
        // never points off-mesh), so `to` is always valid here.
        routers_[mesh_.index(*to)].accept(dir, std::move(*flit));
      }
    }
    if (probing_) {
      if (probe_saw_flit) {
        held_word_ = probe_word;
        ++probe_busy_;
        trace_.push_back(probe_word | (std::uint64_t{1} << flit_width_));
      } else {
        trace_.push_back(held_word_);  // data lines hold, valid line low
      }
    }
    for (const auto& r : routers_) max_queued_ = std::max(max_queued_, r.queued());
  }

  SimStats s;
  s.injected = injected_;
  s.delivered = delivered_;
  s.mean_latency = delivered_ > 0 ? latency_sum_ / static_cast<double>(delivered_) : 0.0;
  s.max_queued = max_queued_;
  s.probe_busy_cycles = probe_busy_;
  return s;
}

}  // namespace tsvcod::noc
