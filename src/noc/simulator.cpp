#include "noc/simulator.hpp"

#include <bit>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"
#include "obs/profile.hpp"

namespace tsvcod::noc {

NocSimulator::NocSimulator(const Mesh3D& mesh, const TrafficConfig& traffic)
    : mesh_(mesh),
      traffic_config_(traffic),
      traffic_(mesh, traffic),
      flit_width_(traffic.flit_width) {
  routers_.reserve(mesh.node_count());
  for (std::size_t i = 0; i < mesh.node_count(); ++i) routers_.emplace_back(mesh.node(i));
  const std::size_t links = mesh.node_count() * static_cast<std::size_t>(kPortCount);
  link_flits_.assign(links, 0);
  link_toggles_.assign(links, 0);
  link_last_word_.assign(links, 0);
}

void NocSimulator::probe_link(LinkId link) {
  if (!mesh_.neighbor(link.from, link.out)) {
    throw std::invalid_argument("NocSimulator: probed link leaves the mesh");
  }
  probing_ = true;
  probe_ = link;
  trace_.clear();
  held_word_ = 0;
  probe_toggles_ = 0;
  probe_last_lines_ = 0;
}

SimStats NocSimulator::run(std::size_t cycles) {
  obs::Span span("noc.run");
  const std::size_t injected_before = injected_;
  const std::size_t delivered_before = delivered_;
  const std::uint64_t probe_toggles_before = probe_toggles_;
  std::uint64_t hops = 0;
  std::array<std::optional<Flit>, kPortCount> granted;
  for (std::size_t c = 0; c < cycles; ++c, ++cycle_) {
    // Injection.
    for (auto& r : routers_) {
      if (auto flit = traffic_.generate(r.id(), cycle_)) {
        r.accept(Direction::Local, std::move(*flit));
        ++injected_;
      }
    }
    // Arbitration + transfer. Grants are computed per router first, then
    // applied, so a flit cannot hop through two routers in one cycle.
    std::vector<std::pair<std::size_t, std::array<std::optional<Flit>, kPortCount>>> moves;
    moves.reserve(routers_.size());
    for (std::size_t i = 0; i < routers_.size(); ++i) {
      routers_[i].arbitrate(mesh_, granted);
      moves.emplace_back(i, granted);
    }
    bool probe_saw_flit = false;
    std::uint64_t probe_word = 0;
    for (auto& [i, outs] : moves) {
      const NodeId from = mesh_.node(i);
      for (int port = 0; port < kPortCount; ++port) {
        auto& flit = outs[static_cast<std::size_t>(port)];
        if (!flit) continue;
        const auto dir = static_cast<Direction>(port);
        if (dir == Direction::Local) {
          ++delivered_;
          latency_sum_ += static_cast<double>(cycle_ - flit->injected_at + 1);
          continue;
        }
        if (probing_ && probe_.from == from && probe_.out == dir) {
          probe_saw_flit = true;
          probe_word = flit->payload & streams::width_mask(flit_width_);
        }
        const std::size_t link = i * static_cast<std::size_t>(kPortCount) +
                                 static_cast<std::size_t>(port);
        const std::uint64_t word = flit->payload & streams::width_mask(flit_width_);
        ++link_flits_[link];
        link_toggles_[link] += std::popcount(link_last_word_[link] ^ word);
        link_last_word_[link] = word;
        ++hops;
        const auto to = mesh_.neighbor(from, dir);
        // arbitrate() only routes toward existing neighbours (XYZ routing
        // never points off-mesh), so `to` is always valid here.
        routers_[mesh_.index(*to)].accept(dir, std::move(*flit));
      }
    }
    if (probing_) {
      if (probe_saw_flit) {
        held_word_ = probe_word;
        ++probe_busy_;
        trace_.push_back(probe_word | (std::uint64_t{1} << flit_width_));
      } else {
        trace_.push_back(held_word_);  // data lines hold, valid line low
      }
      probe_toggles_ += std::popcount(probe_last_lines_ ^ trace_.back());
      probe_last_lines_ = trace_.back();
    }
    for (const auto& r : routers_) max_queued_ = std::max(max_queued_, r.queued());
  }

  SimStats s;
  s.injected = injected_;
  s.delivered = delivered_;
  s.mean_latency = delivered_ > 0 ? latency_sum_ / static_cast<double>(delivered_) : 0.0;
  s.max_queued = max_queued_;
  s.probe_busy_cycles = probe_busy_;
  s.link_flits = link_flits_;
  s.link_toggles = link_toggles_;
  s.probe_toggled_bits = probe_toggles_;

  // The simulator is single-threaded, so these are deterministic by
  // construction (run-sequence order).
  if (obs::metrics_enabled()) {
    obs::metric_add("noc.run.count");
    obs::metric_add("noc.cycles_total", cycles);
    obs::metric_add("noc.flits.injected_total", injected_ - injected_before);
    obs::metric_add("noc.flits.delivered_total", delivered_ - delivered_before);
    obs::metric_add("noc.flit_hops_total", hops);
    if (probing_) {
      obs::metric_add("noc.probe.toggled_bits_total", probe_toggles_ - probe_toggles_before);
    }
    obs::metric_set("noc.mean_latency", s.mean_latency);
    obs::metric_set("noc.max_queued", static_cast<double>(max_queued_));
  }
  if (span.traced()) {
    span.set_args("\"cycles\":" + std::to_string(cycles) +
                  ",\"injected\":" + std::to_string(injected_ - injected_before) +
                  ",\"delivered\":" + std::to_string(delivered_ - delivered_before) +
                  ",\"flit_hops\":" + std::to_string(hops));
  }
  obs::profile_work("cycles", cycles);
  obs::profile_work("flit_hops", hops);
  return s;
}

}  // namespace tsvcod::noc
