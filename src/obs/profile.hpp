#pragma once
// Span-tree profiler: aggregates the `obs::Span` stream into a hierarchical
// profile instead of (or in addition to) emitting per-event trace records.
// Each distinct span *path* (stack of span names) owns one tree node holding
// a call count, accumulated wall time, optional hardware-counter totals
// (obs/perf_counters.hpp) and named work counters attached via
// `profile_work`.
//
// Determinism contract: the tree shape, per-node call counts and work
// counters depend only on the logical call structure — `opt::parallel_for`
// propagates the submitting span as the logical parent onto workers
// (`ProfileTaskScope` in obs.hpp), so the same run produces a bit-identical
// *deterministic* projection (`ProfileFields::deterministic`) at every
// thread count. Timing fields and hardware counters are measurement noise by
// nature and live only in the `full` projection; tests assert on the
// deterministic one.
//
// Exports: `profile_to_json` (schema `tsvcod.profile.v1`, children and work
// maps sorted by name) and `profile_to_collapsed` (collapsed-stack /
// "folded" text — `a;b;c <self_ns>` — loadable by flamegraph.pl / speedscope
// / inferno).

#include <cstdint>
#include <string>

#include "obs/obs.hpp"

namespace tsvcod::obs {

enum class ProfileFields {
  /// name / count / work counters / children only — bit-identical across
  /// thread counts for the same logical run.
  deterministic,
  /// Adds total_ns / self_ns and per-node hardware counters plus the
  /// process-wide perf-availability block (flagged fallback, never an error).
  full,
};

/// Add to a named work counter on the calling thread's innermost open
/// profiled span (commutative integer add → thread-count invariant). No-op
/// when profiling is disabled or no profiled span is open.
void profile_work(const char* name, std::uint64_t amount);

/// Render the span tree. Call from a quiescent point (no parallel section in
/// flight) — same contract as `trace_to_json`.
std::string profile_to_json(ProfileFields fields);

/// Collapsed-stack text: one `path;to;span <self_ns>` line per node, paths in
/// depth-first name-sorted order.
std::string profile_to_collapsed();

/// Drop the whole tree (the next span re-grows it). Quiescent points only.
void reset_profile();

}  // namespace tsvcod::obs
