#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace tsvcod::obs::json {

const Value* Value::find(std::string_view key) const {
  if (type != Type::object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::string;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.type = Value::Type::boolean;
    v.boolean = b;
    return v;
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      for (const auto& [existing, ignored] : v.object) {
        if (existing == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // for bench/metric documents; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      fail("invalid value");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit expected after decimal point");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit expected in exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    Value v;
    v.type = Value::Type::number;
    v.number = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(v.number)) fail("number out of range");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace tsvcod::obs::json
