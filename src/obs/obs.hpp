#pragma once
// Structured observability layer: Chrome-trace-event tracing, a metrics
// registry and a span-tree profiler (obs/profile.hpp), all runtime-toggled
// and compiled so that the *disabled* path is a relaxed atomic load and a
// branch — cheap enough to leave in every hot loop (bench/obs_overhead
// measures it).
//
// Tracing (`Span`, `instant`, `counter`) appends to per-thread buffers: a
// worker only ever touches its own buffer (one uncontended per-buffer mutex,
// never shared between workers), so tracing composes with `opt::parallel_for`
// without serializing the pool. `trace_to_json()` merges the buffers into a
// `chrome://tracing` / Perfetto-loadable JSON document; call it from a
// quiescent point (no parallel section in flight).
//
// Metrics are named counters (uint64), gauges (double) and fixed-bucket
// histograms (uint64 bucket counts). Determinism contract: counter adds and
// histogram observations are integer and commutative, so totals are
// bit-identical at every thread count no matter which thread records them;
// gauges are last-write-wins and must only be written from logical-order
// (serial) code — the instrumented subsystems record them from post-reduction
// loops. `metrics_to_json()` emits entries sorted by name, so the whole
// document is bit-identical across thread counts.
//
// Enablement: `TSVCOD_TRACE=<file>` / `TSVCOD_METRICS=<file>` environment
// variables (picked up by `init_from_env`, which the CLI calls) or the CLI's
// `--trace-out` / `--metrics-out` flags; programs can also toggle directly
// via `enable_tracing` / `enable_metrics`.

#include <atomic>
#include <cstdint>
#include <span>
#include <string>

namespace tsvcod::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
extern std::atomic<bool> g_metrics_enabled;
extern std::atomic<bool> g_profile_enabled;

struct ProfileNode;  // span-tree node (obs/profile.cpp)

/// Per-span profiler state carried inside `Span`: the tree node the span
/// accumulates into, the steady-clock start, and the hardware-counter
/// snapshot at begin (zeros when perf counters are unavailable).
struct ProfileHandle {
  ProfileNode* node = nullptr;
  std::int64_t t0_ns = 0;
  std::uint64_t perf0[4] = {0, 0, 0, 0};
  bool perf_ok = false;
};
void profile_span_begin(const char* name, ProfileHandle& h);
void profile_span_end(ProfileHandle& h);
ProfileNode* profile_adopt(ProfileNode* parent);  // returns the previous current
void profile_restore(ProfileNode* previous);
}  // namespace detail

/// One relaxed load: the whole cost of a disabled span/metric call site.
inline bool trace_enabled() { return detail::g_trace_enabled.load(std::memory_order_relaxed); }
inline bool metrics_enabled() { return detail::g_metrics_enabled.load(std::memory_order_relaxed); }
inline bool profiling_enabled() { return detail::g_profile_enabled.load(std::memory_order_relaxed); }

void enable_tracing(bool on = true);
void enable_metrics(bool on = true);
void enable_profiling(bool on = true);  // defined in obs/profile.cpp

/// Read TSVCOD_TRACE / TSVCOD_METRICS / TSVCOD_PROFILE / TSVCOD_SNAPSHOT
/// (+ TSVCOD_SNAPSHOT_INTERVAL): a non-empty value enables the layer and
/// remembers the output path for `flush_outputs` (snapshots start their
/// background exporter immediately — see obs/snapshot.hpp).
void init_from_env();

/// Output paths ("" = none). Setting a non-empty path enables the layer.
void set_trace_path(std::string path);
void set_metrics_path(std::string path);
void set_profile_path(std::string path);
std::string trace_path();
std::string metrics_path();
std::string profile_path();

/// Write the trace / metrics / profile JSON to their configured paths (no-op
/// for the unset ones; the profile additionally gets a `<path>.folded`
/// collapsed-stack file). Returns true if anything was written. Every
/// written JSON document carries a top-level `"clean_exit"` marker: pass
/// false from error paths (the CLI's RAII flusher does) so partial outputs
/// are still usable but flagged.
bool flush_outputs(bool clean_exit = true);

// ---------------------------------------------------------------------------
// Cross-thread logical parenting for the span-tree profiler
// ---------------------------------------------------------------------------

/// Opaque handle to the calling thread's current profile node (nullptr when
/// profiling is disabled or no span is open). Capture it where a task is
/// *submitted* and wrap the task body in a `ProfileTaskScope` so spans opened
/// on a worker aggregate under the submitting span — the span tree then
/// depends only on the logical call structure, never on which thread ran an
/// item (`opt::parallel_for` does this automatically).
using ProfileToken = detail::ProfileNode*;
ProfileToken profile_current();

class ProfileTaskScope {
 public:
  explicit ProfileTaskScope(ProfileToken parent) {
    if (parent) {
      previous_ = detail::profile_adopt(parent);
      adopted_ = true;
    }
  }
  ~ProfileTaskScope() {
    if (adopted_) detail::profile_restore(previous_);
  }
  ProfileTaskScope(const ProfileTaskScope&) = delete;
  ProfileTaskScope& operator=(const ProfileTaskScope&) = delete;

 private:
  detail::ProfileNode* previous_ = nullptr;
  bool adopted_ = false;
};

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// Render a double as a JSON number (nonfinite values become null).
std::string json_number(double v);

/// RAII scoped span: records a Chrome "X" (complete) event on destruction
/// when tracing is enabled, and aggregates into the span-tree profiler when
/// profiling is enabled. A span constructed while both are disabled is fully
/// inert.
class Span {
 public:
  explicit Span(const char* name) {
    if (trace_enabled() || profiling_enabled()) begin(name);
  }
  ~Span() {
    if (active_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach arguments (the *body* of a JSON object, e.g. "\"n\":3") shown in
  /// the trace viewer. No-op unless a trace event will be emitted.
  void set_args(std::string args_body) {
    if (traced_) args_ = std::move(args_body);
  }
  /// Live in any layer (tracing or profiling).
  bool active() const { return active_; }
  /// A trace event will be emitted at destruction — guard trace-only work
  /// (arg strings, counter tracks) on this, not on `active()`, so profiled
  /// runs don't pay for tracing they never asked for.
  bool traced() const { return traced_; }

 private:
  void begin(const char* name);
  void end();

  std::string name_;
  std::string args_;
  std::int64_t start_us_ = 0;
  detail::ProfileHandle prof_;
  bool active_ = false;
  bool traced_ = false;
};

/// Thread-scoped instant event ("i").
void instant(const char* name, std::string args_body = {});

/// Counter-track sample ("C"): one named value-over-time track per name.
void counter(const char* name, double value);
void counter(const std::string& name, double value);

/// Counter-track sample with an explicit timestamp (µs). Simulators use this
/// to plot counters on a *simulated-time* axis (e.g. one µs per NoC cycle)
/// instead of wall-clock time.
void counter_at(const std::string& name, double value, std::int64_t ts_us);

/// Merge every thread's buffer into one Chrome trace JSON document. Must be
/// called from a quiescent point; events of spans still open are not
/// included.
std::string trace_to_json();

/// Drop all buffered events and restart the trace clock.
void reset_trace();

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Monotonic counter; integer adds are commutative, hence thread-count
/// invariant.
void metric_add(const char* name, std::uint64_t delta = 1);
void metric_add(const std::string& name, std::uint64_t delta);

/// Last-write-wins gauge. Write only from logical-order (serial) code when
/// determinism across thread counts is required.
void metric_set(const char* name, double value);
void metric_set(const std::string& name, double value);

/// Histogram observation. `bounds` are the fixed upper bucket edges (sorted
/// ascending; an implicit +inf bucket follows) and are latched on the first
/// observation of `name`; later calls reuse the registered edges.
void metric_observe(const char* name, double value, std::span<const double> bounds);

/// Deterministic serialization: {"counters":{...},"gauges":{...},
/// "histograms":{...}} with every map sorted by name.
std::string metrics_to_json();

/// Remove every registered metric (the next recording re-registers).
void reset_metrics();

}  // namespace tsvcod::obs
