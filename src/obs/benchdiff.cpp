#include "obs/benchdiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string_view>

#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace tsvcod::obs::benchdiff {

namespace {

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

/// google-benchmark per-entry bookkeeping that is not a metric.
bool is_gbench_bookkeeping(std::string_view key) {
  static constexpr std::string_view kSkip[] = {
      "name",           "run_name",         "run_type",
      "time_unit",      "repetitions",      "repetition_index",
      "family_index",   "per_family_instance_index", "threads",
      "iterations",     "aggregate_name",   "aggregate_unit",
  };
  for (const auto s : kSkip) {
    if (key == s) return true;
  }
  return false;
}

void add_scalar(std::vector<FlatMetric>& out, std::string key, const json::Value& v) {
  if (v.is_number()) {
    out.push_back({std::move(key), v.number, false});
  } else if (v.is_boolean()) {
    out.push_back({std::move(key), v.boolean ? 1.0 : 0.0, true});
  }
}

std::string row_id(const json::Value& row, std::size_t index) {
  if (const json::Value* width = row.find("width"); width != nullptr && width->is_number()) {
    return "w" + std::to_string(static_cast<long long>(width->number));
  }
  if (const json::Value* name = row.find("name"); name != nullptr && name->is_string()) {
    return name->string;
  }
  return "r" + std::to_string(index);
}

void flatten_results_rows(const json::Value& rows, std::vector<FlatMetric>& out) {
  for (std::size_t i = 0; i < rows.array.size(); ++i) {
    const json::Value& row = rows.array[i];
    if (!row.is_object()) continue;
    const std::string id = row_id(row, i);
    for (const auto& [key, value] : row.object) {
      if (key == "width" || key == "name") continue;
      add_scalar(out, id + "." + key, value);
    }
  }
}

void flatten_gbench_rows(const json::Value& rows, std::vector<FlatMetric>& out) {
  for (std::size_t i = 0; i < rows.array.size(); ++i) {
    const json::Value& row = rows.array[i];
    if (!row.is_object()) continue;
    std::string id = "r" + std::to_string(i);
    if (const json::Value* name = row.find("name"); name != nullptr && name->is_string()) {
      id = name->string;
    }
    for (const auto& [key, value] : row.object) {
      if (is_gbench_bookkeeping(key)) continue;
      add_scalar(out, id + "." + key, value);
    }
  }
}

void flatten_generic(const json::Value& v, const std::string& prefix,
                     std::vector<FlatMetric>& out) {
  if (v.is_object()) {
    for (const auto& [key, child] : v.object) {
      flatten_generic(child, prefix.empty() ? key : prefix + "." + key, out);
    }
  } else if (v.is_array()) {
    for (std::size_t i = 0; i < v.array.size(); ++i) {
      flatten_generic(v.array[i], prefix + "[" + std::to_string(i) + "]", out);
    }
  } else {
    add_scalar(out, prefix, v);
  }
}

std::string format_value(double v, bool is_bool) {
  if (is_bool) return v != 0.0 ? "true" : "false";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::higher_better: return "higher_better";
    case Direction::lower_better: return "lower_better";
    case Direction::two_sided: return "two_sided";
    case Direction::boolean: return "boolean";
  }
  return "two_sided";
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
}

}  // namespace

Direction direction_of(const std::string& key) {
  const std::size_t dot = key.rfind('.');
  const std::string_view metric =
      dot == std::string::npos ? std::string_view(key) : std::string_view(key).substr(dot + 1);
  if (contains(metric, "per_sec") || contains(metric, "per_second") ||
      contains(metric, "speedup") || contains(metric, "throughput")) {
    return Direction::higher_better;
  }
  if (contains(metric, "time") || contains(metric, "latency") || contains(metric, "misses") ||
      contains(metric, "iterations") || contains(metric, "_ns") || contains(metric, "_ms")) {
    return Direction::lower_better;
  }
  return Direction::two_sided;
}

std::vector<FlatMetric> flatten_bench_json(const std::string& text) {
  const json::Value doc = json::parse(text);
  std::vector<FlatMetric> out;
  bool structured = false;
  if (doc.is_object()) {
    if (const json::Value* rows = doc.find("results"); rows != nullptr && rows->is_array()) {
      flatten_results_rows(*rows, out);
      structured = true;
    }
    if (const json::Value* rows = doc.find("benchmarks"); rows != nullptr && rows->is_array()) {
      flatten_gbench_rows(*rows, out);
      structured = true;
    }
  }
  // Top-level scalars next to "results" are run parameters (words, reps,
  // threads, …), not metrics — only the generic fallback keeps leaves.
  if (!structured) flatten_generic(doc, "", out);
  std::sort(out.begin(), out.end(),
            [](const FlatMetric& a, const FlatMetric& b) { return a.key < b.key; });
  return out;
}

DiffReport diff_bench_json(const std::string& base_text, const std::string& cand_text,
                           const DiffOptions& options) {
  const std::vector<FlatMetric> base = flatten_bench_json(base_text);
  const std::vector<FlatMetric> cand = flatten_bench_json(cand_text);
  std::map<std::string, const FlatMetric*> cand_by_key;
  for (const auto& m : cand) cand_by_key.emplace(m.key, &m);

  DiffReport report;
  std::map<std::string, bool> matched;
  for (const auto& b : base) {
    const auto it = cand_by_key.find(b.key);
    if (it == cand_by_key.end()) {
      report.only_base.push_back(b.key);
      continue;
    }
    matched[b.key] = true;
    const FlatMetric& c = *it->second;

    MetricDiff d;
    d.key = b.key;
    d.base = b.value;
    d.cand = c.value;
    d.direction = (b.is_bool || c.is_bool) ? Direction::boolean : direction_of(b.key);
    d.tolerance_pct = options.tolerance_pct;
    for (const auto& [pattern, tol] : options.per_metric) {
      if (contains(d.key, pattern)) {
        d.tolerance_pct = tol;
        break;
      }
    }
    if (b.value != 0.0) {
      d.delta_pct = (c.value - b.value) / std::fabs(b.value) * 100.0;
    } else {
      d.delta_pct = c.value == 0.0 ? 0.0 : (c.value > 0.0 ? 1e9 : -1e9);
    }
    switch (d.direction) {
      case Direction::higher_better: d.regression = d.delta_pct < -d.tolerance_pct; break;
      case Direction::lower_better: d.regression = d.delta_pct > d.tolerance_pct; break;
      case Direction::two_sided: d.regression = std::fabs(d.delta_pct) > d.tolerance_pct; break;
      case Direction::boolean: d.regression = b.value != 0.0 && c.value == 0.0; break;
    }
    report.regression = report.regression || d.regression;
    report.metrics.push_back(std::move(d));
  }
  for (const auto& c : cand) {
    if (!matched.count(c.key)) report.only_cand.push_back(c.key);
  }
  return report;
}

std::string report_to_json(const DiffReport& report) {
  std::string out = "{\"schema\":\"tsvcod.benchdiff.v1\",\"regression\":";
  out += report.regression ? "true" : "false";
  out += ",\"metrics\":[";
  bool first = true;
  for (const auto& d : report.metrics) {
    if (!first) out += ',';
    first = false;
    out += "{\"key\":\"";
    append_escaped(out, d.key);
    out += "\",\"base\":" + json_number(d.base);
    out += ",\"cand\":" + json_number(d.cand);
    out += ",\"delta_pct\":" + json_number(d.delta_pct);
    out += ",\"direction\":\"";
    out += direction_name(d.direction);
    out += "\",\"tolerance_pct\":" + json_number(d.tolerance_pct);
    out += ",\"regression\":";
    out += d.regression ? "true" : "false";
    out += '}';
  }
  out += "],\"only_base\":[";
  first = true;
  for (const auto& k : report.only_base) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, k);
    out += '"';
  }
  out += "],\"only_cand\":[";
  first = true;
  for (const auto& k : report.only_cand) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, k);
    out += '"';
  }
  out += "]}";
  return out;
}

std::string report_to_table(const DiffReport& report) {
  std::size_t key_w = 6;
  for (const auto& d : report.metrics) key_w = std::max(key_w, d.key.size());
  std::string out;
  char line[512];
  std::snprintf(line, sizeof line, "%-*s %14s %14s %9s %14s  %s\n", static_cast<int>(key_w),
                "metric", "base", "candidate", "delta%", "direction", "verdict");
  out += line;
  for (const auto& d : report.metrics) {
    const bool is_bool = d.direction == Direction::boolean;
    std::snprintf(line, sizeof line, "%-*s %14s %14s %+8.2f%% %14s  %s\n",
                  static_cast<int>(key_w), d.key.c_str(), format_value(d.base, is_bool).c_str(),
                  format_value(d.cand, is_bool).c_str(), d.delta_pct, direction_name(d.direction),
                  d.regression ? "REGRESSION" : "ok");
    out += line;
  }
  for (const auto& k : report.only_base) out += "only in base:      " + k + "\n";
  for (const auto& k : report.only_cand) out += "only in candidate: " + k + "\n";
  out += report.regression ? "RESULT: REGRESSION\n" : "RESULT: ok\n";
  return out;
}

}  // namespace tsvcod::obs::benchdiff
