#include "obs/obs.hpp"

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace tsvcod::obs {

namespace {

struct Counter {
  std::atomic<std::uint64_t> value{0};
};

struct Gauge {
  std::atomic<double> value{0.0};
};

/// Fixed-point (value * 2^32) encoding used for the histogram sum: integer
/// adds are commutative, so the total — like everything else in the registry
/// — is bit-identical at any thread count, and exact for integer-valued
/// observations. Values are clamped to ±2^93 pre-scaling so ~2^34
/// observations cannot overflow the 128-bit accumulator.
__int128 to_sum_fixed(double v) {
  constexpr long double kScale = 4294967296.0L;  // 2^32
  constexpr long double kLimit = 9.903520314283042e27L;  // 2^93
  long double s = static_cast<long double>(v) * kScale;
  if (s > kLimit) s = kLimit;
  if (s < -kLimit) s = -kLimit;
  return static_cast<__int128>(s >= 0 ? s + 0.5L : s - 0.5L);  // round half away
}

double from_sum_fixed(__int128 fp) {
  return static_cast<double>(static_cast<long double>(fp) / 4294967296.0L);
}

struct Histogram {
  std::vector<double> bounds;                           // upper edges, ascending
  std::vector<std::atomic<std::uint64_t>> bucket_counts;  // bounds.size() + 1 (last = +inf)
  std::atomic<std::uint64_t> count{0};

  // min/max/sum over *finite* observations; order-independent (min/max are
  // exact doubles, sum is commutative fixed-point), hence thread-count
  // invariant like the bucket counts.
  std::mutex stats_mu;
  bool has_finite = false;
  double min_value = 0.0;
  double max_value = 0.0;
  __int128 sum_fixed = 0;

  explicit Histogram(std::span<const double> edges)
      : bounds(edges.begin(), edges.end()), bucket_counts(bounds.size() + 1) {
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      if (bounds[i] <= bounds[i - 1]) {
        throw std::invalid_argument("obs: histogram bounds must be strictly ascending");
      }
    }
  }

  void observe(double v) {
    std::size_t b = 0;
    while (b < bounds.size() && v > bounds[b]) ++b;
    bucket_counts[b].fetch_add(1, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    if (std::isfinite(v)) {
      std::lock_guard<std::mutex> lk(stats_mu);
      if (!has_finite || v < min_value) min_value = v;
      if (!has_finite || v > max_value) max_value = v;
      has_finite = true;
      sum_fixed += to_sum_fixed(v);
    }
  }
};

/// Name -> metric maps. Lookups lock a mutex (the instrumented subsystems
/// record per solve / per chain / per run, never per inner-loop step); the
/// values themselves are atomics so concurrent recording stays cheap and
/// commutative.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable at any exit stage
  return *r;
}

Counter& counter_slot(const std::string& name) {
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto& slot = r.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge_slot(const std::string& name) {
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto& slot = r.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& histogram_slot(const std::string& name, std::span<const double> bounds) {
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto& slot = r.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

}  // namespace

void metric_add(const char* name, std::uint64_t delta) {
  if (!metrics_enabled()) return;
  counter_slot(name).value.fetch_add(delta, std::memory_order_relaxed);
}

void metric_add(const std::string& name, std::uint64_t delta) {
  if (!metrics_enabled()) return;
  counter_slot(name).value.fetch_add(delta, std::memory_order_relaxed);
}

void metric_set(const char* name, double value) {
  if (!metrics_enabled()) return;
  gauge_slot(name).value.store(value, std::memory_order_relaxed);
}

void metric_set(const std::string& name, double value) {
  if (!metrics_enabled()) return;
  gauge_slot(name).value.store(value, std::memory_order_relaxed);
}

void metric_observe(const char* name, double value, std::span<const double> bounds) {
  if (!metrics_enabled()) return;
  histogram_slot(name, bounds).observe(value);
}

std::string metrics_to_json() {
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : r.counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(c->value.load(std::memory_order_relaxed));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : r.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + json_number(g->value.load(std::memory_order_relaxed));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : r.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h->bounds.size(); ++i) {
      if (i) out += ',';
      out += json_number(h->bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h->bucket_counts.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(h->bucket_counts[i].load(std::memory_order_relaxed));
    }
    {
      std::lock_guard<std::mutex> stats_lk(h->stats_mu);
      out += "],\"min\":" + (h->has_finite ? json_number(h->min_value) : "null");
      out += ",\"max\":" + (h->has_finite ? json_number(h->max_value) : "null");
      out += ",\"sum\":" + (h->has_finite ? json_number(from_sum_fixed(h->sum_fixed)) : "null");
    }
    out += ",\"count\":" + std::to_string(h->count.load(std::memory_order_relaxed)) + "}";
  }
  out += "}}";
  return out;
}

void reset_metrics() {
  auto& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.counters.clear();
  r.gauges.clear();
  r.histograms.clear();
}

}  // namespace tsvcod::obs
