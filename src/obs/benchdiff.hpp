#pragma once
// Bench regression diffing: flatten two BENCH_*.json documents into
// `row.metric` scalars, compare them with per-metric direction heuristics
// and tolerance gates, and render the verdict as a human table and a machine
// JSON document. `tools/tsvcod_benchdiff` is the CLI wrapper;
// `tools/ci_bench_gate.sh` wires it against the committed baselines.
//
// Two input shapes are understood:
//  - the repo's bench shape `{"bench":…, <scalar params>, "results":[rows]}`
//    (row id from the row's "width" → `w16.scalar_words_per_sec`; top-level
//    scalars are run parameters, not metrics, and are skipped), and
//  - google-benchmark `--benchmark_out` JSON (`{"context":…,"benchmarks":[…]}`,
//    row id from "name", bookkeeping fields skipped, counters kept).
// Anything else falls back to flattening every numeric/bool leaf by dotted
// path, so hand-rolled BENCH files keep working.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace tsvcod::obs::benchdiff {

enum class Direction {
  higher_better,  // name contains per_sec / per_second / speedup / throughput
  lower_better,   // name contains time / latency / misses / iterations / _ns / _ms
  two_sided,      // anything else numeric: |delta| gated
  boolean,        // regression only on true -> false
};

/// Heuristic applied to the metric part of a flattened key (after the last
/// '.'). Exposed for tests.
Direction direction_of(const std::string& key);

struct MetricDiff {
  std::string key;
  double base = 0.0;
  double cand = 0.0;
  double delta_pct = 0.0;  // signed; ±1e9 stands in for "from zero"
  Direction direction = Direction::two_sided;
  double tolerance_pct = 0.0;
  bool regression = false;
};

struct DiffOptions {
  double tolerance_pct = 10.0;
  /// (pattern, tolerance) overrides; the first pattern contained in a
  /// metric's key wins.
  std::vector<std::pair<std::string, double>> per_metric;
};

struct DiffReport {
  std::vector<MetricDiff> metrics;     // key-sorted
  std::vector<std::string> only_base;  // present in base only (reported, not gated)
  std::vector<std::string> only_cand;
  bool regression = false;
};

/// Flatten one document to key-sorted (key, value, is_bool) triples. Throws
/// std::runtime_error (from the JSON parser) on malformed input.
struct FlatMetric {
  std::string key;
  double value = 0.0;
  bool is_bool = false;
};
std::vector<FlatMetric> flatten_bench_json(const std::string& text);

DiffReport diff_bench_json(const std::string& base_text, const std::string& cand_text,
                           const DiffOptions& options);

std::string report_to_json(const DiffReport& report);
std::string report_to_table(const DiffReport& report);

}  // namespace tsvcod::obs::benchdiff
