#include "obs/perf_counters.hpp"

#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace tsvcod::obs {

const char* perf_counter_name(int index) {
  switch (index) {
    case kPerfCycles: return "cycles";
    case kPerfInstructions: return "instructions";
    case kPerfLlcMisses: return "llc_misses";
    case kPerfBranchMisses: return "branch_misses";
    default: return "unknown";
  }
}

#if defined(__linux__)

namespace {

long sys_perf_event_open(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                         unsigned long flags) {
  return syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags);
}

perf_event_attr make_attr(std::uint32_t type, std::uint64_t config, bool leader) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  attr.disabled = leader ? 1 : 0;  // group enabled via one ioctl on the leader
  attr.exclude_kernel = 1;        // works without CAP_PERFMON at paranoid<=1
  attr.exclude_hv = 1;
  attr.inherit = 0;
  attr.read_format =
      PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

struct CounterSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr CounterSpec kSpecs[kPerfCounterCount] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};

/// One scheduled group per thread. Slots whose event the PMU rejects (e.g.
/// no LLC-miss event in a VM) just stay at fd -1 and read as 0.
struct ThreadGroup {
  int fd[kPerfCounterCount] = {-1, -1, -1, -1};
  int slot_of_value[kPerfCounterCount] = {-1, -1, -1, -1};  // value index -> counter slot
  int nr = 0;
  bool ok = false;

  ThreadGroup() {
    if (!perf_availability().available) return;
    for (int i = 0; i < kPerfCounterCount; ++i) {
      perf_event_attr attr = make_attr(kSpecs[i].type, kSpecs[i].config, fd[kPerfCycles] < 0);
      const int group = fd[kPerfCycles];
      const long r = sys_perf_event_open(&attr, 0, -1, group, 0);
      if (r < 0) {
        if (i == kPerfCycles) return;  // no leader, no group
        continue;
      }
      fd[i] = static_cast<int>(r);
      slot_of_value[nr++] = i;
    }
    ioctl(fd[kPerfCycles], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    ok = true;
  }

  ~ThreadGroup() {
    for (int i = 0; i < kPerfCounterCount; ++i) {
      if (fd[i] >= 0) close(fd[i]);
    }
  }
};

ThreadGroup& thread_group() {
  thread_local ThreadGroup group;
  return group;
}

}  // namespace

const PerfAvailability& perf_availability() {
  static const PerfAvailability* avail = [] {
    auto* a = new PerfAvailability();
    perf_event_attr attr = make_attr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, true);
    const long fd = sys_perf_event_open(&attr, 0, -1, -1, 0);
    if (fd >= 0) {
      close(static_cast<int>(fd));
      a->available = true;
      return a;
    }
    const int err = errno;
    a->available = false;
    a->reason = "perf_event_open(cycles) failed: ";
    a->reason += std::strerror(err);
    if (err == EACCES || err == EPERM) {
      a->reason += " (kernel.perf_event_paranoid too high or missing CAP_PERFMON"
                   " — common in containers)";
    } else if (err == ENOENT || err == ENODEV || err == EOPNOTSUPP) {
      a->reason += " (no PMU exposed — common in VMs)";
    }
    return a;
  }();
  return *avail;
}

namespace detail {

bool perf_read_counters(std::uint64_t out[kPerfCounterCount]) {
  ThreadGroup& group = thread_group();
  if (!group.ok) return false;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, values[nr].
  std::uint64_t buf[3 + kPerfCounterCount];
  const ssize_t want = static_cast<ssize_t>((3 + group.nr) * sizeof(std::uint64_t));
  if (read(group.fd[kPerfCycles], buf, sizeof buf) != want) return false;
  const std::uint64_t enabled = buf[1];
  const std::uint64_t running = buf[2];
  for (int i = 0; i < kPerfCounterCount; ++i) out[i] = 0;
  for (int v = 0; v < group.nr; ++v) {
    std::uint64_t value = buf[3 + v];
    if (running > 0 && running < enabled) {
      // Multiplex scaling; long double keeps 64-bit counts exact enough.
      value = static_cast<std::uint64_t>(static_cast<long double>(value) * enabled / running);
    }
    out[group.slot_of_value[v]] = value;
  }
  return true;
}

}  // namespace detail

#else  // !__linux__

const PerfAvailability& perf_availability() {
  static const PerfAvailability avail{false, "perf_event_open is Linux-only"};
  return avail;
}

namespace detail {
bool perf_read_counters(std::uint64_t[kPerfCounterCount]) { return false; }
}  // namespace detail

#endif

}  // namespace tsvcod::obs
