#include "obs/profile.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/perf_counters.hpp"

namespace tsvcod::obs {

namespace detail {

std::atomic<bool> g_profile_enabled{false};

/// One node per distinct span *path*. `count`, `total_ns` and the perf
/// totals are atomics so concurrent spans on the same path (e.g. parallel
/// chains adopted under one parent) accumulate without the tree lock; the
/// `children` / `work` maps mutate only under the global tree mutex.
struct ProfileNode {
  std::string name;
  ProfileNode* parent = nullptr;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> perf[kPerfCounterCount] = {};
  std::map<std::string, ProfileNode*, std::less<>> children;
  std::map<std::string, std::atomic<std::uint64_t>, std::less<>> work;
};

}  // namespace detail

namespace {

using detail::ProfileNode;

struct ProfileState {
  std::mutex mu;  // guards children/work map mutation and whole-tree walks
  ProfileNode root;
};

ProfileState& profile_state() {
  static ProfileState* state = new ProfileState();  // leaked: usable at any exit stage
  return *state;
}

// Innermost open profiled span on this thread; nullptr = root. Returns to
// nullptr whenever the thread is quiescent (Span and ProfileTaskScope are
// strictly nested RAII), which is what makes reset_profile safe.
thread_local ProfileNode* t_current = nullptr;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

std::uint64_t self_ns_of(const ProfileNode& node) {
  std::uint64_t children_total = 0;
  for (const auto& [name, child] : node.children) {
    children_total += child->total_ns.load(std::memory_order_relaxed);
  }
  const std::uint64_t total = node.total_ns.load(std::memory_order_relaxed);
  // Parallel children adopted under one logical parent overlap in wall time,
  // so their sum can exceed the parent: clamp instead of going negative.
  return total > children_total ? total - children_total : 0;
}

void node_to_json(const ProfileNode& node, ProfileFields fields, std::string& out) {
  out += "{\"name\":\"";
  append_escaped(out, node.name);
  out += "\",\"count\":" + std::to_string(node.count.load(std::memory_order_relaxed));
  if (fields == ProfileFields::full) {
    out += ",\"total_ns\":" + std::to_string(node.total_ns.load(std::memory_order_relaxed));
    out += ",\"self_ns\":" + std::to_string(self_ns_of(node));
    for (int i = 0; i < kPerfCounterCount; ++i) {
      out += ",\"";
      out += perf_counter_name(i);
      out += "\":" + std::to_string(node.perf[i].load(std::memory_order_relaxed));
    }
  }
  out += ",\"work\":{";
  bool first = true;
  for (const auto& [name, amount] : node.work) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":" + std::to_string(amount.load(std::memory_order_relaxed));
  }
  out += "},\"children\":[";
  first = true;
  for (const auto& [name, child] : node.children) {
    if (!first) out += ',';
    first = false;
    node_to_json(*child, fields, out);
  }
  out += "]}";
}

void node_to_collapsed(const ProfileNode& node, const std::string& prefix, std::string& out) {
  std::string path = prefix.empty() ? node.name : prefix + ";" + node.name;
  out += path;
  out += ' ';
  out += std::to_string(self_ns_of(node));
  out += '\n';
  for (const auto& [name, child] : node.children) node_to_collapsed(*child, path, out);
}

void delete_subtree(ProfileNode* node) {
  for (auto& [name, child] : node->children) {
    delete_subtree(child);
    delete child;
  }
  node->children.clear();
}

}  // namespace

void enable_profiling(bool on) {
  detail::g_profile_enabled.store(on, std::memory_order_relaxed);
}

ProfileToken profile_current() { return t_current; }

namespace detail {

void profile_span_begin(const char* name, ProfileHandle& h) {
  auto& st = profile_state();
  ProfileNode* parent = t_current != nullptr ? t_current : &st.root;
  ProfileNode* node = nullptr;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    auto it = parent->children.find(name);
    if (it != parent->children.end()) {
      node = it->second;
    } else {
      node = new ProfileNode();
      node->name = name;
      node->parent = parent;
      parent->children.emplace(name, node);
    }
  }
  node->count.fetch_add(1, std::memory_order_relaxed);
  h.node = node;
  h.t0_ns = now_ns();
  h.perf_ok = perf_read_counters(h.perf0);
  t_current = node;
}

void profile_span_end(ProfileHandle& h) {
  ProfileNode* node = h.node;
  const std::int64_t dt = now_ns() - h.t0_ns;
  if (dt > 0) node->total_ns.fetch_add(static_cast<std::uint64_t>(dt), std::memory_order_relaxed);
  if (h.perf_ok) {
    std::uint64_t now[kPerfCounterCount];
    if (perf_read_counters(now)) {
      for (int i = 0; i < kPerfCounterCount; ++i) {
        // Multiplex scaling is not strictly monotonic: skip negative deltas.
        if (now[i] > h.perf0[i]) {
          node->perf[i].fetch_add(now[i] - h.perf0[i], std::memory_order_relaxed);
        }
      }
    }
  }
  t_current = node->parent != &profile_state().root ? node->parent : nullptr;
  h.node = nullptr;
}

ProfileNode* profile_adopt(ProfileNode* parent) {
  ProfileNode* previous = t_current;
  t_current = parent;
  return previous;
}

void profile_restore(ProfileNode* previous) { t_current = previous; }

}  // namespace detail

void profile_work(const char* name, std::uint64_t amount) {
  if (!profiling_enabled()) return;
  ProfileNode* node = t_current;
  if (node == nullptr) return;
  auto& st = profile_state();
  std::atomic<std::uint64_t>* slot = nullptr;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    slot = &node->work[name];  // map nodes are pointer-stable
  }
  slot->fetch_add(amount, std::memory_order_relaxed);
}

std::string profile_to_json(ProfileFields fields) {
  auto& st = profile_state();
  std::lock_guard<std::mutex> lk(st.mu);
  std::string out = "{\"schema\":\"tsvcod.profile.v1\",\"fields\":\"";
  out += fields == ProfileFields::full ? "full" : "deterministic";
  out += '"';
  if (fields == ProfileFields::full) {
    const PerfAvailability& perf = perf_availability();
    out += ",\"perf_counters\":{\"available\":";
    out += perf.available ? "true" : "false";
    out += ",\"reason\":\"";
    append_escaped(out, perf.reason);
    out += "\"}";
  }
  out += ",\"roots\":[";
  bool first = true;
  for (const auto& [name, child] : st.root.children) {
    if (!first) out += ',';
    first = false;
    node_to_json(*child, fields, out);
  }
  out += "]}";
  return out;
}

std::string profile_to_collapsed() {
  auto& st = profile_state();
  std::lock_guard<std::mutex> lk(st.mu);
  std::string out;
  for (const auto& [name, child] : st.root.children) node_to_collapsed(*child, "", out);
  return out;
}

void reset_profile() {
  auto& st = profile_state();
  std::lock_guard<std::mutex> lk(st.mu);
  delete_subtree(&st.root);
  st.root.count.store(0, std::memory_order_relaxed);
  st.root.total_ns.store(0, std::memory_order_relaxed);
  for (auto& p : st.root.perf) p.store(0, std::memory_order_relaxed);
  st.root.work.clear();
}

}  // namespace tsvcod::obs
