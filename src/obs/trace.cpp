#include "obs/obs.hpp"

#include <algorithm>

#include "obs/profile.hpp"
#include "obs/snapshot.hpp"
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace tsvcod::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

struct Event {
  std::string name;
  std::string args;  // pre-rendered JSON object body, "" = none
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;  // "X" events only
  double value = 0.0;       // "C" events only
  char ph = 'X';
};

/// Owned jointly by its thread (thread_local shared_ptr) and the registry, so
/// flushing after a pool thread exited never dangles. The per-buffer mutex is
/// only ever contended between the owning thread and a flusher — workers never
/// share a lock with each other.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<Event> events;
  int tid = 0;
};

struct TraceState {
  std::mutex mu;  // guards buffers registration + epoch
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  Clock::time_point epoch = Clock::now();
  int next_tid = 1;
};

TraceState& trace_state() {
  static TraceState* state = new TraceState();  // leaked: usable at any exit stage
  return *state;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    auto& st = trace_state();
    std::lock_guard<std::mutex> lk(st.mu);
    b->tid = st.next_tid++;
    st.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

std::int64_t now_us() {
  auto& st = trace_state();
  Clock::time_point epoch;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    epoch = st.epoch;
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch).count();
}

void push_event(Event ev) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lk(buf.mu);
  buf.events.push_back(std::move(ev));
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

struct Paths {
  std::mutex mu;
  std::string trace;
  std::string metrics;
  std::string profile;
};

Paths& paths() {
  static Paths* p = new Paths();
  return *p;
}

}  // namespace

void enable_tracing(bool on) {
  if (on && !trace_enabled()) {
    // Fresh session: restart the clock so timestamps start near zero.
    auto& st = trace_state();
    std::lock_guard<std::mutex> lk(st.mu);
    st.epoch = Clock::now();
  }
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void enable_metrics(bool on) { detail::g_metrics_enabled.store(on, std::memory_order_relaxed); }

void init_from_env() {
  const char* t = std::getenv("TSVCOD_TRACE");
  if (t && *t) set_trace_path(t);
  const char* m = std::getenv("TSVCOD_METRICS");
  if (m && *m) set_metrics_path(m);
  const char* p = std::getenv("TSVCOD_PROFILE");
  if (p && *p) set_profile_path(p);
  const char* s = std::getenv("TSVCOD_SNAPSHOT");
  if (s && *s) {
    SnapshotOptions opts;
    if (const char* iv = std::getenv("TSVCOD_SNAPSHOT_INTERVAL"); iv && *iv) {
      // A malformed or non-positive interval used to be silently ignored
      // (falling back to the default), which hides typos; fail fast naming
      // the variable and its value instead.
      char* end = nullptr;
      const double seconds = std::strtod(iv, &end);
      if (!end || *end != '\0' || !(seconds > 0.0)) {
        throw std::runtime_error(std::string("TSVCOD_SNAPSHOT_INTERVAL='") + iv +
                                 "' is not a positive number of seconds");
      }
      opts.interval = std::chrono::milliseconds(static_cast<std::int64_t>(seconds * 1000.0));
      if (opts.interval.count() <= 0) opts.interval = std::chrono::milliseconds(1);
    }
    enable_metrics(true);
    start_snapshots(s, opts);
  }
}

void set_trace_path(std::string path) {
  {
    std::lock_guard<std::mutex> lk(paths().mu);
    paths().trace = std::move(path);
  }
  if (!trace_path().empty()) enable_tracing(true);
}

void set_metrics_path(std::string path) {
  {
    std::lock_guard<std::mutex> lk(paths().mu);
    paths().metrics = std::move(path);
  }
  if (!metrics_path().empty()) enable_metrics(true);
}

std::string trace_path() {
  std::lock_guard<std::mutex> lk(paths().mu);
  return paths().trace;
}

std::string metrics_path() {
  std::lock_guard<std::mutex> lk(paths().mu);
  return paths().metrics;
}

void set_profile_path(std::string path) {
  {
    std::lock_guard<std::mutex> lk(paths().mu);
    paths().profile = std::move(path);
  }
  if (!profile_path().empty()) enable_profiling(true);
}

std::string profile_path() {
  std::lock_guard<std::mutex> lk(paths().mu);
  return paths().profile;
}

namespace {

/// Inject the top-level `"clean_exit"` marker as the first key of a rendered
/// JSON object. Only *written* documents carry it — the in-memory
/// `*_to_json()` strings stay untouched so their exact shapes remain stable.
std::string with_clean_exit(const std::string& body, bool clean) {
  if (body.empty() || body.front() != '{') return body;
  std::string marker = "\"clean_exit\":";
  marker += clean ? "true" : "false";
  if (body.size() >= 2 && body[1] != '}') marker += ',';
  return "{" + marker + body.substr(1);
}

}  // namespace

bool flush_outputs(bool clean_exit) {
  bool wrote = false;
  const auto write_file = [](const std::string& path, const std::string& body) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("obs: cannot open for writing: " + path);
    os << body;
    if (!os) throw std::runtime_error("obs: write failed: " + path);
  };
  if (trace_enabled() && !trace_path().empty()) {
    write_file(trace_path(), with_clean_exit(trace_to_json(), clean_exit));
    wrote = true;
  }
  if (metrics_enabled() && !metrics_path().empty()) {
    write_file(metrics_path(), with_clean_exit(metrics_to_json(), clean_exit));
    wrote = true;
  }
  if (profiling_enabled() && !profile_path().empty()) {
    write_file(profile_path(), with_clean_exit(profile_to_json(ProfileFields::full), clean_exit));
    write_file(profile_path() + ".folded", profile_to_collapsed());
    wrote = true;
  }
  return wrote;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void Span::begin(const char* name) {
  traced_ = trace_enabled();
  if (traced_) {
    name_ = name;
    start_us_ = now_us();
  }
  if (profiling_enabled()) detail::profile_span_begin(name, prof_);
  active_ = true;
}

void Span::end() {
  if (prof_.node != nullptr) detail::profile_span_end(prof_);
  if (traced_) {
    Event ev;
    ev.name = std::move(name_);
    ev.args = std::move(args_);
    ev.ts_us = start_us_;
    ev.dur_us = now_us() - start_us_;
    ev.ph = 'X';
    push_event(std::move(ev));
  }
  active_ = false;
  traced_ = false;
}

void instant(const char* name, std::string args_body) {
  if (!trace_enabled()) return;
  Event ev;
  ev.name = name;
  ev.args = std::move(args_body);
  ev.ts_us = now_us();
  ev.ph = 'i';
  push_event(std::move(ev));
}

void counter(const char* name, double value) {
  if (!trace_enabled()) return;
  counter(std::string(name), value);
}

void counter(const std::string& name, double value) {
  if (!trace_enabled()) return;
  counter_at(name, value, now_us());
}

void counter_at(const std::string& name, double value, std::int64_t ts_us) {
  if (!trace_enabled()) return;
  Event ev;
  ev.name = name;
  ev.ts_us = ts_us;
  ev.value = value;
  ev.ph = 'C';
  push_event(std::move(ev));
}

std::string trace_to_json() {
  // Steal every buffer's events under its own lock, then render. Callers
  // flush from quiescent points, so the steal sees complete events only.
  std::vector<std::pair<int, Event>> all;
  {
    auto& st = trace_state();
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
      std::lock_guard<std::mutex> lk(st.mu);
      buffers = st.buffers;
    }
    for (const auto& buf : buffers) {
      std::lock_guard<std::mutex> lk(buf->mu);
      for (const auto& ev : buf->events) all.emplace_back(buf->tid, ev);
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second.ts_us != b.second.ts_us ? a.second.ts_us < b.second.ts_us : a.first < b.first;
  });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, ev] : all) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, ev.name);
    out += "\",\"cat\":\"tsvcod\",\"ph\":\"";
    out += ev.ph;
    out += "\",\"pid\":1,\"tid\":" + std::to_string(tid);
    out += ",\"ts\":" + std::to_string(ev.ts_us);
    switch (ev.ph) {
      case 'X':
        out += ",\"dur\":" + std::to_string(ev.dur_us);
        if (!ev.args.empty()) out += ",\"args\":{" + ev.args + "}";
        break;
      case 'i':
        out += ",\"s\":\"t\"";
        if (!ev.args.empty()) out += ",\"args\":{" + ev.args + "}";
        break;
      case 'C':
        out += ",\"args\":{\"value\":" + json_number(ev.value) + "}";
        break;
      default: break;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void reset_trace() {
  auto& st = trace_state();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    buffers = st.buffers;
    st.epoch = Clock::now();
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lk(buf->mu);
    buf->events.clear();
  }
}

}  // namespace tsvcod::obs
