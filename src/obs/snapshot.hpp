#pragma once
// Periodic metrics snapshots: a background thread serializes the metrics
// registry to a file at a fixed interval, rotating older snapshots to
// `<path>.1` … `<path>.keep` so a crashed or wedged process still leaves a
// recent history behind. Writes go through a temp file + rename, so readers
// (tail -f loops, the future tsvcod_serve scraper) never observe a torn
// document. Each snapshot is `{"seq":N,"final":bool,"metrics":{…}}` where
// `metrics` is exactly `metrics_to_json()`; `final` is true only for the
// closing snapshot written by `stop_snapshots`.

#include <chrono>
#include <string>

namespace tsvcod::obs {

struct SnapshotOptions {
  std::chrono::milliseconds interval{1000};
  int keep = 3;  // rotated copies beyond the live file; 0 = overwrite in place
};

/// Start (or restart with new settings) the background exporter; enables the
/// metrics layer implicitly since a snapshot of nothing is useless. Throws
/// std::invalid_argument on a non-positive interval, naming the
/// --snapshot-interval flag / TSVCOD_SNAPSHOT_INTERVAL env var (a silent
/// clamp used to turn a typo into a 1 ms busy loop).
void start_snapshots(std::string path, SnapshotOptions options = {});

/// Stop the exporter: joins the thread, then writes one last snapshot with
/// `"final":true` — always written after the worker has exited, so it is the
/// last document on disk even when stop races an in-progress periodic write.
/// Safe to call when not running, and safe to call concurrently from several
/// threads (exactly one final snapshot is written).
void stop_snapshots();

bool snapshots_running();
std::string snapshot_path();  // "" when not running

}  // namespace tsvcod::obs
