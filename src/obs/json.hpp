#pragma once
// Minimal strict JSON parser for tooling that must *read* JSON (benchdiff,
// tests) without growing a dependency. Strict by design: objects keep
// insertion order, duplicate keys are rejected, numbers are doubles, and any
// syntax error throws std::runtime_error naming the byte offset. Not a
// general-purpose library — no DOM mutation, no serialization (the obs layer
// renders its own JSON by hand).

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tsvcod::obs::json {

struct Value {
  enum class Type { null, boolean, number, string, array, object };

  Type type = Type::null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  bool is_null() const { return type == Type::null; }
  bool is_boolean() const { return type == Type::boolean; }
  bool is_number() const { return type == Type::number; }
  bool is_string() const { return type == Type::string; }
  bool is_array() const { return type == Type::array; }
  bool is_object() const { return type == Type::object; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
};

/// Parse a complete document (one value + optional trailing whitespace).
/// Throws std::runtime_error with a byte offset on malformed input.
Value parse(std::string_view text);

}  // namespace tsvcod::obs::json
