#pragma once
// Hardware performance counters via perf_event_open, attachable to profiled
// spans (obs/profile.cpp snapshots them at span begin/end). Four counters are
// opened per thread as one scheduled group — cycles (leader), instructions,
// LLC misses, branch misses — and reads are multiplex-scaled by
// time_enabled/time_running.
//
// Graceful degradation is the contract, not an edge case: containers without
// CAP_PERFMON, kernels with perf_event_paranoid locked down, non-Linux hosts
// and VMs without a PMU all simply report `available:false` plus a reason
// string, and the profiler falls back to steady-clock-only timing. Nothing
// in this header ever throws for an unavailable PMU.

#include <cstdint>
#include <string>

namespace tsvcod::obs {

/// Index order of the counter group everywhere (ProfileHandle::perf0, node
/// totals, JSON field order).
enum PerfCounterIndex : int {
  kPerfCycles = 0,
  kPerfInstructions = 1,
  kPerfLlcMisses = 2,
  kPerfBranchMisses = 3,
  kPerfCounterCount = 4,
};

/// Canonical JSON/report names for the four slots.
const char* perf_counter_name(int index);

struct PerfAvailability {
  bool available = false;
  std::string reason;  // non-empty when unavailable ("" when available)
};

/// Process-wide probe, computed once on first use (opens and closes a probe
/// counter). Per-thread groups are only opened when this says available.
const PerfAvailability& perf_availability();

namespace detail {
/// Snapshot the calling thread's counter group into out[kPerfCounterCount],
/// multiplex-scaled. Returns false (out untouched) when perf is unavailable
/// or the read failed; callers treat that as "no hardware data for this
/// span", never as an error.
bool perf_read_counters(std::uint64_t out[kPerfCounterCount]);
}  // namespace detail

}  // namespace tsvcod::obs
