#include "obs/snapshot.hpp"

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/obs.hpp"

namespace tsvcod::obs {

namespace {

struct SnapshotState {
  // Serializes whole start/stop transitions (thread join happens under this
  // lock but never under `mu`, so the worker can still make progress).
  // Concurrent stop_snapshots() calls — e.g. a signal-path flusher racing the
  // normal exit path — must not both join the worker or drop the final
  // snapshot.
  std::mutex lifecycle_mu;
  std::mutex mu;  // guards everything below + file writes
  std::condition_variable cv;
  std::thread worker;
  std::string path;
  SnapshotOptions options;
  std::uint64_t seq = 0;
  bool running = false;
  bool stop_requested = false;
};

SnapshotState& snapshot_state() {
  static SnapshotState* state = new SnapshotState();  // leaked: usable at any exit stage
  return *state;
}

/// Rotate path -> path.1 -> … -> path.keep, then write via temp + rename so
/// the live file is always a complete document. Rename failures (e.g. a
/// missing predecessor) are expected and ignored.
void write_snapshot_locked(SnapshotState& st, bool final_snapshot) {
  for (int i = st.options.keep - 1; i >= 1; --i) {
    std::rename((st.path + "." + std::to_string(i)).c_str(),
                (st.path + "." + std::to_string(i + 1)).c_str());
  }
  if (st.options.keep > 0) std::rename(st.path.c_str(), (st.path + ".1").c_str());

  std::string body = "{\"seq\":" + std::to_string(st.seq++);
  body += ",\"final\":";
  body += final_snapshot ? "true" : "false";
  body += ",\"metrics\":" + metrics_to_json() + "}";

  const std::string tmp = st.path + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os) return;  // telemetry must never take the process down
    os << body;
    if (!os) return;
  }
  std::rename(tmp.c_str(), st.path.c_str());
}

void snapshot_loop() {
  auto& st = snapshot_state();
  std::unique_lock<std::mutex> lk(st.mu);
  while (!st.stop_requested) {
    st.cv.wait_for(lk, st.options.interval, [&st] { return st.stop_requested; });
    if (st.stop_requested) break;
    write_snapshot_locked(st, /*final_snapshot=*/false);
  }
}

/// Stop the worker and write the final snapshot. Caller holds lifecycle_mu.
/// The join happens after the worker can no longer start a write, and the
/// `"final":true` snapshot is written strictly after the worker exits, so it
/// is always the last document on disk — a stop racing an in-progress
/// periodic write can delay it, never drop or clobber it.
void stop_snapshots_lifecycle_locked(SnapshotState& st) {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lk(st.mu);
    if (!st.running) return;
    st.stop_requested = true;
    worker = std::move(st.worker);
  }
  st.cv.notify_all();
  worker.join();
  std::lock_guard<std::mutex> lk(st.mu);
  write_snapshot_locked(st, /*final_snapshot=*/true);
  st.running = false;
  st.stop_requested = false;
}

}  // namespace

void start_snapshots(std::string path, SnapshotOptions options) {
  if (options.interval.count() <= 0) {
    throw std::invalid_argument(
        "snapshots: interval must be > 0, got " + std::to_string(options.interval.count()) +
        " ms (set --snapshot-interval / TSVCOD_SNAPSHOT_INTERVAL to a positive number of "
        "seconds)");
  }
  if (options.keep < 0) options.keep = 0;
  auto& st = snapshot_state();
  std::lock_guard<std::mutex> lifecycle(st.lifecycle_mu);
  stop_snapshots_lifecycle_locked(st);
  enable_metrics(true);
  std::lock_guard<std::mutex> lk(st.mu);
  st.path = std::move(path);
  st.options = options;
  st.stop_requested = false;
  st.running = true;
  st.worker = std::thread(snapshot_loop);
}

void stop_snapshots() {
  auto& st = snapshot_state();
  std::lock_guard<std::mutex> lifecycle(st.lifecycle_mu);
  stop_snapshots_lifecycle_locked(st);
}

bool snapshots_running() {
  auto& st = snapshot_state();
  std::lock_guard<std::mutex> lk(st.mu);
  return st.running;
}

std::string snapshot_path() {
  auto& st = snapshot_state();
  std::lock_guard<std::mutex> lk(st.mu);
  return st.running ? st.path : std::string();
}

}  // namespace tsvcod::obs
