#include "field/grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsvcod::field {

Grid::Grid(double width, double height, double cell) : cell_(cell) {
  if (!(width > 0.0) || !(height > 0.0) || !(cell > 0.0)) {
    throw std::invalid_argument("Grid: dimensions must be positive");
  }
  nx_ = static_cast<std::size_t>(std::ceil(width / cell));
  ny_ = static_cast<std::size_t>(std::ceil(height / cell));
  if (nx_ < 4 || ny_ < 4) throw std::invalid_argument("Grid: domain too small for cell size");
  eps_.assign(nx_ * ny_, Complex{1.0, 0.0});
  conductor_.assign(nx_ * ny_, kNoConductor);
}

void Grid::fill(Complex eps_r) { std::fill(eps_.begin(), eps_.end(), eps_r); }

void Grid::paint_disk(double cx, double cy, double radius, Complex eps_r,
                      std::int32_t conductor_id) {
  if (!(radius > 0.0)) throw std::invalid_argument("paint_disk: radius must be positive");
  const double r2 = radius * radius;
  const auto ix_lo = static_cast<std::size_t>(std::max(0.0, std::floor((cx - radius) / cell_)));
  const auto iy_lo = static_cast<std::size_t>(std::max(0.0, std::floor((cy - radius) / cell_)));
  const auto ix_hi = std::min(nx_, static_cast<std::size_t>(std::ceil((cx + radius) / cell_)) + 1);
  const auto iy_hi = std::min(ny_, static_cast<std::size_t>(std::ceil((cy + radius) / cell_)) + 1);
  for (std::size_t iy = iy_lo; iy < iy_hi; ++iy) {
    for (std::size_t ix = ix_lo; ix < ix_hi; ++ix) {
      const double dx = x_of(ix) - cx;
      const double dy = y_of(iy) - cy;
      if (dx * dx + dy * dy <= r2) {
        const std::size_t i = index(ix, iy);
        if (conductor_id == kNoConductor) {
          eps_[i] = eps_r;
          // A dielectric paint over a conductor cell demotes it back; callers
          // paint conductors last to avoid surprises.
          conductor_[i] = kNoConductor;
        } else {
          conductor_[i] = conductor_id;
        }
      }
    }
  }
  if (conductor_id != kNoConductor) {
    conductor_count_ = std::max(conductor_count_, conductor_id + 1);
  }
}

void Grid::paint_annulus(double cx, double cy, double r_in, double r_out, Complex eps_r) {
  if (!(r_out > r_in) || !(r_in >= 0.0)) {
    throw std::invalid_argument("paint_annulus: need 0 <= r_in < r_out");
  }
  const double ri2 = r_in * r_in;
  const double ro2 = r_out * r_out;
  const auto ix_lo = static_cast<std::size_t>(std::max(0.0, std::floor((cx - r_out) / cell_)));
  const auto iy_lo = static_cast<std::size_t>(std::max(0.0, std::floor((cy - r_out) / cell_)));
  const auto ix_hi = std::min(nx_, static_cast<std::size_t>(std::ceil((cx + r_out) / cell_)) + 1);
  const auto iy_hi = std::min(ny_, static_cast<std::size_t>(std::ceil((cy + r_out) / cell_)) + 1);
  for (std::size_t iy = iy_lo; iy < iy_hi; ++iy) {
    for (std::size_t ix = ix_lo; ix < ix_hi; ++ix) {
      const double dx = x_of(ix) - cx;
      const double dy = y_of(iy) - cy;
      const double d2 = dx * dx + dy * dy;
      if (d2 >= ri2 && d2 < ro2) {
        const std::size_t i = index(ix, iy);
        if (conductor_[i] == kNoConductor) eps_[i] = eps_r;
      }
    }
  }
}

}  // namespace tsvcod::field
