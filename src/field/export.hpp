#pragma once
// Visualization export for field solutions: grayscale PGM images of the
// cross-section geometry (permittivity magnitude) and of solved potentials.
// Useful for eyeballing that the rasterized liners/depletion annuli and the
// E-field sharing between TSVs look physical — the pictures Q3D would show.

#include <iosfwd>
#include <string>
#include <vector>

#include "field/grid.hpp"

namespace tsvcod::field {

/// Write a (width x height) scalar field as an 8-bit PGM, min-max scaled.
/// Values are in grid cell order (row-major, row 0 at the top of the image).
void write_pgm(std::ostream& os, std::size_t width, std::size_t height,
               const std::vector<double>& values);
void write_pgm(const std::string& path, std::size_t width, std::size_t height,
               const std::vector<double>& values);

/// |eps*| per cell; conductors are rendered brightest.
std::vector<double> permittivity_map(const Grid& grid);

/// Re{phi} per cell for a solved potential.
std::vector<double> potential_map(const Grid& grid, const std::vector<Complex>& phi);

}  // namespace tsvcod::field
