#pragma once
// Quasi-electrostatic capacitance extraction for TSV arrays (the repo's
// substitute for the paper's Ansys Q3D runs).
//
// For every TSV, the cross-section is rasterized as: copper core (conductor),
// SiO2 liner, depleted annulus (lossless silicon, width from the cylindrical
// deep-depletion Poisson solve at the signal's average voltage pr*Vdd) and
// the lossy p-substrate with complex permittivity
//     eps*_r = eps_r - j * sigma / (omega * eps0).
// One Dirichlet solve per conductor yields the complex charge matrix Q; the
// effective capacitance matrix at the extraction frequency is C = Re{Q}
// (because Y = j*omega*Q = G + j*omega*C). Scaling by the TSV length turns
// the per-unit-length 2-D result into the array's lumped capacitances.
//
// For probability sweeps (model fitting, linearity studies), use
// CapacitanceExtractor: it keeps the rasterized Grid / FieldProblem /
// multigrid hierarchy alive across points — only the depletion annuli are
// repainted — and warm-starts every conductor's solve from the previous
// point's potential, so a sweep costs far less than points x cold
// extractions. Warm starts change iteration counts only; converged
// capacitances stay within solver tolerance of a cold start.

#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "field/solver.hpp"
#include "phys/matrix.hpp"
#include "phys/tsv_geometry.hpp"

namespace tsvcod::field {

/// Thrown when one or more per-conductor field solves fail to converge (or
/// break down) and the caller did not opt into partial results: the charge
/// matrix would silently carry garbage capacitances otherwise.
class ConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ExtractionOptions {
  double cell = 0.1e-6;       ///< grid cell edge [m]
  double margin = 0.0;        ///< substrate margin around the array [m]; 0 = auto (3 pitches)
  double frequency = 3e9;     ///< extraction frequency [Hz]
  /// Worker threads for the per-conductor solves (one Dirichlet solve per
  /// TSV, all independent). 0 = TSVCOD_THREADS env override, else 1. Results
  /// are bit-identical at every thread count.
  int threads = 0;
  /// Accept non-converged solves and return whatever the solver reached
  /// (inspect `CapacitanceResult::stats`). Default: throw ConvergenceError.
  bool allow_nonconverged = false;
  SolverOptions solver{};
};

struct CapacitanceResult {
  /// Paper-form matrix: diagonal = ground capacitance C_ii, off-diagonal =
  /// coupling capacitance C_ij >= 0. Units: farads (lumped, length-scaled).
  phys::Matrix paper;
  /// Raw (symmetrized) Maxwell matrix Re{Q}*l for diagnostics.
  phys::Matrix maxwell;
  std::vector<SolveStats> stats;

  bool all_converged() const {
    for (const auto& s : stats)
      if (!s.converged) return false;
    return true;
  }
};

/// Rasterize the array cross-section; `probabilities` holds one 1-bit
/// probability per TSV (sets each depletion width).
Grid build_array_grid(const phys::TsvArrayGeometry& geom, std::span<const double> probabilities,
                      const ExtractionOptions& opts);

/// Full extraction: one field solve per TSV.
CapacitanceResult extract_capacitance(const phys::TsvArrayGeometry& geom,
                                      std::span<const double> probabilities,
                                      const ExtractionOptions& opts = {});

/// Stateful extractor for repeated extractions of one array at different
/// probability points. The grid dimensions and conductor layout are
/// probability-independent, so the FieldProblem (free-cell indexing, face
/// weights, multigrid hierarchy) is built once and only its coefficients are
/// refreshed per point; solves warm-start from the previous point.
class CapacitanceExtractor {
 public:
  CapacitanceExtractor(const phys::TsvArrayGeometry& geom, const ExtractionOptions& opts = {});

  // The FieldProblem holds a reference to the owned Grid.
  CapacitanceExtractor(const CapacitanceExtractor&) = delete;
  CapacitanceExtractor& operator=(const CapacitanceExtractor&) = delete;

  /// Extract at one probability point, reusing the cached setup. The first
  /// call equals `extract_capacitance` exactly; later calls warm-start.
  CapacitanceResult extract(std::span<const double> probabilities);

  const Grid& grid() const { return grid_; }
  const FieldProblem& problem() const { return *problem_; }
  /// Total BiCGStab iterations across all calls so far (sweep cost metric).
  long long total_iterations() const { return total_iterations_; }

 private:
  void repaint(std::span<const double> probabilities);

  phys::TsvArrayGeometry geom_;
  ExtractionOptions opts_;
  Grid grid_;
  std::unique_ptr<FieldProblem> problem_;
  std::vector<double> last_widths_;             // per-TSV depletion widths on the grid
  std::vector<std::vector<Complex>> last_phi_;  // per-conductor warm-start potentials
  long long total_iterations_ = 0;
};

}  // namespace tsvcod::field
