#pragma once
// Quasi-electrostatic capacitance extraction for TSV arrays (the repo's
// substitute for the paper's Ansys Q3D runs).
//
// For every TSV, the cross-section is rasterized as: copper core (conductor),
// SiO2 liner, depleted annulus (lossless silicon, width from the cylindrical
// deep-depletion Poisson solve at the signal's average voltage pr*Vdd) and
// the lossy p-substrate with complex permittivity
//     eps*_r = eps_r,si - j * sigma / (omega * eps0).
// One Dirichlet solve per conductor yields the complex charge matrix Q; the
// effective capacitance matrix at the extraction frequency is C = Re{Q}
// (because Y = j*omega*Q = G + j*omega*C). Scaling by the TSV length turns
// the per-unit-length 2-D result into the array's lumped capacitances.

#include <span>
#include <stdexcept>
#include <vector>

#include "field/solver.hpp"
#include "phys/matrix.hpp"
#include "phys/tsv_geometry.hpp"

namespace tsvcod::field {

/// Thrown when one or more per-conductor field solves fail to converge (or
/// break down) and the caller did not opt into partial results: the charge
/// matrix would silently carry garbage capacitances otherwise.
class ConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ExtractionOptions {
  double cell = 0.1e-6;       ///< grid cell edge [m]
  double margin = 0.0;        ///< substrate margin around the array [m]; 0 = auto (3 pitches)
  double frequency = 3e9;     ///< extraction frequency [Hz]
  /// Worker threads for the per-conductor solves (one Dirichlet solve per
  /// TSV, all independent). 0 = TSVCOD_THREADS env override, else 1. Results
  /// are bit-identical at every thread count.
  int threads = 0;
  /// Accept non-converged solves and return whatever the solver reached
  /// (inspect `CapacitanceResult::stats`). Default: throw ConvergenceError.
  bool allow_nonconverged = false;
  SolverOptions solver{};
};

struct CapacitanceResult {
  /// Paper-form matrix: diagonal = ground capacitance C_ii, off-diagonal =
  /// coupling capacitance C_ij >= 0. Units: farads (lumped, length-scaled).
  phys::Matrix paper;
  /// Raw (symmetrized) Maxwell matrix Re{Q}*l for diagnostics.
  phys::Matrix maxwell;
  std::vector<SolveStats> stats;

  bool all_converged() const {
    for (const auto& s : stats)
      if (!s.converged) return false;
    return true;
  }
};

/// Rasterize the array cross-section; `probabilities` holds one 1-bit
/// probability per TSV (sets each depletion width).
Grid build_array_grid(const phys::TsvArrayGeometry& geom, std::span<const double> probabilities,
                      const ExtractionOptions& opts);

/// Full extraction: one field solve per TSV.
CapacitanceResult extract_capacitance(const phys::TsvArrayGeometry& geom,
                                      std::span<const double> probabilities,
                                      const ExtractionOptions& opts = {});

}  // namespace tsvcod::field
