#pragma once
// Uniform 2-D grid describing a TSV-array cross-section for quasi-electro-
// static extraction.
//
// Each cell carries a complex relative permittivity
//     eps*_r = eps_r - j * sigma / (omega * eps0)
// so a lossy substrate (sigma > 0) and lossless dielectrics (oxide, depleted
// silicon) are handled uniformly. Cells can instead belong to a conductor
// (TSV metal core), identified by a non-negative conductor id; conductor
// cells are Dirichlet nodes in the field solve.
//
// The outer boundary is Dirichlet 0 V: it models the grounded substrate
// contact far away from the array.

#include <complex>
#include <cstdint>
#include <vector>

namespace tsvcod::field {

using Complex = std::complex<double>;

inline constexpr std::int32_t kNoConductor = -1;

class Grid {
 public:
  /// `width`/`height` are the physical domain size [m]; `cell` the square
  /// cell edge [m]. The cell count is rounded up to cover the domain.
  Grid(double width, double height, double cell);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  double cell() const { return cell_; }
  double width() const { return static_cast<double>(nx_) * cell_; }
  double height() const { return static_cast<double>(ny_) * cell_; }
  std::size_t size() const { return nx_ * ny_; }

  std::size_t index(std::size_t ix, std::size_t iy) const { return iy * nx_ + ix; }

  /// Cell-center coordinate [m].
  double x_of(std::size_t ix) const { return (static_cast<double>(ix) + 0.5) * cell_; }
  double y_of(std::size_t iy) const { return (static_cast<double>(iy) + 0.5) * cell_; }

  Complex eps(std::size_t i) const { return eps_[i]; }
  std::int32_t conductor(std::size_t i) const { return conductor_[i]; }

  /// Fill the whole domain with a background permittivity.
  void fill(Complex eps_r);

  /// Paint a filled disk. `conductor_id == kNoConductor` paints a dielectric
  /// disk with permittivity `eps_r`; otherwise the disk becomes conductor
  /// cells (eps ignored).
  void paint_disk(double cx, double cy, double radius, Complex eps_r,
                  std::int32_t conductor_id = kNoConductor);

  /// Paint an annulus r_in <= r < r_out as dielectric.
  void paint_annulus(double cx, double cy, double r_in, double r_out, Complex eps_r);

  std::int32_t conductor_count() const { return conductor_count_; }

 private:
  std::size_t nx_;
  std::size_t ny_;
  double cell_;
  std::vector<Complex> eps_;
  std::vector<std::int32_t> conductor_;
  std::int32_t conductor_count_ = 0;
};

}  // namespace tsvcod::field
