#include "field/solver.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "phys/constants.hpp"

namespace tsvcod::field {

namespace {

Complex harmonic_mean(Complex a, Complex b) {
  const Complex s = a + b;
  if (std::abs(s) == 0.0) return Complex{0.0, 0.0};
  return 2.0 * a * b / s;
}

double norm2(const std::vector<Complex>& v) {
  double acc = 0.0;
  for (const auto& c : v) acc += std::norm(c);
  return std::sqrt(acc);
}

Complex dot(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  Complex acc{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::conj(a[i]) * b[i];
  return acc;
}

}  // namespace

Preconditioner default_preconditioner() {
  static const Preconditioner cached = [] {
    const char* env = std::getenv("TSVCOD_PRECONDITIONER");
    if (env && (std::strcmp(env, "jacobi") == 0)) return Preconditioner::jacobi;
    if (env && std::strcmp(env, "multigrid") != 0 && std::strcmp(env, "mg") != 0 && *env) {
      // Unknown value: fail loudly rather than silently benchmarking the
      // wrong solver.
      throw std::runtime_error("TSVCOD_PRECONDITIONER must be 'jacobi' or 'multigrid'");
    }
    return Preconditioner::multigrid;
  }();
  return cached;
}

FieldProblem::FieldProblem(const Grid& grid) : grid_(grid) {
  const std::size_t n = grid.size();
  free_index_.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    if (grid.conductor(i) == kNoConductor) {
      free_index_[i] = static_cast<std::int64_t>(free_cells_.size());
      free_cells_.push_back(i);
    } else {
      ++dirichlet_count_;
    }
  }
  update_coefficients();
}

void FieldProblem::update_coefficients() {
  // Precompute east/north face weights for every cell.
  const std::size_t n = grid_.size();
  const std::size_t nx = grid_.nx();
  const std::size_t ny = grid_.ny();
  w_east_.assign(n, Complex{});
  w_north_.assign(n, Complex{});
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t i = grid_.index(ix, iy);
      if (ix + 1 < nx) w_east_[i] = harmonic_mean(grid_.eps(i), grid_.eps(grid_.index(ix + 1, iy)));
      if (iy + 1 < ny) w_north_[i] = harmonic_mean(grid_.eps(i), grid_.eps(grid_.index(ix, iy + 1)));
    }
  }
  std::lock_guard<std::mutex> lock(mg_mutex_);
  if (mg_) {
    std::vector<Complex> eps(n);
    for (std::size_t i = 0; i < n; ++i) eps[i] = grid_.eps(i);
    mg_->update_coefficients(eps);
  }
}

const Multigrid* FieldProblem::multigrid_for(const MultigridOptions& opts) const {
  std::lock_guard<std::mutex> lock(mg_mutex_);
  if (!mg_attempted_) {
    mg_attempted_ = true;
    if (Multigrid::viable(grid_.nx(), grid_.ny(), unknowns(), opts)) {
      const std::size_t n = grid_.size();
      std::vector<std::uint8_t> dirichlet(n, 0);
      std::vector<Complex> eps(n);
      for (std::size_t i = 0; i < n; ++i) {
        dirichlet[i] = grid_.conductor(i) == kNoConductor ? 0 : 1;
        eps[i] = grid_.eps(i);
      }
      mg_ = std::make_unique<Multigrid>(grid_.nx(), grid_.ny(), dirichlet, eps, opts);
    }
  }
  return mg_.get();
}

void FieldProblem::apply(const std::vector<Complex>& x, std::vector<Complex>& y) const {
  // y = A x where x is the unknown vector and A couples only free cells
  // (Dirichlet contributions live in the right-hand side).
  const std::size_t nx = grid_.nx();
  const std::size_t ny = grid_.ny();
  for (std::size_t u = 0; u < free_cells_.size(); ++u) {
    const std::size_t i = free_cells_[u];
    const std::size_t ix = i % nx;
    const std::size_t iy = i / nx;
    Complex diag{};
    Complex off{};
    auto face = [&](std::size_t j, Complex w) {
      diag += w;
      const std::int64_t fj = free_index_[j];
      if (fj >= 0) off += w * x[static_cast<std::size_t>(fj)];
    };
    if (ix + 1 < nx) face(i + 1, w_east_[i]);
    if (ix > 0) face(i - 1, w_east_[i - 1]);
    if (iy + 1 < ny) face(i + nx, w_north_[i]);
    if (iy > 0) face(i - nx, w_north_[i - nx]);
    // Domain-boundary faces: Dirichlet 0 with the cell's own permittivity.
    if (ix == 0 || ix + 1 == nx) diag += grid_.eps(i);
    if (iy == 0 || iy + 1 == ny) diag += grid_.eps(i);
    y[u] = diag * x[u] - off;
  }
}

std::vector<Complex> FieldProblem::solve(std::int32_t active, const SolverOptions& opts,
                                         SolveStats* stats) const {
  return solve(active, opts, std::span<const Complex>{}, stats);
}

std::vector<Complex> FieldProblem::rhs(std::int32_t active) const {
  const std::size_t nx = grid_.nx();
  const std::size_t ny = grid_.ny();
  std::vector<Complex> b(free_cells_.size(), Complex{});
  for (std::size_t u = 0; u < free_cells_.size(); ++u) {
    const std::size_t i = free_cells_[u];
    const std::size_t ix = i % nx;
    const std::size_t iy = i / nx;
    auto dirichlet = [&](std::size_t j, Complex w) {
      if (grid_.conductor(j) == active) b[u] += w;  // phi = 1 there
    };
    if (ix + 1 < nx && free_index_[i + 1] < 0) dirichlet(i + 1, w_east_[i]);
    if (ix > 0 && free_index_[i - 1] < 0) dirichlet(i - 1, w_east_[i - 1]);
    if (iy + 1 < ny && free_index_[i + nx] < 0) dirichlet(i + nx, w_north_[i]);
    if (iy > 0 && free_index_[i - nx] < 0) dirichlet(i - nx, w_north_[i - nx]);
  }
  return b;
}

std::vector<Complex> FieldProblem::solve(std::int32_t active, const SolverOptions& opts,
                                         std::span<const Complex> phi0, SolveStats* stats) const {
  obs::Span span("field.solve");
  const bool tracing = span.traced();
  std::vector<double> residual_history;  // per-iteration, trace-only
  long long vcycles = 0;
  const std::size_t nu = free_cells_.size();
  const std::size_t nx = grid_.nx();
  const std::size_t ny = grid_.ny();
  if (!phi0.empty() && phi0.size() != grid_.size()) {
    throw std::invalid_argument("solve: warm-start potential must be full-grid sized");
  }

  // Right-hand side: contributions of Dirichlet neighbours (active conductor
  // at 1 V; everything else at 0 V).
  const std::vector<Complex> b = rhs(active);

  // Resolve the preconditioner: multigrid falls back to Jacobi when the grid
  // is too small to coarsen.
  const Multigrid* mg = nullptr;
  if (opts.preconditioner == Preconditioner::multigrid) mg = multigrid_for(opts.multigrid);
  const Preconditioner pc = mg ? Preconditioner::multigrid : Preconditioner::jacobi;

  std::vector<Complex> x(nu, Complex{});
  double res = 0.0;
  int it = 0;
  bool trivial = false;

  if (norm2(b) == 0.0) {
    // No free cell touches the active conductor: phi = 0 is the exact
    // solution. Report it honestly instead of mimicking an iterative solve.
    trivial = true;
  } else {
    // Jacobi diagonal (also the multigrid fallback's scaling).
    std::vector<Complex> diag(nu, Complex{});
    for (std::size_t u = 0; u < nu; ++u) {
      const std::size_t i = free_cells_[u];
      const std::size_t ix = i % nx;
      const std::size_t iy = i / nx;
      Complex d{};
      if (ix + 1 < nx) d += w_east_[i];
      if (ix > 0) d += w_east_[i - 1];
      if (iy + 1 < ny) d += w_north_[i];
      if (iy > 0) d += w_north_[i - nx];
      if (ix == 0 || ix + 1 == nx) d += grid_.eps(i);
      if (iy == 0 || iy + 1 == ny) d += grid_.eps(i);
      diag[u] = d;
    }

    // Left preconditioner application z = M^-1 y. The V-cycle operates on
    // full-grid vectors, so scatter/gather around it.
    Multigrid::Workspace ws;
    std::vector<Complex> full_r, full_z;
    if (mg) {
      ws = mg->make_workspace();
      full_r.assign(grid_.size(), Complex{});
      full_z.assign(grid_.size(), Complex{});
    }
    auto precond = [&](const std::vector<Complex>& y, std::vector<Complex>& z) {
      if (!mg) {
        for (std::size_t u = 0; u < nu; ++u) z[u] = y[u] / diag[u];
        return;
      }
      ++vcycles;
      for (std::size_t u = 0; u < nu; ++u) full_r[free_cells_[u]] = y[u];
      mg->v_cycle(full_r, full_z, ws);
      for (std::size_t u = 0; u < nu; ++u) z[u] = full_z[free_cells_[u]];
    };
    std::vector<Complex> tmp(nu);
    auto apply_prec = [&](const std::vector<Complex>& in, std::vector<Complex>& out) {
      apply(in, tmp);
      precond(tmp, out);
    };

    std::vector<Complex> bs(nu);
    precond(b, bs);
    const double bnorm = norm2(bs);

    // Initial guess and (preconditioned) initial residual.
    std::vector<Complex> r(nu);
    if (phi0.empty()) {
      r = bs;
    } else {
      for (std::size_t u = 0; u < nu; ++u) x[u] = phi0[free_cells_[u]];
      apply(x, tmp);
      for (std::size_t u = 0; u < nu; ++u) tmp[u] = b[u] - tmp[u];
      std::vector<Complex> pr(nu);
      precond(tmp, pr);
      r = pr;
    }

    if (bnorm == 0.0) {
      // Pathological: the preconditioner annihilated a nonzero rhs. Report
      // the zero iterate as a (trivially scaled) converged solution.
      x.assign(nu, Complex{});
      trivial = true;
    } else {
      std::vector<Complex> r0 = r;
      std::vector<Complex> p(nu, Complex{}), v(nu, Complex{}), s(nu), t(nu);
      Complex rho{1.0, 0.0}, alpha{1.0, 0.0}, omega{1.0, 0.0};
      const double r0norm = norm2(r0);
      res = norm2(r) / bnorm;
      if (res >= opts.tolerance) {
        for (; it < opts.max_iterations; ++it) {
          const Complex rho1 = dot(r0, r);
          // Breakdown guard, scaled like the alpha guard below: an
          // absolute 1e-300 cutoff false-triggers on well-scaled systems
          // whose norms are simply small.
          if (std::abs(rho1) <= 1e-30 * r0norm * norm2(r)) break;
          if (it == 0) {
            p = r;
          } else {
            const Complex beta = (rho1 / rho) * (alpha / omega);
            for (std::size_t u = 0; u < nu; ++u) p[u] = r[u] + beta * (p[u] - omega * v[u]);
          }
          rho = rho1;
          apply_prec(p, v);
          // Breakdown guard: r0 ⟂ v makes alpha blow up to inf/NaN and taint
          // the whole potential vector. Bail out and report non-convergence.
          const Complex r0v = dot(r0, v);
          if (std::abs(r0v) <= 1e-30 * r0norm * norm2(v)) break;
          alpha = rho / r0v;
          for (std::size_t u = 0; u < nu; ++u) s[u] = r[u] - alpha * v[u];
          if (norm2(s) / bnorm < opts.tolerance) {
            for (std::size_t u = 0; u < nu; ++u) x[u] += alpha * p[u];
            res = norm2(s) / bnorm;
            if (tracing) residual_history.push_back(res);
            ++it;
            break;
          }
          apply_prec(s, t);
          const Complex tt = dot(t, t);
          if (std::abs(tt) < 1e-300) break;
          omega = dot(t, s) / tt;
          for (std::size_t u = 0; u < nu; ++u) {
            x[u] += alpha * p[u] + omega * s[u];
            r[u] = s[u] - omega * t[u];
          }
          res = norm2(r) / bnorm;
          if (tracing) residual_history.push_back(res);
          if (res < opts.tolerance) {
            ++it;
            break;
          }
        }
      }
    }
  }
  const bool converged = trivial || (std::isfinite(res) && res < opts.tolerance);
  if (stats) {
    stats->iterations = it;
    stats->residual = res;
    stats->trivial = trivial;
    stats->preconditioner = pc;
    // isfinite: a residual poisoned by overflow must never count as converged.
    stats->converged = converged;
  }
  const char* pc_name = pc == Preconditioner::multigrid ? "multigrid" : "jacobi";
  if (obs::metrics_enabled()) {
    obs::metric_add("field.solve.count");
    obs::metric_add("field.solve.iterations_total", static_cast<std::uint64_t>(it));
    obs::metric_add(pc == Preconditioner::multigrid ? "field.solve.preconditioner.multigrid"
                                                    : "field.solve.preconditioner.jacobi");
    if (vcycles > 0) obs::metric_add("field.solve.vcycles_total", static_cast<std::uint64_t>(vcycles));
    if (trivial) obs::metric_add("field.solve.trivial_count");
    if (!converged) obs::metric_add("field.solve.nonconverged_count");
    if (!phi0.empty()) obs::metric_add("field.solve.warm_started_count");
    static constexpr double kIterBounds[] = {0,  1,   2,   4,   8,    16,   32,
                                             64, 128, 256, 512, 1024, 4096, 16384};
    obs::metric_observe("field.solve.iterations", static_cast<double>(it), kIterBounds);
  }
  if (tracing) {
    std::string args = "\"active\":" + std::to_string(active) +
                       ",\"unknowns\":" + std::to_string(nu) +
                       ",\"iterations\":" + std::to_string(it) +
                       ",\"residual\":" + obs::json_number(res) + ",\"preconditioner\":\"" +
                       pc_name + "\",\"vcycles\":" + std::to_string(vcycles) +
                       ",\"trivial\":" + (trivial ? "true" : "false") +
                       ",\"warm_start\":" + (phi0.empty() ? "false" : "true");
    if (!residual_history.empty()) {
      // Cap the per-iteration history so giant solves stay viewer-friendly.
      const std::size_t stride = (residual_history.size() + 255) / 256;
      args += ",\"residual_history\":[";
      for (std::size_t i = 0; i < residual_history.size(); i += stride) {
        if (i) args += ',';
        args += obs::json_number(residual_history[i]);
      }
      args += ']';
    }
    span.set_args(std::move(args));
  }
  obs::profile_work("iterations", static_cast<std::uint64_t>(it));
  if (vcycles > 0) obs::profile_work("vcycles", static_cast<std::uint64_t>(vcycles));

  // Scatter to the full grid, Dirichlet values included.
  std::vector<Complex> phi(grid_.size(), Complex{});
  for (std::size_t u = 0; u < nu; ++u) phi[free_cells_[u]] = x[u];
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    if (grid_.conductor(i) == active) phi[i] = Complex{1.0, 0.0};
  }
  return phi;
}

std::vector<Complex> FieldProblem::conductor_charges(const std::vector<Complex>& phi) const {
  if (phi.size() != grid_.size()) throw std::invalid_argument("conductor_charges: bad phi size");
  const std::size_t nx = grid_.nx();
  const std::size_t ny = grid_.ny();
  std::vector<Complex> q(static_cast<std::size_t>(grid_.conductor_count()), Complex{});
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t i = grid_.index(ix, iy);
      const std::int32_t c = grid_.conductor(i);
      if (c == kNoConductor) continue;
      auto flux = [&](std::size_t j, Complex w) {
        if (grid_.conductor(j) == c) return;  // internal face, no net flux
        q[static_cast<std::size_t>(c)] += w * (phi[i] - phi[j]);
      };
      if (ix + 1 < nx) flux(i + 1, w_east_[i]);
      if (ix > 0) flux(i - 1, w_east_[i - 1]);
      if (iy + 1 < ny) flux(i + nx, w_north_[i]);
      if (iy > 0) flux(i - nx, w_north_[i - nx]);
      // Conductors never touch the outer boundary in our geometries; if they
      // did, the boundary face would contribute with the cell's own eps.
      if (ix == 0 || ix + 1 == nx) q[static_cast<std::size_t>(c)] += grid_.eps(i) * phi[i];
      if (iy == 0 || iy + 1 == ny) q[static_cast<std::size_t>(c)] += grid_.eps(i) * phi[i];
    }
  }
  for (auto& v : q) v *= phys::eps0;
  return q;
}

}  // namespace tsvcod::field
