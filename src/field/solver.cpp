#include "field/solver.hpp"

#include <cmath>
#include <stdexcept>

#include "phys/constants.hpp"

namespace tsvcod::field {

namespace {

Complex harmonic_mean(Complex a, Complex b) {
  const Complex s = a + b;
  if (std::abs(s) == 0.0) return Complex{0.0, 0.0};
  return 2.0 * a * b / s;
}

double norm2(const std::vector<Complex>& v) {
  double acc = 0.0;
  for (const auto& c : v) acc += std::norm(c);
  return std::sqrt(acc);
}

Complex dot(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  Complex acc{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::conj(a[i]) * b[i];
  return acc;
}

}  // namespace

FieldProblem::FieldProblem(const Grid& grid) : grid_(grid) {
  const std::size_t n = grid.size();
  free_index_.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    if (grid.conductor(i) == kNoConductor) {
      free_index_[i] = static_cast<std::int64_t>(free_cells_.size());
      free_cells_.push_back(i);
    } else {
      ++dirichlet_count_;
    }
  }
  // Precompute east/north face weights for every cell.
  const std::size_t nx = grid.nx();
  const std::size_t ny = grid.ny();
  w_east_.assign(n, Complex{});
  w_north_.assign(n, Complex{});
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t i = grid.index(ix, iy);
      if (ix + 1 < nx) w_east_[i] = harmonic_mean(grid.eps(i), grid.eps(grid.index(ix + 1, iy)));
      if (iy + 1 < ny) w_north_[i] = harmonic_mean(grid.eps(i), grid.eps(grid.index(ix, iy + 1)));
    }
  }
}

void FieldProblem::apply(const std::vector<Complex>& x, std::vector<Complex>& y) const {
  // y = A x where x is the unknown vector and A couples only free cells
  // (Dirichlet contributions live in the right-hand side).
  const std::size_t nx = grid_.nx();
  const std::size_t ny = grid_.ny();
  for (std::size_t u = 0; u < free_cells_.size(); ++u) {
    const std::size_t i = free_cells_[u];
    const std::size_t ix = i % nx;
    const std::size_t iy = i / nx;
    Complex diag{};
    Complex off{};
    auto face = [&](std::size_t j, Complex w) {
      diag += w;
      const std::int64_t fj = free_index_[j];
      if (fj >= 0) off += w * x[static_cast<std::size_t>(fj)];
    };
    if (ix + 1 < nx) face(i + 1, w_east_[i]);
    if (ix > 0) face(i - 1, w_east_[i - 1]);
    if (iy + 1 < ny) face(i + nx, w_north_[i]);
    if (iy > 0) face(i - nx, w_north_[i - nx]);
    // Domain-boundary faces: Dirichlet 0 with the cell's own permittivity.
    if (ix == 0 || ix + 1 == nx) diag += grid_.eps(i);
    if (iy == 0 || iy + 1 == ny) diag += grid_.eps(i);
    y[u] = diag * x[u] - off;
  }
}

std::vector<Complex> FieldProblem::solve(std::int32_t active, const SolverOptions& opts,
                                         SolveStats* stats) const {
  const std::size_t nu = free_cells_.size();
  const std::size_t nx = grid_.nx();
  const std::size_t ny = grid_.ny();

  // Right-hand side: contributions of Dirichlet neighbours (active conductor
  // at 1 V; everything else at 0 V).
  std::vector<Complex> b(nu, Complex{});
  for (std::size_t u = 0; u < nu; ++u) {
    const std::size_t i = free_cells_[u];
    const std::size_t ix = i % nx;
    const std::size_t iy = i / nx;
    auto dirichlet = [&](std::size_t j, Complex w) {
      if (grid_.conductor(j) == active) b[u] += w;  // phi = 1 there
    };
    if (ix + 1 < nx && free_index_[i + 1] < 0) dirichlet(i + 1, w_east_[i]);
    if (ix > 0 && free_index_[i - 1] < 0) dirichlet(i - 1, w_east_[i - 1]);
    if (iy + 1 < ny && free_index_[i + nx] < 0) dirichlet(i + nx, w_north_[i]);
    if (iy > 0 && free_index_[i - nx] < 0) dirichlet(i - nx, w_north_[i - nx]);
  }

  // Jacobi (diagonal) preconditioning: scale rows by 1/diag.
  std::vector<Complex> diag(nu, Complex{});
  for (std::size_t u = 0; u < nu; ++u) {
    const std::size_t i = free_cells_[u];
    const std::size_t ix = i % nx;
    const std::size_t iy = i / nx;
    Complex d{};
    if (ix + 1 < nx) d += w_east_[i];
    if (ix > 0) d += w_east_[i - 1];
    if (iy + 1 < ny) d += w_north_[i];
    if (iy > 0) d += w_north_[i - nx];
    if (ix == 0 || ix + 1 == nx) d += grid_.eps(i);
    if (iy == 0 || iy + 1 == ny) d += grid_.eps(i);
    diag[u] = d;
  }

  auto apply_scaled = [&](const std::vector<Complex>& x, std::vector<Complex>& y) {
    apply(x, y);
    for (std::size_t u = 0; u < nu; ++u) y[u] /= diag[u];
  };
  std::vector<Complex> bs(nu);
  for (std::size_t u = 0; u < nu; ++u) bs[u] = b[u] / diag[u];

  // BiCGStab on the Jacobi-scaled system.
  std::vector<Complex> x(nu, Complex{});
  std::vector<Complex> r = bs;
  std::vector<Complex> r0 = r;
  std::vector<Complex> p(nu, Complex{}), v(nu, Complex{}), s(nu), t(nu);
  Complex rho{1.0, 0.0}, alpha{1.0, 0.0}, omega{1.0, 0.0};
  const double bnorm = norm2(bs);
  const double r0norm = norm2(r0);
  double res = bnorm > 0.0 ? 1.0 : 0.0;
  int it = 0;
  if (bnorm > 0.0) {
    for (; it < opts.max_iterations; ++it) {
      const Complex rho1 = dot(r0, r);
      if (std::abs(rho1) < 1e-300) break;  // breakdown
      if (it == 0) {
        p = r;
      } else {
        const Complex beta = (rho1 / rho) * (alpha / omega);
        for (std::size_t u = 0; u < nu; ++u) p[u] = r[u] + beta * (p[u] - omega * v[u]);
      }
      rho = rho1;
      apply_scaled(p, v);
      // Breakdown guard: r0 ⟂ v makes alpha blow up to inf/NaN and taint the
      // whole potential vector. Bail out and report non-convergence instead.
      const Complex r0v = dot(r0, v);
      if (std::abs(r0v) <= 1e-30 * r0norm * norm2(v)) break;
      alpha = rho / r0v;
      for (std::size_t u = 0; u < nu; ++u) s[u] = r[u] - alpha * v[u];
      if (norm2(s) / bnorm < opts.tolerance) {
        for (std::size_t u = 0; u < nu; ++u) x[u] += alpha * p[u];
        res = norm2(s) / bnorm;
        ++it;
        break;
      }
      apply_scaled(s, t);
      const Complex tt = dot(t, t);
      if (std::abs(tt) < 1e-300) break;
      omega = dot(t, s) / tt;
      for (std::size_t u = 0; u < nu; ++u) {
        x[u] += alpha * p[u] + omega * s[u];
        r[u] = s[u] - omega * t[u];
      }
      res = norm2(r) / bnorm;
      if (res < opts.tolerance) {
        ++it;
        break;
      }
    }
  }
  if (stats) {
    stats->iterations = it;
    stats->residual = res;
    // isfinite: a residual poisoned by overflow must never count as converged.
    stats->converged = std::isfinite(res) && res < opts.tolerance;
  }

  // Scatter to the full grid, Dirichlet values included.
  std::vector<Complex> phi(grid_.size(), Complex{});
  for (std::size_t u = 0; u < nu; ++u) phi[free_cells_[u]] = x[u];
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    if (grid_.conductor(i) == active) phi[i] = Complex{1.0, 0.0};
  }
  return phi;
}

std::vector<Complex> FieldProblem::conductor_charges(const std::vector<Complex>& phi) const {
  if (phi.size() != grid_.size()) throw std::invalid_argument("conductor_charges: bad phi size");
  const std::size_t nx = grid_.nx();
  const std::size_t ny = grid_.ny();
  std::vector<Complex> q(static_cast<std::size_t>(grid_.conductor_count()), Complex{});
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t i = grid_.index(ix, iy);
      const std::int32_t c = grid_.conductor(i);
      if (c == kNoConductor) continue;
      auto flux = [&](std::size_t j, Complex w) {
        if (grid_.conductor(j) == c) return;  // internal face, no net flux
        q[static_cast<std::size_t>(c)] += w * (phi[i] - phi[j]);
      };
      if (ix + 1 < nx) flux(i + 1, w_east_[i]);
      if (ix > 0) flux(i - 1, w_east_[i - 1]);
      if (iy + 1 < ny) flux(i + nx, w_north_[i]);
      if (iy > 0) flux(i - nx, w_north_[i - nx]);
      // Conductors never touch the outer boundary in our geometries; if they
      // did, the boundary face would contribute with the cell's own eps.
      if (ix == 0 || ix + 1 == nx) q[static_cast<std::size_t>(c)] += grid_.eps(i) * phi[i];
      if (iy == 0 || iy + 1 == ny) q[static_cast<std::size_t>(c)] += grid_.eps(i) * phi[i];
    }
  }
  for (auto& v : q) v *= phys::eps0;
  return q;
}

}  // namespace tsvcod::field
