#pragma once
// Geometric multigrid V-cycle for the variable-coefficient complex Laplace
// problem on a uniform Grid, used as a preconditioner around BiCGStab
// (see solver.hpp).
//
// The hierarchy coarsens the *cell* grid 2x per level (ceil division, so odd
// sizes are handled). A coarse cell is Dirichlet if any of its fine children
// is Dirichlet — conductors never shrink under coarsening, which keeps the
// coarse problems well-posed. Coefficients restrict by averaging the child
// permittivities; coarse face weights are then rebuilt as harmonic means of
// the coarse cell permittivities, exactly the fine-level finite-volume
// discretization (the dimensionless 5-point operator is h-free in 2-D, so no
// extra scaling enters). Residuals restrict by summing over free children
// (the adjoint of piecewise-constant prolongation, which also carries the
// h^2 factor between rediscretized levels).
//
// Smoothing is red-black Gauss-Seidel (deterministic fixed sweep order) or
// damped Jacobi; the coarsest level is a dense complex LU solve. With a zero
// initial guess per level the V-cycle is one fixed linear operator, which
// preconditioned BiCGStab requires. Both smoothers and the residual run
// through the shared src/simd runtime dispatch: AVX2/AVX-512 stencil kernels
// cover interior rows (relying on x == 0 at Dirichlet cells, which the
// V-cycle maintains), scalar code covers boundaries and other hosts; every
// dispatch level computes the same linear operator up to eps-scale rounding.
//
// Thread-safety: `v_cycle` is const and re-entrant given a caller-owned
// Workspace, so the per-conductor extraction solves can run concurrently on
// one shared hierarchy.

#include <cstdint>
#include <vector>

#include "field/grid.hpp"

namespace tsvcod::field {

struct MultigridOptions {
  enum class Smoother : std::uint8_t { red_black_gs, damped_jacobi };
  int pre_smooth = 1;               ///< smoothing sweeps before coarse correction
  int post_smooth = 1;              ///< smoothing sweeps after coarse correction
  int max_levels = 24;              ///< hierarchy depth cap
  std::size_t coarsest_unknowns = 256;  ///< stop coarsening at/below this many free cells
  Smoother smoother = Smoother::red_black_gs;
  double jacobi_damping = 0.7;      ///< only for Smoother::damped_jacobi
};

class Multigrid {
 public:
  /// True when a hierarchy is worth building for a fine grid of `nx` x `ny`
  /// cells with `free_count` non-Dirichlet cells; callers fall back to plain
  /// Jacobi preconditioning otherwise.
  static bool viable(std::size_t nx, std::size_t ny, std::size_t free_count,
                     const MultigridOptions& opts);

  /// Build the hierarchy from the fine level: `dirichlet[i] != 0` marks
  /// pinned cells (conductors; the outer boundary is handled by the operator
  /// itself), `eps` the complex cell permittivities.
  Multigrid(std::size_t nx, std::size_t ny, const std::vector<std::uint8_t>& dirichlet,
            const std::vector<Complex>& eps, const MultigridOptions& opts);

  /// Recompute every level's coefficients (and the coarse factorization) for
  /// new fine-level permittivities. The Dirichlet structure must be the one
  /// the hierarchy was built with — extraction reuse repaints dielectrics
  /// only, never conductors.
  void update_coefficients(const std::vector<Complex>& eps);

  /// Per-solve scratch vectors (one correction/residual/rhs triple per
  /// level). Create one per concurrent solve; reuse across V-cycles.
  struct Workspace {
    std::vector<std::vector<Complex>> x, r, scratch;
  };
  Workspace make_workspace() const;

  /// z ~= A^-1 r for the homogeneous-Dirichlet fine problem: one V-cycle
  /// from a zero initial guess. `r` and `z` are full-grid (nx*ny) vectors;
  /// Dirichlet entries of `r` are ignored and come back zero in `z`.
  void v_cycle(const std::vector<Complex>& r, std::vector<Complex>& z, Workspace& ws) const;

  /// Apply `sweeps` passes of the configured smoother to the finest level,
  /// in place on `x` (full-grid vectors; `scratch` is Jacobi workspace).
  /// Dirichlet entries of `x` are zeroed on entry — the invariant the SIMD
  /// stencil kernels rely on, which v_cycle maintains internally. Exposed
  /// for the dispatch-equality tests and the smoother benchmarks.
  void apply_smoother(const std::vector<Complex>& rhs, std::vector<Complex>& x,
                      std::vector<Complex>& scratch, int sweeps) const;
  /// Finest-level residual out = rhs - A x (Dirichlet rows come back zero).
  /// Dirichlet entries of `x` must already be zero.
  void apply_residual(const std::vector<Complex>& rhs, const std::vector<Complex>& x,
                      std::vector<Complex>& out) const;

  std::size_t levels() const { return levels_.size(); }
  std::size_t coarsest_free_count() const { return levels_.back().free_count; }

 private:
  struct Level {
    std::size_t nx = 0, ny = 0;
    std::vector<std::uint8_t> dirichlet;
    std::vector<Complex> eps;      // cell coefficients (source for the next level)
    std::vector<Complex> w_east;   // harmonic-mean face weights
    std::vector<Complex> w_north;
    std::vector<Complex> diag;     // assembled operator diagonal (free cells)
    std::vector<Complex> inv_diag;
    std::size_t free_count = 0;
  };

  void rebuild_level_coefficients(Level& lv);
  void coarsen_eps(const Level& fine, Level& coarse) const;
  void factor_coarsest();
  void smooth(const Level& lv, const std::vector<Complex>& rhs, std::vector<Complex>& x,
              std::vector<Complex>& scratch, int sweeps) const;
  void residual(const Level& lv, const std::vector<Complex>& rhs,
                const std::vector<Complex>& x, std::vector<Complex>& out) const;
  void solve_coarsest(const std::vector<Complex>& rhs, std::vector<Complex>& x,
                      std::vector<Complex>& scratch) const;

  MultigridOptions opts_;
  std::vector<Level> levels_;
  // Dense LU (partial pivoting) of the coarsest-level operator over its free
  // cells, row-major n x n; empty when the coarsest level is still too large
  // and is smoothed instead (degenerate geometries only).
  std::vector<Complex> lu_;
  std::vector<int> pivot_;
  std::vector<std::size_t> coarse_free_cells_;   // cell index per unknown
  std::vector<std::int64_t> coarse_free_index_;  // cell -> unknown (-1 = Dirichlet)
};

}  // namespace tsvcod::field
