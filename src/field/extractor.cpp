#include "field/extractor.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "opt/parallel.hpp"
#include "phys/constants.hpp"
#include "phys/depletion.hpp"

namespace tsvcod::field {

Grid build_array_grid(const phys::TsvArrayGeometry& geom, std::span<const double> probabilities,
                      const ExtractionOptions& opts) {
  geom.validate();
  if (probabilities.size() != geom.count()) {
    throw std::invalid_argument("build_array_grid: one probability per TSV required");
  }
  const double margin = opts.margin > 0.0 ? opts.margin : 3.0 * geom.pitch;
  const double span_x = static_cast<double>(geom.cols - 1) * geom.pitch;
  const double span_y = static_cast<double>(geom.rows - 1) * geom.pitch;
  Grid grid(span_x + 2.0 * margin, span_y + 2.0 * margin, opts.cell);

  const double omega = 2.0 * phys::pi * opts.frequency;
  const Complex eps_substrate{phys::eps_r_si,
                              -geom.mos.substrate_sigma / (omega * phys::eps0)};
  const Complex eps_oxide{phys::eps_r_sio2, 0.0};
  const Complex eps_depleted{phys::eps_r_si, 0.0};
  grid.fill(eps_substrate);

  const double r = geom.radius;
  const double t_ox = geom.oxide_thickness();
  for (std::size_t i = 0; i < geom.count(); ++i) {
    const auto p = geom.position(i);
    const double cx = p.x + margin;
    const double cy = p.y + margin;
    const double w = phys::depletion_width_for_probability(r, t_ox, probabilities[i], geom.mos);
    if (w > 0.0) grid.paint_annulus(cx, cy, r + t_ox, r + t_ox + w, eps_depleted);
    grid.paint_annulus(cx, cy, r, r + t_ox, eps_oxide);
    // The conductor cells keep an oxide permittivity so that the metal/liner
    // face weight equals the liner's (the solver uses harmonic face means).
    grid.paint_disk(cx, cy, r, eps_oxide);
    grid.paint_disk(cx, cy, r, eps_oxide, static_cast<std::int32_t>(i));
  }
  return grid;
}

CapacitanceResult extract_capacitance(const phys::TsvArrayGeometry& geom,
                                      std::span<const double> probabilities,
                                      const ExtractionOptions& opts) {
  const Grid grid = build_array_grid(geom, probabilities, opts);
  const FieldProblem problem(grid);
  const std::size_t n = geom.count();

  phys::Matrix q_re(n, n);
  CapacitanceResult out;
  out.stats.resize(n);
  // The solves are independent (FieldProblem::solve is const and each item
  // writes a disjoint column of q_re / entry of stats), so the shared pool
  // can run them in any order without affecting the result.
  opt::parallel_for(n, opts.threads, [&](std::size_t k) {
    const auto phi = problem.solve(static_cast<std::int32_t>(k), opts.solver, &out.stats[k]);
    const auto q = problem.conductor_charges(phi);
    for (std::size_t m = 0; m < n; ++m) q_re(m, k) = q[m].real();
  });

  if (!opts.allow_nonconverged && !out.all_converged()) {
    std::ostringstream msg;
    msg << "extract_capacitance: field solve did not converge for conductor(s)";
    for (std::size_t k = 0; k < n; ++k) {
      if (!out.stats[k].converged) {
        msg << " " << k << " (res " << out.stats[k].residual << " after "
            << out.stats[k].iterations << " it)";
      }
    }
    msg << "; refine ExtractionOptions::solver or set allow_nonconverged";
    throw ConvergenceError(msg.str());
  }

  // Symmetrize (discretization leaves a small asymmetry) and scale by length.
  out.maxwell = phys::Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out.maxwell(i, j) = 0.5 * (q_re(i, j) + q_re(j, i)) * geom.length;
    }
  }

  // Maxwell form -> paper form: coupling C_ij = -M_ij, ground C_ii = row sum.
  out.paper = phys::Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row_sum += out.maxwell(i, j);
      if (i != j) out.paper(i, j) = std::max(0.0, -out.maxwell(i, j));
    }
    out.paper(i, i) = std::max(0.0, row_sum);
  }
  return out;
}

}  // namespace tsvcod::field
