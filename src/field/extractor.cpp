#include "field/extractor.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "opt/parallel.hpp"
#include "phys/constants.hpp"
#include "phys/depletion.hpp"

namespace tsvcod::field {

namespace {

std::vector<double> depletion_widths(const phys::TsvArrayGeometry& geom,
                                     std::span<const double> probabilities) {
  std::vector<double> w(geom.count());
  const double t_ox = geom.oxide_thickness();
  for (std::size_t i = 0; i < geom.count(); ++i) {
    w[i] = phys::depletion_width_for_probability(geom.radius, t_ox, probabilities[i], geom.mos);
  }
  return w;
}

/// Rasterize every TSV into `grid` (substrate fill + per-TSV depletion
/// annulus, oxide liner, conductor core). Shared by the one-shot and the
/// reusing extraction paths so both paint bit-identical grids.
void paint_array(Grid& grid, const phys::TsvArrayGeometry& geom, std::span<const double> widths,
                 const ExtractionOptions& opts, double margin) {
  const double omega = 2.0 * phys::pi * opts.frequency;
  const Complex eps_substrate{phys::eps_r_si, -geom.mos.substrate_sigma / (omega * phys::eps0)};
  const Complex eps_oxide{phys::eps_r_sio2, 0.0};
  const Complex eps_depleted{phys::eps_r_si, 0.0};
  grid.fill(eps_substrate);

  const double r = geom.radius;
  const double t_ox = geom.oxide_thickness();
  for (std::size_t i = 0; i < geom.count(); ++i) {
    const auto p = geom.position(i);
    const double cx = p.x + margin;
    const double cy = p.y + margin;
    if (widths[i] > 0.0) grid.paint_annulus(cx, cy, r + t_ox, r + t_ox + widths[i], eps_depleted);
    grid.paint_annulus(cx, cy, r, r + t_ox, eps_oxide);
    // The conductor cells keep an oxide permittivity so that the metal/liner
    // face weight equals the liner's (the solver uses harmonic face means).
    grid.paint_disk(cx, cy, r, eps_oxide);
    grid.paint_disk(cx, cy, r, eps_oxide, static_cast<std::int32_t>(i));
  }
}

double resolved_margin(const phys::TsvArrayGeometry& geom, const ExtractionOptions& opts) {
  return opts.margin > 0.0 ? opts.margin : 3.0 * geom.pitch;
}

Grid make_array_grid(const phys::TsvArrayGeometry& geom, const ExtractionOptions& opts) {
  geom.validate();
  const double margin = resolved_margin(geom, opts);
  const double span_x = static_cast<double>(geom.cols - 1) * geom.pitch;
  const double span_y = static_cast<double>(geom.rows - 1) * geom.pitch;
  return Grid(span_x + 2.0 * margin, span_y + 2.0 * margin, opts.cell);
}

void validate_probabilities(const phys::TsvArrayGeometry& geom,
                            std::span<const double> probabilities) {
  geom.validate();
  if (probabilities.size() != geom.count()) {
    throw std::invalid_argument("field extraction: one probability per TSV required");
  }
}

/// Charges (one solve per conductor, already done) -> symmetrized Maxwell and
/// paper-form matrices.
void assemble_matrices(const phys::Matrix& q_re, const phys::TsvArrayGeometry& geom,
                       CapacitanceResult& out) {
  const std::size_t n = geom.count();
  // Symmetrize (discretization leaves a small asymmetry) and scale by length.
  out.maxwell = phys::Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out.maxwell(i, j) = 0.5 * (q_re(i, j) + q_re(j, i)) * geom.length;
    }
  }

  // Maxwell form -> paper form: coupling C_ij = -M_ij, ground C_ii = row sum.
  out.paper = phys::Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row_sum += out.maxwell(i, j);
      if (i != j) out.paper(i, j) = std::max(0.0, -out.maxwell(i, j));
    }
    out.paper(i, i) = std::max(0.0, row_sum);
  }
}

void throw_if_nonconverged(const CapacitanceResult& out) {
  std::ostringstream msg;
  msg << "extract_capacitance: field solve did not converge for conductor(s)";
  for (std::size_t k = 0; k < out.stats.size(); ++k) {
    if (!out.stats[k].converged) {
      msg << " " << k << " (res " << out.stats[k].residual << " after " << out.stats[k].iterations
          << " it)";
    }
  }
  msg << "; refine ExtractionOptions::solver or set allow_nonconverged";
  throw ConvergenceError(msg.str());
}

}  // namespace

Grid build_array_grid(const phys::TsvArrayGeometry& geom, std::span<const double> probabilities,
                      const ExtractionOptions& opts) {
  validate_probabilities(geom, probabilities);
  Grid grid = make_array_grid(geom, opts);
  paint_array(grid, geom, depletion_widths(geom, probabilities), opts, resolved_margin(geom, opts));
  return grid;
}

CapacitanceResult extract_capacitance(const phys::TsvArrayGeometry& geom,
                                      std::span<const double> probabilities,
                                      const ExtractionOptions& opts) {
  CapacitanceExtractor extractor(geom, opts);
  return extractor.extract(probabilities);
}

CapacitanceExtractor::CapacitanceExtractor(const phys::TsvArrayGeometry& geom,
                                           const ExtractionOptions& opts)
    : geom_(geom), opts_(opts), grid_(make_array_grid(geom, opts)) {}

void CapacitanceExtractor::repaint(std::span<const double> probabilities) {
  auto widths = depletion_widths(geom_, probabilities);
  if (problem_ && widths == last_widths_) {
    // Identical rasterization: the cached grid/problem is reused as-is.
    obs::metric_add("field.extract.repaint_skipped");
    return;
  }
  obs::Span span(problem_ ? "field.extract.repaint" : "field.extract.setup");
  paint_array(grid_, geom_, widths, opts_, resolved_margin(geom_, opts_));
  last_widths_ = std::move(widths);
  if (!problem_) {
    problem_ = std::make_unique<FieldProblem>(grid_);
  } else {
    // Conductor layout is probability-independent: only dielectric annuli
    // moved, so the cached indexing/hierarchy stays and coefficients refresh.
    problem_->update_coefficients();
    obs::metric_add("field.extract.reuse_repaints");
  }
}

CapacitanceResult CapacitanceExtractor::extract(std::span<const double> probabilities) {
  obs::Span span("field.extract");
  validate_probabilities(geom_, probabilities);
  repaint(probabilities);

  const std::size_t n = geom_.count();
  if (last_phi_.empty()) last_phi_.resize(n);
  std::size_t warm = 0;
  for (const auto& phi : last_phi_) {
    if (!phi.empty()) ++warm;
  }

  phys::Matrix q_re(n, n);
  CapacitanceResult out;
  out.stats.resize(n);
  // The solves are independent (FieldProblem::solve is const and each item
  // writes a disjoint column of q_re / entry of stats or its own warm-start
  // slot), so the shared pool can run them in any order without affecting
  // the result. Warm starts come from the previous extract() call — a
  // deterministic input at every thread count.
  opt::parallel_for(n, opts_.threads, [&](std::size_t k) {
    auto phi = problem_->solve(static_cast<std::int32_t>(k), opts_.solver,
                               std::span<const Complex>(last_phi_[k]), &out.stats[k]);
    const auto q = problem_->conductor_charges(phi);
    for (std::size_t m = 0; m < n; ++m) q_re(m, k) = q[m].real();
    last_phi_[k] = std::move(phi);
  });
  long long point_iterations = 0;
  for (const auto& s : out.stats) point_iterations += s.iterations;
  total_iterations_ += point_iterations;

  // Recorded from this serial section (logical order), never from workers.
  if (obs::metrics_enabled()) {
    obs::metric_add("field.extract.count");
    obs::metric_add("field.extract.solves", n);
    obs::metric_add("field.extract.warm_started_solves", warm);
    obs::metric_add("field.extract.iterations_total",
                    static_cast<std::uint64_t>(point_iterations));
    obs::metric_set("field.extract.last_point_iterations",
                    static_cast<double>(point_iterations));
  }
  if (span.traced()) {
    span.set_args("\"conductors\":" + std::to_string(n) + ",\"warm_started\":" +
                  std::to_string(warm) + ",\"iterations\":" + std::to_string(point_iterations));
  }
  obs::profile_work("solves", n);
  obs::profile_work("warm_started", warm);

  if (!opts_.allow_nonconverged && !out.all_converged()) throw_if_nonconverged(out);

  assemble_matrices(q_re, geom_, out);
  return out;
}

}  // namespace tsvcod::field
