#include "field/export.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace tsvcod::field {

void write_pgm(std::ostream& os, std::size_t width, std::size_t height,
               const std::vector<double>& values) {
  if (values.size() != width * height) throw std::invalid_argument("write_pgm: size mismatch");
  double lo = 1e300;
  double hi = -1e300;
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double scale = hi > lo ? 255.0 / (hi - lo) : 0.0;
  os << "P2\n" << width << ' ' << height << "\n255\n";
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const double v = values[y * width + x];
      os << static_cast<int>(std::lround((v - lo) * scale));
      os << (x + 1 == width ? '\n' : ' ');
    }
  }
}

void write_pgm(const std::string& path, std::size_t width, std::size_t height,
               const std::vector<double>& values) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_pgm: cannot open " + path);
  write_pgm(os, width, height, values);
}

std::vector<double> permittivity_map(const Grid& grid) {
  std::vector<double> out(grid.size());
  double eps_max = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) eps_max = std::max(eps_max, std::abs(grid.eps(i)));
  for (std::size_t i = 0; i < grid.size(); ++i) {
    out[i] = grid.conductor(i) != kNoConductor ? 1.5 * eps_max : std::abs(grid.eps(i));
  }
  return out;
}

std::vector<double> potential_map(const Grid& grid, const std::vector<Complex>& phi) {
  if (phi.size() != grid.size()) throw std::invalid_argument("potential_map: size mismatch");
  std::vector<double> out(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) out[i] = phi[i].real();
  return out;
}

}  // namespace tsvcod::field
