#pragma once
// Matrix-free complex BiCGStab solver for the variable-coefficient Laplace
// problem  div( eps* grad phi ) = 0  on a Grid.
//
// Conductor cells and the outer boundary are Dirichlet nodes; everything else
// is a free unknown. Face permittivities are harmonic means of the two
// adjacent cells, which is the standard conservative finite-volume choice for
// piecewise-constant coefficients.

#include <vector>

#include "field/grid.hpp"

namespace tsvcod::field {

struct SolverOptions {
  double tolerance = 1e-9;  ///< relative residual target
  int max_iterations = 50000;
};

struct SolveStats {
  int iterations = 0;
  double residual = 0.0;  ///< final relative residual
  bool converged = false;
};

class FieldProblem {
 public:
  explicit FieldProblem(const Grid& grid);

  /// Solve with conductor `active` held at 1 V, every other conductor and the
  /// outer boundary at 0 V. Returns the full-grid potential (Dirichlet cells
  /// included) and fills `stats`.
  std::vector<Complex> solve(std::int32_t active, const SolverOptions& opts,
                             SolveStats* stats = nullptr) const;

  /// Complex charge per unit length [F/m * V-normalized] on each conductor
  /// for a given full-grid potential. Multiply by eps0 (done here) so the
  /// result is directly in farads per metre.
  std::vector<Complex> conductor_charges(const std::vector<Complex>& phi) const;

  std::size_t unknowns() const { return free_index_.size() - dirichlet_count_; }

 private:
  void apply(const std::vector<Complex>& x, std::vector<Complex>& y) const;

  const Grid& grid_;
  // For each cell: index into the unknown vector, or -1 for Dirichlet cells.
  std::vector<std::int64_t> free_index_;
  std::vector<std::size_t> free_cells_;  // cell index of each unknown
  std::size_t dirichlet_count_ = 0;
  // Face weights (relative permittivity harmonic means), east and north per cell.
  std::vector<Complex> w_east_;
  std::vector<Complex> w_north_;
};

}  // namespace tsvcod::field
