#pragma once
// Matrix-free complex BiCGStab solver for the variable-coefficient Laplace
// problem  div( eps* grad phi ) = 0  on a Grid.
//
// Conductor cells and the outer boundary are Dirichlet nodes; everything else
// is a free unknown. Face permittivities are harmonic means of the two
// adjacent cells, which is the standard conservative finite-volume choice for
// piecewise-constant coefficients.
//
// BiCGStab is preconditioned either by the Jacobi diagonal or (default) by a
// geometric multigrid V-cycle (multigrid.hpp), which keeps the iteration
// count essentially flat as the grid is refined. Grids too small to coarsen
// fall back to Jacobi automatically; `SolveStats::preconditioner` reports
// what actually ran.

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "field/grid.hpp"
#include "field/multigrid.hpp"

namespace tsvcod::field {

enum class Preconditioner : std::uint8_t {
  jacobi,     ///< diagonal scaling (the pre-multigrid behaviour)
  multigrid,  ///< GMG V-cycle, Jacobi fallback on grids too small to coarsen
};

/// Process-wide default: the TSVCOD_PRECONDITIONER environment variable
/// ("jacobi" | "multigrid"/"mg") if set, else multigrid.
Preconditioner default_preconditioner();

struct SolverOptions {
  double tolerance = 1e-9;  ///< relative (preconditioned) residual target
  int max_iterations = 50000;
  Preconditioner preconditioner = default_preconditioner();
  MultigridOptions multigrid{};
};

struct SolveStats {
  int iterations = 0;
  double residual = 0.0;  ///< final relative residual
  bool converged = false;
  /// True when the right-hand side was identically zero (e.g. the active
  /// conductor is fully shielded or absent): the exact solution is zero, no
  /// iterations run, and `converged` is asserted with `residual == 0`.
  bool trivial = false;
  /// The preconditioner that actually ran (multigrid requests report jacobi
  /// here when the grid was too small to coarsen).
  Preconditioner preconditioner = Preconditioner::jacobi;
};

class FieldProblem {
 public:
  explicit FieldProblem(const Grid& grid);

  /// Solve with conductor `active` held at 1 V, every other conductor and the
  /// outer boundary at 0 V. Returns the full-grid potential (Dirichlet cells
  /// included) and fills `stats`.
  std::vector<Complex> solve(std::int32_t active, const SolverOptions& opts,
                             SolveStats* stats = nullptr) const;

  /// Warm-started solve: `phi0` is a full-grid potential from a previous,
  /// nearby solve (same grid dimensions and conductor layout; typically the
  /// previous point of a probability sweep). Empty `phi0` = cold start.
  /// Warm starts change the iteration count, never the converged answer
  /// beyond the solver tolerance.
  std::vector<Complex> solve(std::int32_t active, const SolverOptions& opts,
                             std::span<const Complex> phi0, SolveStats* stats) const;

  /// Complex charge per unit length [F/m * V-normalized] on each conductor
  /// for a given full-grid potential. Multiply by eps0 (done here) so the
  /// result is directly in farads per metre.
  std::vector<Complex> conductor_charges(const std::vector<Complex>& phi) const;

  /// y = A x over the free unknowns (packed, see `unknowns()`): the 5-point
  /// variable-coefficient operator with Dirichlet couplings folded into the
  /// right-hand side. Public for golden tests and diagnostics.
  void apply(const std::vector<Complex>& x, std::vector<Complex>& y) const;

  /// Right-hand side of A x = b with conductor `active` at 1 V and all other
  /// Dirichlet nodes at 0 V (packed over the free unknowns). Together with
  /// apply() this lets a reference solver (e.g. dense LU in the differential
  /// harness) reproduce exactly the system the iterative solve sees.
  std::vector<Complex> rhs(std::int32_t active) const;

  /// Re-derive the face weights (and any built multigrid hierarchy) after
  /// the referenced Grid's permittivities changed in place. The conductor
  /// layout must be unchanged — extraction reuse repaints dielectrics only.
  void update_coefficients();

  std::size_t unknowns() const { return free_index_.size() - dirichlet_count_; }

  /// Cell index of each packed unknown (the inverse of the packing used by
  /// apply()/rhs()); lets external reference solvers compare a packed solution
  /// against the full-grid potential returned by solve().
  const std::vector<std::size_t>& free_cells() const { return free_cells_; }

 private:
  /// The hierarchy for multigrid solves, built on first use with the options
  /// of the first multigrid caller (concurrent per-conductor solves share
  /// identical options). Returns nullptr when the grid is not viable.
  const Multigrid* multigrid_for(const MultigridOptions& opts) const;

  const Grid& grid_;
  // For each cell: index into the unknown vector, or -1 for Dirichlet cells.
  std::vector<std::int64_t> free_index_;
  std::vector<std::size_t> free_cells_;  // cell index of each unknown
  std::size_t dirichlet_count_ = 0;
  // Face weights (relative permittivity harmonic means), east and north per cell.
  std::vector<Complex> w_east_;
  std::vector<Complex> w_north_;
  mutable std::mutex mg_mutex_;
  mutable std::unique_ptr<Multigrid> mg_;
  mutable bool mg_attempted_ = false;
};

}  // namespace tsvcod::field
