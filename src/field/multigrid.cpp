#include "field/multigrid.hpp"

#include <cmath>
#include <stdexcept>

namespace tsvcod::field {

namespace {

Complex harmonic_mean(Complex a, Complex b) {
  const Complex s = a + b;
  if (std::abs(s) == 0.0) return Complex{0.0, 0.0};
  return 2.0 * a * b / s;
}

// Degenerate-geometry escape hatch: if coarsening stalls (max_levels or a
// sliver dimension) while the level is still too big to factor densely,
// replace the direct solve with extra smoothing sweeps.
constexpr std::size_t kMaxDenseUnknowns = 4096;

}  // namespace

bool Multigrid::viable(std::size_t nx, std::size_t ny, std::size_t free_count,
                       const MultigridOptions& opts) {
  return nx >= 8 && ny >= 8 && opts.max_levels >= 2 && free_count > opts.coarsest_unknowns;
}

Multigrid::Multigrid(std::size_t nx, std::size_t ny, const std::vector<std::uint8_t>& dirichlet,
                     const std::vector<Complex>& eps, const MultigridOptions& opts)
    : opts_(opts) {
  if (dirichlet.size() != nx * ny || eps.size() != nx * ny) {
    throw std::invalid_argument("Multigrid: dirichlet/eps size must be nx*ny");
  }
  Level fine;
  fine.nx = nx;
  fine.ny = ny;
  fine.dirichlet = dirichlet;
  fine.eps = eps;
  fine.free_count = 0;
  for (const auto d : dirichlet) fine.free_count += d ? 0u : 1u;
  levels_.push_back(std::move(fine));

  // Coarsen structure (Dirichlet masks) until the level is small enough for
  // a direct solve or cannot shrink meaningfully any further.
  while (static_cast<int>(levels_.size()) < opts_.max_levels) {
    const Level& f = levels_.back();
    if (f.free_count <= opts_.coarsest_unknowns) break;
    if (f.nx < 8 || f.ny < 8) break;
    Level c;
    c.nx = (f.nx + 1) / 2;
    c.ny = (f.ny + 1) / 2;
    c.dirichlet.assign(c.nx * c.ny, 0);
    for (std::size_t iy = 0; iy < f.ny; ++iy) {
      for (std::size_t ix = 0; ix < f.nx; ++ix) {
        if (f.dirichlet[iy * f.nx + ix]) c.dirichlet[(iy / 2) * c.nx + ix / 2] = 1;
      }
    }
    c.free_count = 0;
    for (const auto d : c.dirichlet) c.free_count += d ? 0u : 1u;
    levels_.push_back(std::move(c));
  }

  // Coarsest-level unknown numbering (for the dense factorization).
  const Level& last = levels_.back();
  coarse_free_index_.assign(last.nx * last.ny, -1);
  for (std::size_t i = 0; i < last.dirichlet.size(); ++i) {
    if (!last.dirichlet[i]) {
      coarse_free_index_[i] = static_cast<std::int64_t>(coarse_free_cells_.size());
      coarse_free_cells_.push_back(i);
    }
  }

  update_coefficients(eps);
}

void Multigrid::update_coefficients(const std::vector<Complex>& eps) {
  if (eps.size() != levels_.front().nx * levels_.front().ny) {
    throw std::invalid_argument("Multigrid::update_coefficients: eps size mismatch");
  }
  levels_.front().eps = eps;
  rebuild_level_coefficients(levels_.front());
  for (std::size_t l = 1; l < levels_.size(); ++l) {
    coarsen_eps(levels_[l - 1], levels_[l]);
    rebuild_level_coefficients(levels_[l]);
  }
  factor_coarsest();
}

void Multigrid::coarsen_eps(const Level& fine, Level& coarse) const {
  coarse.eps.assign(coarse.nx * coarse.ny, Complex{});
  std::vector<int> count(coarse.nx * coarse.ny, 0);
  for (std::size_t iy = 0; iy < fine.ny; ++iy) {
    for (std::size_t ix = 0; ix < fine.nx; ++ix) {
      const std::size_t c = (iy / 2) * coarse.nx + ix / 2;
      coarse.eps[c] += fine.eps[iy * fine.nx + ix];
      ++count[c];
    }
  }
  for (std::size_t c = 0; c < coarse.eps.size(); ++c) {
    coarse.eps[c] /= static_cast<double>(count[c]);
  }
}

void Multigrid::rebuild_level_coefficients(Level& lv) {
  const std::size_t nx = lv.nx;
  const std::size_t ny = lv.ny;
  const std::size_t n = nx * ny;
  lv.w_east.assign(n, Complex{});
  lv.w_north.assign(n, Complex{});
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t i = iy * nx + ix;
      if (ix + 1 < nx) lv.w_east[i] = harmonic_mean(lv.eps[i], lv.eps[i + 1]);
      if (iy + 1 < ny) lv.w_north[i] = harmonic_mean(lv.eps[i], lv.eps[i + nx]);
    }
  }
  lv.diag.assign(n, Complex{});
  lv.inv_diag.assign(n, Complex{});
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t i = iy * nx + ix;
      if (lv.dirichlet[i]) continue;
      Complex d{};
      if (ix + 1 < nx) d += lv.w_east[i];
      if (ix > 0) d += lv.w_east[i - 1];
      if (iy + 1 < ny) d += lv.w_north[i];
      if (iy > 0) d += lv.w_north[i - nx];
      // Domain boundary: Dirichlet 0 with the cell's own permittivity, the
      // same convention as FieldProblem::apply.
      if (ix == 0 || ix + 1 == nx) d += lv.eps[i];
      if (iy == 0 || iy + 1 == ny) d += lv.eps[i];
      lv.diag[i] = d;
      lv.inv_diag[i] = std::abs(d) > 0.0 ? 1.0 / d : Complex{};
    }
  }
}

void Multigrid::factor_coarsest() {
  const std::size_t n = coarse_free_cells_.size();
  if (n == 0 || n > kMaxDenseUnknowns) {
    lu_.clear();
    pivot_.clear();
    return;
  }
  const Level& lv = levels_.back();
  const std::size_t nx = lv.nx;
  lu_.assign(n * n, Complex{});
  for (std::size_t row = 0; row < n; ++row) {
    const std::size_t i = coarse_free_cells_[row];
    const std::size_t ix = i % nx;
    const std::size_t iy = i / nx;
    lu_[row * n + row] = lv.diag[i];
    auto couple = [&](std::size_t j, Complex w) {
      const std::int64_t col = coarse_free_index_[j];
      if (col >= 0) lu_[row * n + static_cast<std::size_t>(col)] -= w;
    };
    if (ix + 1 < nx) couple(i + 1, lv.w_east[i]);
    if (ix > 0) couple(i - 1, lv.w_east[i - 1]);
    if (iy + 1 < lv.ny) couple(i + nx, lv.w_north[i]);
    if (iy > 0) couple(i - nx, lv.w_north[i - nx]);
  }
  // In-place LU with partial pivoting.
  pivot_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t best = k;
    double best_mag = std::abs(lu_[k * n + k]);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_[r * n + k]);
      if (mag > best_mag) {
        best_mag = mag;
        best = r;
      }
    }
    pivot_[k] = static_cast<int>(best);
    if (best != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_[k * n + c], lu_[best * n + c]);
    }
    const Complex pv = lu_[k * n + k];
    if (std::abs(pv) == 0.0) continue;  // singular row: leave zero, solve skips it
    for (std::size_t r = k + 1; r < n; ++r) {
      const Complex m = lu_[r * n + k] / pv;
      lu_[r * n + k] = m;
      if (std::abs(m) == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_[r * n + c] -= m * lu_[k * n + c];
    }
  }
}

Multigrid::Workspace Multigrid::make_workspace() const {
  Workspace ws;
  ws.x.resize(levels_.size());
  ws.r.resize(levels_.size());
  ws.scratch.resize(levels_.size());
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const std::size_t n = levels_[l].nx * levels_[l].ny;
    ws.x[l].assign(n, Complex{});
    ws.r[l].assign(n, Complex{});
    ws.scratch[l].assign(n, Complex{});
  }
  return ws;
}

void Multigrid::residual(const Level& lv, const std::vector<Complex>& rhs,
                         const std::vector<Complex>& x, std::vector<Complex>& out) const {
  const std::size_t nx = lv.nx;
  const std::size_t ny = lv.ny;
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t i = iy * nx + ix;
      if (lv.dirichlet[i]) {
        out[i] = Complex{};
        continue;
      }
      Complex off{};
      auto face = [&](std::size_t j, Complex w) {
        if (!lv.dirichlet[j]) off += w * x[j];
      };
      if (ix + 1 < nx) face(i + 1, lv.w_east[i]);
      if (ix > 0) face(i - 1, lv.w_east[i - 1]);
      if (iy + 1 < ny) face(i + nx, lv.w_north[i]);
      if (iy > 0) face(i - nx, lv.w_north[i - nx]);
      out[i] = rhs[i] - (lv.diag[i] * x[i] - off);
    }
  }
}

void Multigrid::smooth(const Level& lv, const std::vector<Complex>& rhs, std::vector<Complex>& x,
                       std::vector<Complex>& scratch, int sweeps) const {
  const std::size_t nx = lv.nx;
  const std::size_t ny = lv.ny;
  if (opts_.smoother == MultigridOptions::Smoother::damped_jacobi) {
    for (int s = 0; s < sweeps; ++s) {
      residual(lv, rhs, x, scratch);
      for (std::size_t i = 0; i < x.size(); ++i) {
        if (!lv.dirichlet[i]) x[i] += opts_.jacobi_damping * lv.inv_diag[i] * scratch[i];
      }
    }
    return;
  }
  // Red-black Gauss-Seidel: fixed (color, row-major) sweep order makes the
  // smoother a deterministic linear operator regardless of thread count.
  for (int s = 0; s < sweeps; ++s) {
    for (int color = 0; color < 2; ++color) {
      for (std::size_t iy = 0; iy < ny; ++iy) {
        const std::size_t ix0 = (static_cast<std::size_t>(color) + iy) % 2;
        for (std::size_t ix = ix0; ix < nx; ix += 2) {
          const std::size_t i = iy * nx + ix;
          if (lv.dirichlet[i]) continue;
          Complex off{};
          auto face = [&](std::size_t j, Complex w) {
            if (!lv.dirichlet[j]) off += w * x[j];
          };
          if (ix + 1 < nx) face(i + 1, lv.w_east[i]);
          if (ix > 0) face(i - 1, lv.w_east[i - 1]);
          if (iy + 1 < ny) face(i + nx, lv.w_north[i]);
          if (iy > 0) face(i - nx, lv.w_north[i - nx]);
          x[i] = lv.inv_diag[i] * (rhs[i] + off);
        }
      }
    }
  }
}

void Multigrid::solve_coarsest(const std::vector<Complex>& rhs, std::vector<Complex>& x,
                               std::vector<Complex>& scratch) const {
  const Level& lv = levels_.back();
  if (lu_.empty()) {
    // No factorization (degenerately large coarsest level): smooth hard.
    for (auto& v : x) v = Complex{};
    smooth(lv, rhs, x, scratch, opts_.pre_smooth + opts_.post_smooth + 4);
    return;
  }
  const std::size_t n = coarse_free_cells_.size();
  // Gather, permuted forward substitution, back substitution, scatter.
  std::vector<Complex>& y = scratch;  // reuse as the packed solve vector
  for (std::size_t row = 0; row < n; ++row) y[row] = rhs[coarse_free_cells_[row]];
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t p = static_cast<std::size_t>(pivot_[k]);
    if (p != k) std::swap(y[k], y[p]);
    for (std::size_t r = k + 1; r < n; ++r) y[r] -= lu_[r * n + k] * y[k];
  }
  for (std::size_t k = n; k-- > 0;) {
    for (std::size_t c = k + 1; c < n; ++c) y[k] -= lu_[k * n + c] * y[c];
    const Complex d = lu_[k * n + k];
    y[k] = std::abs(d) > 0.0 ? y[k] / d : Complex{};
  }
  for (auto& v : x) v = Complex{};
  for (std::size_t row = 0; row < n; ++row) x[coarse_free_cells_[row]] = y[row];
}

void Multigrid::v_cycle(const std::vector<Complex>& r, std::vector<Complex>& z,
                        Workspace& ws) const {
  const std::size_t depth = levels_.size();
  ws.r[0] = r;
  for (std::size_t l = 0; l < depth; ++l) {
    const Level& lv = levels_[l];
    if (l + 1 == depth) {
      solve_coarsest(ws.r[l], ws.x[l], ws.scratch[l]);
      break;
    }
    for (auto& v : ws.x[l]) v = Complex{};
    smooth(lv, ws.r[l], ws.x[l], ws.scratch[l], opts_.pre_smooth);
    residual(lv, ws.r[l], ws.x[l], ws.scratch[l]);
    // Restrict: sum the residual over free fine children (adjoint of the
    // piecewise-constant prolongation below).
    const Level& cv = levels_[l + 1];
    std::vector<Complex>& rc = ws.r[l + 1];
    for (auto& v : rc) v = Complex{};
    for (std::size_t iy = 0; iy < lv.ny; ++iy) {
      for (std::size_t ix = 0; ix < lv.nx; ++ix) {
        const std::size_t i = iy * lv.nx + ix;
        if (!lv.dirichlet[i]) rc[(iy / 2) * cv.nx + ix / 2] += ws.scratch[l][i];
      }
    }
    for (std::size_t c = 0; c < rc.size(); ++c) {
      if (cv.dirichlet[c]) rc[c] = Complex{};
    }
  }
  // Ascend: prolong the coarse correction and post-smooth.
  for (std::size_t l = depth - 1; l-- > 0;) {
    const Level& lv = levels_[l];
    const Level& cv = levels_[l + 1];
    for (std::size_t iy = 0; iy < lv.ny; ++iy) {
      for (std::size_t ix = 0; ix < lv.nx; ++ix) {
        const std::size_t i = iy * lv.nx + ix;
        if (!lv.dirichlet[i]) ws.x[l][i] += ws.x[l + 1][(iy / 2) * cv.nx + ix / 2];
      }
    }
    smooth(lv, ws.r[l], ws.x[l], ws.scratch[l], opts_.post_smooth);
  }
  z = ws.x[0];
}

}  // namespace tsvcod::field
