#include "field/multigrid.hpp"

#include <cmath>
#include <stdexcept>

#include "simd/dispatch.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TSVCOD_FIELD_X86_KERNELS 1
#include <immintrin.h>
#endif

namespace tsvcod::field {

namespace {

Complex harmonic_mean(Complex a, Complex b) {
  const Complex s = a + b;
  if (std::abs(s) == 0.0) return Complex{0.0, 0.0};
  return 2.0 * a * b / s;
}

// Degenerate-geometry escape hatch: if coarsening stalls (max_levels or a
// sliver dimension) while the level is still too big to factor densely,
// replace the direct solve with extra smoothing sweeps.
constexpr std::size_t kMaxDenseUnknowns = 4096;

// ---------------------------------------------------------------------------
// Smoother / residual kernels.
//
// The scalar forms below are the reference semantics; the AVX2/AVX-512
// clones vectorize the 5-point stencil over interior rows (both neighbors
// exist, so no existence guards) and lean on the v_cycle invariant that
// x[i] == 0 at every Dirichlet cell: a face term against a Dirichlet
// neighbor is then exactly w * 0 = +-0, so the `!dirichlet[j]` guards drop
// out of the vector body, and a Gauss-Seidel candidate at a Dirichlet cell
// is inv_diag(=0) * (...) = +-0, so writing it back cannot break the
// invariant either. Red-black GS stays a deterministic linear operator: a
// color's cells only read the opposite color, so packing a full vector of
// same-color cells (every other complex; two narrow loads + one lane
// shuffle per operand) and updating all lanes at once reproduces the
// sequential sweep with no wasted lanes. Complex arithmetic is interleaved
// (re, im) pairs; one 256-bit vector holds 2 complexes, one 512-bit vector
// holds 4.
// ---------------------------------------------------------------------------

struct Stencil {
  std::size_t nx = 0, ny = 0;
  const std::uint8_t* dir = nullptr;
  const Complex* we = nullptr;    // w_east
  const Complex* wn = nullptr;    // w_north
  const Complex* diag = nullptr;
  const Complex* idg = nullptr;   // inv_diag
};

// One guarded Gauss-Seidel update (any cell, including boundaries): the
// original scalar semantics, also used for edge columns / boundary rows of
// the vector paths. Face order e, w, n, s is fixed.
inline void gs_cell(const Stencil& s, const Complex* rhs, Complex* x, std::size_t ix,
                    std::size_t iy) {
  const std::size_t i = iy * s.nx + ix;
  if (s.dir[i]) return;
  Complex off{};
  if (ix + 1 < s.nx && !s.dir[i + 1]) off += s.we[i] * x[i + 1];
  if (ix > 0 && !s.dir[i - 1]) off += s.we[i - 1] * x[i - 1];
  if (iy + 1 < s.ny && !s.dir[i + s.nx]) off += s.wn[i] * x[i + s.nx];
  if (iy > 0 && !s.dir[i - s.nx]) off += s.wn[i - s.nx] * x[i - s.nx];
  x[i] = s.idg[i] * (rhs[i] + off);
}

inline void res_cell(const Stencil& s, const Complex* rhs, const Complex* x, Complex* out,
                     std::size_t ix, std::size_t iy) {
  const std::size_t i = iy * s.nx + ix;
  if (s.dir[i]) {
    out[i] = Complex{};
    return;
  }
  Complex off{};
  if (ix + 1 < s.nx && !s.dir[i + 1]) off += s.we[i] * x[i + 1];
  if (ix > 0 && !s.dir[i - 1]) off += s.we[i - 1] * x[i - 1];
  if (iy + 1 < s.ny && !s.dir[i + s.nx]) off += s.wn[i] * x[i + s.nx];
  if (iy > 0 && !s.dir[i - s.nx]) off += s.wn[i - s.nx] * x[i - s.nx];
  out[i] = rhs[i] - (s.diag[i] * x[i] - off);
}

void gs_color_scalar(const Stencil& s, const Complex* rhs, Complex* x, int color) {
  for (std::size_t iy = 0; iy < s.ny; ++iy) {
    for (std::size_t ix = (static_cast<std::size_t>(color) + iy) % 2; ix < s.nx; ix += 2) {
      gs_cell(s, rhs, x, ix, iy);
    }
  }
}

void residual_scalar(const Stencil& s, const Complex* rhs, const Complex* x, Complex* out) {
  for (std::size_t iy = 0; iy < s.ny; ++iy) {
    for (std::size_t ix = 0; ix < s.nx; ++ix) res_cell(s, rhs, x, out, ix, iy);
  }
}

void jacobi_axpy_scalar(const Stencil& s, Complex* x, const Complex* scr, double damping) {
  const std::size_t n = s.nx * s.ny;
  for (std::size_t i = 0; i < n; ++i) {
    if (!s.dir[i]) x[i] += damping * s.idg[i] * scr[i];
  }
}

#if defined(TSVCOD_FIELD_X86_KERNELS)

// GCC's one-operand AVX-512 permute intrinsics expand to masked builtins
// with an undefined passthrough vector, which trips -Wmaybe-uninitialized
// at -O2; the passthrough is never selected (mask is all-ones).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// Interleaved complex multiply: (wr*xr - wi*xi, wr*xi + wi*xr) per pair.
__attribute__((target("avx2,fma"))) inline __m256d cmul256(__m256d w, __m256d x) {
  const __m256d wr = _mm256_movedup_pd(w);
  const __m256d wi = _mm256_permute_pd(w, 0xF);
  const __m256d xs = _mm256_permute_pd(x, 0x5);
  return _mm256_fmaddsub_pd(wr, x, _mm256_mul_pd(wi, xs));
}

__attribute__((target("avx512f,avx512dq"))) inline __m512d cmul512(__m512d w, __m512d x) {
  const __m512d wr = _mm512_movedup_pd(w);
  const __m512d wi = _mm512_permute_pd(w, 0xFF);
  const __m512d xs = _mm512_permute_pd(x, 0x55);
  return _mm512_fmaddsub_pd(wr, x, _mm512_mul_pd(wi, xs));
}

// Same-color gathers for the GS sweeps: red-black cells sit at every other
// complex, so two narrow loads packed with one insert/shuffle fill a vector
// with nothing but current-color cells (or their same-offset neighbors).
// Complexes at double offsets d and d+4 -> lanes {0,1} and {2,3}.
__attribute__((target("avx2,fma"))) inline __m256d gather2(const double* p, std::size_t d) {
  return _mm256_insertf128_pd(_mm256_castpd128_pd256(_mm_loadu_pd(p + d)),
                              _mm_loadu_pd(p + d + 4), 1);
}

// Complexes at double offsets d, d+4, d+8, d+12 -> the four 128-bit lanes.
__attribute__((target("avx512f,avx512dq"))) inline __m512d gather4(const double* p,
                                                                   std::size_t d) {
  const __m512d lo = _mm512_loadu_pd(p + d);
  const __m512d hi = _mm512_loadu_pd(p + d + 8);
  return _mm512_shuffle_f64x2(lo, hi, _MM_SHUFFLE(2, 0, 2, 0));
}

__attribute__((target("avx2,fma"))) void gs_color_avx2(const Stencil& s, const Complex* rhs_c,
                                                       Complex* x_c, int color) {
  const std::size_t nx = s.nx, ny = s.ny;
  const double* we = reinterpret_cast<const double*>(s.we);
  const double* wn = reinterpret_cast<const double*>(s.wn);
  const double* idg = reinterpret_cast<const double*>(s.idg);
  const double* rhs = reinterpret_cast<const double*>(rhs_c);
  double* x = reinterpret_cast<double*>(x_c);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    const std::size_t ix0 = (static_cast<std::size_t>(color) + iy) % 2;
    if (iy == 0 || iy + 1 == ny || nx < 6) {
      for (std::size_t ix = ix0; ix < nx; ix += 2) gs_cell(s, rhs_c, x_c, ix, iy);
      continue;
    }
    if (ix0 == 0) gs_cell(s, rhs_c, x_c, 0, iy);
    // Pack the current-color cells at columns c, c+2 into one full vector;
    // every lane does useful work. Needs c >= 1 (west neighbor) and
    // c + 3 <= nx - 1 (east neighbor of the second cell).
    std::size_t c = ix0 == 1 ? 1 : 2;
    for (; c + 4 <= nx; c += 4) {
      const std::size_t d = 2 * (iy * nx + c);
      __m256d off = cmul256(gather2(we, d), gather2(x, d + 2));
      off = _mm256_add_pd(off, cmul256(gather2(we, d - 2), gather2(x, d - 2)));
      off = _mm256_add_pd(off, cmul256(gather2(wn, d), gather2(x, d + 2 * nx)));
      off = _mm256_add_pd(off, cmul256(gather2(wn, d - 2 * nx), gather2(x, d - 2 * nx)));
      const __m256d cand = cmul256(gather2(idg, d), _mm256_add_pd(gather2(rhs, d), off));
      _mm_storeu_pd(x + d, _mm256_castpd256_pd128(cand));
      _mm_storeu_pd(x + d + 4, _mm256_extractf128_pd(cand, 1));
    }
    for (; c < nx; c += 2) gs_cell(s, rhs_c, x_c, c, iy);
  }
}

__attribute__((target("avx512f,avx512dq"))) void gs_color_avx512(const Stencil& s,
                                                                 const Complex* rhs_c, Complex* x_c,
                                                                 int color) {
  const std::size_t nx = s.nx, ny = s.ny;
  const double* we = reinterpret_cast<const double*>(s.we);
  const double* wn = reinterpret_cast<const double*>(s.wn);
  const double* idg = reinterpret_cast<const double*>(s.idg);
  const double* rhs = reinterpret_cast<const double*>(rhs_c);
  double* x = reinterpret_cast<double*>(x_c);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    const std::size_t ix0 = (static_cast<std::size_t>(color) + iy) % 2;
    if (iy == 0 || iy + 1 == ny || nx < 10) {
      for (std::size_t ix = ix0; ix < nx; ix += 2) gs_cell(s, rhs_c, x_c, ix, iy);
      continue;
    }
    if (ix0 == 0) gs_cell(s, rhs_c, x_c, 0, iy);
    // Pack the current-color cells at columns c, c+2, c+4, c+6 into one
    // full vector. Needs c >= 1 (west neighbor) and c + 7 <= nx - 1 (east
    // neighbor of the last cell).
    std::size_t c = ix0 == 1 ? 1 : 2;
    for (; c + 8 <= nx; c += 8) {
      const std::size_t d = 2 * (iy * nx + c);
      __m512d off = cmul512(gather4(we, d), gather4(x, d + 2));
      off = _mm512_add_pd(off, cmul512(gather4(we, d - 2), gather4(x, d - 2)));
      off = _mm512_add_pd(off, cmul512(gather4(wn, d), gather4(x, d + 2 * nx)));
      off = _mm512_add_pd(off, cmul512(gather4(wn, d - 2 * nx), gather4(x, d - 2 * nx)));
      const __m512d cand = cmul512(gather4(idg, d), _mm512_add_pd(gather4(rhs, d), off));
      _mm_storeu_pd(x + d, _mm512_extractf64x2_pd(cand, 0));
      _mm_storeu_pd(x + d + 4, _mm512_extractf64x2_pd(cand, 1));
      _mm_storeu_pd(x + d + 8, _mm512_extractf64x2_pd(cand, 2));
      _mm_storeu_pd(x + d + 12, _mm512_extractf64x2_pd(cand, 3));
    }
    for (; c < nx; c += 2) gs_cell(s, rhs_c, x_c, c, iy);
  }
}

__attribute__((target("avx2,fma"))) void residual_avx2(const Stencil& s, const Complex* rhs_c,
                                                       const Complex* x_c, Complex* out_c) {
  const std::size_t nx = s.nx, ny = s.ny;
  const double* we = reinterpret_cast<const double*>(s.we);
  const double* wn = reinterpret_cast<const double*>(s.wn);
  const double* dg = reinterpret_cast<const double*>(s.diag);
  const double* rhs = reinterpret_cast<const double*>(rhs_c);
  const double* x = reinterpret_cast<const double*>(x_c);
  double* out = reinterpret_cast<double*>(out_c);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    if (iy == 0 || iy + 1 == ny || nx < 6) {
      for (std::size_t ix = 0; ix < nx; ++ix) res_cell(s, rhs_c, x_c, out_c, ix, iy);
      continue;
    }
    res_cell(s, rhs_c, x_c, out_c, 0, iy);
    std::size_t ix = 1;
    for (; ix + 2 <= nx - 1; ix += 2) {
      const std::size_t i = iy * nx + ix;
      const std::size_t d = 2 * i;
      __m256d off = cmul256(_mm256_loadu_pd(we + d), _mm256_loadu_pd(x + d + 2));
      off = _mm256_add_pd(off, cmul256(_mm256_loadu_pd(we + d - 2), _mm256_loadu_pd(x + d - 2)));
      off = _mm256_add_pd(off, cmul256(_mm256_loadu_pd(wn + d), _mm256_loadu_pd(x + d + 2 * nx)));
      off = _mm256_add_pd(
          off, cmul256(_mm256_loadu_pd(wn + d - 2 * nx), _mm256_loadu_pd(x + d - 2 * nx)));
      const __m256d ax = _mm256_sub_pd(cmul256(_mm256_loadu_pd(dg + d), _mm256_loadu_pd(x + d)),
                                       off);
      __m256d cand = _mm256_sub_pd(_mm256_loadu_pd(rhs + d), ax);
      // Dirichlet rows of the residual are identically zero.
      const long long m0 = s.dir[i] ? -1 : 0;
      const long long m1 = s.dir[i + 1] ? -1 : 0;
      cand = _mm256_andnot_pd(_mm256_castsi256_pd(_mm256_set_epi64x(m1, m1, m0, m0)), cand);
      _mm256_storeu_pd(out + d, cand);
    }
    for (; ix < nx; ++ix) res_cell(s, rhs_c, x_c, out_c, ix, iy);
  }
}

__attribute__((target("avx512f,avx512dq"))) void residual_avx512(const Stencil& s,
                                                                 const Complex* rhs_c,
                                                                 const Complex* x_c,
                                                                 Complex* out_c) {
  const std::size_t nx = s.nx, ny = s.ny;
  const double* we = reinterpret_cast<const double*>(s.we);
  const double* wn = reinterpret_cast<const double*>(s.wn);
  const double* dg = reinterpret_cast<const double*>(s.diag);
  const double* rhs = reinterpret_cast<const double*>(rhs_c);
  const double* x = reinterpret_cast<const double*>(x_c);
  double* out = reinterpret_cast<double*>(out_c);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    if (iy == 0 || iy + 1 == ny || nx < 10) {
      for (std::size_t ix = 0; ix < nx; ++ix) res_cell(s, rhs_c, x_c, out_c, ix, iy);
      continue;
    }
    res_cell(s, rhs_c, x_c, out_c, 0, iy);
    std::size_t ix = 1;
    for (; ix + 4 <= nx - 1; ix += 4) {
      const std::size_t i = iy * nx + ix;
      const std::size_t d = 2 * i;
      __m512d off = cmul512(_mm512_loadu_pd(we + d), _mm512_loadu_pd(x + d + 2));
      off = _mm512_add_pd(off, cmul512(_mm512_loadu_pd(we + d - 2), _mm512_loadu_pd(x + d - 2)));
      off = _mm512_add_pd(off, cmul512(_mm512_loadu_pd(wn + d), _mm512_loadu_pd(x + d + 2 * nx)));
      off = _mm512_add_pd(
          off, cmul512(_mm512_loadu_pd(wn + d - 2 * nx), _mm512_loadu_pd(x + d - 2 * nx)));
      const __m512d ax = _mm512_sub_pd(cmul512(_mm512_loadu_pd(dg + d), _mm512_loadu_pd(x + d)),
                                       off);
      const __m512d cand = _mm512_sub_pd(_mm512_loadu_pd(rhs + d), ax);
      __mmask8 free_m = 0;
      for (std::size_t k = 0; k < 4; ++k) {
        if (!s.dir[i + k]) free_m = static_cast<__mmask8>(free_m | (0x3u << (2 * k)));
      }
      _mm512_storeu_pd(out + d, _mm512_maskz_mov_pd(free_m, cand));
    }
    for (; ix < nx; ++ix) res_cell(s, rhs_c, x_c, out_c, ix, iy);
  }
}

// x += damping * inv_diag * scratch over the whole array: inv_diag is zero
// at Dirichlet cells, so the unguarded form adds exactly +-0 there.
__attribute__((target("avx2,fma"))) void jacobi_axpy_avx2(const Stencil& s, Complex* x_c,
                                                          const Complex* scr_c, double damping) {
  const std::size_t nd = 2 * s.nx * s.ny;
  const double* idg = reinterpret_cast<const double*>(s.idg);
  const double* scr = reinterpret_cast<const double*>(scr_c);
  double* x = reinterpret_cast<double*>(x_c);
  const __m256d vd = _mm256_set1_pd(damping);
  std::size_t d = 0;
  for (; d + 4 <= nd; d += 4) {
    const __m256d t = cmul256(_mm256_loadu_pd(idg + d), _mm256_loadu_pd(scr + d));
    _mm256_storeu_pd(x + d, _mm256_fmadd_pd(vd, t, _mm256_loadu_pd(x + d)));
  }
  for (std::size_t i = d / 2; i < s.nx * s.ny; ++i) x_c[i] += damping * s.idg[i] * scr_c[i];
}

__attribute__((target("avx512f,avx512dq"))) void jacobi_axpy_avx512(const Stencil& s, Complex* x_c,
                                                                    const Complex* scr_c,
                                                                    double damping) {
  const std::size_t nd = 2 * s.nx * s.ny;
  const double* idg = reinterpret_cast<const double*>(s.idg);
  const double* scr = reinterpret_cast<const double*>(scr_c);
  double* x = reinterpret_cast<double*>(x_c);
  const __m512d vd = _mm512_set1_pd(damping);
  std::size_t d = 0;
  for (; d + 8 <= nd; d += 8) {
    const __m512d t = cmul512(_mm512_loadu_pd(idg + d), _mm512_loadu_pd(scr + d));
    _mm512_storeu_pd(x + d, _mm512_fmadd_pd(vd, t, _mm512_loadu_pd(x + d)));
  }
  for (std::size_t i = d / 2; i < s.nx * s.ny; ++i) x_c[i] += damping * s.idg[i] * scr_c[i];
}

#pragma GCC diagnostic pop

#endif  // TSVCOD_FIELD_X86_KERNELS

void gs_color(const Stencil& s, const Complex* rhs, Complex* x, int color) {
#if defined(TSVCOD_FIELD_X86_KERNELS)
  switch (simd::active_level()) {
    case simd::Level::avx512:
      gs_color_avx512(s, rhs, x, color);
      return;
    case simd::Level::avx2:
      gs_color_avx2(s, rhs, x, color);
      return;
    default:
      break;
  }
#endif
  gs_color_scalar(s, rhs, x, color);
}

void residual_dispatch(const Stencil& s, const Complex* rhs, const Complex* x, Complex* out) {
#if defined(TSVCOD_FIELD_X86_KERNELS)
  switch (simd::active_level()) {
    case simd::Level::avx512:
      residual_avx512(s, rhs, x, out);
      return;
    case simd::Level::avx2:
      residual_avx2(s, rhs, x, out);
      return;
    default:
      break;
  }
#endif
  residual_scalar(s, rhs, x, out);
}

void jacobi_axpy(const Stencil& s, Complex* x, const Complex* scr, double damping) {
#if defined(TSVCOD_FIELD_X86_KERNELS)
  switch (simd::active_level()) {
    case simd::Level::avx512:
      jacobi_axpy_avx512(s, x, scr, damping);
      return;
    case simd::Level::avx2:
      jacobi_axpy_avx2(s, x, scr, damping);
      return;
    default:
      break;
  }
#endif
  jacobi_axpy_scalar(s, x, scr, damping);
}

}  // namespace

bool Multigrid::viable(std::size_t nx, std::size_t ny, std::size_t free_count,
                       const MultigridOptions& opts) {
  return nx >= 8 && ny >= 8 && opts.max_levels >= 2 && free_count > opts.coarsest_unknowns;
}

Multigrid::Multigrid(std::size_t nx, std::size_t ny, const std::vector<std::uint8_t>& dirichlet,
                     const std::vector<Complex>& eps, const MultigridOptions& opts)
    : opts_(opts) {
  if (dirichlet.size() != nx * ny || eps.size() != nx * ny) {
    throw std::invalid_argument("Multigrid: dirichlet/eps size must be nx*ny");
  }
  Level fine;
  fine.nx = nx;
  fine.ny = ny;
  fine.dirichlet = dirichlet;
  fine.eps = eps;
  fine.free_count = 0;
  for (const auto d : dirichlet) fine.free_count += d ? 0u : 1u;
  levels_.push_back(std::move(fine));

  // Coarsen structure (Dirichlet masks) until the level is small enough for
  // a direct solve or cannot shrink meaningfully any further.
  while (static_cast<int>(levels_.size()) < opts_.max_levels) {
    const Level& f = levels_.back();
    if (f.free_count <= opts_.coarsest_unknowns) break;
    if (f.nx < 8 || f.ny < 8) break;
    Level c;
    c.nx = (f.nx + 1) / 2;
    c.ny = (f.ny + 1) / 2;
    c.dirichlet.assign(c.nx * c.ny, 0);
    for (std::size_t iy = 0; iy < f.ny; ++iy) {
      for (std::size_t ix = 0; ix < f.nx; ++ix) {
        if (f.dirichlet[iy * f.nx + ix]) c.dirichlet[(iy / 2) * c.nx + ix / 2] = 1;
      }
    }
    c.free_count = 0;
    for (const auto d : c.dirichlet) c.free_count += d ? 0u : 1u;
    levels_.push_back(std::move(c));
  }

  // Coarsest-level unknown numbering (for the dense factorization).
  const Level& last = levels_.back();
  coarse_free_index_.assign(last.nx * last.ny, -1);
  for (std::size_t i = 0; i < last.dirichlet.size(); ++i) {
    if (!last.dirichlet[i]) {
      coarse_free_index_[i] = static_cast<std::int64_t>(coarse_free_cells_.size());
      coarse_free_cells_.push_back(i);
    }
  }

  update_coefficients(eps);
}

void Multigrid::update_coefficients(const std::vector<Complex>& eps) {
  if (eps.size() != levels_.front().nx * levels_.front().ny) {
    throw std::invalid_argument("Multigrid::update_coefficients: eps size mismatch");
  }
  levels_.front().eps = eps;
  rebuild_level_coefficients(levels_.front());
  for (std::size_t l = 1; l < levels_.size(); ++l) {
    coarsen_eps(levels_[l - 1], levels_[l]);
    rebuild_level_coefficients(levels_[l]);
  }
  factor_coarsest();
}

void Multigrid::coarsen_eps(const Level& fine, Level& coarse) const {
  coarse.eps.assign(coarse.nx * coarse.ny, Complex{});
  std::vector<int> count(coarse.nx * coarse.ny, 0);
  for (std::size_t iy = 0; iy < fine.ny; ++iy) {
    for (std::size_t ix = 0; ix < fine.nx; ++ix) {
      const std::size_t c = (iy / 2) * coarse.nx + ix / 2;
      coarse.eps[c] += fine.eps[iy * fine.nx + ix];
      ++count[c];
    }
  }
  for (std::size_t c = 0; c < coarse.eps.size(); ++c) {
    coarse.eps[c] /= static_cast<double>(count[c]);
  }
}

void Multigrid::rebuild_level_coefficients(Level& lv) {
  const std::size_t nx = lv.nx;
  const std::size_t ny = lv.ny;
  const std::size_t n = nx * ny;
  lv.w_east.assign(n, Complex{});
  lv.w_north.assign(n, Complex{});
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t i = iy * nx + ix;
      if (ix + 1 < nx) lv.w_east[i] = harmonic_mean(lv.eps[i], lv.eps[i + 1]);
      if (iy + 1 < ny) lv.w_north[i] = harmonic_mean(lv.eps[i], lv.eps[i + nx]);
    }
  }
  lv.diag.assign(n, Complex{});
  lv.inv_diag.assign(n, Complex{});
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t i = iy * nx + ix;
      if (lv.dirichlet[i]) continue;
      Complex d{};
      if (ix + 1 < nx) d += lv.w_east[i];
      if (ix > 0) d += lv.w_east[i - 1];
      if (iy + 1 < ny) d += lv.w_north[i];
      if (iy > 0) d += lv.w_north[i - nx];
      // Domain boundary: Dirichlet 0 with the cell's own permittivity, the
      // same convention as FieldProblem::apply.
      if (ix == 0 || ix + 1 == nx) d += lv.eps[i];
      if (iy == 0 || iy + 1 == ny) d += lv.eps[i];
      lv.diag[i] = d;
      lv.inv_diag[i] = std::abs(d) > 0.0 ? 1.0 / d : Complex{};
    }
  }
}

void Multigrid::factor_coarsest() {
  const std::size_t n = coarse_free_cells_.size();
  if (n == 0 || n > kMaxDenseUnknowns) {
    lu_.clear();
    pivot_.clear();
    return;
  }
  const Level& lv = levels_.back();
  const std::size_t nx = lv.nx;
  lu_.assign(n * n, Complex{});
  for (std::size_t row = 0; row < n; ++row) {
    const std::size_t i = coarse_free_cells_[row];
    const std::size_t ix = i % nx;
    const std::size_t iy = i / nx;
    lu_[row * n + row] = lv.diag[i];
    auto couple = [&](std::size_t j, Complex w) {
      const std::int64_t col = coarse_free_index_[j];
      if (col >= 0) lu_[row * n + static_cast<std::size_t>(col)] -= w;
    };
    if (ix + 1 < nx) couple(i + 1, lv.w_east[i]);
    if (ix > 0) couple(i - 1, lv.w_east[i - 1]);
    if (iy + 1 < lv.ny) couple(i + nx, lv.w_north[i]);
    if (iy > 0) couple(i - nx, lv.w_north[i - nx]);
  }
  // In-place LU with partial pivoting.
  pivot_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t best = k;
    double best_mag = std::abs(lu_[k * n + k]);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_[r * n + k]);
      if (mag > best_mag) {
        best_mag = mag;
        best = r;
      }
    }
    pivot_[k] = static_cast<int>(best);
    if (best != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_[k * n + c], lu_[best * n + c]);
    }
    const Complex pv = lu_[k * n + k];
    if (std::abs(pv) == 0.0) continue;  // singular row: leave zero, solve skips it
    for (std::size_t r = k + 1; r < n; ++r) {
      const Complex m = lu_[r * n + k] / pv;
      lu_[r * n + k] = m;
      if (std::abs(m) == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_[r * n + c] -= m * lu_[k * n + c];
    }
  }
}

Multigrid::Workspace Multigrid::make_workspace() const {
  Workspace ws;
  ws.x.resize(levels_.size());
  ws.r.resize(levels_.size());
  ws.scratch.resize(levels_.size());
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const std::size_t n = levels_[l].nx * levels_[l].ny;
    ws.x[l].assign(n, Complex{});
    ws.r[l].assign(n, Complex{});
    ws.scratch[l].assign(n, Complex{});
  }
  return ws;
}

void Multigrid::residual(const Level& lv, const std::vector<Complex>& rhs,
                         const std::vector<Complex>& x, std::vector<Complex>& out) const {
  const Stencil s{lv.nx,          lv.ny,           lv.dirichlet.data(), lv.w_east.data(),
                  lv.w_north.data(), lv.diag.data(), lv.inv_diag.data()};
  residual_dispatch(s, rhs.data(), x.data(), out.data());
}

void Multigrid::smooth(const Level& lv, const std::vector<Complex>& rhs, std::vector<Complex>& x,
                       std::vector<Complex>& scratch, int sweeps) const {
  const Stencil st{lv.nx,          lv.ny,           lv.dirichlet.data(), lv.w_east.data(),
                   lv.w_north.data(), lv.diag.data(), lv.inv_diag.data()};
  if (opts_.smoother == MultigridOptions::Smoother::damped_jacobi) {
    for (int s = 0; s < sweeps; ++s) {
      residual_dispatch(st, rhs.data(), x.data(), scratch.data());
      jacobi_axpy(st, x.data(), scratch.data(), opts_.jacobi_damping);
    }
    return;
  }
  // Red-black Gauss-Seidel: fixed (color, row-major) sweep order makes the
  // smoother a deterministic linear operator regardless of thread count.
  for (int s = 0; s < sweeps; ++s) {
    for (int color = 0; color < 2; ++color) gs_color(st, rhs.data(), x.data(), color);
  }
}

void Multigrid::apply_smoother(const std::vector<Complex>& rhs, std::vector<Complex>& x,
                               std::vector<Complex>& scratch, int sweeps) const {
  const Level& lv = levels_.front();
  const std::size_t n = lv.nx * lv.ny;
  if (rhs.size() != n || x.size() != n || scratch.size() != n) {
    throw std::invalid_argument("Multigrid::apply_smoother: vectors must be nx*ny");
  }
  // Establish the x[dirichlet] == 0 invariant the kernels rely on (v_cycle
  // maintains it internally; an external caller may not).
  for (std::size_t i = 0; i < n; ++i) {
    if (lv.dirichlet[i]) x[i] = Complex{};
  }
  smooth(lv, rhs, x, scratch, sweeps);
}

void Multigrid::apply_residual(const std::vector<Complex>& rhs, const std::vector<Complex>& x,
                               std::vector<Complex>& out) const {
  const Level& lv = levels_.front();
  const std::size_t n = lv.nx * lv.ny;
  if (rhs.size() != n || x.size() != n || out.size() != n) {
    throw std::invalid_argument("Multigrid::apply_residual: vectors must be nx*ny");
  }
  residual(lv, rhs, x, out);
}

void Multigrid::solve_coarsest(const std::vector<Complex>& rhs, std::vector<Complex>& x,
                               std::vector<Complex>& scratch) const {
  const Level& lv = levels_.back();
  if (lu_.empty()) {
    // No factorization (degenerately large coarsest level): smooth hard.
    for (auto& v : x) v = Complex{};
    smooth(lv, rhs, x, scratch, opts_.pre_smooth + opts_.post_smooth + 4);
    return;
  }
  const std::size_t n = coarse_free_cells_.size();
  // Gather, permuted forward substitution, back substitution, scatter.
  std::vector<Complex>& y = scratch;  // reuse as the packed solve vector
  for (std::size_t row = 0; row < n; ++row) y[row] = rhs[coarse_free_cells_[row]];
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t p = static_cast<std::size_t>(pivot_[k]);
    if (p != k) std::swap(y[k], y[p]);
    for (std::size_t r = k + 1; r < n; ++r) y[r] -= lu_[r * n + k] * y[k];
  }
  for (std::size_t k = n; k-- > 0;) {
    for (std::size_t c = k + 1; c < n; ++c) y[k] -= lu_[k * n + c] * y[c];
    const Complex d = lu_[k * n + k];
    y[k] = std::abs(d) > 0.0 ? y[k] / d : Complex{};
  }
  for (auto& v : x) v = Complex{};
  for (std::size_t row = 0; row < n; ++row) x[coarse_free_cells_[row]] = y[row];
}

void Multigrid::v_cycle(const std::vector<Complex>& r, std::vector<Complex>& z,
                        Workspace& ws) const {
  const std::size_t depth = levels_.size();
  ws.r[0] = r;
  for (std::size_t l = 0; l < depth; ++l) {
    const Level& lv = levels_[l];
    if (l + 1 == depth) {
      solve_coarsest(ws.r[l], ws.x[l], ws.scratch[l]);
      break;
    }
    for (auto& v : ws.x[l]) v = Complex{};
    smooth(lv, ws.r[l], ws.x[l], ws.scratch[l], opts_.pre_smooth);
    residual(lv, ws.r[l], ws.x[l], ws.scratch[l]);
    // Restrict: sum the residual over free fine children (adjoint of the
    // piecewise-constant prolongation below).
    const Level& cv = levels_[l + 1];
    std::vector<Complex>& rc = ws.r[l + 1];
    for (auto& v : rc) v = Complex{};
    for (std::size_t iy = 0; iy < lv.ny; ++iy) {
      for (std::size_t ix = 0; ix < lv.nx; ++ix) {
        const std::size_t i = iy * lv.nx + ix;
        if (!lv.dirichlet[i]) rc[(iy / 2) * cv.nx + ix / 2] += ws.scratch[l][i];
      }
    }
    for (std::size_t c = 0; c < rc.size(); ++c) {
      if (cv.dirichlet[c]) rc[c] = Complex{};
    }
  }
  // Ascend: prolong the coarse correction and post-smooth.
  for (std::size_t l = depth - 1; l-- > 0;) {
    const Level& lv = levels_[l];
    const Level& cv = levels_[l + 1];
    for (std::size_t iy = 0; iy < lv.ny; ++iy) {
      for (std::size_t ix = 0; ix < lv.nx; ++ix) {
        const std::size_t i = iy * lv.nx + ix;
        if (!lv.dirichlet[i]) ws.x[l][i] += ws.x[l + 1][(iy / 2) * cv.nx + ix / 2];
      }
    }
    smooth(lv, ws.r[l], ws.x[l], ws.scratch[l], opts_.post_smooth);
  }
  z = ws.x[0];
}

}  // namespace tsvcod::field
