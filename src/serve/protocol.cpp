#include "serve/protocol.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace tsvcod::serve {

namespace {

std::uint32_t load_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64le(const unsigned char* p) {
  return static_cast<std::uint64_t>(load_u32le(p)) |
         (static_cast<std::uint64_t>(load_u32le(p + 4)) << 32);
}

void store_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

bool valid_type(std::uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::open:
    case FrameType::data:
    case FrameType::stats:
    case FrameType::close:
    case FrameType::shutdown: return true;
  }
  return false;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("serve: malformed frame: " + what);
}

}  // namespace

bool read_frame(std::istream& in, Frame& out) {
  std::array<unsigned char, 12> header;
  in.read(reinterpret_cast<char*>(header.data()), static_cast<std::streamsize>(header.size()));
  if (in.gcount() == 0 && (in.eof() || !in.good())) {
    return false;  // clean EOF at a frame boundary
  }
  if (in.gcount() != static_cast<std::streamsize>(header.size())) {
    fail("truncated header (EOF mid-frame after " + std::to_string(in.gcount()) +
         " of 12 header bytes)");
  }

  const std::uint32_t payload_len = load_u32le(header.data());
  const std::uint8_t type = header[4];
  if (!valid_type(type)) {
    fail("unknown frame type 0x" + [&] {
      char buf[8];
      std::snprintf(buf, sizeof buf, "%02x", type);
      return std::string(buf);
    }());
  }
  if (header[5] != 0 || header[6] != 0 || header[7] != 0) fail("nonzero reserved header bytes");
  if (payload_len > kMaxFramePayload) {
    fail("payload length " + std::to_string(payload_len) + " exceeds 64 MiB cap");
  }

  out.type = static_cast<FrameType>(type);
  out.session = load_u32le(header.data() + 8);
  out.words.clear();
  out.text.clear();

  if (out.type == FrameType::data && payload_len % 8 != 0) {
    fail("data payload length " + std::to_string(payload_len) + " is not a multiple of 8");
  }

  std::string payload(payload_len, '\0');
  if (payload_len > 0) {
    in.read(payload.data(), static_cast<std::streamsize>(payload_len));
    if (in.gcount() != static_cast<std::streamsize>(payload_len)) {
      fail("truncated payload (EOF after " + std::to_string(in.gcount()) + " of " +
           std::to_string(payload_len) + " payload bytes)");
    }
  }

  switch (out.type) {
    case FrameType::data: {
      out.words.resize(payload_len / 8);
      const auto* bytes = reinterpret_cast<const unsigned char*>(payload.data());
      for (std::size_t i = 0; i < out.words.size(); ++i) out.words[i] = load_u64le(bytes + 8 * i);
      break;
    }
    case FrameType::open: out.text = std::move(payload); break;
    case FrameType::stats:
    case FrameType::close:
    case FrameType::shutdown:
      if (payload_len != 0) {
        fail("unexpected " + std::to_string(payload_len) + "-byte payload on control frame '" +
             static_cast<char>(type) + "'");
      }
      break;
  }
  return true;
}

std::string encode_frame(const Frame& frame) {
  std::string payload;
  switch (frame.type) {
    case FrameType::data:
      payload.reserve(frame.words.size() * 8);
      for (const std::uint64_t w : frame.words) {
        store_u32le(payload, static_cast<std::uint32_t>(w & 0xffffffffu));
        store_u32le(payload, static_cast<std::uint32_t>(w >> 32));
      }
      break;
    case FrameType::open: payload = frame.text; break;
    case FrameType::stats:
    case FrameType::close:
    case FrameType::shutdown: break;
  }
  if (payload.size() > kMaxFramePayload) {
    throw std::runtime_error("serve: frame payload exceeds 64 MiB cap");
  }

  std::string out;
  out.reserve(12 + payload.size());
  store_u32le(out, static_cast<std::uint32_t>(payload.size()));
  out.push_back(static_cast<char>(frame.type));
  out.push_back('\0');
  out.push_back('\0');
  out.push_back('\0');
  store_u32le(out, frame.session);
  out += payload;
  return out;
}

std::map<std::string, std::string> parse_options(const std::string& text) {
  std::map<std::string, std::string> opts;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::runtime_error("serve: open option '" + token + "' is not key=value");
    }
    std::string key = token.substr(0, eq);
    if (opts.count(key) != 0) {
      throw std::runtime_error("serve: duplicate open option '" + key + "'");
    }
    opts.emplace(std::move(key), token.substr(eq + 1));
  }
  return opts;
}

}  // namespace tsvcod::serve
