#pragma once
// One streaming session: a bus (tenant) whose word stream arrives in chunks.
//
// Every ingested word does two things:
//   1. Traffic: it is round-tripped through a CodedLink (encode -> assign ->
//      lines -> unassign -> decode) and decode-verified — a desync counter
//      records any word that fails to come back, which is the observable the
//      hot-swap guarantee is stated in terms of.
//   2. Statistics: it is folded into a windowed ChunkFolder (tumbling window
//      of `DriftOptions::window_words`, seam carried across windows); at each
//      boundary the finished window's exact integer counts merge into the
//      long-run total, so the long-run statistics are bit-identical to batch
//      `compute_stats` over the same *payload* words — regardless of codec
//      choice, chunk sizes, or when a swap landed — without folding any word
//      twice.
//
// At every window boundary the session compares the finished window against
// the long-run statistics with `drift_metric` (mean absolute shift of the
// per-line toggle rates, pairwise coupling rates and one-probabilities). When
// the drift exceeds the threshold — and no re-anneal is already in flight and
// the cooldown since the last swap has elapsed — ingest() reports a trip; the
// server schedules `optimize_assignment` on the shared pool against the
// window's statistics and, when it finishes, installs the winner atomically
// via `CodedLink::reset(next)`. Concurrent traffic observes zero desyncs
// across the swap.
//
// Thread safety: ingest() is serialized per session by the server's shard
// queues; install() and snapshot() may race ingest() and are protected by the
// session mutex.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>

#include "coding/factory.hpp"
#include "core/coded_link.hpp"
#include "core/optimize.hpp"
#include "stats/ingest.hpp"
#include "tsv/linear_model.hpp"

namespace tsvcod::serve {

struct DriftOptions {
  /// Tumbling-window length in words; the drift check runs once per window.
  /// Must be >= 2 (a window needs two words to have a transition).
  std::uint64_t window_words = 4096;
  /// Trip level for drift_metric(); <= 0 disables drift detection entirely.
  double threshold = 0.25;
  /// Minimum words between the end of one swap and the next trip. 0 = one
  /// window length.
  std::uint64_t cooldown_words = 0;
};

struct SessionConfig {
  /// Line width == payload width (the service accepts width-preserving
  /// codecs only, so a hot-swapped assignment never changes the line count).
  std::size_t width = 8;
  /// Codec for the link; name "" or "none" = uncoded (assignment only).
  /// Expanding codecs (bus-invert, fibonacci) are rejected with an error
  /// naming the codec and both widths.
  coding::CodecSpec codec{};
  /// Capacitance model the re-anneal optimizes against; size() must equal
  /// `width`.
  tsv::LinearCapacitanceModel model;
  DriftOptions drift{};
  /// Re-anneal budget (iterations, chains, seed, threads).
  core::OptimizeOptions optimize{};
  /// Threads for the per-chunk statistics reduction (0 = TSVCOD_THREADS).
  int stats_threads = 1;
};

/// Point-in-time copy of a session's counters and long-run statistics.
struct SessionSnapshot {
  std::uint64_t id = 0;
  std::size_t width = 0;
  std::uint64_t words = 0;
  std::uint64_t batches = 0;
  std::uint64_t windows = 0;
  std::uint64_t desyncs = 0;
  std::uint64_t trips = 0;  ///< drift trips reported (re-anneals requested)
  std::uint64_t swaps = 0;  ///< assignments actually installed
  double last_drift = 0.0;  ///< metric at the most recent window boundary
  stats::SwitchingCounts longrun;  ///< exact whole-stream counts

  std::string to_json() const;
};

/// Mean absolute shift between two finalized statistics of equal width:
/// per-line toggle rates (self), one-probabilities, and the i<j coupling
/// rates, each averaged over its own entry count, summed. Dimensionless,
/// in [0, ~4]; identical statistics give exactly 0.
double drift_metric(const stats::SwitchingStats& window, const stats::SwitchingStats& longrun);

class Session {
 public:
  /// Validates the config (width 1..64, model size, codec width-preserving,
  /// window >= 2) with errors naming the offending field. The link starts on
  /// the identity assignment.
  Session(std::uint64_t id, SessionConfig config);

  std::uint64_t id() const { return id_; }
  std::size_t width() const { return config_.width; }
  const tsv::LinearCapacitanceModel& model() const { return config_.model; }
  const core::OptimizeOptions& optimize_options() const { return config_.optimize; }

  struct IngestResult {
    bool tripped = false;  ///< schedule a re-anneal against `window_stats`
    double drift = 0.0;
    stats::SwitchingStats window_stats;   ///< set when tripped
    core::SignedPermutation current{1};   ///< assignment at the trip
    std::uint64_t words_at_trip = 0;      ///< session word count at the trip
    std::uint64_t new_desyncs = 0;        ///< desyncs added by this chunk
  };

  /// Fold one chunk: traffic every word through the link (counting desyncs)
  /// and accumulate statistics. Any chunk size is fine, including empty.
  /// Returns at most one trip per call (the first boundary that trips wins;
  /// later windows in the same chunk still update drift bookkeeping).
  IngestResult ingest(std::span<const std::uint64_t> words);

  /// Install a re-annealed assignment: atomic hot-swap on the link, then
  /// clear the in-flight flag. `expected_swap_seq` must be the sequence
  /// returned implicitly by the trip (guards against a stale anneal landing
  /// after a newer one — the stale result is dropped).
  bool install(const core::SignedPermutation& next);

  /// Drop the in-flight flag without installing (anneal failed).
  void abandon_reanneal();

  SessionSnapshot snapshot() const;

 private:
  // Callers hold mu_.
  bool window_boundary_locked(IngestResult& out);

  std::uint64_t id_;
  SessionConfig config_;

  mutable std::mutex mu_;
  core::CodedLink link_;
  stats::SwitchingCounts longrun_;  ///< finished windows, merged exactly
  stats::ChunkFolder window_;       ///< current (partial) tumbling window
  std::uint64_t words_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t desyncs_ = 0;
  std::uint64_t trips_ = 0;
  std::uint64_t swaps_ = 0;
  double last_drift_ = 0.0;
  bool reanneal_inflight_ = false;
  std::uint64_t words_at_last_swap_ = 0;
};

}  // namespace tsvcod::serve
