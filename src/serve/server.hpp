#pragma once
// Multi-session streaming server: shards sessions across the shared thread
// pool with request batching and bounded-queue backpressure.
//
// Architecture (one process, no dedicated threads of its own):
//
//   client threads ──ingest()──▶ per-shard bounded deque ──▶ drain job on
//                                                            opt::ThreadPool
//
// A session is pinned to shard `id % shards`, so its batches are processed
// in arrival order by at most one drain job at a time — per-session
// statistics stay a pure fold over the stream. Each shard schedules at most
// one drain job; the job pops batches until the queue is empty and exits, so
// idle shards cost nothing. When a shard's queue is full, ingest() blocks
// the producer (backpressure) until the drain job frees a slot; the
// high-water mark is observable for tests.
//
// A drift trip reported by Session::ingest becomes a re-anneal job on the
// same pool: optimize_assignment against the tripping window's statistics,
// then an atomic hot-swap via Session::install. The pool's help-drain
// (`try_run_one`) makes the nested parallel_for inside the annealer
// deadlock-free even when every worker is busy. drain() blocks until all
// queued batches AND all in-flight re-anneals have landed — the quiescent
// point the daemon uses for stats frames, close, and shutdown.
//
// Observability: commutative counters serve.{sessions_opened,batches,words,
// desyncs,trips,swaps,reanneal_failures}_total on the metrics registry, so
// the snapshot exporter (obs/snapshot.hpp) publishes service health for
// free.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/session.hpp"

namespace tsvcod::serve {

struct ServerOptions {
  /// Session-to-queue sharding; also the useful bound on batch concurrency.
  int shards = 4;
  /// Queued batches per shard before ingest() blocks the producer.
  std::size_t queue_capacity = 64;
};

/// One completed re-anneal (successful or dropped), in completion order.
struct SwapEvent {
  std::uint64_t session = 0;
  bool installed = false;  ///< false: session closed/abandoned before install
  double drift = 0.0;
  double power_before = 0.0;  ///< window stats under the pre-trip assignment
  double power_after = 0.0;   ///< window stats under the annealed assignment
  double latency_ms = 0.0;    ///< drift trip -> hot-swap installed
  std::uint64_t words_at_trip = 0;
  std::size_t evaluations = 0;  ///< annealer move pricings

  std::string to_json() const;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  /// Drains outstanding work; sessions are then dropped.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Register session `id`. Throws if the id is already open or the config
  /// is invalid (see Session).
  void open_session(std::uint64_t id, SessionConfig config);

  /// Queue one batch for the session's shard. Blocks while the shard queue
  /// is at capacity. Throws on an unknown session id.
  void ingest(std::uint64_t id, std::vector<std::uint64_t> words);

  /// Point-in-time snapshot (queued batches may still be outstanding; call
  /// drain() first for exact totals).
  SessionSnapshot session_stats(std::uint64_t id) const;

  /// Drain the server, then remove the session and return its final
  /// snapshot.
  SessionSnapshot close_session(std::uint64_t id);

  /// Block until every queued batch is processed and every in-flight
  /// re-anneal has landed. The calling thread helps drain the pool queue, so
  /// this works even when all workers are busy.
  void drain();

  /// Completed re-anneals since the last poll (completion order).
  std::vector<SwapEvent> poll_swaps();
  /// Ingest/re-anneal exceptions since the last poll (message text; the
  /// server itself never lets a job exception escape onto a pool thread).
  std::vector<std::string> poll_errors();

  struct Totals {
    std::uint64_t sessions_opened = 0;
    std::uint64_t batches = 0;
    std::uint64_t words = 0;
    std::uint64_t desyncs = 0;  ///< live sessions + closed sessions
    std::uint64_t trips = 0;
    std::uint64_t swaps = 0;
    std::size_t max_queue_depth = 0;  ///< high-water mark across shards
  };
  Totals totals() const;

  int shards() const { return static_cast<int>(shards_.size()); }
  std::size_t queue_capacity() const { return options_.queue_capacity; }

 private:
  struct Batch {
    std::shared_ptr<Session> session;
    std::vector<std::uint64_t> words;
  };

  struct Shard {
    std::mutex mu;
    std::condition_variable not_full;
    std::deque<Batch> queue;
    bool job_scheduled = false;  ///< a drain job is queued or running
  };

  std::shared_ptr<Session> find_session(std::uint64_t id) const;
  void drain_shard(Shard& shard);
  void process_batch(Batch batch);
  void schedule_reanneal(std::shared_ptr<Session> session, Session::IngestResult trip);
  void finish_unit();  ///< decrement pending work, wake drain()

  ServerOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex sessions_mu_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t sessions_opened_ = 0;
  std::uint64_t closed_desyncs_ = 0;
  std::uint64_t closed_trips_ = 0;
  std::uint64_t closed_swaps_ = 0;

  mutable std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::size_t pending_units_ = 0;  ///< queued batches + in-flight re-anneals

  mutable std::mutex events_mu_;
  std::vector<SwapEvent> swaps_;
  std::vector<std::string> errors_;

  mutable std::mutex stats_mu_;
  std::uint64_t batches_total_ = 0;
  std::uint64_t words_total_ = 0;
  std::size_t max_queue_depth_ = 0;
};

}  // namespace tsvcod::serve
