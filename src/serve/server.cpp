#include "serve/server.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/power.hpp"
#include "obs/obs.hpp"
#include "opt/parallel.hpp"

namespace tsvcod::serve {

namespace {
using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(b - a).count();
}
}  // namespace

std::string SwapEvent::to_json() const {
  std::string out = "{\"event\":\"swap\",\"session\":" + std::to_string(session);
  out += ",\"installed\":";
  out += installed ? "true" : "false";
  out += ",\"drift\":" + obs::json_number(drift);
  out += ",\"power_before\":" + obs::json_number(power_before);
  out += ",\"power_after\":" + obs::json_number(power_after);
  out += ",\"improvement_pct\":" +
         obs::json_number(power_before > 0.0 ? (1.0 - power_after / power_before) * 100.0 : 0.0);
  out += ",\"swap_latency_ms\":" + obs::json_number(latency_ms);
  out += ",\"words_at_trip\":" + std::to_string(words_at_trip);
  out += ",\"evaluations\":" + std::to_string(evaluations);
  out += '}';
  return out;
}

Server::Server(ServerOptions options) : options_(options) {
  if (options_.shards < 1) {
    throw std::invalid_argument("serve: --shards must be >= 1, got " +
                                std::to_string(options_.shards));
  }
  if (options_.queue_capacity < 1) {
    throw std::invalid_argument("serve: --queue-capacity must be >= 1, got " +
                                std::to_string(options_.queue_capacity));
  }
  shards_.reserve(static_cast<std::size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) shards_.push_back(std::make_unique<Shard>());
  // Shard drain jobs + at least one re-anneal can always run concurrently.
  opt::ThreadPool::shared().ensure_workers(options_.shards + 2);
}

Server::~Server() { drain(); }

void Server::open_session(std::uint64_t id, SessionConfig config) {
  auto session = std::make_shared<Session>(id, std::move(config));
  std::lock_guard<std::mutex> lk(sessions_mu_);
  if (!sessions_.emplace(id, std::move(session)).second) {
    throw std::invalid_argument("serve: session " + std::to_string(id) + " is already open");
  }
  ++sessions_opened_;
  obs::metric_add("serve.sessions_opened_total");
}

std::shared_ptr<Session> Server::find_session(std::uint64_t id) const {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    throw std::invalid_argument("serve: unknown session " + std::to_string(id));
  }
  return it->second;
}

void Server::ingest(std::uint64_t id, std::vector<std::uint64_t> words) {
  Batch batch{find_session(id), std::move(words)};
  Shard& shard = *shards_[static_cast<std::size_t>(id) % shards_.size()];

  // Count the unit *before* it becomes visible to a drain job, so drain()
  // can never observe the queue non-empty with a zero pending count.
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    ++pending_units_;
  }

  bool schedule = false;
  std::size_t depth = 0;
  {
    std::unique_lock<std::mutex> lk(shard.mu);
    shard.not_full.wait(lk, [&] { return shard.queue.size() < options_.queue_capacity; });
    shard.queue.push_back(std::move(batch));
    depth = shard.queue.size();
    if (!shard.job_scheduled) {
      shard.job_scheduled = true;
      schedule = true;
    }
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    if (depth > max_queue_depth_) max_queue_depth_ = depth;
  }
  if (schedule) {
    // The drain job is itself a pending unit: it keeps touching shard state
    // after the last batch's own unit is retired, so drain() (and therefore
    // ~Server) must not return while the job is still alive.
    {
      std::lock_guard<std::mutex> lk(idle_mu_);
      ++pending_units_;
    }
    opt::ThreadPool::shared().submit([this, &shard] { drain_shard(shard); });
  }
}

void Server::drain_shard(Shard& shard) {
  for (;;) {
    Batch batch;
    {
      std::lock_guard<std::mutex> lk(shard.mu);
      if (shard.queue.empty()) {
        shard.job_scheduled = false;
        break;
      }
      batch = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    shard.not_full.notify_one();
    process_batch(std::move(batch));
  }
  finish_unit();  // retire the drain job; past this point no member is touched
}

void Server::process_batch(Batch batch) {
  try {
    const Session::IngestResult result = batch.session->ingest(batch.words);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++batches_total_;
      words_total_ += batch.words.size();
    }
    obs::metric_add("serve.batches_total");
    obs::metric_add("serve.words_total", batch.words.size());
    if (result.new_desyncs > 0) {
      obs::metric_add("serve.desyncs_total", result.new_desyncs);
    }
    if (result.tripped) {
      obs::metric_add("serve.trips_total");
      schedule_reanneal(batch.session, result);
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lk(events_mu_);
    errors_.push_back("session " + std::to_string(batch.session->id()) + ": " + e.what());
  }
  finish_unit();
}

void Server::schedule_reanneal(std::shared_ptr<Session> session, Session::IngestResult trip) {
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    ++pending_units_;
  }
  const Clock::time_point tripped_at = Clock::now();
  opt::ThreadPool::shared().submit(
      [this, session = std::move(session), trip = std::move(trip), tripped_at] {
        try {
          const core::OptimizeResult annealed = core::optimize_assignment(
              trip.window_stats, session->model(), session->optimize_options());
          SwapEvent event;
          event.session = session->id();
          event.drift = trip.drift;
          event.words_at_trip = trip.words_at_trip;
          event.evaluations = annealed.evaluations;
          event.power_before =
              core::assignment_power(trip.window_stats, trip.current, session->model());
          event.power_after = annealed.power;
          event.installed = session->install(annealed.assignment);
          event.latency_ms = ms_between(tripped_at, Clock::now());
          if (event.installed) obs::metric_add("serve.swaps_total");
          std::lock_guard<std::mutex> lk(events_mu_);
          swaps_.push_back(std::move(event));
        } catch (const std::exception& e) {
          session->abandon_reanneal();
          obs::metric_add("serve.reanneal_failures_total");
          std::lock_guard<std::mutex> lk(events_mu_);
          errors_.push_back("session " + std::to_string(session->id()) +
                            " re-anneal failed: " + e.what());
        }
        finish_unit();
      });
}

void Server::finish_unit() {
  std::lock_guard<std::mutex> lk(idle_mu_);
  --pending_units_;
  if (pending_units_ == 0) idle_cv_.notify_all();
}

void Server::drain() {
  auto& pool = opt::ThreadPool::shared();
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(idle_mu_);
      if (pending_units_ == 0) return;
    }
    // Help run queued jobs instead of sleeping: drain() then completes even
    // when every pool worker is parked inside a long re-anneal.
    if (!pool.try_run_one()) {
      std::unique_lock<std::mutex> lk(idle_mu_);
      idle_cv_.wait_for(lk, std::chrono::milliseconds(1),
                        [&] { return pending_units_ == 0; });
      if (pending_units_ == 0) return;
    }
  }
}

SessionSnapshot Server::session_stats(std::uint64_t id) const {
  return find_session(id)->snapshot();
}

SessionSnapshot Server::close_session(std::uint64_t id) {
  std::shared_ptr<Session> session = find_session(id);  // throws early on bad id
  drain();  // every queued batch and in-flight re-anneal for it has landed
  SessionSnapshot snap = session->snapshot();
  std::lock_guard<std::mutex> lk(sessions_mu_);
  sessions_.erase(id);
  closed_desyncs_ += snap.desyncs;
  closed_trips_ += snap.trips;
  closed_swaps_ += snap.swaps;
  return snap;
}

std::vector<SwapEvent> Server::poll_swaps() {
  std::lock_guard<std::mutex> lk(events_mu_);
  return std::exchange(swaps_, {});
}

std::vector<std::string> Server::poll_errors() {
  std::lock_guard<std::mutex> lk(events_mu_);
  return std::exchange(errors_, {});
}

Server::Totals Server::totals() const {
  Totals t;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    t.sessions_opened = sessions_opened_;
    t.desyncs = closed_desyncs_;
    t.trips = closed_trips_;
    t.swaps = closed_swaps_;
    for (const auto& [id, session] : sessions_) {
      const SessionSnapshot snap = session->snapshot();
      t.desyncs += snap.desyncs;
      t.trips += snap.trips;
      t.swaps += snap.swaps;
    }
  }
  std::lock_guard<std::mutex> lk(stats_mu_);
  t.batches = batches_total_;
  t.words = words_total_;
  t.max_queue_depth = max_queue_depth_;
  return t;
}

}  // namespace tsvcod::serve
