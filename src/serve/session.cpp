#include "serve/session.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"

namespace tsvcod::serve {

namespace {

/// Uncoded link: the assignment still permutes/inverts, the codec is a
/// passthrough. Lets every session run the same CodedLink machinery (and the
/// same hot-swap path) whether or not a real codec is configured.
class IdentityCodec final : public coding::Codec {
 public:
  explicit IdentityCodec(std::size_t width) : width_(width) {}
  std::size_t width_in() const override { return width_; }
  std::size_t width_out() const override { return width_; }
  std::uint64_t encode(std::uint64_t word) override { return word; }
  std::uint64_t decode(std::uint64_t code) override { return code; }
  void reset() override {}
  std::unique_ptr<Codec> clone() const override { return std::make_unique<IdentityCodec>(width_); }

 private:
  std::size_t width_;
};

std::unique_ptr<coding::Codec> build_codec(const SessionConfig& config) {
  if (config.codec.name.empty() || config.codec.name == "none") {
    return std::make_unique<IdentityCodec>(config.width);
  }
  auto codec = coding::make_codec(config.codec, config.width);
  if (codec->width_out() != config.width) {
    throw std::invalid_argument(
        "serve: codec '" + config.codec.name + "' expands " + std::to_string(config.width) +
        " payload bits to " + std::to_string(codec->width_out()) +
        " lines; the service only accepts width-preserving codecs (gray, correlator, t0, none) "
        "so a hot-swapped assignment never changes the line count");
  }
  return codec;
}

core::CodedLink build_link(const SessionConfig& config) {
  return core::CodedLink(core::SignedPermutation::identity(config.width), build_codec(config));
}

SessionConfig validated(SessionConfig config) {
  if (config.width < 1 || config.width > 64) {
    throw std::invalid_argument("serve: session width must be in [1, 64], got " +
                                std::to_string(config.width));
  }
  if (config.model.size() != config.width) {
    throw std::invalid_argument("serve: capacitance model size " +
                                std::to_string(config.model.size()) +
                                " does not match session width " + std::to_string(config.width));
  }
  if (config.drift.window_words < 2) {
    throw std::invalid_argument("serve: drift window must be >= 2 words, got " +
                                std::to_string(config.drift.window_words));
  }
  return config;
}

}  // namespace

double drift_metric(const stats::SwitchingStats& window, const stats::SwitchingStats& longrun) {
  if (window.width != longrun.width) {
    throw std::invalid_argument("drift_metric: width mismatch (" + std::to_string(window.width) +
                                " vs " + std::to_string(longrun.width) + ")");
  }
  const std::size_t w = window.width;
  double self_sum = 0.0;
  double prob_sum = 0.0;
  for (std::size_t i = 0; i < w; ++i) {
    self_sum += std::abs(window.self[i] - longrun.self[i]);
    prob_sum += std::abs(window.prob_one[i] - longrun.prob_one[i]);
  }
  double coupling_sum = 0.0;
  for (std::size_t i = 0; i < w; ++i) {
    for (std::size_t j = i + 1; j < w; ++j) {
      coupling_sum += std::abs(window.coupling(i, j) - longrun.coupling(i, j));
    }
  }
  const double pairs = static_cast<double>(w) * static_cast<double>(w - 1) / 2.0;
  double metric = (self_sum + prob_sum) / static_cast<double>(w);
  if (pairs > 0.0) metric += coupling_sum / pairs;
  return metric;
}

std::string SessionSnapshot::to_json() const {
  std::string out = "{\"session\":" + std::to_string(id);
  out += ",\"width\":" + std::to_string(width);
  out += ",\"words\":" + std::to_string(words);
  out += ",\"batches\":" + std::to_string(batches);
  out += ",\"windows\":" + std::to_string(windows);
  out += ",\"desyncs\":" + std::to_string(desyncs);
  out += ",\"trips\":" + std::to_string(trips);
  out += ",\"swaps\":" + std::to_string(swaps);
  out += ",\"drift\":" + obs::json_number(last_drift);
  out += ",\"transitions\":" + std::to_string(longrun.transitions);
  out += '}';
  return out;
}

Session::Session(std::uint64_t id, SessionConfig config)
    : id_(id),
      config_(validated(std::move(config))),
      link_(build_link(config_)),
      longrun_(config_.width),
      window_(config_.width, config_.stats_threads) {}

bool Session::window_boundary_locked(IngestResult& out) {
  ++windows_;
  const stats::SwitchingStats window_stats = window_.counts().finalize();
  longrun_.merge(window_.counts());
  const stats::SwitchingStats longrun_stats = longrun_.finalize();
  const double drift = drift_metric(window_stats, longrun_stats);
  last_drift_ = drift;

  bool tripped = false;
  const std::uint64_t cooldown = config_.drift.cooldown_words != 0
                                     ? config_.drift.cooldown_words
                                     : config_.drift.window_words;
  if (!out.tripped && config_.drift.threshold > 0.0 && drift > config_.drift.threshold &&
      !reanneal_inflight_ && words_ - words_at_last_swap_ >= cooldown) {
    out.tripped = true;
    out.drift = drift;
    out.window_stats = window_stats;
    out.current = link_.assignment_snapshot();
    out.words_at_trip = words_;
    reanneal_inflight_ = true;
    ++trips_;
    tripped = true;
  }
  window_.reset_window();
  return tripped;
}

Session::IngestResult Session::ingest(std::span<const std::uint64_t> words) {
  IngestResult out;
  out.current = core::SignedPermutation::identity(config_.width);

  std::lock_guard<std::mutex> lk(mu_);
  ++batches_;
  const std::uint64_t desyncs_before = desyncs_;
  const std::uint64_t mask =
      config_.width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << config_.width) - 1);

  std::size_t offset = 0;
  while (offset < words.size()) {
    const std::uint64_t in_window = window_.words();
    const std::uint64_t room = config_.drift.window_words - in_window;
    const std::size_t take =
        static_cast<std::size_t>(std::min<std::uint64_t>(room, words.size() - offset));
    const std::span<const std::uint64_t> chunk = words.subspan(offset, take);

    // Traffic first (per word, decode-verified), then the vectorized fold.
    for (const std::uint64_t raw : chunk) {
      const std::uint64_t payload = raw & mask;
      if (link_.roundtrip(payload) != payload) ++desyncs_;
    }
    window_.fold(chunk);
    words_ += take;
    offset += take;

    if (window_.words() >= config_.drift.window_words) window_boundary_locked(out);
  }
  out.new_desyncs = desyncs_ - desyncs_before;
  return out;
}

bool Session::install(const core::SignedPermutation& next) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!reanneal_inflight_) return false;  // abandoned or never tripped
  link_.reset(next);
  ++swaps_;
  words_at_last_swap_ = words_;
  reanneal_inflight_ = false;
  return true;
}

void Session::abandon_reanneal() {
  std::lock_guard<std::mutex> lk(mu_);
  reanneal_inflight_ = false;
}

SessionSnapshot Session::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  SessionSnapshot snap;
  snap.id = id_;
  snap.width = config_.width;
  snap.words = words_;
  snap.batches = batches_;
  snap.windows = windows_;
  snap.desyncs = desyncs_;
  snap.trips = trips_;
  snap.swaps = swaps_;
  snap.last_drift = last_drift_;
  snap.longrun = longrun_;
  snap.longrun.merge(window_.counts());  // fold the partial window in
  return snap;
}

}  // namespace tsvcod::serve
