#pragma once
// Length-prefixed framing for the streaming service (`tsvcod_serve`).
//
// The daemon multiplexes many sessions over one byte stream (stdin pipe or a
// socket the caller owns); each frame is:
//
//   offset  size  field
//   0       4     payload length in bytes (LE; excludes this 12-byte header)
//   4       1     type: 'O' open  'D' data  'S' stats  'C' close  'Q' shutdown
//   5       1     reserved (must be 0)
//   6       2     reserved (must be 0)
//   8       4     session id (LE; 0 for shutdown)
//   12      len   payload
//
// Payloads: open = UTF-8 `key=value` tokens separated by whitespace
// (per-session overrides: codec, window, threshold, cooldown); data = packed
// little-endian u64 words (length must be a multiple of 8); stats / close /
// shutdown = empty. Responses and events leave the daemon as JSON lines on
// stdout, so a shell client can drive the binary side with `python3 -c
// 'struct.pack(...)'` and read the answers with grep — which is exactly what
// the `cli_serve` smoke test does.
//
// The reader is strict: truncated headers or payloads, unknown frame types,
// nonzero reserved bytes, oversized or misaligned payloads all throw
// std::runtime_error naming the offending field and byte offset, so a
// desynced client fails loudly instead of feeding garbage words into
// sessions.

#include <cstdint>
#include <istream>
#include <map>
#include <string>
#include <vector>

namespace tsvcod::serve {

enum class FrameType : std::uint8_t {
  open = 'O',
  data = 'D',
  stats = 'S',
  close = 'C',
  shutdown = 'Q',
};

/// Hard cap on a single frame payload (64 MiB): bounds daemon memory per
/// frame and turns a desynced length prefix into an immediate error.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

struct Frame {
  FrameType type = FrameType::shutdown;
  std::uint32_t session = 0;
  std::vector<std::uint64_t> words;  ///< data frames
  std::string text;                  ///< open frames: key=value options
};

/// Read one frame. Returns false on clean EOF at a frame boundary; throws
/// std::runtime_error (naming the field and stream offset) on malformed
/// input.
bool read_frame(std::istream& in, Frame& out);

/// Serialize a frame (the client half; tests and generators use it).
std::string encode_frame(const Frame& frame);

/// Parse an open-frame option payload: whitespace-separated `key=value`
/// tokens. Duplicate keys and tokens without '=' throw std::runtime_error
/// naming the token.
std::map<std::string, std::string> parse_options(const std::string& text);

}  // namespace tsvcod::serve
