#pragma once
// Circuit-level TSV link simulation (paper Sec. 7 / Fig. 6).
//
// Builds the 3-pi RC(L) network of a TSV array from a paper-form capacitance
// matrix, drives it with switched Thevenin drivers (PTM-like strength-6
// output resistance, finite rise time) at the clock frequency, integrates
// the supply energy over a word sequence, and adds a constant per-driver
// leakage. The words passed in are *line* words: the bit-to-TSV assignment
// (including inversions) must already be applied by the caller, which keeps
// this module independent of the core library.

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/netlist.hpp"
#include "phys/matrix.hpp"
#include "phys/tsv_geometry.hpp"

namespace tsvcod::circuit {

struct DriverParams {
  double resistance = 300.0;      ///< driver output resistance [Ohm]
  double rise_time = 5e-12;       ///< output transition time [s]
  double vdd = 1.0;               ///< supply [V]
  double leakage_current = 0.5e-6;///< per-driver static supply current [A]
  double receiver_cap = 2e-15;    ///< receiver input capacitance [F]
};

struct SimOptions {
  double frequency = 3e9;   ///< clock [Hz]
  int segments = 3;         ///< pi segments of the TSV model (3 = paper's 3-pi)
  int steps_per_cycle = 40;
  bool with_inductance = true;
};

struct LinkSimResult {
  double dynamic_energy = 0.0;  ///< supply energy over the window [J]
  double dynamic_power = 0.0;   ///< mean dynamic power [W]
  double leakage_power = 0.0;   ///< static power of all drivers [W]
  std::size_t cycles = 0;

  double total_power() const { return dynamic_power + leakage_power; }
};

/// DC resistance of one TSV [Ohm].
double tsv_resistance(const phys::TsvArrayGeometry& geom);
/// Partial self-inductance of one TSV [H].
double tsv_inductance(const phys::TsvArrayGeometry& geom);

/// The assembled circuit of a TSV link: driver sources, pi-ladders and the
/// distributed capacitances. Exposed so analyses beyond power (crosstalk,
/// delay) can drive the same network with their own waveforms.
struct LinkNetlist {
  Netlist net;
  std::vector<int> source_ids;      ///< per-TSV driver source index
  std::vector<int> receiver_nodes;  ///< per-TSV far-end node
};

/// Build the 3-pi network with one waveform per TSV line.
LinkNetlist build_link_netlist(const phys::TsvArrayGeometry& geom, const phys::Matrix& cap,
                               std::span<const Waveform> line_waveforms,
                               const DriverParams& driver = {}, const SimOptions& options = {});

/// Simulate the transmission of `line_words` (one word per cycle, bit k on
/// TSV k) over the array with capacitances `cap` (paper form, farads).
LinkSimResult simulate_link(const phys::TsvArrayGeometry& geom, const phys::Matrix& cap,
                            std::span<const std::uint64_t> line_words,
                            const DriverParams& driver = {}, const SimOptions& options = {});

}  // namespace tsvcod::circuit
