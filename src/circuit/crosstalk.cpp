#include "circuit/crosstalk.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "circuit/transient.hpp"

namespace tsvcod::circuit {

namespace {

/// Simulate one scenario and return (peak |noise| on victim, 50 % delay of
/// the victim edge launched at t = period). `delay` is NaN when the victim
/// never crosses.
struct ScenarioResult {
  double peak = 0.0;
  double delay = std::nan("");
};

ScenarioResult run_scenario(const phys::TsvArrayGeometry& geom, const phys::Matrix& cap,
                            std::size_t victim, const DriverParams& driver,
                            const SimOptions& options, bool victim_rises,
                            std::uint8_t aggressor_from, std::uint8_t aggressor_to) {
  const std::size_t n = geom.count();
  const double period = 1.0 / options.frequency;

  std::vector<Waveform> waves;
  waves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::uint8_t> bits;
    if (i == victim) {
      bits = victim_rises ? std::vector<std::uint8_t>{0, 1, 1} : std::vector<std::uint8_t>{0, 0, 0};
    } else {
      bits = {aggressor_from, aggressor_to, aggressor_to};
    }
    waves.push_back(bit_waveform(std::move(bits), period, driver.rise_time, driver.vdd));
  }
  const LinkNetlist link = build_link_netlist(geom, cap, waves, driver, options);

  // Fine time step for delay resolution.
  const double dt = period / std::max(options.steps_per_cycle, 400);
  TransientSim sim(link.net, dt);
  const int probe = link.receiver_nodes[victim];

  ScenarioResult out;
  const double settle = victim_rises ? 0.0 : period;  // ignore start-up of held victims
  while (sim.time() < 3.0 * period) {
    sim.step();
    const double v = sim.node_voltage(probe);
    if (!victim_rises && sim.time() > settle) {
      out.peak = std::max(out.peak, std::abs(v));
    }
    if (victim_rises && std::isnan(out.delay) && sim.time() > period &&
        v >= 0.5 * driver.vdd) {
      out.delay = sim.time() - period;
    }
  }
  return out;
}

}  // namespace

CrosstalkResult analyze_crosstalk(const phys::TsvArrayGeometry& geom, const phys::Matrix& cap,
                                  std::size_t victim, const DriverParams& driver,
                                  const SimOptions& options) {
  if (victim >= geom.count()) throw std::invalid_argument("analyze_crosstalk: victim index");
  CrosstalkResult out;
  // Quiet victim at 0, all aggressors rising together at t = period.
  out.victim_peak_noise =
      run_scenario(geom, cap, victim, driver, options, false, 0, 1).peak;
  // Victim rising alone (aggressors parked at 0).
  out.victim_delay_quiet =
      run_scenario(geom, cap, victim, driver, options, true, 0, 0).delay;
  // Victim rising while every aggressor falls (worst Miller case).
  out.victim_delay_opposed =
      run_scenario(geom, cap, victim, driver, options, true, 1, 0).delay;
  return out;
}

}  // namespace tsvcod::circuit
