#include "circuit/tsv_link_sim.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "circuit/transient.hpp"
#include "phys/constants.hpp"

namespace tsvcod::circuit {

double tsv_resistance(const phys::TsvArrayGeometry& geom) {
  return phys::rho_cu * geom.length / (phys::pi * geom.radius * geom.radius);
}

double tsv_inductance(const phys::TsvArrayGeometry& geom) {
  // Partial self-inductance of a cylindrical conductor.
  constexpr double mu0 = 4.0e-7 * phys::pi;
  const double l = geom.length;
  const double r = geom.radius;
  return mu0 * l / (2.0 * phys::pi) * (std::log(2.0 * l / r) - 0.75);
}

LinkNetlist build_link_netlist(const phys::TsvArrayGeometry& geom, const phys::Matrix& cap,
                               std::span<const Waveform> line_waveforms,
                               const DriverParams& driver, const SimOptions& options) {
  geom.validate();
  const std::size_t n = geom.count();
  if (cap.rows() != n || cap.cols() != n) {
    throw std::invalid_argument("build_link_netlist: capacitance matrix size mismatch");
  }
  if (line_waveforms.size() != n) {
    throw std::invalid_argument("build_link_netlist: one waveform per TSV required");
  }
  if (options.segments < 1) throw std::invalid_argument("build_link_netlist: segments >= 1");

  const int seg = options.segments;
  const double r_seg = tsv_resistance(geom) / seg;
  const double l_seg = tsv_inductance(geom) / seg;

  // Shunt weights of the pi ladder: 1/(2*seg) at the two end nodes, 1/seg at
  // the internal ones (for seg = 3: 1/6, 1/3, 1/3, 1/6).
  std::vector<double> shunt(static_cast<std::size_t>(seg) + 1, 1.0 / seg);
  shunt.front() = shunt.back() = 0.5 / seg;

  LinkNetlist link;
  Netlist& net = link.net;
  std::vector<int> src_node(n);
  std::vector<std::vector<int>> ladder(n, std::vector<int>(static_cast<std::size_t>(seg) + 1));
  for (std::size_t i = 0; i < n; ++i) {
    src_node[i] = net.add_node();
    for (int k = 0; k <= seg; ++k) ladder[i][static_cast<std::size_t>(k)] = net.add_node();
  }

  link.source_ids.resize(n);
  link.receiver_nodes.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    link.source_ids[i] = net.vsource(src_node[i], Netlist::kGround, line_waveforms[i]);
    link.receiver_nodes[i] = ladder[i].back();
    net.resistor(src_node[i], ladder[i].front(), driver.resistance);
    net.capacitor(ladder[i].back(), Netlist::kGround, driver.receiver_cap);
    for (int k = 0; k < seg; ++k) {
      const int a = ladder[i][static_cast<std::size_t>(k)];
      const int b = ladder[i][static_cast<std::size_t>(k) + 1];
      if (options.with_inductance) {
        const int mid = net.add_node();
        net.resistor(a, mid, r_seg);
        net.inductor(mid, b, l_seg);
      } else {
        net.resistor(a, b, r_seg);
      }
    }
  }

  // Distributed ground and coupling capacitances along the ladder.
  for (std::size_t i = 0; i < n; ++i) {
    for (int k = 0; k <= seg; ++k) {
      const double w = shunt[static_cast<std::size_t>(k)];
      if (cap(i, i) > 0.0) {
        net.capacitor(ladder[i][static_cast<std::size_t>(k)], Netlist::kGround, cap(i, i) * w);
      }
      for (std::size_t j = i + 1; j < n; ++j) {
        if (cap(i, j) > 0.0) {
          net.capacitor(ladder[i][static_cast<std::size_t>(k)],
                        ladder[j][static_cast<std::size_t>(k)], cap(i, j) * w);
        }
      }
    }
  }
  return link;
}

LinkSimResult simulate_link(const phys::TsvArrayGeometry& geom, const phys::Matrix& cap,
                            std::span<const std::uint64_t> line_words,
                            const DriverParams& driver, const SimOptions& options) {
  const std::size_t n = geom.count();
  if (line_words.size() < 2) throw std::invalid_argument("simulate_link: need >= 2 words");
  const double period = 1.0 / options.frequency;

  std::vector<Waveform> waves;
  waves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::uint8_t> bits(line_words.size());
    for (std::size_t t = 0; t < line_words.size(); ++t) {
      bits[t] = static_cast<std::uint8_t>((line_words[t] >> i) & 1u);
    }
    waves.push_back(bit_waveform(std::move(bits), period, driver.rise_time, driver.vdd));
  }
  const LinkNetlist link = build_link_netlist(geom, cap, waves, driver, options);

  const double dt = period / options.steps_per_cycle;
  TransientSim sim(link.net, dt);
  const double t_end = period * static_cast<double>(line_words.size());
  sim.run_until(t_end);

  LinkSimResult out;
  out.cycles = line_words.size();
  // Net supply energy: the driver sources sit at the rail voltages except
  // during the short (5 ps default) edges, so the signed integral of v*i of
  // each source is the energy its rail delivers. Rectified (charge-based)
  // metering would double-bill static-victim crosstalk, whose bounce charge
  // physically returns to the rail.
  for (std::size_t i = 0; i < n; ++i) {
    out.dynamic_energy += sim.source_energy(link.source_ids[i]);
  }
  out.dynamic_power = out.dynamic_energy / t_end;
  out.leakage_power = static_cast<double>(n) * driver.leakage_current * driver.vdd;
  return out;
}

}  // namespace tsvcod::circuit
