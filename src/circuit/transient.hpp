#pragma once
// Fixed-step backward-Euler MNA transient simulator.
//
// Unknowns are the node voltages (ground eliminated) plus one branch current
// per voltage source and per inductor. Capacitors and inductors use
// backward-Euler companion models — L-stable, so the sharp driver edges do
// not ring (trapezoidal ringing would corrupt the rectified charge meter).
// For a fixed step the system matrix is constant: it is LU-factorized once and only the right-hand side changes
// per step — the property that makes multi-thousand-cycle link simulations
// cheap.
//
// Sign conventions: a source's branch current flows from its + node through
// the source; `source_energy` reports the energy *delivered by* the source,
// which for a switched CMOS driver model equals the supply energy drawn.

#include <vector>

#include "circuit/netlist.hpp"
#include "phys/matrix.hpp"

namespace tsvcod::circuit {

class TransientSim {
 public:
  TransientSim(const Netlist& netlist, double dt);

  /// Advance one step of size dt.
  void step();
  /// Advance until `t_end` (inclusive of the last partial-free step).
  void run_until(double t_end);

  double time() const { return t_; }
  double node_voltage(int node) const;
  /// Energy delivered by source `id` since t = 0 [J] (∫ v·i dt).
  double source_energy(int id) const;
  /// Sourced (positive-direction) charge of source `id` since t = 0 [C]:
  /// ∫ max(i, 0) dt. For a switched CMOS driver the supply energy is
  /// Vdd times this charge — the rail draws Q·Vdd per pull-up regardless of
  /// the edge shape, unlike the ∫v·i of the ramped Thevenin source.
  double source_positive_charge(int id) const;
  /// Instantaneous current out of source `id`'s + terminal [A].
  double source_current(int id) const;

 private:
  void assemble();
  void factorize();
  void solve_step();

  const Netlist& net_;
  double dt_;
  double t_ = 0.0;
  int n_nodes_;
  int n_src_;
  int n_ind_;
  int dim_;

  phys::Matrix lu_;               ///< LU factors (in place, Doolittle w/ partial pivoting)
  std::vector<int> pivot_;
  std::vector<double> x_;         ///< current solution (voltages + branch currents)
  std::vector<double> rhs_;
  std::vector<double> cap_v_;     ///< capacitor voltages (history)
  std::vector<double> src_energy_;
  std::vector<double> src_charge_pos_;
};

}  // namespace tsvcod::circuit
