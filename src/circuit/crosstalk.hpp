#pragma once
// Signal-integrity analysis of a TSV link (crosstalk noise and Miller
// delay). The paper's related work fights TSV coupling with crosstalk-
// avoidance codes; this analysis quantifies the same physics on our 3-pi
// model: how hard a quiet victim is bounced by simultaneously switching
// aggressors, and how much opposed switching slows a victim edge. It also
// exposes the MOS-effect side benefit of the inversion trick: raising a
// line's 1-probability widens its depletion region and weakens its coupling.

#include "circuit/tsv_link_sim.hpp"

namespace tsvcod::circuit {

struct CrosstalkResult {
  double victim_peak_noise = 0.0;     ///< worst |V| bounce on a quiet victim [V]
  double victim_delay_quiet = 0.0;    ///< 50 % delay, aggressors quiet [s]
  double victim_delay_opposed = 0.0;  ///< 50 % delay, aggressors switching opposite [s]

  double miller_slowdown() const {
    return victim_delay_quiet > 0.0 ? victim_delay_opposed / victim_delay_quiet : 0.0;
  }
};

/// Worst-case crosstalk analysis for TSV `victim` of the array: all other
/// TSVs act as synchronized aggressors.
CrosstalkResult analyze_crosstalk(const phys::TsvArrayGeometry& geom, const phys::Matrix& cap,
                                  std::size_t victim, const DriverParams& driver = {},
                                  const SimOptions& options = {});

}  // namespace tsvcod::circuit
