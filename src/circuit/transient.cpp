#include "circuit/transient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsvcod::circuit {

namespace {

constexpr int kGround = Netlist::kGround;

}  // namespace

TransientSim::TransientSim(const Netlist& netlist, double dt) : net_(netlist), dt_(dt) {
  if (!(dt > 0.0)) throw std::invalid_argument("TransientSim: dt must be positive");
  n_nodes_ = net_.node_count();
  n_src_ = static_cast<int>(net_.sources().size());
  n_ind_ = static_cast<int>(net_.inductors().size());
  dim_ = n_nodes_ + n_src_ + n_ind_;
  if (dim_ == 0) throw std::invalid_argument("TransientSim: empty netlist");
  x_.assign(static_cast<std::size_t>(dim_), 0.0);
  rhs_.assign(static_cast<std::size_t>(dim_), 0.0);
  cap_v_.assign(net_.capacitors().size(), 0.0);
  src_energy_.assign(static_cast<std::size_t>(n_src_), 0.0);
  src_charge_pos_.assign(static_cast<std::size_t>(n_src_), 0.0);
  assemble();
  factorize();
}

void TransientSim::assemble() {
  lu_ = phys::Matrix(static_cast<std::size_t>(dim_), static_cast<std::size_t>(dim_));
  const auto idx = [](int node) { return static_cast<std::size_t>(node - 1); };
  const auto stamp_conductance = [&](int a, int b, double g) {
    if (a != kGround) lu_(idx(a), idx(a)) += g;
    if (b != kGround) lu_(idx(b), idx(b)) += g;
    if (a != kGround && b != kGround) {
      lu_(idx(a), idx(b)) -= g;
      lu_(idx(b), idx(a)) -= g;
    }
  };
  for (const auto& r : net_.resistors()) stamp_conductance(r.a, r.b, 1.0 / r.ohms);
  for (const auto& c : net_.capacitors()) stamp_conductance(c.a, c.b, c.farads / dt_);

  for (int s = 0; s < n_src_; ++s) {
    const auto& src = net_.sources()[static_cast<std::size_t>(s)];
    const std::size_t row = static_cast<std::size_t>(n_nodes_ + s);
    if (src.plus != kGround) {
      lu_(row, idx(src.plus)) = 1.0;
      lu_(idx(src.plus), row) = 1.0;
    }
    if (src.minus != kGround) {
      lu_(row, idx(src.minus)) = -1.0;
      lu_(idx(src.minus), row) = -1.0;
    }
  }
  for (int l = 0; l < n_ind_; ++l) {
    const auto& ind = net_.inductors()[static_cast<std::size_t>(l)];
    const std::size_t row = static_cast<std::size_t>(n_nodes_ + n_src_ + l);
    if (ind.a != kGround) {
      lu_(row, idx(ind.a)) = 1.0;
      lu_(idx(ind.a), row) = 1.0;
    }
    if (ind.b != kGround) {
      lu_(row, idx(ind.b)) = -1.0;
      lu_(idx(ind.b), row) = -1.0;
    }
    lu_(row, row) = -ind.henries / dt_;
  }
}

void TransientSim::factorize() {
  const int n = dim_;
  pivot_.resize(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    // Partial pivoting.
    int p = k;
    double best = std::abs(lu_(static_cast<std::size_t>(k), static_cast<std::size_t>(k)));
    for (int r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(static_cast<std::size_t>(r), static_cast<std::size_t>(k)));
      if (v > best) {
        best = v;
        p = r;
      }
    }
    if (best < 1e-300) throw std::runtime_error("TransientSim: singular MNA matrix");
    pivot_[static_cast<std::size_t>(k)] = p;
    if (p != k) {
      for (int c = 0; c < n; ++c) {
        std::swap(lu_(static_cast<std::size_t>(k), static_cast<std::size_t>(c)),
                  lu_(static_cast<std::size_t>(p), static_cast<std::size_t>(c)));
      }
    }
    const double pivot = lu_(static_cast<std::size_t>(k), static_cast<std::size_t>(k));
    for (int r = k + 1; r < n; ++r) {
      const double f = lu_(static_cast<std::size_t>(r), static_cast<std::size_t>(k)) / pivot;
      lu_(static_cast<std::size_t>(r), static_cast<std::size_t>(k)) = f;
      if (f == 0.0) continue;
      for (int c = k + 1; c < n; ++c) {
        lu_(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) -=
            f * lu_(static_cast<std::size_t>(k), static_cast<std::size_t>(c));
      }
    }
  }
}

void TransientSim::solve_step() {
  const int n = dim_;
  // Apply row permutation, then forward/back substitution.
  for (int k = 0; k < n; ++k) {
    const int p = pivot_[static_cast<std::size_t>(k)];
    if (p != k) std::swap(rhs_[static_cast<std::size_t>(k)], rhs_[static_cast<std::size_t>(p)]);
    for (int c = 0; c < k; ++c) {
      rhs_[static_cast<std::size_t>(k)] -=
          lu_(static_cast<std::size_t>(k), static_cast<std::size_t>(c)) *
          rhs_[static_cast<std::size_t>(c)];
    }
  }
  for (int k = n - 1; k >= 0; --k) {
    double v = rhs_[static_cast<std::size_t>(k)];
    for (int c = k + 1; c < n; ++c) {
      v -= lu_(static_cast<std::size_t>(k), static_cast<std::size_t>(c)) *
           rhs_[static_cast<std::size_t>(c)];
    }
    rhs_[static_cast<std::size_t>(k)] =
        v / lu_(static_cast<std::size_t>(k), static_cast<std::size_t>(k));
  }
  x_ = rhs_;
}

double TransientSim::node_voltage(int node) const {
  if (node == kGround) return 0.0;
  if (node < 0 || node > n_nodes_) throw std::invalid_argument("node_voltage: unknown node");
  return x_[static_cast<std::size_t>(node - 1)];
}

double TransientSim::source_current(int id) const {
  if (id < 0 || id >= n_src_) throw std::invalid_argument("source_current: unknown source");
  // The MNA branch current flows into the + terminal; delivered current is
  // its negation.
  return -x_[static_cast<std::size_t>(n_nodes_ + id)];
}

double TransientSim::source_energy(int id) const {
  if (id < 0 || id >= n_src_) throw std::invalid_argument("source_energy: unknown source");
  return src_energy_[static_cast<std::size_t>(id)];
}

double TransientSim::source_positive_charge(int id) const {
  if (id < 0 || id >= n_src_) {
    throw std::invalid_argument("source_positive_charge: unknown source");
  }
  return src_charge_pos_[static_cast<std::size_t>(id)];
}

void TransientSim::step() {
  const double t_next = t_ + dt_;
  std::fill(rhs_.begin(), rhs_.end(), 0.0);

  // Capacitor history currents (backward-Euler companion: G = C/dt).
  for (std::size_t k = 0; k < net_.capacitors().size(); ++k) {
    const auto& c = net_.capacitors()[k];
    const double hist = c.farads / dt_ * cap_v_[k];
    if (c.a != kGround) rhs_[static_cast<std::size_t>(c.a - 1)] += hist;
    if (c.b != kGround) rhs_[static_cast<std::size_t>(c.b - 1)] -= hist;
  }
  // Source voltages at the new time.
  std::vector<double> v_src(static_cast<std::size_t>(n_src_));
  for (int s = 0; s < n_src_; ++s) {
    v_src[static_cast<std::size_t>(s)] = net_.sources()[static_cast<std::size_t>(s)].v(t_next);
    rhs_[static_cast<std::size_t>(n_nodes_ + s)] = v_src[static_cast<std::size_t>(s)];
  }
  // Inductor history (backward Euler: v = (L/dt)(i_new - i_old)).
  for (int l = 0; l < n_ind_; ++l) {
    const auto& ind = net_.inductors()[static_cast<std::size_t>(l)];
    const double i_prev = x_[static_cast<std::size_t>(n_nodes_ + n_src_ + l)];
    rhs_[static_cast<std::size_t>(n_nodes_ + n_src_ + l)] = -ind.henries / dt_ * i_prev;
  }

  // Previous source powers/currents for trapezoidal integration.
  std::vector<double> p_prev(static_cast<std::size_t>(n_src_));
  std::vector<double> i_prev(static_cast<std::size_t>(n_src_));
  for (int s = 0; s < n_src_; ++s) {
    const double v_old = net_.sources()[static_cast<std::size_t>(s)].v(t_);
    i_prev[static_cast<std::size_t>(s)] = source_current(s);
    p_prev[static_cast<std::size_t>(s)] = v_old * i_prev[static_cast<std::size_t>(s)];
  }

  solve_step();
  t_ = t_next;

  // Update capacitor voltage histories with the new node voltages.
  for (std::size_t k = 0; k < net_.capacitors().size(); ++k) {
    const auto& c = net_.capacitors()[k];
    const double va = c.a == kGround ? 0.0 : x_[static_cast<std::size_t>(c.a - 1)];
    const double vb = c.b == kGround ? 0.0 : x_[static_cast<std::size_t>(c.b - 1)];
    cap_v_[k] = va - vb;
  }
  // Accumulate delivered energies and sourced charge (trapezoid).
  for (int s = 0; s < n_src_; ++s) {
    const double i_new = source_current(s);
    const double p_new = v_src[static_cast<std::size_t>(s)] * i_new;
    src_energy_[static_cast<std::size_t>(s)] +=
        0.5 * (p_prev[static_cast<std::size_t>(s)] + p_new) * dt_;
    src_charge_pos_[static_cast<std::size_t>(s)] +=
        0.5 * (std::max(0.0, i_prev[static_cast<std::size_t>(s)]) + std::max(0.0, i_new)) * dt_;
  }
}

void TransientSim::run_until(double t_end) {
  while (t_ + 0.5 * dt_ < t_end) step();
}

}  // namespace tsvcod::circuit
