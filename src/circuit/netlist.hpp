#pragma once
// Linear circuit netlist for transient simulation (the repo's stand-in for
// the paper's Spectre runs).
//
// Supported elements: resistors, capacitors, inductors and independent
// voltage sources with arbitrary time-dependent waveforms. Node 0 is ground.
// The netlist is immutable once handed to a TransientSim.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace tsvcod::circuit {

using Waveform = std::function<double(double)>;  ///< volts as a function of time [s]

struct Resistor {
  int a, b;
  double ohms;
};
struct Capacitor {
  int a, b;
  double farads;
};
struct Inductor {
  int a, b;
  double henries;
};
struct VSource {
  int plus, minus;
  Waveform v;
};

class Netlist {
 public:
  static constexpr int kGround = 0;

  /// Create a new node; node ids are dense and start at 1.
  int add_node() { return ++node_count_; }
  int node_count() const { return node_count_; }

  void resistor(int a, int b, double ohms);
  void capacitor(int a, int b, double farads);
  void inductor(int a, int b, double henries);
  /// Returns the source index (for energy metering).
  int vsource(int plus, int minus, Waveform v);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Inductor>& inductors() const { return inductors_; }
  const std::vector<VSource>& sources() const { return sources_; }

 private:
  void check_node(int n) const;

  int node_count_ = 0;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Inductor> inductors_;
  std::vector<VSource> sources_;
};

/// DC level waveform.
Waveform dc(double volts);

/// Trapezoidal bit-sequence waveform: bit k holds during cycle k (period
/// `period` seconds) with linear transitions of `rise` seconds at each cycle
/// boundary. The level before the first cycle is 0.
Waveform bit_waveform(std::vector<std::uint8_t> bits, double period, double rise, double vdd);

}  // namespace tsvcod::circuit
