#include "circuit/netlist.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace tsvcod::circuit {

void Netlist::check_node(int n) const {
  if (n < 0 || n > node_count_) throw std::invalid_argument("Netlist: unknown node");
}

void Netlist::resistor(int a, int b, double ohms) {
  check_node(a);
  check_node(b);
  if (!(ohms > 0.0)) throw std::invalid_argument("Netlist: resistance must be positive");
  resistors_.push_back({a, b, ohms});
}

void Netlist::capacitor(int a, int b, double farads) {
  check_node(a);
  check_node(b);
  if (!(farads >= 0.0)) throw std::invalid_argument("Netlist: capacitance must be >= 0");
  if (farads > 0.0) capacitors_.push_back({a, b, farads});
}

void Netlist::inductor(int a, int b, double henries) {
  check_node(a);
  check_node(b);
  if (!(henries > 0.0)) throw std::invalid_argument("Netlist: inductance must be positive");
  inductors_.push_back({a, b, henries});
}

int Netlist::vsource(int plus, int minus, Waveform v) {
  check_node(plus);
  check_node(minus);
  if (!v) throw std::invalid_argument("Netlist: null waveform");
  sources_.push_back({plus, minus, std::move(v)});
  return static_cast<int>(sources_.size()) - 1;
}

Waveform dc(double volts) {
  return [volts](double) { return volts; };
}

Waveform bit_waveform(std::vector<std::uint8_t> bits, double period, double rise, double vdd) {
  if (bits.empty()) throw std::invalid_argument("bit_waveform: empty bit sequence");
  if (!(period > 0.0) || !(rise >= 0.0) || rise >= period) {
    throw std::invalid_argument("bit_waveform: need 0 <= rise < period");
  }
  return [bits = std::move(bits), period, rise, vdd](double t) -> double {
    if (t <= 0.0) return 0.0;
    const auto cycle = static_cast<std::size_t>(std::floor(t / period));
    const double phase = t - static_cast<double>(cycle) * period;
    const double to = cycle < bits.size() ? (bits[cycle] ? vdd : 0.0) : (bits.back() ? vdd : 0.0);
    const double from =
        cycle == 0 ? 0.0 : (bits[std::min(cycle - 1, bits.size() - 1)] ? vdd : 0.0);
    if (rise <= 0.0 || phase >= rise) return to;
    return from + (to - from) * phase / rise;
  };
}

}  // namespace tsvcod::circuit
