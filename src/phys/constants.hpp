#pragma once
// Physical constants and unit helpers used throughout tsvcod.
//
// All quantities are SI unless a suffix says otherwise. Helper literals for
// the micrometre-scale geometry keep call sites readable.

namespace tsvcod::phys {

inline constexpr double eps0 = 8.8541878128e-12;  ///< vacuum permittivity [F/m]
inline constexpr double eps_r_sio2 = 3.9;         ///< SiO2 relative permittivity
inline constexpr double eps_r_si = 11.9;          ///< silicon relative permittivity
inline constexpr double q_e = 1.602176634e-19;    ///< elementary charge [C]
inline constexpr double k_B = 1.380649e-23;       ///< Boltzmann constant [J/K]
inline constexpr double T_room = 300.0;           ///< nominal temperature [K]
inline constexpr double Vt_room = k_B * T_room / q_e;  ///< thermal voltage [V]
inline constexpr double n_i_si = 1.0e16;          ///< Si intrinsic carrier density [1/m^3]
inline constexpr double mu_p_si = 0.045;          ///< hole mobility in Si [m^2/Vs]
inline constexpr double rho_cu = 1.68e-8;         ///< copper resistivity [Ohm*m]
inline constexpr double pi = 3.14159265358979323846;

/// Acceptor density that yields a given p-substrate conductivity [S/m].
constexpr double acceptor_density_for_conductivity(double sigma) {
  return sigma / (q_e * mu_p_si);
}

namespace literals {
constexpr double operator""_um(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_um(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nm(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_nm(unsigned long long v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_GHz(long double v) { return static_cast<double>(v) * 1e9; }
constexpr double operator""_GHz(unsigned long long v) { return static_cast<double>(v) * 1e9; }
constexpr double operator""_fF(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator""_fF(unsigned long long v) { return static_cast<double>(v) * 1e-15; }
}  // namespace literals

}  // namespace tsvcod::phys
