#pragma once
// Cylindrical deep-depletion MOS model for a TSV.
//
// A copper TSV, its SiO2 liner and the p-doped substrate form a MOS
// capacitor. A positive TSV voltage pushes the structure into (deep)
// depletion: at GHz switching rates no inversion layer can form, so the
// depletion width keeps following the applied bias (Bandyopadhyay et al.,
// TCPMT 2011). The DAC'18 paper models the depleted annulus as a sigma = 0
// region whose width follows from the exact cylindrical Poisson equation at
// the *average* TSV voltage pr_i * Vdd, where pr_i is the 1-bit probability.
//
// This header provides that solve plus the per-unit-length capacitances of
// the coaxial oxide / depletion annuli.

namespace tsvcod::phys {

/// Doping/bias parameters of the MOS junction around a TSV.
struct MosParams {
  double substrate_sigma = 10.0;  ///< p-substrate conductivity [S/m]
  /// V_FB of the Cu/SiO2/p-Si stack [V]. The default 0 V assumes work-
  /// function difference and oxide charge roughly cancel, which yields the
  /// full accumulation-to-deep-depletion capacitance swing the paper's
  /// reference [6] reports (up to ~40 %).
  double flatband_voltage = 0.0;
  double vdd = 1.0;               ///< supply voltage [V]

  /// Acceptor density implied by the substrate conductivity [1/m^3].
  double acceptor_density() const;
};

/// Per-unit-length capacitance of a coaxial annulus (r_in < r_out) [F/m].
double coaxial_capacitance_per_length(double r_in, double r_out, double eps_r);

/// Depletion width [m] around a TSV of metal radius `r` with oxide thickness
/// `t_ox`, biased at `v_tsv` volts relative to the grounded substrate.
/// Returns 0 when the junction is in accumulation (v_tsv <= V_FB).
///
/// Solves, by bisection on w, the cylindrical deep-depletion balance
///   v_tsv - V_FB = Q_dep / C_ox' + psi_s(w)
/// with  Q_dep  = q*N_A*pi*((R1+w)^2 - R1^2)   (charge per unit length)
///       psi_s  = q*N_A/(2*eps_si) * [ (R1+w)^2 ln((R1+w)/R1) - ((R1+w)^2-R1^2)/2 ]
/// where R1 = r + t_ox is the oxide outer radius.
double depletion_width(double r, double t_ox, double v_tsv, const MosParams& mos);

/// Depletion width at the average voltage pr * Vdd of a signal with 1-bit
/// probability `pr` (the paper's Sec. 2 recipe).
double depletion_width_for_probability(double r, double t_ox, double pr,
                                       const MosParams& mos);

/// Per-unit-length series MOS capacitance (oxide in series with the depleted
/// annulus) of a TSV at 1-bit probability `pr` [F/m]. With w = 0 this is the
/// plain oxide capacitance (accumulation: conductive Si reaches the liner).
double mos_capacitance_per_length(double r, double t_ox, double pr,
                                  const MosParams& mos);

}  // namespace tsvcod::phys
