#include "phys/depletion.hpp"

#include <cmath>
#include <stdexcept>

#include "phys/constants.hpp"

namespace tsvcod::phys {

double MosParams::acceptor_density() const {
  return acceptor_density_for_conductivity(substrate_sigma);
}

double coaxial_capacitance_per_length(double r_in, double r_out, double eps_r) {
  if (!(r_in > 0.0) || !(r_out > r_in)) {
    throw std::invalid_argument("coaxial_capacitance_per_length: need 0 < r_in < r_out");
  }
  return 2.0 * pi * eps0 * eps_r / std::log(r_out / r_in);
}

namespace {

/// Voltage drop across oxide + depletion for a depletion width w [V].
double bias_for_width(double r, double t_ox, double w, double n_a) {
  const double r1 = r + t_ox;
  const double r2 = r1 + w;
  const double eps_si_abs = eps0 * eps_r_si;
  // Depletion charge per unit length.
  const double q_dep = q_e * n_a * pi * (r2 * r2 - r1 * r1);
  const double c_ox = coaxial_capacitance_per_length(r, r1, eps_r_sio2);
  const double v_ox = q_dep / c_ox;
  const double psi_s = q_e * n_a / (2.0 * eps_si_abs) *
                       (r2 * r2 * std::log(r2 / r1) - 0.5 * (r2 * r2 - r1 * r1));
  return v_ox + psi_s;
}

}  // namespace

double depletion_width(double r, double t_ox, double v_tsv, const MosParams& mos) {
  if (!(r > 0.0) || !(t_ox > 0.0)) {
    throw std::invalid_argument("depletion_width: need positive r and t_ox");
  }
  const double v_eff = v_tsv - mos.flatband_voltage;
  if (v_eff <= 0.0) return 0.0;  // accumulation / flatband
  const double n_a = mos.acceptor_density();

  // Bracket: bias_for_width is strictly increasing in w.
  double lo = 0.0;
  double hi = 1e-7;
  while (bias_for_width(r, t_ox, hi, n_a) < v_eff) {
    hi *= 2.0;
    if (hi > 1e-3) break;  // physically absurd; clamp below
  }
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (bias_for_width(r, t_ox, mid, n_a) < v_eff) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double depletion_width_for_probability(double r, double t_ox, double pr,
                                       const MosParams& mos) {
  if (pr < 0.0 || pr > 1.0) {
    throw std::invalid_argument("depletion_width_for_probability: pr outside [0,1]");
  }
  return depletion_width(r, t_ox, pr * mos.vdd, mos);
}

double mos_capacitance_per_length(double r, double t_ox, double pr,
                                  const MosParams& mos) {
  const double r1 = r + t_ox;
  const double c_ox = coaxial_capacitance_per_length(r, r1, eps_r_sio2);
  const double w = depletion_width_for_probability(r, t_ox, pr, mos);
  if (w <= 0.0) return c_ox;
  const double c_dep = coaxial_capacitance_per_length(r1, r1 + w, eps_r_si);
  return 1.0 / (1.0 / c_ox + 1.0 / c_dep);
}

}  // namespace tsvcod::phys
