#pragma once
// Small dense matrix/vector helpers shared across tsvcod.
//
// The matrices in this project are tiny (N = number of TSVs in one array,
// or MNA node counts of a few hundred), so a straightforward row-major dense
// container beats any external dependency. Only the operations the library
// actually needs are provided.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace tsvcod::phys {

template <typename T>
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  static DenseMatrix identity(std::size_t n) {
    DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  T& at(std::size_t r, std::size_t c) {
    check(r, c);
    return (*this)(r, c);
  }
  const T& at(std::size_t r, std::size_t c) const {
    check(r, c);
    return (*this)(r, c);
  }

  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

  DenseMatrix transposed() const {
    DenseMatrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

  friend DenseMatrix operator*(const DenseMatrix& a, const DenseMatrix& b) {
    if (a.cols_ != b.rows_) throw std::invalid_argument("matrix product: shape mismatch");
    DenseMatrix out(a.rows_, b.cols_);
    for (std::size_t i = 0; i < a.rows_; ++i) {
      for (std::size_t k = 0; k < a.cols_; ++k) {
        const T aik = a(i, k);
        if (aik == T{}) continue;
        for (std::size_t j = 0; j < b.cols_; ++j) out(i, j) += aik * b(k, j);
      }
    }
    return out;
  }

  friend DenseMatrix operator+(DenseMatrix a, const DenseMatrix& b) {
    a.check_same_shape(b);
    for (std::size_t i = 0; i < a.data_.size(); ++i) a.data_[i] += b.data_[i];
    return a;
  }

  friend DenseMatrix operator-(DenseMatrix a, const DenseMatrix& b) {
    a.check_same_shape(b);
    for (std::size_t i = 0; i < a.data_.size(); ++i) a.data_[i] -= b.data_[i];
    return a;
  }

  friend DenseMatrix operator*(T s, DenseMatrix m) {
    for (auto& v : m.data_) v *= s;
    return m;
  }

  /// Element-wise (Hadamard) product.
  DenseMatrix hadamard(const DenseMatrix& b) const {
    check_same_shape(b);
    DenseMatrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= b.data_[i];
    return out;
  }

  /// Frobenius inner product <A, B> = sum_ij A_ij * B_ij.
  T frobenius(const DenseMatrix& b) const {
    check_same_shape(b);
    T acc{};
    for (std::size_t i = 0; i < data_.size(); ++i) acc += data_[i] * b.data_[i];
    return acc;
  }

  bool operator==(const DenseMatrix&) const = default;

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("DenseMatrix index");
  }
  void check_same_shape(const DenseMatrix& b) const {
    if (rows_ != b.rows_ || cols_ != b.cols_)
      throw std::invalid_argument("DenseMatrix: shape mismatch");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using Matrix = DenseMatrix<double>;

}  // namespace tsvcod::phys
