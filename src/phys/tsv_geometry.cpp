#include "phys/tsv_geometry.hpp"

#include <cmath>

namespace tsvcod::phys {

int TsvArrayGeometry::direct_neighbor_count(std::size_t i) const {
  const std::size_t r = row_of(i);
  const std::size_t c = col_of(i);
  int n = 0;
  if (r > 0) ++n;
  if (r + 1 < rows) ++n;
  if (c > 0) ++n;
  if (c + 1 < cols) ++n;
  return n;
}

int TsvArrayGeometry::diagonal_neighbor_count(std::size_t i) const {
  const std::size_t r = row_of(i);
  const std::size_t c = col_of(i);
  int n = 0;
  if (r > 0 && c > 0) ++n;
  if (r > 0 && c + 1 < cols) ++n;
  if (r + 1 < rows && c > 0) ++n;
  if (r + 1 < rows && c + 1 < cols) ++n;
  return n;
}

double TsvArrayGeometry::distance(std::size_t i, std::size_t j) const {
  const Point2 a = position(i);
  const Point2 b = position(j);
  return std::hypot(a.x - b.x, a.y - b.y);
}

void TsvArrayGeometry::validate() const {
  if (rows == 0 || cols == 0) throw std::invalid_argument("TsvArrayGeometry: empty array");
  if (!(radius > 0.0) || !(pitch > 0.0) || !(length > 0.0)) {
    throw std::invalid_argument("TsvArrayGeometry: non-positive dimensions");
  }
  if (pitch < 2.0 * liner_radius()) {
    throw std::invalid_argument("TsvArrayGeometry: TSV liners overlap (pitch too small)");
  }
}

}  // namespace tsvcod::phys
