#pragma once
// Geometric description of a regular M x N TSV array (DAC'18, Sec. 2).
//
// TSVs are copper cylinders of radius r and length l (= substrate thickness,
// 50 um), on a regular grid with centre-to-centre pitch d, each wrapped in a
// SiO2 liner of thickness r/5. Positions are reported in a local coordinate
// frame with TSV (row 0, col 0) at the origin.

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "phys/depletion.hpp"

namespace tsvcod::phys {

struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

struct TsvArrayGeometry {
  std::size_t rows = 0;
  std::size_t cols = 0;
  double radius = 1e-6;  ///< metal radius r [m]
  double pitch = 4e-6;   ///< centre-to-centre distance d [m]
  double length = 50e-6; ///< TSV length l [m]
  MosParams mos{};

  std::size_t count() const { return rows * cols; }
  double oxide_thickness() const { return radius / 5.0; }
  /// Outer radius of the oxide liner.
  double liner_radius() const { return radius + oxide_thickness(); }

  std::size_t index(std::size_t row, std::size_t col) const {
    if (row >= rows || col >= cols) throw std::out_of_range("TsvArrayGeometry::index");
    return row * cols + col;
  }
  std::size_t row_of(std::size_t i) const { return i / cols; }
  std::size_t col_of(std::size_t i) const { return i % cols; }

  Point2 position(std::size_t i) const {
    return {static_cast<double>(col_of(i)) * pitch, static_cast<double>(row_of(i)) * pitch};
  }

  /// Number of direct (N/E/S/W at distance d) neighbours of TSV i.
  int direct_neighbor_count(std::size_t i) const;
  /// Number of diagonal (distance sqrt(2) d) neighbours of TSV i.
  int diagonal_neighbor_count(std::size_t i) const;

  bool is_corner(std::size_t i) const { return direct_neighbor_count(i) <= 2 && rows > 1 && cols > 1; }
  bool is_edge(std::size_t i) const { return direct_neighbor_count(i) == 3; }
  bool is_middle(std::size_t i) const { return direct_neighbor_count(i) == 4; }

  /// Euclidean centre distance between TSVs i and j [m].
  double distance(std::size_t i, std::size_t j) const;

  void validate() const;

  /// Convenience factories for the geometries the paper evaluates.
  static TsvArrayGeometry itrs2018_min(std::size_t rows, std::size_t cols) {
    TsvArrayGeometry g;
    g.rows = rows;
    g.cols = cols;
    g.radius = 1e-6;
    g.pitch = 4e-6;
    return g;
  }
  static TsvArrayGeometry itrs2018_relaxed(std::size_t rows, std::size_t cols) {
    TsvArrayGeometry g;
    g.rows = rows;
    g.cols = cols;
    g.radius = 2e-6;
    g.pitch = 8e-6;
    return g;
  }
  /// The 5x5 r=1um / d=4.5um array of Fig. 2.
  static TsvArrayGeometry fig2_fine() {
    TsvArrayGeometry g;
    g.rows = 5;
    g.cols = 5;
    g.radius = 1e-6;
    g.pitch = 4.5e-6;
    return g;
  }
};

}  // namespace tsvcod::phys
