#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace tsvcod::simd {

namespace {

Level probe() noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vpopcntdq")) {
    return Level::avx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) return Level::avx2;
  if (__builtin_cpu_supports("popcnt")) return Level::popcnt;
#endif
  return Level::scalar;
}

// Programmatic clamp; -1 means "none, defer to TSVCOD_SIMD / detected".
std::atomic<int> g_forced{-1};

/// TSVCOD_SIMD clamp, parsed once per process. Unset (or empty) means no
/// clamp, expressed as the top level.
Level env_clamp() {
  static const Level cached = [] {
    const char* v = std::getenv("TSVCOD_SIMD");
    if (v == nullptr || *v == '\0') return Level::avx512;
    try {
      return parse_level(v);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(std::string("TSVCOD_SIMD: ") + e.what());
    }
  }();
  return cached;
}

}  // namespace

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::scalar: return "scalar";
    case Level::popcnt: return "popcnt";
    case Level::avx2: return "avx2";
    case Level::avx512: return "avx512";
  }
  return "scalar";
}

Level parse_level(std::string_view name) {
  if (name == "scalar") return Level::scalar;
  if (name == "popcnt") return Level::popcnt;
  if (name == "avx2") return Level::avx2;
  if (name == "avx512") return Level::avx512;
  throw std::invalid_argument("unknown SIMD level '" + std::string(name) +
                              "' (expected scalar|popcnt|avx2|avx512)");
}

Level detected_level() noexcept {
  static const Level cached = probe();
  return cached;
}

Level active_level() {
  const Level detected = detected_level();
  const int forced = g_forced.load(std::memory_order_relaxed);
  const Level clamp = forced >= 0 ? static_cast<Level>(forced) : env_clamp();
  return detected < clamp ? detected : clamp;
}

void force_level(Level level) noexcept {
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_forced_level() noexcept { g_forced.store(-1, std::memory_order_relaxed); }

std::optional<Level> forced_level() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced < 0) return std::nullopt;
  return static_cast<Level>(forced);
}

}  // namespace tsvcod::simd
