#pragma once
// Shared runtime SIMD dispatch for the hot kernels (stats bit-plane blocks,
// PowerEvaluator move scoring, multigrid smoothers).
//
// Kernels are compiled as function multi-versions (`__attribute__((target))`
// clones) inside one portable binary; this utility decides, per call site,
// which clone runs. The decision is
//
//     active_level() = min(detected_level(), override)
//
// where `detected_level()` is a one-time `__builtin_cpu_supports` probe and
// the override clamp comes from the `TSVCOD_SIMD` environment variable
// (scalar|popcnt|avx2|avx512, parsed once per process) or a programmatic
// `force_level()` call (used by the dispatch-equality tests and benches,
// which must compare several levels inside one process). The override can
// only ever *lower* the level: forcing avx512 on an sse-only host still runs
// the scalar clone, so a forced level is always safe to execute.
//
// Level requirements (what a host must support for the level to be detected):
//   popcnt  POPCNT
//   avx2    AVX2 + FMA
//   avx512  AVX-512 F + DQ + VPOPCNTDQ (Ice Lake / Zen 4 and newer)
//
// Determinism contract: each kernel clone uses a fixed lane width and a fixed
// lane-combining order, so results are bit-reproducible for a given (input,
// level). Across levels, integer kernels (stats) are bit-identical by
// construction; floating-point kernels (evaluator, smoothers) reassociate
// and may contract to FMA, so they agree only to eps-scale drift bounds —
// the `evaluator_drift` and `field_consistency` oracles pin those bounds.

#include <cstddef>
#include <new>
#include <optional>
#include <string_view>
#include <vector>

namespace tsvcod::simd {

/// Dispatch levels, ordered: a level implies every lower one.
enum class Level : int { scalar = 0, popcnt = 1, avx2 = 2, avx512 = 3 };

/// "scalar" | "popcnt" | "avx2" | "avx512".
const char* level_name(Level level) noexcept;

/// Parse a level name; throws std::invalid_argument naming the accepted
/// values (used for both TSVCOD_SIMD and the --simd CLI flag).
Level parse_level(std::string_view name);

/// Best level the host CPU supports (probed once, cached).
Level detected_level() noexcept;

/// The level kernels should dispatch on right now:
/// min(detected_level(), forced or TSVCOD_SIMD clamp). Throws
/// std::invalid_argument on a malformed TSVCOD_SIMD value (first call only;
/// the CLI front end calls this fail-fast at startup).
Level active_level();

/// Programmatic clamp (wins over TSVCOD_SIMD until cleared). Cheap atomic;
/// safe to flip between timed sections of a bench.
void force_level(Level level) noexcept;
void clear_forced_level() noexcept;

/// The current programmatic clamp, if any.
std::optional<Level> forced_level() noexcept;

/// RAII force/restore for tests that compare dispatch levels in-process.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level) : saved_(forced_level()) { force_level(level); }
  ~ScopedLevel() {
    if (saved_) {
      force_level(*saved_);
    } else {
      clear_forced_level();
    }
  }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  std::optional<Level> saved_;
};

/// Alignment for SIMD scratch buffers: one cache line, enough for 512-bit
/// aligned loads.
inline constexpr std::size_t kAlignment = 64;

/// Minimal C++17 allocator handing out kAlignment-aligned storage.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{kAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// Contiguous buffer whose data() is kAlignment-aligned (the vectorized
/// kernels still use unaligned loads for interior offsets; alignment buys
/// the aligned fast path on the common base-pointer case).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace tsvcod::simd
