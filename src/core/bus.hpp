#pragma once
// Multi-bundle bus optimization (extension of the paper's method).
//
// Wide buses cross a 3D interface through several TSV bundles. The paper
// keeps the global net-to-bundle assignment routing-optimal and only
// permutes within each bundle; when the designer *can* choose which bits
// share a bundle, grouping strongly correlated bits together lets the
// in-bundle assignment exploit their correlation (Sawtooth-style), while a
// routing-natural contiguous split may separate them. Inter-bundle coupling
// is negligible (bundles are spatially separate), so the bus power is the
// sum of the per-bundle powers.

#include <vector>

#include "core/link.hpp"
#include "stats/subset.hpp"

namespace tsvcod::core {

enum class GroupingStrategy {
  Contiguous,             ///< bits in order, sliced by bundle capacity
  CorrelationClustered,   ///< greedy max-accumulated-correlation clustering
};

struct BusPartition {
  /// bundle_bits[k] = source-bus bit indices carried by bundle k.
  std::vector<std::vector<std::size_t>> bundle_bits;
  /// Optimized assignment within each bundle (indices are bundle-local).
  std::vector<OptimizeResult> per_bundle;
  double total_power = 0.0;
};

/// Group the bus bits onto the bundles and optimize within each. The bundle
/// capacities (sum of link widths) must equal the bus width.
BusPartition optimize_bus(const stats::SwitchingStats& bus_stats,
                          const std::vector<Link>& bundles, GroupingStrategy strategy,
                          const OptimizeOptions& options = {});

/// The grouping alone (exposed for tests and analyses).
std::vector<std::vector<std::size_t>> group_bus_bits(const stats::SwitchingStats& bus_stats,
                                                     const std::vector<std::size_t>& capacities,
                                                     GroupingStrategy strategy);

}  // namespace tsvcod::core
