#include "core/assignment.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace tsvcod::core {

SignedPermutation::SignedPermutation(std::size_t n)
    : line_of_bit_(n), bit_of_line_(n), inverted_(n, 0) {
  if (n == 0 || n > 64) throw std::invalid_argument("SignedPermutation: size must be in [1, 64]");
  std::iota(line_of_bit_.begin(), line_of_bit_.end(), std::size_t{0});
  std::iota(bit_of_line_.begin(), bit_of_line_.end(), std::size_t{0});
}

SignedPermutation::SignedPermutation(std::vector<std::size_t> line_of_bit,
                                     std::vector<std::uint8_t> inverted)
    : line_of_bit_(std::move(line_of_bit)),
      bit_of_line_(line_of_bit_.size()),
      inverted_(std::move(inverted)) {
  const std::size_t n = line_of_bit_.size();
  if (n == 0 || n > 64) throw std::invalid_argument("SignedPermutation: size must be in [1, 64]");
  if (inverted_.size() != n) throw std::invalid_argument("SignedPermutation: inverted size");
  std::vector<bool> seen(n, false);
  for (const auto l : line_of_bit_) {
    if (l >= n || seen[l]) throw std::invalid_argument("SignedPermutation: not a permutation");
    seen[l] = true;
  }
  rebuild_inverse();
}

void SignedPermutation::rebuild_inverse() {
  for (std::size_t bit = 0; bit < line_of_bit_.size(); ++bit) bit_of_line_[line_of_bit_[bit]] = bit;
}

void SignedPermutation::swap_bits(std::size_t a, std::size_t b) {
  std::swap(line_of_bit_[a], line_of_bit_[b]);
  bit_of_line_[line_of_bit_[a]] = a;
  bit_of_line_[line_of_bit_[b]] = b;
}

void SignedPermutation::toggle_inversion(std::size_t bit) { inverted_[bit] ^= 1u; }

phys::Matrix SignedPermutation::matrix() const {
  const std::size_t n = size();
  phys::Matrix a(n, n);
  for (std::size_t bit = 0; bit < n; ++bit) {
    a(line_of_bit_[bit], bit) = inverted_[bit] ? -1.0 : 1.0;
  }
  return a;
}

stats::SwitchingStats SignedPermutation::apply(const stats::SwitchingStats& bit_stats) const {
  const std::size_t n = size();
  if (bit_stats.width != n) throw std::invalid_argument("SignedPermutation::apply: width mismatch");
  stats::SwitchingStats out;
  out.width = n;
  out.transitions = bit_stats.transitions;
  out.self.resize(n);
  out.prob_one.resize(n);
  out.coupling = phys::Matrix(n, n);
  for (std::size_t line = 0; line < n; ++line) {
    const std::size_t bit = bit_of_line_[line];
    out.self[line] = bit_stats.self[bit];
    out.prob_one[line] =
        inverted_[bit] ? 1.0 - bit_stats.prob_one[bit] : bit_stats.prob_one[bit];
    out.coupling(line, line) = bit_stats.self[bit];
  }
  for (std::size_t li = 0; li < n; ++li) {
    const std::size_t bi = bit_of_line_[li];
    const double si = inverted_[bi] ? -1.0 : 1.0;
    for (std::size_t lj = li + 1; lj < n; ++lj) {
      const std::size_t bj = bit_of_line_[lj];
      const double sj = inverted_[bj] ? -1.0 : 1.0;
      const double c = si * sj * bit_stats.coupling(bi, bj);
      out.coupling(li, lj) = c;
      out.coupling(lj, li) = c;
    }
  }
  return out;
}

std::uint64_t SignedPermutation::apply_word(std::uint64_t word) const {
  std::uint64_t out = 0;
  for (std::size_t bit = 0; bit < size(); ++bit) {
    const std::uint64_t v = ((word >> bit) & 1u) ^ (inverted_[bit] ? 1u : 0u);
    out |= v << line_of_bit_[bit];
  }
  return out;
}

std::uint64_t SignedPermutation::unapply_word(std::uint64_t lines) const {
  std::uint64_t out = 0;
  for (std::size_t bit = 0; bit < size(); ++bit) {
    const std::uint64_t v = ((lines >> line_of_bit_[bit]) & 1u) ^ (inverted_[bit] ? 1u : 0u);
    out |= v << bit;
  }
  return out;
}

}  // namespace tsvcod::core
