#include "core/bus.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace tsvcod::core {

namespace {

std::vector<std::vector<std::size_t>> contiguous_groups(std::size_t width,
                                                        const std::vector<std::size_t>& caps) {
  std::vector<std::vector<std::size_t>> groups;
  std::size_t next = 0;
  for (const auto cap : caps) {
    std::vector<std::size_t> g(cap);
    std::iota(g.begin(), g.end(), next);
    next += cap;
    groups.push_back(std::move(g));
  }
  (void)width;
  return groups;
}

/// Greedy clustering: each bundle is seeded with the strongest remaining
/// correlated pair, then repeatedly absorbs the unassigned bit with the
/// largest accumulated |correlation| to the bundle's members.
std::vector<std::vector<std::size_t>> clustered_groups(const stats::SwitchingStats& s,
                                                       const std::vector<std::size_t>& caps) {
  const std::size_t n = s.width;
  std::vector<bool> used(n, false);
  std::vector<std::vector<std::size_t>> groups;

  const auto corr = [&](std::size_t a, std::size_t b) { return std::abs(s.coupling(a, b)); };

  for (const auto cap : caps) {
    std::vector<std::size_t> g;
    if (cap == 0) {
      groups.push_back(std::move(g));
      continue;
    }
    // Seed: strongest unassigned pair (or the single leftover bit).
    std::size_t best_a = n, best_b = n;
    double best = -1.0;
    for (std::size_t a = 0; a < n; ++a) {
      if (used[a]) continue;
      for (std::size_t b = a + 1; b < n; ++b) {
        if (used[b]) continue;
        if (corr(a, b) > best) {
          best = corr(a, b);
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a == n) {  // one bit left
      for (std::size_t a = 0; a < n; ++a) {
        if (!used[a]) {
          best_a = a;
          break;
        }
      }
      g.push_back(best_a);
      used[best_a] = true;
    } else {
      g.push_back(best_a);
      used[best_a] = true;
      if (cap > 1) {
        g.push_back(best_b);
        used[best_b] = true;
      }
    }
    while (g.size() < cap) {
      std::size_t pick = n;
      double acc_best = -1.0;
      for (std::size_t b = 0; b < n; ++b) {
        if (used[b]) continue;
        double acc = 0.0;
        for (const auto m : g) acc += corr(b, m);
        if (acc > acc_best) {
          acc_best = acc;
          pick = b;
        }
      }
      g.push_back(pick);
      used[pick] = true;
    }
    groups.push_back(std::move(g));
  }
  return groups;
}

}  // namespace

std::vector<std::vector<std::size_t>> group_bus_bits(const stats::SwitchingStats& bus_stats,
                                                     const std::vector<std::size_t>& capacities,
                                                     GroupingStrategy strategy) {
  const std::size_t total =
      std::accumulate(capacities.begin(), capacities.end(), std::size_t{0});
  if (total != bus_stats.width) {
    throw std::invalid_argument("group_bus_bits: bundle capacities must sum to the bus width");
  }
  switch (strategy) {
    case GroupingStrategy::Contiguous:
      return contiguous_groups(bus_stats.width, capacities);
    case GroupingStrategy::CorrelationClustered:
      return clustered_groups(bus_stats, capacities);
  }
  throw std::logic_error("group_bus_bits: unknown strategy");
}

BusPartition optimize_bus(const stats::SwitchingStats& bus_stats,
                          const std::vector<Link>& bundles, GroupingStrategy strategy,
                          const OptimizeOptions& options) {
  if (bundles.empty()) throw std::invalid_argument("optimize_bus: no bundles");
  std::vector<std::size_t> caps;
  caps.reserve(bundles.size());
  for (const auto& b : bundles) caps.push_back(b.width());

  BusPartition out;
  out.bundle_bits = group_bus_bits(bus_stats, caps, strategy);
  for (std::size_t k = 0; k < bundles.size(); ++k) {
    const auto sub = stats::subset_stats(bus_stats, out.bundle_bits[k]);
    OptimizeOptions opts = options;
    // Per-bit inversion permissions follow the bits into their bundle.
    if (!options.allow_invert.empty()) {
      if (options.allow_invert.size() != bus_stats.width) {
        throw std::invalid_argument("optimize_bus: allow_invert size mismatch");
      }
      opts.allow_invert.clear();
      for (const auto bit : out.bundle_bits[k]) {
        opts.allow_invert.push_back(options.allow_invert[bit]);
      }
    }
    out.per_bundle.push_back(optimize_assignment(sub, bundles[k].model(), opts));
    out.total_power += out.per_bundle.back().power;
  }
  return out;
}

}  // namespace tsvcod::core
