#pragma once
// Signed permutations: bit-to-TSV assignments with per-bit inversion
// (paper Sec. 3, the matrix A_pi of Eq. 4/5).
//
// `line_of_bit(i)` is the TSV line that carries bit i; `inverted(i)` says
// whether bit i is transmitted negated (realized by an inverting TSV driver
// or hidden inside a codec). The class offers both the efficient direct
// transform of switching statistics and words, and the explicit +-1
// permutation matrix for validation against the paper's algebra.

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "phys/matrix.hpp"
#include "stats/switching_stats.hpp"

namespace tsvcod::core {

class SignedPermutation {
 public:
  /// Identity assignment of n bits (bit i -> line i, no inversions).
  explicit SignedPermutation(std::size_t n);

  /// Explicit construction; `line_of_bit` must be a permutation of 0..n-1.
  SignedPermutation(std::vector<std::size_t> line_of_bit, std::vector<std::uint8_t> inverted);

  static SignedPermutation identity(std::size_t n) { return SignedPermutation(n); }

  /// Uniformly random permutation; inversions are drawn per bit only where
  /// `allow_invert` permits (empty span = no inversions at all).
  template <typename Rng>
  static SignedPermutation random(std::size_t n, Rng& rng,
                                  std::span<const std::uint8_t> allow_invert = {});

  std::size_t size() const { return line_of_bit_.size(); }
  std::size_t line_of_bit(std::size_t bit) const { return line_of_bit_[bit]; }
  std::size_t bit_of_line(std::size_t line) const { return bit_of_line_[line]; }
  bool inverted(std::size_t bit) const { return inverted_[bit] != 0; }

  /// Exchange the lines assigned to two bits.
  void swap_bits(std::size_t a, std::size_t b);
  /// Flip the inversion of one bit.
  void toggle_inversion(std::size_t bit);

  /// The signed permutation matrix A_pi: A(line, bit) = +-1 (Eq. 5).
  phys::Matrix matrix() const;

  /// Statistics as seen on the lines: T'_s, T'_c and probabilities after the
  /// assignment (Eq. 4 plus the eps sign flips of Eq. 8/9).
  stats::SwitchingStats apply(const stats::SwitchingStats& bit_stats) const;

  /// Map one data word onto the physical lines (permute + invert).
  std::uint64_t apply_word(std::uint64_t word) const;

  /// Inverse of apply_word: recover the data word from the line word
  /// (unapply_word(apply_word(w)) == w for any w within the width).
  std::uint64_t unapply_word(std::uint64_t lines) const;

  bool operator==(const SignedPermutation&) const = default;

 private:
  void rebuild_inverse();

  std::vector<std::size_t> line_of_bit_;
  std::vector<std::size_t> bit_of_line_;
  std::vector<std::uint8_t> inverted_;  ///< indexed by bit
};

template <typename Rng>
SignedPermutation SignedPermutation::random(std::size_t n, Rng& rng,
                                            std::span<const std::uint8_t> allow_invert) {
  SignedPermutation p(n);
  for (std::size_t i = n; i > 1; --i) {
    std::uniform_int_distribution<std::size_t> pick(0, i - 1);
    p.swap_bits(i - 1, pick(rng));
  }
  if (!allow_invert.empty()) {
    std::uniform_int_distribution<int> coin(0, 1);
    for (std::size_t bit = 0; bit < n; ++bit) {
      if (allow_invert[bit] && coin(rng)) p.toggle_inversion(bit);
    }
  }
  return p;
}

}  // namespace tsvcod::core
