#include "core/mappings.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace tsvcod::core {

std::vector<std::size_t> ring_order(const phys::TsvArrayGeometry& geom) {
  const std::size_t rows = geom.rows;
  const std::size_t cols = geom.cols;
  std::vector<std::size_t> order;
  order.reserve(rows * cols);
  std::size_t top = 0, bottom = rows, left = 0, right = cols;
  while (top < bottom && left < right) {
    for (std::size_t c = left; c < right; ++c) order.push_back(geom.index(top, c));
    ++top;
    for (std::size_t r = top; r < bottom; ++r) order.push_back(geom.index(r, right - 1));
    if (right > 0) --right;
    if (top < bottom) {
      for (std::size_t c = right; c-- > left;) order.push_back(geom.index(bottom - 1, c));
      --bottom;
    }
    if (left < right) {
      for (std::size_t r = bottom; r-- > top;) order.push_back(geom.index(r, left));
      ++left;
    }
  }
  return order;
}

std::vector<std::size_t> spiral_order(const phys::TsvArrayGeometry& geom) {
  auto order = ring_order(geom);
  // Fewer direct neighbours = lower total capacitance class (corner < edge <
  // middle); a stable sort keeps the ring-walk order inside each class.
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return geom.direct_neighbor_count(a) < geom.direct_neighbor_count(b);
  });
  return order;
}

std::vector<std::size_t> sawtooth_order(const phys::TsvArrayGeometry& geom) {
  const std::size_t rows = geom.rows;
  const std::size_t cols = geom.cols;
  std::vector<std::size_t> order;
  order.reserve(rows * cols);
  if (rows == 1) {
    for (std::size_t c = 0; c < cols; ++c) order.push_back(geom.index(0, c));
    return order;
  }
  for (std::size_t c = 0; c < cols; ++c) {
    order.push_back(geom.index(0, c));
    order.push_back(geom.index(1, c));
  }
  for (std::size_t r = 2; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) order.push_back(geom.index(r, c));
  }
  return order;
}

std::vector<std::size_t> greedy_coupling_order(const phys::Matrix& c) {
  const std::size_t n = c.rows();
  if (n != c.cols() || n == 0) throw std::invalid_argument("greedy_coupling_order: bad matrix");
  if (n == 1) return {0};

  // Seed: the pair with the largest coupling capacitance.
  std::size_t best_i = 0, best_j = 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (c(i, j) > c(best_i, best_j)) {
        best_i = i;
        best_j = j;
      }
    }
  }
  std::vector<std::size_t> order{best_i, best_j};
  std::vector<bool> used(n, false);
  used[best_i] = used[best_j] = true;

  while (order.size() < n) {
    std::size_t best = n;
    double best_acc = -1.0;
    for (std::size_t k = 0; k < n; ++k) {
      if (used[k]) continue;
      double acc = 0.0;
      for (const auto a : order) acc += c(k, a);
      if (acc > best_acc) {
        best_acc = acc;
        best = k;
      }
    }
    used[best] = true;
    order.push_back(best);
  }
  return order;
}

std::vector<std::size_t> capacitance_order(const phys::Matrix& c) {
  const std::size_t n = c.rows();
  std::vector<double> totals(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) totals[i] += c(i, j);
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return totals[a] < totals[b]; });
  return order;
}

std::vector<std::size_t> rank_by_self_switching(const stats::SwitchingStats& s) {
  std::vector<std::size_t> rank(s.width);
  std::iota(rank.begin(), rank.end(), std::size_t{0});
  std::stable_sort(rank.begin(), rank.end(),
                   [&](std::size_t a, std::size_t b) { return s.self[a] > s.self[b]; });
  return rank;
}

std::vector<std::size_t> rank_by_correlation(const stats::SwitchingStats& s) {
  std::vector<double> score(s.width, 0.0);
  for (std::size_t i = 0; i < s.width; ++i) {
    for (std::size_t j = 0; j < s.width; ++j) {
      if (j != i) score[i] += std::max(0.0, s.coupling(i, j));
    }
  }
  std::vector<std::size_t> rank(s.width);
  std::iota(rank.begin(), rank.end(), std::size_t{0});
  // Descending score; ties broken by descending bit index so that an
  // uncorrelated LSB block stays in significance order below the MSBs.
  std::stable_sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return a > b;
  });
  return rank;
}

SignedPermutation assignment_from_orders(std::span<const std::size_t> bit_rank,
                                         std::span<const std::size_t> tsv_order) {
  if (bit_rank.size() != tsv_order.size()) {
    throw std::invalid_argument("assignment_from_orders: size mismatch");
  }
  const std::size_t n = bit_rank.size();
  std::vector<std::size_t> line_of_bit(n);
  for (std::size_t r = 0; r < n; ++r) line_of_bit[bit_rank[r]] = tsv_order[r];
  return SignedPermutation(std::move(line_of_bit), std::vector<std::uint8_t>(n, 0));
}

SignedPermutation spiral_assignment(const phys::TsvArrayGeometry& geom,
                                    const stats::SwitchingStats& s) {
  if (geom.count() != s.width) throw std::invalid_argument("spiral_assignment: width mismatch");
  return assignment_from_orders(rank_by_self_switching(s), spiral_order(geom));
}

SignedPermutation sawtooth_assignment(const phys::TsvArrayGeometry& geom,
                                      const stats::SwitchingStats& s) {
  if (geom.count() != s.width) throw std::invalid_argument("sawtooth_assignment: width mismatch");
  return assignment_from_orders(rank_by_correlation(s), sawtooth_order(geom));
}

}  // namespace tsvcod::core
