#include "core/assignment_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace tsvcod::core {

namespace {

constexpr const char* kMagic = "tsvcod-assignment";

bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos) continue;
    if (line[pos] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void save_assignment(std::ostream& os, const SignedPermutation& a) {
  os << kMagic << " v1\n";
  os << "# map <bit> <line> <inverted>\n";
  os << "n " << a.size() << '\n';
  for (std::size_t bit = 0; bit < a.size(); ++bit) {
    os << "map " << bit << ' ' << a.line_of_bit(bit) << ' ' << (a.inverted(bit) ? 1 : 0) << '\n';
  }
}

void save_assignment(const std::string& path, const SignedPermutation& a) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("assignment_io: cannot open for writing: " + path);
  save_assignment(os, a);
}

SignedPermutation load_assignment(std::istream& is) {
  std::string line;
  if (!next_line(is, line) || line.rfind(kMagic, 0) != 0) {
    throw std::runtime_error("assignment_io: missing magic header");
  }
  if (!next_line(is, line)) throw std::runtime_error("assignment_io: missing size");
  std::istringstream ls(line);
  std::string tag;
  std::size_t n = 0;
  ls >> tag >> n;
  if (tag != "n" || n == 0 || n > 64) throw std::runtime_error("assignment_io: bad size");

  std::vector<std::size_t> line_of_bit(n, n);  // n = unset sentinel
  std::vector<std::uint8_t> inverted(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    if (!next_line(is, line)) throw std::runtime_error("assignment_io: truncated map");
    std::istringstream ms(line);
    std::size_t bit = 0, l = 0;
    int inv = 0;
    ms >> tag >> bit >> l >> inv;
    // A truncated line ("map 3") leaves the failed fields value-initialized
    // to zero, which would silently read as "bit 3 -> line 0, not inverted";
    // the stream state must be checked, not just the values.
    if (!ms || tag != "map" || bit >= n || l >= n || (inv != 0 && inv != 1)) {
      throw std::runtime_error("assignment_io: bad map line: " + line);
    }
    std::string extra;
    if (ms >> extra) {
      throw std::runtime_error("assignment_io: trailing data on map line: " + line);
    }
    if (line_of_bit[bit] != n) throw std::runtime_error("assignment_io: duplicate bit");
    line_of_bit[bit] = l;
    inverted[bit] = static_cast<std::uint8_t>(inv);
  }
  try {
    return SignedPermutation(std::move(line_of_bit), std::move(inverted));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("assignment_io: invalid assignment: ") + e.what());
  }
}

SignedPermutation load_assignment(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("assignment_io: cannot open: " + path);
  return load_assignment(is);
}

std::string format_assignment_grid(const phys::TsvArrayGeometry& geom,
                                   const SignedPermutation& a) {
  if (geom.count() != a.size()) {
    throw std::invalid_argument("format_assignment_grid: size mismatch");
  }
  std::ostringstream os;
  for (std::size_t r = 0; r < geom.rows; ++r) {
    for (std::size_t c = 0; c < geom.cols; ++c) {
      const std::size_t bit = a.bit_of_line(geom.index(r, c));
      os << (a.inverted(bit) ? '~' : ' ');
      if (bit < 10) os << ' ';
      os << bit << ' ';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace tsvcod::core
