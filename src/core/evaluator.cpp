#include "core/evaluator.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "simd/dispatch.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TSVCOD_EVAL_X86_KERNELS 1
#include <immintrin.h>
#endif

namespace tsvcod::core {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

// ---------------------------------------------------------------------------
// Row reduction kernel. Every O(N) update of the evaluator is built from
//
//   S = sum_j (sa + self[j] - 2 ga sign[j] coup[j]) * (cref[j] + dc[j] (ea + eps[j]))
//
// over the contiguous per-line arrays: `coup` is the line-space coupling row
// of the bit being priced, `cref`/`dc` the model rows of the line it sits on
// (model rows never move — they are line geometry), and (sa, ea, ga) the
// self/eps/sign parameters of that bit, broadcast. Lanes the caller must
// exclude (the diagonal, the partner line of a swap) are subtracted back
// scalar-wise with the same per-lane formula; the vector clones reassociate
// the reduction and contract to FMA, so results differ from scalar only at
// eps scale (the evaluator_drift oracle bounds it).
// ---------------------------------------------------------------------------

struct RowArgs {
  const double* self;
  const double* eps;
  const double* sign;
  const double* coup;  ///< line-space coupling row of the priced bit
  const double* cref;  ///< model rows of the priced line
  const double* dc;
  std::size_t n;
  double sa, ea, ga;  ///< broadcast self / eps / sign of the priced bit
};

inline double row_lane(const RowArgs& a, std::size_t j) {
  return (a.sa + a.self[j] - 2.0 * a.ga * a.sign[j] * a.coup[j]) *
         (a.cref[j] + a.dc[j] * (a.ea + a.eps[j]));
}

double row_sum_scalar(const RowArgs& a) {
  double acc = 0.0;
  for (std::size_t j = 0; j < a.n; ++j) acc += row_lane(a, j);
  return acc;
}

#if defined(TSVCOD_EVAL_X86_KERNELS)

__attribute__((target("avx2,fma"))) double row_sum_avx2(const RowArgs& a) {
  const __m256d vsa = _mm256_set1_pd(a.sa);
  const __m256d vea = _mm256_set1_pd(a.ea);
  const __m256d vg2 = _mm256_set1_pd(-2.0 * a.ga);
  __m256d acc = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= a.n; j += 4) {
    const __m256d t = _mm256_add_pd(
        _mm256_add_pd(vsa, _mm256_loadu_pd(a.self + j)),
        _mm256_mul_pd(vg2,
                      _mm256_mul_pd(_mm256_loadu_pd(a.sign + j), _mm256_loadu_pd(a.coup + j))));
    const __m256d c =
        _mm256_fmadd_pd(_mm256_loadu_pd(a.dc + j), _mm256_add_pd(vea, _mm256_loadu_pd(a.eps + j)),
                        _mm256_loadu_pd(a.cref + j));
    acc = _mm256_fmadd_pd(t, c, acc);
  }
  // Fixed lane-combining order: (l0+l2) + (l1+l3), then low + high.
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double r = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (; j < a.n; ++j) r += row_lane(a, j);
  return r;
}

__attribute__((target("avx512f,avx512dq"))) double row_sum_avx512(const RowArgs& a) {
  const __m512d vsa = _mm512_set1_pd(a.sa);
  const __m512d vea = _mm512_set1_pd(a.ea);
  const __m512d vg2 = _mm512_set1_pd(-2.0 * a.ga);
  __m512d acc = _mm512_setzero_pd();
  std::size_t j = 0;
  for (; j + 8 <= a.n; j += 8) {
    const __m512d t = _mm512_add_pd(
        _mm512_add_pd(vsa, _mm512_loadu_pd(a.self + j)),
        _mm512_mul_pd(vg2,
                      _mm512_mul_pd(_mm512_loadu_pd(a.sign + j), _mm512_loadu_pd(a.coup + j))));
    const __m512d c =
        _mm512_fmadd_pd(_mm512_loadu_pd(a.dc + j), _mm512_add_pd(vea, _mm512_loadu_pd(a.eps + j)),
                        _mm512_loadu_pd(a.cref + j));
    acc = _mm512_fmadd_pd(t, c, acc);
  }
  // _mm512_reduce_add_pd has a fixed tree order per the intrinsic contract.
  double r = _mm512_reduce_add_pd(acc);
  for (; j < a.n; ++j) r += row_lane(a, j);
  return r;
}

#endif  // TSVCOD_EVAL_X86_KERNELS

using RowFn = double (*)(const RowArgs&);

RowFn row_fn() {
#if defined(TSVCOD_EVAL_X86_KERNELS)
  switch (simd::active_level()) {
    case simd::Level::avx512:
      return &row_sum_avx512;
    case simd::Level::avx2:
      return &row_sum_avx2;
    default:
      break;
  }
#endif
  return &row_sum_scalar;
}

}  // namespace

PowerEvaluator::PowerEvaluator(const stats::SwitchingStats& bit_stats,
                               const tsv::LinearCapacitanceModel& model,
                               SignedPermutation initial)
    : bits_(bit_stats), model_(model), assignment_(std::move(initial)) {
  reset(assignment_);
}

void PowerEvaluator::reset(SignedPermutation assignment) {
  assignment_ = std::move(assignment);
  const std::size_t n = bits_.width;
  if (model_.size() != n || assignment_.size() != n) {
    throw std::invalid_argument("PowerEvaluator: size mismatch");
  }
  n_ = n;
  line_self_.resize(n);
  line_eps_.resize(n);
  line_sign_.resize(n);
  for (std::size_t l = 0; l < n; ++l) refresh_line(l);
  rebuild_line_coupling();
  power_ = recompute();
}

void PowerEvaluator::refresh_line(std::size_t line) {
  const std::size_t bit = assignment_.bit_of_line(line);
  const bool inv = assignment_.inverted(bit);
  line_self_[line] = bits_.self[bit];
  const double p = inv ? 1.0 - bits_.prob_one[bit] : bits_.prob_one[bit];
  line_eps_[line] = p - 0.5;
  line_sign_[line] = inv ? -1.0 : 1.0;
}

void PowerEvaluator::rebuild_line_coupling() {
  coup_line_.resize(n_ * n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t bi = assignment_.bit_of_line(i);
    double* row = coup_line_.data() + i * n_;
    for (std::size_t j = 0; j < n_; ++j) row[j] = bits_.coupling(bi, assignment_.bit_of_line(j));
  }
}

void PowerEvaluator::swap_coupling_lines(std::size_t la, std::size_t lb) {
  // coup_line_ is the coupling matrix conjugated by the line<->bit
  // permutation; transposing two lines swaps the corresponding row pair and
  // column pair (symmetry keeps the 2x2 block consistent).
  double* ra = coup_line_.data() + la * n_;
  double* rb = coup_line_.data() + lb * n_;
  for (std::size_t j = 0; j < n_; ++j) std::swap(ra[j], rb[j]);
  for (std::size_t i = 0; i < n_; ++i) {
    std::swap(coup_line_[i * n_ + la], coup_line_[i * n_ + lb]);
  }
}

void PowerEvaluator::check_bit(std::size_t bit, const char* fn) const {
  if (bit >= n_) {
    std::ostringstream os;
    os << "PowerEvaluator::" << fn << ": bit index " << bit << " out of range for width " << n_;
    throw std::out_of_range(os.str());
  }
}

double PowerEvaluator::c_prime(std::size_t li, std::size_t lj) const {
  return model_.c_ref()(li, lj) + model_.delta_c()(li, lj) * (line_eps_[li] + line_eps_[lj]);
}

double PowerEvaluator::k_coupling(std::size_t li, std::size_t lj) const {
  return line_sign_[li] * line_sign_[lj] * coup_line_[li * n_ + lj];
}

double PowerEvaluator::recompute() const {
  const std::size_t n = n_;
  double p = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    p += line_self_[i] * c_prime(i, i);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      p += (line_self_[i] - k_coupling(i, j)) * c_prime(i, j);
    }
  }
  return p;
}

double PowerEvaluator::terms_involving(std::size_t la, std::size_t lb) const {
  // Ordered-pair algebra: pair {i,j} contributes (self_i + self_j - 2k) C_ij
  // once; the row kernel sums every lane, so the diagonal lane is swapped
  // out for the ground term, and the duplicate {la,lb} lane of the second
  // row is subtracted (the first row already counted the pair).
  const RowFn fn = row_fn();
  const double* cref = model_.c_ref().data().data();
  const double* dc = model_.delta_c().data().data();
  const RowArgs ra{line_self_.data(), line_eps_.data(),  line_sign_.data(),
                   coup_line_.data() + la * n_, cref + la * n_, dc + la * n_,
                   n_, line_self_[la], line_eps_[la], line_sign_[la]};
  double acc = fn(ra) - row_lane(ra, la) + line_self_[la] * c_prime(la, la);
  if (lb != kNone) {
    const RowArgs rb{line_self_.data(), line_eps_.data(),  line_sign_.data(),
                     coup_line_.data() + lb * n_, cref + lb * n_, dc + lb * n_,
                     n_, line_self_[lb], line_eps_[lb], line_sign_[lb]};
    acc += fn(rb) - row_lane(rb, lb) - row_lane(rb, la) + line_self_[lb] * c_prime(lb, lb);
  }
  return acc;
}

double PowerEvaluator::swap_bits(std::size_t bit_a, std::size_t bit_b) {
  check_bit(bit_a, "swap_bits");
  check_bit(bit_b, "swap_bits");
  if (bit_a == bit_b) return power_;
  const std::size_t la = assignment_.line_of_bit(bit_a);
  const std::size_t lb = assignment_.line_of_bit(bit_b);
  const double before = terms_involving(la, lb);
  assignment_.swap_bits(bit_a, bit_b);
  refresh_line(la);
  refresh_line(lb);
  swap_coupling_lines(la, lb);
  power_ += terms_involving(la, lb) - before;
  return power_;
}

double PowerEvaluator::toggle_inversion(std::size_t bit) {
  check_bit(bit, "toggle_inversion");
  const std::size_t l = assignment_.line_of_bit(bit);
  const double before = terms_involving(l, kNone);
  assignment_.toggle_inversion(bit);
  refresh_line(l);
  power_ += terms_involving(l, kNone) - before;
  return power_;
}

void PowerEvaluator::score_moves(std::span<const Move> moves, std::span<double> out) const {
  if (out.size() < moves.size()) {
    throw std::invalid_argument("PowerEvaluator::score_moves: output span too small");
  }
  const RowFn fn = row_fn();
  const double* self = line_self_.data();
  const double* eps = line_eps_.data();
  const double* sign = line_sign_.data();
  const double* coup = coup_line_.data();
  const double* cref = model_.c_ref().data().data();
  const double* dc = model_.delta_c().data().data();

  for (std::size_t k = 0; k < moves.size(); ++k) {
    const Move& m = moves[k];
    if (m.is_toggle) {
      check_bit(m.a, "score_moves");
      const std::size_t l = assignment_.line_of_bit(m.a);
      const double sl = self[l], el = eps[l], gl = sign[l];
      // A toggle flips (eps, sign) of one line; self and the coupling gather
      // are untouched. Both row sums run over the *current* arrays with the
      // line's own parameters broadcast, so only the j == l lane is stale in
      // the "after" sum — exactly the lane both sums exclude anyway.
      const RowArgs cur{self, eps, sign, coup + l * n_, cref + l * n_, dc + l * n_,
                        n_,   sl,  el,   gl};
      const double before = fn(cur) - row_lane(cur, l) + sl * c_prime(l, l);
      RowArgs nxt = cur;
      nxt.ea = -el;
      nxt.ga = -gl;
      const double ground_after = sl * (cref[l * n_ + l] + dc[l * n_ + l] * (-el + -el));
      const double after = fn(nxt) - row_lane(nxt, l) + ground_after;
      out[k] = power_ + (after - before);
      continue;
    }
    check_bit(m.a, "score_moves");
    check_bit(m.b, "score_moves");
    if (m.a == m.b) {
      out[k] = power_;
      continue;
    }
    const std::size_t la = assignment_.line_of_bit(m.a);
    const std::size_t lb = assignment_.line_of_bit(m.b);
    const double before = terms_involving(la, lb);
    // After the swap, line la carries lb's current (self, eps, sign) triple
    // and lb's coupling row (and vice versa); the model rows stay put. The
    // two row sums are therefore priced from the current arrays with the
    // partner's row/parameters, and only the j == la / j == lb lanes are
    // stale: both diagonals drop out, and the {la,lb} pair lane is re-added
    // once with its true post-swap value.
    const double sa = self[lb], ea = eps[lb], ga = sign[lb];  // new la triple
    const double sb = self[la], eb = eps[la], gb = sign[la];  // new lb triple
    const RowArgs a1{self, eps, sign, coup + lb * n_, cref + la * n_, dc + la * n_,
                     n_,   sa,  ea,   ga};
    const RowArgs a2{self, eps, sign, coup + la * n_, cref + lb * n_, dc + lb * n_,
                     n_,   sb,  eb,   gb};
    const double pair = (sa + sb - 2.0 * (ga * gb) * coup[lb * n_ + la]) *
                        (cref[la * n_ + lb] + dc[la * n_ + lb] * (ea + eb));
    const double ground_a = sa * (cref[la * n_ + la] + dc[la * n_ + la] * (ea + ea));
    const double ground_b = sb * (cref[lb * n_ + lb] + dc[lb * n_ + lb] * (eb + eb));
    const double after = fn(a1) - row_lane(a1, la) - row_lane(a1, lb) + pair + ground_a +
                         fn(a2) - row_lane(a2, lb) - row_lane(a2, la) + ground_b;
    out[k] = power_ + (after - before);
  }
}

}  // namespace tsvcod::core
