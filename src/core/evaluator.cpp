#include "core/evaluator.hpp"

#include <limits>
#include <stdexcept>

namespace tsvcod::core {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
}

PowerEvaluator::PowerEvaluator(const stats::SwitchingStats& bit_stats,
                               const tsv::LinearCapacitanceModel& model,
                               SignedPermutation initial)
    : bits_(bit_stats), model_(model), assignment_(std::move(initial)) {
  reset(assignment_);
}

void PowerEvaluator::reset(SignedPermutation assignment) {
  assignment_ = std::move(assignment);
  const std::size_t n = bits_.width;
  if (model_.size() != n || assignment_.size() != n) {
    throw std::invalid_argument("PowerEvaluator: size mismatch");
  }
  line_self_.resize(n);
  line_eps_.resize(n);
  line_sign_.resize(n);
  for (std::size_t l = 0; l < n; ++l) refresh_line(l);
  power_ = recompute();
}

void PowerEvaluator::refresh_line(std::size_t line) {
  const std::size_t bit = assignment_.bit_of_line(line);
  const bool inv = assignment_.inverted(bit);
  line_self_[line] = bits_.self[bit];
  const double p = inv ? 1.0 - bits_.prob_one[bit] : bits_.prob_one[bit];
  line_eps_[line] = p - 0.5;
  line_sign_[line] = inv ? -1.0 : 1.0;
}

double PowerEvaluator::c_prime(std::size_t li, std::size_t lj) const {
  return model_.c_ref()(li, lj) + model_.delta_c()(li, lj) * (line_eps_[li] + line_eps_[lj]);
}

double PowerEvaluator::k_coupling(std::size_t li, std::size_t lj) const {
  const std::size_t bi = assignment_.bit_of_line(li);
  const std::size_t bj = assignment_.bit_of_line(lj);
  return line_sign_[li] * line_sign_[lj] * bits_.coupling(bi, bj);
}

double PowerEvaluator::recompute() const {
  const std::size_t n = bits_.width;
  double p = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    p += line_self_[i] * c_prime(i, i);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      p += (line_self_[i] - k_coupling(i, j)) * c_prime(i, j);
    }
  }
  return p;
}

double PowerEvaluator::terms_involving(std::size_t la, std::size_t lb) const {
  const std::size_t n = bits_.width;
  double acc = 0.0;
  // Ground terms of the affected lines.
  acc += line_self_[la] * c_prime(la, la);
  if (lb != kNone) acc += line_self_[lb] * c_prime(lb, lb);
  // All coupling terms with at least one end on an affected line. For the
  // ordered-pair sum, pair {i,j} contributes (self_i + self_j - 2k) C_ij.
  for (std::size_t j = 0; j < n; ++j) {
    if (j != la) {
      acc += (line_self_[la] + line_self_[j] - 2.0 * k_coupling(la, j)) * c_prime(la, j);
    }
    if (lb != kNone && j != lb && j != la) {
      acc += (line_self_[lb] + line_self_[j] - 2.0 * k_coupling(lb, j)) * c_prime(lb, j);
    }
  }
  return acc;
}

double PowerEvaluator::swap_bits(std::size_t bit_a, std::size_t bit_b) {
  if (bit_a == bit_b) return power_;
  const std::size_t la = assignment_.line_of_bit(bit_a);
  const std::size_t lb = assignment_.line_of_bit(bit_b);
  const double before = terms_involving(la, lb);
  assignment_.swap_bits(bit_a, bit_b);
  refresh_line(la);
  refresh_line(lb);
  power_ += terms_involving(la, lb) - before;
  return power_;
}

double PowerEvaluator::toggle_inversion(std::size_t bit) {
  const std::size_t l = assignment_.line_of_bit(bit);
  const double before = terms_involving(l, kNone);
  assignment_.toggle_inversion(bit);
  refresh_line(l);
  power_ += terms_involving(l, kNone) - before;
  return power_;
}

}  // namespace tsvcod::core
