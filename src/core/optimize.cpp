#include "core/optimize.hpp"

#include "core/evaluator.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "opt/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace tsvcod::core {

namespace {

std::vector<std::uint8_t> effective_invert_mask(const OptimizeOptions& options, std::size_t n) {
  if (!options.allow_inversions) return std::vector<std::uint8_t>(n, 0);
  if (options.allow_invert.empty()) return std::vector<std::uint8_t>(n, 1);
  if (options.allow_invert.size() != n) {
    throw std::invalid_argument("OptimizeOptions: allow_invert size mismatch");
  }
  return options.allow_invert;
}

struct ChainOutcome {
  SignedPermutation assignment{1};
  double power = 0.0;  ///< exact (recomputed) power of `assignment`
  std::size_t evaluations = 0;
  std::size_t accepted = 0;   ///< accepted annealing moves
  std::size_t attempted = 0;  ///< attempted annealing moves (excl. probes)
};

// One annealing chain on the incremental evaluator. Candidate moves are
// priced in blocks through PowerEvaluator::score_moves — the batch API keeps
// the per-line arrays hot and lets the SIMD row kernels amortize — and a
// block's scores stay valid as long as every move in it is rejected (the
// state never changed). An accept applies the one winning move and discards
// the rest of the block. The block size adapts to the acceptance rate: it
// starts small, doubles whenever a whole block is rejected (cold chain), and
// snaps back to small on an accept (hot chain), so scoring work is rarely
// thrown away. `evaluations` counts candidates consumed, one per probe or
// attempted move — scored-but-discarded candidates are not counted — so the
// count stays a pure function of the schedule, and the chain itself is a
// pure function of its seed (thread-count invariant).
ChainOutcome run_chain(const stats::SwitchingStats& bit_stats,
                       const tsv::LinearCapacitanceModel& model, const OptimizeOptions& options,
                       const std::vector<std::size_t>& invertible_bits, std::uint64_t seed,
                       std::size_t chain_index) {
  obs::Span span("opt.chain");
  const bool tracing = span.traced();
  // Per-chain counter-track names keep concurrent chains on separate tracks.
  std::string track_power, track_temp;
  if (tracing) {
    track_power = "opt.best_power.c" + std::to_string(chain_index);
    track_temp = "opt.temperature.c" + std::to_string(chain_index);
  }
  const std::size_t n = bit_stats.width;
  const bool any_invertible = !invertible_bits.empty();

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::uniform_int_distribution<int> move_kind(0, any_invertible ? 2 : 1);
  std::uniform_int_distribution<std::size_t> pick_bit(0, n - 1);

  PowerEvaluator ev(bit_stats, model, SignedPermutation::identity(n));
  std::size_t evaluations = 1;

  using Move = PowerEvaluator::Move;
  const auto random_move = [&]() -> Move {
    if (any_invertible && move_kind(rng) == 2) {
      std::uniform_int_distribution<std::size_t> pick(0, invertible_bits.size() - 1);
      return {true, invertible_bits[pick(rng)], 0};
    }
    std::size_t a = pick_bit(rng);
    std::size_t b = pick_bit(rng);
    while (n > 1 && b == a) b = pick_bit(rng);
    return {false, a, b};
  };
  const auto apply = [&](const Move& m) {
    return m.is_toggle ? ev.toggle_inversion(m.a) : ev.swap_bits(m.a, m.b);
  };

  // Batch pricing buffers shared by the probe phase and the main loop.
  std::vector<Move> block;
  std::vector<double> scores;

  // Temperature calibration: price the probe moves in one batch against the
  // untouched initial state (scoring does not mutate, so no undos needed).
  double t_start = options.schedule.t_start;
  if (t_start <= 0.0) {
    constexpr int kProbe = 32;
    block.clear();
    for (int i = 0; i < kProbe; ++i) block.push_back(random_move());
    scores.resize(block.size());
    ev.score_moves(block, scores);
    const double before = ev.power();
    double acc = 0.0;
    for (int i = 0; i < kProbe; ++i) acc += std::abs(scores[static_cast<std::size_t>(i)] - before);
    evaluations += kProbe;
    t_start = acc / kProbe * 2.0;
    if (t_start <= 0.0) t_start = 1e-12;
  }
  const double t_end = t_start * options.schedule.t_ratio;
  const double decay = options.schedule.iterations > 1
                           ? std::pow(t_end / t_start, 1.0 / (options.schedule.iterations - 1))
                           : 1.0;

  SignedPermutation best = ev.assignment();
  double best_power = ev.power();
  std::size_t accepted = 0;
  std::size_t attempted = 0;
  // Trace sampling stride: ~64 samples per restart keeps traces compact.
  const int stride = std::max(1, options.schedule.iterations / 64);
  constexpr std::size_t kBlockMin = 4;
  constexpr std::size_t kBlockMax = 64;
  for (int restart = 0; restart < options.schedule.restarts; ++restart) {
    // Resync from the best state (also clears float drift of the deltas).
    ev.reset(best);
    double current = ev.power();
    double t = t_start;
    std::size_t block_size = kBlockMin;
    std::size_t cursor = 0;
    block.clear();
    for (int it = 0; it < options.schedule.iterations; ++it, t *= decay) {
      if (cursor >= block.size()) {
        block.clear();
        for (std::size_t i = 0; i < block_size; ++i) block.push_back(random_move());
        scores.resize(block.size());
        ev.score_moves(block, scores);
        cursor = 0;
      }
      const Move m = block[cursor];
      const double cand = scores[cursor];
      ++cursor;
      ++evaluations;
      ++attempted;
      const double d = cand - current;
      if (d <= 0.0 || uni(rng) < std::exp(-d / t)) {
        // The scored value and the applied value agree to eps-scale drift;
        // track the applied one so `current` stays synced with the evaluator.
        apply(m);
        current = ev.power();
        ++accepted;
        if (current < best_power) {
          best_power = current;
          best = ev.assignment();
        }
        // State changed: the rest of the block's scores are stale.
        block.clear();
        cursor = 0;
        block_size = kBlockMin;
      } else if (cursor >= block.size()) {
        // A whole block rejected without an accept: the chain is cold, so
        // larger batches are pure profit.
        block_size = std::min(block_size * 2, kBlockMax);
      }
      if (tracing && it % stride == 0) {
        obs::counter(track_power, best_power);
        obs::counter(track_temp, t);
      }
    }
  }
  if (tracing) {
    span.set_args("\"chain\":" + std::to_string(chain_index) +
                  ",\"evaluations\":" + std::to_string(evaluations) +
                  ",\"accepted\":" + std::to_string(accepted) +
                  ",\"best_power\":" + obs::json_number(best_power));
  }
  obs::profile_work("evaluations", evaluations);
  obs::profile_work("accepted", accepted);
  // Exact final power (the incremental value only drifts at float epsilon);
  // chains are compared on this exact value so the best-of reduction is
  // independent of per-chain accumulation order.
  const double exact = assignment_power(bit_stats, best, model);
  return {std::move(best), exact, evaluations, accepted, attempted};
}

}  // namespace

OptimizeResult optimize_assignment(const stats::SwitchingStats& bit_stats,
                                   const tsv::LinearCapacitanceModel& model,
                                   const OptimizeOptions& options) {
  const std::size_t n = bit_stats.width;
  if (model.size() != n) throw std::invalid_argument("optimize_assignment: width mismatch");
  const auto invert_ok = effective_invert_mask(options, n);

  std::vector<std::size_t> invertible_bits;
  for (std::size_t i = 0; i < n; ++i) {
    if (invert_ok[i]) invertible_bits.push_back(i);
  }

  // Independent chains, each seeded from its logical index; scheduling can
  // never leak into the result.
  obs::Span span("opt.optimize");
  const std::size_t chains = static_cast<std::size_t>(std::max(1, options.chains));
  std::vector<ChainOutcome> outcomes(chains);
  opt::parallel_for(chains, options.threads, [&](std::size_t c) {
    outcomes[c] = run_chain(bit_stats, model, options, invertible_bits,
                            opt::deterministic_seed(options.seed, c), c);
  });

  // Deterministic best-of reduction: strict < keeps the lowest chain index
  // on ties. Metrics are recorded from this loop — logical chain order on
  // one thread — so the metrics document is thread-count invariant.
  const bool metrics = obs::metrics_enabled();
  std::size_t best_chain = 0;
  std::size_t evaluations = 0;
  for (std::size_t c = 0; c < chains; ++c) {
    evaluations += outcomes[c].evaluations;
    if (outcomes[c].power < outcomes[best_chain].power) best_chain = c;
    if (metrics) {
      const std::string prefix = "opt.chain" + std::to_string(c);
      const auto& o = outcomes[c];
      obs::metric_set(prefix + ".acceptance_rate",
                      o.attempted > 0
                          ? static_cast<double>(o.accepted) / static_cast<double>(o.attempted)
                          : 0.0);
      obs::metric_set(prefix + ".best_power", o.power);
    }
  }
  if (metrics) {
    obs::metric_add("opt.optimize.count");
    obs::metric_add("opt.chains_total", chains);
    obs::metric_add("opt.evaluations_total", evaluations);
    obs::metric_set("opt.best_power", outcomes[best_chain].power);
    obs::metric_set("opt.best_chain", static_cast<double>(best_chain));
  }
  if (span.traced()) {
    span.set_args("\"chains\":" + std::to_string(chains) +
                  ",\"evaluations\":" + std::to_string(evaluations) +
                  ",\"best_chain\":" + std::to_string(best_chain) +
                  ",\"best_power\":" + obs::json_number(outcomes[best_chain].power));
  }
  obs::profile_work("chains", chains);
  obs::profile_work("evaluations", evaluations);
  return {std::move(outcomes[best_chain].assignment), outcomes[best_chain].power, evaluations};
}

std::vector<OptimizeResult> optimize_assignments(std::span<const stats::SwitchingStats> bit_stats,
                                                 const tsv::LinearCapacitanceModel& model,
                                                 const OptimizeOptions& options, int threads) {
  obs::Span span("opt.optimize_batch");
  std::vector<OptimizeResult> out(bit_stats.size(),
                                  OptimizeResult{SignedPermutation::identity(1), 0.0, 0});
  opt::parallel_for(bit_stats.size(), threads, [&](std::size_t i) {
    OptimizeOptions local = options;
    // Independent seed stream per entry; chains run serially inside each
    // entry so every core the batch gets goes to a *different* link.
    local.seed = static_cast<unsigned>(opt::deterministic_seed(options.seed, i));
    local.threads = 1;
    out[i] = optimize_assignment(bit_stats[i], model, local);
  });
  if (obs::metrics_enabled()) {
    obs::metric_add("opt.optimize_batch.count");
    obs::metric_add("opt.optimize_batch.links_total", bit_stats.size());
  }
  if (span.traced()) span.set_args("\"links\":" + std::to_string(bit_stats.size()));
  obs::profile_work("links", bit_stats.size());
  return out;
}

OptimizeResult exhaustive_optimal(const stats::SwitchingStats& bit_stats,
                                  const tsv::LinearCapacitanceModel& model,
                                  const OptimizeOptions& options) {
  const std::size_t n = bit_stats.width;
  if (model.size() != n) throw std::invalid_argument("exhaustive_optimal: width mismatch");
  const auto invert_ok = effective_invert_mask(options, n);
  std::vector<std::size_t> invertible_bits;
  for (std::size_t i = 0; i < n; ++i) {
    if (invert_ok[i]) invertible_bits.push_back(i);
  }

  double perms = 1.0;
  for (std::size_t k = 2; k <= n; ++k) perms *= static_cast<double>(k);
  const double space = perms * std::pow(2.0, static_cast<double>(invertible_bits.size()));
  if (space > 1e7) {
    throw std::invalid_argument("exhaustive_optimal: search space too large");
  }

  std::vector<std::size_t> line_of_bit(n);
  std::iota(line_of_bit.begin(), line_of_bit.end(), std::size_t{0});

  OptimizeResult best{SignedPermutation::identity(n), 1e300, 0};
  do {
    const std::uint64_t mask_count = std::uint64_t{1} << invertible_bits.size();
    for (std::uint64_t m = 0; m < mask_count; ++m) {
      std::vector<std::uint8_t> inv(n, 0);
      for (std::size_t k = 0; k < invertible_bits.size(); ++k) {
        if ((m >> k) & 1u) inv[invertible_bits[k]] = 1;
      }
      SignedPermutation a(line_of_bit, std::move(inv));
      const double p = assignment_power(bit_stats, a, model);
      ++best.evaluations;
      if (p < best.power) {
        best.power = p;
        best.assignment = std::move(a);
      }
    }
  } while (std::next_permutation(line_of_bit.begin(), line_of_bit.end()));
  return best;
}

OptimizeResult greedy_descent(const stats::SwitchingStats& bit_stats,
                              const tsv::LinearCapacitanceModel& model,
                              const OptimizeOptions& options) {
  const std::size_t n = bit_stats.width;
  if (model.size() != n) throw std::invalid_argument("greedy_descent: width mismatch");
  const auto invert_ok = effective_invert_mask(options, n);

  PowerEvaluator ev(bit_stats, model, SignedPermutation::identity(n));
  std::size_t evaluations = 1;
  // Accept only clearly-improving moves so float noise cannot cycle forever.
  // Symmetric absolute-plus-relative margin: a pure relative test against
  // `cur` flips direction when the current power is zero or negative.
  const auto improves = [](double cand, double cur) {
    const double margin = 1e-30 + 1e-12 * std::max(std::abs(cand), std::abs(cur));
    return cand < cur - margin;
  };

  bool improved = true;
  while (improved) {
    improved = false;
    double current = ev.power();
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        const double cand = ev.swap_bits(a, b);
        ++evaluations;
        if (improves(cand, current)) {
          current = cand;
          improved = true;
        } else {
          ev.swap_bits(a, b);  // undo
        }
      }
      if (invert_ok[a]) {
        const double cand = ev.toggle_inversion(a);
        ++evaluations;
        if (improves(cand, current)) {
          current = cand;
          improved = true;
        } else {
          ev.toggle_inversion(a);
        }
      }
    }
  }
  SignedPermutation best = ev.assignment();
  const double exact = assignment_power(bit_stats, best, model);
  return {std::move(best), exact, evaluations};
}

BaselinePowers random_assignment_power(const stats::SwitchingStats& bit_stats,
                                       const tsv::LinearCapacitanceModel& model,
                                       std::size_t samples, unsigned seed, int threads) {
  if (samples == 0) throw std::invalid_argument("random_assignment_power: samples must be > 0");
  // Each sample owns a seed stream derived from its index; the reduction runs
  // in sample order afterwards, so mean/worst/best are bit-identical for any
  // thread count.
  std::vector<double> powers(samples);
  opt::parallel_for(samples, threads, [&](std::size_t s) {
    std::mt19937_64 rng(opt::deterministic_seed(seed, s));
    const auto a = SignedPermutation::random(bit_stats.width, rng);
    powers[s] = assignment_power(bit_stats, a, model);
  });
  BaselinePowers out;
  out.best = 1e300;
  double sum = 0.0;
  for (const double p : powers) {
    sum += p;
    out.worst = std::max(out.worst, p);
    out.best = std::min(out.best, p);
  }
  out.mean = sum / static_cast<double>(samples);
  return out;
}

}  // namespace tsvcod::core
