#pragma once
// Incremental power evaluator for assignment search.
//
// A full <T', C'> evaluation is O(N^2); annealing needs ~10^4-10^5 of them
// per bundle. A swap touches two lines and an inversion toggle touches one,
// so only terms involving those lines change — including the capacitances
// C'_lj of every pair containing an affected line (eps_l changed). This
// evaluator maintains the assignment plus the running power and updates it
// in O(N) per move, with moves being self-inverse (repeat to undo), which is
// exactly what the annealer needs.
//
// The per-line state (self activity, centered one-probability, inversion
// sign) lives in contiguous arrays, and the bit-space coupling matrix is
// kept gathered into line space (coup_line_[i][j] = coupling(bit_of_line(i),
// bit_of_line(j)); a swap exchanges one row and one column, a toggle leaves
// it untouched). Every O(N) update is then one or two dense row reductions
// over contiguous memory, dispatched through src/simd to AVX2/AVX-512 FMA
// kernels with a fixed lane-combining order per level. score_moves() prices
// a whole block of candidate moves against the current state without
// mutating it, which is what lets the annealer amortize pricing.
//
// Invariant (checked in tests and the evaluator_drift oracle): power()
// equals assignment_power() of the current assignment up to eps-scale
// floating-point accumulation, at every dispatch level.

#include <span>

#include "core/assignment.hpp"
#include "core/power.hpp"
#include "simd/dispatch.hpp"
#include "stats/switching_stats.hpp"
#include "tsv/linear_model.hpp"

namespace tsvcod::core {

class PowerEvaluator {
 public:
  /// One candidate annealing move: a swap of two bits, or an inversion
  /// toggle of bit `a` (`b` is ignored for toggles).
  struct Move {
    bool is_toggle = false;
    std::size_t a = 0;
    std::size_t b = 0;
  };

  PowerEvaluator(const stats::SwitchingStats& bit_stats, const tsv::LinearCapacitanceModel& model,
                 SignedPermutation initial);

  double power() const { return power_; }
  const SignedPermutation& assignment() const { return assignment_; }
  std::size_t width() const { return n_; }

  /// Restart from a new assignment (same stats/model); also clears any
  /// floating-point drift accumulated by the incremental updates.
  void reset(SignedPermutation assignment);

  /// Exchange the lines of two bits; returns the new total power.
  /// Throws std::out_of_range naming the index and width on a bad bit.
  double swap_bits(std::size_t bit_a, std::size_t bit_b);
  /// Flip one bit's inversion; returns the new total power.
  /// Throws std::out_of_range naming the index and width on a bad bit.
  double toggle_inversion(std::size_t bit);

  /// Price a block of candidate moves against the current state WITHOUT
  /// mutating it: out[k] is the total power the evaluator would report after
  /// applying moves[k] alone. `out` must have at least moves.size() slots.
  /// A scored value matches the later applied value to the same eps-scale
  /// drift bound the incremental updates carry (oracle: evaluator_drift).
  void score_moves(std::span<const Move> moves, std::span<double> out) const;

  /// O(N^2) reference recomputation (for verification).
  double recompute() const;

 private:
  /// Sum of all power terms involving at least one line in {la, lb}
  /// (lb == SIZE_MAX for single-line moves).
  double terms_involving(std::size_t la, std::size_t lb) const;
  void refresh_line(std::size_t line);
  void rebuild_line_coupling();
  void swap_coupling_lines(std::size_t la, std::size_t lb);
  void check_bit(std::size_t bit, const char* fn) const;

  double c_prime(std::size_t li, std::size_t lj) const;
  double k_coupling(std::size_t li, std::size_t lj) const;

  const stats::SwitchingStats& bits_;
  const tsv::LinearCapacitanceModel& model_;
  SignedPermutation assignment_;
  std::size_t n_ = 0;
  simd::AlignedVector<double> line_self_;
  simd::AlignedVector<double> line_eps_;
  simd::AlignedVector<double> line_sign_;
  /// Line-space gather of the bit-space coupling matrix, row-major n x n.
  simd::AlignedVector<double> coup_line_;
  double power_ = 0.0;
};

}  // namespace tsvcod::core
