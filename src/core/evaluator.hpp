#pragma once
// Incremental power evaluator for assignment search.
//
// A full <T', C'> evaluation is O(N^2); annealing needs ~10^4-10^5 of them
// per bundle. A swap touches two lines and an inversion toggle touches one,
// so only terms involving those lines change — including the capacitances
// C'_lj of every pair containing an affected line (eps_l changed). This
// evaluator maintains the assignment plus the running power and updates it
// in O(N) per move, with moves being self-inverse (repeat to undo), which is
// exactly what the annealer needs.
//
// Invariant (checked in tests): power() equals assignment_power() of the
// current assignment, bit-for-bit up to floating-point accumulation.

#include "core/assignment.hpp"
#include "core/power.hpp"
#include "stats/switching_stats.hpp"
#include "tsv/linear_model.hpp"

namespace tsvcod::core {

class PowerEvaluator {
 public:
  PowerEvaluator(const stats::SwitchingStats& bit_stats, const tsv::LinearCapacitanceModel& model,
                 SignedPermutation initial);

  double power() const { return power_; }
  const SignedPermutation& assignment() const { return assignment_; }

  /// Restart from a new assignment (same stats/model); also clears any
  /// floating-point drift accumulated by the incremental updates.
  void reset(SignedPermutation assignment);

  /// Exchange the lines of two bits; returns the new total power.
  double swap_bits(std::size_t bit_a, std::size_t bit_b);
  /// Flip one bit's inversion; returns the new total power.
  double toggle_inversion(std::size_t bit);

  /// O(N^2) reference recomputation (for verification).
  double recompute() const;

 private:
  /// Sum of all power terms involving at least one line in {la, lb}
  /// (lb == SIZE_MAX for single-line moves).
  double terms_involving(std::size_t la, std::size_t lb) const;
  void refresh_line(std::size_t line);

  double c_prime(std::size_t li, std::size_t lj) const;
  double k_coupling(std::size_t li, std::size_t lj) const;

  const stats::SwitchingStats& bits_;
  const tsv::LinearCapacitanceModel& model_;
  SignedPermutation assignment_;
  std::vector<double> line_self_;
  std::vector<double> line_eps_;
  std::vector<double> line_sign_;
  double power_ = 0.0;
};

}  // namespace tsvcod::core
