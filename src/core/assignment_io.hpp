#pragma once
// Assignment persistence and pretty-printing.
//
// An optimized signed permutation is design-time output that must reach the
// floorplan/netlist scripts; this module writes it as a text file and
// renders the array-shaped wiring plan a designer reviews.
//
// Format:
//   tsvcod-assignment v1
//   n <size>
//   map <bit> <line> <0|1 inverted>     (one per bit)

#include <iosfwd>
#include <string>

#include "core/assignment.hpp"
#include "phys/tsv_geometry.hpp"

namespace tsvcod::core {

void save_assignment(std::ostream& os, const SignedPermutation& a);
void save_assignment(const std::string& path, const SignedPermutation& a);

/// Throws std::runtime_error on malformed input.
SignedPermutation load_assignment(std::istream& is);
SignedPermutation load_assignment(const std::string& path);

/// Render the assignment as the physical array: one cell per TSV showing the
/// bit it carries, '~'-prefixed when transmitted inverted.
std::string format_assignment_grid(const phys::TsvArrayGeometry& geom,
                                   const SignedPermutation& a);

}  // namespace tsvcod::core
