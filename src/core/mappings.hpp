#pragma once
// Systematic bit-to-TSV assignments for DSP signals (paper Sec. 4, Fig. 1).
//
//  * Spiral   — for temporally correlated, equally distributed patterns:
//    bits with the highest self-switching activity go to the array corners /
//    perimeter (lowest total capacitance), the calmest bits to the middle.
//    The TSV visit order is an outside-in ring walk starting at a corner.
//  * Sawtooth — for zero-mean normally distributed, temporally uncorrelated
//    patterns: the strongly cross-correlated MSBs are packed onto the most
//    strongly coupled TSV pairs (corner + adjacent edge): the first two rows
//    are filled column-by-column in a zigzag, the rest row by row.
//  * Greedy   — the constructive rule from the paper's text: start at the
//    largest coupling capacitance and recursively pick the TSV with the
//    largest accumulated coupling to the already chosen ones.
//
// Neither systematic assignment uses inversions (the targeted signals have
// balanced bit probabilities and positive correlations).

#include <vector>

#include "core/assignment.hpp"
#include "phys/tsv_geometry.hpp"

namespace tsvcod::core {

/// Raw outside-in ring walk over the array, starting at TSV (0,0), east.
std::vector<std::size_t> ring_order(const phys::TsvArrayGeometry& geom);

/// The paper's Spiral visit order: corners first, then edges, then middle
/// TSVs (ascending total capacitance class), each class traversed in
/// outside-in ring order. For the paper's arrays this traces the spiral of
/// Fig. 1.a while honouring the textual rule "highest self switching to the
/// corners, next highest to the edges, rest to the middle".
std::vector<std::size_t> spiral_order(const phys::TsvArrayGeometry& geom);

/// First two rows zigzag ((0,0),(1,0),(0,1),(1,1),...), then row-major.
std::vector<std::size_t> sawtooth_order(const phys::TsvArrayGeometry& geom);

/// Recursive max-accumulated-coupling order, seeded with the largest C_ij.
std::vector<std::size_t> greedy_coupling_order(const phys::Matrix& c);

/// TSV indices sorted by total connected capacitance C_T (ascending).
std::vector<std::size_t> capacitance_order(const phys::Matrix& c);

/// Bits ranked by self-switching activity, descending (ties keep bit order).
std::vector<std::size_t> rank_by_self_switching(const stats::SwitchingStats& s);

/// Bits ranked by total positive switching correlation, descending ("MSB
/// first" for normally distributed data; ties keep descending bit order so
/// untied LSB regions stay in significance order).
std::vector<std::size_t> rank_by_correlation(const stats::SwitchingStats& s);

/// Spiral assignment: rank bits by self switching, place along spiral_order.
SignedPermutation spiral_assignment(const phys::TsvArrayGeometry& geom,
                                    const stats::SwitchingStats& s);

/// Sawtooth assignment: rank bits by correlation, place along sawtooth_order.
SignedPermutation sawtooth_assignment(const phys::TsvArrayGeometry& geom,
                                      const stats::SwitchingStats& s);

/// Assignment placing ranked bits along an arbitrary TSV order.
SignedPermutation assignment_from_orders(std::span<const std::size_t> bit_rank,
                                         std::span<const std::size_t> tsv_order);

}  // namespace tsvcod::core
