#pragma once
// End-to-end coded transmission over an assigned TSV array.
//
// The paper's full chain is  encode -> assign -> TSV lines -> unassign ->
// decode; decodability of that chain is the correctness half of its central
// claim. Before this class existed, every bench and example wired the chain
// by hand from two independently constructed codec objects — and a stateful
// pair (bus-invert prev-word, correlator/T0 histories) silently desyncs if
// only one endpoint is ever reset. CodedLink owns both endpoints, builds the
// receiver by cloning the transmitter (parameters can never disagree), and
// propagates reset() to both sides atomically: there is no API to reset one
// endpoint without the other.
//
// Thread safety: transmit / receive / roundtrip / reset are serialized by an
// internal mutex, so a reset (including the assignment hot-swap overload)
// can land between whole words of concurrent traffic without ever splitting
// the tx/rx pair — the swap mechanism the streaming service (src/serve)
// relies on. roundtrip() holds the lock across both halves, so interleaved
// roundtrips from several threads keep the endpoint histories in lockstep.
// The uncontended lock is a few nanoseconds against a codec's encode cost;
// single-threaded callers are unaffected.

#include <cstdint>
#include <memory>
#include <mutex>

#include "coding/codec.hpp"
#include "core/assignment.hpp"

namespace tsvcod::core {

class CodedLink {
 public:
  /// `assignment` maps the codec's output lines to TSVs; its size must equal
  /// the codec's output width. The receiver endpoint is a clone of `codec`
  /// taken before any traffic, so both endpoints start in the power-on state.
  CodedLink(SignedPermutation assignment, std::unique_ptr<coding::Codec> codec);

  std::size_t payload_width() const { return tx_->width_in(); }
  std::size_t line_width() const { return assignment_.size(); }

  /// The live assignment. Only stable while no concurrent reset(next) can
  /// run; concurrent readers should take assignment_snapshot() instead.
  const SignedPermutation& assignment() const { return assignment_; }
  /// Copy of the live assignment, taken under the link lock.
  SignedPermutation assignment_snapshot() const;

  /// Transmitter side: encode a payload word and place it on the TSV lines.
  std::uint64_t transmit(std::uint64_t word);
  /// Receiver side: recover the payload word from the TSV line word.
  std::uint64_t receive(std::uint64_t lines);
  /// Full chain; equals the input for every codec when both endpoints stay
  /// in sync (the harness' first oracle). Atomic: the encode and decode
  /// halves happen under one lock acquisition, so a concurrent reset can
  /// never land between them.
  std::uint64_t roundtrip(std::uint64_t word);

  /// Atomic pair reset: both endpoints return to the power-on state in one
  /// call. Resetting a single endpoint of a stateful pair desyncs the link;
  /// tests that need to *demonstrate* that failure mode use the endpoint
  /// accessors below.
  void reset();

  /// Atomic hot-swap: install `next` as the live assignment AND reset both
  /// endpoints, all inside one critical section. Traffic running
  /// concurrently through roundtrip() observes a clean cut — every word is
  /// encoded, assigned, unassigned and decoded under exactly one assignment
  /// and one consistent pair state, so the swap causes zero decode desyncs.
  /// `next.size()` must equal the current line width.
  void reset(SignedPermutation next);

  /// Endpoint access for desync experiments and statistics probes. Resetting
  /// through these bypasses the atomicity guarantee on purpose.
  coding::Codec& transmitter() { return *tx_; }
  coding::Codec& receiver() { return *rx_; }

 private:
  SignedPermutation assignment_;
  std::unique_ptr<coding::Codec> tx_;
  std::unique_ptr<coding::Codec> rx_;
  // unique_ptr keeps the link movable (std::mutex is not); never null.
  std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
};

}  // namespace tsvcod::core
