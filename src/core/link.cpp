#include "core/link.hpp"

#include <stdexcept>

#include "stats/ingest.hpp"

namespace tsvcod::core {

Link::Link(const phys::TsvArrayGeometry& geom, const tsv::AnalyticModelParams& params)
    : geom_(geom), model_(tsv::fit_from_analytic(geom, params)) {}

Link::Link(const phys::TsvArrayGeometry& geom, tsv::LinearCapacitanceModel model)
    : geom_(geom), model_(std::move(model)) {
  if (model_.size() != geom_.count()) {
    throw std::invalid_argument("Link: model size does not match the array");
  }
}

stats::SwitchingStats Link::measure(streams::WordStream& stream, std::size_t samples) const {
  if (stream.width() != width()) {
    throw std::invalid_argument("Link::measure: stream width does not match the array");
  }
  // Streams generate sequentially, but the reduction does not have to:
  // materialize the trace and hand it to the chunked bit-plane kernel
  // (bit-identical to feeding an accumulator word by word).
  std::vector<std::uint64_t> words(samples);
  for (auto& w : words) w = stream.next();
  return stats::compute_stats(words, width());
}

stats::SwitchingStats Link::measure(streams::WordSource& source, int threads) const {
  if (source.width() != width()) {
    throw std::invalid_argument("Link::measure: source width does not match the array");
  }
  return stats::compute_stats(source, width(), threads);
}

double Link::power(const stats::SwitchingStats& bit_stats, const SignedPermutation& a) const {
  return assignment_power(bit_stats, a, model_);
}

CodedLink Link::coded(const coding::CodecSpec& spec, const SignedPermutation& assignment) const {
  if (assignment.size() != width()) {
    throw std::invalid_argument("Link::coded: assignment size does not match the array");
  }
  return CodedLink(assignment, coding::make_codec_for_lines(spec, width()));
}

AssignmentStudy study_assignments(const Link& link, const stats::SwitchingStats& bit_stats,
                                  const StudyOptions& options) {
  if (bit_stats.width != link.width()) {
    throw std::invalid_argument("study_assignments: stats width does not match the array");
  }
  AssignmentStudy out;
  const auto base = random_assignment_power(bit_stats, link.model(), options.random_samples, 99,
                                            options.optimize.threads);
  out.random_mean = base.mean;
  out.random_worst = base.worst;
  out.identity = link.power(bit_stats, SignedPermutation::identity(link.width()));

  auto opt = optimize_assignment(bit_stats, link.model(), options.optimize);
  out.optimal = opt.power;
  out.optimal_map = std::move(opt.assignment);

  if (options.with_spiral) {
    out.spiral_map = spiral_assignment(link.geometry(), bit_stats);
    out.spiral = link.power(bit_stats, out.spiral_map);
  }
  if (options.with_sawtooth) {
    out.sawtooth_map = sawtooth_assignment(link.geometry(), bit_stats);
    out.sawtooth = link.power(bit_stats, out.sawtooth_map);
  }
  return out;
}

}  // namespace tsvcod::core
