#pragma once
// High-level experiment API: a TSV link = array geometry + fitted
// capacitance model, with one-call assignment studies.
//
// This is the entry point a downstream user needs: build a Link for their
// array, measure a sample stream, and ask for the optimal / systematic
// assignments and the reductions versus a random hookup. All figure benches
// and examples are written against this API.

#include <cstddef>

#include "coding/factory.hpp"
#include "core/coded_link.hpp"
#include "core/mappings.hpp"
#include "core/optimize.hpp"
#include "streams/word_source.hpp"
#include "streams/word_stream.hpp"
#include "tsv/linear_model.hpp"

namespace tsvcod::core {

class Link {
 public:
  /// Build with the fast analytic capacitance backend (default) or inject a
  /// pre-fitted model (e.g. from the finite-difference extractor).
  explicit Link(const phys::TsvArrayGeometry& geom, const tsv::AnalyticModelParams& params = {});
  Link(const phys::TsvArrayGeometry& geom, tsv::LinearCapacitanceModel model);

  const phys::TsvArrayGeometry& geometry() const { return geom_; }
  const tsv::LinearCapacitanceModel& model() const { return model_; }
  std::size_t width() const { return geom_.count(); }

  /// Measure switching statistics of `samples` words from a stream whose
  /// width matches the array.
  stats::SwitchingStats measure(streams::WordStream& stream, std::size_t samples) const;

  /// Measure a whole recorded trace (text, binary or in-memory) whose width
  /// matches the array. An mmap'd binary source is consumed zero-copy.
  /// `threads` 0 resolves via the TSVCOD_THREADS convention.
  stats::SwitchingStats measure(streams::WordSource& source, int threads = 0) const;

  /// Normalized power of a stream's statistics under an assignment.
  double power(const stats::SwitchingStats& bit_stats, const SignedPermutation& a) const;

  /// End-to-end coded transmission over this array: the codec named by `spec`
  /// is sized so its output occupies exactly the array's lines, and both
  /// endpoints live in one CodedLink so they can only be reset atomically.
  CodedLink coded(const coding::CodecSpec& spec, const SignedPermutation& assignment) const;

 private:
  phys::TsvArrayGeometry geom_;
  tsv::LinearCapacitanceModel model_;
};

struct StudyOptions {
  std::size_t random_samples = 200;  ///< Monte-Carlo size of the baseline
  OptimizeOptions optimize{};
  bool with_spiral = true;
  bool with_sawtooth = true;
};

/// All assignment variants evaluated on one statistics set. Powers are
/// normalized (<T,C>, units F); reductions are percentages versus the mean
/// random assignment, matching the paper's reporting.
struct AssignmentStudy {
  double random_mean = 0.0;
  double random_worst = 0.0;
  double identity = 0.0;
  double optimal = 0.0;
  double spiral = 0.0;
  double sawtooth = 0.0;
  SignedPermutation optimal_map{1};
  SignedPermutation spiral_map{1};
  SignedPermutation sawtooth_map{1};

  double reduction_optimal() const { return reduction_pct(random_mean, optimal); }
  double reduction_spiral() const { return reduction_pct(random_mean, spiral); }
  double reduction_sawtooth() const { return reduction_pct(random_mean, sawtooth); }
  double reduction_vs_worst(double value) const { return reduction_pct(random_worst, value); }
};

AssignmentStudy study_assignments(const Link& link, const stats::SwitchingStats& bit_stats,
                                  const StudyOptions& options = {});

}  // namespace tsvcod::core
