#include "core/power.hpp"

#include <stdexcept>

namespace tsvcod::core {

double normalized_power(const stats::SwitchingStats& line_stats, const phys::Matrix& c) {
  const std::size_t n = line_stats.width;
  if (c.rows() != n || c.cols() != n) {
    throw std::invalid_argument("normalized_power: capacitance matrix size mismatch");
  }
  // <T, C> with T_ii = self_i and T_ij = self_i - coupling_ij, expanded
  // directly to avoid materializing T.
  double p = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    p += line_stats.self[i] * c(i, i);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      p += (line_stats.self[i] - line_stats.coupling(i, j)) * c(i, j);
    }
  }
  return p;
}

double assignment_power(const stats::SwitchingStats& bit_stats, const SignedPermutation& a,
                        const tsv::LinearCapacitanceModel& model) {
  if (model.size() != bit_stats.width) {
    throw std::invalid_argument("assignment_power: model/stats width mismatch");
  }
  const stats::SwitchingStats line_stats = a.apply(bit_stats);
  const phys::Matrix c = model.evaluate_eps(line_stats.eps());
  return normalized_power(line_stats, c);
}

double assignment_power_fixed_c(const stats::SwitchingStats& bit_stats,
                                const SignedPermutation& a, const phys::Matrix& c) {
  const stats::SwitchingStats line_stats = a.apply(bit_stats);
  return normalized_power(line_stats, c);
}

double physical_power(double normalized, double vdd, double frequency) {
  return normalized * vdd * vdd * frequency / 2.0;
}

}  // namespace tsvcod::core
