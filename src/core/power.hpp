#pragma once
// The paper's interconnect power model (Eq. 1/2/10).
//
// Normalized mean dynamic power P_n = <T, C> (Frobenius inner product) with
// T from the line statistics (Eq. 3) and C the paper-form capacitance matrix
// (diagonal = ground caps, off-diagonal = coupling caps). The physical power
// is P = P_n * Vdd^2 * f / 2. `assignment_power` evaluates a candidate
// signed permutation end to end, including the probability-dependent MOS
// capacitances via the linear model of Eq. 7/9.

#include "core/assignment.hpp"
#include "phys/matrix.hpp"
#include "stats/switching_stats.hpp"
#include "tsv/linear_model.hpp"

namespace tsvcod::core {

/// <T, C> for statistics already expressed per line. Units: farads.
double normalized_power(const stats::SwitchingStats& line_stats, const phys::Matrix& c);

/// Power of a bit stream under an assignment, with MOS-aware capacitances
/// (C' of Eq. 9 via the linear model). This is the objective of Eq. 10.
double assignment_power(const stats::SwitchingStats& bit_stats, const SignedPermutation& a,
                        const tsv::LinearCapacitanceModel& model);

/// Ablation variant: evaluate against a fixed capacitance matrix (MOS effect
/// ignored; inversions then only act on negative switching correlations).
double assignment_power_fixed_c(const stats::SwitchingStats& bit_stats,
                                const SignedPermutation& a, const phys::Matrix& c);

/// Physical mean power [W] from normalized power: P = P_n * Vdd^2 * f / 2.
double physical_power(double normalized, double vdd, double frequency);

}  // namespace tsvcod::core
