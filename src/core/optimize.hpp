#pragma once
// Power-optimal assignment search (paper Eq. 10).
//
// The objective <T', C'> is minimized over signed permutations. Simulated
// annealing is the workhorse (as in the paper); an exhaustive search over
// all permutations x inversion masks provides ground truth for small arrays,
// and random-assignment baselines provide the comparison point the paper's
// reductions are quoted against.

#include <span>
#include <vector>

#include "core/assignment.hpp"
#include "core/power.hpp"
#include "opt/annealing.hpp"

namespace tsvcod::core {

struct OptimizeOptions {
  opt::AnnealingSchedule schedule{};
  bool allow_inversions = true;
  /// Per-bit inversion permission (power/ground lines must stay upright).
  /// Empty = all bits invertible (if allow_inversions).
  std::vector<std::uint8_t> allow_invert;
  unsigned seed = 1;
  /// Independent annealing chains; each runs the full schedule on its own
  /// seed stream (derived from `seed` and the chain index) and the lowest
  /// final power wins, ties broken by the lower chain index. The result is
  /// therefore a pure function of (stats, model, options) — never of the
  /// thread count.
  int chains = 4;
  /// Worker threads for the chains. 0 = TSVCOD_THREADS env override, else 1.
  int threads = 0;
};

struct OptimizeResult {
  SignedPermutation assignment;
  double power = 0.0;
  /// Candidate assignments priced across all chains: one per probe or
  /// attempted move (undos of rejected moves are not re-counted).
  std::size_t evaluations = 0;
};

/// Simulated-annealing search for the minimum-power signed permutation.
/// Runs `options.chains` independent chains (in parallel when
/// `options.threads` allows) and returns the deterministic best-of.
OptimizeResult optimize_assignment(const stats::SwitchingStats& bit_stats,
                                   const tsv::LinearCapacitanceModel& model,
                                   const OptimizeOptions& options = {});

/// Batch search: one optimize_assignment per statistics entry (e.g. every
/// vertical TSV bundle of a 3D mesh), parallelized over entries through the
/// shared pool. Entry i runs with its own seed stream derived from
/// (options.seed, i) and its chains serialized (the parallelism lives at the
/// batch level), so the result vector is a pure function of (stats, model,
/// options) — bit-identical at every `threads` value (the usual convention:
/// 0 = TSVCOD_THREADS, else the given count).
std::vector<OptimizeResult> optimize_assignments(std::span<const stats::SwitchingStats> bit_stats,
                                                 const tsv::LinearCapacitanceModel& model,
                                                 const OptimizeOptions& options = {},
                                                 int threads = 0);

/// Exhaustive ground truth: all n! permutations x all permitted inversion
/// masks. Throws if the search space exceeds ~10^7 evaluations.
OptimizeResult exhaustive_optimal(const stats::SwitchingStats& bit_stats,
                                  const tsv::LinearCapacitanceModel& model,
                                  const OptimizeOptions& options = {});

/// Deterministic first-improvement descent: sweep all pair swaps and
/// permitted inversion toggles until no move improves. No randomness, no
/// tuning — a reproducible baseline optimizer that lands at a local optimum
/// (usually within a percent of annealing) in O(sweeps * n^3).
OptimizeResult greedy_descent(const stats::SwitchingStats& bit_stats,
                              const tsv::LinearCapacitanceModel& model,
                              const OptimizeOptions& options = {});

struct BaselinePowers {
  double mean = 0.0;   ///< mean over sampled random assignments
  double worst = 0.0;  ///< highest sampled power
  double best = 0.0;   ///< lowest sampled power
};

/// Random plain-permutation baseline (no inversions): what an assignment-
/// unaware design would get. Each sample draws from its own seed stream
/// (derived from `seed` and the sample index) and the reduction runs in
/// sample order, so the result is deterministic for a fixed seed at every
/// thread count. `threads` 0 = TSVCOD_THREADS env override, else 1.
BaselinePowers random_assignment_power(const stats::SwitchingStats& bit_stats,
                                       const tsv::LinearCapacitanceModel& model,
                                       std::size_t samples = 200, unsigned seed = 99,
                                       int threads = 0);

/// Percent reduction of `value` versus `baseline`.
inline double reduction_pct(double baseline, double value) {
  return baseline > 0.0 ? (1.0 - value / baseline) * 100.0 : 0.0;
}

}  // namespace tsvcod::core
