#include "core/coded_link.hpp"

#include <stdexcept>
#include <string>

namespace tsvcod::core {

CodedLink::CodedLink(SignedPermutation assignment, std::unique_ptr<coding::Codec> codec)
    : assignment_(std::move(assignment)), tx_(std::move(codec)) {
  if (!tx_) throw std::invalid_argument("CodedLink: null codec");
  if (assignment_.size() != tx_->width_out()) {
    throw std::invalid_argument("CodedLink: assignment size " +
                                std::to_string(assignment_.size()) +
                                " does not match codec output width " +
                                std::to_string(tx_->width_out()));
  }
  // Both endpoints must start from the power-on state regardless of any
  // traffic the caller already pushed through the prototype.
  tx_->reset();
  rx_ = tx_->clone();
}

SignedPermutation CodedLink::assignment_snapshot() const {
  std::lock_guard<std::mutex> lk(*mu_);
  return assignment_;
}

std::uint64_t CodedLink::transmit(std::uint64_t word) {
  std::lock_guard<std::mutex> lk(*mu_);
  return assignment_.apply_word(tx_->encode(word));
}

std::uint64_t CodedLink::receive(std::uint64_t lines) {
  std::lock_guard<std::mutex> lk(*mu_);
  return rx_->decode(assignment_.unapply_word(lines));
}

std::uint64_t CodedLink::roundtrip(std::uint64_t word) {
  // One critical section for both halves: a concurrent reset / hot-swap can
  // only land between whole words, never between a word's encode and decode.
  std::lock_guard<std::mutex> lk(*mu_);
  return rx_->decode(assignment_.unapply_word(assignment_.apply_word(tx_->encode(word))));
}

void CodedLink::reset() {
  std::lock_guard<std::mutex> lk(*mu_);
  tx_->reset();
  rx_->reset();
}

void CodedLink::reset(SignedPermutation next) {
  if (next.size() != assignment_.size()) {
    throw std::invalid_argument("CodedLink::reset: new assignment size " +
                                std::to_string(next.size()) + " does not match line width " +
                                std::to_string(assignment_.size()));
  }
  std::lock_guard<std::mutex> lk(*mu_);
  assignment_ = std::move(next);
  tx_->reset();
  rx_->reset();
}

}  // namespace tsvcod::core
