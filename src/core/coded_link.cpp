#include "core/coded_link.hpp"

#include <stdexcept>

namespace tsvcod::core {

CodedLink::CodedLink(SignedPermutation assignment, std::unique_ptr<coding::Codec> codec)
    : assignment_(std::move(assignment)), tx_(std::move(codec)) {
  if (!tx_) throw std::invalid_argument("CodedLink: null codec");
  if (assignment_.size() != tx_->width_out()) {
    throw std::invalid_argument("CodedLink: assignment size " +
                                std::to_string(assignment_.size()) +
                                " does not match codec output width " +
                                std::to_string(tx_->width_out()));
  }
  // Both endpoints must start from the power-on state regardless of any
  // traffic the caller already pushed through the prototype.
  tx_->reset();
  rx_ = tx_->clone();
}

std::uint64_t CodedLink::transmit(std::uint64_t word) {
  return assignment_.apply_word(tx_->encode(word));
}

std::uint64_t CodedLink::receive(std::uint64_t lines) {
  return rx_->decode(assignment_.unapply_word(lines));
}

void CodedLink::reset() {
  tx_->reset();
  rx_->reset();
}

}  // namespace tsvcod::core
