#pragma once
// Generic simulated-annealing engine (paper Sec. 3: "we exemplary use
// simulated annealing to determine the optimal mapping").
//
// Header-only and type-generic so the same engine can optimize signed
// permutations (the core use), routing orders, or anything else with an
// energy and a neighbour move. The temperature ladder auto-calibrates from
// sampled move deltas when `t_start <= 0`, and multiple restarts guard
// against unlucky cooling runs (each restart begins from the best state seen
// so far).

#include <cmath>
#include <cstddef>
#include <random>
#include <utility>

namespace tsvcod::opt {

struct AnnealingSchedule {
  int iterations = 20000;   ///< moves per restart
  int restarts = 3;
  double t_start = -1.0;    ///< <= 0: auto-calibrate from sampled deltas
  double t_ratio = 1e-4;    ///< t_end = t_start * t_ratio (geometric cooling)
};

struct AnnealingResult {
  double energy = 0.0;
  std::size_t accepted_moves = 0;
  std::size_t evaluations = 0;
};

/// Minimize `energy(state)` starting from `init`. `neighbor(state, rng)` must
/// return a candidate state; `energy` must be deterministic. Returns the best
/// state visited; `result`, if given, receives search statistics.
template <typename State, typename EnergyFn, typename NeighborFn, typename Rng>
State anneal(State init, EnergyFn&& energy, NeighborFn&& neighbor, const AnnealingSchedule& sched,
             Rng& rng, AnnealingResult* result = nullptr) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  State best = std::move(init);
  double best_e = energy(best);
  AnnealingResult stats;
  stats.evaluations = 1;

  double t_start = sched.t_start;
  if (t_start <= 0.0) {
    // Calibrate: average |delta E| of random moves from the start state.
    double acc = 0.0;
    constexpr int kProbe = 32;
    for (int i = 0; i < kProbe; ++i) {
      const State cand = neighbor(best, rng);
      acc += std::abs(energy(cand) - best_e);
      ++stats.evaluations;
    }
    t_start = acc / kProbe * 2.0;
    if (t_start <= 0.0) t_start = 1e-12;  // flat landscape: quench
  }
  const double t_end = t_start * sched.t_ratio;
  const double decay =
      sched.iterations > 1 ? std::pow(t_end / t_start, 1.0 / (sched.iterations - 1)) : 1.0;

  for (int restart = 0; restart < sched.restarts; ++restart) {
    State current = best;
    double current_e = best_e;
    double t = t_start;
    for (int it = 0; it < sched.iterations; ++it, t *= decay) {
      State cand = neighbor(current, rng);
      const double e = energy(cand);
      ++stats.evaluations;
      const double d = e - current_e;
      if (d <= 0.0 || uni(rng) < std::exp(-d / t)) {
        current = std::move(cand);
        current_e = e;
        ++stats.accepted_moves;
        if (current_e < best_e) {
          best = current;
          best_e = current_e;
        }
      }
    }
  }
  stats.energy = best_e;
  if (result) *result = stats;
  return best;
}

}  // namespace tsvcod::opt
