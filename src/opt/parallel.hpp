#pragma once
// Shared parallel execution layer: a fixed-thread pool (no work stealing,
// one FIFO queue) plus a deterministic `parallel_for` used by the annealer,
// the random-assignment baselines and the field extractor.
//
// Determinism contract: parallelized algorithms derive every random stream
// from the *logical* index of a work item (`deterministic_seed`), never from
// the executing thread, and reduce per-item results in logical-index order.
// Anything built on this layer therefore produces bit-identical output for
// every thread count, including 1 — existing figures and golden tests stay
// valid when the hardware changes.
//
// Thread-count resolution: every `threads` knob treats 0 as "use the
// TSVCOD_THREADS environment override, else run serially". TSVCOD_THREADS=0
// means "all hardware threads".

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace tsvcod::opt {

/// splitmix64 over (base, index): statistically independent seed streams per
/// logical work item, independent of which thread executes the item.
inline std::uint64_t deterministic_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + (index + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

inline int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Thread count used when a `threads` knob is 0: the TSVCOD_THREADS
/// environment variable if set (its value 0 = all hardware threads), else 1.
/// A malformed or negative TSVCOD_THREADS throws std::runtime_error naming
/// the variable and its value instead of silently running serially.
inline int default_threads() {
  static const int cached = [] {
    const char* env = std::getenv("TSVCOD_THREADS");
    if (!env || !*env) return 1;
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 0 || v > 65536) return -1;  // sentinel: malformed
    if (v == 0) return hardware_threads();
    return static_cast<int>(v);
  }();
  if (cached < 0) {
    throw std::runtime_error(std::string("TSVCOD_THREADS='") + std::getenv("TSVCOD_THREADS") +
                             "' is not a thread count (expected a non-negative integer; "
                             "0 means all hardware threads)");
  }
  return cached;
}

inline int resolve_threads(int threads) { return threads > 0 ? threads : default_threads(); }

/// Process-wide pool of worker threads. Workers are created on demand (up to
/// the largest concurrency any caller asked for) and live until exit, so
/// repeated parallel sections reuse threads instead of respawning them.
class ThreadPool {
 public:
  static ThreadPool& shared() {
    static ThreadPool pool;
    return pool;
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  /// Grow to at least `n` worker threads (never shrinks).
  void ensure_workers(int n) {
    std::lock_guard<std::mutex> lk(mu_);
    while (static_cast<int>(threads_.size()) < n) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  int workers() const {
    std::lock_guard<std::mutex> lk(mu_);
    return static_cast<int>(threads_.size());
  }

  void submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      jobs_.push_back(std::move(job));
    }
    cv_.notify_one();
  }

  /// Run one queued job on the calling thread, if any is pending. Lets a
  /// waiting caller help drain the queue (and makes nested parallel sections
  /// deadlock-free: the blocked outer task executes the inner jobs itself).
  bool try_run_one() {
    std::function<void()> job;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (jobs_.empty()) return false;
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();
    return true;
  }

 private:
  ThreadPool() = default;

  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return stop_ || !jobs_.empty(); });
        if (jobs_.empty()) return;  // stop_ set and queue drained
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      job();
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

/// Call `fn(i)` for every i in [0, n) using up to `threads` threads (the
/// caller participates). Work items are handed out dynamically, so `fn` must
/// only write to per-index state; results are then independent of scheduling.
/// The first exception thrown by any item is rethrown on the caller after all
/// workers stop. `threads <= 0` resolves via `default_threads()`.
template <typename Fn>
void parallel_for(std::size_t n, int threads, Fn&& fn) {
  if (n == 0) return;
  const std::size_t k =
      std::min(n, static_cast<std::size_t>(std::max(1, resolve_threads(threads))));
  if (k <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct State {
    std::atomic<std::size_t> next{0};
    int pending = 0;  // helper jobs not yet finished (guarded by mu)
    std::mutex mu;
    std::condition_variable done;
    std::exception_ptr error;  // first failure (guarded by mu)
  };
  auto state = std::make_shared<State>();
  const auto run_share = [state, n, &fn] {
    try {
      for (std::size_t i = state->next.fetch_add(1); i < n; i = state->next.fetch_add(1)) {
        fn(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lk(state->mu);
      if (!state->error) state->error = std::current_exception();
      state->next.store(n);  // stop handing out further work
    }
  };

  auto& pool = ThreadPool::shared();
  pool.ensure_workers(static_cast<int>(k) - 1);
  state->pending = static_cast<int>(k) - 1;
  // Propagate the submitting span as the logical profiler parent: spans
  // opened inside `fn` on a worker then aggregate under the span that was
  // open here, so the profile tree depends only on call structure, never on
  // which thread ran an item (or on `threads`). `try_run_one` below also
  // drains *other* sections' jobs on this thread — each job carrying its own
  // scope override is what keeps that re-entrancy correct.
  const obs::ProfileToken profile_parent = obs::profile_current();
  for (std::size_t w = 0; w + 1 < k; ++w) {
    // `run_share` holds a reference to `fn`; that is safe because this frame
    // blocks until every helper job has finished.
    pool.submit([state, run_share, profile_parent] {
      obs::ProfileTaskScope profile_scope(profile_parent);
      run_share();
      {
        std::lock_guard<std::mutex> lk(state->mu);
        --state->pending;
      }
      state->done.notify_all();
    });
  }
  run_share();  // the caller works too

  for (;;) {
    {
      std::unique_lock<std::mutex> lk(state->mu);
      if (state->pending == 0) break;
    }
    // Helpers may still sit in the queue behind other jobs; drain instead of
    // sleeping so nested parallel sections cannot deadlock.
    if (!pool.try_run_one()) {
      std::unique_lock<std::mutex> lk(state->mu);
      state->done.wait_for(lk, std::chrono::milliseconds(1),
                           [&] { return state->pending == 0; });
    }
  }
  if (state->error) std::rethrow_exception(state->error);
}

/// Lightweight sense-reversing barrier for phase-synchronous kernels (the
/// NoC mesh engine's arbitrate/transfer cycle). Spins briefly, then yields:
/// on an oversubscribed host (ranks > hardware threads) long spinning would
/// burn the scheduler quantum the *other* ranks need, so the spin budget
/// collapses to zero there. Synchronization: every arrival is an acq_rel RMW
/// on `arrived_` and the release of `phase_` by the last arriver forms a
/// release sequence through those RMWs, so writes made by any rank before
/// wait() are visible to every rank after it returns.
class SpinBarrier {
 public:
  explicit SpinBarrier(int participants, bool spin = true)
      : n_(participants), spin_(spin && participants <= hardware_threads()) {}

  void wait() {
    const std::uint64_t phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        static_cast<std::uint64_t>(n_)) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_release);
      return;
    }
    int spins = 0;
    while (phase_.load(std::memory_order_acquire) == phase) {
      if (!spin_ || ++spins > 4096) std::this_thread::yield();
    }
  }

 private:
  const int n_;
  const bool spin_;
  std::atomic<std::uint64_t> arrived_{0};
  std::atomic<std::uint64_t> phase_{0};
};

/// Run `fn(rank)` for ranks 0..k-1 concurrently: ranks 1..k-1 on the shared
/// pool, rank 0 on the caller. Unlike `parallel_for`'s dynamic work handout,
/// every rank is *resident* for the whole call — the shape long-running
/// phase-synchronous kernels need (the ranks synchronize among themselves,
/// e.g. with SpinBarrier). Resident jobs must not wait on jobs that are
/// still queued behind them, so only one team can be in flight at a time: a
/// process-wide mutex serializes teams (concurrent callers block, they do
/// not deadlock), and short-lived parallel_for jobs interleave freely before
/// or after. `fn` must synchronize its own ranks; if a rank throws, the rank
/// stops participating — kernels that barrier internally must catch their
/// own exceptions and keep arriving (see the NoC engine's abort flag).
/// The first exception is rethrown on the caller after every rank returned.
template <typename Fn>
void parallel_team(int k, Fn&& fn) {
  if (k <= 1) {
    fn(0);
    return;
  }
  static std::mutex team_mu;
  std::lock_guard<std::mutex> team_lk(team_mu);

  struct State {
    int pending = 0;  // guarded by mu
    std::mutex mu;
    std::condition_variable done;
    std::exception_ptr error;  // first failure (guarded by mu)
  };
  auto state = std::make_shared<State>();
  state->pending = k - 1;

  auto& pool = ThreadPool::shared();
  pool.ensure_workers(k - 1);
  const obs::ProfileToken profile_parent = obs::profile_current();
  for (int rank = 1; rank < k; ++rank) {
    // `fn` is captured by reference: this frame blocks until every rank has
    // finished, so the reference outlives all jobs.
    pool.submit([state, rank, profile_parent, &fn] {
      obs::ProfileTaskScope profile_scope(profile_parent);
      try {
        fn(rank);
      } catch (...) {
        std::lock_guard<std::mutex> lk(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lk(state->mu);
        --state->pending;
      }
      state->done.notify_all();
    });
  }
  try {
    fn(0);
  } catch (...) {
    std::lock_guard<std::mutex> lk(state->mu);
    if (!state->error) state->error = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lk(state->mu);
    state->done.wait(lk, [&] { return state->pending == 0; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace tsvcod::opt
