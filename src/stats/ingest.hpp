#pragma once
// WordSource -> switching statistics: the zero-copy ingestion entry point.
//
// Chunks from the source feed the chunked bit-plane reduction directly —
// an mmap'd binary trace goes file pages -> kernel with no intermediate
// vector. Consecutive chunks are linked by priming each one with the last
// word of its predecessor (whose one-bits the predecessor already counted),
// so the merged counts equal the counts of the whole trace exactly and the
// result is bit-identical to materializing the trace and calling
// compute_stats on it, at every width and thread count.
//
// The seam-chain bookkeeping lives in ChunkFolder so every chunked consumer
// (batch ingestion here, the per-session accumulators in src/serve) shares
// one hardened implementation: an empty chunk is a no-op that leaves the
// seam untouched (naively updating the seam with `chunk.back()` on an empty
// chunk is undefined behaviour), and a single-word chunk contributes exactly
// its one transition once the chain is primed.
//
// Observability (when enabled): deterministic counters
// trace.ingest.{count,words_total,bytes_total} on the metrics registry, and
// timing-based trace.ingest.{words_per_sec,bytes_per_sec} samples on the
// trace counter track.

#include <span>

#include "stats/bitplane.hpp"
#include "stats/switching_types.hpp"
#include "streams/word_source.hpp"

namespace tsvcod::stats {

/// Incremental seam-chained chunk reduction: fold() arbitrary chunk sizes
/// (0, 1, 2, ... words — a streaming pipe delivers whatever it has) and the
/// accumulated counts are bit-identical to one-shot compute_counts of the
/// concatenated words, at every chunk partition and thread count.
///
/// Seam-chain invariant: after any sequence of fold() calls, `prime_` holds
/// the last word ever folded and `primed_` says whether any word has been
/// folded at all. The next non-empty chunk is seeded with that word (its
/// one-bits were already counted by the chunk that ended with it), so
/// transitions partition exactly across chunks. Empty chunks MUST leave both
/// fields untouched — advancing the seam without counting a transition (or
/// reading `back()` of an empty span) silently corrupts every later chunk.
class ChunkFolder {
 public:
  /// `threads` is passed through to the parallel chunk reduction (0 =
  /// TSVCOD_THREADS, as everywhere).
  explicit ChunkFolder(std::size_t width, int threads = 1);

  std::size_t width() const { return width_; }

  /// Fold the next chunk of the stream. Empty chunks are no-ops; a 1-word
  /// chunk adds one word (plus one transition once primed).
  void fold(std::span<const std::uint64_t> chunk);

  /// Everything folded so far (exact; mergeable).
  const SwitchingCounts& counts() const { return total_; }

  /// finalize()d counts; needs >= 2 words folded since the last reset.
  SwitchingStats stats() const { return total_.finalize(); }

  /// Words folded since construction / the last reset or window reset.
  std::uint64_t words() const { return total_.words; }

  /// True once at least one word has been folded (the seam word is live).
  bool primed() const { return primed_; }
  /// The seam word: last word folded. Only valid when primed().
  std::uint64_t seam() const;

  /// Full reset: counts cleared AND the seam chain forgotten (the next chunk
  /// starts a fresh stream).
  void reset();

  /// Windowed reset: clear the counts but carry the seam word over, so the
  /// next window's first word still forms a transition with the previous
  /// window's last word. Tumbling windows produced this way sum (merge) to
  /// the exact whole-stream counts. No-op on an unprimed folder.
  void reset_window();

 private:
  std::size_t width_;
  int threads_;
  bool primed_ = false;
  std::uint64_t prime_ = 0;
  SwitchingCounts total_;
};

/// Exact counts of the whole source. The source is reset first. Per the
/// WordSource contract an empty chunk marks exhaustion; the per-chunk seam
/// bookkeeping itself is ChunkFolder's and tolerates any chunk size.
SwitchingCounts compute_counts(streams::WordSource& source, std::size_t width, int threads = 1);

/// finalize()d counts; needs >= 2 words in the source.
SwitchingStats compute_stats(streams::WordSource& source, std::size_t width, int threads = 1);

}  // namespace tsvcod::stats
