#pragma once
// WordSource -> switching statistics: the zero-copy ingestion entry point.
//
// Chunks from the source feed the chunked bit-plane reduction directly —
// an mmap'd binary trace goes file pages -> kernel with no intermediate
// vector. Consecutive chunks are linked by priming each one with the last
// word of its predecessor (whose one-bits the predecessor already counted),
// so the merged counts equal the counts of the whole trace exactly and the
// result is bit-identical to materializing the trace and calling
// compute_stats on it, at every width and thread count.
//
// Observability (when enabled): deterministic counters
// trace.ingest.{count,words_total,bytes_total} on the metrics registry, and
// timing-based trace.ingest.{words_per_sec,bytes_per_sec} samples on the
// trace counter track.

#include "stats/bitplane.hpp"
#include "stats/switching_types.hpp"
#include "streams/word_source.hpp"

namespace tsvcod::stats {

/// Exact counts of the whole source. The source is reset first.
SwitchingCounts compute_counts(streams::WordSource& source, std::size_t width, int threads = 1);

/// finalize()d counts; needs >= 2 words in the source.
SwitchingStats compute_stats(streams::WordSource& source, std::size_t width, int threads = 1);

}  // namespace tsvcod::stats
