#pragma once
// Dual-bit-type (DBT) analytic switching model (Landman & Rabaey, TVLSI'95;
// paper Sec. 4).
//
// Two's-complement encodings of zero-mean Gaussian processes have two bit
// regions: uncorrelated LSBs that toggle like fair coins, and MSBs that all
// mirror the sign bit. For a lag-1 autocorrelation rho, the sign of a
// stationary Gaussian AR(1) process changes with probability acos(rho)/pi,
// which is both the MSB self-switching activity and (for a shared sign) the
// pairwise MSB switching correlation. Between the breakpoints the behaviour
// interpolates. This analytic model seeds the systematic assignments when no
// sample stream is available and cross-checks the measured statistics.

#include <cstddef>

#include "stats/switching_stats.hpp"

namespace tsvcod::stats {

struct DbtParams {
  std::size_t width = 16;   ///< word width (two's complement)
  double sigma = 1024.0;    ///< standard deviation in LSBs
  double rho = 0.0;         ///< lag-1 temporal correlation, in (-1, 1)
};

/// Lower breakpoint BP0: bits below it are pure LSB-type (activity 1/2).
std::size_t dbt_bp0(const DbtParams& p);
/// Upper breakpoint BP1: bits at or above it are pure MSB/sign-type.
std::size_t dbt_bp1(const DbtParams& p);

/// Sign-change probability of a stationary Gaussian AR(1) process.
double sign_toggle_probability(double rho);

/// Analytic switching statistics for the DBT signal model.
SwitchingStats dbt_stats(const DbtParams& p);

}  // namespace tsvcod::stats
