#include "stats/bitplane.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "opt/parallel.hpp"
#include "simd/dispatch.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TSVCOD_HAVE_AVX512_KERNEL 1
#include <immintrin.h>
#endif

namespace tsvcod::stats {

namespace {

constexpr std::uint64_t mask_of(std::size_t width) {
  return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

// ---------------------------------------------------------------------------
// Block reduction, compiled in up to three ISA flavors on x86-64 and selected
// once at runtime: a portable baseline (std::popcount lowers to a ~15-op SWAR
// sequence), a POPCNT-instruction variant, and an AVX-512 variant that needs
// F + DQ + VPOPCNTDQ (Ice Lake and newer, plus Zen 4+). The default build
// targets the portable baseline so the binary still runs anywhere; the
// dispatch is per 64-transition block, so every flavor consumes the same
// masked words and produces the same exact integer counts — bit-identical by
// construction, and cross-checked by the stats oracle.
//
// The AVX-512 flavor additionally restructures the block: instead of
// materializing toggle words and transposing *two* 64x64 bit matrices, it
// transposes only the value matrix and derives each toggle plane in plane
// space — TG_i = VAL_i ^ ((VAL_i << 1) | prev_bit_i) — because a plane's bit
// t-1 neighbor within the plane *is* the line's previous value. That halves
// the (scalar) transpose work, and VPOPCNTQ reduces eight line pairs per
// instruction in the O(w^2) pair loop.
// ---------------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
#define TSVCOD_ALWAYS_INLINE inline __attribute__((always_inline))
#define TSVCOD_POPC(x) __builtin_popcountll(x)
#else
#define TSVCOD_ALWAYS_INLINE inline
#define TSVCOD_POPC(x) std::popcount(x)
#endif

TSVCOD_ALWAYS_INLINE void reduce_block_body(std::size_t width, const std::uint64_t* tg,
                                            const std::uint64_t* val, SwitchingCounts& counts) {
  for (std::size_t i = 0; i < width; ++i) {
    counts.self[i] += static_cast<std::uint64_t>(TSVCOD_POPC(tg[i]));
    counts.ones[i] += static_cast<std::uint64_t>(TSVCOD_POPC(val[i]));
  }
  for (std::size_t i = 0; i < width; ++i) {
    const std::uint64_t tgi = tg[i];
    if (tgi == 0) continue;  // quiet line: every pair term is zero
    const std::uint64_t vali = val[i];
    std::int64_t* row = &counts.cross[i * width];
    for (std::size_t j = i + 1; j < width; ++j) {
      const std::uint64_t both = tgi & tg[j];
      if (both == 0) continue;
      const int opposite = TSVCOD_POPC(both & (vali ^ val[j]));
      row[j] += TSVCOD_POPC(both) - 2 * opposite;
    }
  }
}

/// One whole block: `block` is 64 masked post-transition words starting on a
/// block boundary, `prev` the masked word preceding block[0].
using BlockFn = void (*)(std::size_t, const std::uint64_t*, std::uint64_t, SwitchingCounts&);

TSVCOD_ALWAYS_INLINE void block_reduce_scalar_body(std::size_t width, const std::uint64_t* block,
                                                   std::uint64_t prev, SwitchingCounts& counts) {
  // Toggle planes from consecutive XORs; value planes are the words
  // themselves (for a toggled line, direction == new value).
  std::uint64_t tg[64];
  std::uint64_t val[64];
  std::uint64_t before = prev;
  for (std::size_t t = 0; t < 64; ++t) {
    val[t] = block[t];
    tg[t] = block[t] ^ before;
    before = block[t];
  }
  transpose64(tg);
  transpose64(val);
  reduce_block_body(width, tg, val, counts);
}

void block_reduce_portable(std::size_t width, const std::uint64_t* block, std::uint64_t prev,
                           SwitchingCounts& counts) {
  block_reduce_scalar_body(width, block, prev, counts);
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
__attribute__((target("popcnt"))) void block_reduce_popcnt(std::size_t width,
                                                           const std::uint64_t* block,
                                                           std::uint64_t prev,
                                                           SwitchingCounts& counts) {
  block_reduce_scalar_body(width, block, prev, counts);
}
#endif

#if defined(TSVCOD_HAVE_AVX512_KERNEL)
__attribute__((target("avx512f,avx512dq,avx512vpopcntdq,popcnt"))) void block_reduce_avx512(
    std::size_t width, const std::uint64_t* block, std::uint64_t prev, SwitchingCounts& counts) {
  alignas(64) std::uint64_t val[64];
  alignas(64) std::uint64_t tg[64];
  std::memcpy(val, block, sizeof(val));
  transpose64(val);
  // Derive the toggle planes in plane space (see the dispatch comment): the
  // bit below a plane bit is the line's previous value, with `prev`
  // broadcasting the incoming word into every plane's bit 0. Planes at or
  // above `width` are all-zero (the words are masked), so deriving all 64 is
  // safe and keeps the loop branch-free.
  for (std::size_t i = 0; i < 64; i += 8) {
    const __m512i v = _mm512_load_si512(val + i);
    __m512i below = _mm512_slli_epi64(v, 1);
    below = _mm512_mask_or_epi64(below, static_cast<__mmask8>(prev >> i), below,
                                 _mm512_set1_epi64(1));
    _mm512_store_si512(tg + i, _mm512_xor_si512(v, below));
  }
  std::size_t i = 0;
  for (; i + 8 <= width; i += 8) {
    const __m512i po = _mm512_popcnt_epi64(_mm512_load_si512(val + i));
    const __m512i ps = _mm512_popcnt_epi64(_mm512_load_si512(tg + i));
    _mm512_storeu_si512(counts.ones.data() + i,
                        _mm512_add_epi64(_mm512_loadu_si512(counts.ones.data() + i), po));
    _mm512_storeu_si512(counts.self.data() + i,
                        _mm512_add_epi64(_mm512_loadu_si512(counts.self.data() + i), ps));
  }
  for (; i < width; ++i) {
    counts.ones[i] += static_cast<std::uint64_t>(__builtin_popcountll(val[i]));
    counts.self[i] += static_cast<std::uint64_t>(__builtin_popcountll(tg[i]));
  }
  if (width == 64) {
    // Full-width pair loop with no scalar edges: the first vector of each row
    // starts at the row's 8-aligned floor with the lanes j <= r zeroed — they
    // land on unused lower-triangle cross slots and add 0.
    for (std::size_t r = 0; r < 63; ++r) {
      const std::uint64_t tgr = tg[r];
      if (tgr == 0) continue;  // quiet line: every pair term is zero
      const __m512i vtgr = _mm512_set1_epi64(static_cast<long long>(tgr));
      const __m512i vvalr = _mm512_set1_epi64(static_cast<long long>(val[r]));
      std::int64_t* row = counts.cross.data() + r * 64;
      const std::size_t j0 = (r + 1) & ~std::size_t{7};
      {
        const __mmask8 keep = static_cast<__mmask8>(0xFFu << ((r + 1) - j0));
        const __m512i both = _mm512_and_si512(vtgr, _mm512_load_si512(tg + j0));
        const __m512i opp =
            _mm512_and_si512(both, _mm512_xor_si512(vvalr, _mm512_load_si512(val + j0)));
        __m512i cnt = _mm512_sub_epi64(_mm512_popcnt_epi64(both),
                                       _mm512_slli_epi64(_mm512_popcnt_epi64(opp), 1));
        cnt = _mm512_maskz_mov_epi64(keep, cnt);
        _mm512_storeu_si512(row + j0, _mm512_add_epi64(_mm512_loadu_si512(row + j0), cnt));
      }
      for (std::size_t j = j0 + 8; j < 64; j += 8) {
        const __m512i both = _mm512_and_si512(vtgr, _mm512_load_si512(tg + j));
        const __m512i opp =
            _mm512_and_si512(both, _mm512_xor_si512(vvalr, _mm512_load_si512(val + j)));
        const __m512i cnt = _mm512_sub_epi64(_mm512_popcnt_epi64(both),
                                             _mm512_slli_epi64(_mm512_popcnt_epi64(opp), 1));
        _mm512_storeu_si512(row + j, _mm512_add_epi64(_mm512_loadu_si512(row + j), cnt));
      }
    }
  } else {
    // Narrower arrays: scalar peel to 8-alignment, vector middle, scalar
    // tail. Vector stores stay strictly inside the row (j + 8 <= width).
    for (std::size_t r = 0; r + 1 < width; ++r) {
      const std::uint64_t tgr = tg[r];
      if (tgr == 0) continue;
      const std::uint64_t valr = val[r];
      std::int64_t* row = counts.cross.data() + r * width;
      std::size_t j = r + 1;
      for (; j < width && (j & 7) != 0; ++j) {
        const std::uint64_t both = tgr & tg[j];
        if (both == 0) continue;
        const int opposite = __builtin_popcountll(both & (valr ^ val[j]));
        row[j] += __builtin_popcountll(both) - 2 * opposite;
      }
      const __m512i vtgr = _mm512_set1_epi64(static_cast<long long>(tgr));
      const __m512i vvalr = _mm512_set1_epi64(static_cast<long long>(valr));
      for (; j + 8 <= width; j += 8) {
        const __m512i both = _mm512_and_si512(vtgr, _mm512_load_si512(tg + j));
        const __m512i opp =
            _mm512_and_si512(both, _mm512_xor_si512(vvalr, _mm512_load_si512(val + j)));
        const __m512i cnt = _mm512_sub_epi64(_mm512_popcnt_epi64(both),
                                             _mm512_slli_epi64(_mm512_popcnt_epi64(opp), 1));
        _mm512_storeu_si512(row + j, _mm512_add_epi64(_mm512_loadu_si512(row + j), cnt));
      }
      for (; j < width; ++j) {
        const std::uint64_t both = tgr & tg[j];
        if (both == 0) continue;
        const int opposite = __builtin_popcountll(both & (valr ^ val[j]));
        row[j] += __builtin_popcountll(both) - 2 * opposite;
      }
    }
  }
}
#endif  // TSVCOD_HAVE_AVX512_KERNEL

// Resolved per block batch through the shared dispatch utility so a
// TSVCOD_SIMD / force_level() clamp takes effect immediately (the old
// function-local static froze the choice at first use). The counters are
// exact integers, so every level is bit-identical by construction; the clamp
// only trades speed.
BlockFn block_fn() {
  switch (simd::active_level()) {
#if defined(TSVCOD_HAVE_AVX512_KERNEL)
    case simd::Level::avx512:
      return &block_reduce_avx512;
#endif
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    case simd::Level::avx2:
    case simd::Level::popcnt:
      return &block_reduce_popcnt;
#endif
    default:
      return &block_reduce_portable;
  }
}

[[noreturn]] void throw_too_few_words(std::size_t width, std::uint64_t words) {
  std::ostringstream os;
  os << "switching stats: need at least 2 words to estimate transition statistics, have "
     << words << " (width " << width << ")";
  throw std::logic_error(os.str());
}

}  // namespace

void transpose64(std::uint64_t a[64]) {
  // Hacker's-Delight-style recursive block swap, phrased in LSB-first
  // coordinates: at step j the blocks (row bit-j clear, column bit-j set) and
  // (row bit-j set, column bit-j clear) trade places, so the final bit t of
  // a[i] is the original bit i of a[t].
  static constexpr std::uint64_t masks[6] = {
      0x00000000FFFFFFFFull,  // j = 32: column indices with bit 5 clear
      0x0000FFFF0000FFFFull,  // j = 16
      0x00FF00FF00FF00FFull,  // j = 8
      0x0F0F0F0F0F0F0F0Full,  // j = 4
      0x3333333333333333ull,  // j = 2
      0x5555555555555555ull,  // j = 1
  };
  int m = 0;
  for (unsigned j = 32; j != 0; j >>= 1, ++m) {
    for (unsigned k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k | j]) & masks[m];
      a[k] ^= t << j;
      a[k | j] ^= t;
    }
  }
}

SwitchingCounts::SwitchingCounts(std::size_t w)
    : width(w), ones(w, 0), self(w, 0), cross(w * w, 0) {}

void SwitchingCounts::merge(const SwitchingCounts& other) {
  if (other.width != width) {
    throw std::invalid_argument("SwitchingCounts::merge: width mismatch");
  }
  words += other.words;
  transitions += other.transitions;
  for (std::size_t i = 0; i < width; ++i) {
    ones[i] += other.ones[i];
    self[i] += other.self[i];
  }
  for (std::size_t k = 0; k < cross.size(); ++k) cross[k] += other.cross[k];
}

SwitchingStats SwitchingCounts::finalize() const {
  if (words < 2) throw_too_few_words(width, words);
  SwitchingStats s;
  s.width = width;
  s.transitions = static_cast<std::size_t>(transitions);
  const double nt = static_cast<double>(transitions);
  const double nw = static_cast<double>(words);
  s.self.resize(width);
  s.prob_one.resize(width);
  s.coupling = phys::Matrix(width, width);
  for (std::size_t i = 0; i < width; ++i) {
    s.self[i] = static_cast<double>(self[i]) / nt;
    s.prob_one[i] = static_cast<double>(ones[i]) / nw;
    s.coupling(i, i) = s.self[i];
    for (std::size_t j = i + 1; j < width; ++j) {
      const double c = static_cast<double>(at(i, j)) / nt;
      s.coupling(i, j) = c;
      s.coupling(j, i) = c;
    }
  }
  return s;
}

BitplaneAccumulator::BitplaneAccumulator(std::size_t width)
    : width_(width), mask_(mask_of(width)), counts_(width) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("BitplaneAccumulator: width must be in [1, 64]");
  }
}

void BitplaneAccumulator::prime(std::uint64_t word) {
  if (samples_ != 0 || primed_) {
    // Name the exact state so the misuse is diagnosable: priming after a
    // windowed reset (primed, zero samples) used to be indistinguishable
    // from priming mid-stream, and silently overwriting the carried seam
    // word mis-counts every transition of the new window.
    std::ostringstream os;
    os << "BitplaneAccumulator::prime: stream already started (";
    if (primed_ && samples_ == 0) {
      os << "already primed with a seam word — e.g. by reset_window(), which "
            "carries the previous window's last word over";
    } else {
      os << samples_ << " words consumed" << (primed_ ? ", primed" : "");
    }
    os << "; " << n_ << " buffered transitions, width " << width_
       << "). prime() is only valid on a fresh or fully reset() accumulator.";
    throw std::logic_error(os.str());
  }
  prev_ = word & mask_;
  block_prev_ = prev_;
  primed_ = true;
}

void BitplaneAccumulator::reset() {
  counts_ = SwitchingCounts(width_);
  samples_ = 0;
  primed_ = false;
  prev_ = 0;
  block_prev_ = 0;
  n_ = 0;
  blocks_ = 0;
}

void BitplaneAccumulator::reset_window() {
  if (samples_ == 0 && !primed_) return;  // no stream yet: nothing to carry
  counts_ = SwitchingCounts(width_);
  samples_ = 0;
  n_ = 0;
  blocks_ = 0;
  // Continue the chain: the last word seen becomes the new window's seam
  // word (primed, its ones already owned by the previous window).
  block_prev_ = prev_;
  primed_ = true;
}

void BitplaneAccumulator::add(std::uint64_t word) {
  word &= mask_;
  if (samples_ == 0 && !primed_) {
    // First word: its bits count toward `ones`, but there is no transition
    // yet, so it never enters a block.
    for (std::uint64_t v = word; v != 0; v &= v - 1) {
      ++counts_.ones[static_cast<std::size_t>(std::countr_zero(v))];
    }
    ++counts_.words;
    prev_ = word;
    block_prev_ = word;
    samples_ = 1;
    return;
  }
  block_[n_++] = word;
  prev_ = word;
  ++samples_;
  if (n_ == 64) flush_block();
}

void BitplaneAccumulator::add(std::span<const std::uint64_t> words) {
  std::size_t k = 0;
  const std::size_t n = words.size();
  while (k < n) {
    // On a block boundary with a full block available, reduce straight from
    // the caller's buffer instead of staging 64 words through block_.
    if (n_ == 0 && (samples_ > 0 || primed_) && n - k >= 64) {
      const std::uint64_t* src = words.data() + k;
      if (mask_ == ~std::uint64_t{0}) {
        flush_from(src);
      } else {
        std::uint64_t masked[64];
        for (std::size_t t = 0; t < 64; ++t) masked[t] = src[t] & mask_;
        flush_from(masked);
      }
      samples_ += 64;
      k += 64;
    } else {
      add(words[k++]);
    }
  }
}

void BitplaneAccumulator::flush_block() {
  flush_from(block_);
  n_ = 0;
}

void BitplaneAccumulator::flush_from(const std::uint64_t* block) {
  block_fn()(width_, block, block_prev_, counts_);
  counts_.words += 64;
  counts_.transitions += 64;
  block_prev_ = block[63];
  prev_ = block_prev_;
  ++blocks_;
  if (obs::metrics_enabled()) obs::metric_add("stats.bitplane.blocks_total");
}

SwitchingCounts BitplaneAccumulator::counts() const {
  SwitchingCounts out = counts_;
  // Scalar tail: the buffered partial block (and thereby every < 64 word
  // stream). Walking set bits keeps even the tail O(toggles) per word.
  std::uint64_t before = block_prev_;
  for (std::size_t t = 0; t < n_; ++t) {
    const std::uint64_t cur = block_[t];
    for (std::uint64_t v = cur; v != 0; v &= v - 1) {
      ++out.ones[static_cast<std::size_t>(std::countr_zero(v))];
    }
    const std::uint64_t tg = cur ^ before;
    for (std::uint64_t ti = tg; ti != 0; ti &= ti - 1) {
      const std::size_t i = static_cast<std::size_t>(std::countr_zero(ti));
      ++out.self[i];
      const bool up_i = (cur >> i) & 1u;
      for (std::uint64_t tj = ti & (ti - 1); tj != 0; tj &= tj - 1) {
        const std::size_t j = static_cast<std::size_t>(std::countr_zero(tj));
        const bool up_j = (cur >> j) & 1u;
        out.at(i, j) += (up_i == up_j) ? 1 : -1;
      }
    }
    before = cur;
  }
  out.words += n_;
  out.transitions += n_;
  return out;
}

SwitchingCounts compute_counts(std::span<const std::uint64_t> words, std::size_t width,
                               int threads) {
  if (words.size() < 2 && !(width == 0 || width > 64)) {
    throw_too_few_words(width, words.size());
  }
  return compute_counts_primed(false, 0, words, width, threads);
}

SwitchingCounts compute_counts_primed(bool primed, std::uint64_t prime,
                                      std::span<const std::uint64_t> words, std::size_t width,
                                      int threads) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("compute_counts: width must be in [1, 64]");
  }
  if (words.empty()) return SwitchingCounts(width);

  obs::Span span("stats.compute");
  const auto t0 = std::chrono::steady_clock::now();

  // Virtual word sequence S: the prime word (when primed) followed by
  // `words`. Transition t is S[t] -> S[t+1]; only unprimed chunk 0 counts
  // S[0]'s one-bits, matching the streaming accumulator exactly.
  const std::size_t transitions = words.size() - (primed ? 0 : 1);
  // One chunk per resolved thread, but never so many that a chunk drops
  // below a useful run of blocks; the merge is exact, so the chunk count
  // only affects speed, never the result.
  constexpr std::size_t min_chunk_transitions = 1024;
  const std::size_t k = static_cast<std::size_t>(std::max(1, opt::resolve_threads(threads)));
  const std::size_t chunks =
      std::clamp<std::size_t>(transitions / min_chunk_transitions, 1, k);

  // Chunk c owns transitions [tb, te): it is primed with the seam word
  // S[tb] (whose bits were already counted upstream) and then consumes
  // S(tb, te]. Ones and transitions both partition exactly.
  const auto run_chunk = [&](BitplaneAccumulator& acc, std::size_t tb, std::size_t te) {
    if (primed) {
      acc.prime(tb == 0 ? prime : words[tb - 1]);
      acc.add(words.subspan(tb, te - tb));
    } else {
      if (tb == 0) {
        acc.add(words[0]);
      } else {
        acc.prime(words[tb]);
      }
      acc.add(words.subspan(tb + 1, te - tb));
    }
  };

  std::uint64_t blocks = 0;
  std::uint64_t tail_words = 0;
  SwitchingCounts total(width);
  if (chunks == 1) {
    BitplaneAccumulator acc(width);
    run_chunk(acc, 0, transitions);
    total = acc.counts();
    blocks = acc.blocks_flushed();
    tail_words = acc.pending();
  } else {
    std::vector<SwitchingCounts> partial(chunks);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> meta(chunks);
    opt::parallel_for(chunks, static_cast<int>(k), [&](std::size_t c) {
      const std::size_t tb = transitions * c / chunks;
      const std::size_t te = transitions * (c + 1) / chunks;
      BitplaneAccumulator acc(width);
      run_chunk(acc, tb, te);
      partial[c] = acc.counts();
      meta[c] = {acc.blocks_flushed(), acc.pending()};
    });
    total = std::move(partial[0]);
    for (std::size_t c = 1; c < chunks; ++c) total.merge(partial[c]);
    for (const auto& [b, p] : meta) {
      blocks += b;
      tail_words += p;
    }
  }

  if (obs::metrics_enabled()) {
    // Deterministic counters only: words/sec is timing, so it lives on the
    // trace counter track below, keeping the metrics document bit-identical
    // across runs and thread counts.
    obs::metric_add("stats.compute.count");
    obs::metric_add("stats.compute.words_total", words.size());
    obs::metric_add("stats.compute.chunks_total", chunks);
    obs::metric_add("stats.compute.tail_words_total", tail_words);
  }
  if (span.traced()) {
    const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (secs > 0.0) {
      obs::counter("stats.compute.words_per_sec", static_cast<double>(words.size()) / secs);
    }
    std::ostringstream os;
    os << "\"words\":" << words.size() << ",\"width\":" << width << ",\"chunks\":" << chunks
       << ",\"blocks\":" << blocks;
    span.set_args(os.str());
  }
  obs::profile_work("words", words.size());
  obs::profile_work("blocks", blocks);
  return total;
}

}  // namespace tsvcod::stats
