#include "stats/bitplane.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"
#include "opt/parallel.hpp"

namespace tsvcod::stats {

namespace {

constexpr std::uint64_t mask_of(std::size_t width) {
  return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

// ---------------------------------------------------------------------------
// Plane reduction, compiled twice on x86-64: once for the baseline ISA and
// once with the POPCNT instruction enabled, selected at runtime. The default
// build targets the portable baseline (where std::popcount lowers to a ~15-op
// SWAR sequence); virtually every x86-64 CPU since 2008 has POPCNT, and using
// it is worth ~4x on this kernel — but it must stay a runtime decision so the
// binary still runs anywhere. The body is forced inline into each wrapper so
// the builtin popcount picks up the wrapper's ISA.
// ---------------------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)
#define TSVCOD_ALWAYS_INLINE inline __attribute__((always_inline))
#define TSVCOD_POPC(x) __builtin_popcountll(x)
#else
#define TSVCOD_ALWAYS_INLINE inline
#define TSVCOD_POPC(x) std::popcount(x)
#endif

TSVCOD_ALWAYS_INLINE void reduce_block_body(std::size_t width, const std::uint64_t* tg,
                                            const std::uint64_t* val, SwitchingCounts& counts) {
  for (std::size_t i = 0; i < width; ++i) {
    counts.self[i] += static_cast<std::uint64_t>(TSVCOD_POPC(tg[i]));
    counts.ones[i] += static_cast<std::uint64_t>(TSVCOD_POPC(val[i]));
  }
  for (std::size_t i = 0; i < width; ++i) {
    const std::uint64_t tgi = tg[i];
    if (tgi == 0) continue;  // quiet line: every pair term is zero
    const std::uint64_t vali = val[i];
    std::int64_t* row = &counts.cross[i * width];
    for (std::size_t j = i + 1; j < width; ++j) {
      const std::uint64_t both = tgi & tg[j];
      if (both == 0) continue;
      const int opposite = TSVCOD_POPC(both & (vali ^ val[j]));
      row[j] += TSVCOD_POPC(both) - 2 * opposite;
    }
  }
}

using ReduceFn = void (*)(std::size_t, const std::uint64_t*, const std::uint64_t*,
                          SwitchingCounts&);

void reduce_block_portable(std::size_t width, const std::uint64_t* tg, const std::uint64_t* val,
                           SwitchingCounts& counts) {
  reduce_block_body(width, tg, val, counts);
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
__attribute__((target("popcnt"))) void reduce_block_popcnt(std::size_t width,
                                                           const std::uint64_t* tg,
                                                           const std::uint64_t* val,
                                                           SwitchingCounts& counts) {
  reduce_block_body(width, tg, val, counts);
}
#endif

ReduceFn reduce_fn() {
  static const ReduceFn fn = [] {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("popcnt")) return &reduce_block_popcnt;
#endif
    return &reduce_block_portable;
  }();
  return fn;
}

[[noreturn]] void throw_too_few_words(std::size_t width, std::uint64_t words) {
  std::ostringstream os;
  os << "switching stats: need at least 2 words to estimate transition statistics, have "
     << words << " (width " << width << ")";
  throw std::logic_error(os.str());
}

}  // namespace

void transpose64(std::uint64_t a[64]) {
  // Hacker's-Delight-style recursive block swap, phrased in LSB-first
  // coordinates: at step j the blocks (row bit-j clear, column bit-j set) and
  // (row bit-j set, column bit-j clear) trade places, so the final bit t of
  // a[i] is the original bit i of a[t].
  static constexpr std::uint64_t masks[6] = {
      0x00000000FFFFFFFFull,  // j = 32: column indices with bit 5 clear
      0x0000FFFF0000FFFFull,  // j = 16
      0x00FF00FF00FF00FFull,  // j = 8
      0x0F0F0F0F0F0F0F0Full,  // j = 4
      0x3333333333333333ull,  // j = 2
      0x5555555555555555ull,  // j = 1
  };
  int m = 0;
  for (unsigned j = 32; j != 0; j >>= 1, ++m) {
    for (unsigned k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k | j]) & masks[m];
      a[k] ^= t << j;
      a[k | j] ^= t;
    }
  }
}

SwitchingCounts::SwitchingCounts(std::size_t w)
    : width(w), ones(w, 0), self(w, 0), cross(w * w, 0) {}

void SwitchingCounts::merge(const SwitchingCounts& other) {
  if (other.width != width) {
    throw std::invalid_argument("SwitchingCounts::merge: width mismatch");
  }
  words += other.words;
  transitions += other.transitions;
  for (std::size_t i = 0; i < width; ++i) {
    ones[i] += other.ones[i];
    self[i] += other.self[i];
  }
  for (std::size_t k = 0; k < cross.size(); ++k) cross[k] += other.cross[k];
}

SwitchingStats SwitchingCounts::finalize() const {
  if (words < 2) throw_too_few_words(width, words);
  SwitchingStats s;
  s.width = width;
  s.transitions = static_cast<std::size_t>(transitions);
  const double nt = static_cast<double>(transitions);
  const double nw = static_cast<double>(words);
  s.self.resize(width);
  s.prob_one.resize(width);
  s.coupling = phys::Matrix(width, width);
  for (std::size_t i = 0; i < width; ++i) {
    s.self[i] = static_cast<double>(self[i]) / nt;
    s.prob_one[i] = static_cast<double>(ones[i]) / nw;
    s.coupling(i, i) = s.self[i];
    for (std::size_t j = i + 1; j < width; ++j) {
      const double c = static_cast<double>(at(i, j)) / nt;
      s.coupling(i, j) = c;
      s.coupling(j, i) = c;
    }
  }
  return s;
}

BitplaneAccumulator::BitplaneAccumulator(std::size_t width)
    : width_(width), mask_(mask_of(width)), counts_(width) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("BitplaneAccumulator: width must be in [1, 64]");
  }
}

void BitplaneAccumulator::prime(std::uint64_t word) {
  if (samples_ != 0 || primed_) {
    throw std::logic_error("BitplaneAccumulator::prime: stream already started");
  }
  prev_ = word & mask_;
  block_prev_ = prev_;
  primed_ = true;
}

void BitplaneAccumulator::add(std::uint64_t word) {
  word &= mask_;
  if (samples_ == 0 && !primed_) {
    // First word: its bits count toward `ones`, but there is no transition
    // yet, so it never enters a block.
    for (std::uint64_t v = word; v != 0; v &= v - 1) {
      ++counts_.ones[static_cast<std::size_t>(std::countr_zero(v))];
    }
    ++counts_.words;
    prev_ = word;
    block_prev_ = word;
    samples_ = 1;
    return;
  }
  block_[n_++] = word;
  prev_ = word;
  ++samples_;
  if (n_ == 64) flush_block();
}

void BitplaneAccumulator::flush_block() {
  // Toggle planes from consecutive XORs; value planes are the words
  // themselves (for a toggled line, direction == new value).
  std::uint64_t tg[64];
  std::uint64_t val[64];
  std::uint64_t before = block_prev_;
  for (std::size_t t = 0; t < 64; ++t) {
    val[t] = block_[t];
    tg[t] = block_[t] ^ before;
    before = block_[t];
  }
  transpose64(tg);
  transpose64(val);
  reduce_fn()(width_, tg, val, counts_);
  counts_.words += 64;
  counts_.transitions += 64;
  block_prev_ = block_[63];
  n_ = 0;
  ++blocks_;
  if (obs::metrics_enabled()) obs::metric_add("stats.bitplane.blocks_total");
}

SwitchingCounts BitplaneAccumulator::counts() const {
  SwitchingCounts out = counts_;
  // Scalar tail: the buffered partial block (and thereby every < 64 word
  // stream). Walking set bits keeps even the tail O(toggles) per word.
  std::uint64_t before = block_prev_;
  for (std::size_t t = 0; t < n_; ++t) {
    const std::uint64_t cur = block_[t];
    for (std::uint64_t v = cur; v != 0; v &= v - 1) {
      ++out.ones[static_cast<std::size_t>(std::countr_zero(v))];
    }
    const std::uint64_t tg = cur ^ before;
    for (std::uint64_t ti = tg; ti != 0; ti &= ti - 1) {
      const std::size_t i = static_cast<std::size_t>(std::countr_zero(ti));
      ++out.self[i];
      const bool up_i = (cur >> i) & 1u;
      for (std::uint64_t tj = ti & (ti - 1); tj != 0; tj &= tj - 1) {
        const std::size_t j = static_cast<std::size_t>(std::countr_zero(tj));
        const bool up_j = (cur >> j) & 1u;
        out.at(i, j) += (up_i == up_j) ? 1 : -1;
      }
    }
    before = cur;
  }
  out.words += n_;
  out.transitions += n_;
  return out;
}

SwitchingCounts compute_counts(std::span<const std::uint64_t> words, std::size_t width,
                               int threads) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("compute_counts: width must be in [1, 64]");
  }
  if (words.size() < 2) throw_too_few_words(width, words.size());

  obs::Span span("stats.compute");
  const auto t0 = std::chrono::steady_clock::now();

  const std::size_t transitions = words.size() - 1;
  // One chunk per resolved thread, but never so many that a chunk drops
  // below a useful run of blocks; the merge is exact, so the chunk count
  // only affects speed, never the result.
  constexpr std::size_t min_chunk_transitions = 1024;
  const std::size_t k = static_cast<std::size_t>(std::max(1, opt::resolve_threads(threads)));
  const std::size_t chunks =
      std::clamp<std::size_t>(transitions / min_chunk_transitions, 1, k);

  std::uint64_t blocks = 0;
  std::uint64_t tail_words = 0;
  SwitchingCounts total(width);
  if (chunks == 1) {
    BitplaneAccumulator acc(width);
    for (const auto w : words) acc.add(w);
    total = acc.counts();
    blocks = acc.blocks_flushed();
    tail_words = acc.pending();
  } else {
    // Chunk c owns transitions [tb, te): it is primed with the seam word
    // `words[tb]` (whose bits were already counted by chunk c-1) and then
    // consumes words (tb, te]. Ones and transitions both partition exactly.
    std::vector<SwitchingCounts> partial(chunks);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> meta(chunks);
    opt::parallel_for(chunks, static_cast<int>(k), [&](std::size_t c) {
      const std::size_t tb = transitions * c / chunks;
      const std::size_t te = transitions * (c + 1) / chunks;
      BitplaneAccumulator acc(width);
      if (c == 0) {
        acc.add(words[0]);
      } else {
        acc.prime(words[tb]);
      }
      for (std::size_t t = tb; t < te; ++t) acc.add(words[t + 1]);
      partial[c] = acc.counts();
      meta[c] = {acc.blocks_flushed(), acc.pending()};
    });
    total = std::move(partial[0]);
    for (std::size_t c = 1; c < chunks; ++c) total.merge(partial[c]);
    for (const auto& [b, p] : meta) {
      blocks += b;
      tail_words += p;
    }
  }

  if (obs::metrics_enabled()) {
    // Deterministic counters only: words/sec is timing, so it lives on the
    // trace counter track below, keeping the metrics document bit-identical
    // across runs and thread counts.
    obs::metric_add("stats.compute.count");
    obs::metric_add("stats.compute.words_total", words.size());
    obs::metric_add("stats.compute.chunks_total", chunks);
    obs::metric_add("stats.compute.tail_words_total", tail_words);
  }
  if (span.active()) {
    const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (secs > 0.0) {
      obs::counter("stats.compute.words_per_sec", static_cast<double>(words.size()) / secs);
    }
    std::ostringstream os;
    os << "\"words\":" << words.size() << ",\"width\":" << width << ",\"chunks\":" << chunks
       << ",\"blocks\":" << blocks;
    span.set_args(os.str());
  }
  return total;
}

}  // namespace tsvcod::stats
