#include "stats/ingest.hpp"

#include <chrono>
#include <sstream>

#include "obs/obs.hpp"
#include "obs/profile.hpp"

namespace tsvcod::stats {

SwitchingCounts compute_counts(streams::WordSource& source, std::size_t width, int threads) {
  obs::Span span("stats.ingest");
  const auto t0 = std::chrono::steady_clock::now();

  source.reset();
  SwitchingCounts total(width);
  bool primed = false;
  std::uint64_t prime = 0;
  std::uint64_t words_total = 0;
  for (auto chunk = source.next_chunk(); !chunk.empty(); chunk = source.next_chunk()) {
    total.merge(compute_counts_primed(primed, prime, chunk, width, threads));
    prime = chunk.back();
    primed = true;
    words_total += chunk.size();
  }

  if (obs::metrics_enabled()) {
    obs::metric_add("trace.ingest.count");
    obs::metric_add("trace.ingest.words_total", words_total);
    obs::metric_add("trace.ingest.bytes_total", source.bytes());
  }
  if (span.traced()) {
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (secs > 0.0) {
      obs::counter("trace.ingest.words_per_sec", static_cast<double>(words_total) / secs);
      obs::counter("trace.ingest.bytes_per_sec", static_cast<double>(source.bytes()) / secs);
    }
    std::ostringstream os;
    os << "\"source\":\"" << source.source() << "\",\"words\":" << words_total
       << ",\"width\":" << width;
    span.set_args(os.str());
  }
  obs::profile_work("words", words_total);
  obs::profile_work("bytes", source.bytes());
  return total;
}

SwitchingStats compute_stats(streams::WordSource& source, std::size_t width, int threads) {
  return compute_counts(source, width, threads).finalize();
}

}  // namespace tsvcod::stats
