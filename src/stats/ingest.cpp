#include "stats/ingest.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"
#include "obs/profile.hpp"

namespace tsvcod::stats {

ChunkFolder::ChunkFolder(std::size_t width, int threads)
    : width_(width), threads_(threads), total_(width) {
  if (width == 0 || width > 64) {
    throw std::invalid_argument("ChunkFolder: width must be in [1, 64], got " +
                                std::to_string(width));
  }
}

void ChunkFolder::fold(std::span<const std::uint64_t> chunk) {
  // Seam-chain invariant: an empty chunk carries no words and no
  // transitions, so it must not touch the seam (chunk.back() on an empty
  // span is UB, and even a masked read here would desync every later chunk).
  if (chunk.empty()) return;
  total_.merge(compute_counts_primed(primed_, prime_, chunk, width_, threads_));
  prime_ = chunk.back();
  primed_ = true;
}

std::uint64_t ChunkFolder::seam() const {
  if (!primed_) {
    throw std::logic_error("ChunkFolder::seam: no word folded yet (unprimed, width " +
                           std::to_string(width_) + ")");
  }
  return prime_;
}

void ChunkFolder::reset() {
  total_ = SwitchingCounts(width_);
  primed_ = false;
  prime_ = 0;
}

void ChunkFolder::reset_window() {
  // Keep the seam: the next window's first word still transitions from the
  // previous window's last word, so tumbling windows merge back to the
  // exact whole-stream counts.
  total_ = SwitchingCounts(width_);
}

SwitchingCounts compute_counts(streams::WordSource& source, std::size_t width, int threads) {
  obs::Span span("stats.ingest");
  const auto t0 = std::chrono::steady_clock::now();

  source.reset();
  ChunkFolder folder(width, threads);
  // WordSource contract: an empty chunk appears exactly once, at
  // exhaustion. The folder itself also tolerates empty chunks (no seam
  // update), so a source that hands one out early merely truncates instead
  // of corrupting the seam chain.
  for (auto chunk = source.next_chunk(); !chunk.empty(); chunk = source.next_chunk()) {
    folder.fold(chunk);
  }
  const std::uint64_t words_total = folder.words();

  if (obs::metrics_enabled()) {
    obs::metric_add("trace.ingest.count");
    obs::metric_add("trace.ingest.words_total", words_total);
    obs::metric_add("trace.ingest.bytes_total", source.bytes());
  }
  if (span.traced()) {
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (secs > 0.0) {
      obs::counter("trace.ingest.words_per_sec", static_cast<double>(words_total) / secs);
      obs::counter("trace.ingest.bytes_per_sec", static_cast<double>(source.bytes()) / secs);
    }
    std::ostringstream os;
    os << "\"source\":\"" << source.source() << "\",\"words\":" << words_total
       << ",\"width\":" << width;
    span.set_args(os.str());
  }
  obs::profile_work("words", words_total);
  obs::profile_work("bytes", source.bytes());
  return folder.counts();
}

SwitchingStats compute_stats(streams::WordSource& source, std::size_t width, int threads) {
  return compute_counts(source, width, threads).finalize();
}

}  // namespace tsvcod::stats
