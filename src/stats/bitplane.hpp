#pragma once
// Block-transposed integer switching-statistics kernel (paper Sec. 3, Eq. 1-3).
//
// The scalar accumulator walks every line pair per word: O(w^2) double adds,
// ~4k FP ops per word at w = 64. This kernel instead buffers 64 consecutive
// transitions, transposes them into per-line *bit planes* (a Hacker's-Delight
// 64x64 bit-matrix transpose), and reduces each quantity with popcounts over
// whole planes:
//
//   plane layout   TG_i  bit t = "line i toggled on transition t"
//                  VAL_i bit t = "line i is 1 after transition t"
//   per line       self_i += popcount(TG_i)
//                  ones_i += popcount(VAL_i)
//   per pair       both = TG_i & TG_j                        (both toggled)
//                  opp  = both & (VAL_i ^ VAL_j)             (opposite dirs)
//                  cross_ij += popcount(both) - 2*popcount(opp)
//
// The pair identity holds because db_i * db_j is +1 when both lines toggle
// the same way, -1 when they toggle opposite ways, and 0 otherwise — and for
// a toggled line the direction is exactly its new value (VAL bit). That turns
// 64 * w^2 / 2 floating-point multiply-adds per block into ~3 integer ops per
// pair per block, with an early skip for quiet lines (TG_i == 0).
//
// All counters are unsigned/signed 64-bit integers. The scalar accumulator's
// double counters only ever receive +-1.0 increments, so its sums are exact
// integers too; converting our integer sums to double and performing the
// same final divisions therefore reproduces the scalar results *bit for
// bit* (and stays exact past the 2^53 limit where doubles would start to
// round). Exact integer counts also make merging associative, which is what
// `compute_counts` exploits to chunk a trace across the shared thread pool
// (chunks overlap one word at the seam so transitions partition exactly) with
// results that are bit-identical at every thread count.

#include <cstdint>
#include <span>
#include <vector>

#include "stats/switching_types.hpp"

namespace tsvcod::stats {

/// In-place 64x64 bit-matrix transpose in LSB-first coordinates:
/// after the call, bit t of a[i] equals bit i of the original a[t].
void transpose64(std::uint64_t a[64]);

/// Exact integer switching counts of a (chunk of a) word trace. Merging is
/// plain integer addition, hence associative and order-independent.
struct SwitchingCounts {
  std::size_t width = 0;
  std::uint64_t words = 0;        ///< words whose bits were counted into `ones`
  std::uint64_t transitions = 0;  ///< word-to-word transitions counted
  std::vector<std::uint64_t> ones;   ///< count of 1 bits per line
  std::vector<std::uint64_t> self;   ///< count of toggles per line
  std::vector<std::int64_t> cross;   ///< sum of db_i*db_j, row-major w*w, used for i < j

  SwitchingCounts() = default;
  explicit SwitchingCounts(std::size_t width);

  std::int64_t& at(std::size_t i, std::size_t j) { return cross[i * width + j]; }
  std::int64_t at(std::size_t i, std::size_t j) const { return cross[i * width + j]; }

  /// Accumulate `other` into this (exact integer adds; widths must match).
  void merge(const SwitchingCounts& other);

  /// Divide counts into probabilities (Eq. 1-3 estimates). Needs >= 2 words;
  /// the error names the width and sample count.
  SwitchingStats finalize() const;
};

/// Streaming bit-plane accumulator: buffers up to 64 transitions and flushes
/// them through the transposed popcount reduction; anything still buffered is
/// folded in with a scalar tail path when counts() / finish() is called, so
/// partial blocks and short (< 64 word) streams are exact too.
class BitplaneAccumulator {
 public:
  explicit BitplaneAccumulator(std::size_t width);

  std::size_t width() const { return width_; }

  /// Number of words consumed so far.
  std::size_t samples() const { return static_cast<std::size_t>(samples_); }

  /// Seed the transition chain with `word` *without* counting its bits —
  /// used by chunked reduction, where the seam word's ones belong to the
  /// previous chunk. Only valid on a fresh (or fully reset()) accumulator:
  /// once any word has been consumed, or after reset_window() carried the
  /// previous window's last word over as the seam, re-priming would silently
  /// break the seam-chain invariant (see below), so it throws a
  /// std::logic_error naming the accumulator state instead.
  void prime(std::uint64_t word);

  /// Full power-on reset: counts cleared AND the transition chain forgotten.
  /// prime() is valid again afterwards.
  void reset();

  /// Start a new counting window while *continuing* the transition chain:
  /// counts (words, transitions, buffered tail) are cleared, but the last
  /// word seen is carried over as the new window's seam word, exactly as if
  /// prime() had been called with it. Tumbling windows produced this way
  /// merge back to the exact whole-stream counts.
  ///
  /// Seam-chain invariant: at every moment, `prev_` is the last word of the
  /// stream so far and exactly one accumulator "owns" its one-bits — the
  /// window/chunk in which it was add()ed. A window reset transfers the word
  /// but not the ownership (primed, not counted), and priming again on top
  /// of that would either double-count or drop the seam transition — which
  /// is why prime() rejects it. No-op on an accumulator that has seen no
  /// words.
  void reset_window();

  /// Feed the next word of the stream.
  void add(std::uint64_t word);

  /// Feed a run of words. Full 64-transition blocks that start on a block
  /// boundary are reduced straight from `words` (no copy through the staging
  /// buffer at width 64), which is what the zero-copy mmap ingestion path
  /// rides on; results are bit-identical to word-by-word add().
  void add(std::span<const std::uint64_t> words);

  /// Counts gathered so far (flushed blocks + buffered scalar tail).
  SwitchingCounts counts() const;

  /// finalize()d counts; needs >= 2 words.
  SwitchingStats finish() const { return counts().finalize(); }

  /// 64-transition blocks reduced through the transposed kernel so far.
  std::uint64_t blocks_flushed() const { return blocks_; }

  /// Transitions currently buffered (will take the scalar tail path).
  std::size_t pending() const { return n_; }

 private:
  void flush_block();
  void flush_from(const std::uint64_t* block);  ///< 64 masked words, boundary-aligned

  std::size_t width_;
  std::uint64_t mask_;
  std::uint64_t samples_ = 0;
  bool primed_ = false;       ///< prev_ valid but not counted as a sample
  std::uint64_t prev_ = 0;    ///< last word seen (masked)
  std::uint64_t block_prev_ = 0;  ///< word preceding block_[0]
  std::size_t n_ = 0;             ///< buffered transitions
  std::uint64_t blocks_ = 0;
  std::uint64_t block_[64];       ///< post-transition words (masked)
  SwitchingCounts counts_;        ///< everything already flushed
};

/// Exact counts of a whole trace, chunked across the shared thread pool when
/// `threads` resolves to more than one (0 = TSVCOD_THREADS, else serial, as
/// everywhere). Chunks are merged in logical order; because the counts are
/// exact integers the result is bit-identical at every thread count.
SwitchingCounts compute_counts(std::span<const std::uint64_t> words, std::size_t width,
                               int threads = 1);

/// Generalization used by chunked trace ingestion: when `primed`, the
/// transition chain is seeded with `prime` (the last word of the preceding
/// chunk, whose one-bits that chunk already counted) and every word of
/// `words` is a transition target. Unprimed with `primed == false` this is
/// compute_counts, except that 0- and 1-word spans yield partial counts
/// instead of throwing — per-chunk counts merge into a whole-trace total, so
/// the >= 2 words rule only applies to the final counts (finalize() enforces
/// it). Bit-identical at every thread count, and merging the counts of a
/// chunk sequence linked by seam words equals the counts of the whole trace.
SwitchingCounts compute_counts_primed(bool primed, std::uint64_t prime,
                                      std::span<const std::uint64_t> words, std::size_t width,
                                      int threads = 1);

}  // namespace tsvcod::stats
