#include "stats/dbt_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "phys/constants.hpp"

namespace tsvcod::stats {

namespace {

double log2_clamped(double v) { return std::log2(std::max(v, 1.0)); }

}  // namespace

std::size_t dbt_bp0(const DbtParams& p) {
  // Landman-Rabaey: BP0 = log2(sigma) + log2(sqrt(1 - rho^2)) bounded to the word.
  const double bp = log2_clamped(p.sigma * std::sqrt(std::max(1e-12, 1.0 - p.rho * p.rho)));
  return std::min<std::size_t>(p.width, static_cast<std::size_t>(std::max(0.0, std::floor(bp))));
}

std::size_t dbt_bp1(const DbtParams& p) {
  // Sign-like behaviour from about 3 sigma upwards.
  const double bp = log2_clamped(3.0 * p.sigma);
  const std::size_t b = static_cast<std::size_t>(std::max(0.0, std::ceil(bp)));
  return std::min<std::size_t>(p.width, std::max(b, dbt_bp0(p)));
}

double sign_toggle_probability(double rho) {
  if (!(rho > -1.0) || !(rho < 1.0)) {
    throw std::invalid_argument("sign_toggle_probability: rho must be in (-1, 1)");
  }
  return std::acos(rho) / phys::pi;
}

SwitchingStats dbt_stats(const DbtParams& p) {
  if (p.width == 0 || p.width > 64) throw std::invalid_argument("dbt_stats: bad width");
  const std::size_t bp0 = dbt_bp0(p);
  const std::size_t bp1 = dbt_bp1(p);
  const double msb_self = sign_toggle_probability(p.rho);

  SwitchingStats s;
  s.width = p.width;
  s.transitions = 0;  // analytic, not measured
  s.self.resize(p.width);
  s.prob_one.assign(p.width, 0.5);  // zero-mean two's complement
  s.coupling = phys::Matrix(p.width, p.width);

  // "MSB-ness" of each bit: 0 below BP0, 1 above BP1, linear in between.
  auto msbness = [&](std::size_t bit) -> double {
    if (bit < bp0) return 0.0;
    if (bit >= bp1) return 1.0;
    if (bp1 == bp0) return 1.0;
    return static_cast<double>(bit - bp0 + 1) / static_cast<double>(bp1 - bp0 + 1);
  };

  for (std::size_t i = 0; i < p.width; ++i) {
    const double m = msbness(i);
    s.self[i] = 0.5 * (1.0 - m) + msb_self * m;
    s.coupling(i, i) = s.self[i];
  }
  // Pairwise switching correlation: only the shared sign region correlates.
  // Two pure MSBs switch in lockstep, so E{db_i db_j} = E{db^2} = msb_self.
  for (std::size_t i = 0; i < p.width; ++i) {
    for (std::size_t j = i + 1; j < p.width; ++j) {
      const double c = msbness(i) * msbness(j) * msb_self;
      s.coupling(i, j) = c;
      s.coupling(j, i) = c;
    }
  }
  return s;
}

}  // namespace tsvcod::stats
